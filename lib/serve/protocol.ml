module Rat = E2e_rat.Rat
module Task = E2e_model.Task
module Recurrence_shop = E2e_model.Recurrence_shop
module Instance_io = E2e_model.Instance_io
module Schedule = E2e_schedule.Schedule

let version = "e2e-serve/1"
let greeting = version ^ " ready"

type item =
  | Hello of string
  | Request of Admission.request
  | Stats
  | Metrics
  | Ping
  | Quit
  | Blank

let is_shop_char = function
  | 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '_' | '.' | '-' -> true
  | _ -> false

let valid_shop s = s <> "" && String.for_all is_shop_char s

let is_space = function ' ' | '\t' | '\r' | '\n' | '\012' -> true | _ -> false

(* First whitespace-delimited word and the (trimmed) remainder.  Any
   whitespace separates — a tab-separated [query<TAB>shop] must parse
   the same as the space-separated form, not as an unknown keyword. *)
let cut_word s =
  let s = String.trim s in
  let n = String.length s in
  let rec find i = if i >= n then None else if is_space s.[i] then Some i else find (i + 1) in
  match find 0 with
  | None -> (s, "")
  | Some i -> (String.sub s 0 i, String.trim (String.sub s (i + 1) (n - i - 1)))

(* The payload of submit/add is the Instance_io text format with ';'
   standing for newline, so multi-directive instances fit one framed
   line. *)
let unframe payload = String.map (function ';' -> '\n' | c -> c) payload

let parse_instance payload = Instance_io.parse (unframe payload)

(* An [add] payload extends a committed shop, so directives that
   (re)define shop structure — [visit], or anything else Instance_io
   might grow — must be refused, not forwarded: a whitelist, not a
   blacklist.  Comments and blank lines pass through (Instance_io skips
   them); every other line must lead with the [task] directive. *)
let parse_tasks payload =
  let text = unframe payload in
  let non_task =
    String.split_on_char '\n' text
    |> List.exists (fun line ->
           let line =
             match String.index_opt line '#' with
             | None -> line
             | Some i -> String.sub line 0 i
           in
           match cut_word line with ("" | "task"), _ -> false | _ -> true)
  in
  if non_task then Error "add payload must contain only task directives"
  else
    match Instance_io.parse text with
    | Error e -> Error e
    | Ok shop ->
        Ok
          (Array.to_list shop.Recurrence_shop.tasks
          |> List.map (fun (t : Task.t) -> (t.release, t.deadline, t.proc_times)))

let parse_request line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then Ok Blank
  else
    let keyword, rest = cut_word line in
    match keyword with
    | "hello" -> Ok (Hello rest)
    | "stats" -> if rest = "" then Ok Stats else Error "stats takes no arguments"
    | "metrics" -> if rest = "" then Ok Metrics else Error "metrics takes no arguments"
    | "ping" -> if rest = "" then Ok Ping else Error "ping takes no arguments"
    | "quit" -> if rest = "" then Ok Quit else Error "quit takes no arguments"
    | "query" | "drop" ->
        let shop, extra = cut_word rest in
        if not (valid_shop shop) then
          Error (Printf.sprintf "%s expects a shop name ([A-Za-z0-9_.-]+)" keyword)
        else if extra <> "" then Error (Printf.sprintf "%s takes one argument" keyword)
        else if keyword = "query" then Ok (Request (Admission.Query { shop }))
        else Ok (Request (Admission.Drop { shop }))
    | "submit" -> (
        let shop, payload = cut_word rest in
        if not (valid_shop shop) then Error "submit expects: submit <shop> <instance>"
        else
          match parse_instance payload with
          | Ok instance -> Ok (Request (Admission.Submit { shop; instance }))
          | Error e -> Error e)
    | "add" -> (
        let shop, payload = cut_word rest in
        if not (valid_shop shop) then Error "add expects: add <shop> <tasks>"
        else
          match parse_tasks payload with
          | Ok tasks -> Ok (Request (Admission.Add { shop; tasks }))
          | Error e -> Error e)
    | "" -> Ok Blank
    | other -> Error (Printf.sprintf "unknown request %S" other)

(* Newlines of the Instance_io rendering become " ; " so the instance
   fits one framed request line; [parse_request] inverts this. *)
let frame text =
  String.trim text |> String.split_on_char '\n' |> List.map String.trim
  |> String.concat " ; "

let render_request = function
  | Admission.Submit { shop; instance } ->
      Printf.sprintf "submit %s %s" shop (frame (Instance_io.to_string instance))
  | Admission.Add { shop; tasks } ->
      let task_line (release, deadline, proc_times) =
        Printf.sprintf "task %s %s %s" (Rat.to_string release) (Rat.to_string deadline)
          (String.concat " " (Array.to_list (Array.map Rat.to_string proc_times)))
      in
      Printf.sprintf "add %s %s" shop (String.concat " ; " (List.map task_line tasks))
  | Admission.Query { shop } -> "query " ^ shop
  | Admission.Drop { shop } -> "drop " ^ shop

let render_schedule schedule =
  let csv = Schedule.to_csv schedule in
  let csv =
    if String.length csv > 0 && csv.[String.length csv - 1] = '\n' then
      String.sub csv 0 (String.length csv - 1)
    else csv
  in
  String.map (function '\n' -> ';' | c -> c) csv

let render_reply ?(schedules = true) outcome =
  let base = Format.asprintf "%a" Batcher.pp_outcome outcome in
  match outcome with
  | Batcher.Reply
      (Admission.Decided { decision = Admission.Admitted { schedule; _ }; _ })
    when schedules ->
      base ^ " schedule=" ^ render_schedule schedule
  | _ -> base

let render_hello ~requested =
  if requested = version then "ok " ^ version
  else Printf.sprintf "error unsupported version %S (this server speaks %s)" requested version

(* Both the single-batcher and the striped transports render stats and
   metrics from the same aggregate view, so the line formats agree and
   a striped server's exposition is the per-stripe sum. *)
type agg = {
  agg_pending : int;
  agg_shops : int;
  agg_tasks : int;
  agg_warm : int;
  agg_svc : Batcher.service_stats;
  agg_cache : Cache.stats option;
}

let agg_of_batchers batchers ~pending ~cache ~svc =
  let sum f = Array.fold_left (fun acc b -> acc + f b) 0 batchers in
  {
    agg_pending = pending;
    agg_shops = sum (fun b -> List.length (Admission.shops (Batcher.engine b)));
    agg_tasks = sum (fun b -> Admission.n_committed (Batcher.engine b));
    agg_warm = sum (fun b -> Admission.warm_resident (Batcher.engine b));
    agg_svc = svc;
    agg_cache = cache;
  }

let agg_of_batcher b =
  agg_of_batchers [| b |] ~pending:(Batcher.pending b) ~cache:(Batcher.cache_stats b)
    ~svc:(Batcher.service_stats b)

let agg_of_stripes s =
  agg_of_batchers (Stripes.batchers s) ~pending:(Stripes.pending s)
    ~cache:(Stripes.cache_stats s) ~svc:(Stripes.service_stats s)

let stats_of_agg ?read_errors a =
  let base =
    Printf.sprintf "stats pending=%d shops=%d tasks=%d" a.agg_pending a.agg_shops a.agg_tasks
  in
  let base =
    match a.agg_cache with
    | None -> base ^ " cache=off"
    | Some { Cache.hits; misses; evictions; size } ->
        Printf.sprintf "%s cache_hits=%d cache_misses=%d cache_evictions=%d cache_size=%d"
          base hits misses evictions size
  in
  match read_errors with
  | None -> base
  | Some n -> Printf.sprintf "%s read_errors=%d" base n

let render_stats batcher = stats_of_agg (agg_of_batcher batcher)

let render_stats_striped ?read_errors stripes =
  stats_of_agg ?read_errors (agg_of_stripes stripes)

(* The [metrics] reply: live batcher-derived exposition lines (always
   available, registry on or off) followed by the registry's own
   exposition.  The live names are chosen disjoint from any registry
   name's mangling, so the concatenation never repeats a sample. *)
let metrics_of_agg ?(extra = []) a =
  let module Obs = E2e_obs.Obs in
  let line ?labels name v = Obs.exposition_line ?labels name v in
  let iline ?labels name v = line ?labels name (float_of_int v) in
  let svc = a.agg_svc in
  let live =
    [
      iline "serve_queue_depth" a.agg_pending;
      iline "serve_committed_shops" a.agg_shops;
      iline "serve_committed_tasks" a.agg_tasks;
      iline "serve_submitted_total" svc.Batcher.submitted;
      iline "serve_backpressure_rejections_total" svc.Batcher.rejected_backpressure;
      iline "serve_batches_completed_total" svc.Batcher.batches;
      iline "serve_batched_requests_total" svc.Batcher.batched_requests;
      iline "serve_max_batch_size" svc.Batcher.max_batch;
      iline "serve_budget_exhaustions_total" svc.Batcher.budget_exhausted;
      iline "serve_verify_downgrades_total" svc.Batcher.verify_failures;
      iline "serve_incremental_hits_total" svc.Batcher.inc_hits;
      iline "serve_incremental_misses_total" svc.Batcher.inc_misses;
      iline "serve_warm_resident_tasks" a.agg_warm;
    ]
    @ extra
    @ List.map
        (fun (shop, n) ->
          iline ~labels:[ ("shop", shop) ] "serve_shop_resident_tasks" n)
        svc.Batcher.resident
    @ (match a.agg_cache with
      | None -> []
      | Some { Cache.hits; misses; evictions; size } ->
          [
            iline "serve_cache_hits_total" hits;
            iline "serve_cache_misses_total" misses;
            iline "serve_cache_evictions_total" evictions;
            iline "serve_cache_size" size;
          ])
    @ List.concat_map
        (fun (shop, (admitted, rejected, undecided)) ->
          List.map
            (fun (verdict, n) ->
              iline
                ~labels:[ ("shop", shop); ("verdict", verdict) ]
                "serve_shop_verdicts_total" n)
            [ ("admitted", admitted); ("rejected", rejected); ("undecided", undecided) ])
        svc.Batcher.verdicts
  in
  let lines = live @ Obs.exposition_lines () in
  "metrics " ^ String.concat ";" lines

let render_metrics batcher = metrics_of_agg (agg_of_batcher batcher)

let render_metrics_striped ?(read_errors = 0) stripes =
  let module Obs = E2e_obs.Obs in
  let iline name v = Obs.exposition_line name (float_of_int v) in
  metrics_of_agg
    ~extra:
      [
        iline "serve_stripes" (Stripes.count stripes);
        iline "serve_transport_read_errors_total" read_errors;
      ]
    (agg_of_stripes stripes)
