(** Per-request trace context for the serve pipeline.

    Every request admitted to the {!Batcher} queue is assigned a
    monotonically increasing request id at ingress.  When tracing is
    {!active} the batcher allocates a trace context per request and
    timestamps the end of each pipeline stage on the {e main} domain, in
    deterministic submission order:

    {v queue  canonicalize  cache  solve  verify  commit  render v}

    [queue] is the enqueue→dequeue wait; each later stage is the time
    since the previous mark.  Requests that skip a phase (a [query]
    never solves) still mark the stage with a ~zero duration, so every
    request's stage durations tile its end-to-end latency exactly.
    When tracing is inactive the batcher threads the shared {!none}
    sentinel instead: no allocation, no clock reads, and reply logs are
    byte-identical with tracing on or off.

    {b Determinism.}  All clock reads happen on the ingress/drainer
    domain in submission order, never from worker-domain solves, so
    under a deterministic {!E2e_obs.Obs.Clock.set_source} the full
    trace is a pure function of the request log — byte-identical at
    every [jobs] value ([make check] enforces this).  With more than
    one drainer stripe the per-request records are still well-formed
    and schema-valid, but cross-request record order (and, with a real
    clock, stage timings) depends on stripe interleaving — the
    byte-identical guarantee is per stripe count.

    {b Outputs.}  {!finish} streams one JSONL record per stage plus a
    closing ["done"] record through the installed {!set_writer}, and
    feeds the [serve.stage.<name>] / [serve.e2e] registry histograms
    when stats are on.  Record schema (see also [doc/index.mld]):

    {v {"trace":"req","id":N,"op":OP,"shop":SHOP,"stage":STAGE,
   "seq":I,"t":T,"dur":D}            (seq 0..6, stage order above)
{"trace":"req",...,"stage":"done","seq":7,"t":T,"dur":E2E,
   "verdict":V} v}

    [t] is seconds since the writer was installed; [dur] the stage
    duration; [verdict] one of [admitted], [rejected], [undecided],
    [info], [dropped], [error]. *)

type t

val stages : string array
(** The seven stage names, in pipeline order. *)

val n_stages : int

val stage_index : string -> int option

val none : t
(** Disabled-path sentinel: marking or finishing it is a no-op. *)

val set_writer : (string -> unit) option -> unit
(** Install (or remove) the JSONL line writer.  Installing also anchors
    the trace time base at the current clock reading. *)

val active : unit -> bool
(** True when a writer is installed or registry stats are on — the
    batcher's one-word test for whether to allocate trace contexts. *)

val start : id:int -> op:string -> shop:string -> t
(** A fresh context whose queue stage starts now.  Call only when
    {!active}; reads the clock once. *)

val mark : t -> int -> unit
(** Close stage [i] (0–5) at the current clock reading.  No-op on
    {!none}. *)

val set_verdict : t -> string -> unit

val finish : t -> unit
(** Close the render stage (the final clock read), write the request's
    JSONL records and feed the registry histograms.  Call exactly once
    per request, after the reply has been rendered.  The JSONL writer
    is serialised internally per request, so a striped server may
    finish traces on several drainer domains — one request's records
    never interleave with another's (cross-stripe record order is
    arbitrary; the per-id schema is indifferent).  No-op on {!none}. *)

val id : t -> int
val op : t -> string
val shop : t -> string
val verdict : t -> string

(** Parsing and validation of the JSONL trace stream — shared by
    [e2e-trace] and [jsonl_check --trace]. *)
module Schema : sig
  type record = {
    id : int;
    op : string;
    shop : string;
    stage : string;
    seq : int;
    t : float;
    dur : float;
    verdict : string option;  (** Present exactly on ["done"] records. *)
  }

  val of_json : E2e_obs.Json.t -> (record option, string) result
  (** [Ok None] on JSON values that are not request-trace records
      (other telemetry may share the stream); [Error _] on a trace
      record with a missing or ill-typed required field. *)

  type validator

  val validator : unit -> validator

  val feed : validator -> record -> (unit, string) result
  (** Check one record: stages arrive in canonical order per request
      id, durations are [>= 0], timestamps never move backwards within
      a request, and each ["done"] record's end-to-end duration equals
      the sum of its stage durations (within float tolerance). *)

  val completed : validator -> int
  (** Requests whose ["done"] record has been accepted. *)

  val check_closed : validator -> (unit, string) result
  (** [Error _] if any request's trace was truncated before [done]. *)
end
