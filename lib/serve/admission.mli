(** Online admission control over committed flow-shop workloads.

    The paper's algorithms decide feasibility of a task set handed to
    them whole; a serving system receives task sets {e continuously} and
    must answer each arrival against the work it has already promised.
    This module is that decision core: a pure, deterministic engine
    holding, per named flow shop, the {e committed} task set — the tasks
    whose deadlines the service has already guaranteed.

    A request either proposes a whole task set for a new shop
    ({!request.Submit}) or adds tasks to an existing one
    ({!request.Add}).  The engine re-solves the committed-plus-candidate
    set through the strongest applicable algorithm
    ({!E2e_core.Solver}, escalating to {!E2e_core.H_portfolio} when
    Algorithm H gives up) and answers:

    - [Admitted]: a checker-verified schedule of the {e whole} committed
      set including the candidate exists; the candidate is committed and
      the new schedule returned.
    - [Rejected]: the candidate is {e not} committed.  When an optimal
      algorithm applied, or a polynomial {!E2e_core.Infeasibility}
      certificate exists, the rejection carries that proof.
    - [Undecided]: the heuristic path failed and no certificate exists
      (the general problem is NP-hard); the candidate is not committed,
      but a retry with a larger {!budget} may succeed.

    The per-request {!budget} bounds solve cost {e deterministically}
    (portfolio strategies attempted, not wall-clock), so identical
    request logs always produce identical replies — the property the
    batcher and the differential fuzzer build on.

    Telemetry: counters [serve.requests], [serve.admitted],
    [serve.rejected], [serve.undecided], [serve.request_errors],
    [serve.solves], [serve.budget_exhausted], [serve.verify_failures]. *)

type rat = E2e_rat.Rat.t

type budget =
  | Unbounded  (** Try the full portfolio on heuristic failure. *)
  | Strategies of int
      (** Attempt at most this many portfolio strategies after Algorithm
          H fails; [Strategies 0] answers [Undecided] straight away. *)

type decision =
  | Admitted of { schedule : E2e_schedule.Schedule.t; algo : string }
      (** [algo] names what produced the schedule ([eedf], [algo_a],
          [algo_h], [algo_r], [greedy_edf], [portfolio], [cache]). *)
  | Rejected of { certificate : E2e_core.Infeasibility.certificate option }
      (** [None] when an optimal algorithm proved infeasibility but the
          polynomial certificate generator found no witness window. *)
  | Undecided of { reason : string }

type t
(** Immutable committed state: a map from shop name to its committed
    task set.  All transitions go through {!apply}. *)

type request =
  | Submit of { shop : string; instance : E2e_model.Recurrence_shop.t }
      (** Propose a whole task set for a shop that must not yet exist. *)
  | Add of { shop : string; tasks : (rat * rat * rat array) list }
      (** Propose [(release, deadline, proc_times)] tasks for an
          existing shop; stage counts must match its visit sequence. *)
  | Query of { shop : string }
  | Drop of { shop : string }  (** Release the shop's commitments. *)

type reply =
  | Decided of { shop : string; n_tasks : int; decision : decision }
      (** [n_tasks]: size of the candidate set the decision is about. *)
  | Queried of { shop : string; n_tasks : int option }
      (** [None] when the shop does not exist. *)
  | Dropped of { shop : string; existed : bool }
  | Request_error of { shop : string; message : string }

val empty : t
val shops : t -> (string * E2e_model.Recurrence_shop.t) list
(** Committed shops, sorted by name. *)

val find : t -> string -> E2e_model.Recurrence_shop.t option
val n_committed : t -> int
(** Total committed tasks across all shops. *)

val solve : budget:budget -> E2e_model.Recurrence_shop.t -> decision
(** The raw, cache-free solve {!decide} builds on — a pure function of
    the candidate, safe to run from worker domains.  Does not bump the
    verdict counters ({!decide} and the batcher do, once per reply). *)

val relabel :
  Cache.canonical -> E2e_model.Recurrence_shop.t -> decision -> decision
(** Map a decision computed on [canonical.shop] back to the candidate's
    original task labelling (schedules get their rows permuted;
    rejections and undecideds pass through). *)

val verify_decision : decision -> decision
(** The pipeline's "verify" stage: re-check an [Admitted] schedule
    against the independent {!E2e_schedule.Schedule.check} checker after
    relabelling, before commit.  On the (never-expected) failure of a
    solver-constructed schedule, bumps [serve.verify_failures] and
    downgrades to [Undecided { reason = "verify-failed" }] rather than
    committing an unverified schedule.  [Rejected]/[Undecided] pass
    through.  Runs in both the batched and the sequential reference
    paths, so the differential harnesses agree by construction. *)

val cache_key : budget:budget -> Cache.canonical -> string
(** The cache key for a canonical candidate under a budget — the budget
    is part of the key, so decisions taken under different budgets never
    alias. *)

val record_decision : decision -> unit
(** Bump the [serve.admitted]/[serve.rejected]/[serve.undecided]
    counter for one reply (exposed for the batcher, which replays
    {!decide}'s cache dance in deterministic phases). *)

val decide :
  ?budget:budget ->
  ?cache:decision Cache.t ->
  E2e_model.Recurrence_shop.t ->
  decision
(** Decide one candidate set in isolation (the committed set merged with
    the proposal — {!apply} constructs it).  The candidate is always
    canonicalized and the solve runs on the canonical form (so verdicts
    are independent of task labelling, whether or not a cache is in
    play); with [cache], a hit replays the cached decision with its
    schedule relabelled to the candidate's task ids and a miss stores
    the canonical decision.  Default budget: [Unbounded]. *)

val decide_canonical :
  ?budget:budget ->
  ?cache:decision Cache.t ->
  Cache.canonical ->
  E2e_model.Recurrence_shop.t ->
  decision
(** {!decide} with the canonicalization already done — the entry point
    for {!prepare}d requests, so the incremental canonical (committed
    merge or keyer reuse) is not thrown away and recomputed. *)

type prepared = { candidate : E2e_model.Recurrence_shop.t; canon : Cache.canonical }
(** A validated [Submit]/[Add]: the merged committed-plus-candidate set
    together with its canonical form. *)

val prepare : ?keyer:Cache.Keyer.t -> t -> request -> (prepared, reply) result
(** Validate one request and canonicalize its candidate, or return the
    error/informational reply for requests that need no solve ([Query],
    [Drop], malformed [Submit]/[Add]).  This is where the incremental
    machinery lives: an [Add] merges the fresh tasks into the committed
    set's {e stored} canonical ({!Cache.merge} — committed lines and
    order are reused), and a [Submit] goes through the [keyer]'s
    structural pre-key when one is given, skipping the render-and-digest
    for repeated instances.  Exposed so the batcher can validate and
    canonicalize sequentially while fanning only the solves out in
    parallel. *)

val candidate_of_request :
  t -> request -> (E2e_model.Recurrence_shop.t, reply) result
(** [prepare] without the canonical — the merged candidate set a
    [Submit]/[Add] asks the engine to guarantee. *)

val commit : ?prepared:prepared -> t -> request -> decision option -> t
(** Fold a processed request into the state: a [Submit]/[Add] decided
    [Admitted] commits its candidate {e and its canonical} (handed back
    on the next [Add]'s merge), [Drop] removes its shop, and everything
    else ([Rejected], [Undecided], [Query], no-solve replies) leaves the
    state unchanged.  Pass the [prepared] value from {!prepare} to avoid
    re-validating and re-canonicalizing; without it the commit recomputes
    both. *)

val apply :
  ?budget:budget ->
  ?cache:decision Cache.t ->
  ?keyer:Cache.Keyer.t ->
  t ->
  request ->
  t * reply
(** [prepare] + [decide_canonical] + [commit] in one step — the
    sequential reference interpreter the differential fuzzer checks the
    batched engine against. *)

val decision_kind : decision -> string
(** ["admitted"], ["rejected"] or ["undecided"] — the verdict signature
    that must agree between cached and uncached runs (schedules may
    legitimately differ between permuted instances; verdicts never). *)

val pp_reply : Format.formatter -> reply -> unit
(** One-line, deterministic rendering (the transport protocol reuses
    it). *)
