(** Online admission control over committed flow-shop workloads.

    The paper's algorithms decide feasibility of a task set handed to
    them whole; a serving system receives task sets {e continuously} and
    must answer each arrival against the work it has already promised.
    This module is that decision core: a pure, deterministic engine
    holding, per named flow shop, the {e committed} task set — the tasks
    whose deadlines the service has already guaranteed.

    A request either proposes a whole task set for a new shop
    ({!request.Submit}) or adds tasks to an existing one
    ({!request.Add}).  The engine re-solves the committed-plus-candidate
    set through the strongest applicable algorithm
    ({!E2e_core.Solver}, escalating to {!E2e_core.H_portfolio} when
    Algorithm H gives up) and answers:

    - [Admitted]: a checker-verified schedule of the {e whole} committed
      set including the candidate exists; the candidate is committed and
      the new schedule returned.
    - [Rejected]: the candidate is {e not} committed.  When an optimal
      algorithm applied, or a polynomial {!E2e_core.Infeasibility}
      certificate exists, the rejection carries that proof.
    - [Undecided]: the heuristic path failed and no certificate exists
      (the general problem is NP-hard); the candidate is not committed,
      but a retry with a larger {!budget} may succeed.

    The per-request {!budget} bounds solve cost {e deterministically}
    (portfolio strategies attempted, not wall-clock), so identical
    request logs always produce identical replies — the property the
    batcher and the differential fuzzer build on.

    Telemetry: counters [serve.requests], [serve.admitted],
    [serve.rejected], [serve.undecided], [serve.request_errors],
    [serve.solves], [serve.budget_exhausted], [serve.verify_failures]. *)

type rat = E2e_rat.Rat.t

type budget =
  | Unbounded  (** Try the full portfolio on heuristic failure. *)
  | Strategies of int
      (** Attempt at most this many portfolio strategies after Algorithm
          H fails; [Strategies 0] answers [Undecided] straight away. *)

type decision =
  | Admitted of { schedule : E2e_schedule.Schedule.t; algo : string }
      (** [algo] names what produced the schedule ([eedf], [algo_a],
          [algo_h], [algo_r], [greedy_edf], [portfolio], [cache]). *)
  | Rejected of { certificate : E2e_core.Infeasibility.certificate option }
      (** [None] when an optimal algorithm proved infeasibility but the
          polynomial certificate generator found no witness window. *)
  | Undecided of { reason : string }

type inc_state =
  | Machine of E2e_core.Solver.Incremental.t
      (** A warm incremental solver handle (identical-length / EEDF
          shops): the next [Add] re-solves by O(delta) task deltas. *)
  | Hint of E2e_core.H_portfolio.strategy
      (** The portfolio strategy that last admitted the shop: the next
          full solve tries it first. *)
(** Warm-start state parked with a committed shop.  Decision-transparent
    by construction: the delta path is byte-identical to a cold solve
    and the hint is part of the cache key, so entries with and without
    state always produce the same replies — only the work differs. *)

type t
(** Immutable committed state: a map from shop name to its committed
    task set (plus canonical form and warm-start state).  All
    transitions go through {!apply}. *)

type request =
  | Submit of { shop : string; instance : E2e_model.Recurrence_shop.t }
      (** Propose a whole task set for a shop that must not yet exist. *)
  | Add of { shop : string; tasks : (rat * rat * rat array) list }
      (** Propose [(release, deadline, proc_times)] tasks for an
          existing shop; stage counts must match its visit sequence. *)
  | Query of { shop : string }
  | Drop of { shop : string }  (** Release the shop's commitments. *)

type reply =
  | Decided of { shop : string; n_tasks : int; decision : decision }
      (** [n_tasks]: size of the candidate set the decision is about. *)
  | Queried of { shop : string; n_tasks : int option }
      (** [None] when the shop does not exist. *)
  | Dropped of { shop : string; existed : bool }
  | Request_error of { shop : string; message : string }

val empty : t
val shops : t -> (string * E2e_model.Recurrence_shop.t) list
(** Committed shops, sorted by name. *)

val find : t -> string -> E2e_model.Recurrence_shop.t option
val n_committed : t -> int
(** Total committed tasks across all shops. *)

val solve : budget:budget -> E2e_model.Recurrence_shop.t -> decision
(** The raw, cache-free solve {!decide} builds on — a pure function of
    the candidate, safe to run from worker domains.  Does not bump the
    verdict counters ({!decide} and the batcher do, once per reply). *)

val relabel :
  Cache.canonical -> E2e_model.Recurrence_shop.t -> decision -> decision
(** Map a decision computed on [canonical.shop] back to the candidate's
    original task labelling (schedules get their rows permuted;
    rejections and undecideds pass through). *)

val verify_decision : decision -> decision
(** The pipeline's "verify" stage: re-check an [Admitted] schedule
    against the independent {!E2e_schedule.Schedule.check} checker after
    relabelling, before commit.  On the (never-expected) failure of a
    solver-constructed schedule, bumps [serve.verify_failures] and
    downgrades to [Undecided { reason = "verify-failed" }] rather than
    committing an unverified schedule.  [Rejected]/[Undecided] pass
    through.  Runs in both the batched and the sequential reference
    paths, so the differential harnesses agree by construction. *)

type solved = { decision : decision; hint : E2e_core.H_portfolio.strategy option }
(** What the cache stores: the pre-verify canonical decision plus the
    portfolio strategy that produced it (when one did).  The hint rides
    along so a cache hit commits the same warm-start state as the solve
    it replaces — cached and uncached runs then hint future solves
    identically. *)

val cache_key :
  budget:budget -> ?hint:E2e_core.H_portfolio.strategy -> Cache.canonical -> string
(** The cache key for a canonical candidate under a budget — the budget
    is part of the key, so decisions taken under different budgets never
    alias.  So is the warm-start [hint]: it reorders the portfolio and
    changes which strategy wins, so hinted and unhinted solves of the
    same canonical set are distinct cache entries. *)

val record_decision : decision -> unit
(** Bump the [serve.admitted]/[serve.rejected]/[serve.undecided]
    counter for one reply (exposed for the batcher, which replays
    {!decide}'s cache dance in deterministic phases). *)

val decide :
  ?budget:budget ->
  ?cache:solved Cache.t ->
  E2e_model.Recurrence_shop.t ->
  decision
(** Decide one candidate set in isolation (the committed set merged with
    the proposal — {!apply} constructs it).  The candidate is always
    canonicalized and the solve runs on the canonical form (so verdicts
    are independent of task labelling, whether or not a cache is in
    play); with [cache], a hit replays the cached decision with its
    schedule relabelled to the candidate's task ids and a miss stores
    the canonical decision.  Default budget: [Unbounded]. *)

val decide_canonical :
  ?budget:budget ->
  ?cache:solved Cache.t ->
  Cache.canonical ->
  E2e_model.Recurrence_shop.t ->
  decision
(** {!decide} with the canonicalization already done.  This entry point
    has no committed-state context, so it never takes the delta path and
    never hints — use {!decide_prepared} for requests that went through
    {!prepare}. *)

type prepared = {
  candidate : E2e_model.Recurrence_shop.t;
  canon : Cache.canonical;
  base_inc : inc_state option;
      (** The committed shop's warm-start state ([Add] only). *)
  is_add : bool;
}
(** A validated [Submit]/[Add]: the merged committed-plus-candidate set
    together with its canonical form and the warm-start context the
    delta path and the portfolio hint run on. *)

val prepare : ?keyer:Cache.Keyer.t -> t -> request -> (prepared, reply) result
(** Validate one request and canonicalize its candidate, or return the
    error/informational reply for requests that need no solve ([Query],
    [Drop], malformed [Submit]/[Add]).  This is where the incremental
    machinery lives: an [Add] merges the fresh tasks into the committed
    set's {e stored} canonical ({!Cache.merge} — committed lines and
    order are reused), and a [Submit] goes through the [keyer]'s
    structural pre-key when one is given, skipping the render-and-digest
    for repeated instances.  Exposed so the batcher can validate and
    canonicalize sequentially while fanning only the solves out in
    parallel. *)

val candidate_of_request :
  t -> request -> (E2e_model.Recurrence_shop.t, reply) result
(** [prepare] without the canonical — the merged candidate set a
    [Submit]/[Add] asks the engine to guarantee. *)

val try_incremental : prepared -> (decision * inc_state option) option
(** The O(delta) path: an [Add] to a shop whose committed solve left a
    [Machine] handle extends that handle with the fresh canonical jobs
    and reads the verdict — no cache, no full solve.  [None] falls back
    to the cache/solve path (not an [Add], no handle, or the merged set
    left the identical-length class).  The returned canonical decision
    is byte-identical to what a cold solve would produce (the [eedf-inc]
    fuzz contract); the state is the extended handle to {!commit}.
    Bumps [serve.inc_hits]/[serve.inc_misses] for [Add] requests. *)

val hint_of : prepared -> E2e_core.H_portfolio.strategy option
(** The portfolio hint the committed shop carries, if any — what
    {!solve_prepared} warm-starts with and {!cache_key} tags. *)

val solve_prepared : budget:budget -> prepared -> solved * inc_state option
(** The hinted full solve for one prepared candidate, on its canonical
    form.  Pure (no cache, no commit), safe on worker domains — the
    batcher fans cache misses out with it.  The [solved] is what the
    cache stores; the state is what {!commit} parks. *)

val state_of_cached : solved -> inc_state option
(** The warm-start state a cache hit commits: the cached hint (a
    [Machine] handle is never reconstructed from the cache — the next
    [Add] simply takes the full-solve path, with identical replies). *)

val decide_prepared :
  ?budget:budget -> ?cache:solved Cache.t -> prepared -> decision * inc_state option
(** Decide one prepared candidate with every warm-start facility, in
    fixed precedence: {!try_incremental} first (never touches the
    cache), then the cache under the hint-tagged key, then
    {!solve_prepared}.  Relabels, verifies and records the decision;
    returns the state for {!commit}.  The batcher replays exactly this
    ordering across its phases, so both interpreters agree
    reply-for-reply. *)

val commit : ?prepared:prepared -> ?state:inc_state option -> t -> request -> decision option -> t
(** Fold a processed request into the state: a [Submit]/[Add] decided
    [Admitted] commits its candidate {e and its canonical} (handed back
    on the next [Add]'s merge) {e and the warm-start [state]} (default
    none), [Drop] removes its shop, and everything else ([Rejected],
    [Undecided], [Query], no-solve replies) leaves the state unchanged.
    Pass the [prepared] value from {!prepare} to avoid re-validating and
    re-canonicalizing; without it the commit recomputes both. *)

val resident_sizes : t -> (string * int) list
(** Committed task count per shop, sorted by shop name — the per-shop
    resident size the [metrics] reply exposes. *)

val warm_resident : t -> int
(** Total tasks held in warm [Machine] handles across all shops — how
    much of the committed state the delta path can currently serve. *)

val apply :
  ?budget:budget ->
  ?cache:solved Cache.t ->
  ?keyer:Cache.Keyer.t ->
  t ->
  request ->
  t * reply
(** [prepare] + [decide_prepared] + [commit] in one step — the
    sequential reference interpreter the differential fuzzer checks the
    batched engine against. *)

val decision_kind : decision -> string
(** ["admitted"], ["rejected"] or ["undecided"] — the verdict signature
    that must agree between cached and uncached runs (schedules may
    legitimately differ between permuted instances; verdicts never). *)

val pp_reply : Format.formatter -> reply -> unit
(** One-line, deterministic rendering (the transport protocol reuses
    it). *)
