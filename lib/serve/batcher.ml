module Recurrence_shop = E2e_model.Recurrence_shop
module Pool = E2e_exec.Pool
module Obs = E2e_obs.Obs

type config = {
  queue_capacity : int;
  batch : int;
  budget : Admission.budget;
  jobs : int;
  cache_capacity : int;
}

(* The default cache capacity is sized to the working set of a
   loadgen-scale stream (a few thousand distinct canonical keys), not to
   a token "some caching" value: an LRU smaller than the working set
   thrashes and hits only on immediate repeats. *)
let default_config =
  { queue_capacity = 1024; batch = 16; budget = Admission.Unbounded; jobs = 1; cache_capacity = 4096 }

(* Always-on service accounting (plain ints on the main domain, no
   [Obs] dependency): the live half of the [metrics] protocol command,
   available even when the registry is off. *)
type service_stats = {
  submitted : int;
  rejected_backpressure : int;
  batches : int;
  batched_requests : int;
  max_batch : int;
  budget_exhausted : int;
  verify_failures : int;
  inc_hits : int;  (* Add requests decided by the O(delta) warm path *)
  inc_misses : int;  (* Add requests that fell back to cache/full solve *)
  resident : (string * int) list;  (* committed tasks per shop, sorted *)
  verdicts : (string * (int * int * int)) list;
      (* per shop: admitted, rejected, undecided — sorted by shop *)
}

type svc = {
  mutable submitted : int;
  mutable rejected_backpressure : int;
  mutable batches : int;
  mutable batched_requests : int;
  mutable max_batch : int;
  mutable budget_exhausted : int;
  mutable verify_failures : int;
  mutable inc_hits : int;
  mutable inc_misses : int;
  verdict_tbl : (string, int array) Hashtbl.t;  (* [| admitted; rejected; undecided |] *)
}

type t = {
  cfg : config;
  cache : Admission.solved Cache.t option;
  keyer : Cache.Keyer.t;
  mutable engine : Admission.t;
  queue : (Admission.request * Rtrace.t) Queue.t;
  mutable seq : int;  (* last request id handed out at ingress *)
  id_stride : int;  (* id increment — stripe k of n uses offset k, stride n *)
  svc : svc;
}

let create ?(config = default_config) ?(id_offset = 0) ?(id_stride = 1) () =
  if config.queue_capacity < 1 then invalid_arg "Batcher.create: queue_capacity must be >= 1";
  if config.batch < 1 then invalid_arg "Batcher.create: batch must be >= 1";
  if config.jobs < 1 then invalid_arg "Batcher.create: jobs must be >= 1";
  if config.cache_capacity < 0 then invalid_arg "Batcher.create: cache_capacity must be >= 0";
  if id_stride < 1 then invalid_arg "Batcher.create: id_stride must be >= 1";
  if id_offset < 0 || id_offset >= id_stride then
    invalid_arg "Batcher.create: id_offset must be in [0, id_stride)";
  {
    cfg = config;
    cache =
      (if config.cache_capacity = 0 then None
       else Some (Cache.create ~capacity:config.cache_capacity));
    keyer = Cache.Keyer.create ();
    engine = Admission.empty;
    queue = Queue.create ();
    seq = id_offset + 1 - id_stride;  (* first id handed out: id_offset + 1 *)
    id_stride;
    svc =
      {
        submitted = 0;
        rejected_backpressure = 0;
        batches = 0;
        batched_requests = 0;
        max_batch = 0;
        budget_exhausted = 0;
        verify_failures = 0;
        inc_hits = 0;
        inc_misses = 0;
        verdict_tbl = Hashtbl.create 32;
      };
  }

let config t = t.cfg
let engine t = t.engine
let cache_stats t = Option.map Cache.stats t.cache
let keyer_stats t = Cache.Keyer.stats t.keyer
let pending t = Queue.length t.queue
let last_id t = t.seq

let service_stats t =
  {
    submitted = t.svc.submitted;
    rejected_backpressure = t.svc.rejected_backpressure;
    batches = t.svc.batches;
    batched_requests = t.svc.batched_requests;
    max_batch = t.svc.max_batch;
    budget_exhausted = t.svc.budget_exhausted;
    verify_failures = t.svc.verify_failures;
    inc_hits = t.svc.inc_hits;
    inc_misses = t.svc.inc_misses;
    resident = Admission.resident_sizes t.engine;
    verdicts =
      Hashtbl.fold
        (fun shop c acc -> (shop, (c.(0), c.(1), c.(2))) :: acc)
        t.svc.verdict_tbl []
      |> List.sort (fun (a, _) (b, _) -> compare a b);
  }

let shop_of = function
  | Admission.Submit { shop; _ } | Add { shop; _ } | Query { shop } | Drop { shop } -> shop

let op_of = function
  | Admission.Submit _ -> "submit"
  | Add _ -> "add"
  | Query _ -> "query"
  | Drop _ -> "drop"

let submit t request =
  Obs.incr "serve.requests";
  t.svc.submitted <- t.svc.submitted + 1;
  if Queue.length t.queue >= t.cfg.queue_capacity then begin
    Obs.incr "serve.overloaded";
    t.svc.rejected_backpressure <- t.svc.rejected_backpressure + 1;
    `Overloaded
  end
  else begin
    (* Ids are assigned at ingress whether or not tracing is on, so a
       request keeps the same id when tracing is toggled. *)
    t.seq <- t.seq + t.id_stride;
    let tr =
      if Rtrace.active () then
        Rtrace.start ~id:t.seq ~op:(op_of request) ~shop:(shop_of request)
      else Rtrace.none
    in
    Queue.push (request, tr) t.queue;
    `Queued
  end

(* Phase-1 classification of one batch member. *)
type slot =
  | Resolved of Admission.reply  (* no solve needed (error/query/drop) *)
  | Inc of {
      decision : Admission.decision;
      state : Admission.inc_state option;
      prepared : Admission.prepared;
    }
      (* Decided in phase 1 by the O(delta) warm path — the same
         precedence the sequential interpreter uses (delta before
         cache).  The delta solve is cheap enough for the ingress
         domain; relabelling and verification still happen in phase 3. *)
  | Hit of { solved : Admission.solved; prepared : Admission.prepared }
      (* [solved] is the cached {e canonical} decision (plus its warm
         hint); relabelling and verification happen in phase 3, where
         they are attributed to the verify stage like the miss path's. *)
  | Miss of Admission.prepared
      (* Solves always run on the canonical form — whether or not the
         result will be cached — so verdicts are independent of the
         candidate's task labelling and cache-on/cache-off runs agree
         by construction. *)

let take_batch t =
  let rec go acc shops =
    if List.length acc >= t.cfg.batch then List.rev acc
    else
      match Queue.peek_opt t.queue with
      | None -> List.rev acc
      | Some (req, _) ->
          let shop = shop_of req in
          if List.mem shop shops then List.rev acc
          else begin
            let (_, tr) as item = Queue.pop t.queue in
            (* The queue stage ends when the request joins a batch. *)
            Rtrace.mark tr 0;
            go (item :: acc) (shop :: shops)
          end
  in
  go [] []

let verdict_of_reply = function
  | Admission.Decided { decision; _ } -> Admission.decision_kind decision
  | Admission.Queried _ -> "info"
  | Admission.Dropped _ -> "dropped"
  | Admission.Request_error _ -> "error"

let bump_verdict t shop = function
  | Admission.Admitted _ | Rejected _ | Undecided _ as d ->
      let cell =
        match Hashtbl.find_opt t.svc.verdict_tbl shop with
        | Some c -> c
        | None ->
            let c = [| 0; 0; 0 |] in
            Hashtbl.add t.svc.verdict_tbl shop c;
            c
      in
      let i =
        match d with Admission.Admitted _ -> 0 | Rejected _ -> 1 | Undecided _ -> 2
      in
      cell.(i) <- cell.(i) + 1;
      (match d with
      | Admission.Undecided { reason } when reason = "budget-exhausted" ->
          t.svc.budget_exhausted <- t.svc.budget_exhausted + 1
      | Admission.Undecided { reason } when reason = "verify-failed" ->
          t.svc.verify_failures <- t.svc.verify_failures + 1
      | _ -> ())

let step t =
  match take_batch t with
  | [] -> []
  | batch ->
      Obs.span "serve.batch" (fun () ->
          Obs.incr "serve.batches";
          t.svc.batches <- t.svc.batches + 1;
          let bs = List.length batch in
          t.svc.batched_requests <- t.svc.batched_requests + bs;
          if bs > t.svc.max_batch then t.svc.max_batch <- bs;
          if Obs.stats_enabled () then Obs.observe "serve.batch_size" (float_of_int bs);
          (* Phase 1 (sequential, submission order): preconditions and
             cache lookups.  All cache mutation — and every clock read —
             stays on this domain. *)
          let slots =
            List.map
              (fun (req, tr) ->
                match Admission.prepare ~keyer:t.keyer t.engine req with
                | Error reply ->
                    Rtrace.mark tr 1;
                    Rtrace.mark tr 2;
                    (req, tr, Resolved reply)
                | Ok ({ Admission.canon; _ } as prepared) -> (
                    Rtrace.mark tr 1;
                    (* Delta path before cache — the same precedence
                       {!Admission.decide_prepared} uses, so cache-on
                       batched and cache-off sequential runs agree.  The
                       shops in one batch are distinct (take_batch), so
                       the engine state every delta extends is the
                       batch-start state for its shop. *)
                    match Admission.try_incremental prepared with
                    | Some (decision, state) ->
                        t.svc.inc_hits <- t.svc.inc_hits + 1;
                        Rtrace.mark tr 2;
                        (req, tr, Inc { decision; state; prepared })
                    | None -> (
                        if prepared.Admission.is_add then
                          t.svc.inc_misses <- t.svc.inc_misses + 1;
                        match t.cache with
                        | None ->
                            Rtrace.mark tr 2;
                            (req, tr, Miss prepared)
                        | Some cache ->
                            let key =
                              Admission.cache_key ~budget:t.cfg.budget
                                ?hint:(Admission.hint_of prepared) canon
                            in
                            let slot =
                              match Cache.find cache key with
                              | Some solved -> Hit { solved; prepared }
                              | None -> Miss prepared
                            in
                            Rtrace.mark tr 2;
                            (req, tr, slot))))
              batch
          in
          (* Phase 2 (parallel): solve the misses.  Submission order is
             preserved by Pool.run and each solve is pure — worker
             domains never touch the clock, so traces are unaffected by
             the domain count.  The persistent pool matters here: a
             server steps thousands of small batches, and a per-batch
             domain spawn would cost more than the solves. *)
          let misses =
            List.filter_map
              (function
                | _, _, Miss prepared -> Some prepared
                | _, _, (Resolved _ | Hit _ | Inc _) -> None)
              slots
            |> Array.of_list
          in
          let solved =
            Pool.run ~jobs:t.cfg.jobs
              (Admission.solve_prepared ~budget:t.cfg.budget)
              misses
          in
          (* Phase 3 (sequential, submission order): relabel + verify,
             cache insertion, commits, reply emission. *)
          let next_miss = ref 0 in
          List.map
            (fun (req, tr, slot) ->
              match slot with
              | Resolved reply ->
                  Rtrace.mark tr 3;
                  Rtrace.mark tr 4;
                  t.engine <- Admission.commit t.engine req None;
                  Rtrace.mark tr 5;
                  Rtrace.set_verdict tr (verdict_of_reply reply);
                  (req, tr, reply)
              | Inc _ | Hit _ | Miss _ ->
                  (* canonical decision, warm state to commit, and the
                     cache entry to insert (miss path only). *)
                  let prepared, canonical, state, insert =
                    match slot with
                    | Inc { decision; state; prepared } -> (prepared, decision, state, None)
                    | Hit { solved; prepared } ->
                        (prepared, solved.Admission.decision, Admission.state_of_cached solved, None)
                    | Miss prepared ->
                        let s, state = solved.(!next_miss) in
                        incr next_miss;
                        (prepared, s.Admission.decision, state, Some s)
                    | Resolved _ -> assert false
                  in
                  let { Admission.candidate; canon; _ } = prepared in
                  Rtrace.mark tr 3;
                  let decision =
                    Admission.verify_decision (Admission.relabel canon candidate canonical)
                  in
                  Admission.record_decision decision;
                  Rtrace.mark tr 4;
                  (match (t.cache, insert) with
                  | Some cache, Some s ->
                      (* The cache stores the pre-verify canonical
                         decision; hits re-verify after relabelling, so
                         cache-on and cache-off verify identically. *)
                      Cache.add cache
                        (Admission.cache_key ~budget:t.cfg.budget
                           ?hint:(Admission.hint_of prepared) canon)
                        s
                  | _ -> ());
                  t.engine <- Admission.commit ~prepared ~state t.engine req (Some decision);
                  Rtrace.mark tr 5;
                  let shop = shop_of req in
                  bump_verdict t shop decision;
                  Rtrace.set_verdict tr (Admission.decision_kind decision);
                  ( req,
                    tr,
                    Admission.Decided
                      { shop; n_tasks = Recurrence_shop.n_tasks candidate; decision } ))
            slots)

let drain t =
  let rec go acc = match step t with [] -> List.concat (List.rev acc) | r -> go (r :: acc) in
  go []

type outcome = Reply of Admission.reply | Overloaded

let pp_outcome ppf = function
  | Reply r -> Admission.pp_reply ppf r
  | Overloaded -> Format.pp_print_string ppf "overloaded"

let process_log t log =
  let log = Array.of_list log in
  let outcomes = Array.make (Array.length log) Overloaded in
  let queued = Queue.create () in
  Array.iteri
    (fun i req ->
      match submit t req with `Queued -> Queue.push i queued | `Overloaded -> ())
    log;
  List.iter
    (fun (_, tr, reply) ->
      Rtrace.finish tr;
      outcomes.(Queue.pop queued) <- Reply reply)
    (drain t);
  outcomes
