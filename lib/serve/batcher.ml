module Recurrence_shop = E2e_model.Recurrence_shop
module Pool = E2e_exec.Pool
module Obs = E2e_obs.Obs

type config = {
  queue_capacity : int;
  batch : int;
  budget : Admission.budget;
  jobs : int;
  cache_capacity : int;
}

(* The default cache capacity is sized to the working set of a
   loadgen-scale stream (a few thousand distinct canonical keys), not to
   a token "some caching" value: an LRU smaller than the working set
   thrashes and hits only on immediate repeats. *)
let default_config =
  { queue_capacity = 1024; batch = 16; budget = Admission.Unbounded; jobs = 1; cache_capacity = 4096 }

type t = {
  cfg : config;
  cache : Admission.decision Cache.t option;
  keyer : Cache.Keyer.t;
  mutable engine : Admission.t;
  queue : Admission.request Queue.t;
}

let create ?(config = default_config) () =
  if config.queue_capacity < 1 then invalid_arg "Batcher.create: queue_capacity must be >= 1";
  if config.batch < 1 then invalid_arg "Batcher.create: batch must be >= 1";
  if config.jobs < 1 then invalid_arg "Batcher.create: jobs must be >= 1";
  if config.cache_capacity < 0 then invalid_arg "Batcher.create: cache_capacity must be >= 0";
  {
    cfg = config;
    cache =
      (if config.cache_capacity = 0 then None
       else Some (Cache.create ~capacity:config.cache_capacity));
    keyer = Cache.Keyer.create ();
    engine = Admission.empty;
    queue = Queue.create ();
  }

let config t = t.cfg
let engine t = t.engine
let cache_stats t = Option.map Cache.stats t.cache
let keyer_stats t = Cache.Keyer.stats t.keyer
let pending t = Queue.length t.queue

let shop_of = function
  | Admission.Submit { shop; _ } | Add { shop; _ } | Query { shop } | Drop { shop } -> shop

let submit t request =
  Obs.incr "serve.requests";
  if Queue.length t.queue >= t.cfg.queue_capacity then begin
    Obs.incr "serve.overloaded";
    `Overloaded
  end
  else begin
    Queue.push request t.queue;
    `Queued
  end

(* Phase-1 classification of one batch member. *)
type slot =
  | Resolved of Admission.reply  (* no solve needed (error/query/drop) *)
  | Hit of { decision : Admission.decision; prepared : Admission.prepared }
      (* [decision] already relabelled to the candidate *)
  | Miss of Admission.prepared
      (* Solves always run on the canonical form — whether or not the
         result will be cached — so verdicts are independent of the
         candidate's task labelling and cache-on/cache-off runs agree
         by construction. *)

let take_batch t =
  let rec go acc shops =
    if List.length acc >= t.cfg.batch then List.rev acc
    else
      match Queue.peek_opt t.queue with
      | None -> List.rev acc
      | Some req ->
          let shop = shop_of req in
          if List.mem shop shops then List.rev acc
          else begin
            ignore (Queue.pop t.queue);
            go (req :: acc) (shop :: shops)
          end
  in
  go [] []

let step t =
  match take_batch t with
  | [] -> []
  | batch ->
      Obs.span "serve.batch" (fun () ->
          Obs.incr "serve.batches";
          if Obs.stats_enabled () then
            Obs.observe "serve.batch_size" (float_of_int (List.length batch));
          (* Phase 1 (sequential, submission order): preconditions and
             cache lookups.  All cache mutation stays on this domain. *)
          let slots =
            List.map
              (fun req ->
                match Admission.prepare ~keyer:t.keyer t.engine req with
                | Error reply -> (req, Resolved reply)
                | Ok ({ Admission.candidate; canon } as prepared) -> (
                    match t.cache with
                    | None -> (req, Miss prepared)
                    | Some cache -> (
                        let key = Admission.cache_key ~budget:t.cfg.budget canon in
                        match Cache.find cache key with
                        | Some d ->
                            ( req,
                              Hit
                                { decision = Admission.relabel canon candidate d; prepared } )
                        | None -> (req, Miss prepared))))
              batch
          in
          (* Phase 2 (parallel): solve the misses.  Submission order is
             preserved by Pool.map and each solve is pure, so the result
             array is independent of the domain count. *)
          let misses =
            List.filter_map
              (function
                | _, Miss { Admission.canon; _ } -> Some canon.Cache.shop
                | _, (Resolved _ | Hit _) -> None)
              slots
            |> Array.of_list
          in
          let solved =
            Pool.map ~jobs:t.cfg.jobs (Admission.solve ~budget:t.cfg.budget) misses
          in
          (* Phase 3 (sequential, submission order): cache insertion,
             commits, reply emission. *)
          let next_miss = ref 0 in
          List.map
            (fun (req, slot) ->
              match slot with
              | Resolved reply ->
                  t.engine <- Admission.commit t.engine req None;
                  (req, reply)
              | Hit { decision; prepared } ->
                  Admission.record_decision decision;
                  t.engine <- Admission.commit ~prepared t.engine req (Some decision);
                  ( req,
                    Admission.Decided
                      {
                        shop = shop_of req;
                        n_tasks = Recurrence_shop.n_tasks prepared.Admission.candidate;
                        decision;
                      } )
              | Miss ({ Admission.candidate; canon } as prepared) ->
                  let decision = solved.(!next_miss) in
                  incr next_miss;
                  (match t.cache with
                  | Some cache ->
                      Cache.add cache
                        (Admission.cache_key ~budget:t.cfg.budget canon)
                        decision
                  | None -> ());
                  let decision = Admission.relabel canon candidate decision in
                  Admission.record_decision decision;
                  t.engine <- Admission.commit ~prepared t.engine req (Some decision);
                  ( req,
                    Admission.Decided
                      {
                        shop = shop_of req;
                        n_tasks = Recurrence_shop.n_tasks candidate;
                        decision;
                      } ))
            slots)

let drain t =
  let rec go acc = match step t with [] -> List.concat (List.rev acc) | r -> go (r :: acc) in
  go []

type outcome = Reply of Admission.reply | Overloaded

let pp_outcome ppf = function
  | Reply r -> Admission.pp_reply ppf r
  | Overloaded -> Format.pp_print_string ppf "overloaded"

let process_log t log =
  let log = Array.of_list log in
  let outcomes = Array.make (Array.length log) Overloaded in
  let queued = Queue.create () in
  Array.iteri
    (fun i req ->
      match submit t req with `Queued -> Queue.push i queued | `Overloaded -> ())
    log;
  List.iter
    (fun (_, reply) -> outcomes.(Queue.pop queued) <- Reply reply)
    (drain t);
  outcomes
