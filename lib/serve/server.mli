(** Transports for the admission service.

    {!session} runs the framed line protocol ({!Protocol}) over any
    in/out channel pair; {!serve_stdio} binds it to stdin/stdout and
    {!serve_tcp} to an iterative TCP accept loop (connections are served
    one at a time, in arrival order — the engine itself is the shared
    resource, so connection-level parallelism would only re-serialise on
    it; batching inside a session is where the parallelism lives).

    Sessions are {e pipelined}: up to [chunk] request lines are read
    before replies are written, so a replayed request log flows through
    the batcher in real batches.  Replies always come in request order,
    one line per non-blank request.  With a fixed chunk size the reply
    stream is a deterministic function of the request stream — the
    stdio smoke test in [make check] compares it byte-for-byte across
    worker-domain counts.

    When request tracing is active ({!Rtrace.active}) the transport
    closes each request's render stage as its reply line is emitted, in
    reply order, completing the per-request JSONL trace. *)

val session : ?schedules:bool -> ?chunk:int -> Batcher.t -> in_channel -> out_channel -> unit
(** Serve one session: write {!Protocol.greeting}, then read request
    lines until end-of-stream or [quit].  [chunk] (default: the
    batcher's batch size) is the pipelining depth — how many lines are
    read before the pending requests are drained and their replies
    written.  Interactive transports use [chunk = 1] so every request
    line is answered before the next is read. *)

val serve_stdio : ?schedules:bool -> Batcher.t -> unit
(** {!session} over stdin/stdout. *)

val serve_tcp :
  ?schedules:bool ->
  ?host:string ->
  ?max_connections:int ->
  port:int ->
  Batcher.t ->
  unit
(** Listen on [host:port] (default host 127.0.0.1) and serve
    connections iteratively with [chunk = 1]; committed state persists
    across connections.  [max_connections] stops the accept loop after
    that many sessions (tests and scripted runs); omitted, the loop
    runs until the process is killed. *)
