(** Transports for the admission service.

    {!session} runs the framed line protocol ({!Protocol}) over a raw
    input fd and an output channel; {!serve_stdio} binds it to
    stdin/stdout and {!serve_tcp} to a concurrent multi-domain TCP
    front end.  Both transports share one read path — the bounded
    {!Wire} line reader — so the 1 MiB request-line cap and trailing
    [\r] stripping apply identically to stdio and TCP sessions.

    Channel sessions are {e pipelined}: up to [chunk] request lines are
    read before replies are written, so a replayed request log flows
    through the batcher in real batches.  Replies always come in
    request order, one line per non-blank request.  With a fixed chunk
    size the reply stream is a deterministic function of the request
    stream — the stdio smoke test in [make check] compares it
    byte-for-byte across worker-domain counts.

    The TCP transport serves up to [accept_pool] connections
    simultaneously, each pipelining up to [window] outstanding replies
    over bounded per-connection read/write buffers.  Requests route by
    shop into a {!Stripes} batcher — same shop, same stripe — and one
    drainer domain per stripe steps its batcher and routes replies
    back, so admission semantics, {!Rtrace} stage attribution and the
    per-connection reply order are exactly the sequential transport's.
    Per-connection reply streams are byte-identical at every [jobs]
    value, at every stripe count, and under any cross-connection
    interleaving as long as connections use disjoint shop namespaces
    (an admission decision reads only its own shop's committed set,
    and the stripe map is a pure function of the shop name);
    [stats]/[metrics] replies describe the shared live service and are
    the one timing-dependent exception.

    When request tracing is active ({!Rtrace.active}) the transport
    closes each request's render stage as its reply line is rendered,
    in reply order, completing the per-request JSONL trace. *)

val session :
  ?schedules:bool -> ?chunk:int -> Batcher.t -> Unix.file_descr -> out_channel -> unit
(** Serve one session: write {!Protocol.greeting}, then read request
    lines (through the bounded {!Wire} reader) until end-of-stream or
    [quit].  [chunk] (default: the batcher's batch size) is the
    pipelining depth — how many lines are read before the pending
    requests are drained and their replies written.  Interactive
    channel transports use [chunk = 1] so every request line is
    answered before the next is read.  An oversized request line
    (longer than {!Wire.max_line}) is answered with an [error] reply
    and ends the session — the line was never fully read, so there is
    no safe resynchronisation point. *)

val serve_stdio : ?schedules:bool -> Batcher.t -> unit
(** {!session} over stdin/stdout. *)

val resolve_host : string -> Unix.inet_addr
(** Resolve a dotted quad ([127.0.0.1]) or a hostname ([localhost])
    to an IPv4 address.
    @raise Failure when the name does not resolve. *)

type control
(** External-shutdown handle for an embedded {!serve_tcp}: the
    in-process analogue of killing a shard process.  Create one with
    {!control}, pass it to {!serve_tcp}, and {!shutdown} from any
    thread — the listener stops accepting and every live connection is
    reset, so the server drains and {!serve_tcp} returns.  The cluster
    harnesses use it to exercise shard failover deterministically. *)

val control : unit -> control

val shutdown : control -> unit
(** Stop the server attached to this handle: wakes blocked accepts by
    shutting the listener down and resets every live connection
    (peers see a closed socket, exactly like a process kill).
    Requests already queued in the batcher are still answered before
    their connections tear down.  Idempotent; safe from any thread. *)

val serve_tcp :
  ?schedules:bool ->
  ?host:string ->
  ?max_connections:int ->
  ?accept_pool:int ->
  ?window:int ->
  ?ready:(int -> unit) ->
  ?control:control ->
  port:int ->
  Stripes.t ->
  unit
(** Listen on [host:port] (default host 127.0.0.1; [port = 0] binds an
    ephemeral port, reported through [ready]) and serve connections
    concurrently: [accept_pool] (default 4) reader domains each own one
    live connection at a time, [window] (default 64) bounds the
    pipelined replies buffered per connection, and one drainer domain
    per stripe of the given {!Stripes.t} steps that stripe's batcher
    ([Stripes.create ~stripes:1] reproduces the single-drainer
    server exactly).  Committed state persists across connections.
    [ready] is called with the bound port once the listener accepts
    connections — the hook tests and the in-process load generator use
    to connect to an ephemeral port.  [max_connections] bounds the
    {e total} number of connections accepted across the pool, after
    which the server drains and returns (tests and scripted runs);
    omitted, it serves until the process is killed.

    Robustness: transient accept failures ([EINTR], [ECONNABORTED],
    [EAGAIN]) are retried, resource-pressure failures back off and
    retry, [SIGPIPE] is ignored for the server's lifetime (a vanished
    peer surfaces as a write error on its own connection), a
    connection whose handler setup fails is closed without taking the
    server down, and teardown joins the connection's writer before
    closing the socket so every buffered reply — including the [quit]
    farewell — is flushed.  Hard read errors (a reset or half-closed
    peer, as opposed to a clean EOF) are counted and surfaced as
    [read_errors=] in [stats] and [serve_transport_read_errors_total]
    in [metrics]. *)
