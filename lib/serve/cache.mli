(** Canonicalizing solver cache.

    The admission engine re-solves the committed-plus-candidate task set
    on every request, and production request streams repeat themselves:
    the same task set is proposed again, or a permutation of it (task
    ids are labels, not semantics).  This module makes such repeats
    free.

    {b Canonical form.}  A (possibly recurrent) flow shop is normalised
    by sorting its tasks lexicographically by (release, deadline,
    processing-time vector) under exact rational comparison — rationals
    are already in canonical form (lowest terms, positive denominator,
    {!E2e_rat.Rat.t}), so the sorted {!E2e_model.Instance_io} rendering
    is a canonical representative of the instance's permutation class.
    The cache key is its digest.  Feasibility is invariant under task
    relabelling, so one cached solve answers every permutation of the
    instance; {!restore_starts} maps a schedule computed on the
    canonical shop back to the original task labelling.

    {b Replacement and metering.}  A bounded LRU: [find] refreshes
    recency, [add] evicts the least-recently-used entry once past
    capacity.  Hits, misses and evictions are counted both per cache
    ({!stats}) and in the global {!E2e_obs.Obs} registry
    ([serve.cache.hit], [serve.cache.miss], [serve.cache.eviction]).

    The cache is mutable but all operations are deterministic; the
    batcher keeps replies reproducible by performing every lookup and
    insertion at fixed points in submission order (never from worker
    domains). *)

type canonical = {
  shop : E2e_model.Recurrence_shop.t;  (** Tasks in canonical order, ids [0..n-1]. *)
  perm : int array;
      (** [perm.(p)] is the original id of the task at canonical
          position [p]. *)
  key : string;  (** Digest of the canonical rendering. *)
  lines : string array;
      (** [lines.(p)] is the rendered {!E2e_model.Instance_io.task_line}
          of the task at canonical position [p] — task lines are id-free,
          so they survive relabelling and are reused verbatim by
          {!merge} and {!Keyer}. *)
}

val canonicalize : E2e_model.Recurrence_shop.t -> canonical

val key : E2e_model.Recurrence_shop.t -> string
(** [key shop] = [(canonicalize shop).key]. *)

val merge : base:canonical -> E2e_model.Task.t array -> canonical
(** [merge ~base fresh] is [canonicalize] of the shop whose task array is
    [base]'s original task set followed by [fresh] (ids renumbered
    densely, [fresh.(i)] becoming original id [n + i]) — computed
    incrementally: the committed side contributes its already-sorted
    order and already-rendered lines, so only the [fresh] tasks are
    sorted and rendered before the single stable merge and digest.  This
    is the admission engine's [Add] hot path: the committed set's
    canonical is kept per shop and every re-solve reuses it. *)

(** Structural pre-key: a memo that recognises repeated instances (byte
    repeats and permutations alike) after sorting alone, skipping the
    render-and-digest step of {!canonicalize}.  Every memo hit is
    verified with exact rational comparison against the stored canonical
    before its key is reused, so fingerprint collisions cost time, never
    correctness.  Counters: [serve.keyer.reuse], [serve.keyer.render]. *)
module Keyer : sig
  type t

  val create : unit -> t

  val canonicalize : t -> E2e_model.Recurrence_shop.t -> canonical
  (** Same result as the top-level {!canonicalize} (the [perm] is the
      candidate's own; shop, key and lines may be shared with earlier
      results). *)

  type stats = { reused : int; rendered : int }

  val stats : t -> stats
end

val restore_starts :
  canonical -> E2e_rat.Rat.t array array -> E2e_rat.Rat.t array array
(** Map per-task start times computed against the canonical shop back to
    the original task order: row [perm.(p)] of the result is row [p] of
    the input. *)

type 'a t
(** An LRU cache from canonical keys to ['a]. *)

val create : capacity:int -> 'a t
(** [capacity] is the maximum number of entries; [0] disables the cache
    ({!find} always misses, {!add} is a no-op).
    @raise Invalid_argument if [capacity < 0]. *)

val capacity : 'a t -> int
val length : 'a t -> int

val find : 'a t -> string -> 'a option
(** Lookup by canonical key, refreshing recency and counting a hit or a
    miss. *)

val add : 'a t -> string -> 'a -> unit
(** Insert (or refresh) a binding, evicting the least-recently-used
    entry when the cache would exceed capacity. *)

type stats = { hits : int; misses : int; evictions : int; size : int }

val stats : 'a t -> stats

val hit_rate : 'a t -> float
(** [hits / (hits + misses)]; [0.] before any lookup. *)
