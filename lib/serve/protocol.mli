(** The framed line protocol of the admission service.

    One request per line, one reply line per request, over any byte
    stream (stdin/stdout or a TCP connection).  The protocol is
    versioned: the server greets with {!greeting} ([e2e-serve/1 ready])
    and a client may verify compatibility with an explicit handshake.

    Request grammar ([#] starts a comment, blank lines are ignored):

    {v
    hello e2e-serve/1            # optional version handshake
    submit <shop> <instance>     # propose a task set for a new shop
    add <shop> <tasks>           # add tasks to an existing shop
    query <shop>                 # committed size of a shop
    drop <shop>                  # release a shop's commitments
    stats                        # cache/queue/verdict counters
    metrics                      # full text exposition (see below)
    ping                         # liveness probe (cluster health checks)
    quit                         # close the session
    v}

    [<shop>] is a name matching [[A-Za-z0-9_.-]+].  [<instance>] is the
    {!E2e_model.Instance_io} text format with [;] standing for newline,
    e.g. [visit 1 2 ; task 0 10 1 1 ; task 0 8 2 2]; [<tasks>] is the
    same but restricted to [task] directives.  Numbers are decimals or
    exact fractions ([11/4]).

    Reply grammar (one line, first word is the reply tag):

    {v
    ok e2e-serve/1
    admitted shop=S tasks=N algo=A makespan=Q [schedule=CSV]
    rejected shop=S tasks=N certificate=C
    undecided shop=S tasks=N reason=R
    info shop=S tasks=N | info shop=S unknown
    dropped shop=S existed=B
    overloaded
    error shop=S MESSAGE | error MESSAGE
    stats KEY=VALUE ...
    metrics LINE;LINE;...
    pong e2e-serve/1
    bye
    v}

    [schedule=CSV] is {!E2e_schedule.Schedule.to_csv} with [;] for
    newline ([task,stage,processor,start,finish;0,0,1,0,1;...]) —
    parseable back into exact rationals.  The [metrics] reply is the
    Prometheus-style text exposition ({!E2e_obs.Obs.exposition}) with
    [;] standing for newline: live batcher samples (queue depth,
    committed shops/tasks, per-shop verdict counts, cache hit/miss,
    backpressure rejections, budget exhaustions) followed by the [Obs]
    registry's counters, gauges and per-stage latency histograms when
    stats are on. *)

val version : string
(** ["e2e-serve/1"]. *)

val greeting : string
(** The banner the server sends on session start:
    ["e2e-serve/1 ready"]. *)

type item =
  | Hello of string  (** Requested protocol version, to match {!version}. *)
  | Request of Admission.request
  | Stats
  | Metrics
  | Ping
      (** Liveness probe; answered [pong e2e-serve/1] without touching
          the batcher — the cluster status checker's heartbeat. *)
  | Quit
  | Blank  (** Empty or comment-only line: no reply is sent. *)

val cut_word : string -> string * string
(** First whitespace-delimited word of a trimmed line and the trimmed
    remainder — the protocol's tokenizer, exposed so the cluster
    dispatcher can extract the routing keyword and shop name without
    parsing (or validating) the rest of the request. *)

val parse_request : string -> (item, string) result
(** Parse one request line.  [Error] carries a human-readable message
    (the server wraps it in an [error] reply rather than dropping the
    session). *)

val render_request : Admission.request -> string
(** One request line, no terminator ([parse_request] round-trips it) —
    used by the load generator's TCP mode and by test fixtures. *)

val render_reply : ?schedules:bool -> Batcher.outcome -> string
(** One reply line, no terminator.  [schedules] (default [true])
    controls whether [admitted] replies carry the full [schedule=]
    field — load generators turn it off to keep reply parsing cheap. *)

val render_hello : requested:string -> string
(** [ok e2e-serve/1] when [requested] matches {!version}, an [error]
    line otherwise. *)

val render_stats : Batcher.t -> string
(** The [stats] reply: queue depth, committed shops/tasks, verdict
    counts and cache counters of this batcher. *)

val render_stats_striped : ?read_errors:int -> Stripes.t -> string
(** The striped transport's [stats] reply: the same line format with
    every figure aggregated across stripes, plus [read_errors=] (hard
    transport read errors, as distinct from clean EOFs) when given. *)

val render_metrics : Batcher.t -> string
(** The [metrics] reply: [;]-framed exposition lines — this batcher's
    live {!Batcher.service_stats} samples followed by
    {!E2e_obs.Obs.exposition_lines} (the latter empty unless stats are
    on).  Live and registry sample names never collide.  Deterministic:
    a function of the batcher state and registry contents only. *)

val render_metrics_striped : ?read_errors:int -> Stripes.t -> string
(** {!render_metrics} aggregated across stripes, with two extra
    samples: [serve_stripes] (the drainer stripe count) and
    [serve_transport_read_errors_total]. *)

val render_schedule : E2e_schedule.Schedule.t -> string
(** The [;]-framed CSV used in [admitted] replies (exposed for tests
    and the load generator). *)
