(* A striped batcher: [n] independent {!Batcher.t} instances with
   requests routed by a deterministic hash of their shop name, so all
   requests on one shop land on one stripe and commit sequentially
   there, while distinct shops spread across stripes and drain on
   separate domains.

   Determinism: an admission decision reads only its own shop's
   committed set, the canonical cache is transparency-verified
   (cache-on and cache-off replies are identical by construction), and
   the stripe map is a pure function of the shop name — so the reply
   to each request is byte-identical at any stripe count, and each
   connection's reply order is preserved by the transport's reply-slot
   queue regardless of which stripe fills a slot.  Request ids are
   partitioned (stripe [k] of [n] strides by [n] from offset [k]), so
   per-id trace invariants hold at any stripe count. *)

(* FNV-1a with the same murmur-style finalizer the cluster registry
   uses for its ring positions.  Re-implemented here rather than shared
   because the dependency points the other way: [e2e_cluster] builds on
   [e2e_serve].  The two need not agree — this hash picks a stripe
   inside one server, the registry's picks a shard across servers. *)
let fnv_basis = Int64.to_int 0xcbf29ce484222325L (* truncated to 63 bits *)
let mix_m1 = Int64.to_int 0xff51afd7ed558ccdL
let mix_m2 = Int64.to_int 0xc4ceb9fe1a85ec53L

let mix h =
  let h = h lxor (h lsr 33) in
  let h = h * mix_m1 in
  let h = h lxor (h lsr 33) in
  let h = h * mix_m2 in
  let h = h lxor (h lsr 33) in
  h land max_int

let fnv1a s =
  let h = ref fnv_basis in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x100000001b3)
    s;
  mix !h

let stripe_index ~stripes shop = if stripes <= 1 then 0 else fnv1a shop mod stripes

type t = { batchers : Batcher.t array }

let create ?config ?(stripes = 1) () =
  if stripes < 1 then invalid_arg "Stripes.create: stripes must be >= 1";
  {
    batchers =
      Array.init stripes (fun k ->
          Batcher.create ?config ~id_offset:k ~id_stride:stripes ());
  }

let count t = Array.length t.batchers
let batchers t = t.batchers
let batcher t k = t.batchers.(k)
let config t = Batcher.config t.batchers.(0)
let stripe_of t req = stripe_index ~stripes:(count t) (Batcher.shop_of req)

let submit t req =
  let k = stripe_of t req in
  match Batcher.submit t.batchers.(k) req with
  | `Queued -> `Queued k
  | `Overloaded -> `Overloaded

let pending t = Array.fold_left (fun acc b -> acc + Batcher.pending b) 0 t.batchers
let last_id t = Array.fold_left (fun acc b -> max acc (Batcher.last_id b)) 0 t.batchers

(* Aggregations over the stripes.  Counters sum; per-shop lists concat
   and re-sort (shops are disjoint across stripes by construction). *)

let service_stats t =
  let sum f = Array.fold_left (fun acc b -> acc + f (Batcher.service_stats b)) 0 t.batchers in
  let merge f =
    Array.fold_left (fun acc b -> f (Batcher.service_stats b) @ acc) [] t.batchers
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  {
    Batcher.submitted = sum (fun s -> s.Batcher.submitted);
    rejected_backpressure = sum (fun s -> s.Batcher.rejected_backpressure);
    batches = sum (fun s -> s.Batcher.batches);
    batched_requests = sum (fun s -> s.Batcher.batched_requests);
    max_batch =
      Array.fold_left
        (fun acc b -> max acc (Batcher.service_stats b).Batcher.max_batch)
        0 t.batchers;
    budget_exhausted = sum (fun s -> s.Batcher.budget_exhausted);
    verify_failures = sum (fun s -> s.Batcher.verify_failures);
    inc_hits = sum (fun s -> s.Batcher.inc_hits);
    inc_misses = sum (fun s -> s.Batcher.inc_misses);
    resident = merge (fun s -> s.Batcher.resident);
    verdicts = merge (fun s -> s.Batcher.verdicts);
  }

let cache_stats t =
  Array.fold_left
    (fun acc b ->
      match (acc, Batcher.cache_stats b) with
      | None, s | s, None -> s
      | Some a, Some s ->
          Some
            {
              Cache.hits = a.Cache.hits + s.Cache.hits;
              misses = a.Cache.misses + s.Cache.misses;
              evictions = a.Cache.evictions + s.Cache.evictions;
              size = a.Cache.size + s.Cache.size;
            })
    None t.batchers

let keyer_stats t =
  Array.fold_left
    (fun acc b ->
      let s = Batcher.keyer_stats b in
      {
        Cache.Keyer.reused = acc.Cache.Keyer.reused + s.Cache.Keyer.reused;
        rendered = acc.Cache.Keyer.rendered + s.Cache.Keyer.rendered;
      })
    { Cache.Keyer.reused = 0; rendered = 0 }
    t.batchers

(* Sequential replay, the striped analogue of {!Batcher.process_log}:
   submit every request in log order to its stripe, drain each stripe,
   and scatter the replies back to log positions.  Each stripe's drain
   is in its own submission order, which is the log-order restriction
   to that stripe — so per-request outcomes are independent of the
   stripe count (the array this module's determinism tests compare). *)
let process_log t log =
  let log = Array.of_list log in
  let outcomes = Array.make (Array.length log) Batcher.Overloaded in
  let queued = Array.map (fun _ -> Queue.create ()) t.batchers in
  Array.iteri
    (fun i req ->
      match submit t req with
      | `Queued k -> Queue.push i queued.(k)
      | `Overloaded -> ())
    log;
  Array.iteri
    (fun k b ->
      List.iter
        (fun (_, tr, reply) ->
          Rtrace.finish tr;
          outcomes.(Queue.pop queued.(k)) <- Batcher.Reply reply)
        (Batcher.drain b))
    t.batchers;
  outcomes
