module Obs = E2e_obs.Obs
module Json = E2e_obs.Json

(* Stage order is the pipeline order; every request passes through all
   seven.  Requests that skip a phase (a query never solves) still mark
   the stage, with a ~zero duration, so traces are rectangular and the
   per-stage sums tile the end-to-end latency exactly. *)
let stages = [| "queue"; "canonicalize"; "cache"; "solve"; "verify"; "commit"; "render" |]
let n_stages = Array.length stages

let stage_index name =
  let rec go i = if i >= n_stages then None else if stages.(i) = name then Some i else go (i + 1) in
  go 0

type t = {
  id : int;
  op : string;
  shop : string;
  mutable verdict : string;
  enqueued : float;  (* absolute clock reading at submit *)
  marks : float array;  (* absolute clock reading at the end of each stage *)
}

(* Shared sentinel for the disabled path: [start]/[mark]/[finish] on
   [none] are no-ops and allocate nothing. *)
let none = { id = 0; op = ""; shop = ""; verdict = ""; enqueued = 0.; marks = [||] }

let writer : (string -> unit) option ref = ref None
let base = ref 0.

let set_writer w =
  writer := w;
  if w <> None then base := Obs.Clock.now ()

let active () = !writer <> None || Obs.stats_enabled ()

let start ~id ~op ~shop =
  { id; op; shop; verdict = ""; enqueued = Obs.Clock.now (); marks = Array.make n_stages 0. }

let mark t i = if t != none then t.marks.(i) <- Obs.Clock.now ()
let set_verdict t v = if t != none then t.verdict <- v

let id t = t.id
let op t = t.op
let shop t = t.shop
let verdict t = t.verdict

let stage_duration t i = if i = 0 then t.marks.(0) -. t.enqueued else t.marks.(i) -. t.marks.(i - 1)

let record ~id ~op ~shop ~stage ~seq ~t ~dur extra =
  Json.Obj
    ([
       ("trace", Json.Str "req");
       ("id", Json.int id);
       ("op", Json.Str op);
       ("shop", Json.Str shop);
       ("stage", Json.Str stage);
       ("seq", Json.int seq);
       ("t", Json.Num t);
       ("dur", Json.Num dur);
     ]
    @ extra)

let emit_lines t w =
  for i = 0 to n_stages - 1 do
    w
      (Json.to_string
         (record ~id:t.id ~op:t.op ~shop:t.shop ~stage:stages.(i) ~seq:i
            ~t:(t.marks.(i) -. !base) ~dur:(stage_duration t i) []))
  done;
  let e2e = t.marks.(n_stages - 1) -. t.enqueued in
  w
    (Json.to_string
       (record ~id:t.id ~op:t.op ~shop:t.shop ~stage:"done" ~seq:n_stages
          ~t:(t.marks.(n_stages - 1) -. !base) ~dur:e2e
          [ ("verdict", Json.Str t.verdict) ]))

(* [finish] closes the render stage (the only clock read it performs),
   streams the request's JSONL lines and feeds the per-stage and
   end-to-end registry histograms.  Call it exactly once per traced
   request, after the reply has been rendered.  A striped server
   finishes traces on several drainer domains, so the writer is
   serialised per request here: one request's lines never interleave
   with another's (cross-request order across stripes is arbitrary,
   which the per-id schema validation is indifferent to). *)
let wmu = Mutex.create ()

let finish t =
  if t != none then begin
    t.marks.(n_stages - 1) <- Obs.Clock.now ();
    (match !writer with
    | None -> ()
    | Some w ->
        Mutex.lock wmu;
        (match emit_lines t w with
        | () -> Mutex.unlock wmu
        | exception e ->
            Mutex.unlock wmu;
            raise e));
    if Obs.stats_enabled () then begin
      for i = 0 to n_stages - 1 do
        Obs.observe ("serve.stage." ^ stages.(i)) (stage_duration t i)
      done;
      Obs.observe "serve.e2e" (t.marks.(n_stages - 1) -. t.enqueued)
    end
  end

(* ------------------------------------------------------------------ *)
(* Schema: parsing and validation of the JSONL trace, shared by
   [e2e-trace] and [jsonl_check --trace]. *)

module Schema = struct
  type record = {
    id : int;
    op : string;
    shop : string;
    stage : string;
    seq : int;
    t : float;
    dur : float;
    verdict : string option;
  }

  let str = function Some (Json.Str s) -> Some s | _ -> None
  let num = function Some (Json.Num n) -> Some n | _ -> None

  let int_of j =
    match num j with
    | Some f when Float.is_integer f -> Some (int_of_float f)
    | _ -> None

  (* [Ok None] on JSON lines that are not request-trace records (other
     telemetry may share the stream). *)
  let of_json j =
    match Json.member "trace" j with
    | Some (Json.Str "req") -> (
        let field name conv = conv (Json.member name j) in
        match
          ( field "id" int_of,
            field "op" str,
            field "shop" str,
            field "stage" str,
            field "seq" int_of,
            field "t" num,
            field "dur" num )
        with
        | Some id, Some op, Some shop, Some stage, Some seq, Some t, Some dur ->
            Ok (Some { id; op; shop; stage; seq; t; dur; verdict = field "verdict" str })
        | _ -> Error "trace record is missing a required field (id/op/shop/stage/seq/t/dur)")
    | _ -> Ok None

  (* Per-request bookkeeping: next expected stage, last timestamp, and
     the running stage-duration sum checked against the done record. *)
  type progress = { mutable next_seq : int; mutable last_t : float; mutable dur_sum : float }
  type validator = { by_id : (int, progress) Hashtbl.t; mutable completed : int }

  let validator () = { by_id = Hashtbl.create 64; completed = 0 }

  let err fmt = Printf.ksprintf (fun m -> Error m) fmt

  let feed v (r : record) =
    let p =
      match Hashtbl.find_opt v.by_id r.id with
      | Some p -> p
      | None ->
          let p = { next_seq = 0; last_t = neg_infinity; dur_sum = 0. } in
          Hashtbl.add v.by_id r.id p;
          p
    in
    if r.seq <> p.next_seq then
      err "request %d: stage %S out of order (seq %d, expected %d)" r.id r.stage r.seq p.next_seq
    else if r.seq > n_stages then err "request %d: seq %d past the done record" r.id r.seq
    else if r.seq < n_stages && r.stage <> stages.(r.seq) then
      err "request %d: seq %d named %S, expected %S" r.id r.seq r.stage stages.(r.seq)
    else if r.seq = n_stages && r.stage <> "done" then
      err "request %d: seq %d named %S, expected \"done\"" r.id r.seq r.stage
    else if not (r.dur >= 0.) then err "request %d stage %S: negative duration %g" r.id r.stage r.dur
    else if r.t < p.last_t then
      err "request %d stage %S: timestamp %g moves backwards (last %g)" r.id r.stage r.t p.last_t
    else if r.seq = n_stages && r.verdict = None then
      err "request %d: done record has no verdict" r.id
    else begin
      p.last_t <- r.t;
      if r.seq < n_stages then begin
        p.dur_sum <- p.dur_sum +. r.dur;
        p.next_seq <- r.seq + 1;
        Ok ()
      end
      else begin
        let tol = 1e-9 +. (1e-9 *. Float.abs r.dur) in
        if Float.abs (p.dur_sum -. r.dur) > tol then
          err "request %d: stage durations sum to %.12g but end-to-end is %.12g" r.id p.dur_sum
            r.dur
        else begin
          p.next_seq <- n_stages + 1;
          v.completed <- v.completed + 1;
          Ok ()
        end
      end
    end

  let completed v = v.completed

  let check_closed v =
    Hashtbl.fold
      (fun id p acc ->
        match acc with
        | Error _ -> acc
        | Ok () ->
            if p.next_seq = n_stages + 1 then Ok ()
            else err "request %d: trace truncated before its done record" id)
      v.by_id (Ok ())
end
