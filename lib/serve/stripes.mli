(** A striped batcher: [n] independent {!Batcher.t} instances with
    requests routed by a deterministic hash of the shop name.

    {b The striping invariant: same shop ⇒ same stripe.}  Two requests
    on one flow shop are order-dependent (the second reads the first's
    committed state), so they must stay on one stripe, where the
    batcher's FIFO prefix rule keeps their commits sequential.
    Requests on distinct shops are independent by construction — an
    admission decision reads only its own shop's committed set — so
    they may drain on different stripes, and {!Server.serve_tcp} runs
    one drainer domain per stripe.

    {b Determinism at any stripe count.}  The stripe map is a pure
    function of the shop name, each stripe's solver cache is
    transparency-verified (cache-on and cache-off replies agree by
    construction, so re-partitioning cache contents across stripes
    cannot change a reply), and the transport writes each connection's
    replies strictly in push order whichever stripe fills the slot.
    Hence per-request replies — and each connection's reply log — are
    byte-identical across stripe counts; {!process_log} is the replay
    harness the determinism tests compare.

    {b Capacity.}  Queue capacity and solver-cache capacity are {e per
    stripe}: [n] stripes hold up to [n × cache_capacity] canonical
    entries in aggregate.  This is the same aggregate-capacity effect
    the cluster tier gets from sticky sharding, one process deep.

    Request ids are partitioned — stripe [k] of [n] hands out ids
    [k + 1, k + 1 + n, …] — so ids stay unique across stripes and the
    per-id trace-schema invariants hold at any stripe count. *)

type t

val create : ?config:Batcher.config -> ?stripes:int -> unit -> t
(** [stripes] (default [1]) independent batchers, each with [config]
    (default {!Batcher.default_config}).
    @raise Invalid_argument if [stripes < 1]. *)

val count : t -> int
val batchers : t -> Batcher.t array

val batcher : t -> int -> Batcher.t
(** The stripe at index [k] — transports lock and step each stripe
    independently. *)

val config : t -> Batcher.config
(** The shared per-stripe configuration. *)

val stripe_index : stripes:int -> string -> int
(** The pure stripe map: FNV-1a (with a murmur-style finalizer) of the
    shop name, mod [stripes].  [0] whenever [stripes <= 1]. *)

val stripe_of : t -> Admission.request -> int

val submit : t -> Admission.request -> [ `Queued of int | `Overloaded ]
(** Route to the shop's stripe and submit there; [`Queued k] names the
    stripe so the transport can kick stripe [k]'s drainer. *)

val pending : t -> int
(** Total queued requests across stripes. *)

val last_id : t -> int
(** The highest request id handed out by any stripe ([0] initially). *)

val service_stats : t -> Batcher.service_stats
(** Aggregated over stripes: counters sum, [max_batch] is the max, and
    the per-shop lists merge (shops are disjoint across stripes). *)

val cache_stats : t -> Cache.stats option
(** Summed over stripes ([size] is the aggregate resident entries);
    [None] when the cache is disabled. *)

val keyer_stats : t -> Cache.Keyer.stats

val process_log : t -> Admission.request list -> Batcher.outcome array
(** Replay a whole request log: submit every request in log order to
    its stripe (requests past a stripe's queue capacity get
    {!Batcher.Overloaded}), drain every stripe, and scatter replies
    back to log positions.  [outcomes.(i)] answers request [i] — the
    array the stripe-determinism tests compare across stripe counts. *)
