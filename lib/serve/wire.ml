(* Shared socket plumbing for the line-protocol transports: a bounded
   line reader over a raw fd, and the per-connection reply machinery —
   an ordered cell queue of reply slots, a counting-semaphore window
   bounding reader lead, and a writer thread that flushes every
   consecutive ready reply with one [write] (writev-style coalescing).
   Both the admission server's TCP transport and the cluster
   dispatcher's client/upstream connections are built on it. *)

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

(* Bounded line reader over a raw fd: a fixed chunk buffer plus an
   accumulator capped at [max_line] — an oversized request line is a
   protocol error, not an unbounded allocation. *)
let max_line = 1 lsl 20

type reader = {
  rfd : Unix.file_descr;
  rbuf : Bytes.t;
  mutable rlen : int;
  mutable rpos : int;
  acc : Buffer.t;
}

let make_reader rfd =
  { rfd; rbuf = Bytes.create 4096; rlen = 0; rpos = 0; acc = Buffer.create 256 }

let rec read_line r =
  if Buffer.length r.acc > max_line then `Too_long
  else if r.rpos >= r.rlen then
    match Unix.read r.rfd r.rbuf 0 (Bytes.length r.rbuf) with
    | 0 ->
        if Buffer.length r.acc > 0 then begin
          (* Partial final line at EOF behaves like [input_line]. *)
          let s = Buffer.contents r.acc in
          Buffer.clear r.acc;
          `Line s
        end
        else `Eof
    | n ->
        r.rlen <- n;
        r.rpos <- 0;
        read_line r
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_line r
    | exception Unix.Unix_error (e, _, _) -> `Error e
  else
    match Bytes.index_from_opt r.rbuf r.rpos '\n' with
    | Some i when i < r.rlen ->
        if Buffer.length r.acc + (i - r.rpos) > max_line then
          (* The newline arrived, but the line already blew the cap: the
             bound is exact, not chunk-granular.  Nothing is consumed, so
             the result is sticky — every later call answers the same. *)
          `Too_long
        else if Buffer.length r.acc = 0 then begin
          (* Hot path: the whole line sits inside the chunk buffer, so
             one [Bytes.sub_string] builds it — no accumulator round
             trip, no second copy to strip the [\r]. *)
          let stop =
            if i > r.rpos && Bytes.get r.rbuf (i - 1) = '\r' then i - 1 else i
          in
          let s = Bytes.sub_string r.rbuf r.rpos (stop - r.rpos) in
          r.rpos <- i + 1;
          `Line s
        end
        else begin
          Buffer.add_subbytes r.acc r.rbuf r.rpos (i - r.rpos);
          r.rpos <- i + 1;
          let s = Buffer.contents r.acc in
          Buffer.clear r.acc;
          let s =
            if String.length s > 0 && s.[String.length s - 1] = '\r' then
              String.sub s 0 (String.length s - 1)
            else s
          in
          `Line s
        end
    | _ ->
        Buffer.add_subbytes r.acc r.rbuf r.rpos (r.rlen - r.rpos);
        r.rpos <- r.rlen;
        read_line r

(* A reply slot: filled with the rendered line by whoever resolves the
   request (a drainer domain, an upstream receiver thread, or the
   reader itself for control replies), written by the connection's
   writer thread in queue order. *)
type pending = { mutable line : string option }

type cell =
  | Out of pending
  | End of string option  (* final line (if any), then teardown *)

type conn = {
  fd : Unix.file_descr;
  cmu : Mutex.t;
  filled : Condition.t;  (* a cell was pushed or a pending was filled *)
  cells : cell Queue.t;
  window : Semaphore.Counting.t;  (* bounds reader lead over writer *)
}

let make_conn ?(window = 64) fd =
  {
    fd;
    cmu = Mutex.create ();
    filled = Condition.create ();
    cells = Queue.create ();
    window = Semaphore.Counting.make (max 1 window);
  }

let push_cell conn cell =
  Mutex.lock conn.cmu;
  Queue.push cell conn.cells;
  Condition.signal conn.filled;
  Mutex.unlock conn.cmu

(* Acquire a window slot, then queue an already-rendered reply line. *)
let push_line conn line =
  Semaphore.Counting.acquire conn.window;
  push_cell conn (Out { line = Some line })

(* Resolve a reply slot from another thread/domain. *)
let fill conn p line =
  Mutex.lock conn.cmu;
  p.line <- Some line;
  Condition.signal conn.filled;
  Mutex.unlock conn.cmu

(* Writer thread: pops cells in order, blocking while the head is an
   unfilled reply slot.  Consecutive ready replies are coalesced into
   one [write] — under pipelining a drained batch of replies costs one
   syscall, not one per line.  Write errors switch to discard mode
   rather than abandoning the queue: every slot must still be consumed
   so the window releases and later fills go somewhere. *)
let writer_loop conn =
  let dead = ref false in
  let buf = Buffer.create 4096 in
  let flush_buf () =
    if Buffer.length buf > 0 then begin
      (if not !dead then
         try write_all conn.fd (Buffer.contents buf)
         with Unix.Unix_error _ -> dead := true);
      Buffer.clear buf
    end
  in
  (* Under [conn.cmu]: wait until the head cell is ready, then pop it
     and every consecutive ready cell (stopping after an [End]). *)
  let rec ready_run () =
    match Queue.peek_opt conn.cells with
    | None | Some (Out { line = None }) ->
        Condition.wait conn.filled conn.cmu;
        ready_run ()
    | Some _ ->
        let rec take acc =
          match Queue.peek_opt conn.cells with
          | Some (Out { line = Some _ } as cell) ->
              ignore (Queue.pop conn.cells);
              take (cell :: acc)
          | Some (End _ as cell) ->
              ignore (Queue.pop conn.cells);
              List.rev (cell :: acc)
          | _ -> List.rev acc
        in
        take []
  in
  let rec loop () =
    Mutex.lock conn.cmu;
    let run = ready_run () in
    Mutex.unlock conn.cmu;
    let finished =
      List.fold_left
        (fun finished cell ->
          match cell with
          | Out { line = Some l } ->
              Buffer.add_string buf l;
              Buffer.add_char buf '\n';
              finished
          | Out { line = None } -> assert false
          | End last ->
              Option.iter
                (fun l ->
                  Buffer.add_string buf l;
                  Buffer.add_char buf '\n')
                last;
              true)
        false run
    in
    flush_buf ();
    (* Release one window slot per flushed reply, after the write: the
       window bounds rendered-but-unwritten replies. *)
    List.iter
      (function
        | Out _ -> Semaphore.Counting.release conn.window
        | End _ -> ())
      run;
    if not finished then loop ()
  in
  loop ()

let spawn_writer conn = Thread.create writer_loop conn
