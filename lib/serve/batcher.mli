(** Request batching, fan-out and backpressure for the admission engine.

    The batcher sits between a transport and {!Admission}: requests are
    queued FIFO into a {e bounded} queue and processed in batches whose
    solves fan out over the {!E2e_exec.Pool} worker domains.

    {b Fairness and determinism.}  A batch is always a prefix of the
    queue: requests are taken strictly FIFO until the batch is full or
    the next request names a flow shop already in the batch (two
    requests on the same shop are order-dependent, so the second waits
    for the next batch — requests on distinct shops are independent by
    construction, since an admission decision reads only its own shop's
    committed set).  Each batch runs in three phases: precondition
    checks and cache lookups sequentially in submission order, cache
    misses solved in parallel ({!E2e_exec.Pool.map} preserves
    submission order and every solve is a pure function of its
    candidate), then relabelling + checker verification
    ({!Admission.verify_decision}), cache insertion, state commits and
    reply emission sequentially in submission order again.  Replies
    therefore depend only on the request log and the configuration —
    the same log yields a byte-identical reply log at any [jobs] value.

    {b Telemetry.}  Every queued request gets a monotonically
    increasing id at ingress.  When {!Rtrace.active} the batcher
    allocates a per-request trace context and timestamps every pipeline
    stage (queue wait, canonicalize, cache, solve, verify, commit) on
    the main domain in submission order; the transport closes the
    render stage via {!Rtrace.finish}.  With tracing off the shared
    {!Rtrace.none} sentinel is threaded instead — no allocation, no
    clock reads, identical replies.  Independent of the registry, the
    batcher keeps always-on {!service_stats} (the live half of the
    [metrics] protocol command).

    {b Backpressure.}  [submit] on a full queue answers [`Overloaded]
    immediately: the request is refused loudly, never silently dropped
    and never blocked on.  {b Cost bounding.}  The per-request
    [budget] is the deterministic analogue of a per-request timeout:
    it caps solver work in portfolio strategies rather than wall-clock
    seconds, so an overloaded service degrades to fast [Undecided]
    answers instead of nondeterministic ones.

    Registry telemetry: counters [serve.requests], [serve.overloaded],
    [serve.batches] (plus the {!Admission} verdict counters); histograms
    [serve.batch_size], [serve.stage.<name>], [serve.e2e]; span
    [serve.batch]. *)

type t

type config = {
  queue_capacity : int;  (** Pending-request bound; above it [submit] refuses. *)
  batch : int;  (** Maximum requests per batch. *)
  budget : Admission.budget;  (** Per-request deterministic solve budget. *)
  jobs : int;  (** Worker domains each batch's solves fan out over. *)
  cache_capacity : int;  (** Canonical solver cache entries; [0] disables. *)
}

val default_config : config
(** [{ queue_capacity = 1024; batch = 16; budget = Unbounded; jobs = 1;
      cache_capacity = 4096 }] — the cache is sized to cover the
    working set of a loadgen-scale request stream (a few thousand
    distinct canonical keys); see the capacity sweep in
    [BENCH_serve.json]. *)

val create : ?config:config -> ?id_offset:int -> ?id_stride:int -> unit -> t
(** A fresh batcher over an empty {!Admission.empty} engine.
    [id_offset]/[id_stride] (defaults [0]/[1]) partition the ingress
    request-id sequence: the batcher hands out ids
    [id_offset + 1, id_offset + 1 + id_stride, …].  The striped server
    ({!Stripes}) gives stripe [k] of [n] offset [k] and stride [n], so
    request ids stay unique across stripes and per-id trace-schema
    invariants keep holding at any stripe count.
    @raise Invalid_argument if [queue_capacity < 1], [batch < 1],
    [jobs < 1], [id_stride < 1] or [id_offset] outside
    [\[0, id_stride)]. *)

val shop_of : Admission.request -> string
(** The flow shop a request addresses — the striping key: requests on
    the same shop are order-dependent and must stay on one stripe. *)

val config : t -> config
val engine : t -> Admission.t
(** Current committed state (between batches). *)

val cache_stats : t -> Cache.stats option
(** [None] when the cache is disabled. *)

val keyer_stats : t -> Cache.Keyer.stats
(** How often the structural pre-key skipped the render-and-digest step
    of canonicalization (the keyer is always on — it costs one sort the
    batcher performs anyway). *)

val pending : t -> int

val last_id : t -> int
(** The most recent request id handed out at ingress ([0] initially).
    Ids are assigned whether or not tracing is active, so a request
    keeps its id when tracing is toggled. *)

type service_stats = {
  submitted : int;  (** Every [submit] call, queued or refused. *)
  rejected_backpressure : int;  (** [submit] calls answered [`Overloaded]. *)
  batches : int;
  batched_requests : int;
  max_batch : int;
  budget_exhausted : int;  (** Replies [Undecided (budget-exhausted)]. *)
  verify_failures : int;  (** Replies downgraded by the verify stage. *)
  inc_hits : int;
      (** [Add] requests decided by the O(delta) warm path
          ({!Admission.try_incremental}). *)
  inc_misses : int;
      (** [Add] requests that fell back to the cache/full-solve path —
          [inc_hits / (inc_hits + inc_misses)] is the delta-path hit
          rate. *)
  resident : (string * int) list;
      (** Committed tasks per shop, sorted by shop name. *)
  verdicts : (string * (int * int * int)) list;
      (** Per shop [(admitted, rejected, undecided)], sorted by shop. *)
}

val service_stats : t -> service_stats
(** Always-on service accounting, independent of the [Obs] registry —
    the live half of the [metrics] protocol reply. *)

val submit : t -> Admission.request -> [ `Queued | `Overloaded ]

val step : t -> (Admission.request * Rtrace.t * Admission.reply) list
(** Process one batch; [[]] when the queue is empty.  Replies are in
    submission order.  The caller must {!Rtrace.finish} each returned
    context after rendering its reply (a no-op when tracing is off). *)

val drain : t -> (Admission.request * Rtrace.t * Admission.reply) list
(** [step] until the queue is empty, concatenating the replies. *)

type outcome = Reply of Admission.reply | Overloaded

val pp_outcome : Format.formatter -> outcome -> unit
(** [Reply r] prints via {!Admission.pp_reply}; [Overloaded] prints
    ["overloaded"]. *)

val process_log : t -> Admission.request list -> outcome array
(** Replay a whole request log: submit every request in order (requests
    past queue capacity get [Overloaded]), then drain, finishing every
    trace context.  [outcomes.(i)] answers request [i] — the array the
    determinism and fuzzing harnesses compare byte-for-byte across
    [jobs] and cache settings. *)
