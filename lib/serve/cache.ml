module Rat = E2e_rat.Rat
module Task = E2e_model.Task
module Recurrence_shop = E2e_model.Recurrence_shop
module Instance_io = E2e_model.Instance_io
module Visit = E2e_model.Visit
module Obs = E2e_obs.Obs

type canonical = { shop : Recurrence_shop.t; perm : int array; key : string }

let compare_task (a : Task.t) (b : Task.t) =
  let c = Rat.compare a.release b.release in
  if c <> 0 then c
  else
    let c = Rat.compare a.deadline b.deadline in
    if c <> 0 then c
    else
      let rec go j =
        if j >= Array.length a.proc_times then 0
        else
          let c = Rat.compare a.proc_times.(j) b.proc_times.(j) in
          if c <> 0 then c else go (j + 1)
      in
      go 0

let canonicalize (shop : Recurrence_shop.t) =
  let n = Recurrence_shop.n_tasks shop in
  let perm = Array.init n Fun.id in
  (* Stable, so equal tasks keep their relative order and the permutation
     is a deterministic function of the instance. *)
  let perm =
    Array.of_list
      (List.stable_sort
         (fun a b -> compare_task shop.tasks.(a) shop.tasks.(b))
         (Array.to_list perm))
  in
  let tasks =
    Array.mapi
      (fun p orig ->
        let t = shop.Recurrence_shop.tasks.(orig) in
        Task.make ~id:p ~release:t.release ~deadline:t.deadline ~proc_times:t.proc_times)
      perm
  in
  let canonical_shop = Recurrence_shop.make ~visit:shop.visit tasks in
  (* The visit sequence is part of the key: Instance_io omits the
     identity sequence, and two shops with the same tasks but different
     sequences are different instances. *)
  let rendering =
    Printf.sprintf "visit:%s\n%s"
      (String.concat ","
         (Array.to_list (Array.map string_of_int canonical_shop.visit.Visit.sequence)))
      (Instance_io.to_string canonical_shop)
  in
  { shop = canonical_shop; perm; key = Digest.to_hex (Digest.string rendering) }

let key shop = (canonicalize shop).key

let restore_starts { perm; _ } (starts : Rat.t array array) =
  let out = Array.make (Array.length starts) [||] in
  Array.iteri (fun p orig -> out.(orig) <- starts.(p)) perm;
  out

(* Doubly-linked intrusive LRU list: [head] is most recent, [tail] the
   eviction candidate. *)
type 'a node = {
  nkey : string;
  mutable value : 'a;
  mutable prev : 'a node option;
  mutable next : 'a node option;
}

type 'a t = {
  cap : int;
  table : (string, 'a node) Hashtbl.t;
  mutable head : 'a node option;
  mutable tail : 'a node option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Cache.create: capacity must be >= 0";
  {
    cap = capacity;
    table = Hashtbl.create (max 16 capacity);
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let capacity t = t.cap
let length t = Hashtbl.length t.table

let unlink t node =
  (match node.prev with Some p -> p.next <- node.next | None -> t.head <- node.next);
  (match node.next with Some n -> n.prev <- node.prev | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  node.prev <- None;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let find t key =
  match Hashtbl.find_opt t.table key with
  | Some node ->
      t.hits <- t.hits + 1;
      Obs.incr "serve.cache.hit";
      unlink t node;
      push_front t node;
      Some node.value
  | None ->
      t.misses <- t.misses + 1;
      Obs.incr "serve.cache.miss";
      None

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some node ->
      unlink t node;
      Hashtbl.remove t.table node.nkey;
      t.evictions <- t.evictions + 1;
      Obs.incr "serve.cache.eviction"

let add t key value =
  if t.cap > 0 then
    match Hashtbl.find_opt t.table key with
    | Some node ->
        node.value <- value;
        unlink t node;
        push_front t node
    | None ->
        if Hashtbl.length t.table >= t.cap then evict_lru t;
        let node = { nkey = key; value; prev = None; next = None } in
        Hashtbl.replace t.table key node;
        push_front t node

type stats = { hits : int; misses : int; evictions : int; size : int }

let stats (t : 'a t) =
  { hits = t.hits; misses = t.misses; evictions = t.evictions; size = length t }

let hit_rate (t : 'a t) =
  let total = t.hits + t.misses in
  if total = 0 then 0. else float_of_int t.hits /. float_of_int total
