module Rat = E2e_rat.Rat
module Task = E2e_model.Task
module Recurrence_shop = E2e_model.Recurrence_shop
module Instance_io = E2e_model.Instance_io
module Visit = E2e_model.Visit
module Obs = E2e_obs.Obs

type canonical = {
  shop : Recurrence_shop.t;
  perm : int array;
  key : string;
  lines : string array;
}

let compare_task (a : Task.t) (b : Task.t) =
  let c = Rat.compare a.release b.release in
  if c <> 0 then c
  else
    let c = Rat.compare a.deadline b.deadline in
    if c <> 0 then c
    else
      let rec go j =
        if j >= Array.length a.proc_times then 0
        else
          let c = Rat.compare a.proc_times.(j) b.proc_times.(j) in
          if c <> 0 then c else go (j + 1)
      in
      go 0

(* The visit sequence is part of the key: Instance_io omits the identity
   sequence, and two shops with the same tasks but different sequences
   are different instances.  The header plus the per-task lines is
   byte-identical to the historical [Printf]-over-[Instance_io.to_string]
   rendering, so keys are stable across the incremental paths below. *)
let header (visit : Visit.t) =
  let buf = Buffer.create 32 in
  Buffer.add_string buf "visit:";
  Array.iteri
    (fun i p ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (string_of_int p))
    visit.Visit.sequence;
  Buffer.add_char buf '\n';
  if not (Visit.is_traditional visit) then begin
    Buffer.add_string buf "visit";
    Array.iter (fun p -> Buffer.add_string buf (Printf.sprintf " %d" (p + 1))) visit.Visit.sequence;
    Buffer.add_char buf '\n'
  end;
  Buffer.contents buf

let digest_lines visit lines =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (header visit);
  Array.iter (Buffer.add_string buf) lines;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let sort_positions (tasks : Task.t array) =
  (* Stable, so equal tasks keep their relative order and the permutation
     is a deterministic function of the instance. *)
  Array.of_list
    (List.stable_sort
       (fun a b -> compare_task tasks.(a) tasks.(b))
       (Array.to_list (Array.init (Array.length tasks) Fun.id)))

let relabelled tasks = Array.mapi (fun p (t : Task.t) -> Task.make ~id:p ~release:t.release ~deadline:t.deadline ~proc_times:t.proc_times) tasks

let canonicalize (shop : Recurrence_shop.t) =
  let perm = sort_positions shop.tasks in
  let tasks = relabelled (Array.map (fun orig -> shop.Recurrence_shop.tasks.(orig)) perm) in
  let canonical_shop = Recurrence_shop.make ~visit:shop.visit tasks in
  let lines = Array.map Instance_io.task_line tasks in
  { shop = canonical_shop; perm; key = digest_lines shop.visit lines; lines }

let key shop = (canonicalize shop).key

(* Stable merge of the committed canonical order with the stably sorted
   fresh tasks — ties take the committed side — equals the stable sort
   of committed-then-fresh, i.e. exactly what [canonicalize] would
   compute on the merged candidate.  Committed lines are reused verbatim;
   only the fresh tasks are rendered. *)
let merge ~(base : canonical) (fresh : Task.t array) =
  let n = Array.length base.perm and k = Array.length fresh in
  let fperm = sort_positions fresh in
  let total = n + k in
  let perm = Array.make total 0 in
  let lines = Array.make total "" in
  let pick = Array.make total true (* true = committed side *) in
  let i = ref 0 and j = ref 0 in
  for p = 0 to total - 1 do
    let take_base =
      if !i >= n then false
      else if !j >= k then true
      else compare_task base.shop.Recurrence_shop.tasks.(!i) fresh.(fperm.(!j)) <= 0
    in
    pick.(p) <- take_base;
    if take_base then begin
      perm.(p) <- base.perm.(!i);
      lines.(p) <- base.lines.(!i);
      incr i
    end
    else begin
      perm.(p) <- n + fperm.(!j);
      lines.(p) <- Instance_io.task_line fresh.(fperm.(!j));
      incr j
    end
  done;
  let i = ref 0 and j = ref 0 in
  let tasks =
    Array.init total (fun p ->
        let t =
          if pick.(p) then begin
            let t = base.shop.Recurrence_shop.tasks.(!i) in
            incr i;
            t
          end
          else begin
            let t = fresh.(fperm.(!j)) in
            incr j;
            t
          end
        in
        Task.make ~id:p ~release:t.Task.release ~deadline:t.deadline ~proc_times:t.proc_times)
  in
  let visit = base.shop.Recurrence_shop.visit in
  {
    shop = Recurrence_shop.make ~visit tasks;
    perm;
    key = digest_lines visit lines;
    lines;
  }

(* {2 Structural pre-key}

   Canonicalization's cost is dominated by rendering the task lines and
   digesting them.  The keyer memoizes finished canonicals under a cheap
   structural fingerprint; a repeat (byte-identical or any permutation)
   is recognised by sorting alone and reuses the stored key and lines
   without touching [Printf] or [Digest].  The fingerprint is only an
   index — every memo hit is verified task-by-task with exact rational
   comparison before reuse, so hash collisions cost time, never
   correctness. *)
module Keyer = struct
  type nonrec t = {
    memo : (int, canonical list ref) Hashtbl.t;
    mutable reused : int;
    mutable rendered : int;
  }

  let create () = { memo = Hashtbl.create 256; reused = 0; rendered = 0 }

  let fingerprint (visit : Visit.t) (tasks : Task.t array) =
    (* Order-dependent over the canonical (sorted) order is fine: the
       lookup happens after sorting. *)
    Array.fold_left
      (fun acc (t : Task.t) ->
        (acc * 31)
        lxor Hashtbl.hash (t.Task.release, t.deadline, t.proc_times))
      (Hashtbl.hash visit.Visit.sequence)
      tasks
    land max_int

  let same_instance (visit : Visit.t) (sorted : Task.t array) (c : canonical) =
    Array.length sorted = Array.length c.shop.Recurrence_shop.tasks
    && c.shop.Recurrence_shop.visit.Visit.sequence = visit.Visit.sequence
    &&
    let rec go p =
      p >= Array.length sorted
      || (compare_task sorted.(p) c.shop.Recurrence_shop.tasks.(p) = 0 && go (p + 1))
    in
    go 0

  let canonicalize t (shop : Recurrence_shop.t) =
    let perm = sort_positions shop.Recurrence_shop.tasks in
    let sorted = Array.map (fun orig -> shop.Recurrence_shop.tasks.(orig)) perm in
    let visit = shop.Recurrence_shop.visit in
    let fp = fingerprint visit sorted in
    (* Bound the memo so a never-repeating stream cannot grow it without
       limit; resetting only costs future re-renders. *)
    if Hashtbl.length t.memo > 65536 then Hashtbl.reset t.memo;
    let bucket =
      match Hashtbl.find_opt t.memo fp with
      | Some b -> b
      | None ->
          let b = ref [] in
          Hashtbl.add t.memo fp b;
          b
    in
    match List.find_opt (same_instance visit sorted) !bucket with
    | Some c ->
        t.reused <- t.reused + 1;
        Obs.incr "serve.keyer.reuse";
        { c with perm }
    | None ->
        t.rendered <- t.rendered + 1;
        Obs.incr "serve.keyer.render";
        let tasks = relabelled sorted in
        let canonical_shop = Recurrence_shop.make ~visit tasks in
        let lines = Array.map Instance_io.task_line tasks in
        let c = { shop = canonical_shop; perm; key = digest_lines visit lines; lines } in
        bucket := c :: !bucket;
        c

  type stats = { reused : int; rendered : int }

  let stats (t : t) = { reused = t.reused; rendered = t.rendered }
end

let restore_starts { perm; _ } (starts : Rat.t array array) =
  let out = Array.make (Array.length starts) [||] in
  Array.iteri (fun p orig -> out.(orig) <- starts.(p)) perm;
  out

(* Doubly-linked intrusive LRU list: [head] is most recent, [tail] the
   eviction candidate. *)
type 'a node = {
  nkey : string;
  mutable value : 'a;
  mutable prev : 'a node option;
  mutable next : 'a node option;
}

type 'a t = {
  cap : int;
  table : (string, 'a node) Hashtbl.t;
  mutable head : 'a node option;
  mutable tail : 'a node option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Cache.create: capacity must be >= 0";
  {
    cap = capacity;
    table = Hashtbl.create (max 16 capacity);
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let capacity t = t.cap
let length t = Hashtbl.length t.table

let unlink t node =
  (match node.prev with Some p -> p.next <- node.next | None -> t.head <- node.next);
  (match node.next with Some n -> n.prev <- node.prev | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  node.prev <- None;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let find t key =
  match Hashtbl.find_opt t.table key with
  | Some node ->
      t.hits <- t.hits + 1;
      Obs.incr "serve.cache.hit";
      unlink t node;
      push_front t node;
      Some node.value
  | None ->
      t.misses <- t.misses + 1;
      Obs.incr "serve.cache.miss";
      None

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some node ->
      unlink t node;
      Hashtbl.remove t.table node.nkey;
      t.evictions <- t.evictions + 1;
      Obs.incr "serve.cache.eviction"

let add t key value =
  if t.cap > 0 then
    match Hashtbl.find_opt t.table key with
    | Some node ->
        node.value <- value;
        unlink t node;
        push_front t node
    | None ->
        if Hashtbl.length t.table >= t.cap then evict_lru t;
        let node = { nkey = key; value; prev = None; next = None } in
        Hashtbl.replace t.table key node;
        push_front t node

type stats = { hits : int; misses : int; evictions : int; size : int }

let stats (t : 'a t) =
  { hits = t.hits; misses = t.misses; evictions = t.evictions; size = length t }

let hit_rate (t : 'a t) =
  let total = t.hits + t.misses in
  if total = 0 then 0. else float_of_int t.hits /. float_of_int total
