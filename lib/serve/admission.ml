module Rat = E2e_rat.Rat
module Task = E2e_model.Task
module Visit = E2e_model.Visit
module Flow_shop = E2e_model.Flow_shop
module Recurrence_shop = E2e_model.Recurrence_shop
module Schedule = E2e_schedule.Schedule
module Solver = E2e_core.Solver
module H_portfolio = E2e_core.H_portfolio
module Infeasibility = E2e_core.Infeasibility
module Obs = E2e_obs.Obs
module Smap = Map.Make (String)

type rat = Rat.t

type budget = Unbounded | Strategies of int

type decision =
  | Admitted of { schedule : Schedule.t; algo : string }
  | Rejected of { certificate : Infeasibility.certificate option }
  | Undecided of { reason : string }

(* Warm-start state parked with a committed shop.  [Machine] is a full
   incremental solver handle (identical-length shops on the EEDF path):
   the next Add re-solves by O(delta) [add_task] deltas.  [Hint] is the
   portfolio strategy that last admitted the shop: the next full solve
   tries it first.  Both are decision-transparent — the delta path is
   byte-identical to a cold solve and the hint is part of the cache key
   — so entries with and without state always produce the same replies. *)
type inc_state = Machine of Solver.Incremental.t | Hint of H_portfolio.strategy

(* Each committed shop carries the canonical form of its committed task
   set, so the next Add re-solve starts from already-sorted, already-
   rendered committed lines (Cache.merge) instead of canonicalizing the
   whole merged candidate from scratch — plus the warm-start state of
   the solve that admitted it. *)
type entry = { shop : Recurrence_shop.t; canon : Cache.canonical; inc : inc_state option }
type t = entry Smap.t

type request =
  | Submit of { shop : string; instance : Recurrence_shop.t }
  | Add of { shop : string; tasks : (rat * rat * rat array) list }
  | Query of { shop : string }
  | Drop of { shop : string }

type reply =
  | Decided of { shop : string; n_tasks : int; decision : decision }
  | Queried of { shop : string; n_tasks : int option }
  | Dropped of { shop : string; existed : bool }
  | Request_error of { shop : string; message : string }

let empty = Smap.empty
let shops t = List.map (fun (name, e) -> (name, e.shop)) (Smap.bindings t)
let find t shop = Option.map (fun e -> e.shop) (Smap.find_opt shop t)
let n_committed t = Smap.fold (fun _ e acc -> acc + Recurrence_shop.n_tasks e.shop) t 0

let record_decision = function
  | Admitted _ -> Obs.incr "serve.admitted"
  | Rejected _ -> Obs.incr "serve.rejected"
  | Undecided _ -> Obs.incr "serve.undecided"

let algo_name = function
  | `Eedf -> "eedf"
  | `Algorithm_a -> "algo_a"
  | `Algorithm_h -> "algo_h"

(* The solver budget ran out before any strategy produced an answer —
   the deadline-oriented overload signal ([serve.budget_exhausted]). *)
let budget_exhausted () =
  Obs.incr "serve.budget_exhausted";
  Undecided { reason = "budget-exhausted" }

(* One candidate set, no cache: the strongest applicable algorithm, then
   certificates and the portfolio on the NP-hard path.  Pure, so batched
   solves can run on worker domains.  Returns the warm-start state of
   the solve alongside the decision: the incremental handle on the EEDF
   path, the winning strategy on the portfolio path.  [hint] warm-starts
   the portfolio (it is part of the cache key, so hinted and unhinted
   solves never alias). *)
let solve_full budget ?hint (shop : Recurrence_shop.t) : decision * inc_state option =
  Obs.incr "serve.solves";
  if Visit.is_traditional shop.Recurrence_shop.visit then begin
    let fs = Flow_shop.make ~processors:shop.visit.Visit.processors shop.tasks in
    match Solver.Incremental.solve_with_state fs with
    | Solver.Feasible (s, alg), state ->
        ( Admitted { schedule = s; algo = algo_name alg },
          Option.map (fun m -> Machine m) state )
    | Solver.Proved_infeasible _, _ ->
        (Rejected { certificate = Infeasibility.check fs }, None)
    | Solver.Heuristic_failed, _ -> (
        (* Portfolio first, certificate second: an infeasibility
           certificate implies every strategy fails, so the two tests
           can never both succeed and the order only affects cost.  The
           portfolio succeeds on the overwhelming majority of H
           failures and is ~5x cheaper than the certificate search, so
           the expensive test runs only on the rare all-failed path.
           Decisions are identical either way, including under a
           strategy budget (a budget-truncated portfolio failure still
           reaches the same certificate check before giving up). *)
        let portfolio ?budget () =
          match H_portfolio.schedule ?budget ?hint fs with
          | Ok (s, strat) ->
              Some (Admitted { schedule = s; algo = "portfolio" }, Some (Hint strat))
          | Error `All_failed -> None
        in
        let rejected_or fallback =
          match Infeasibility.check fs with
          | Some cert -> (Rejected { certificate = Some cert }, None)
          | None -> fallback ()
        in
        match budget with
        | Strategies 0 -> rejected_or (fun () -> (budget_exhausted (), None))
        | Strategies k -> (
            match portfolio ~budget:k () with
            | Some r -> r
            | None -> rejected_or (fun () -> (budget_exhausted (), None)))
        | Unbounded -> (
            match portfolio () with
            | Some r -> r
            | None ->
                rejected_or (fun () -> (Undecided { reason = "heuristic-failed" }, None))))
  end
  else
    match Solver.solve_recurrent_or_fallback shop with
    | Solver.Recurrent_feasible (s, which) ->
        let algo =
          match which with
          | `Algorithm_r -> "algo_r"
          | `Greedy_edf -> "greedy_edf"
          | `Traditional -> "solver"
        in
        (Admitted { schedule = s; algo }, None)
    | Solver.Recurrent_proved_infeasible -> (Rejected { certificate = None }, None)
    | Solver.Recurrent_undecided -> (Undecided { reason = "heuristic-failed" }, None)

let decide_uncached budget shop = fst (solve_full budget shop)

(* Relabel a decision computed on the canonical shop back to the
   candidate's task ids.  Feasibility is invariant under the relabelling
   (all constraints are per-task or set-based), so the restored schedule
   passes the checker exactly when the canonical one does. *)
let relabel canon (shop : Recurrence_shop.t) = function
  | Admitted { schedule; algo } ->
      let starts = Cache.restore_starts canon schedule.Schedule.starts in
      Admitted { schedule = Schedule.make shop starts; algo }
  | (Rejected _ | Undecided _) as d -> d

let solve ~budget shop = decide_uncached budget shop

(* Independent re-verification of an admitted schedule against the
   checker, after relabelling and before commit — the "verify" stage of
   the serve pipeline.  The solvers construct feasible schedules and
   relabelling preserves feasibility, so a failure here means a solver
   or relabelling bug: it is counted ([serve.verify_failures]) and the
   request is downgraded to [Undecided] rather than committing an
   unverified schedule.  Both the batched and the sequential reference
   path run this, so the differential harnesses stay in agreement. *)
let verify_decision = function
  | Admitted { schedule; _ } as d -> (
      match Schedule.check schedule with
      | Ok () -> d
      | Error _ ->
          Obs.incr "serve.verify_failures";
          Undecided { reason = "verify-failed" })
  | (Rejected _ | Undecided _) as d -> d

(* What the cache stores: the pre-verify canonical decision plus the
   portfolio strategy that produced it (when one did).  The hint must
   ride along so a cache hit commits the same warm-start state as the
   solve it stands in for — otherwise cached and uncached runs would
   hint future solves differently and could diverge. *)
type solved = { decision : decision; hint : H_portfolio.strategy option }

(* The budget is part of the cache key: a set undecided under a small
   budget may be admitted under a larger one, so decisions taken under
   different budgets must never alias.  So is the warm-start hint: the
   hint reorders the portfolio and changes which strategy wins, so
   hinted and unhinted solves of the same canonical set are distinct
   decisions. *)
let budget_tag = function Unbounded -> "u" | Strategies k -> "s" ^ string_of_int k

let hint_tag = function
  | None -> ""
  | Some h -> ":h" ^ H_portfolio.strategy_code h

let cache_key ~budget ?hint canon =
  canon.Cache.key ^ ":" ^ budget_tag budget ^ hint_tag hint

(* Every solve runs on the canonical form, cached or not: heuristics may
   be sensitive to task order, so solving the original labelling only
   when the cache is off would let cache-on and cache-off runs reach
   different verdicts.  Canonicalize-always makes the transparency
   contract (identical verdicts) hold by construction; the cache only
   controls reuse. *)
let decide_canonical ?(budget = Unbounded) ?cache canon (shop : Recurrence_shop.t) =
  let decision =
    match cache with
    | None -> relabel canon shop (decide_uncached budget canon.Cache.shop)
    | Some c -> (
        let key = cache_key ~budget canon in
        match Cache.find c key with
        | Some s -> relabel canon shop s.decision
        | None ->
            let d, state = solve_full budget canon.Cache.shop in
            Cache.add c key
              { decision = d; hint = (match state with Some (Hint h) -> Some h | _ -> None) };
            relabel canon shop d)
  in
  (* The cache stores pre-verify canonical decisions; every consumer
     (hit or miss, batched or sequential) re-verifies after relabelling,
     so verification is uniform across cache settings. *)
  let decision = verify_decision decision in
  record_decision decision;
  decision

let decide ?budget ?cache (shop : Recurrence_shop.t) =
  decide_canonical ?budget ?cache (Cache.canonicalize shop) shop

let request_error shop message =
  Obs.incr "serve.request_errors";
  Request_error { shop; message }

let fresh_tasks (committed : Recurrence_shop.t) tasks =
  let n = Recurrence_shop.n_tasks committed in
  Array.of_list
    (List.mapi
       (fun i (release, deadline, proc_times) ->
         Task.make ~id:(n + i) ~release ~deadline ~proc_times)
       tasks)

let merge_candidate (committed : Recurrence_shop.t) tasks =
  Recurrence_shop.make ~visit:committed.visit
    (Array.append committed.tasks (fresh_tasks committed tasks))

type prepared = {
  candidate : Recurrence_shop.t;
  canon : Cache.canonical;
  base_inc : inc_state option;
  is_add : bool;
}

let prepare ?keyer t = function
  | Submit { shop; instance } ->
      if Smap.mem shop t then
        Error (request_error shop "shop already exists; add to it or drop it first")
      else
        let canon =
          match keyer with
          | Some k -> Cache.Keyer.canonicalize k instance
          | None -> Cache.canonicalize instance
        in
        Ok { candidate = instance; canon; base_inc = None; is_add = false }
  | Add { shop; tasks } -> (
      match Smap.find_opt shop t with
      | None -> Error (request_error shop "unknown shop")
      | Some _ when tasks = [] -> Error (request_error shop "add expects at least one task")
      | Some { shop = committed; canon = base; inc } -> (
          match merge_candidate committed tasks with
          | candidate ->
              (* The committed side arrives pre-sorted and pre-rendered:
                 only the handful of fresh tasks pays canonicalization. *)
              Ok
                {
                  candidate;
                  canon = Cache.merge ~base (fresh_tasks committed tasks);
                  base_inc = inc;
                  is_add = true;
                }
          | exception Invalid_argument m -> Error (request_error shop m)))
  | Query { shop } ->
      Error
        (Queried
           { shop; n_tasks = Option.map (fun e -> Recurrence_shop.n_tasks e.shop) (Smap.find_opt shop t) })
  | Drop { shop } -> Error (Dropped { shop; existed = Smap.mem shop t })

let candidate_of_request t request = Result.map (fun p -> p.candidate) (prepare t request)

let hint_of p = match p.base_inc with Some (Hint h) -> Some h | _ -> None
let state_of_cached (s : solved) = Option.map (fun h -> Hint h) s.hint

(* The warm solve for one prepared candidate: the hint (when the
   committed shop has one) rides into the portfolio.  Pure, so batched
   misses can run on worker domains. *)
let solve_prepared ~budget p =
  let d, state = solve_full budget ?hint:(hint_of p) p.canon.Cache.shop in
  ( { decision = d; hint = (match state with Some (Hint h) -> Some h | _ -> None) },
    state )

(* The O(delta) path: an Add to a shop whose committed solve left a
   Machine handle extends that handle with the fresh canonical jobs and
   reads the verdict — no cache, no full solve.  [None] falls back to
   the cache/solve path (not an Add, no handle, or the merged set left
   the identical-length class).  Decision-transparent: the incremental
   engine agrees byte-for-byte with the scratch solver ([eedf-inc]
   fuzz), and the Rejected arm rebuilds the same certificate the cold
   path would.  Counters [serve.inc_hits]/[serve.inc_misses] measure
   the delta-path hit rate over Add requests. *)
let try_incremental p =
  let result =
    match p.base_inc with
    | Some (Machine m)
      when Visit.is_traditional p.canon.Cache.shop.Recurrence_shop.visit -> (
        let shop = p.canon.Cache.shop in
        let fs = Flow_shop.make ~processors:shop.visit.Visit.processors shop.tasks in
        match Solver.Incremental.extend m fs with
        | None -> None
        | Some m' -> (
            match Solver.Incremental.verdict m' fs with
            | Solver.Feasible (s, alg) ->
                Some (Admitted { schedule = s; algo = algo_name alg }, Some (Machine m'))
            | Solver.Proved_infeasible _ ->
                Some (Rejected { certificate = Infeasibility.check fs }, None)
            | Solver.Heuristic_failed -> None))
    | _ -> None
  in
  if p.is_add then
    Obs.incr (match result with Some _ -> "serve.inc_hits" | None -> "serve.inc_misses");
  result

(* Decide one prepared candidate with every warm-start facility, in
   fixed precedence: delta path first (never touches the cache), then
   the cache under the hint-tagged key, then a hinted full solve.  Both
   the sequential reference interpreter ({!apply}) and the batcher run
   exactly this ordering, so they agree reply-for-reply. *)
let decide_prepared ?(budget = Unbounded) ?cache ({ candidate; canon; _ } as p) =
  let canonical, state =
    match try_incremental p with
    | Some r -> r
    | None -> (
        match cache with
        | None ->
            let s, state = solve_prepared ~budget p in
            (s.decision, state)
        | Some c -> (
            let key = cache_key ~budget ?hint:(hint_of p) canon in
            match Cache.find c key with
            | Some s -> (s.decision, state_of_cached s)
            | None ->
                let s, state = solve_prepared ~budget p in
                Cache.add c key s;
                (s.decision, state)))
  in
  let decision = verify_decision (relabel canon candidate canonical) in
  record_decision decision;
  (decision, state)

let commit ?prepared ?(state : inc_state option = None) t request decision =
  match (request, decision) with
  | (Submit { shop; _ } | Add { shop; _ }), Some (Admitted _) -> (
      match
        match prepared with Some p -> Ok p | None -> prepare t request
      with
      | Ok { candidate; canon; _ } -> Smap.add shop { shop = candidate; canon; inc = state } t
      | Error _ -> t)
  | Drop { shop }, _ -> Smap.remove shop t
  | _, _ -> t

let resident_sizes t =
  List.map (fun (name, e) -> (name, Recurrence_shop.n_tasks e.shop)) (Smap.bindings t)

let warm_resident t =
  Smap.fold
    (fun _ e acc ->
      match e.inc with Some (Machine m) -> acc + Solver.Incremental.resident m | _ -> acc)
    t 0

let apply ?budget ?cache ?keyer t request =
  Obs.incr "serve.requests";
  match prepare ?keyer t request with
  | Error reply -> (commit t request None, reply)
  | Ok ({ candidate; _ } as prepared) ->
      let decision, state = decide_prepared ?budget ?cache prepared in
      let shop =
        match request with
        | Submit { shop; _ } | Add { shop; _ } | Query { shop } | Drop { shop } -> shop
      in
      ( commit ~prepared ~state t request (Some decision),
        Decided { shop; n_tasks = Recurrence_shop.n_tasks candidate; decision } )

let decision_kind = function
  | Admitted _ -> "admitted"
  | Rejected _ -> "rejected"
  | Undecided _ -> "undecided"

let one_line s =
  String.map (function '\n' | '\r' -> ' ' | c -> c) s

let pp_certificate ppf = function
  | None -> Format.pp_print_string ppf "none"
  | Some (Infeasibility.Negative_slack { task }) ->
      Format.fprintf ppf "negative-slack(task=T%d)" task
  | Some (Infeasibility.Overloaded_window { processor; window_start; window_end; demand }) ->
      Format.fprintf ppf "overloaded-window(proc=P%d,window=[%s,%s],demand=%s)" (processor + 1)
        (Rat.to_string window_start) (Rat.to_string window_end) (Rat.to_string demand)

let pp_reply ppf = function
  | Decided { shop; n_tasks; decision = Admitted { schedule; algo } } ->
      Format.fprintf ppf "admitted shop=%s tasks=%d algo=%s makespan=%s" shop n_tasks algo
        (Rat.to_string (Schedule.makespan schedule))
  | Decided { shop; n_tasks; decision = Rejected { certificate } } ->
      Format.fprintf ppf "rejected shop=%s tasks=%d certificate=%a" shop n_tasks pp_certificate
        certificate
  | Decided { shop; n_tasks; decision = Undecided { reason } } ->
      Format.fprintf ppf "undecided shop=%s tasks=%d reason=%s" shop n_tasks reason
  | Queried { shop; n_tasks = Some n } -> Format.fprintf ppf "info shop=%s tasks=%d" shop n
  | Queried { shop; n_tasks = None } -> Format.fprintf ppf "info shop=%s unknown" shop
  | Dropped { shop; existed } -> Format.fprintf ppf "dropped shop=%s existed=%b" shop existed
  | Request_error { shop; message } ->
      Format.fprintf ppf "error shop=%s %s" shop (one_line message)
