module Rat = E2e_rat.Rat
module Task = E2e_model.Task
module Visit = E2e_model.Visit
module Flow_shop = E2e_model.Flow_shop
module Recurrence_shop = E2e_model.Recurrence_shop
module Schedule = E2e_schedule.Schedule
module Solver = E2e_core.Solver
module H_portfolio = E2e_core.H_portfolio
module Infeasibility = E2e_core.Infeasibility
module Obs = E2e_obs.Obs
module Smap = Map.Make (String)

type rat = Rat.t

type budget = Unbounded | Strategies of int

type decision =
  | Admitted of { schedule : Schedule.t; algo : string }
  | Rejected of { certificate : Infeasibility.certificate option }
  | Undecided of { reason : string }

(* Each committed shop carries the canonical form of its committed task
   set, so the next Add re-solve starts from already-sorted, already-
   rendered committed lines (Cache.merge) instead of canonicalizing the
   whole merged candidate from scratch. *)
type entry = { shop : Recurrence_shop.t; canon : Cache.canonical }
type t = entry Smap.t

type request =
  | Submit of { shop : string; instance : Recurrence_shop.t }
  | Add of { shop : string; tasks : (rat * rat * rat array) list }
  | Query of { shop : string }
  | Drop of { shop : string }

type reply =
  | Decided of { shop : string; n_tasks : int; decision : decision }
  | Queried of { shop : string; n_tasks : int option }
  | Dropped of { shop : string; existed : bool }
  | Request_error of { shop : string; message : string }

let empty = Smap.empty
let shops t = List.map (fun (name, e) -> (name, e.shop)) (Smap.bindings t)
let find t shop = Option.map (fun e -> e.shop) (Smap.find_opt shop t)
let n_committed t = Smap.fold (fun _ e acc -> acc + Recurrence_shop.n_tasks e.shop) t 0

let record_decision = function
  | Admitted _ -> Obs.incr "serve.admitted"
  | Rejected _ -> Obs.incr "serve.rejected"
  | Undecided _ -> Obs.incr "serve.undecided"

let algo_name = function
  | `Eedf -> "eedf"
  | `Algorithm_a -> "algo_a"
  | `Algorithm_h -> "algo_h"

(* The solver budget ran out before any strategy produced an answer —
   the deadline-oriented overload signal ([serve.budget_exhausted]). *)
let budget_exhausted () =
  Obs.incr "serve.budget_exhausted";
  Undecided { reason = "budget-exhausted" }

(* One candidate set, no cache: the strongest applicable algorithm, then
   certificates and the portfolio on the NP-hard path.  Pure, so batched
   solves can run on worker domains. *)
let decide_uncached budget (shop : Recurrence_shop.t) =
  Obs.incr "serve.solves";
  if Visit.is_traditional shop.Recurrence_shop.visit then begin
    let fs = Flow_shop.make ~processors:shop.visit.Visit.processors shop.tasks in
    match Solver.solve fs with
    | Solver.Feasible (s, alg) -> Admitted { schedule = s; algo = algo_name alg }
    | Solver.Proved_infeasible _ -> Rejected { certificate = Infeasibility.check fs }
    | Solver.Heuristic_failed -> (
        match Infeasibility.check fs with
        | Some cert -> Rejected { certificate = Some cert }
        | None -> (
            match budget with
            | Strategies 0 -> budget_exhausted ()
            | Strategies k -> (
                match H_portfolio.schedule ~budget:k fs with
                | Ok (s, _) -> Admitted { schedule = s; algo = "portfolio" }
                | Error `All_failed -> budget_exhausted ())
            | Unbounded -> (
                match H_portfolio.schedule fs with
                | Ok (s, _) -> Admitted { schedule = s; algo = "portfolio" }
                | Error `All_failed -> Undecided { reason = "heuristic-failed" })))
  end
  else
    match Solver.solve_recurrent_or_fallback shop with
    | Solver.Recurrent_feasible (s, which) ->
        let algo =
          match which with
          | `Algorithm_r -> "algo_r"
          | `Greedy_edf -> "greedy_edf"
          | `Traditional -> "solver"
        in
        Admitted { schedule = s; algo }
    | Solver.Recurrent_proved_infeasible -> Rejected { certificate = None }
    | Solver.Recurrent_undecided -> Undecided { reason = "heuristic-failed" }

(* Relabel a decision computed on the canonical shop back to the
   candidate's task ids.  Feasibility is invariant under the relabelling
   (all constraints are per-task or set-based), so the restored schedule
   passes the checker exactly when the canonical one does. *)
let relabel canon (shop : Recurrence_shop.t) = function
  | Admitted { schedule; algo } ->
      let starts = Cache.restore_starts canon schedule.Schedule.starts in
      Admitted { schedule = Schedule.make shop starts; algo }
  | (Rejected _ | Undecided _) as d -> d

let solve ~budget shop = decide_uncached budget shop

(* Independent re-verification of an admitted schedule against the
   checker, after relabelling and before commit — the "verify" stage of
   the serve pipeline.  The solvers construct feasible schedules and
   relabelling preserves feasibility, so a failure here means a solver
   or relabelling bug: it is counted ([serve.verify_failures]) and the
   request is downgraded to [Undecided] rather than committing an
   unverified schedule.  Both the batched and the sequential reference
   path run this, so the differential harnesses stay in agreement. *)
let verify_decision = function
  | Admitted { schedule; _ } as d -> (
      match Schedule.check schedule with
      | Ok () -> d
      | Error _ ->
          Obs.incr "serve.verify_failures";
          Undecided { reason = "verify-failed" })
  | (Rejected _ | Undecided _) as d -> d

(* The budget is part of the cache key: a set undecided under a small
   budget may be admitted under a larger one, so decisions taken under
   different budgets must never alias. *)
let budget_tag = function Unbounded -> "u" | Strategies k -> "s" ^ string_of_int k
let cache_key ~budget canon = canon.Cache.key ^ ":" ^ budget_tag budget

(* Every solve runs on the canonical form, cached or not: heuristics may
   be sensitive to task order, so solving the original labelling only
   when the cache is off would let cache-on and cache-off runs reach
   different verdicts.  Canonicalize-always makes the transparency
   contract (identical verdicts) hold by construction; the cache only
   controls reuse. *)
let decide_canonical ?(budget = Unbounded) ?cache canon (shop : Recurrence_shop.t) =
  let decision =
    match cache with
    | None -> relabel canon shop (decide_uncached budget canon.Cache.shop)
    | Some c -> (
        let key = cache_key ~budget canon in
        match Cache.find c key with
        | Some d -> relabel canon shop d
        | None ->
            let d = decide_uncached budget canon.Cache.shop in
            Cache.add c key d;
            relabel canon shop d)
  in
  (* The cache stores pre-verify canonical decisions; every consumer
     (hit or miss, batched or sequential) re-verifies after relabelling,
     so verification is uniform across cache settings. *)
  let decision = verify_decision decision in
  record_decision decision;
  decision

let decide ?budget ?cache (shop : Recurrence_shop.t) =
  decide_canonical ?budget ?cache (Cache.canonicalize shop) shop

let request_error shop message =
  Obs.incr "serve.request_errors";
  Request_error { shop; message }

let fresh_tasks (committed : Recurrence_shop.t) tasks =
  let n = Recurrence_shop.n_tasks committed in
  Array.of_list
    (List.mapi
       (fun i (release, deadline, proc_times) ->
         Task.make ~id:(n + i) ~release ~deadline ~proc_times)
       tasks)

let merge_candidate (committed : Recurrence_shop.t) tasks =
  Recurrence_shop.make ~visit:committed.visit
    (Array.append committed.tasks (fresh_tasks committed tasks))

type prepared = { candidate : Recurrence_shop.t; canon : Cache.canonical }

let prepare ?keyer t = function
  | Submit { shop; instance } ->
      if Smap.mem shop t then
        Error (request_error shop "shop already exists; add to it or drop it first")
      else
        let canon =
          match keyer with
          | Some k -> Cache.Keyer.canonicalize k instance
          | None -> Cache.canonicalize instance
        in
        Ok { candidate = instance; canon }
  | Add { shop; tasks } -> (
      match Smap.find_opt shop t with
      | None -> Error (request_error shop "unknown shop")
      | Some _ when tasks = [] -> Error (request_error shop "add expects at least one task")
      | Some { shop = committed; canon = base } -> (
          match merge_candidate committed tasks with
          | candidate ->
              (* The committed side arrives pre-sorted and pre-rendered:
                 only the handful of fresh tasks pays canonicalization. *)
              Ok { candidate; canon = Cache.merge ~base (fresh_tasks committed tasks) }
          | exception Invalid_argument m -> Error (request_error shop m)))
  | Query { shop } ->
      Error
        (Queried
           { shop; n_tasks = Option.map (fun e -> Recurrence_shop.n_tasks e.shop) (Smap.find_opt shop t) })
  | Drop { shop } -> Error (Dropped { shop; existed = Smap.mem shop t })

let candidate_of_request t request = Result.map (fun p -> p.candidate) (prepare t request)

let commit ?prepared t request decision =
  match (request, decision) with
  | (Submit { shop; _ } | Add { shop; _ }), Some (Admitted _) -> (
      match
        match prepared with Some p -> Ok p | None -> prepare t request
      with
      | Ok { candidate; canon } -> Smap.add shop { shop = candidate; canon } t
      | Error _ -> t)
  | Drop { shop }, _ -> Smap.remove shop t
  | _, _ -> t

let apply ?budget ?cache ?keyer t request =
  Obs.incr "serve.requests";
  match prepare ?keyer t request with
  | Error reply -> (commit t request None, reply)
  | Ok ({ candidate; canon } as prepared) ->
      let decision = decide_canonical ?budget ?cache canon candidate in
      let shop =
        match request with
        | Submit { shop; _ } | Add { shop; _ } | Query { shop } | Drop { shop } -> shop
      in
      ( commit ~prepared t request (Some decision),
        Decided { shop; n_tasks = Recurrence_shop.n_tasks candidate; decision } )

let decision_kind = function
  | Admitted _ -> "admitted"
  | Rejected _ -> "rejected"
  | Undecided _ -> "undecided"

let one_line s =
  String.map (function '\n' | '\r' -> ' ' | c -> c) s

let pp_certificate ppf = function
  | None -> Format.pp_print_string ppf "none"
  | Some (Infeasibility.Negative_slack { task }) ->
      Format.fprintf ppf "negative-slack(task=T%d)" task
  | Some (Infeasibility.Overloaded_window { processor; window_start; window_end; demand }) ->
      Format.fprintf ppf "overloaded-window(proc=P%d,window=[%s,%s],demand=%s)" (processor + 1)
        (Rat.to_string window_start) (Rat.to_string window_end) (Rat.to_string demand)

let pp_reply ppf = function
  | Decided { shop; n_tasks; decision = Admitted { schedule; algo } } ->
      Format.fprintf ppf "admitted shop=%s tasks=%d algo=%s makespan=%s" shop n_tasks algo
        (Rat.to_string (Schedule.makespan schedule))
  | Decided { shop; n_tasks; decision = Rejected { certificate } } ->
      Format.fprintf ppf "rejected shop=%s tasks=%d certificate=%a" shop n_tasks pp_certificate
        certificate
  | Decided { shop; n_tasks; decision = Undecided { reason } } ->
      Format.fprintf ppf "undecided shop=%s tasks=%d reason=%s" shop n_tasks reason
  | Queried { shop; n_tasks = Some n } -> Format.fprintf ppf "info shop=%s tasks=%d" shop n
  | Queried { shop; n_tasks = None } -> Format.fprintf ppf "info shop=%s unknown" shop
  | Dropped { shop; existed } -> Format.fprintf ppf "dropped shop=%s existed=%b" shop existed
  | Request_error { shop; message } ->
      Format.fprintf ppf "error shop=%s %s" shop (one_line message)
