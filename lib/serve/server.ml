module Obs = E2e_obs.Obs

(* One chunk's worth of session work: each parsed line becomes either an
   immediate output line or a pending admission request; pending requests
   drain through the batcher as one group, then outputs are emitted in
   request order.  Control replies (hello/stats) are rendered at emission
   time, after the drain, so they observe the chunk's completed work. *)
type action =
  | Emit of string
  | Emit_stats
  | Emit_metrics
  | Pending  (* resolved by the next drained reply, in order *)

let read_chunk ic n =
  let rec go acc k =
    if k = 0 then List.rev acc
    else
      match In_channel.input_line ic with
      | None -> List.rev acc
      | Some line -> go (line :: acc) (k - 1)
  in
  go [] n

let process_chunk ~schedules batcher lines =
  (* Returns (output lines, saw quit). *)
  let rec classify acc = function
    | [] -> (List.rev acc, false)
    | line :: rest -> (
        match Protocol.parse_request line with
        | Ok Protocol.Blank -> classify acc rest
        | Ok (Protocol.Hello requested) ->
            classify (Emit (Protocol.render_hello ~requested) :: acc) rest
        | Ok Protocol.Stats -> classify (Emit_stats :: acc) rest
        | Ok Protocol.Metrics -> classify (Emit_metrics :: acc) rest
        | Ok Protocol.Quit -> (List.rev (Emit "bye" :: acc), true)
        | Ok (Protocol.Request req) -> (
            match Batcher.submit batcher req with
            | `Queued -> classify (Pending :: acc) rest
            | `Overloaded ->
                classify
                  (Emit (Protocol.render_reply ~schedules Batcher.Overloaded) :: acc)
                  rest)
        | Error message ->
            classify (Emit (Protocol.render_reply ~schedules
                              (Batcher.Reply
                                 (Admission.Request_error { shop = "-"; message })))
                      :: acc)
              rest)
  in
  let actions, quit = classify [] lines in
  let replies = ref (Batcher.drain batcher) in
  let outputs =
    List.map
      (fun action ->
        match action with
        | Emit line -> line
        | Emit_stats -> Protocol.render_stats batcher
        | Emit_metrics -> Protocol.render_metrics batcher
        | Pending -> (
            match !replies with
            | (_, tr, reply) :: rest ->
                replies := rest;
                let line = Protocol.render_reply ~schedules (Batcher.Reply reply) in
                (* The render stage closes once the reply line exists. *)
                Rtrace.finish tr;
                line
            | [] -> assert false (* one drained reply per queued request *)))
      actions
  in
  (outputs, quit)

let session ?(schedules = true) ?chunk batcher ic oc =
  let chunk = match chunk with Some c -> max 1 c | None -> (Batcher.config batcher).batch in
  Obs.incr "serve.sessions";
  output_string oc (Protocol.greeting ^ "\n");
  flush oc;
  let rec loop () =
    match read_chunk ic chunk with
    | [] -> ()
    | lines ->
        let outputs, quit = process_chunk ~schedules batcher lines in
        List.iter (fun line -> output_string oc (line ^ "\n")) outputs;
        flush oc;
        if not quit then loop ()
  in
  loop ()

let serve_stdio ?schedules batcher = session ?schedules batcher stdin stdout

let serve_tcp ?schedules ?(host = "127.0.0.1") ?max_connections ~port batcher =
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock addr;
  Unix.listen sock 16;
  let handle fd =
    let ic = Unix.in_channel_of_descr fd in
    let oc = Unix.out_channel_of_descr fd in
    (* chunk = 1: a TCP client expects each request line answered before
       it sends the next; pipelined replay belongs to stdio/loadgen. *)
    (try session ?schedules ~chunk:1 batcher ic oc with End_of_file | Sys_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ())
  in
  let rec accept_loop served =
    match max_connections with
    | Some n when served >= n -> ()
    | _ ->
        let fd, _ = Unix.accept sock in
        handle fd;
        accept_loop (served + 1)
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () -> accept_loop 0)
