module Obs = E2e_obs.Obs

(* One chunk's worth of session work: each parsed line becomes either an
   immediate output line or a pending admission request; pending requests
   drain through the batcher as one group, then outputs are emitted in
   request order.  Control replies (hello/stats) are rendered at emission
   time, after the drain, so they observe the chunk's completed work. *)
type action =
  | Emit of string
  | Emit_stats
  | Emit_metrics
  | Pending  (* resolved by the next drained reply, in order *)

let pong = "pong " ^ Protocol.version

let error_line ?(schedules = true) message =
  Protocol.render_reply ~schedules
    (Batcher.Reply (Admission.Request_error { shop = "-"; message }))

(* Read up to [n] lines through the bounded {!Wire} reader — the same
   read path as the TCP transport, so the 1 MiB line cap and [\r]
   stripping apply to stdio sessions too.  The terminal tag reports why
   the chunk is short: [`More] (chunk full, keep reading), [`Eof]
   (clean end of stream), [`Too_long] (protocol error, session ends
   after an error reply) or [`Error] (hard read error, session ends). *)
let read_chunk r n =
  let rec go acc k =
    if k = 0 then (List.rev acc, `More)
    else
      match Wire.read_line r with
      | `Line line -> go (line :: acc) (k - 1)
      | `Eof -> (List.rev acc, `Eof)
      | `Too_long -> (List.rev acc, `Too_long)
      | `Error _ -> (List.rev acc, `Error)
  in
  go [] n

let process_chunk ~schedules batcher lines =
  (* Returns (output lines, saw quit). *)
  let rec classify acc = function
    | [] -> (List.rev acc, false)
    | line :: rest -> (
        match Protocol.parse_request line with
        | Ok Protocol.Blank -> classify acc rest
        | Ok (Protocol.Hello requested) ->
            classify (Emit (Protocol.render_hello ~requested) :: acc) rest
        | Ok Protocol.Stats -> classify (Emit_stats :: acc) rest
        | Ok Protocol.Metrics -> classify (Emit_metrics :: acc) rest
        | Ok Protocol.Ping -> classify (Emit pong :: acc) rest
        | Ok Protocol.Quit -> (List.rev (Emit "bye" :: acc), true)
        | Ok (Protocol.Request req) -> (
            match Batcher.submit batcher req with
            | `Queued -> classify (Pending :: acc) rest
            | `Overloaded ->
                classify
                  (Emit (Protocol.render_reply ~schedules Batcher.Overloaded) :: acc)
                  rest)
        | Error message ->
            classify (Emit (error_line ~schedules message) :: acc) rest)
  in
  let actions, quit = classify [] lines in
  let replies = ref (Batcher.drain batcher) in
  let outputs =
    List.map
      (fun action ->
        match action with
        | Emit line -> line
        | Emit_stats -> Protocol.render_stats batcher
        | Emit_metrics -> Protocol.render_metrics batcher
        | Pending -> (
            match !replies with
            | (_, tr, reply) :: rest ->
                replies := rest;
                let line = Protocol.render_reply ~schedules (Batcher.Reply reply) in
                (* The render stage closes once the reply line exists. *)
                Rtrace.finish tr;
                line
            | [] -> assert false (* one drained reply per queued request *)))
      actions
  in
  (outputs, quit)

let session ?(schedules = true) ?chunk batcher fd oc =
  let chunk = match chunk with Some c -> max 1 c | None -> (Batcher.config batcher).batch in
  Obs.incr "serve.sessions";
  output_string oc (Protocol.greeting ^ "\n");
  flush oc;
  let r = Wire.make_reader fd in
  let rec loop () =
    match read_chunk r chunk with
    | [], (`More | `Eof | `Error) -> ()
    | lines, term ->
        let outputs, quit =
          match lines with [] -> ([], false) | _ -> process_chunk ~schedules batcher lines
        in
        List.iter (fun line -> output_string oc (line ^ "\n")) outputs;
        (match term with
        | `Too_long ->
            (* The oversized line was never fully read: answer the
               protocol error and end the session (resynchronising
               mid-line would misparse its tail as requests). *)
            output_string oc (error_line ~schedules "request line too long" ^ "\n")
        | `More | `Eof | `Error -> ());
        flush oc;
        if (not quit) && term = `More then loop ()
  in
  loop ()

let serve_stdio ?schedules batcher = session ?schedules batcher Unix.stdin stdout

(* ------------------------------------------------------------------ *)
(* Concurrent TCP transport.

   An accept pool of dedicated reader domains owns up to [accept_pool]
   simultaneous connections; each connection pipelines up to [window]
   outstanding replies over a bounded fixed-size read buffer and a
   per-reply write queue.  Requests are routed by shop to a {!Stripes}
   batcher stripe — same shop, same stripe — and one drainer domain
   per stripe steps its batcher and routes replies back.  Admission
   semantics, trace stage attribution and the per-connection reply
   order are exactly the sequential transport's.  Per-connection reply
   streams stay byte-identical at every [jobs] value and {e at every
   stripe count} (and under any cross-connection interleaving) as long
   as connections use disjoint shop namespaces: an admission decision
   reads only its own shop's committed set, the stripe map is a pure
   function of the shop name, and the canonical cache is
   transparency-verified.

   Domain/thread layout and locking:
   - each stripe has its own [smu] ordering every touch of its batcher
     (submit, step, per-stripe [Rtrace] marks) and its [sroute] FIFO of
     reply slots parallel to that batcher's request queue;
   - [stats]/[metrics] render an aggregated snapshot by locking all
     stripes in index order (drainers only ever hold their own lock,
     so the order is deadlock-free);
   - each connection runs its reader in its accept domain and one
     writer thread; [conn.mu] protects the cell queue, and the
     counting semaphore [conn.window] bounds reader lead over the
     writer (the bounded write buffer);
   - only the reader and drainer domains touch [Obs]/[Rtrace]
     (writer threads get pre-rendered lines), so each domain-local
     telemetry store keeps a single writing thread. *)

let resolve_host host =
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception _ -> (
      match
        Unix.getaddrinfo host ""
          [ Unix.AI_FAMILY Unix.PF_INET; Unix.AI_SOCKTYPE Unix.SOCK_STREAM ]
      with
      | { Unix.ai_addr = Unix.ADDR_INET (addr, _); _ } :: _ -> addr
      | _ -> failwith (Printf.sprintf "cannot resolve host %S" host))

(* The per-connection reader/writer machinery — bounded line reader,
   ordered reply-slot queue, window semaphore, coalescing writer
   thread — lives in {!Wire}, shared with the cluster dispatcher. *)

(* One stripe's serialised submit/drain path: the striped analogue of
   the old single [center]. *)
type lane = {
  sbatcher : Batcher.t;
  smu : Mutex.t;  (* orders every touch of this stripe's batcher *)
  skick : Condition.t;  (* work queued or stop requested *)
  sroute : (Wire.conn * Wire.pending) Queue.t;  (* reply slots, batcher queue order *)
  mutable sstop : bool;
}

type center = {
  stripes : Stripes.t;
  lanes : lane array;  (* one per stripe *)
  schedules : bool;
  read_errors : int Atomic.t;  (* hard transport read errors (not EOFs) *)
}

let push_cell = Wire.push_cell

(* Aggregated stats/metrics: lock every stripe in index order so the
   snapshot is consistent per stripe and the lock order is global. *)
let with_all_lanes center f =
  Array.iter (fun l -> Mutex.lock l.smu) center.lanes;
  let r = f () in
  Array.iter (fun l -> Mutex.unlock l.smu) center.lanes;
  r

(* Reader: parse lines, render control replies immediately, route
   admission requests through their shop's stripe.  The window is
   acquired before any cell is queued, so at most [window] replies are
   ever buffered ahead of the writer. *)
let reader_loop center (conn : Wire.conn) r =
  let schedules = center.schedules in
  let rec loop () =
    match Wire.read_line r with
    | `Eof -> push_cell conn (End None)
    | `Error _ ->
        (* A half-closed or reset peer, not an orderly EOF: count it so
           stats distinguish connection failures from hangups. *)
        Atomic.incr center.read_errors;
        Obs.incr "serve.read_errors";
        push_cell conn (End None)
    | `Too_long -> push_cell conn (End (Some (error_line ~schedules "request line too long")))
    | `Line l -> (
        match Protocol.parse_request l with
        | Ok Protocol.Blank -> loop ()
        | Ok (Protocol.Hello requested) ->
            Wire.push_line conn (Protocol.render_hello ~requested);
            loop ()
        | Ok Protocol.Ping ->
            Wire.push_line conn pong;
            loop ()
        | Ok Protocol.Stats ->
            Semaphore.Counting.acquire conn.window;
            let line =
              with_all_lanes center (fun () ->
                  Protocol.render_stats_striped
                    ~read_errors:(Atomic.get center.read_errors)
                    center.stripes)
            in
            push_cell conn (Out { line = Some line });
            loop ()
        | Ok Protocol.Metrics ->
            Semaphore.Counting.acquire conn.window;
            let line =
              with_all_lanes center (fun () ->
                  Protocol.render_metrics_striped
                    ~read_errors:(Atomic.get center.read_errors)
                    center.stripes)
            in
            push_cell conn (Out { line = Some line });
            loop ()
        | Ok Protocol.Quit -> push_cell conn (End (Some "bye"))
        | Ok (Protocol.Request req) ->
            Semaphore.Counting.acquire conn.window;
            let lane = center.lanes.(Stripes.stripe_of center.stripes req) in
            Mutex.lock lane.smu;
            (match Batcher.submit lane.sbatcher req with
            | `Queued ->
                let p = { Wire.line = None } in
                Queue.push (conn, p) lane.sroute;
                Condition.signal lane.skick;
                Mutex.unlock lane.smu;
                push_cell conn (Out p)
            | `Overloaded ->
                Mutex.unlock lane.smu;
                push_cell conn
                  (Out { line = Some (Protocol.render_reply ~schedules Batcher.Overloaded) }));
            loop ()
        | Error message ->
            Wire.push_line conn (error_line ~schedules message);
            loop ())
  in
  loop ()

(* Drainer domain (one per stripe): step the stripe's batcher whenever
   requests are pending — after a short grace while a partial batch is
   still filling — and route each reply to its slot.  Replies come
   back in submission order and [sroute] is pushed in submission order
   under the same mutex, so the head of [sroute] is always the slot of
   the head reply. *)
let drainer_loop schedules lane =
  let grace = 0.0002 in
  let route_replies replies =
    List.iter
      (fun (_req, tr, reply) ->
        let conn, p = Queue.pop lane.sroute in
        let line = Protocol.render_reply ~schedules (Batcher.Reply reply) in
        (* The reply line exists: close the render stage here, on the
           one domain that owns this stripe's trace activity. *)
        Rtrace.finish tr;
        Wire.fill conn p line)
      replies
  in
  Mutex.lock lane.smu;
  let rec loop () =
    let pending = Batcher.pending lane.sbatcher in
    if pending = 0 then begin
      if not lane.sstop then begin
        Condition.wait lane.skick lane.smu;
        loop ()
      end
    end
    else begin
      let batch = (Batcher.config lane.sbatcher).Batcher.batch in
      if pending < batch && not lane.sstop then begin
        (* Give the readers one grace period to fill the batch; step as
           soon as the queue stops growing so a trickle of requests is
           never parked behind a timer. *)
        Mutex.unlock lane.smu;
        Unix.sleepf grace;
        Mutex.lock lane.smu;
        let now = Batcher.pending lane.sbatcher in
        if now > pending && now < batch && not lane.sstop then loop ()
        else begin
          route_replies (Batcher.step lane.sbatcher);
          loop ()
        end
      end
      else begin
        route_replies (Batcher.step lane.sbatcher);
        loop ()
      end
    end
  in
  loop ();
  Mutex.unlock lane.smu

(* ------------------------------------------------------------------ *)
(* External shutdown: a control handle the embedding process can use to
   stop a running [serve_tcp] — the in-process analogue of killing a
   shard process, which the cluster harnesses use to exercise failover.
   [shutdown] wakes blocked accepts by shutting the listener down
   (accept fails with EINVAL) and resets every live connection (readers
   see EOF, writers see EPIPE), so all accept domains drain and
   [serve_tcp] returns. *)

type control = {
  ctl_mu : Mutex.t;
  mutable ctl_stop : bool;
  mutable ctl_listener : Unix.file_descr option;
  mutable ctl_conns : Unix.file_descr list;
}

let control () =
  { ctl_mu = Mutex.create (); ctl_stop = false; ctl_listener = None; ctl_conns = [] }

let stopped = function
  | None -> false
  | Some c ->
      Mutex.lock c.ctl_mu;
      let s = c.ctl_stop in
      Mutex.unlock c.ctl_mu;
      s

let ctl_register_conn control fd =
  match control with
  | None -> true
  | Some c ->
      Mutex.lock c.ctl_mu;
      let accept = not c.ctl_stop in
      if accept then c.ctl_conns <- fd :: c.ctl_conns;
      Mutex.unlock c.ctl_mu;
      accept

let ctl_unregister_conn control fd =
  match control with
  | None -> ()
  | Some c ->
      Mutex.lock c.ctl_mu;
      c.ctl_conns <- List.filter (fun fd' -> fd' != fd) c.ctl_conns;
      Mutex.unlock c.ctl_mu

let shutdown c =
  Mutex.lock c.ctl_mu;
  c.ctl_stop <- true;
  let listener = c.ctl_listener in
  let conns = c.ctl_conns in
  c.ctl_listener <- None;
  Mutex.unlock c.ctl_mu;
  let shut fd = try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> () in
  Option.iter shut listener;
  List.iter shut conns

(* One connection, in the accept domain that owns it: greeting, writer
   thread, reader loop, then teardown — join the writer (which flushes
   every outstanding reply and the farewell) before closing the fd, so
   a [quit] races nothing and no buffered reply is ever lost. *)
let handle_conn center ?(window = 64) fd =
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
      Obs.incr "serve.sessions";
      match Wire.write_all fd (Protocol.greeting ^ "\n") with
      | exception Unix.Unix_error _ -> ()
      | () ->
          let conn = Wire.make_conn ~window fd in
          let writer = Wire.spawn_writer conn in
          Fun.protect
            ~finally:(fun () -> Thread.join writer)
            (fun () ->
              try reader_loop center conn (Wire.make_reader fd)
              with _ -> push_cell conn (End None)))

let retriable = function
  | Unix.EINTR | Unix.ECONNABORTED | Unix.EAGAIN | Unix.EWOULDBLOCK -> true
  | _ -> false

let serve_tcp ?schedules:(sch = true) ?(host = "127.0.0.1") ?max_connections
    ?(accept_pool = 4) ?(window = 64) ?ready ?control:ctl ~port stripes =
  let addr = Unix.ADDR_INET (resolve_host host, port) in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  let old_sigpipe =
    (* A peer that disappears mid-reply must surface as EPIPE on the
       write, not kill the whole server. *)
    try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore) with Invalid_argument _ -> None
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      Option.iter (fun b -> try Sys.set_signal Sys.sigpipe b with Invalid_argument _ -> ()) old_sigpipe)
    (fun () ->
      Unix.setsockopt sock Unix.SO_REUSEADDR true;
      Unix.bind sock addr;
      Unix.listen sock 64;
      (match ctl with
      | None -> ()
      | Some c ->
          Mutex.lock c.ctl_mu;
          c.ctl_listener <- Some sock;
          Mutex.unlock c.ctl_mu);
      (match ready with
      | None -> ()
      | Some f ->
          let bound_port =
            match Unix.getsockname sock with
            | Unix.ADDR_INET (_, p) -> p
            | _ -> port
          in
          f bound_port);
      let center =
        {
          stripes;
          lanes =
            Array.map
              (fun b ->
                {
                  sbatcher = b;
                  smu = Mutex.create ();
                  skick = Condition.create ();
                  sroute = Queue.create ();
                  sstop = false;
                })
              (Stripes.batchers stripes);
          schedules = sch;
          read_errors = Atomic.make 0;
        }
      in
      let drainers =
        Array.map (fun lane -> Domain.spawn (fun () -> drainer_loop sch lane)) center.lanes
      in
      (* Connection slots are claimed before accepting, so with a quota
         exactly [max_connections] accepts happen across the pool and
         every accept domain terminates. *)
      let slots = Atomic.make 0 in
      let accept_domain () =
        let rec loop () =
          if stopped ctl then ()
          else
            let slot = Atomic.fetch_and_add slots 1 in
            let quota_ok = match max_connections with None -> true | Some n -> slot < n in
            if quota_ok then
              match Unix.accept sock with
              | fd, _ ->
                  if ctl_register_conn ctl fd then begin
                    (try handle_conn center ~window fd with _ -> ());
                    ctl_unregister_conn ctl fd
                  end
                  else (try Unix.close fd with Unix.Unix_error _ -> ());
                  loop ()
              | exception Unix.Unix_error (e, _, _) when retriable e ->
                  (* Transient accept failures (EINTR, a connection that
                     aborted in the backlog) must not kill the server:
                     retry on the same slot. *)
                  Atomic.decr slots;
                  loop ()
              | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) ->
                  () (* listener closed or shut down: stop accepting *)
              | exception Unix.Unix_error (_, _, _) ->
                  (* Resource pressure (EMFILE and friends): back off and
                     keep serving rather than dying. *)
                  Atomic.decr slots;
                  Unix.sleepf 0.01;
                  loop ()
        in
        loop ()
      in
      let accepters =
        Array.init (max 1 accept_pool) (fun _ -> Domain.spawn accept_domain)
      in
      Array.iter Domain.join accepters;
      Array.iter
        (fun lane ->
          Mutex.lock lane.smu;
          lane.sstop <- true;
          Condition.broadcast lane.skick;
          Mutex.unlock lane.smu)
        center.lanes;
      Array.iter Domain.join drainers)
