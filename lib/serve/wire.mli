(** Shared socket plumbing for the line-protocol transports.

    A bounded line reader over a raw [Unix.file_descr], and the
    per-connection reply machinery the concurrent transports are built
    on: an ordered queue of reply {e slots} (cells), a counting
    semaphore bounding how far a reader may run ahead of the writer,
    and a writer thread that batches every consecutive ready reply
    into one [write] call (writev-style coalescing — under pipelining
    a drained batch of replies costs one syscall, not one per line).

    Both {!Server.serve_tcp} and the cluster dispatcher
    ([E2e_cluster.Dispatcher]) use this module; the reply-ordering
    contract is identical on both: cells are written strictly in push
    order, and a reply slot blocks the writer until it is filled. *)

val write_all : Unix.file_descr -> string -> unit
(** Write the whole string, retrying on [EINTR].
    @raise Unix.Unix_error on a real write error. *)

val max_line : int
(** Request-line length cap (1 MiB): an oversized line is a protocol
    error, not an unbounded allocation. *)

type reader
(** Bounded buffered line reader over a raw fd. *)

val make_reader : Unix.file_descr -> reader

val read_line :
  reader -> [ `Line of string | `Eof | `Too_long | `Error of Unix.error ]
(** Next line (terminator stripped, trailing [\r] removed).  A partial
    final line at EOF is returned as a line.  A clean EOF is [`Eof]; a
    hard read error (reset, half-closed socket, …) is [`Error] so
    transports can account for it separately from orderly shutdown;
    a line longer than {!max_line} is [`Too_long].  [EINTR] retries
    internally.  When a whole line sits inside the chunk buffer it is
    built with a single copy (no accumulator round trip). *)

type pending = { mutable line : string option }
(** A reply slot, filled exactly once with the rendered reply line. *)

type cell =
  | Out of pending  (** One reply, written once the slot is filled. *)
  | End of string option
      (** Final line (if any), then writer teardown. *)

type conn = {
  fd : Unix.file_descr;
  cmu : Mutex.t;
  filled : Condition.t;
  cells : cell Queue.t;
  window : Semaphore.Counting.t;
}
(** One connection's writer state.  [cells] is the ordered reply
    queue; [window] bounds the replies buffered ahead of the writer
    (acquire before queueing, released by the writer after the
    flush). *)

val make_conn : ?window:int -> Unix.file_descr -> conn
(** Default window: 64. *)

val push_cell : conn -> cell -> unit
(** Queue a cell (no window accounting — callers acquire the window
    themselves before queueing an [Out]). *)

val push_line : conn -> string -> unit
(** Acquire one window slot and queue an already-rendered reply. *)

val fill : conn -> pending -> string -> unit
(** Resolve a reply slot from another thread/domain and wake the
    writer. *)

val writer_loop : conn -> unit
(** The writer body: pops cells in order, blocking while the head slot
    is unfilled, coalescing consecutive ready replies into one
    [write]; returns after an [End] cell.  Write errors switch to
    discard mode — every slot is still consumed so window slots
    release and later fills go somewhere. *)

val spawn_writer : conn -> Thread.t
