(** Random task sets that are feasible by construction.

    This is the reconstruction of the workload behind Figures 9 and 10:
    "we fed Algorithm H with task sets that have feasible schedules",
    sweeping the amount of slack per task and the variance of processing
    times on a processor.

    Construction: draw every subtask time from a truncated normal
    distribution with mean [mean_tau] and standard deviation
    [stdev * mean_tau], rounded to a 1/100 grid; build the earliest-start
    schedule of a random task order (a witness schedule); then wrap each
    task's release time and deadline around its witness span so that the
    window is [max((1 + slack_factor) * tau_i, span_i)] long, placed
    uniformly at random around the span.  The witness schedule meets
    every constraint, so a feasible schedule exists; the nominal slack
    [(d_i - r_i) - tau_i] is [slack_factor * tau_i] whenever the witness
    span does not already exceed the window.

    {b Domain safety.} Every generator here is a pure function of the
    {!E2e_prng.Prng.t} it is handed — no hidden global state — so
    generators may run concurrently on different domains as long as each
    domain uses its own generator.  The parallel experiment engine
    derives one independent stream per Monte Carlo trial with
    {!E2e_prng.Prng.of_path}, which is what makes the figure sweeps
    byte-identical at every [-j]/[--jobs] setting. *)

type params = {
  n_tasks : int;
  n_processors : int;
  mean_tau : float;  (** Mean subtask processing time (the paper's unit). *)
  stdev : float;  (** Relative standard deviation: 0.1, 0.2, 0.5 in Fig. 9. *)
  slack_factor : float;  (** Nominal slack as a multiple of the task's total processing time. *)
}

val generate : E2e_prng.Prng.t -> params -> E2e_model.Flow_shop.t
(** One random instance; guaranteed to admit a feasible schedule. *)

val generate_with_witness :
  E2e_prng.Prng.t -> params -> E2e_model.Flow_shop.t * E2e_schedule.Schedule.t
(** Also returns the witness schedule (always checker-feasible). *)

(** {1 Generators for property tests} *)

val identical_length :
  E2e_prng.Prng.t -> n:int -> m:int -> tau:E2e_rat.Rat.t -> window:int -> E2e_model.Flow_shop.t
(** Identical-length task set with random rational release times and
    deadlines inside [\[0, window\]] (feasibility {e not} guaranteed —
    for optimality cross-checks). *)

val homogeneous :
  E2e_prng.Prng.t -> n:int -> m:int -> max_tau:int -> window:int -> E2e_model.Flow_shop.t
(** Homogeneous task set with random per-processor times in
    [\[1/2, max_tau\]] and random windows (feasibility not guaranteed). *)

val arbitrary :
  E2e_prng.Prng.t -> n:int -> m:int -> max_tau:int -> window:int -> E2e_model.Flow_shop.t
(** Fully arbitrary task set (feasibility not guaranteed). *)

val single_loop_visit :
  E2e_prng.Prng.t -> max_stages:int -> E2e_model.Visit.t
(** A random visit sequence containing exactly one simple loop (the
    precondition of Algorithm R): a fresh prefix, a reused block, fresh
    middle processors, the block again, and a fresh suffix.  At most
    [max_stages] stages ([>= 3]). *)

val periodic :
  E2e_prng.Prng.t -> n:int -> m:int -> utilization:float -> E2e_model.Periodic_shop.t
(** Random periodic job system: periods drawn log-uniformly from
    [\[8, 200\]] on a 1/4 grid; the target per-processor [utilization] is
    split across jobs by random weights and converted to processing
    times.  The realised utilization of every processor is within
    rounding of the target. *)
