(** Polymorphic binary min-heap.

    The priority queue behind the solver dispatch loops (ready queues
    keyed by effective deadline, pending queues keyed by release time,
    both over exact {!E2e_rat.Rat} priorities) and the simulators' event
    queues.  [push]/[pop] are O(log n); [peek] is O(1).

    The heap is not stable: elements comparing equal under [cmp] pop in
    an unspecified (but deterministic) order, so callers needing a total
    dispatch order must break ties inside [cmp] (the solvers key by
    [(deadline, release, id)]). *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** Empty heap ordered by [cmp] (minimum first). *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val clear : 'a t -> unit
(** Remove every element (also releases the backing storage). *)

val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Minimum element, without removing it. *)

val pop : 'a t -> 'a option
(** Removes and returns the minimum element. *)

val copy : 'a t -> 'a t
(** O(n) snapshot: an independent heap with the same contents and
    comparison; pushes and pops on either side never affect the other
    (elements themselves are shared).  This is the cheap-snapshot hook
    for solver states that park a dispatch frontier. *)

val of_list : cmp:('a -> 'a -> int) -> 'a list -> 'a t

val drain : 'a t -> 'a list
(** Pops everything; the result is sorted by [cmp]. *)
