module Rat = E2e_rat.Rat

(* Sorted array of pairwise-disjoint open intervals (left, right) with
   left < right.  Two intervals may share an endpoint (the shared point
   is outside both); they are then kept separate, never coalesced, so
   the set represents exactly the union of open intervals it was built
   from.  Disjointness gives the key query invariant: an interval's own
   endpoints are never strictly inside any other interval, so one
   binary-search step settles [adjust_up]/[adjust_down]. *)
type t = (Rat.t * Rat.t) array

let empty : t = [||]
let is_empty (t : t) = Array.length t = 0
let cardinal (t : t) = Array.length t
let to_list (t : t) = Array.to_list t

(* Index of the rightmost interval with left < x, or -1. *)
let rightmost_left_below (t : t) x =
  let lo = ref (-1) and hi = ref (Array.length t - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    let left, _ = t.(mid) in
    if Rat.(left < x) then lo := mid else hi := mid - 1
  done;
  !lo

(* The interval strictly containing x, if any.  Only the rightmost
   interval with left < x can contain x: any earlier interval ends at or
   before that one's left endpoint. *)
let containing (t : t) x =
  let i = rightmost_left_below t x in
  if i < 0 then None
  else
    let _, right = t.(i) in
    if Rat.(x < right) then Some i else None

let mem (t : t) x = containing t x <> None

let adjust_up (t : t) x =
  match containing t x with None -> x | Some i -> snd t.(i)

let adjust_down (t : t) x =
  match containing t x with None -> x | Some i -> fst t.(i)

let add (t : t) ~left ~right =
  if Rat.(left >= right) then t
  else begin
    (* Strict overlap only: an interval touching [left,right] at a bare
       endpoint stays separate (open intervals exclude their endpoints). *)
    let n = Array.length t in
    let overlaps (l, r) = Rat.(l < right) && Rat.(left < r) in
    (* Intervals are sorted, so the overlapping ones form a contiguous
       run [lo, hi).  First index not entirely to the left of [left]: *)
    let lo = ref 0 in
    while !lo < n && Rat.(snd t.(!lo) <= left) do incr lo done;
    let hi = ref !lo in
    let merged_left = ref left and merged_right = ref right in
    while !hi < n && overlaps t.(!hi) do
      let l, r = t.(!hi) in
      if Rat.(l < !merged_left) then merged_left := l;
      if Rat.(r > !merged_right) then merged_right := r;
      incr hi
    done;
    let lo = !lo and hi = !hi in
    let out = Array.make (n - (hi - lo) + 1) (left, right) in
    Array.blit t 0 out 0 lo;
    out.(lo) <- (!merged_left, !merged_right);
    Array.blit t hi out (lo + 1) (n - hi);
    out
  end
