module Rat = E2e_rat.Rat

(* Sorted array of pairwise-disjoint open intervals (left, right) with
   left < right.  Two intervals may share an endpoint (the shared point
   is outside both); they are then kept separate, never coalesced, so
   the set represents exactly the union of open intervals it was built
   from.  Disjointness gives the key query invariant: an interval's own
   endpoints are never strictly inside any other interval, so one
   binary-search step settles [adjust_up]/[adjust_down]. *)
type t = (Rat.t * Rat.t) array

let empty : t = [||]
let is_empty (t : t) = Array.length t = 0
let cardinal (t : t) = Array.length t
let to_list (t : t) = Array.to_list t

(* Index of the rightmost interval with left < x, or -1. *)
let rightmost_left_below (t : t) x =
  let lo = ref (-1) and hi = ref (Array.length t - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    let left, _ = t.(mid) in
    if Rat.(left < x) then lo := mid else hi := mid - 1
  done;
  !lo

(* The interval strictly containing x, if any.  Only the rightmost
   interval with left < x can contain x: any earlier interval ends at or
   before that one's left endpoint. *)
let containing (t : t) x =
  let i = rightmost_left_below t x in
  if i < 0 then None
  else
    let _, right = t.(i) in
    if Rat.(x < right) then Some i else None

let mem (t : t) x = containing t x <> None

let adjust_up (t : t) x =
  match containing t x with None -> x | Some i -> snd t.(i)

let adjust_down (t : t) x =
  match containing t x with None -> x | Some i -> fst t.(i)

(* The representation is an immutable sorted array, so a snapshot is the
   value itself: every operation returns a fresh array and never mutates
   an existing one, which makes sharing O(1) and unconditionally safe.
   [snapshot]/[of_snapshot] exist to name that contract at call sites
   (the incremental solver keeps one snapshot per checkpoint). *)
let snapshot (t : t) : t = t
let of_snapshot (t : t) : t = t

let get (t : t) i = t.(i)

let measure (t : t) =
  Array.fold_left (fun acc (l, r) -> Rat.add acc (Rat.sub r l)) Rat.zero t

let first_difference (a : t) (b : t) =
  let na = Array.length a and nb = Array.length b in
  let rec go i =
    if i >= na && i >= nb then None
    else if i >= na then Some (fst b.(i))
    else if i >= nb then Some (fst a.(i))
    else
      let la, ra = a.(i) and lb, rb = b.(i) in
      if Rat.equal la lb && Rat.equal ra rb then go (i + 1)
      else Some (Rat.min la lb)
  in
  go 0

let add (t : t) ~left ~right =
  if Rat.(left >= right) then t
  else begin
    (* Strict overlap only: an interval touching [left,right] at a bare
       endpoint stays separate (open intervals exclude their endpoints). *)
    let n = Array.length t in
    let overlaps (l, r) = Rat.(l < right) && Rat.(left < r) in
    (* Intervals are sorted, so the overlapping ones form a contiguous
       run [lo, hi).  First index not entirely to the left of [left]: *)
    let lo = ref 0 in
    while !lo < n && Rat.(snd t.(!lo) <= left) do incr lo done;
    let hi = ref !lo in
    let merged_left = ref left and merged_right = ref right in
    while !hi < n && overlaps t.(!hi) do
      let l, r = t.(!hi) in
      if Rat.(l < !merged_left) then merged_left := l;
      if Rat.(r > !merged_right) then merged_right := r;
      incr hi
    done;
    let lo = !lo and hi = !hi in
    let out = Array.make (n - (hi - lo) + 1) (left, right) in
    Array.blit t 0 out 0 lo;
    out.(lo) <- (!merged_left, !merged_right);
    Array.blit t hi out (lo + 1) (n - hi);
    out
  end

(* Subtracting an OPEN interval from an open set is not representable
   here ((a, l] is not open), so [remove] subtracts the CLOSED interval
   [left, right]: every open piece of the difference is expressible, and
   for the solver's use (dropping a region ending exactly at a release
   point) the closed semantics is the natural one.  [left = right]
   removes the single point, splitting any interval containing it. *)
let remove (t : t) ~left ~right =
  if Rat.(left > right) then t
  else begin
    let out = ref [] in
    Array.iter
      (fun ((l, r) as iv) ->
        (* The open (l, r) misses the closed [left, right] exactly when
           it lies entirely at or before [left] or at or after [right]. *)
        if Rat.(r <= left) || Rat.(right <= l) then out := iv :: !out
        else begin
          if Rat.(l < left) then out := (l, left) :: !out;
          if Rat.(right < r) then out := (right, r) :: !out
        end)
      t;
    Array.of_list (List.rev !out)
  end
