(** Sorted set of pairwise-disjoint open rational intervals with
    binary-search queries — the index behind the solvers' forbidden
    regions.

    The set represents a union of {e open} intervals [(left, right)]:
    the endpoints themselves are outside the set.  Intervals that would
    merely {e touch} at an endpoint are kept separate (their shared
    point is a legal value); intervals that strictly overlap are
    coalesced by {!add}.  The representation is an immutable sorted
    array, so queries are O(log n) and [add] is O(n) in the worst case
    (one copy) — the solvers insert O(n) regions and query O(n log n)
    times, so lookups, not insertions, dominate. *)

type t

val empty : t
val is_empty : t -> bool

val cardinal : t -> int
(** Number of (disjoint) intervals. *)

val add : t -> left:E2e_rat.Rat.t -> right:E2e_rat.Rat.t -> t
(** Add the open interval [(left, right)], coalescing any strictly
    overlapping intervals.  A degenerate interval ([left >= right]) is
    ignored; an interval sharing only an endpoint with an existing one
    is kept separate. *)

val mem : t -> E2e_rat.Rat.t -> bool
(** [mem t x] is [true] iff [x] lies strictly inside some interval. *)

val adjust_up : t -> E2e_rat.Rat.t -> E2e_rat.Rat.t
(** Smallest [y >= x] not strictly inside any interval: [x] itself, or
    the right endpoint of the interval containing it (disjointness
    guarantees that endpoint is itself legal). *)

val adjust_down : t -> E2e_rat.Rat.t -> E2e_rat.Rat.t
(** Largest [y <= x] not strictly inside any interval: [x] itself, or
    the left endpoint of the interval containing it. *)

val to_list : t -> (E2e_rat.Rat.t * E2e_rat.Rat.t) list
(** The intervals as [(left, right)] pairs, sorted by left endpoint,
    pairwise disjoint. *)
