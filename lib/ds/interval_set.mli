(** Sorted set of pairwise-disjoint open rational intervals with
    binary-search queries — the index behind the solvers' forbidden
    regions.

    The set represents a union of {e open} intervals [(left, right)]:
    the endpoints themselves are outside the set.  Intervals that would
    merely {e touch} at an endpoint are kept separate (their shared
    point is a legal value); intervals that strictly overlap are
    coalesced by {!add}.  The representation is an immutable sorted
    array, so queries are O(log n) and [add] is O(n) in the worst case
    (one copy) — the solvers insert O(n) regions and query O(n log n)
    times, so lookups, not insertions, dominate. *)

type t

val empty : t
val is_empty : t -> bool

val cardinal : t -> int
(** Number of (disjoint) intervals. *)

val add : t -> left:E2e_rat.Rat.t -> right:E2e_rat.Rat.t -> t
(** Add the open interval [(left, right)], coalescing any strictly
    overlapping intervals.  A degenerate interval ([left >= right]) is
    ignored; an interval sharing only an endpoint with an existing one
    is kept separate. *)

val remove : t -> left:E2e_rat.Rat.t -> right:E2e_rat.Rat.t -> t
(** Subtract the {e closed} interval [[left, right]]: pieces of existing
    intervals strictly outside it survive, so an interval [(l, r)]
    meeting it becomes [(l, left)] and/or [(right, r)] (degenerate
    pieces dropped).  Closed semantics because the difference of two
    open intervals is not open in general ([(a, l]] is unrepresentable);
    [left = right] removes a single point, splitting any interval that
    strictly contains it.  [left > right] is a no-op. *)

val mem : t -> E2e_rat.Rat.t -> bool
(** [mem t x] is [true] iff [x] lies strictly inside some interval. *)

val adjust_up : t -> E2e_rat.Rat.t -> E2e_rat.Rat.t
(** Smallest [y >= x] not strictly inside any interval: [x] itself, or
    the right endpoint of the interval containing it (disjointness
    guarantees that endpoint is itself legal). *)

val adjust_down : t -> E2e_rat.Rat.t -> E2e_rat.Rat.t
(** Largest [y <= x] not strictly inside any interval: [x] itself, or
    the left endpoint of the interval containing it. *)

val to_list : t -> (E2e_rat.Rat.t * E2e_rat.Rat.t) list
(** The intervals as [(left, right)] pairs, sorted by left endpoint,
    pairwise disjoint. *)

val get : t -> int -> E2e_rat.Rat.t * E2e_rat.Rat.t
(** [get t i] is the [i]-th interval in left-endpoint order (O(1); for
    the incremental solver's batched region walks).
    @raise Invalid_argument when [i] is out of range. *)

val rightmost_left_below : t -> E2e_rat.Rat.t -> int
(** Index of the rightmost interval whose left endpoint is strictly
    below [x], or [-1] when every interval starts at or after [x]
    (O(log n) — the primitive behind {!adjust_up}/{!adjust_down},
    exposed for the incremental solver's [g^k] evaluation). *)

val measure : t -> E2e_rat.Rat.t
(** Total length of the set, [sum (right - left)] — the bound [Lambda]
    the incremental solver uses to prune packing-start candidates. *)

val snapshot : t -> t
val of_snapshot : t -> t
(** O(1), and the snapshot is unconditionally safe to retain: the
    representation is an immutable sorted array and every operation
    returns a fresh value, so sharing is free.  These exist to name the
    persistence contract at call sites (the incremental solver stores
    one snapshot per release checkpoint); both are the identity. *)

val first_difference : t -> t -> E2e_rat.Rat.t option
(** [None] when the two sets are equal; otherwise the smallest left
    endpoint at the first (in left-endpoint order) position where they
    differ.  Every point strictly below the returned value is covered
    identically by both sets — the cut point for incremental dispatch
    replay. *)
