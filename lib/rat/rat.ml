type t = { num : int; den : int }

exception Division_by_zero
exception Overflow

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

(* Overflow-checked native-int arithmetic.  The fast paths below skip
   the checks when every operand is small enough that no intermediate
   can wrap; the slow paths use these, raising [Overflow] rather than
   ever returning a silently wrapped (hence wrong) rational. *)

(* |v| < 2^30: products of two such fit in 60 bits and sums of two such
   products in 61, comfortably inside OCaml's 63-bit native int. *)
let fits v = v > -0x4000_0000 && v < 0x4000_0000

let checked_add a b =
  let s = a + b in
  if (a >= 0) = (b >= 0) && (s >= 0) <> (a >= 0) then raise Overflow;
  s

let checked_mul a b =
  if a = 0 || b = 0 then 0
  else if a = 1 then b
  else if b = 1 then a
  else if a = min_int || b = min_int then raise Overflow
  else begin
    let p = a * b in
    if p / b <> a then raise Overflow;
    p
  end

let make num den =
  if den = 0 then raise Division_by_zero
  else if num = min_int || den = min_int then
    (* Keeping |num| and |den| <= max_int makes negation, absolute value
       and the gcd normalisation total on every constructed value. *)
    raise Overflow
  else
    let sign = if den < 0 then -1 else 1 in
    let num = sign * num and den = sign * den in
    let g = gcd (Stdlib.abs num) den in
    if g = 0 then { num = 0; den = 1 } else { num = num / g; den = den / g }

let of_int n = if n = min_int then raise Overflow else { num = n; den = 1 }
let zero = of_int 0
let one = of_int 1
let minus_one = of_int (-1)
let num t = t.num
let den t = t.den
let neg t = { t with num = -t.num }

(* Reduce cross factors before multiplying to keep intermediates small:
   a/b + c/d with g = gcd b d is (a*(d/g) + c*(b/g)) / (b/g*d). *)
let add a b =
  let g = gcd a.den b.den in
  let bd = b.den / g in
  if fits a.num && fits a.den && fits b.num && fits b.den then
    make ((a.num * bd) + (b.num * (a.den / g))) (a.den * bd)
  else
    make
      (checked_add (checked_mul a.num bd) (checked_mul b.num (a.den / g)))
      (checked_mul a.den bd)

let sub a b = add a (neg b)

let mul a b =
  let g1 = gcd (Stdlib.abs a.num) b.den and g2 = gcd (Stdlib.abs b.num) a.den in
  let g1 = if g1 = 0 then 1 else g1 and g2 = if g2 = 0 then 1 else g2 in
  if fits a.num && fits a.den && fits b.num && fits b.den then
    make (a.num / g1 * (b.num / g2)) (a.den / g2 * (b.den / g1))
  else
    make
      (checked_mul (a.num / g1) (b.num / g2))
      (checked_mul (a.den / g2) (b.den / g1))

let inv t =
  if t.num = 0 then raise Division_by_zero
  else if t.num < 0 then { num = -t.den; den = -t.num }
  else { num = t.den; den = t.num }

let div a b = mul a (inv b)
let abs t = { t with num = Stdlib.abs t.num }
let mul_int t k =
  if fits t.num && fits k then make (t.num * k) t.den else make (checked_mul t.num k) t.den

let div_int t k =
  if k = 0 then raise Division_by_zero
  else if fits t.den && fits k then make t.num (t.den * k)
  else make t.num (checked_mul t.den k)

let compare a b =
  (* Equal denominators — the common case inside solvers, where values
     share a time grid — compare by numerator alone: no multiplication,
     no overflow risk. *)
  if a.den = b.den then Stdlib.compare a.num b.num
  (* Cross-multiplication; denominators are positive. *)
  else if fits a.num && fits a.den && fits b.num && fits b.den then
    Stdlib.compare (a.num * b.den) (b.num * a.den)
  else
    (* Differing signs decide without multiplying; equal signs fall back
       to checked cross-multiplication, which raises [Overflow] rather
       than comparing wrapped products. *)
    let sa = Stdlib.compare a.num 0 and sb = Stdlib.compare b.num 0 in
    if sa <> sb then Stdlib.compare sa sb
    else Stdlib.compare (checked_mul a.num b.den) (checked_mul b.num a.den)

let equal a b = a.num = b.num && a.den = b.den
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b
let sign t = Stdlib.compare t.num 0
let is_zero t = t.num = 0

let floor t =
  if t.num >= 0 then t.num / t.den
  else
    let q = t.num / t.den in
    if t.num mod t.den = 0 then q else q - 1

let ceil t = -floor (neg t)
let is_integer t = t.den = 1

let is_multiple_of x q = is_integer (div x q)
let to_float t = float_of_int t.num /. float_of_int t.den

let of_float ?(max_den = 1_000_000) x =
  if not (Float.is_finite x) then invalid_arg "Rat.of_float: non-finite input"
  else if Float.abs x >= 0x1p62 then
    (* int_of_float would wrap on integral magnitudes >= 2^62. *)
    raise Overflow
  else if Float.is_integer x then of_int (int_of_float x)
  else begin
    (* Continued-fraction convergents p/q of |x| until q exceeds max_den. *)
    let negative = x < 0.0 in
    let x = Float.abs x in
    let rec loop frac p0 q0 p1 q1 steps =
      if steps = 0 then (p1, q1)
      else
        let a = int_of_float (Float.floor frac) in
        let p2 = (a * p1) + p0 and q2 = (a * q1) + q0 in
        if q2 > max_den then (p1, q1)
        else
          let rem = frac -. float_of_int a in
          if rem <= 1e-12 then (p2, q2) else loop (1.0 /. rem) p1 q1 p2 q2 (steps - 1)
    in
    (* Convergent recurrence seeds: h_{-2}/k_{-2} = 0/1, h_{-1}/k_{-1} = 1/0. *)
    let p, q = loop x 0 1 1 0 64 in
    let p, q = if q = 0 then (int_of_float x, 1) else (p, q) in
    make (if negative then -p else p) q
  end

let of_decimal_string s =
  let s = String.trim s in
  let fail () = invalid_arg (Printf.sprintf "Rat.of_decimal_string: %S" s) in
  if String.length s = 0 then fail ();
  match String.index_opt s '/' with
  | Some i ->
      let parse part = match int_of_string_opt part with Some n -> n | None -> fail () in
      let n = parse (String.sub s 0 i)
      and d = parse (String.sub s (i + 1) (String.length s - i - 1)) in
      if d = 0 then fail () else make n d
  | None -> (
      match String.index_opt s '.' with
      | None -> ( match int_of_string_opt s with Some n -> of_int n | None -> fail () )
      | Some i ->
          let int_part = String.sub s 0 i in
          let frac_part = String.sub s (i + 1) (String.length s - i - 1) in
          if String.length frac_part = 0 then fail ();
          let negative = String.length int_part > 0 && int_part.[0] = '-' in
          let whole =
            if int_part = "" || int_part = "-" then 0
            else match int_of_string_opt int_part with Some n -> n | None -> fail ()
          in
          let frac =
            match int_of_string_opt frac_part with Some n when n >= 0 -> n | _ -> fail ()
          in
          let scale =
            let rec pow acc k = if k = 0 then acc else pow (acc * 10) (k - 1) in
            pow 1 (String.length frac_part)
          in
          let magnitude = add (of_int (Stdlib.abs whole)) (make frac scale) in
          if negative then neg magnitude else magnitude)

let to_string t = if is_integer t then string_of_int t.num else Printf.sprintf "%d/%d" t.num t.den
let pp ppf t = Format.pp_print_string ppf (to_string t)

let pp_decimal ppf t =
  if is_integer t then Format.fprintf ppf "%d" t.num
  else
    (* Exact decimal when den | 10^k for small k, else 4 decimals. *)
    let rec try_scale k scale =
      if k > 6 then None
      else if scale mod t.den = 0 then Some (k, scale)
      else try_scale (k + 1) (scale * 10)
    in
    match try_scale 1 10 with
    | Some (k, scale) ->
        let scaled = t.num * (scale / t.den) in
        let sign = if scaled < 0 then "-" else "" in
        let scaled = Stdlib.abs scaled in
        Format.fprintf ppf "%s%d.%0*d" sign (scaled / scale) k (scaled mod scale)
    | None -> Format.fprintf ppf "%.4f" (to_float t)

let sum l = List.fold_left add zero l
let sum_array a = Array.fold_left add zero a

(* Infix aliases, last so they do not shadow the integer operators used in
   the definitions above. *)
let ( = ) = equal
let ( <> ) a b = not (equal a b)
let ( < ) a b = Stdlib.( < ) (compare a b) 0
let ( <= ) a b = Stdlib.( <= ) (compare a b) 0
let ( > ) a b = Stdlib.( > ) (compare a b) 0
let ( >= ) a b = Stdlib.( >= ) (compare a b) 0
let ( + ) = add
let ( - ) = sub
let ( * ) = mul
let ( / ) = div
