(** Exact rational arithmetic.

    All task parameters in the flow-shop model (release times, deadlines,
    processing times) are rational numbers.  The forbidden-region
    computation of Garey, Johnson, Simons and Tarjan compares derived
    quantities such as [d - k * tau] exactly; floating point would make
    the optimality results of the paper unsound.  This module provides a
    small, total, normalised rational type over native integers.

    Values are kept in lowest terms with a positive denominator, so
    structural equality coincides with numeric equality. *)

type t = private { num : int; den : int }
(** A rational [num / den] with [den > 0] and [gcd |num| den = 1]. *)

exception Division_by_zero

exception Overflow
(** Raised whenever an operation's exact result (or a required
    intermediate, such as the cross-products of {!compare}) cannot be
    represented in native integers.  Silent wraparound would return a
    {e wrong} rational, which the exact-arithmetic guarantees of the
    schedulers cannot tolerate; operations on values small enough not to
    overflow (all task parameters in practice) never raise. *)

val make : int -> int -> t
(** [make num den] is the normalised rational [num / den].
    @raise Division_by_zero if [den = 0].
    @raise Overflow if [num] or [den] is [min_int] (magnitudes must stay
    representable after negation). *)

val of_int : int -> t
val zero : t
val one : t
val minus_one : t

val num : t -> int
val den : t -> int

(** {1 Arithmetic} *)

val neg : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** @raise Division_by_zero if the divisor is zero. *)

val inv : t -> t
(** @raise Division_by_zero on [zero]. *)

val abs : t -> t
val mul_int : t -> int -> t
val div_int : t -> int -> t

(** {1 Comparison} *)

val compare : t -> t -> int
(** Total order by exact value.  Operands sharing a denominator — the
    common case on solver hot paths, where values live on one time grid
    — are decided by an allocation- and multiplication-free numerator
    comparison ({!min} and {!max} inherit the fast path).  For operands
    with huge components whose cross-products overflow (and whose signs
    do not already decide), raises {!Overflow} rather than returning a
    wrong answer. *)

val equal : t -> t -> bool
val ( = ) : t -> t -> bool
val ( <> ) : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t
val sign : t -> int
val is_zero : t -> bool

(** {1 Infix arithmetic}

    Conventional symbols suffixed with [/] to avoid clashing with the
    integer operators when the module is opened locally. *)

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t

(** {1 Rounding} *)

val floor : t -> int
(** Largest integer [<=] the rational. *)

val ceil : t -> int
(** Smallest integer [>=] the rational. *)

val is_integer : t -> bool

val is_multiple_of : t -> t -> bool
(** [is_multiple_of x q] is true when [x = k * q] for some integer [k].
    @raise Division_by_zero if [q] is zero. *)

(** {1 Conversion and printing} *)

val to_float : t -> float

val of_float : ?max_den:int -> float -> t
(** Best rational approximation with denominator at most [max_den]
    (default [1_000_000]), via continued fractions.  Intended for
    constructing test inputs from decimal literals, not for round-trips.
    @raise Invalid_argument on NaN or infinite input.
    @raise Overflow on finite magnitudes of [2^62] or more. *)

val of_decimal_string : string -> t
(** Parse ["3"], ["-2.75"], ["4/3"] style literals exactly.
    @raise Invalid_argument on malformed input. *)

val to_string : t -> string
(** ["num/den"], or just ["num"] for integers. *)

val pp : Format.formatter -> t -> unit
(** Prints like {!to_string}. *)

val pp_decimal : Format.formatter -> t -> unit
(** Prints a short decimal rendering (exact when the denominator divides a
    power of ten, otherwise 4 decimal places). *)

(** {1 Aggregates} *)

val sum : t list -> t
val sum_array : t array -> t
