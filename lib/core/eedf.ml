module Rat = E2e_rat.Rat
module Task = E2e_model.Task
module Flow_shop = E2e_model.Flow_shop
module Schedule = E2e_schedule.Schedule
module Obs = E2e_obs.Obs

type rat = Rat.t

let single_machine_jobs (shop : Flow_shop.t) ~tau =
  let m = shop.processors in
  Array.map
    (fun (task : Task.t) ->
      {
        Single_machine.id = task.id;
        release = task.release;
        (* Effective deadline of the first subtask: the task must still
           fit its remaining m-1 stages after P_1. *)
        deadline = Rat.sub task.deadline (Rat.mul_int tau (m - 1));
      })
    shop.tasks

let propagate (shop : Flow_shop.t) ~tau starts_p1 =
  let m = shop.processors in
  let starts =
    Array.mapi
      (fun i _ -> Array.init m (fun j -> Rat.(starts_p1.(i) + mul_int tau j)))
      shop.tasks
  in
  Schedule.of_flow_shop shop starts

let with_identical_length shop f =
  match Flow_shop.is_identical_length shop with
  | None -> Error `Not_identical_length
  | Some tau -> f tau

let schedule shop =
  with_identical_length shop (fun tau ->
      Obs.span "eedf.schedule"
        ~fields:[ ("tasks", Obs.Int (Flow_shop.n_tasks shop)) ]
        (fun () ->
          let jobs = single_machine_jobs shop ~tau in
          if Obs.enabled () then
            Array.iter2
              (fun (task : Task.t) (j : Single_machine.job) ->
                Obs.event "eedf.effective_deadline"
                  ~fields:
                    [
                      ("task", Obs.Int task.id);
                      ("deadline", Obs.Str (Rat.to_string task.deadline));
                      ("effective", Obs.Str (Rat.to_string j.deadline));
                    ])
              shop.tasks jobs;
          match Single_machine.schedule ~tau jobs with
          | Error `Infeasible ->
              Obs.incr "eedf.infeasible";
              Error `Infeasible
          | Ok starts ->
              Obs.incr "eedf.feasible";
              Ok (propagate shop ~tau starts)))

let schedule_no_regions shop =
  with_identical_length shop (fun tau ->
      match Single_machine.edf_schedule_no_regions ~tau (single_machine_jobs shop ~tau) with
      | Error (`Deadline_missed i) -> Error (`Deadline_missed i)
      | Ok starts -> Ok (propagate shop ~tau starts))
