module Rat = E2e_rat.Rat
module Flow_shop = E2e_model.Flow_shop
module Schedule = E2e_schedule.Schedule
module Obs = E2e_obs.Obs

type failure = [ `Inflated_infeasible | `Compacted_infeasible of Schedule.t ]

let pp_failure ppf = function
  | `Inflated_infeasible ->
      Format.pp_print_string ppf "Algorithm A found the inflated task set unschedulable"
  | `Compacted_infeasible _ ->
      Format.pp_print_string ppf "compacted schedule still violates a constraint"

type report = {
  inflated : Flow_shop.t;
  bottleneck : int;
  raw : Schedule.t option;
  result : (Schedule.t, failure) result;
}

(* Total processing time added by Step 2's inflation, per processor, as a
   float (telemetry only). *)
let inflation_fields (shop : Flow_shop.t) maxima =
  let m = shop.Flow_shop.processors in
  let per_proc = Array.make m 0.0 in
  Array.iter
    (fun (task : E2e_model.Task.t) ->
      Array.iteri
        (fun j tau -> per_proc.(j) <- per_proc.(j) +. Rat.to_float (Rat.sub maxima.(j) tau))
        task.E2e_model.Task.proc_times)
    shop.Flow_shop.tasks;
  let total = Array.fold_left ( +. ) 0.0 per_proc in
  ("total", Obs.Float total)
  :: Array.to_list
       (Array.mapi (fun j d -> (Printf.sprintf "p%d" (j + 1), Obs.Float d)) per_proc)

(* How far Algorithm C moved the raw schedule: entries changed and the
   summed absolute shift (telemetry only). *)
let compaction_fields (raw : Schedule.t) (final : Schedule.t) =
  let moved = ref 0 and shift = ref 0.0 in
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun j s ->
          let s' = final.Schedule.starts.(i).(j) in
          if not (Rat.equal s s') then begin
            incr moved;
            shift := !shift +. Rat.to_float (Rat.abs (Rat.sub s' s))
          end)
        row)
    raw.Schedule.starts;
  [
    ("moved", Obs.Int !moved);
    ("total_shift", Obs.Float !shift);
    ("violations_before", Obs.Int (List.length (Schedule.violations raw)));
  ]

let run ?(compact = true) ?bottleneck (shop : Flow_shop.t) =
  Obs.span "algo_h.run"
    ~fields:[ ("tasks", Obs.Int (Flow_shop.n_tasks shop)) ]
    (fun () ->
      (* Steps 2-3: inflate every subtask on P_j to tau_max,j.  Note that the
         effective release times and deadlines fed to Algorithm A come from
         Step 1, i.e. from the ORIGINAL processing times — the inflated
         windows are not recomputed.  This is why the schedule of Figure 8(a)
         can violate release times: the rigid upstream propagation uses the
         longer inflated durations against the original windows. *)
      let inflated = Flow_shop.inflate shop in
      let maxima = Flow_shop.max_proc_times shop in
      let b = match bottleneck with Some b -> b | None -> Flow_shop.bottleneck inflated in
      if Obs.enabled () then
        Obs.event "algo_h.inflation"
          ~fields:(("bottleneck", Obs.Int b) :: inflation_fields shop maxima);
      (* Step 4: Algorithm A's Step 2 on the bottleneck — an equal-length
         (tau_max,b) single-machine instance over the original effective
         windows. *)
      match
        Obs.span "algo_h.bottleneck_pass" (fun () ->
            Single_machine.schedule ~tau:maxima.(b) (Algo_a.bottleneck_jobs shop ~bottleneck:b))
      with
      | Error `Infeasible ->
          Obs.incr "algo_h.inflated_infeasible";
          { inflated; bottleneck = b; raw = None; result = Error `Inflated_infeasible }
      | Ok starts_b ->
          (* Algorithm A's Step 3 with the inflated durations; the inflated
             schedule is then reread with the original processing times (each
             inflated subtask = busy segment first, idle padding after). *)
          let inflated_schedule =
            Algo_a.propagate_from_bottleneck inflated ~bottleneck:b starts_b
          in
          let raw = Schedule.make (E2e_model.Recurrence_shop.of_traditional shop)
                      inflated_schedule.Schedule.starts in
          (* Step 5: Algorithm C. *)
          let final =
            if compact then Obs.span "algo_h.compact" (fun () -> Algo_c.compact raw)
            else raw
          in
          if Obs.enabled () && compact then
            Obs.event "algo_h.compaction" ~fields:(compaction_fields raw final);
          let result =
            if Schedule.is_feasible final then begin
              Obs.incr "algo_h.feasible";
              Ok final
            end
            else begin
              Obs.incr "algo_h.compacted_infeasible";
              Error (`Compacted_infeasible final)
            end
          in
          { inflated; bottleneck = b; raw = Some raw; result })

let schedule shop = (run shop).result
