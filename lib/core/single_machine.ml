module Rat = E2e_rat.Rat
module Obs = E2e_obs.Obs
module Heap = E2e_ds.Heap
module Interval_set = E2e_ds.Interval_set

type rat = Rat.t
type job = { id : int; release : rat; deadline : rat }
type region = { left : rat; right : rat }

let pp_region ppf r = Format.fprintf ppf "(%a, %a)" Rat.pp r.left Rat.pp r.right

(* Forbidden regions, indexed.

   The classical derivation packs, for every release r and every
   deadline d, the jobs with release >= r and deadline <= d as late as
   possible before d (avoiding regions already found); if that packing
   starts at c, then (c - tau, r) is forbidden (and c < r proves
   infeasibility).  Enumerating the (r, d) pairs costs O(n^2) packings
   of O(n) steps each.

   One backward pass per release subsumes the whole deadline loop: walk
   the jobs with release >= r in decreasing-deadline order, keeping the
   running packing start

     s := adjust_down (min (deadline_j, s) - tau)

   (each job must end both by its own deadline and by the start of the
   job packed after it).  Take the last job whose own deadline was the
   binding constraint, say with deadline d*: the suffix from that job on
   is exactly the latest packing of the jobs with deadline <= d* — the
   per-deadline packing for d* — and every per-deadline packing
   restricted this way starts no earlier than the full pass does.  So
   the final s equals the minimum over all deadlines of the classical
   per-(r, d) packing starts, and the single region (s - tau, r) is
   precisely the union of the per-deadline regions for r (they share
   the right endpoint r).  Infeasibility (some packing starting before
   r) also coincides: packing starts only decrease along the pass.

   Cost: one O(n log n) sort, then per release one pass over the jobs
   released at or after it with an O(log n) region lookup per step —
   O(n^2 log n) worst case, O(n log n) when release times are few, and
   free of the per-(r, d) re-packing that made the scan version
   O(n^3). *)
let forbidden_regions_iset ~tau jobs =
  let n = Array.length jobs in
  let by_deadline = Array.copy jobs in
  Array.sort (fun a b -> Rat.compare b.deadline a.deadline) by_deadline;
  let releases_desc =
    List.rev
      (List.sort_uniq Rat.compare (Array.to_list (Array.map (fun j -> j.release) jobs)))
  in
  let exception Infeasible in
  try
    let regions = ref Interval_set.empty in
    List.iter
      (fun r ->
        let s = ref None in
        for i = 0 to n - 1 do
          let j = by_deadline.(i) in
          if Rat.(j.release >= r) then begin
            let cap = match !s with None -> j.deadline | Some s -> Rat.min j.deadline s in
            s := Some (Interval_set.adjust_down !regions (Rat.sub cap tau))
          end
        done;
        match !s with
        | None -> ()
        | Some e ->
            if Rat.(e < r) then begin
              if Obs.enabled () then
                Obs.event "single_machine.infeasible_window"
                  ~fields:
                    [
                      ("release", Obs.Str (Rat.to_string r));
                      ("packing_start", Obs.Str (Rat.to_string e));
                    ];
              raise Infeasible
            end;
            let left = Rat.sub e tau in
            if Rat.(left < r) then begin
              if Obs.enabled () then
                Obs.event "single_machine.forbidden_region"
                  ~fields:
                    [
                      ("left", Obs.Str (Rat.to_string left));
                      ("right", Obs.Str (Rat.to_string r));
                    ];
              regions := Interval_set.add !regions ~left ~right:r
            end)
      releases_desc;
    Ok !regions
  with Infeasible -> Error `Infeasible

let forbidden_regions ~tau jobs =
  match forbidden_regions_iset ~tau jobs with
  | Error `Infeasible -> Error `Infeasible
  | Ok iset ->
      Ok (List.map (fun (left, right) -> { left; right }) (Interval_set.to_list iset))

(* Priority-driven EDF dispatch on two heaps: [pending] orders the
   not-yet-released jobs by release time, [ready] orders the released
   ones by (deadline, release, id) — the heap pop is exactly the EDF
   choice with the deterministic tie-break.  [advance] postpones
   candidate dispatch instants (identity for the plain-EDF ablation,
   forbidden-region hopping for the optimal variant). *)
let pending_cmp a b =
  let c = Rat.compare a.release b.release in
  if c <> 0 then c else compare a.id b.id

let ready_cmp a b =
  let c = Rat.compare a.deadline b.deadline in
  let c = if c <> 0 then c else Rat.compare a.release b.release in
  if c <> 0 then c else compare a.id b.id

let edf_dispatch ~tau ~advance jobs =
  let n = Array.length jobs in
  let starts = Array.make n Rat.zero in
  let missed = ref None in
  let pending = Heap.of_list ~cmp:pending_cmp (Array.to_list jobs) in
  let ready = Heap.create ~cmp:ready_cmp in
  (* Initialise the machine to the earliest release so time starts sane. *)
  let free = ref (match Heap.peek pending with Some j -> j.release | None -> Rat.zero) in
  for _ = 1 to n do
    (* Candidate dispatch time: machine free, and at least one release.
       Every ready job was released before the machine last went busy,
       so a non-empty ready queue pins the candidate to [free]. *)
    let t =
      ref
        (if Heap.is_empty ready then
           match Heap.peek pending with
           | Some j -> Rat.max !free j.release
           | None -> assert false
         else !free)
    in
    let rec settle () =
      let t' = advance !t in
      if Rat.(t' > !t) then begin
        t := t';
        settle ()
      end
    in
    settle ();
    (* Everything released by the dispatch instant competes. *)
    let rec migrate () =
      match Heap.peek pending with
      | Some j when Rat.(j.release <= !t) ->
          ignore (Heap.pop pending);
          Heap.push ready j;
          migrate ()
      | _ -> ()
    in
    migrate ();
    match Heap.pop ready with
    | None -> assert false
    | Some j ->
        starts.(j.id) <- !t;
        let finish = Rat.add !t tau in
        free := finish;
        if Obs.enabled () then begin
          Obs.incr "single_machine.dispatches";
          Obs.event "single_machine.dispatch"
            ~fields:
              [
                ("job", Obs.Int j.id);
                ("t", Obs.Float (Rat.to_float !t));
                ("deadline", Obs.Float (Rat.to_float j.deadline));
              ]
        end;
        if Rat.(finish > j.deadline) && !missed = None then begin
          if Obs.enabled () then begin
            Obs.incr "single_machine.deadline_misses";
            Obs.event "single_machine.deadline_miss"
              ~fields:
                [
                  ("job", Obs.Int j.id);
                  ("finish", Obs.Float (Rat.to_float finish));
                  ("deadline", Obs.Float (Rat.to_float j.deadline));
                ]
          end;
          missed := Some j.id
        end
  done;
  (starts, !missed)

(* Re-index jobs so [job.id] can be used as an array slot even when the
   caller's ids are arbitrary; results are returned in input order. *)
let with_dense_ids jobs f =
  let dense = Array.mapi (fun i j -> { j with id = i }) jobs in
  f dense

let schedule ~tau jobs =
  if Array.length jobs = 0 then Ok [||]
  else
    Obs.span "single_machine.schedule"
      ~fields:[ ("jobs", Obs.Int (Array.length jobs)) ]
      (fun () ->
        match
          Obs.span "single_machine.forbidden_regions" (fun () ->
              forbidden_regions_iset ~tau jobs)
        with
        | Error `Infeasible -> Error `Infeasible
        | Ok iset ->
            if Obs.enabled () then
              Obs.event "single_machine.regions"
                ~fields:[ ("count", Obs.Int (Interval_set.cardinal iset)) ];
            with_dense_ids jobs (fun dense ->
                let starts, missed =
                  Obs.span "single_machine.edf_dispatch" (fun () ->
                      edf_dispatch ~tau ~advance:(Interval_set.adjust_up iset) dense)
                in
                match missed with Some _ -> Error `Infeasible | None -> Ok starts))

let edf_schedule_no_regions ~tau jobs =
  if Array.length jobs = 0 then Ok [||]
  else
    with_dense_ids jobs (fun dense ->
        let starts, missed = edf_dispatch ~tau ~advance:Fun.id dense in
        match missed with
        | Some i -> Error (`Deadline_missed jobs.(i).id)
        | None -> Ok starts)

let feasible_starts ~tau jobs starts =
  let n = Array.length jobs in
  Array.length starts = n
  && begin
       let ok = ref true in
       for i = 0 to n - 1 do
         if Rat.(starts.(i) < jobs.(i).release) then ok := false;
         if Rat.(Rat.add starts.(i) tau > jobs.(i).deadline) then ok := false
       done;
       let order = List.init n Fun.id in
       let order = List.sort (fun a b -> Rat.compare starts.(a) starts.(b)) order in
       let rec disjoint = function
         | a :: (b :: _ as rest) ->
             if Rat.(Rat.add starts.(a) tau > starts.(b)) then ok := false;
             disjoint rest
         | [] | [ _ ] -> ()
       in
       disjoint order;
       !ok
     end

let brute_force_feasible ~tau jobs =
  let n = Array.length jobs in
  let used = Array.make n false in
  (* For a fixed order, starting every job as early as possible is
     optimal, so feasibility = some order survives the greedy timing. *)
  let rec go scheduled free =
    if scheduled = n then true
    else
      let rec try_jobs i =
        if i >= n then false
        else if used.(i) then try_jobs (i + 1)
        else begin
          let s = Rat.max free jobs.(i).release in
          if Rat.(Rat.add s tau <= jobs.(i).deadline) then begin
            used.(i) <- true;
            let ok = go (scheduled + 1) (Rat.add s tau) in
            used.(i) <- false;
            if ok then true else try_jobs (i + 1)
          end
          else try_jobs (i + 1)
        end
      in
      try_jobs 0
  in
  let earliest =
    Array.fold_left (fun acc j -> Rat.min acc j.release) Rat.zero jobs
  in
  go 0 earliest

(* {1 Incremental solver state}

   [schedule] above is the from-scratch reference: one backward packing
   pass per distinct release, then one EDF dispatch sweep.  [Inc] keeps
   enough persistent state to redo only the part of that work an
   [add_task]/[remove_task] invalidates, while producing byte-identical
   results (the [eedf-inc] differential fuzz class enforces exact
   agreement on regions, schedules and verdicts).

   Two observations make the delta cheap:

   - Region passes run over releases in DESCENDING order and the pass
     for release [r] reads only jobs with release [>= r].  An edit at
     release [r0] therefore leaves every pass for a release [> r0]
     bit-identical, so the state keeps one {!E2e_ds.Interval_set}
     snapshot per distinct release (O(1) shares — the set is
     persistent) and resumes the sweep at the first release [<= r0].

   - The resumed passes cannot afford the reference's O(n) fold each.
     The fold result for release [r] equals

       min over active deadlines d of  g^{N(d)}(d)

     where [g x = adjust_down (x - tau)], [N(d)] counts active jobs
     (release [>= r]) with deadline [<= d], and "active deadline" means
     one owned by at least one active job: [g] is monotone and commutes
     with [min], so unrolling the fold splits it per deadline, and
     within an equal-deadline run more applications of the strictly
     decreasing [g] only lower the value, leaving the run's last job —
     the full count [N(d)] — as the minimum.  Without regions
     [g^k(d) = d - k tau]; each region hop can lower a walk by at most
     the region's length, and a walk crosses each region at most once
     (values strictly decrease), so the true value lies within
     [Lambda = measure regions] of the no-region value.  The state
     keeps the no-region values [d - N(d) tau] in a lazy min segment
     tree (plus a Fenwick tree for the counts), reads the tree minimum,
     evaluates [g^{N(d)}(d)] exactly — batching the subtraction steps
     between regions with one floor division — only for the candidates
     within [Lambda] of it, and takes the exact minimum.

   Dispatch reuse: starts are strictly increasing, so the committed
   dispatch order is replayed up to [cut = min r0 L], where [L] is
   {!E2e_ds.Interval_set.first_difference} of the old and new region
   sets.  Below [cut] the two runs are in lockstep (the edited job,
   release [>= r0], is invisible there, and [adjust_up] agrees on every
   instant below the first region difference), so the prefix is copied
   and the heap loop resumes from its frontier. *)

module Inc = struct
  module Iset = Interval_set

  (* Fenwick tree of active-job counts per deadline position (1-based
     internally). *)
  module Fenwick = struct
    type t = int array (* length m + 1 *)

    let create m : t = Array.make (m + 1) 0

    let add (t : t) i v =
      let n = Array.length t - 1 in
      let i = ref (i + 1) in
      while !i <= n do
        t.(!i) <- t.(!i) + v;
        i := !i + (!i land - !i)
      done

    (* Number of active jobs with deadline <= position [i]. *)
    let prefix (t : t) i =
      let s = ref 0 and i = ref (i + 1) in
      while !i > 0 do
        s := !s + t.(!i);
        i := !i - (!i land - !i)
      done;
      !s
  end

  (* Lazy min segment tree over deadline positions.  A leaf is [Some v]
     for an active deadline (value [d - N(d) tau]) and [None] for an
     inactive one; [range_add k] records "N grew by k" on a leaf range,
     i.e. subtracts [k tau] from the active leaves, lazily. *)
  module Vtree = struct
    type t = {
      size : int; (* power of two >= leaf count, >= 1 *)
      min_ : Rat.t option array; (* 1-based, 2*size nodes *)
      pend : int array; (* pending count per internal node *)
      tau : rat;
    }

    let create ~tau m =
      let size = ref 1 in
      while !size < m do
        size := 2 * !size
      done;
      { size = !size; min_ = Array.make (2 * !size) None; pend = Array.make (2 * !size) 0; tau }

    let apply t i k =
      if k <> 0 then begin
        (match t.min_.(i) with
        | Some v -> t.min_.(i) <- Some (Rat.sub v (Rat.mul_int t.tau k))
        | None -> ());
        if i < t.size then t.pend.(i) <- t.pend.(i) + k
      end

    let push t i =
      let k = t.pend.(i) in
      if k <> 0 then begin
        apply t (2 * i) k;
        apply t ((2 * i) + 1) k;
        t.pend.(i) <- 0
      end

    let pull t i =
      t.min_.(i) <-
        (match (t.min_.(2 * i), t.min_.((2 * i) + 1)) with
        | None, x | x, None -> x
        | Some a, Some b -> Some (Rat.min a b))

    (* Leaves set in one pass (activation values already absolute),
       internals pulled bottom-up: O(size). *)
    let build t values =
      Array.iteri (fun i v -> t.min_.(t.size + i) <- v) values;
      for i = t.size - 1 downto 1 do
        pull t i
      done

    let range_add t l r k =
      if l <= r && k <> 0 then begin
        let rec go i lo hi =
          if r < lo || hi < l then ()
          else if l <= lo && hi <= r then apply t i k
          else begin
            push t i;
            let mid = (lo + hi) / 2 in
            go (2 * i) lo mid;
            go ((2 * i) + 1) (mid + 1) hi;
            pull t i
          end
        in
        go 1 0 (t.size - 1)
      end

    (* Activate a leaf with its absolute value: pending counts on the
       path are pushed down first, so the assignment is not retroactively
       shifted by adds that predate the activation (the absolute value
       already accounts for them via the Fenwick count). *)
    let assign t pos v =
      let rec go i lo hi =
        if lo = hi then t.min_.(i) <- Some v
        else begin
          push t i;
          let mid = (lo + hi) / 2 in
          if pos <= mid then go (2 * i) lo mid else go ((2 * i) + 1) (mid + 1) hi;
          pull t i
        end
      in
      go 1 0 (t.size - 1)

    let root_min t = t.min_.(1)

    (* Visit every active leaf whose value is <= threshold. *)
    let iter_le t threshold f =
      let rec go i lo hi =
        match t.min_.(i) with
        | None -> ()
        | Some v when Rat.compare v threshold > 0 -> ()
        | Some v ->
            if lo = hi then f lo v
            else begin
              push t i;
              let mid = (lo + hi) / 2 in
              go (2 * i) lo mid;
              go ((2 * i) + 1) (mid + 1) hi
            end
      in
      go 1 0 (t.size - 1)
  end

  (* g^k(x) for g(x) = adjust_down regions (x - tau), batching the plain
     subtraction steps between regions: from [x], the first region the
     walk can enter is the rightmost one with left < x (higher regions
     start at or above x and the walk only descends), so one floor
     division finds how many steps reach it.  O(regions crossed) region
     lookups. *)
  let eval_gk regions ~tau x k =
    let rec go x k =
      if k = 0 then x
      else
        let j = Iset.rightmost_left_below regions x in
        if j < 0 then Rat.sub x (Rat.mul_int tau k)
        else
          let _, rt = Iset.get regions j in
          (* Smallest i >= 1 with x - i tau < rt (strict: the interval is
             open, landing exactly on rt stays outside). *)
          let i0 =
            let q = Rat.floor (Rat.div (Rat.sub x rt) tau) + 1 in
            if q < 1 then 1 else q
          in
          if i0 > k then Rat.sub x (Rat.mul_int tau k)
          else
            (* The landing value y < rt may sit strictly inside region j
               — or inside a lower region entirely cleared by the last
               tau-step — so settle it with a general lookup.  Either
               way the settled value is <= l, so each recursion consumes
               at least one region: O(regions crossed) total. *)
            let y = Rat.sub x (Rat.mul_int tau i0) in
            go (Iset.adjust_down regions y) (k - i0)
    in
    go x k

  type checkpoint = { release : rat; before : Iset.t }
  (* Region set before the pass for [release] ran (equivalently: after
     every pass for a strictly greater release).  Checkpoints are kept
     in descending release order; on infeasibility the failing release's
     checkpoint is the last one. *)

  type core = Feasible_regions of Iset.t | Infeasible_at of rat

  type dispatch = {
    order : (int * rat) array; (* (position, start) in dispatch order *)
    starts : rat array; (* by position *)
    missed : int option; (* first position whose deadline is missed *)
  }

  type state = {
    tau : rat;
    jobs : job array; (* ids = positions, caller order *)
    checkpoints : checkpoint array;
    core : core;
    disp : dispatch option; (* None iff core = Infeasible_at *)
  }

  let tau st = st.tau
  let n_jobs st = Array.length st.jobs
  let jobs st = Array.copy st.jobs

  (* Redo the packing passes for distinct releases <= r0 (all of them
     when [r0_opt] is [None]), on top of [kept] checkpoints whose passes
     (releases > r0) are unchanged and produced [start_regions]. *)
  let compute_core ~tau (jobs : job array) ~kept ~start_regions ~r0_opt =
    let n = Array.length jobs in
    let included p =
      match r0_opt with None -> false | Some r0 -> Rat.(jobs.(p).release > r0)
    in
    (* Distinct deadlines, ascending. *)
    let sorted = Array.map (fun j -> j.deadline) jobs in
    Array.sort Rat.compare sorted;
    let m = ref 0 in
    Array.iteri
      (fun i d ->
        if i = 0 || not (Rat.equal d sorted.(i - 1)) then begin
          sorted.(!m) <- d;
          incr m
        end)
      sorted;
    let m = !m in
    let distinct = Array.sub sorted 0 m in
    let dpos d =
      let lo = ref 0 and hi = ref (m - 1) in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if Rat.compare distinct.(mid) d < 0 then lo := mid + 1 else hi := mid
      done;
      !lo
    in
    (* Job positions by release, descending. *)
    let by_release = Array.init n Fun.id in
    Array.sort (fun a b -> Rat.compare jobs.(b).release jobs.(a).release) by_release;
    let fen = Fenwick.create m in
    let tree = Vtree.create ~tau m in
    let active = Array.make (max m 1) false in
    (* Bulk-activate the jobs whose passes are kept. *)
    let cnt = Array.make (max m 1) 0 in
    Array.iteri
      (fun p j -> if included p then cnt.(dpos j.deadline) <- cnt.(dpos j.deadline) + 1)
      jobs;
    let leaves = Array.make m None in
    let running = ref 0 in
    for pos = 0 to m - 1 do
      running := !running + cnt.(pos);
      if cnt.(pos) > 0 then begin
        Fenwick.add fen pos cnt.(pos);
        active.(pos) <- true;
        leaves.(pos) <- Some (Rat.sub distinct.(pos) (Rat.mul_int tau !running))
      end
    done;
    Vtree.build tree leaves;
    let regions = ref start_regions in
    let lambda = ref (Iset.measure start_regions) in
    let cps = ref [] in
    let idx = ref 0 in
    while !idx < n && included by_release.(!idx) do
      incr idx
    done;
    let verdict = ref None in
    while !verdict = None && !idx < n do
      let r = jobs.(by_release.(!idx)).release in
      cps := { release = r; before = Iset.snapshot !regions } :: !cps;
      while
        !idx < n && Rat.equal jobs.(by_release.(!idx)).release r
      do
        let p = by_release.(!idx) in
        let pos = dpos jobs.(p).deadline in
        Fenwick.add fen pos 1;
        if active.(pos) then Vtree.range_add tree pos (m - 1) 1
        else begin
          Vtree.range_add tree (pos + 1) (m - 1) 1;
          Vtree.assign tree pos
            (Rat.sub jobs.(p).deadline (Rat.mul_int tau (Fenwick.prefix fen pos)));
          active.(pos) <- true
        end;
        incr idx
      done;
      let s =
        match Vtree.root_min tree with
        | None -> assert false (* at least one job just activated *)
        | Some vmin ->
            let threshold = Rat.add vmin !lambda in
            let best = ref None in
            Vtree.iter_le tree threshold (fun pos _ ->
                let tv = eval_gk !regions ~tau distinct.(pos) (Fenwick.prefix fen pos) in
                match !best with
                | Some b when Rat.(b <= tv) -> ()
                | _ -> best := Some tv);
            Option.get !best
      in
      if Rat.(s < r) then verdict := Some (Infeasible_at r)
      else begin
        let left = Rat.sub s tau in
        if Rat.(left < r) then begin
          regions := Iset.add !regions ~left ~right:r;
          lambda := Iset.measure !regions
        end
      end
    done;
    let core =
      match !verdict with Some c -> c | None -> Feasible_regions !regions
    in
    (core, Array.append kept (Array.of_list (List.rev !cps)))

  (* EDF dispatch resumed from a committed prefix (positions, starts):
     prefix starts are replayed, the heap frontier is rebuilt exactly as
     the monolithic loop would have left it (ready = undispatched jobs
     released by the last prefix start, machine free at its finish), and
     the loop continues.  An empty prefix is the from-scratch run. *)
  let dispatch_from ~tau ~advance (jobs : job array) (prefix : (int * rat) array) =
    let n = Array.length jobs in
    let np = Array.length prefix in
    let starts = Array.make n Rat.zero in
    let order = Array.make n (0, Rat.zero) in
    let missed = ref None in
    let in_prefix = Array.make (max n 1) false in
    Array.iteri
      (fun i (p, s) ->
        order.(i) <- (p, s);
        starts.(p) <- s;
        in_prefix.(p) <- true;
        if Rat.(Rat.add s tau > jobs.(p).deadline) && !missed = None then missed := Some p)
      prefix;
    let pending = Heap.create ~cmp:pending_cmp in
    let ready = Heap.create ~cmp:ready_cmp in
    let t_last = if np = 0 then None else Some (snd prefix.(np - 1)) in
    Array.iteri
      (fun p (j : job) ->
        if not in_prefix.(p) then
          match t_last with
          | Some tl when Rat.(j.release <= tl) -> Heap.push ready j
          | _ -> Heap.push pending j)
      jobs;
    let free =
      ref
        (match t_last with
        | Some tl -> Rat.add tl tau
        | None -> ( match Heap.peek pending with Some j -> j.release | None -> Rat.zero))
    in
    for step = np to n - 1 do
      let t =
        ref
          (if Heap.is_empty ready then
             match Heap.peek pending with
             | Some j -> Rat.max !free j.release
             | None -> assert false
           else !free)
      in
      let rec settle () =
        let t' = advance !t in
        if Rat.(t' > !t) then begin
          t := t';
          settle ()
        end
      in
      settle ();
      let rec migrate () =
        match Heap.peek pending with
        | Some j when Rat.(j.release <= !t) ->
            ignore (Heap.pop pending);
            Heap.push ready j;
            migrate ()
        | _ -> ()
      in
      migrate ();
      match Heap.pop ready with
      | None -> assert false
      | Some j ->
          starts.(j.id) <- !t;
          order.(step) <- (j.id, !t);
          free := Rat.add !t tau;
          if Rat.(!free > j.deadline) && !missed = None then missed := Some j.id
    done;
    { order; starts; missed = !missed }

  let finish ~tau ~(jobs : job array) ~checkpoints ~core ~prefix =
    match core with
    | Infeasible_at _ -> { tau; jobs; checkpoints; core; disp = None }
    | Feasible_regions iset ->
        let disp = dispatch_from ~tau ~advance:(Iset.adjust_up iset) jobs prefix in
        { tau; jobs; checkpoints; core; disp = Some disp }

  let make ~tau jobs =
    if Rat.(tau <= Rat.zero) then invalid_arg "Single_machine.Inc.make: tau must be positive";
    let jobs = Array.mapi (fun i j -> { j with id = i }) jobs in
    let core, checkpoints =
      compute_core ~tau jobs ~kept:[||] ~start_regions:Iset.empty ~r0_opt:None
    in
    finish ~tau ~jobs ~checkpoints ~core ~prefix:[||]

  (* Old dispatch prefix still valid after an edit at release [r0]:
     entries with start < cut, where below [cut] the edited job is not
     yet released and the region sets agree (see the module comment).
     [remap] carries old positions to new ones ([None] = edited away —
     unreachable for starts below cut, but filtered defensively). *)
  let reusable_prefix old_st ~new_core ~r0 ~remap =
    match (old_st.core, old_st.disp, new_core) with
    | Feasible_regions old_iset, Some od, Feasible_regions new_iset ->
        let cut =
          match Iset.first_difference old_iset new_iset with
          | None -> r0
          | Some l -> Rat.min r0 l
        in
        let out = ref [] in
        (try
           Array.iter
             (fun (p, s) ->
               if Rat.(s >= cut) then raise Exit;
               match remap p with Some q -> out := (q, s) :: !out | None -> raise Exit)
             od.order
         with Exit -> ());
        Array.of_list (List.rev !out)
    | _ -> [||]

  let delta st (jobs : job array) ~r0 ~remap =
    match st.core with
    | Infeasible_at rf when Rat.(r0 < rf) ->
        (* Every pass down to and including the failing one reads only
           jobs with release >= rf > r0: the verdict and the checkpoints
           survive the edit unchanged. *)
        { st with jobs }
    | _ ->
        let kept_n = ref 0 in
        while
          !kept_n < Array.length st.checkpoints
          && Rat.(st.checkpoints.(!kept_n).release > r0)
        do
          incr kept_n
        done;
        let kept = Array.sub st.checkpoints 0 !kept_n in
        let start_regions =
          if !kept_n < Array.length st.checkpoints then st.checkpoints.(!kept_n).before
          else
            match st.core with
            | Feasible_regions r -> r
            | Infeasible_at _ ->
                (* The failing release has a checkpoint and is <= r0, so
                   the sub above always finds it. *)
                assert false
        in
        let core, checkpoints =
          compute_core ~tau:st.tau jobs ~kept ~start_regions ~r0_opt:(Some r0)
        in
        let prefix = reusable_prefix st ~new_core:core ~r0 ~remap in
        finish ~tau:st.tau ~jobs ~checkpoints ~core ~prefix

  let add_task st ~at ~release ~deadline =
    let n = Array.length st.jobs in
    if at < 0 || at > n then invalid_arg "Single_machine.Inc.add_task: position out of range";
    let jobs =
      Array.init (n + 1) (fun i ->
          if i < at then st.jobs.(i)
          else if i = at then { id = i; release; deadline }
          else { (st.jobs.(i - 1)) with id = i })
    in
    delta st jobs ~r0:release ~remap:(fun q -> if q >= at then Some (q + 1) else Some q)

  let remove_task st ~at =
    let n = Array.length st.jobs in
    if at < 0 || at >= n then
      invalid_arg "Single_machine.Inc.remove_task: position out of range";
    let r0 = st.jobs.(at).release in
    let jobs =
      Array.init (n - 1) (fun i ->
          if i < at then st.jobs.(i) else { (st.jobs.(i + 1)) with id = i })
    in
    delta st jobs ~r0 ~remap:(fun q ->
        if q = at then None else if q > at then Some (q - 1) else Some q)

  let solve st =
    match (st.core, st.disp) with
    | Infeasible_at _, _ -> Error `Infeasible
    | Feasible_regions _, Some d -> (
        match d.missed with Some _ -> Error `Infeasible | None -> Ok d.starts)
    | Feasible_regions _, None -> assert false

  let regions st =
    match st.core with
    | Infeasible_at _ -> Error `Infeasible
    | Feasible_regions iset ->
        Ok (List.map (fun (left, right) -> { left; right }) (Iset.to_list iset))
end
