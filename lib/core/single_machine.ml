module Rat = E2e_rat.Rat
module Obs = E2e_obs.Obs

type rat = Rat.t
type job = { id : int; release : rat; deadline : rat }
type region = { left : rat; right : rat }

let pp_region ppf r = Format.fprintf ppf "(%a, %a)" Rat.pp r.left Rat.pp r.right

(* Regions are kept sorted by [left] and pairwise disjoint.  Two regions
   sharing only an endpoint are NOT merged: the shared point itself is a
   legal start instant because regions are open intervals. *)
let insert_region regions (r : region) =
  if Rat.(r.left >= r.right) then regions
  else
    let rec merge acc r = function
      | [] -> List.rev (r :: acc)
      | r' :: rest ->
          if Rat.(r'.right < r.left) || Rat.(r'.right = r.left) then merge (r' :: acc) r rest
          else if Rat.(r.right < r'.left) || Rat.(r.right = r'.left) then
            List.rev_append acc (r :: r' :: rest)
          else
            (* Overlapping: coalesce and keep scanning. *)
            merge acc { left = Rat.min r.left r'.left; right = Rat.max r.right r'.right } rest
    in
    merge [] r regions

(* Largest start time [<= s] that is not strictly inside a region. *)
let adjust_down regions s =
  List.fold_left
    (fun s r -> if Rat.(r.left < s) && Rat.(s < r.right) then r.left else s)
    s regions

(* Smallest start time [>= s] that is not strictly inside a region. *)
let adjust_up regions s =
  List.fold_left
    (fun s r -> if Rat.(r.left < s) && Rat.(s < r.right) then r.right else s)
    s regions

(* Earliest start of the latest packing of [count] jobs of length [tau]
   all completing by [deadline], with every start outside [regions].
   [adjust_down] folds left-to-right over the sorted region list, so a
   single pass lands on a legal start even across adjacent regions. *)
let pack_latest regions ~tau ~count ~deadline =
  let rec go s remaining =
    let s = adjust_down regions s in
    if remaining = 1 then s else go (Rat.sub s tau) (remaining - 1)
  in
  go (Rat.sub deadline tau) count

let sorted_distinct values =
  let sorted = List.sort_uniq Rat.compare values in
  sorted

let forbidden_regions ~tau jobs =
  let releases = sorted_distinct (Array.to_list (Array.map (fun j -> j.release) jobs)) in
  let deadlines = sorted_distinct (Array.to_list (Array.map (fun j -> j.deadline) jobs)) in
  let releases_desc = List.rev releases in
  let exception Infeasible in
  try
    let regions = ref [] in
    List.iter
      (fun r ->
        List.iter
          (fun d ->
            let count =
              Array.fold_left
                (fun acc j -> if Rat.(j.release >= r) && Rat.(j.deadline <= d) then acc + 1 else acc)
                0 jobs
            in
            if count > 0 then begin
              let c = pack_latest !regions ~tau ~count ~deadline:d in
              if Rat.(c < r) then begin
                if Obs.enabled () then
                  Obs.event "single_machine.infeasible_window"
                    ~fields:
                      [
                        ("release", Obs.Str (Rat.to_string r));
                        ("deadline", Obs.Str (Rat.to_string d));
                        ("jobs", Obs.Int count);
                      ];
                raise Infeasible
              end;
              let left = Rat.sub c tau in
              if Rat.(left < r) then begin
                if Obs.enabled () then
                  Obs.event "single_machine.forbidden_region"
                    ~fields:
                      [
                        ("left", Obs.Str (Rat.to_string left));
                        ("right", Obs.Str (Rat.to_string r));
                        ("jobs", Obs.Int count);
                      ];
                regions := insert_region !regions { left; right = r }
              end
            end)
          deadlines)
      releases_desc;
    Ok !regions
  with Infeasible -> Error `Infeasible

(* Priority-driven EDF dispatch; [advance] postpones candidate dispatch
   instants (identity for the plain-EDF ablation, region hopping for the
   optimal variant). *)
let edf_dispatch ~tau ~advance jobs =
  let n = Array.length jobs in
  let starts = Array.make n Rat.zero in
  let done_ = Array.make n false in
  let free = ref Rat.zero in
  let missed = ref None in
  (* Initialise the machine to the earliest release so time starts sane. *)
  if n > 0 then
    free := Array.fold_left (fun acc j -> Rat.min acc j.release) jobs.(0).release jobs;
  for _ = 1 to n do
    (* Candidate dispatch time: machine free, and at least one release. *)
    let min_release =
      Array.fold_left
        (fun acc j ->
          if done_.(j.id) then acc
          else Some (match acc with None -> j.release | Some m -> Rat.min m j.release))
        None jobs
    in
    match min_release with
    | None -> ()
    | Some min_release ->
        let t = ref (Rat.max !free min_release) in
        let rec settle () =
          let t' = advance !t in
          if Rat.(t' > !t) then begin
            t := t';
            settle ()
          end
        in
        settle ();
        (* Among ready jobs pick the earliest deadline (ties: release, id). *)
        let best = ref None in
        Array.iter
          (fun j ->
            if (not done_.(j.id)) && Rat.(j.release <= !t) then
              match !best with
              | None -> best := Some j
              | Some b ->
                  let c = Rat.compare j.deadline b.deadline in
                  let c = if c <> 0 then c else Rat.compare j.release b.release in
                  let c = if c <> 0 then c else compare j.id b.id in
                  if c < 0 then best := Some j)
          jobs;
        (match !best with
        | None -> assert false
        | Some j ->
            starts.(j.id) <- !t;
            done_.(j.id) <- true;
            let finish = Rat.add !t tau in
            free := finish;
            if Obs.enabled () then begin
              Obs.incr "single_machine.dispatches";
              Obs.event "single_machine.dispatch"
                ~fields:
                  [
                    ("job", Obs.Int j.id);
                    ("t", Obs.Float (Rat.to_float !t));
                    ("deadline", Obs.Float (Rat.to_float j.deadline));
                  ]
            end;
            if Rat.(finish > j.deadline) && !missed = None then begin
              if Obs.enabled () then begin
                Obs.incr "single_machine.deadline_misses";
                Obs.event "single_machine.deadline_miss"
                  ~fields:
                    [
                      ("job", Obs.Int j.id);
                      ("finish", Obs.Float (Rat.to_float finish));
                      ("deadline", Obs.Float (Rat.to_float j.deadline));
                    ]
              end;
              missed := Some j.id
            end)
  done;
  (starts, !missed)

(* Re-index jobs so [job.id] can be used as an array slot even when the
   caller's ids are arbitrary; results are returned in input order. *)
let with_dense_ids jobs f =
  let dense = Array.mapi (fun i j -> { j with id = i }) jobs in
  f dense

let schedule ~tau jobs =
  if Array.length jobs = 0 then Ok [||]
  else
    Obs.span "single_machine.schedule"
      ~fields:[ ("jobs", Obs.Int (Array.length jobs)) ]
      (fun () ->
        match Obs.span "single_machine.forbidden_regions" (fun () -> forbidden_regions ~tau jobs) with
        | Error `Infeasible -> Error `Infeasible
        | Ok regions ->
            if Obs.enabled () then
              Obs.event "single_machine.regions"
                ~fields:[ ("count", Obs.Int (List.length regions)) ];
            with_dense_ids jobs (fun dense ->
                let starts, missed =
                  Obs.span "single_machine.edf_dispatch" (fun () ->
                      edf_dispatch ~tau ~advance:(adjust_up regions) dense)
                in
                match missed with Some _ -> Error `Infeasible | None -> Ok starts))

let edf_schedule_no_regions ~tau jobs =
  if Array.length jobs = 0 then Ok [||]
  else
    with_dense_ids jobs (fun dense ->
        let starts, missed = edf_dispatch ~tau ~advance:Fun.id dense in
        match missed with
        | Some i -> Error (`Deadline_missed jobs.(i).id)
        | None -> Ok starts)

let feasible_starts ~tau jobs starts =
  let n = Array.length jobs in
  Array.length starts = n
  && begin
       let ok = ref true in
       for i = 0 to n - 1 do
         if Rat.(starts.(i) < jobs.(i).release) then ok := false;
         if Rat.(Rat.add starts.(i) tau > jobs.(i).deadline) then ok := false
       done;
       let order = List.init n Fun.id in
       let order = List.sort (fun a b -> Rat.compare starts.(a) starts.(b)) order in
       let rec disjoint = function
         | a :: (b :: _ as rest) ->
             if Rat.(Rat.add starts.(a) tau > starts.(b)) then ok := false;
             disjoint rest
         | [] | [ _ ] -> ()
       in
       disjoint order;
       !ok
     end

let brute_force_feasible ~tau jobs =
  let n = Array.length jobs in
  let used = Array.make n false in
  (* For a fixed order, starting every job as early as possible is
     optimal, so feasibility = some order survives the greedy timing. *)
  let rec go scheduled free =
    if scheduled = n then true
    else
      let rec try_jobs i =
        if i >= n then false
        else if used.(i) then try_jobs (i + 1)
        else begin
          let s = Rat.max free jobs.(i).release in
          if Rat.(Rat.add s tau <= jobs.(i).deadline) then begin
            used.(i) <- true;
            let ok = go (scheduled + 1) (Rat.add s tau) in
            used.(i) <- false;
            if ok then true else try_jobs (i + 1)
          end
          else try_jobs (i + 1)
        end
      in
      try_jobs 0
  in
  let earliest =
    Array.fold_left (fun acc j -> Rat.min acc j.release) Rat.zero jobs
  in
  go 0 earliest
