module Rat = E2e_rat.Rat
module Obs = E2e_obs.Obs
module Heap = E2e_ds.Heap
module Interval_set = E2e_ds.Interval_set

type rat = Rat.t
type job = { id : int; release : rat; deadline : rat }
type region = { left : rat; right : rat }

let pp_region ppf r = Format.fprintf ppf "(%a, %a)" Rat.pp r.left Rat.pp r.right

(* Forbidden regions, indexed.

   The classical derivation packs, for every release r and every
   deadline d, the jobs with release >= r and deadline <= d as late as
   possible before d (avoiding regions already found); if that packing
   starts at c, then (c - tau, r) is forbidden (and c < r proves
   infeasibility).  Enumerating the (r, d) pairs costs O(n^2) packings
   of O(n) steps each.

   One backward pass per release subsumes the whole deadline loop: walk
   the jobs with release >= r in decreasing-deadline order, keeping the
   running packing start

     s := adjust_down (min (deadline_j, s) - tau)

   (each job must end both by its own deadline and by the start of the
   job packed after it).  Take the last job whose own deadline was the
   binding constraint, say with deadline d*: the suffix from that job on
   is exactly the latest packing of the jobs with deadline <= d* — the
   per-deadline packing for d* — and every per-deadline packing
   restricted this way starts no earlier than the full pass does.  So
   the final s equals the minimum over all deadlines of the classical
   per-(r, d) packing starts, and the single region (s - tau, r) is
   precisely the union of the per-deadline regions for r (they share
   the right endpoint r).  Infeasibility (some packing starting before
   r) also coincides: packing starts only decrease along the pass.

   Cost: one O(n log n) sort, then per release one pass over the jobs
   released at or after it with an O(log n) region lookup per step —
   O(n^2 log n) worst case, O(n log n) when release times are few, and
   free of the per-(r, d) re-packing that made the scan version
   O(n^3). *)
let forbidden_regions_iset ~tau jobs =
  let n = Array.length jobs in
  let by_deadline = Array.copy jobs in
  Array.sort (fun a b -> Rat.compare b.deadline a.deadline) by_deadline;
  let releases_desc =
    List.rev
      (List.sort_uniq Rat.compare (Array.to_list (Array.map (fun j -> j.release) jobs)))
  in
  let exception Infeasible in
  try
    let regions = ref Interval_set.empty in
    List.iter
      (fun r ->
        let s = ref None in
        for i = 0 to n - 1 do
          let j = by_deadline.(i) in
          if Rat.(j.release >= r) then begin
            let cap = match !s with None -> j.deadline | Some s -> Rat.min j.deadline s in
            s := Some (Interval_set.adjust_down !regions (Rat.sub cap tau))
          end
        done;
        match !s with
        | None -> ()
        | Some e ->
            if Rat.(e < r) then begin
              if Obs.enabled () then
                Obs.event "single_machine.infeasible_window"
                  ~fields:
                    [
                      ("release", Obs.Str (Rat.to_string r));
                      ("packing_start", Obs.Str (Rat.to_string e));
                    ];
              raise Infeasible
            end;
            let left = Rat.sub e tau in
            if Rat.(left < r) then begin
              if Obs.enabled () then
                Obs.event "single_machine.forbidden_region"
                  ~fields:
                    [
                      ("left", Obs.Str (Rat.to_string left));
                      ("right", Obs.Str (Rat.to_string r));
                    ];
              regions := Interval_set.add !regions ~left ~right:r
            end)
      releases_desc;
    Ok !regions
  with Infeasible -> Error `Infeasible

let forbidden_regions ~tau jobs =
  match forbidden_regions_iset ~tau jobs with
  | Error `Infeasible -> Error `Infeasible
  | Ok iset ->
      Ok (List.map (fun (left, right) -> { left; right }) (Interval_set.to_list iset))

(* Priority-driven EDF dispatch on two heaps: [pending] orders the
   not-yet-released jobs by release time, [ready] orders the released
   ones by (deadline, release, id) — the heap pop is exactly the EDF
   choice with the deterministic tie-break.  [advance] postpones
   candidate dispatch instants (identity for the plain-EDF ablation,
   forbidden-region hopping for the optimal variant). *)
let edf_dispatch ~tau ~advance jobs =
  let n = Array.length jobs in
  let starts = Array.make n Rat.zero in
  let missed = ref None in
  let pending =
    Heap.of_list
      ~cmp:(fun a b ->
        let c = Rat.compare a.release b.release in
        if c <> 0 then c else compare a.id b.id)
      (Array.to_list jobs)
  in
  let ready =
    Heap.create
      ~cmp:(fun a b ->
        let c = Rat.compare a.deadline b.deadline in
        let c = if c <> 0 then c else Rat.compare a.release b.release in
        if c <> 0 then c else compare a.id b.id)
  in
  (* Initialise the machine to the earliest release so time starts sane. *)
  let free = ref (match Heap.peek pending with Some j -> j.release | None -> Rat.zero) in
  for _ = 1 to n do
    (* Candidate dispatch time: machine free, and at least one release.
       Every ready job was released before the machine last went busy,
       so a non-empty ready queue pins the candidate to [free]. *)
    let t =
      ref
        (if Heap.is_empty ready then
           match Heap.peek pending with
           | Some j -> Rat.max !free j.release
           | None -> assert false
         else !free)
    in
    let rec settle () =
      let t' = advance !t in
      if Rat.(t' > !t) then begin
        t := t';
        settle ()
      end
    in
    settle ();
    (* Everything released by the dispatch instant competes. *)
    let rec migrate () =
      match Heap.peek pending with
      | Some j when Rat.(j.release <= !t) ->
          ignore (Heap.pop pending);
          Heap.push ready j;
          migrate ()
      | _ -> ()
    in
    migrate ();
    match Heap.pop ready with
    | None -> assert false
    | Some j ->
        starts.(j.id) <- !t;
        let finish = Rat.add !t tau in
        free := finish;
        if Obs.enabled () then begin
          Obs.incr "single_machine.dispatches";
          Obs.event "single_machine.dispatch"
            ~fields:
              [
                ("job", Obs.Int j.id);
                ("t", Obs.Float (Rat.to_float !t));
                ("deadline", Obs.Float (Rat.to_float j.deadline));
              ]
        end;
        if Rat.(finish > j.deadline) && !missed = None then begin
          if Obs.enabled () then begin
            Obs.incr "single_machine.deadline_misses";
            Obs.event "single_machine.deadline_miss"
              ~fields:
                [
                  ("job", Obs.Int j.id);
                  ("finish", Obs.Float (Rat.to_float finish));
                  ("deadline", Obs.Float (Rat.to_float j.deadline));
                ]
          end;
          missed := Some j.id
        end
  done;
  (starts, !missed)

(* Re-index jobs so [job.id] can be used as an array slot even when the
   caller's ids are arbitrary; results are returned in input order. *)
let with_dense_ids jobs f =
  let dense = Array.mapi (fun i j -> { j with id = i }) jobs in
  f dense

let schedule ~tau jobs =
  if Array.length jobs = 0 then Ok [||]
  else
    Obs.span "single_machine.schedule"
      ~fields:[ ("jobs", Obs.Int (Array.length jobs)) ]
      (fun () ->
        match
          Obs.span "single_machine.forbidden_regions" (fun () ->
              forbidden_regions_iset ~tau jobs)
        with
        | Error `Infeasible -> Error `Infeasible
        | Ok iset ->
            if Obs.enabled () then
              Obs.event "single_machine.regions"
                ~fields:[ ("count", Obs.Int (Interval_set.cardinal iset)) ];
            with_dense_ids jobs (fun dense ->
                let starts, missed =
                  Obs.span "single_machine.edf_dispatch" (fun () ->
                      edf_dispatch ~tau ~advance:(Interval_set.adjust_up iset) dense)
                in
                match missed with Some _ -> Error `Infeasible | None -> Ok starts))

let edf_schedule_no_regions ~tau jobs =
  if Array.length jobs = 0 then Ok [||]
  else
    with_dense_ids jobs (fun dense ->
        let starts, missed = edf_dispatch ~tau ~advance:Fun.id dense in
        match missed with
        | Some i -> Error (`Deadline_missed jobs.(i).id)
        | None -> Ok starts)

let feasible_starts ~tau jobs starts =
  let n = Array.length jobs in
  Array.length starts = n
  && begin
       let ok = ref true in
       for i = 0 to n - 1 do
         if Rat.(starts.(i) < jobs.(i).release) then ok := false;
         if Rat.(Rat.add starts.(i) tau > jobs.(i).deadline) then ok := false
       done;
       let order = List.init n Fun.id in
       let order = List.sort (fun a b -> Rat.compare starts.(a) starts.(b)) order in
       let rec disjoint = function
         | a :: (b :: _ as rest) ->
             if Rat.(Rat.add starts.(a) tau > starts.(b)) then ok := false;
             disjoint rest
         | [] | [ _ ] -> ()
       in
       disjoint order;
       !ok
     end

let brute_force_feasible ~tau jobs =
  let n = Array.length jobs in
  let used = Array.make n false in
  (* For a fixed order, starting every job as early as possible is
     optimal, so feasibility = some order survives the greedy timing. *)
  let rec go scheduled free =
    if scheduled = n then true
    else
      let rec try_jobs i =
        if i >= n then false
        else if used.(i) then try_jobs (i + 1)
        else begin
          let s = Rat.max free jobs.(i).release in
          if Rat.(Rat.add s tau <= jobs.(i).deadline) then begin
            used.(i) <- true;
            let ok = go (scheduled + 1) (Rat.add s tau) in
            used.(i) <- false;
            if ok then true else try_jobs (i + 1)
          end
          else try_jobs (i + 1)
        end
      in
      try_jobs 0
  in
  let earliest =
    Array.fold_left (fun acc j -> Rat.min acc j.release) Rat.zero jobs
  in
  go 0 earliest
