module Rat = E2e_rat.Rat
module Task = E2e_model.Task
module Visit = E2e_model.Visit
module Recurrence_shop = E2e_model.Recurrence_shop
module Schedule = E2e_schedule.Schedule
module Heap = E2e_ds.Heap

(* Discrete-event greedy dispatch.  Each task exposes one pending stage
   at a time (its next one); the processor that can dispatch earliest
   (over max(processor free, earliest pending ready)) does so, choosing
   among the subtasks ready at that instant by earliest effective
   deadline.

   Each task lives in exactly one heap at a time.  Per processor,
   [arrivals] holds the stages whose ready time may still be in that
   processor's future, keyed by (ready, task); once a stage's ready time
   has been overtaken by a dispatch instant it migrates to [edf], keyed
   by (effective deadline, task) — the pop order is the dispatch rule.
   Every migrated stage became ready before the processor last went
   busy, so a non-empty [edf] pins the processor's candidate instant to
   its free time, and the candidate scan is O(m) per dispatch instead of
   the former O(m n) task sweep. *)

type entry = { ready : Rat.t; dl : Rat.t; task : int }

let schedule (shop : Recurrence_shop.t) =
  let n = Recurrence_shop.n_tasks shop in
  let k = Visit.length shop.visit in
  let m = shop.visit.Visit.processors in
  let starts = Array.make_matrix n k Rat.zero in
  let next_stage = Array.make n 0 in
  let free = Array.make m Rat.zero in
  let arrivals =
    Array.init m (fun _ ->
        Heap.create ~cmp:(fun a b ->
            let c = Rat.compare a.ready b.ready in
            if c <> 0 then c else compare a.task b.task))
  in
  let edf =
    Array.init m (fun _ ->
        Heap.create ~cmp:(fun a b ->
            let c = Rat.compare a.dl b.dl in
            if c <> 0 then c else compare a.task b.task))
  in
  let enqueue i stage ready =
    let p = shop.visit.Visit.sequence.(stage) in
    Heap.push arrivals.(p)
      { ready; dl = Task.effective_deadline shop.tasks.(i) stage; task = i }
  in
  Array.iteri (fun i (t : Task.t) -> enqueue i 0 t.release) shop.tasks;
  for _ = 1 to n * k do
    (* Earliest dispatch instant per processor; ties keep the lowest
       processor, matching the ascending scan order. *)
    let best : (Rat.t * int) option ref = ref None in
    for p = 0 to m - 1 do
      let candidate =
        if not (Heap.is_empty edf.(p)) then Some free.(p)
        else
          match Heap.peek arrivals.(p) with
          | Some e -> Some (Rat.max free.(p) e.ready)
          | None -> None
      in
      match candidate with
      | None -> ()
      | Some t ->
          let better = match !best with None -> true | Some (t', _) -> Rat.(t < t') in
          if better then best := Some (t, p)
    done;
    match !best with
    | None -> assert false
    | Some (t, p) ->
        (* Stages ready by t join the EDF order; the pop is the winner. *)
        let rec migrate () =
          match Heap.peek arrivals.(p) with
          | Some e when Rat.(e.ready <= t) ->
              ignore (Heap.pop arrivals.(p));
              Heap.push edf.(p) e;
              migrate ()
          | _ -> ()
        in
        migrate ();
        (match Heap.pop edf.(p) with
        | None -> assert false
        | Some { task = i; _ } ->
            let j = next_stage.(i) in
            starts.(i).(j) <- t;
            let finish = Rat.add t shop.tasks.(i).Task.proc_times.(j) in
            free.(p) <- finish;
            next_stage.(i) <- j + 1;
            if j + 1 < k then enqueue i (j + 1) finish)
  done;
  Schedule.make shop starts

let feasible shop = Schedule.is_feasible (schedule shop)
