module Rat = E2e_rat.Rat
module Task = E2e_model.Task
module Visit = E2e_model.Visit
module Recurrence_shop = E2e_model.Recurrence_shop
module Schedule = E2e_schedule.Schedule
module Obs = E2e_obs.Obs

type error = [ `Not_identical_unit | `Not_identical_release | `No_single_loop | `Infeasible ]

let pp_error ppf = function
  | `Not_identical_unit -> Format.pp_print_string ppf "subtask processing times are not identical"
  | `Not_identical_release -> Format.pp_print_string ppf "task release times are not identical"
  | `No_single_loop -> Format.pp_print_string ppf "visit sequence has no single-loop recurrence"
  | `Infeasible -> Format.pp_print_string ppf "no feasible schedule exists"

type decision = { task : int; stage : int; start : Rat.t }

(* A pending dispatch on the decision processor. *)
type visit_kind = First | Second

let preconditions (shop : Recurrence_shop.t) =
  match Recurrence_shop.identical_unit shop with
  | None -> Error `Not_identical_unit
  | Some tau -> (
      match Recurrence_shop.identical_releases shop with
      | None -> Error `Not_identical_release
      | Some _ -> (
          match Visit.single_loop shop.visit with
          | None -> Error `No_single_loop
          | Some loop -> Ok (tau, loop)))

(* Step 1 of Figure 2: modified EEDF on the loop's first processor.
   First visits (stage l) become ready at their effective release; when
   one is dispatched at t, the task's second visit (stage l+q) becomes
   ready at t + q tau.  Whenever the processor idles, the ready subtask
   with the earliest effective deadline is dispatched. *)
let step1 (shop : Recurrence_shop.t) tau (loop : Visit.loop) =
  let n = Recurrence_shop.n_tasks shop in
  let l = loop.first_pos and q = loop.span in
  let ready = Array.make n None and ready2 = Array.make n None in
  Array.iteri (fun i (task : Task.t) -> ready.(i) <- Some (Task.effective_release task l)) shop.tasks;
  let deadline1 i = Task.effective_deadline shop.tasks.(i) l in
  let deadline2 i = Task.effective_deadline shop.tasks.(i) (l + q) in
  let trace = ref [] in
  let starts1 = Array.make n Rat.zero and starts2 = Array.make n Rat.zero in
  let free = ref Rat.zero in
  let remaining = ref (2 * n) in
  (* Earliest pending ready time, across both visit generations. *)
  let min_ready () =
    let fold acc arr =
      Array.fold_left
        (fun acc t -> match t with None -> acc | Some t -> Some (match acc with None -> t | Some m -> Rat.min m t))
        acc arr
    in
    fold (fold None ready) ready2
  in
  while !remaining > 0 do
    match min_ready () with
    | None -> assert false
    | Some earliest ->
        let t = Rat.max !free earliest in
        (* Ready subtasks at t, keyed by (deadline, kind, task). *)
        let best = ref None in
        let consider i kind ready_time =
          match ready_time with
          | Some r when Rat.(r <= t) ->
              let dl = match kind with First -> deadline1 i | Second -> deadline2 i in
              let better =
                match !best with
                | None -> true
                | Some (dl', _, i') ->
                    let c = Rat.compare dl dl' in
                    if c <> 0 then c < 0 else i < i'
              in
              if better then best := Some (dl, kind, i)
          | _ -> ()
        in
        for i = 0 to n - 1 do
          consider i First ready.(i);
          consider i Second ready2.(i)
        done;
        (match !best with
        | None -> assert false
        | Some (_, kind, i) ->
            (match kind with
            | First ->
                starts1.(i) <- t;
                ready.(i) <- None;
                ready2.(i) <- Some Rat.(t + mul_int tau q);
                trace := { task = i; stage = l; start = t } :: !trace
            | Second ->
                starts2.(i) <- t;
                ready2.(i) <- None;
                trace := { task = i; stage = l + q; start = t } :: !trace);
            if Obs.enabled () then begin
              Obs.incr "algo_r.dispatches";
              Obs.event "algo_r.dispatch"
                ~fields:
                  [
                    ("task", Obs.Int i);
                    ("stage", Obs.Int (match kind with First -> l | Second -> l + q));
                    ("visit", Obs.Str (match kind with First -> "first" | Second -> "second"));
                    ("t", Obs.Float (Rat.to_float t));
                  ]
            end;
            free := Rat.add t tau;
            decr remaining)
  done;
  (starts1, starts2, List.rev !trace)

(* Step 2 of Figure 2: rigid propagation around the decision processor.
   The paper states rule 2 for l < j <= l+q; at j = l+q the Step-1 start
   is used (it equals t_il + q tau exactly when the second visit was not
   delayed on the decision processor). *)
let propagate (shop : Recurrence_shop.t) tau (loop : Visit.loop) starts1 starts2 =
  let n = Recurrence_shop.n_tasks shop in
  let k = Visit.length shop.visit in
  let l = loop.first_pos and q = loop.span in
  let starts =
    Array.init n (fun i ->
        Array.init k (fun j ->
            if j < l then Rat.sub starts1.(i) (Rat.mul_int tau (l - j))
            else if j < l + q then Rat.add starts1.(i) (Rat.mul_int tau (j - l))
            else if j = l + q then starts2.(i)
            else Rat.add starts2.(i) (Rat.mul_int tau (j - l - q))))
  in
  Schedule.make shop starts

let schedule shop =
  match preconditions shop with
  | Error e -> Error (e :> error)
  | Ok (tau, loop) ->
      Obs.span "algo_r.schedule"
        ~fields:
          [
            ("tasks", Obs.Int (Recurrence_shop.n_tasks shop));
            ("decision_stage", Obs.Int loop.Visit.first_pos);
            ("span", Obs.Int loop.Visit.span);
          ]
        (fun () ->
          let starts1, starts2, _ = step1 shop tau loop in
          let sched = propagate shop tau loop starts1 starts2 in
          if Schedule.is_feasible sched then begin
            Obs.incr "algo_r.feasible";
            Ok sched
          end
          else begin
            Obs.incr "algo_r.infeasible";
            Error `Infeasible
          end)

let decision_trace shop =
  match preconditions shop with
  | Error e -> Error (e :> error)
  | Ok (tau, loop) ->
      let _, _, trace = step1 shop tau loop in
      Ok trace
