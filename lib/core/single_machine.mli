(** Nonpreemptive scheduling of equal-length jobs on one machine with
    arbitrary rational release times and deadlines.

    This is the optimal O(n^2)-ish building block beneath every flow-shop
    algorithm in the paper: the earliest-deadline-first rule made optimal
    by the {e forbidden regions} of Garey, Johnson, Simons and Tarjan
    (SIAM J. Comput. 10(2), 1981).  A forbidden region is an open
    interval in which {e no} job may start: if the [m] jobs with release
    [>= r] and deadline [<= d] are packed as late as possible before [d]
    (avoiding regions already found), starting at [c], then any job
    starting in [(c - tau, r)] would keep the machine busy past [c] and
    make those [m] jobs late.  EDF that only dispatches outside the
    forbidden regions ("modified release times") is optimal.

    Both phases run on the indexed structures of {!E2e_ds}: forbidden
    regions live in a sorted disjoint-interval set (O(log n) lookup) and
    are built by one backward packing pass per distinct release time —
    O(n^2 log n) worst case instead of the O(n^3) release x deadline x
    job scan — and the EDF dispatch loop runs on two binary heaps
    (pending jobs by release, ready jobs by deadline), O(n log n)
    instead of the O(n^2) per-dispatch scan.  The historical scan-based
    implementation is kept verbatim as [E2e_fuzz.Single_machine_ref];
    the [eedf-fast] differential-fuzz class checks the two engines
    byte-identical on every output. *)

type rat = E2e_rat.Rat.t

type job = { id : int; release : rat; deadline : rat }
(** [id] is the caller's index; results are reported in input order. *)

type region = { left : rat; right : rat }
(** The open interval [(left, right)]: starting strictly inside is
    forbidden; starting exactly at either endpoint is allowed. *)

val pp_region : Format.formatter -> region -> unit

val forbidden_regions :
  tau:rat -> job array -> (region list, [ `Infeasible ]) result
(** All forbidden regions, sorted by left endpoint, pairwise disjoint.
    [`Infeasible] when some backward packing already proves that no
    schedule can meet all deadlines. *)

val schedule :
  tau:rat -> job array -> (rat array, [ `Infeasible ]) result
(** Optimal start times (input order): EDF over the forbidden regions.
    [Error `Infeasible] means no feasible schedule exists at all — the
    algorithm is optimal. *)

val edf_schedule_no_regions : tau:rat -> job array -> (rat array, [ `Deadline_missed of int ]) result
(** Plain priority-driven EDF without forbidden regions — the ablation
    baseline showing why the regions are needed.  Fails with the first
    job whose deadline is missed. *)

val feasible_starts : tau:rat -> job array -> rat array -> bool
(** Independent check that the given start times respect releases,
    deadlines and mutual exclusion. *)

val brute_force_feasible : tau:rat -> job array -> bool
(** Exhaustive search over all job orders (earliest-start timing per
    order, which is optimal for a fixed order).  Exponential; for tests
    on small instances only. *)
