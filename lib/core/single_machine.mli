(** Nonpreemptive scheduling of equal-length jobs on one machine with
    arbitrary rational release times and deadlines.

    This is the optimal O(n^2)-ish building block beneath every flow-shop
    algorithm in the paper: the earliest-deadline-first rule made optimal
    by the {e forbidden regions} of Garey, Johnson, Simons and Tarjan
    (SIAM J. Comput. 10(2), 1981).  A forbidden region is an open
    interval in which {e no} job may start: if the [m] jobs with release
    [>= r] and deadline [<= d] are packed as late as possible before [d]
    (avoiding regions already found), starting at [c], then any job
    starting in [(c - tau, r)] would keep the machine busy past [c] and
    make those [m] jobs late.  EDF that only dispatches outside the
    forbidden regions ("modified release times") is optimal.

    Both phases run on the indexed structures of {!E2e_ds}: forbidden
    regions live in a sorted disjoint-interval set (O(log n) lookup) and
    are built by one backward packing pass per distinct release time —
    O(n^2 log n) worst case instead of the O(n^3) release x deadline x
    job scan — and the EDF dispatch loop runs on two binary heaps
    (pending jobs by release, ready jobs by deadline), O(n log n)
    instead of the O(n^2) per-dispatch scan.  The historical scan-based
    implementation is kept verbatim as [E2e_fuzz.Single_machine_ref];
    the [eedf-fast] differential-fuzz class checks the two engines
    byte-identical on every output. *)

type rat = E2e_rat.Rat.t

type job = { id : int; release : rat; deadline : rat }
(** [id] is the caller's index; results are reported in input order. *)

type region = { left : rat; right : rat }
(** The open interval [(left, right)]: starting strictly inside is
    forbidden; starting exactly at either endpoint is allowed. *)

val pp_region : Format.formatter -> region -> unit

val forbidden_regions :
  tau:rat -> job array -> (region list, [ `Infeasible ]) result
(** All forbidden regions, sorted by left endpoint, pairwise disjoint.
    [`Infeasible] when some backward packing already proves that no
    schedule can meet all deadlines. *)

val schedule :
  tau:rat -> job array -> (rat array, [ `Infeasible ]) result
(** Optimal start times (input order): EDF over the forbidden regions.
    [Error `Infeasible] means no feasible schedule exists at all — the
    algorithm is optimal. *)

val edf_schedule_no_regions : tau:rat -> job array -> (rat array, [ `Deadline_missed of int ]) result
(** Plain priority-driven EDF without forbidden regions — the ablation
    baseline showing why the regions are needed.  Fails with the first
    job whose deadline is missed. *)

val feasible_starts : tau:rat -> job array -> rat array -> bool
(** Independent check that the given start times respect releases,
    deadlines and mutual exclusion. *)

val brute_force_feasible : tau:rat -> job array -> bool
(** Exhaustive search over all job orders (earliest-start timing per
    order, which is optimal for a fixed order).  Exponential; for tests
    on small instances only. *)

(** Incremental solver state: persistent forbidden-region checkpoints
    plus a replayable EDF dispatch log, warm-startable under single-task
    edits.

    {!Inc.make} solves from scratch and parks the per-release region
    snapshots ({!E2e_ds.Interval_set} is persistent, so each snapshot is
    an O(1) share).  {!Inc.add_task}/{!Inc.remove_task} re-run only the
    packing passes for releases at or below the edited job's release —
    using a lazy min segment tree over deadline positions so each
    resumed pass costs O(log n + candidates) instead of O(n) — and
    replay the committed dispatch order up to the first instant where
    the old and new region sets (or the edit itself) can matter.

    The contract is {e exact} agreement with {!schedule} on the same job
    array: same regions, same start times, same feasibility verdicts,
    byte for byte.  The [eedf-inc] differential fuzz class enforces this
    on random add/drop logs. *)
module Inc : sig
  type state

  val make : tau:rat -> job array -> state
  (** Solve from scratch and retain the warm-start state.  Job ids are
      re-assigned to positions ([0..n-1] in input order); all position
      arguments below refer to this dense indexing.
      @raise Invalid_argument when [tau <= 0]. *)

  val solve : state -> (rat array, [ `Infeasible ]) result
  (** The current schedule (start times by position), identical to
      [schedule ~tau (jobs state)].  O(1): solving happened at
      construction / edit time. *)

  val add_task : state -> at:int -> release:rat -> deadline:rat -> state
  (** New state with a job inserted at position [at] (positions at or
      after [at] shift up).  The input state remains valid.
      @raise Invalid_argument when [at] is outside [0..n_jobs]. *)

  val remove_task : state -> at:int -> state
  (** New state with the job at position [at] removed (positions after
      [at] shift down).  The input state remains valid.
      @raise Invalid_argument when [at] is outside [0..n_jobs-1]. *)

  val regions : state -> (region list, [ `Infeasible ]) result
  (** Current forbidden regions, identical to [forbidden_regions]. *)

  val n_jobs : state -> int

  val jobs : state -> job array
  (** Current jobs in position order (a copy). *)

  val tau : state -> rat
end
