(** One-call front end: classify the task set and dispatch to the
    strongest applicable algorithm from the paper. *)

type verdict =
  | Feasible of E2e_schedule.Schedule.t * [ `Eedf | `Algorithm_a | `Algorithm_h ]
      (** A checker-verified feasible schedule and the algorithm that
          produced it. *)
  | Proved_infeasible of [ `Eedf | `Algorithm_a ]
      (** An optimal algorithm applied, so no feasible schedule exists. *)
  | Heuristic_failed
      (** Algorithm H gave up; feasibility is undecided (the general
          problem is NP-hard). *)

val solve : E2e_model.Flow_shop.t -> verdict
(** Identical-length sets go to EEDF, homogeneous sets to Algorithm A
    (both optimal), everything else to Algorithm H. *)

(** Warm-started re-solves for identical-length shops.

    A resident handle keeps the reduced single-machine instance as a
    {!Single_machine.Inc.state}; admitting more tasks re-solves by
    [add_task] deltas (O(delta) passes) instead of from scratch.  All
    verdicts are byte-identical to {!solve} on the same shop, so cold
    and warm paths can be mixed freely — the [eedf-inc] differential
    fuzz class enforces the underlying engine agreement. *)
module Incremental : sig
  type t

  val of_flow_shop : E2e_model.Flow_shop.t -> t option
  (** Solve from scratch and retain the warm-start state; [None] when
      the shop is not identical-length (no incremental capability). *)

  val verdict : t -> E2e_model.Flow_shop.t -> verdict
  (** The verdict for the handle's current task set, lifted back to
      [shop] (which must be the shop the handle currently represents).
      O(n) — the solve happened at construction / extension time. *)

  val extend : t -> E2e_model.Flow_shop.t -> t option
  (** Grow the handle to [shop], whose reduced job list must contain the
      resident jobs as a subsequence on (release, effective deadline) —
      what the admission cache's stable merge produces for committed +
      fresh tasks.  [None] when [shop] is not such an extension (caller
      falls back to a cold solve).  The input handle remains valid. *)

  val resident : t -> int
  (** Number of tasks in the resident state. *)

  val solve_with_state : E2e_model.Flow_shop.t -> verdict * t option
  (** Like {!solve}, but additionally returns the warm-start handle when
      the shop was solved feasible on the EEDF path. *)
end

val solve_recurrent : E2e_model.Recurrence_shop.t -> (E2e_schedule.Schedule.t, Algo_r.error) result
(** Recurrent shops go to Algorithm R (optimal under its preconditions);
    traditional visit sequences are routed through {!solve}'s EEDF path
    when identical-length. *)

type recurrent_verdict =
  | Recurrent_feasible of
      E2e_schedule.Schedule.t * [ `Algorithm_r | `Greedy_edf | `Traditional ]
      (** [`Traditional]: the visit sequence had no recurrence, so the
          schedule came from {!solve}. *)
  | Recurrent_proved_infeasible
      (** An optimal algorithm (R, EEDF or A) applied. *)
  | Recurrent_undecided  (** Heuristic fallback failed; NP-hard in general. *)

val solve_recurrent_or_fallback : E2e_model.Recurrence_shop.t -> recurrent_verdict
(** Like {!solve_recurrent}, but when Algorithm R's preconditions fail
    (non-identical processing times, staggered releases, or a visit
    sequence with a complex recurrence pattern) it falls back to the
    greedy earliest-effective-deadline dispatcher and keeps the result
    only if the independent checker accepts it. *)

val pp_verdict : Format.formatter -> verdict -> unit
