module Flow_shop = E2e_model.Flow_shop
module Visit = E2e_model.Visit
module Recurrence_shop = E2e_model.Recurrence_shop
module Schedule = E2e_schedule.Schedule
module Obs = E2e_obs.Obs

type verdict =
  | Feasible of Schedule.t * [ `Eedf | `Algorithm_a | `Algorithm_h ]
  | Proved_infeasible of [ `Eedf | `Algorithm_a ]
  | Heuristic_failed

let class_name = function
  | `Identical_length _ -> "identical_length"
  | `Homogeneous _ -> "homogeneous"
  | `Arbitrary -> "arbitrary"

let record_verdict verdict =
  (match verdict with
  | Feasible _ -> Obs.incr "solver.feasible"
  | Proved_infeasible _ -> Obs.incr "solver.proved_infeasible"
  | Heuristic_failed -> Obs.incr "solver.undecided");
  if Obs.enabled () then begin
    let algorithm, outcome =
      match verdict with
      | Feasible (_, `Eedf) -> ("eedf", "feasible")
      | Feasible (_, `Algorithm_a) -> ("algo_a", "feasible")
      | Feasible (_, `Algorithm_h) -> ("algo_h", "feasible")
      | Proved_infeasible `Eedf -> ("eedf", "proved_infeasible")
      | Proved_infeasible `Algorithm_a -> ("algo_a", "proved_infeasible")
      | Heuristic_failed -> ("algo_h", "undecided")
    in
    Obs.event "solver.verdict"
      ~fields:[ ("algorithm", Obs.Str algorithm); ("outcome", Obs.Str outcome) ]
  end;
  verdict

let solve_classified cls shop =
  match cls with
  | `Identical_length _ -> (
      match Eedf.schedule shop with
      | Ok s -> Feasible (s, `Eedf)
      | Error `Infeasible -> Proved_infeasible `Eedf
      | Error `Not_identical_length -> assert false)
  | `Homogeneous _ -> (
      match Algo_a.schedule shop with
      | Ok s -> Feasible (s, `Algorithm_a)
      | Error `Infeasible -> Proved_infeasible `Algorithm_a
      | Error `Not_homogeneous -> assert false)
  | `Arbitrary -> (
      match Algo_h.schedule shop with
      | Ok s -> Feasible (s, `Algorithm_h)
      | Error (`Inflated_infeasible | `Compacted_infeasible _) -> Heuristic_failed)

let solve shop =
  let cls = Flow_shop.classify shop in
  Obs.span "solver.solve"
    ~fields:
      [ ("class", Obs.Str (class_name cls)); ("tasks", Obs.Int (Flow_shop.n_tasks shop)) ]
    (fun () -> record_verdict (solve_classified cls shop))

(* {2 Incremental capability}

   A resident handle onto the identical-length (EEDF) solve of one flow
   shop: the reduced single-machine instance is kept as a warm-started
   {!Single_machine.Inc.state}, and a superset shop obtained by admitting
   more tasks is re-solved by [add_task] deltas instead of from scratch.
   The verdicts are byte-identical to {!solve} on the same shop — EEDF
   is deterministic and [Single_machine.Inc] agrees exactly with
   [Single_machine.schedule] (the [eedf-inc] fuzz contract) — so callers
   may freely mix this path with cold solves. *)
module Incremental = struct
  type t = { tau : E2e_rat.Rat.t; m : int; inc : Single_machine.Inc.state }

  let of_flow_shop (shop : Flow_shop.t) =
    match Flow_shop.is_identical_length shop with
    | None -> None
    | Some tau ->
        let jobs = Eedf.single_machine_jobs shop ~tau in
        Some { tau; m = shop.processors; inc = Single_machine.Inc.make ~tau jobs }

  let resident t = Single_machine.Inc.n_jobs t.inc

  let verdict t (shop : Flow_shop.t) =
    record_verdict
      (match Single_machine.Inc.solve t.inc with
      | Error `Infeasible -> Proved_infeasible `Eedf
      | Ok starts -> Feasible (Eedf.propagate shop ~tau:t.tau starts, `Eedf))

  (* Grow the resident state to [shop], a shop whose job list contains
     the resident jobs as a subsequence (the admission cache's stable
     merge guarantees exactly this for committed + fresh tasks).  Jobs
     are matched on the reduced-instance key (release, effective
     deadline): equal jobs are interchangeable for the single-machine
     solve, so greedy earliest-match subsequence testing is exact.
     [None] when [shop] is not an extension (different tau / processors,
     or the resident jobs are not a subsequence) — caller falls back to
     a cold solve. *)
  let extend t (shop : Flow_shop.t) =
    match Flow_shop.is_identical_length shop with
    | Some tau when E2e_rat.Rat.equal tau t.tau && shop.processors = t.m ->
        let new_jobs = Eedf.single_machine_jobs shop ~tau in
        let old_jobs = Single_machine.Inc.jobs t.inc in
        let n_new = Array.length new_jobs and n_old = Array.length old_jobs in
        if n_new < n_old then None
        else begin
          let same (a : Single_machine.job) (b : Single_machine.job) =
            E2e_rat.Rat.equal a.release b.release
            && E2e_rat.Rat.equal a.deadline b.deadline
          in
          let fresh = ref [] in
          let oi = ref 0 in
          Array.iteri
            (fun ni j ->
              if !oi < n_old && same old_jobs.(!oi) j then incr oi
              else fresh := ni :: !fresh)
            new_jobs;
          if !oi < n_old then None
          else begin
            let inc =
              List.fold_left
                (fun inc ni ->
                  let j = new_jobs.(ni) in
                  Single_machine.Inc.add_task inc ~at:ni ~release:j.release
                    ~deadline:j.deadline)
                t.inc (List.rev !fresh)
            in
            Some { t with inc }
          end
        end
    | _ -> None

  let solve_with_state shop =
    let cls = Flow_shop.classify shop in
    Obs.span "solver.solve"
      ~fields:
        [ ("class", Obs.Str (class_name cls)); ("tasks", Obs.Int (Flow_shop.n_tasks shop)) ]
      (fun () ->
        match cls with
        | `Identical_length tau ->
            let jobs = Eedf.single_machine_jobs shop ~tau in
            let t = { tau; m = shop.processors; inc = Single_machine.Inc.make ~tau jobs } in
            let v = verdict t shop in
            let state = match v with Feasible _ -> Some t | _ -> None in
            (v, state)
        | (`Homogeneous _ | `Arbitrary) as cls ->
            (record_verdict (solve_classified cls shop), None))
end

let solve_recurrent (shop : Recurrence_shop.t) =
  if Visit.is_traditional shop.Recurrence_shop.visit then
    let fs = Flow_shop.make ~processors:shop.visit.Visit.processors shop.tasks in
    match solve fs with
    | Feasible (s, _) -> Ok s
    | Proved_infeasible _ | Heuristic_failed -> Error `Infeasible
  else Algo_r.schedule shop

type recurrent_verdict =
  | Recurrent_feasible of Schedule.t * [ `Algorithm_r | `Greedy_edf | `Traditional ]
  | Recurrent_proved_infeasible
  | Recurrent_undecided

let solve_recurrent_or_fallback (shop : Recurrence_shop.t) =
  if Visit.is_traditional shop.Recurrence_shop.visit then
    let fs = Flow_shop.make ~processors:shop.visit.Visit.processors shop.tasks in
    match solve fs with
    | Feasible (s, _) -> Recurrent_feasible (s, `Traditional)
    | Proved_infeasible _ -> Recurrent_proved_infeasible
    | Heuristic_failed -> Recurrent_undecided
  else
    match Algo_r.schedule shop with
    | Ok s -> Recurrent_feasible (s, `Algorithm_r)
    | Error `Infeasible -> Recurrent_proved_infeasible
    | Error (`Not_identical_unit | `Not_identical_release | `No_single_loop) ->
        let s = Greedy_edf.schedule shop in
        if Schedule.is_feasible s then Recurrent_feasible (s, `Greedy_edf)
        else Recurrent_undecided

let pp_verdict ppf = function
  | Feasible (_, `Eedf) -> Format.pp_print_string ppf "feasible (EEDF, optimal)"
  | Feasible (_, `Algorithm_a) -> Format.pp_print_string ppf "feasible (Algorithm A, optimal)"
  | Feasible (_, `Algorithm_h) -> Format.pp_print_string ppf "feasible (Algorithm H, heuristic)"
  | Proved_infeasible `Eedf -> Format.pp_print_string ppf "infeasible (proved by EEDF)"
  | Proved_infeasible `Algorithm_a -> Format.pp_print_string ppf "infeasible (proved by Algorithm A)"
  | Heuristic_failed -> Format.pp_print_string ppf "undecided (Algorithm H failed)"
