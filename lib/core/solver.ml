module Flow_shop = E2e_model.Flow_shop
module Visit = E2e_model.Visit
module Recurrence_shop = E2e_model.Recurrence_shop
module Schedule = E2e_schedule.Schedule
module Obs = E2e_obs.Obs

type verdict =
  | Feasible of Schedule.t * [ `Eedf | `Algorithm_a | `Algorithm_h ]
  | Proved_infeasible of [ `Eedf | `Algorithm_a ]
  | Heuristic_failed

let class_name = function
  | `Identical_length _ -> "identical_length"
  | `Homogeneous _ -> "homogeneous"
  | `Arbitrary -> "arbitrary"

let record_verdict verdict =
  (match verdict with
  | Feasible _ -> Obs.incr "solver.feasible"
  | Proved_infeasible _ -> Obs.incr "solver.proved_infeasible"
  | Heuristic_failed -> Obs.incr "solver.undecided");
  if Obs.enabled () then begin
    let algorithm, outcome =
      match verdict with
      | Feasible (_, `Eedf) -> ("eedf", "feasible")
      | Feasible (_, `Algorithm_a) -> ("algo_a", "feasible")
      | Feasible (_, `Algorithm_h) -> ("algo_h", "feasible")
      | Proved_infeasible `Eedf -> ("eedf", "proved_infeasible")
      | Proved_infeasible `Algorithm_a -> ("algo_a", "proved_infeasible")
      | Heuristic_failed -> ("algo_h", "undecided")
    in
    Obs.event "solver.verdict"
      ~fields:[ ("algorithm", Obs.Str algorithm); ("outcome", Obs.Str outcome) ]
  end;
  verdict

let solve shop =
  let cls = Flow_shop.classify shop in
  Obs.span "solver.solve"
    ~fields:
      [ ("class", Obs.Str (class_name cls)); ("tasks", Obs.Int (Flow_shop.n_tasks shop)) ]
    (fun () ->
      record_verdict
        (match cls with
        | `Identical_length _ -> (
            match Eedf.schedule shop with
            | Ok s -> Feasible (s, `Eedf)
            | Error `Infeasible -> Proved_infeasible `Eedf
            | Error `Not_identical_length -> assert false)
        | `Homogeneous _ -> (
            match Algo_a.schedule shop with
            | Ok s -> Feasible (s, `Algorithm_a)
            | Error `Infeasible -> Proved_infeasible `Algorithm_a
            | Error `Not_homogeneous -> assert false)
        | `Arbitrary -> (
            match Algo_h.schedule shop with
            | Ok s -> Feasible (s, `Algorithm_h)
            | Error (`Inflated_infeasible | `Compacted_infeasible _) -> Heuristic_failed)))

let solve_recurrent (shop : Recurrence_shop.t) =
  if Visit.is_traditional shop.Recurrence_shop.visit then
    let fs = Flow_shop.make ~processors:shop.visit.Visit.processors shop.tasks in
    match solve fs with
    | Feasible (s, _) -> Ok s
    | Proved_infeasible _ | Heuristic_failed -> Error `Infeasible
  else Algo_r.schedule shop

type recurrent_verdict =
  | Recurrent_feasible of Schedule.t * [ `Algorithm_r | `Greedy_edf | `Traditional ]
  | Recurrent_proved_infeasible
  | Recurrent_undecided

let solve_recurrent_or_fallback (shop : Recurrence_shop.t) =
  if Visit.is_traditional shop.Recurrence_shop.visit then
    let fs = Flow_shop.make ~processors:shop.visit.Visit.processors shop.tasks in
    match solve fs with
    | Feasible (s, _) -> Recurrent_feasible (s, `Traditional)
    | Proved_infeasible _ -> Recurrent_proved_infeasible
    | Heuristic_failed -> Recurrent_undecided
  else
    match Algo_r.schedule shop with
    | Ok s -> Recurrent_feasible (s, `Algorithm_r)
    | Error `Infeasible -> Recurrent_proved_infeasible
    | Error (`Not_identical_unit | `Not_identical_release | `No_single_loop) ->
        let s = Greedy_edf.schedule shop in
        if Schedule.is_feasible s then Recurrent_feasible (s, `Greedy_edf)
        else Recurrent_undecided

let pp_verdict ppf = function
  | Feasible (_, `Eedf) -> Format.pp_print_string ppf "feasible (EEDF, optimal)"
  | Feasible (_, `Algorithm_a) -> Format.pp_print_string ppf "feasible (Algorithm A, optimal)"
  | Feasible (_, `Algorithm_h) -> Format.pp_print_string ppf "feasible (Algorithm H, heuristic)"
  | Proved_infeasible `Eedf -> Format.pp_print_string ppf "infeasible (proved by EEDF)"
  | Proved_infeasible `Algorithm_a -> Format.pp_print_string ppf "infeasible (proved by Algorithm A)"
  | Heuristic_failed -> Format.pp_print_string ppf "undecided (Algorithm H failed)"
