module Rat = E2e_rat.Rat
module Task = E2e_model.Task
module Flow_shop = E2e_model.Flow_shop
module Recurrence_shop = E2e_model.Recurrence_shop
module Schedule = E2e_schedule.Schedule
module Obs = E2e_obs.Obs

type strategy =
  | H_with_bottleneck of int
  | Order_earliest_deadline
  | Order_least_slack
  | Order_earliest_release

let pp_strategy ppf = function
  | H_with_bottleneck b -> Format.fprintf ppf "Algorithm H with bottleneck P%d" (b + 1)
  | Order_earliest_deadline -> Format.pp_print_string ppf "forward pass in global EDF order"
  | Order_least_slack -> Format.pp_print_string ppf "forward pass in least-slack order"
  | Order_earliest_release -> Format.pp_print_string ppf "forward pass in earliest-release order"

let strategies (shop : Flow_shop.t) =
  let default = Flow_shop.bottleneck (Flow_shop.inflate shop) in
  let others =
    List.filter (fun b -> b <> default) (List.init shop.processors Fun.id)
  in
  List.map (fun b -> H_with_bottleneck b) (default :: others)
  @ [ Order_earliest_deadline; Order_least_slack; Order_earliest_release ]

let order_by shop key =
  let n = Flow_shop.n_tasks shop in
  let order = Array.init n Fun.id in
  Array.sort
    (fun a b ->
      let c = Rat.compare (key shop.Flow_shop.tasks.(a)) (key shop.Flow_shop.tasks.(b)) in
      if c <> 0 then c else compare a b)
    order;
  order

let try_strategy shop = function
  | H_with_bottleneck b -> (
      match (Algo_h.run ~bottleneck:b shop).Algo_h.result with
      | Ok s -> Some s
      | Error _ -> None)
  | (Order_earliest_deadline | Order_least_slack | Order_earliest_release) as strat ->
      let key =
        match strat with
        | Order_earliest_deadline -> fun (t : Task.t) -> t.deadline
        | Order_least_slack -> Task.slack
        | Order_earliest_release | H_with_bottleneck _ -> fun (t : Task.t) -> t.release
      in
      let order = order_by shop key in
      let s = Schedule.forward_pass (Recurrence_shop.of_traditional shop) ~order in
      if Schedule.is_feasible s then Some s else None

let strategy_code = function
  | H_with_bottleneck b -> "b" ^ string_of_int b
  | Order_earliest_deadline -> "ed"
  | Order_least_slack -> "ls"
  | Order_earliest_release -> "er"

let truncate_strategies budget strats =
  match budget with
  | None -> strats
  | Some k -> List.filteri (fun i _ -> i < k) strats

(* Move the hinted strategy to the front.  This runs BEFORE budget
   truncation, so a hint both warm-starts the search and counts against
   the budget first — a budgeted caller with a hint gets the hinted
   attempt even when the budget would otherwise have excluded it. *)
let promote hint strats =
  match hint with
  | None -> strats
  | Some h -> h :: List.filter (fun s -> s <> h) strats

let schedule ?budget ?hint shop =
  Obs.span "portfolio.schedule" (fun () ->
      let rec go = function
        | [] ->
            Obs.incr "portfolio.all_failed";
            Error `All_failed
        | strat :: rest -> (
            Obs.incr "portfolio.attempts";
            match try_strategy shop strat with
            | Some s ->
                if Obs.enabled () then
                  Obs.event "portfolio.attempt"
                    ~fields:
                      [
                        ("strategy", Obs.Str (Format.asprintf "%a" pp_strategy strat));
                        ("ok", Obs.Bool true);
                      ];
                Obs.incr "portfolio.solved";
                Ok (s, strat)
            | None ->
                if Obs.enabled () then
                  Obs.event "portfolio.attempt"
                    ~fields:
                      [
                        ("strategy", Obs.Str (Format.asprintf "%a" pp_strategy strat));
                        ("ok", Obs.Bool false);
                      ];
                go rest)
      in
      go (truncate_strategies budget (promote hint (strategies shop))))

let schedule_opt shop = match schedule shop with Ok (s, _) -> Some s | Error `All_failed -> None
