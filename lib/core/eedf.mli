(** Optimal flow-shop scheduling of identical-length task sets
    (Section 3 of the paper).

    When every subtask of every task takes the same time [tau], the whole
    flow shop is driven from processor [P_1]: schedule the first subtasks
    by EEDF — earliest {e effective} deadline first over the modified
    (forbidden-region) release times — and propagate, starting each later
    subtask the instant its predecessor completes.  With equal stage
    lengths the pipeline never collides, so the flow-shop problem reduces
    exactly to the single-machine problem on [P_1] with deadlines
    [d_i - (m-1) tau]. *)

type rat = E2e_rat.Rat.t

val schedule :
  E2e_model.Flow_shop.t ->
  (E2e_schedule.Schedule.t, [ `Infeasible | `Not_identical_length ]) result
(** Optimal: [`Infeasible] means no feasible schedule exists.
    [`Not_identical_length] if the precondition fails (use Algorithm A or
    H instead). *)

val schedule_no_regions :
  E2e_model.Flow_shop.t ->
  (E2e_schedule.Schedule.t, [ `Deadline_missed of int | `Not_identical_length ]) result
(** Ablation: plain priority-driven EDF on [P_1], without the forbidden
    regions.  Not optimal for arbitrary rational release times. *)

val single_machine_jobs : E2e_model.Flow_shop.t -> tau:rat -> Single_machine.job array
(** The reduced instance on [P_1] (exposed for tests and benches). *)

val propagate :
  E2e_model.Flow_shop.t -> tau:rat -> rat array -> E2e_schedule.Schedule.t
(** Lift optimal [P_1] start times back to the full flow shop: subtask
    [j] of task [i] starts at [starts_p1.(i) + j tau].  Exposed so the
    incremental solver path ({!Solver.Incremental}) can rebuild the
    full schedule from a warm-started single-machine solve. *)
