module Rat = E2e_rat.Rat
module Task = E2e_model.Task
module Flow_shop = E2e_model.Flow_shop
module Schedule = E2e_schedule.Schedule
module Obs = E2e_obs.Obs

(* Effective release and deadline of the bottleneck stage in one sweep
   over each task's processing times (rather than one O(m) pass each):
   r_ib = r_i + sum_{j<b} tau_ij and d_ib = d_i - sum_{j>b} tau_ij. *)
let bottleneck_jobs (shop : Flow_shop.t) ~bottleneck =
  Array.map
    (fun (task : Task.t) ->
      let before = ref Rat.zero and after = ref Rat.zero in
      Array.iteri
        (fun j tau ->
          if j < bottleneck then before := Rat.add !before tau
          else if j > bottleneck then after := Rat.add !after tau)
        task.Task.proc_times;
      {
        Single_machine.id = task.id;
        release = Rat.add task.release !before;
        deadline = Rat.sub task.deadline !after;
      })
    shop.tasks

let propagate_from_bottleneck (shop : Flow_shop.t) ~bottleneck starts_b =
  let m = shop.processors in
  let n = Array.length shop.tasks in
  let starts = Array.init n (fun _ -> Array.make m Rat.zero) in
  Array.iteri (fun i _ -> starts.(i).(bottleneck) <- starts_b.(i)) shop.tasks;
  let pass j body = Obs.span "algo_a.pass" ~fields:[ ("processor", Obs.Int j) ] body in
  (* Downstream: each stage starts the instant its predecessor ends. *)
  for j = bottleneck + 1 to m - 1 do
    pass j (fun () ->
        for i = 0 to n - 1 do
          starts.(i).(j) <- Rat.add starts.(i).(j - 1) shop.tasks.(i).Task.proc_times.(j - 1)
        done)
  done;
  (* Upstream: stages laid back-to-back, ending exactly at the
     bottleneck start (Step 3 of Figure 4). *)
  for j = bottleneck - 1 downto 0 do
    pass j (fun () ->
        for i = 0 to n - 1 do
          starts.(i).(j) <- Rat.sub starts.(i).(j + 1) shop.tasks.(i).Task.proc_times.(j)
        done)
  done;
  Schedule.of_flow_shop shop starts

let schedule ?bottleneck (shop : Flow_shop.t) =
  match Flow_shop.is_homogeneous shop with
  | None -> Error `Not_homogeneous
  | Some taus ->
      Obs.span "algo_a.schedule"
        ~fields:[ ("tasks", Obs.Int (Flow_shop.n_tasks shop)) ]
        (fun () ->
          let b = match bottleneck with Some b -> b | None -> Flow_shop.bottleneck shop in
          let tau_b = taus.(b) in
          if Obs.enabled () then
            Obs.event "algo_a.bottleneck"
              ~fields:
                (( ("processor", Obs.Int b)
                 :: ("forced", Obs.Bool (bottleneck <> None))
                 :: ("tau", Obs.Str (Rat.to_string tau_b)) :: [] )
                @ Array.to_list
                    (Array.mapi
                       (fun j tau ->
                         (Printf.sprintf "tau_p%d" (j + 1), Obs.Str (Rat.to_string tau)))
                       taus));
          match
            Obs.span "algo_a.bottleneck_pass" (fun () ->
                Single_machine.schedule ~tau:tau_b (bottleneck_jobs shop ~bottleneck:b))
          with
          | Error `Infeasible ->
              Obs.incr "algo_a.infeasible";
              Error `Infeasible
          | Ok starts_b ->
              Obs.incr "algo_a.feasible";
              Ok
                (Obs.span "algo_a.propagate" (fun () ->
                     propagate_from_bottleneck shop ~bottleneck:b starts_b)))
