(** A portfolio around Algorithm H addressing its two named failure
    causes.

    The paper attributes Algorithm H's failures to (1) the wrong choice
    of bottleneck processor in Algorithm A and (2) Step 2 of A producing
    a wrong execution order on the bottleneck.  Both are cheap to attack
    by search: run H once per candidate bottleneck processor (m runs),
    and additionally try a handful of direct permutation orders (global
    EDF, least slack, earliest release) timed by the earliest-start
    forward pass.  Everything stays polynomial —
    O(m (n log n + n m)) — and every returned schedule is
    checker-verified. *)

type strategy =
  | H_with_bottleneck of int  (** Algorithm H forced to this bottleneck. *)
  | Order_earliest_deadline  (** Forward pass in global EDF order. *)
  | Order_least_slack  (** Forward pass by increasing task slack. *)
  | Order_earliest_release  (** Forward pass by increasing release. *)

val pp_strategy : Format.formatter -> strategy -> unit

val strategy_code : strategy -> string
(** Short stable code ("b0", "ed", "ls", "er") — used in cache keys so a
    warm-start hint is part of a cached decision's identity. *)

val strategies : E2e_model.Flow_shop.t -> strategy list
(** The portfolio tried, in order: the paper's bottleneck first, then the
    other processors, then the direct orders. *)

val schedule :
  ?budget:int ->
  ?hint:strategy ->
  E2e_model.Flow_shop.t ->
  (E2e_schedule.Schedule.t * strategy, [ `All_failed ]) result
(** First feasible schedule found, with the strategy that produced it.
    [budget] caps the number of strategies attempted (a deterministic
    work budget — the admission service bounds per-request solve cost
    with it; wall-clock timeouts would make replies nondeterministic);
    omitted, the whole portfolio is tried.  [hint] moves that strategy
    to the front of the portfolio {e before} truncation (warm start from
    a previous solve of a near-identical shop); the hint changes which
    strategy wins ties, so callers caching results must key on it. *)

val schedule_opt : E2e_model.Flow_shop.t -> E2e_schedule.Schedule.t option
