module Rat = E2e_rat.Rat
module Prng = E2e_prng.Prng
module Task = E2e_model.Task
module Visit = E2e_model.Visit
module Flow_shop = E2e_model.Flow_shop
module Recurrence_shop = E2e_model.Recurrence_shop
module Feasible_gen = E2e_workload.Feasible_gen

type model_class = Eedf | R | A | H | Eedf_fast | Eedf_inc

let all = [ Eedf; R; A; H; Eedf_fast; Eedf_inc ]

let name = function
  | Eedf -> "eedf"
  | R -> "r"
  | A -> "a"
  | H -> "h"
  | Eedf_fast -> "eedf-fast"
  | Eedf_inc -> "eedf-inc"

let of_name = function
  | "eedf" -> Some Eedf
  | "r" -> Some R
  | "a" -> Some A
  | "h" -> Some H
  | "eedf-fast" -> Some Eedf_fast
  | "eedf-inc" -> Some Eedf_inc
  | _ -> None

let code = function Eedf -> 0 | R -> 1 | A -> 2 | H -> 3 | Eedf_fast -> 4 | Eedf_inc -> 5

(* The feasible_gen helpers never produce a window below the task's total
   processing time, so on their own they only exercise the feasible and
   contention-infeasible paths.  Cut one task's window about a quarter of
   the time to reach the trivially-infeasible branches as well. *)
let tighten g (fs : Flow_shop.t) =
  if Prng.int g 4 <> 0 then fs
  else begin
    let victim = Prng.int g (Flow_shop.n_tasks fs) in
    let u = Prng.rat_uniform g ~den:4 Rat.zero Rat.one in
    let tasks =
      Array.map
        (fun (t : Task.t) ->
          if t.id <> victim then t
          else
            let deadline = Rat.add t.release (Rat.mul u (Rat.sub t.deadline t.release)) in
            Task.make ~id:t.id ~release:t.release ~deadline ~proc_times:t.proc_times)
        fs.tasks
    in
    Flow_shop.make ~processors:fs.processors tasks
  end

(* Shapes stay inside the oracle guards: branch and bound accepts up to 8
   tasks on 6 processors, the permutation oracle up to 10 tasks. *)
let small_shape g = (1 + Prng.int g 5, 1 + Prng.int g 4, 1 + Prng.int g 5)

let identical g =
  let n, m, window = small_shape g in
  let tau = Prng.rat_uniform g ~den:2 (Rat.make 1 2) (Rat.of_int 2) in
  tighten g (Feasible_gen.identical_length g ~n ~m ~tau ~window)

let homogeneous g =
  let n, m, window = small_shape g in
  tighten g (Feasible_gen.homogeneous g ~n ~m ~max_tau:2 ~window)

let arbitrary g =
  let n, m, window = small_shape g in
  tighten g (Feasible_gen.arbitrary g ~n ~m ~max_tau:2 ~window)

(* Single-loop recurrence shops inside Exhaustive_recurrence's guards:
   at most 4 tasks, 7 stages, 24 deadline slots, identical unit times
   and a common release. *)
let recurrent g =
  let visit = Feasible_gen.single_loop_visit g ~max_stages:7 in
  let k = Visit.length visit in
  let n = 1 + Prng.int g 4 in
  let tau = if Prng.bool g then Rat.one else Rat.make 1 2 in
  let release = Prng.rat_uniform g ~den:4 Rat.zero (Rat.of_int 2) in
  let tasks =
    Array.init n (fun id ->
        (* Slots below [k] are deliberately reachable: such a task cannot
           finish even alone, which must make Algorithm R and the oracle
           agree on infeasibility. *)
        let slots = Stdlib.max 1 (k - 2 + Prng.int g (k + 6)) in
        let jitter =
          match Prng.int g 3 with
          | 0 -> Rat.zero
          | 1 -> Rat.mul tau (Rat.make 1 4)
          | _ -> Rat.mul tau (Rat.make 1 2)
        in
        let deadline = Rat.add release (Rat.add (Rat.mul_int tau slots) jitter) in
        Task.make ~id ~release ~deadline ~proc_times:(Array.make k tau))
  in
  Recurrence_shop.make ~visit tasks

(* The differential class has no exhaustive oracle to stay inside, so it
   can afford real contention: up to 40 tasks fighting over windows a few
   jobs wide, which is where the indexed engine's heap order and interval
   merges see interesting traffic. *)
let identical_large g =
  let n = 1 + Prng.int g 40 in
  let m = 1 + Prng.int g 4 in
  let window = 1 + Prng.int g 8 in
  let tau = Prng.rat_uniform g ~den:2 (Rat.make 1 2) (Rat.of_int 2) in
  tighten g (Feasible_gen.identical_length g ~n ~m ~tau ~window)

(* Incremental-vs-scratch churn: the oracle runs a deterministic add/
   drop log over each instance, re-solving after every edit, so the
   instance stays a bit smaller than [identical_large] while keeping the
   windows tight enough that edits flip feasibility and reshape the
   forbidden regions mid-log. *)
let identical_churn g =
  let n = 2 + Prng.int g 22 in
  let m = 1 + Prng.int g 3 in
  let window = 1 + Prng.int g 6 in
  let tau = Prng.rat_uniform g ~den:2 (Rat.make 1 2) (Rat.of_int 2) in
  tighten g (Feasible_gen.identical_length g ~n ~m ~tau ~window)

let instance g = function
  | Eedf -> Recurrence_shop.of_traditional (identical g)
  | R -> recurrent g
  | A -> Recurrence_shop.of_traditional (homogeneous g)
  | H -> Recurrence_shop.of_traditional (arbitrary g)
  | Eedf_fast -> Recurrence_shop.of_traditional (identical_large g)
  | Eedf_inc -> Recurrence_shop.of_traditional (identical_churn g)
