module Rat = E2e_rat.Rat
module Task = E2e_model.Task
module Visit = E2e_model.Visit
module Recurrence_shop = E2e_model.Recurrence_shop

let rat_weight r = Stdlib.abs (Rat.num r) + Rat.den r

let measure (shop : Recurrence_shop.t) =
  let params =
    Array.fold_left
      (fun acc (t : Task.t) ->
        Array.fold_left
          (fun acc tau -> acc + rat_weight tau)
          (acc + rat_weight t.release + rat_weight t.deadline)
          t.proc_times)
      0 shop.tasks
  in
  (Recurrence_shop.n_tasks shop * 1_000_000) + (Visit.length shop.visit * 10_000) + params

(* Raw task parameters, rebuilt through the validating constructors;
   candidates that violate an invariant (tau <= 0, deadline < release,
   bad visit) vanish instead of raising. *)
type params = { release : Rat.t; deadline : Rat.t; proc_times : Rat.t array }

let params_of (t : Task.t) =
  { release = t.release; deadline = t.deadline; proc_times = t.proc_times }

let rebuild visit params =
  match
    Recurrence_shop.make ~visit
      (Array.mapi
         (fun id { release; deadline; proc_times } ->
           Task.make ~id ~release ~deadline ~proc_times)
         params)
  with
  | shop -> Some shop
  | exception Invalid_argument _ -> None

(* Nearest multiple of 1/den (ties round down). *)
let round_to den v = Rat.make (Rat.floor (Rat.add (Rat.mul_int v den) (Rat.make 1 2))) den

(* Strictly simpler stand-ins for one rational, most aggressive first. *)
let simpler v =
  [ Rat.zero; Rat.of_int (Rat.floor v); Rat.of_int (Rat.ceil v); round_to 2 v; round_to 4 v ]
  |> List.filter (fun c -> rat_weight c < rat_weight v)
  |> List.sort_uniq Rat.compare

let drop_task (shop : Recurrence_shop.t) =
  let n = Recurrence_shop.n_tasks shop in
  if n <= 1 then []
  else
    List.filter_map
      (fun victim ->
        rebuild shop.visit
          (Array.of_list
             (List.filter_map
                (fun i -> if i = victim then None else Some (params_of shop.tasks.(i)))
                (List.init n Fun.id))))
      (List.init n Fun.id)

(* Dropping stage [j] removes one visit position and every task's j-th
   processing time; surviving processors are renumbered densely so the
   visit stays valid. *)
let drop_stage (shop : Recurrence_shop.t) =
  let k = Visit.length shop.visit in
  if k <= 1 then []
  else
    List.filter_map
      (fun victim ->
        let remove arr =
          Array.of_list
            (List.filter_map
               (fun j -> if j = victim then None else Some arr.(j))
               (List.init k Fun.id))
        in
        let seq = remove shop.visit.Visit.sequence in
        let survivors = List.sort_uniq Stdlib.compare (Array.to_list seq) in
        let rank p =
          let rec idx i = function
            | [] -> assert false
            | q :: rest -> if q = p then i else idx (i + 1) rest
          in
          idx 0 survivors
        in
        match Visit.make (Array.map rank seq) with
        | visit ->
            rebuild visit
              (Array.map
                 (fun (t : Task.t) ->
                   { (params_of t) with proc_times = remove t.proc_times })
                 shop.tasks)
        | exception Invalid_argument _ -> None)
      (List.init k Fun.id)

let shift_horizon (shop : Recurrence_shop.t) =
  let earliest =
    Array.fold_left
      (fun acc (t : Task.t) -> Rat.min acc t.release)
      shop.tasks.(0).Task.release shop.tasks
  in
  if Rat.is_zero earliest then []
  else
    Option.to_list
      (rebuild shop.visit
         (Array.map
            (fun (t : Task.t) ->
              {
                (params_of t) with
                release = Rat.sub t.release earliest;
                deadline = Rat.sub t.deadline earliest;
              })
            shop.tasks))

let round_params (shop : Recurrence_shop.t) =
  let n = Recurrence_shop.n_tasks shop in
  List.concat_map
    (fun i ->
      let t = shop.tasks.(i) in
      let with_task p =
        rebuild shop.visit
          (Array.init n (fun j -> if j = i then p else params_of shop.tasks.(j)))
      in
      let field candidates apply =
        List.filter_map (fun v -> with_task (apply v)) candidates
      in
      field (simpler t.Task.release) (fun v -> { (params_of t) with release = v })
      @ field (simpler t.Task.deadline) (fun v -> { (params_of t) with deadline = v })
      @ List.concat_map
          (fun j ->
            field (simpler t.Task.proc_times.(j)) (fun v ->
                let proc_times = Array.copy t.Task.proc_times in
                proc_times.(j) <- v;
                { (params_of t) with proc_times }))
          (List.init (Array.length t.Task.proc_times) Fun.id))
    (List.init n Fun.id)

let candidates shop =
  let m = measure shop in
  List.filter
    (fun c -> measure c < m)
    (drop_task shop @ drop_stage shop @ shift_horizon shop @ round_params shop)

let minimize ?(max_steps = 10_000) ~keeps_failing shop =
  let rec loop shop steps =
    if steps >= max_steps then (shop, steps)
    else
      match List.find_opt keeps_failing (candidates shop) with
      | Some smaller -> loop smaller (steps + 1)
      | None -> (shop, steps)
  in
  loop shop 0
