module Rat = E2e_rat.Rat

type rat = Rat.t
type job = { id : int; release : rat; deadline : rat }
type region = { left : rat; right : rat }

(* Regions are kept sorted by [left] and pairwise disjoint.  Two regions
   sharing only an endpoint are NOT merged: the shared point itself is a
   legal start instant because regions are open intervals. *)
let insert_region regions (r : region) =
  if Rat.(r.left >= r.right) then regions
  else
    let rec merge acc r = function
      | [] -> List.rev (r :: acc)
      | r' :: rest ->
          if Rat.(r'.right < r.left) || Rat.(r'.right = r.left) then merge (r' :: acc) r rest
          else if Rat.(r.right < r'.left) || Rat.(r.right = r'.left) then
            List.rev_append acc (r :: r' :: rest)
          else
            (* Overlapping: coalesce and keep scanning. *)
            merge acc { left = Rat.min r.left r'.left; right = Rat.max r.right r'.right } rest
    in
    merge [] r regions

(* Largest start time [<= s] that is not strictly inside a region. *)
let adjust_down regions s =
  List.fold_left
    (fun s r -> if Rat.(r.left < s) && Rat.(s < r.right) then r.left else s)
    s regions

(* Smallest start time [>= s] that is not strictly inside a region. *)
let adjust_up regions s =
  List.fold_left
    (fun s r -> if Rat.(r.left < s) && Rat.(s < r.right) then r.right else s)
    s regions

(* Earliest start of the latest packing of [count] jobs of length [tau]
   all completing by [deadline], with every start outside [regions]. *)
let pack_latest regions ~tau ~count ~deadline =
  let rec go s remaining =
    let s = adjust_down regions s in
    if remaining = 1 then s else go (Rat.sub s tau) (remaining - 1)
  in
  go (Rat.sub deadline tau) count

let sorted_distinct values = List.sort_uniq Rat.compare values

let forbidden_regions ~tau jobs =
  let releases = sorted_distinct (Array.to_list (Array.map (fun j -> j.release) jobs)) in
  let deadlines = sorted_distinct (Array.to_list (Array.map (fun j -> j.deadline) jobs)) in
  let releases_desc = List.rev releases in
  let exception Infeasible in
  try
    let regions = ref [] in
    List.iter
      (fun r ->
        List.iter
          (fun d ->
            let count =
              Array.fold_left
                (fun acc j ->
                  if Rat.(j.release >= r) && Rat.(j.deadline <= d) then acc + 1 else acc)
                0 jobs
            in
            if count > 0 then begin
              let c = pack_latest !regions ~tau ~count ~deadline:d in
              if Rat.(c < r) then raise Infeasible;
              let left = Rat.sub c tau in
              if Rat.(left < r) then regions := insert_region !regions { left; right = r }
            end)
          deadlines)
      releases_desc;
    Ok !regions
  with Infeasible -> Error `Infeasible

(* Priority-driven EDF dispatch over linear scans; [advance] postpones
   candidate dispatch instants. *)
let edf_dispatch ~tau ~advance jobs =
  let n = Array.length jobs in
  let starts = Array.make n Rat.zero in
  let done_ = Array.make n false in
  let free = ref Rat.zero in
  let missed = ref None in
  if n > 0 then
    free := Array.fold_left (fun acc j -> Rat.min acc j.release) jobs.(0).release jobs;
  for _ = 1 to n do
    let min_release =
      Array.fold_left
        (fun acc j ->
          if done_.(j.id) then acc
          else Some (match acc with None -> j.release | Some m -> Rat.min m j.release))
        None jobs
    in
    match min_release with
    | None -> ()
    | Some min_release ->
        let t = ref (Rat.max !free min_release) in
        let rec settle () =
          let t' = advance !t in
          if Rat.(t' > !t) then begin
            t := t';
            settle ()
          end
        in
        settle ();
        (* Among ready jobs pick the earliest deadline (ties: release, id). *)
        let best = ref None in
        Array.iter
          (fun j ->
            if (not done_.(j.id)) && Rat.(j.release <= !t) then
              match !best with
              | None -> best := Some j
              | Some b ->
                  let c = Rat.compare j.deadline b.deadline in
                  let c = if c <> 0 then c else Rat.compare j.release b.release in
                  let c = if c <> 0 then c else compare j.id b.id in
                  if c < 0 then best := Some j)
          jobs;
        (match !best with
        | None -> assert false
        | Some j ->
            starts.(j.id) <- !t;
            done_.(j.id) <- true;
            let finish = Rat.add !t tau in
            free := finish;
            if Rat.(finish > j.deadline) && !missed = None then missed := Some j.id)
  done;
  (starts, !missed)

let with_dense_ids jobs f =
  let dense = Array.mapi (fun i j -> { j with id = i }) jobs in
  f dense

let schedule ~tau jobs =
  if Array.length jobs = 0 then Ok [||]
  else
    match forbidden_regions ~tau jobs with
    | Error `Infeasible -> Error `Infeasible
    | Ok regions ->
        with_dense_ids jobs (fun dense ->
            let starts, missed = edf_dispatch ~tau ~advance:(adjust_up regions) dense in
            match missed with Some _ -> Error `Infeasible | None -> Ok starts)

let edf_schedule_no_regions ~tau jobs =
  if Array.length jobs = 0 then Ok [||]
  else
    with_dense_ids jobs (fun dense ->
        let starts, missed = edf_dispatch ~tau ~advance:Fun.id dense in
        match missed with
        | Some i -> Error (`Deadline_missed jobs.(i).id)
        | None -> Ok starts)
