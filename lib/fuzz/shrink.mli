(** Deterministic counterexample minimization.

    Given an instance on which the differential comparison disagrees,
    [minimize] greedily applies the first structure-reducing step that
    keeps the disagreement alive, until none applies: drop a task, drop a
    stage (renumbering processors), round a rational parameter toward a
    smaller denominator, or shift the whole horizon toward 0.  Steps are
    tried in a fixed order and each accepted step strictly decreases a
    well-founded size measure, so minimization terminates and the result
    depends only on the input instance and the predicate — never on
    randomness or scheduling. *)

val measure : E2e_model.Recurrence_shop.t -> int
(** Well-founded instance size: task and stage counts dominate, then the
    total magnitude ([|num| + den]) of every rational parameter.  Every
    shrink candidate is strictly smaller under this measure. *)

val candidates : E2e_model.Recurrence_shop.t -> E2e_model.Recurrence_shop.t list
(** All one-step reductions of the instance, in the fixed trial order:
    task drops (ascending index), stage drops, the horizon shift, then
    per-task parameter roundings.  Only structurally valid, strictly
    smaller variants are produced.  Exposed for tests. *)

val minimize :
  ?max_steps:int ->
  keeps_failing:(E2e_model.Recurrence_shop.t -> bool) ->
  E2e_model.Recurrence_shop.t ->
  E2e_model.Recurrence_shop.t * int
(** [minimize ~keeps_failing shop] is the greedy fixpoint and the number
    of accepted shrink steps.  [keeps_failing] is re-evaluated on every
    candidate (typically by re-running {!Oracle.run}); [max_steps]
    (default 10_000) is a safety stop well above any reachable depth. *)
