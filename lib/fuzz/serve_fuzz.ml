module Rat = E2e_rat.Rat
module Prng = E2e_prng.Prng
module Task = E2e_model.Task
module Recurrence_shop = E2e_model.Recurrence_shop
module Feasible_gen = E2e_workload.Feasible_gen
module Admission = E2e_serve.Admission
module Batcher = E2e_serve.Batcher
module Protocol = E2e_serve.Protocol

type finding = {
  trial : int;
  index : int;
  request : string;
  batched : string;
  reference : string;
  log : string list;
  shrink_steps : int;
}

type report = { seed : int; trials : int; agreed : int; findings : finding list }

let code = 4

(* ------------------------------------------------------------------ *)
(* Request-log generation: a pure function of the stream.             *)

let gen_instance g =
  let n = 2 + Prng.int g 3 and m = 2 + Prng.int g 2 in
  Recurrence_shop.of_traditional
    (Feasible_gen.generate g
       { Feasible_gen.n_tasks = n; n_processors = m; mean_tau = 1.0; stdev = 0.5;
         slack_factor = 1.0 +. Prng.float g 1.0 })

(* One task's window tightened below its total processing time: the
   candidate is provably infeasible (negative slack), exercising the
   [Rejected]-with-certificate path. *)
let tighten (shop : Recurrence_shop.t) =
  let tasks =
    Array.mapi
      (fun i (t : Task.t) ->
        if i = 0 then
          let total = Rat.sum_array t.proc_times in
          Task.make ~id:t.id ~release:t.release
            ~deadline:Rat.(add t.release (div_int total 2))
            ~proc_times:t.proc_times
        else t)
      shop.Recurrence_shop.tasks
  in
  Recurrence_shop.make ~visit:shop.visit tasks

(* Same instance, tasks relabelled: must hit the canonical cache. *)
let permute g (shop : Recurrence_shop.t) =
  let order = Prng.permutation g (Recurrence_shop.n_tasks shop) in
  let tasks =
    Array.mapi
      (fun p orig ->
        let t = shop.Recurrence_shop.tasks.(orig) in
        Task.make ~id:p ~release:t.release ~deadline:t.deadline ~proc_times:t.proc_times)
      order
  in
  Recurrence_shop.make ~visit:shop.visit tasks

let gen_log g =
  let requests = 6 + Prng.int g 15 in
  let live = ref [] (* (shop, instance), most recent first *) in
  let fresh = ref 0 in
  let fresh_shop () =
    incr fresh;
    Printf.sprintf "s%d" !fresh
  in
  let pick () =
    match !live with [] -> None | l -> Some (List.nth l (Prng.int g (List.length l)))
  in
  List.init requests (fun _ ->
      let p = Prng.float g 1.0 in
      if p < 0.35 || !live = [] then begin
        let shop = fresh_shop () and instance = gen_instance g in
        live := (shop, instance) :: !live;
        Admission.Submit { shop; instance }
      end
      else if p < 0.50 then begin
        let _, earlier = Option.get (pick ()) in
        let shop = fresh_shop () and instance = permute g earlier in
        live := (shop, instance) :: !live;
        Admission.Submit { shop; instance }
      end
      else if p < 0.57 then
        (* Infeasible by construction: the rejected path. *)
        Admission.Submit { shop = fresh_shop (); instance = tighten (gen_instance g) }
      else if p < 0.62 then
        (* Duplicate name: the request-error path. *)
        let shop, _ = Option.get (pick ()) in
        Admission.Submit { shop; instance = gen_instance g }
      else if p < 0.80 then begin
        let shop, committed = Option.get (pick ()) in
        let k = Array.length committed.Recurrence_shop.tasks.(0).Task.proc_times in
        let count = 1 + Prng.int g 2 in
        let tasks =
          List.init count (fun _ ->
              let taus =
                Array.init k (fun _ ->
                    Prng.rat_uniform g ~den:100 (Rat.make 1 2) (Rat.of_int 2))
              in
              let total = Rat.sum_array taus in
              let release = Prng.rat_uniform g ~den:100 Rat.zero (Rat.of_int 4) in
              let window = Rat.mul_int total (2 + Prng.int g 3) in
              (release, Rat.add release window, taus))
        in
        Admission.Add { shop; tasks }
      end
      else if p < 0.90 then
        let shop = match pick () with Some (s, _) -> s | None -> "none" in
        Admission.Query { shop }
      else begin
        let shop = match pick () with Some (s, _) -> s | None -> "none" in
        live := List.filter (fun (s, _) -> s <> shop) !live;
        Admission.Drop { shop }
      end)

(* ------------------------------------------------------------------ *)
(* Differential comparison                                            *)

let outcome_sig o = Format.asprintf "%a" Batcher.pp_outcome o

(* Batched, cached, [jobs] domains. *)
let run_batched ~jobs log =
  let config =
    { Batcher.queue_capacity = max 1 (List.length log); batch = 4;
      budget = Admission.Unbounded; jobs; cache_capacity = 64 }
  in
  Batcher.process_log (Batcher.create ~config ()) log

(* Sequential, cache off, one domain: the reference interpreter. *)
let run_reference log =
  let _, replies =
    List.fold_left
      (fun (state, acc) req ->
        let state, reply = Admission.apply state req in
        (state, reply :: acc))
      (Admission.empty, []) log
  in
  Array.of_list (List.rev_map (fun r -> Batcher.Reply r) replies)

(* First index where the two interpreters' replies differ. *)
let mismatch ~jobs log =
  let batched = run_batched ~jobs log and reference = run_reference log in
  let n = Array.length batched in
  let rec go i =
    if i >= n then None
    else
      let b = outcome_sig batched.(i) and r = outcome_sig reference.(i) in
      if String.equal b r then go (i + 1) else Some (i, b, r)
  in
  go 0

(* Greedy deletion: drop any request whose removal preserves the
   disagreement, to a fixpoint (or the step bound). *)
let shrink ~jobs ~max_shrink log =
  let remove i l = List.filteri (fun j _ -> j <> i) l in
  let steps = ref 0 in
  let rec pass log i =
    if !steps >= max_shrink || i >= List.length log then log
    else
      let candidate = remove i log in
      match mismatch ~jobs candidate with
      | Some _ ->
          incr steps;
          pass candidate i
      | None -> pass log (i + 1)
  in
  let rec fix log =
    let log' = pass log 0 in
    if List.length log' < List.length log && !steps < max_shrink then fix log' else log'
  in
  (fix log, !steps)

let run ?(jobs = 1) ?(max_shrink = 1000) ~seed ~trials () =
  let agreed = ref 0 and findings = ref [] in
  for trial = 0 to trials - 1 do
    let g = Prng.of_path [| seed; code; trial |] in
    let log = gen_log g in
    match mismatch ~jobs log with
    | None -> incr agreed
    | Some _ ->
        let log, shrink_steps = shrink ~jobs ~max_shrink log in
        let index, batched, reference =
          match mismatch ~jobs log with
          | Some (i, b, r) -> (i, b, r)
          | None -> assert false (* shrink preserves the disagreement *)
        in
        let rendered = List.map Protocol.render_request log in
        findings :=
          { trial; index; request = List.nth rendered index; batched; reference;
            log = rendered; shrink_steps }
          :: !findings
  done;
  { seed; trials; agreed = !agreed; findings = List.rev !findings }

let pp_finding ppf f =
  Format.fprintf ppf "  trial %d: reply %d disagrees after %d shrink step(s)@." f.trial
    f.index f.shrink_steps;
  Format.fprintf ppf "    request:   %s@." f.request;
  Format.fprintf ppf "    batched:   %s@." f.batched;
  Format.fprintf ppf "    reference: %s@." f.reference;
  Format.fprintf ppf "    log:@.";
  List.iter (fun line -> Format.fprintf ppf "      | %s@." line) f.log

let pp_report ppf r =
  Format.fprintf ppf "serve: %d trials, %d agreed, %d disagreement(s)" r.trials r.agreed
    (List.length r.findings);
  if r.findings <> [] then begin
    Format.pp_print_newline ppf ();
    List.iter (pp_finding ppf) r.findings
  end
