(** The differential judgment: one solver run cross-checked against the
    exhaustive oracles and the independent schedule checker.

    Each model class pits the algorithm whose optimality the paper claims
    against a baseline that shares nothing with it:

    - [Eedf] — {!E2e_core.Eedf.schedule} vs. all-schedule branch and
      bound ({!E2e_baselines.Branch_bound});
    - [R] — {!E2e_core.Algo_r.schedule} vs. the slotted exhaustive search
      ({!E2e_baselines.Exhaustive_recurrence});
    - [A] — {!E2e_core.Algo_a.schedule} vs. branch and bound;
    - [H] — {!E2e_core.Algo_h}, {!E2e_core.H_portfolio} and the
      {!E2e_core.Solver} front end vs. the permutation-order oracle
      ({!E2e_baselines.Exhaustive}) and branch and bound.  H is a
      heuristic, so a failure is never a bug by itself; but any schedule
      it returns must pass {!E2e_schedule.Schedule.check}, a feasible H
      schedule implies a feasible permutation order the oracle must also
      find, and the front end's infeasibility proofs must hold up;
    - [Eedf_fast] — the indexed {!E2e_core.Single_machine} engine vs.
      the retained scan-based {!Single_machine_ref}, compared for exact
      rational equality on region lists, optimal schedules and the
      plain-EDF ablation.  No oracle budget: every trial is decidable.

    Every returned schedule, from solver and oracle alike, is validated
    by the independent checker. *)

type kind =
  | Invalid_schedule
      (** The solver returned a schedule the independent checker rejects. *)
  | Claimed_infeasible
      (** The solver proved infeasibility, but the oracle found a
          feasible schedule. *)
  | Claimed_feasible
      (** The solver returned a (checker-clean) schedule on an instance
          the oracle proves infeasible — one of the two sides is wrong. *)
  | Precondition
      (** The solver rejected optimality preconditions the generator
          guarantees (identical lengths, homogeneity, single loop, ...). *)
  | Divergence
      (** The indexed {!E2e_core.Single_machine} engine and the retained
          scan-based {!Single_machine_ref} disagree on some output
          (regions, optimal starts, or the plain-EDF ablation) — the
          [eedf-fast] class. *)
  | Crash of string  (** The solver raised. *)

type outcome =
  | Agree  (** Solver and oracle concur; all schedules checker-clean. *)
  | Skip of string
      (** The oracle could not decide (search budget or guard); nothing
          was falsified. *)
  | Bug of { kind : kind; detail : string }

val is_bug : outcome -> bool
val pp_kind : Format.formatter -> kind -> unit
val pp_outcome : Format.formatter -> outcome -> unit

val run : Gen.model_class -> E2e_model.Recurrence_shop.t -> outcome
(** Run the class's differential comparison on one instance.  Solver
    exceptions are caught and classified as [Bug Crash]; oracle guard
    violations become [Skip]. *)
