(** The historical scan-based single-machine EEDF engine, retained
    verbatim (minus telemetry) as the differential reference for the
    indexed engine in {!E2e_core.Single_machine}.

    Forbidden regions are built by the transparent release x deadline
    pair enumeration over linear job scans (O(n^3)), regions live in a
    sorted list folded over at every query, and the EDF dispatch rescans
    every job per dispatch (O(n^2)).  Slow but simple — exactly what the
    production engine's rewrite must agree with byte-for-byte.  The
    [eedf-fast] fuzz class ({!Oracle}) compares the two engines' region
    lists, optimal schedules and plain-EDF ablations for exact rational
    equality on random identical-length instances.

    Also the baseline timed by [make bench-core]: the speedup column in
    [BENCH_core.json] is new engine vs this module. *)

type rat = E2e_rat.Rat.t
type job = { id : int; release : rat; deadline : rat }
type region = { left : rat; right : rat }

val forbidden_regions : tau:rat -> job array -> (region list, [ `Infeasible ]) result
(** All forbidden regions, sorted by left endpoint, pairwise disjoint. *)

val schedule : tau:rat -> job array -> (rat array, [ `Infeasible ]) result
(** Optimal start times (input order): EDF over the forbidden regions. *)

val edf_schedule_no_regions :
  tau:rat -> job array -> (rat array, [ `Deadline_missed of int ]) result
(** Plain priority-driven EDF without forbidden regions. *)
