module Recurrence_shop = E2e_model.Recurrence_shop
module Instance_io = E2e_model.Instance_io
module Pool = E2e_exec.Pool
module Obs = E2e_obs.Obs

type finding = {
  trial : int;
  kind : Oracle.kind;
  detail : string;
  original : Recurrence_shop.t;
  shrunk : Recurrence_shop.t;
  shrink_steps : int;
}

type report = {
  cls : Gen.model_class;
  seed : int;
  trials : int;
  agreed : int;
  skipped : int;
  findings : finding list;
}

let run_class ?(jobs = 1) ?max_shrink ~seed ~trials cls =
  Obs.span "fuzz.class" ~fields:[ ("class", Obs.Str (Gen.name cls)) ] @@ fun () ->
  let outcomes =
    Pool.init ~jobs trials (fun trial ->
        let g = E2e_prng.Prng.of_path [| seed; Gen.code cls; trial |] in
        let shop = Gen.instance g cls in
        let outcome = Oracle.run cls shop in
        Obs.incr "fuzz.trials";
        (match outcome with
        | Oracle.Agree -> Obs.incr "fuzz.agree"
        | Oracle.Skip _ -> Obs.incr "fuzz.skip"
        | Oracle.Bug _ -> Obs.incr "fuzz.disagreements");
        (shop, outcome))
  in
  let agreed = ref 0 and skipped = ref 0 and findings = ref [] in
  Array.iteri
    (fun trial (shop, outcome) ->
      match outcome with
      | Oracle.Agree -> incr agreed
      | Oracle.Skip _ -> incr skipped
      | Oracle.Bug { kind; detail } ->
          (* Shrinking happens sequentially after the pool joined, so it
             cannot perturb trial results or their order. *)
          let keeps_failing s = Oracle.is_bug (Oracle.run cls s) in
          let shrunk, shrink_steps = Shrink.minimize ?max_steps:max_shrink ~keeps_failing shop in
          Obs.incr ~by:shrink_steps "fuzz.shrink_steps";
          findings := { trial; kind; detail; original = shop; shrunk; shrink_steps } :: !findings)
    outcomes;
  { cls; seed; trials; agreed = !agreed; skipped = !skipped; findings = List.rev !findings }

let run ?jobs ?max_shrink ~seed ~trials classes =
  List.map (fun cls -> run_class ?jobs ?max_shrink ~seed ~trials cls) classes

let total_findings reports =
  List.fold_left (fun acc r -> acc + List.length r.findings) 0 reports

let pp_instance ppf shop =
  String.split_on_char '\n' (Instance_io.to_string shop)
  |> List.iter (fun line -> if line <> "" then Format.fprintf ppf "@,    %s" line)

let pp_report ppf r =
  Format.fprintf ppf "@[<v>class %-4s: %d trials, %d agree, %d skipped, %d disagreements"
    (Gen.name r.cls) r.trials r.agreed r.skipped
    (List.length r.findings);
  List.iter
    (fun f ->
      Format.fprintf ppf "@,  FINDING trial=%d %a: %s" f.trial Oracle.pp_kind f.kind f.detail;
      Format.fprintf ppf "@,  shrunk in %d steps to:" f.shrink_steps;
      pp_instance ppf f.shrunk)
    r.findings;
  Format.fprintf ppf "@]"

(* {1 Corpus} *)

let corpus_entry ~cls ?provenance shop =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "# e2e-fuzz reproducer; replayed by the test suite\n";
  Buffer.add_string buf (Printf.sprintf "# class: %s\n" (Gen.name cls));
  (match provenance with
  | Some p -> Buffer.add_string buf (Printf.sprintf "# provenance: %s\n" p)
  | None -> ());
  Buffer.add_string buf (Instance_io.to_string shop);
  Buffer.contents buf

let corpus_file_name ~cls shop =
  (* Content-addressed over the instance body alone, so the same minimal
     reproducer found twice (or with different provenance) is one file. *)
  let digest = Digest.to_hex (Digest.string (Instance_io.to_string shop)) in
  Printf.sprintf "%s-%s.txt" (Gen.name cls) (String.sub digest 0 12)

let write_corpus ~dir ~cls ?provenance shop =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir (corpus_file_name ~cls shop) in
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (corpus_entry ~cls ?provenance shop));
  path

let class_of_header text =
  String.split_on_char '\n' text
  |> List.find_map (fun line ->
         let line = String.trim line in
         let prefix = "# class:" in
         if String.length line > String.length prefix
            && String.sub line 0 (String.length prefix) = prefix
         then
           Gen.of_name
             (String.trim
                (String.sub line (String.length prefix)
                   (String.length line - String.length prefix)))
         else None)

let replay_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error m -> Error m
  | text -> (
      match class_of_header text with
      | None -> Error (Printf.sprintf "%s: missing or unknown '# class:' header" path)
      | Some cls -> (
          match Instance_io.parse text with
          | Error m -> Error (Printf.sprintf "%s: %s" path m)
          | Ok shop -> Ok (cls, Oracle.run cls shop)))

let replay_dir dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
      Array.to_list names
      |> List.filter (fun n -> Filename.check_suffix n ".txt")
      |> List.sort String.compare
      |> List.map (fun n -> (n, replay_file (Filename.concat dir n)))
