(** Random instance generation for the differential fuzzer.

    One generator per optimality claim of the paper: identical-length
    flow shops for EEDF, single-loop recurrence shops for Algorithm R,
    homogeneous sets for Algorithm A, and arbitrary sets for Algorithm H
    and the portfolio.  Every instance is kept inside the guards of the
    class's exhaustive oracle ({!E2e_baselines.Branch_bound},
    {!E2e_baselines.Exhaustive}, {!E2e_baselines.Exhaustive_recurrence}),
    so the differential comparison is decidable, and every generator is a
    pure function of the {!E2e_prng.Prng.t} it is handed — the campaign
    driver derives one stream per trial with {!E2e_prng.Prng.of_path},
    which makes results independent of how trials are spread over
    domains.

    [Eedf_fast] is different in kind: it feeds the engine-vs-engine
    differential ({!Single_machine_ref} against the indexed
    {!E2e_core.Single_machine}), needs no exhaustive oracle, and so
    generates much larger identical-length instances (up to 40 tasks)
    than the optimality classes can afford.  [Eedf_inc] is its sibling
    for the incremental engine: each instance seeds a deterministic
    add/drop churn log whose every step is checked against the
    from-scratch solver (regions, schedules and verdicts must agree
    exactly). *)

type model_class = Eedf | R | A | H | Eedf_fast | Eedf_inc

val all : model_class list
(** Every class, in the fixed campaign order
    [Eedf; R; A; H; Eedf_fast; Eedf_inc]. *)

val name : model_class -> string
(** CLI / corpus spelling: ["eedf"], ["r"], ["a"], ["h"], ["eedf-fast"],
    ["eedf-inc"]. *)

val of_name : string -> model_class option

val code : model_class -> int
(** Stable per-class component for {!E2e_prng.Prng.of_path} paths, so
    the classes draw statistically independent trial streams from one
    campaign seed. *)

val instance : E2e_prng.Prng.t -> model_class -> E2e_model.Recurrence_shop.t
(** One random instance of the class.  Traditional classes (EEDF, A, H)
    return shops with the identity visit sequence; [R] returns a
    single-loop recurrence shop with identical unit times and a common
    release.  Roughly a quarter of the instances get one task's window
    tightened below its total processing time, so the claimed-infeasible
    branches of the solvers are exercised too. *)
