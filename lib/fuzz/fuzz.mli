(** Differential fuzzing campaigns: generate, cross-check, shrink,
    serialize.

    A campaign runs [trials] independent trials per model class.  Trial
    [t] of class [c] draws its instance from the stream
    [Prng.of_path [| seed; Gen.code c; t |]] and is a pure job, so trials
    fan out over the {!E2e_exec.Pool} ([~jobs]) with byte-identical
    results at every job count.  Disagreements are shrunk to minimal
    reproducers by {!Shrink.minimize} (sequentially, after the pool
    joins, so shrinking cost never perturbs result order) and can be
    serialized in the {!E2e_model.Instance_io} text format into a corpus
    directory that the test suite replays forever after.

    Telemetry: the campaign emits one [fuzz.class] span per class and
    counters [fuzz.trials], [fuzz.agree], [fuzz.skip],
    [fuzz.disagreements] and [fuzz.shrink_steps]. *)

type finding = {
  trial : int;  (** Trial index within the class (PRNG path component). *)
  kind : Oracle.kind;
  detail : string;
  original : E2e_model.Recurrence_shop.t;  (** As generated. *)
  shrunk : E2e_model.Recurrence_shop.t;  (** Minimal reproducer. *)
  shrink_steps : int;
}

type report = {
  cls : Gen.model_class;
  seed : int;
  trials : int;
  agreed : int;
  skipped : int;
  findings : finding list;  (** In trial order. *)
}

val run_class :
  ?jobs:int -> ?max_shrink:int -> seed:int -> trials:int -> Gen.model_class -> report
(** One class's campaign.  [jobs] defaults to 1; [max_shrink] bounds the
    accepted shrink steps per finding. *)

val run :
  ?jobs:int -> ?max_shrink:int -> seed:int -> trials:int -> Gen.model_class list -> report list
(** [run_class] over each class, in list order. *)

val total_findings : report list -> int

val pp_report : Format.formatter -> report -> unit
(** One summary line, then every finding with its shrunk reproducer —
    deterministic, so campaign output can be compared byte-for-byte
    across [-j] values. *)

(** {1 Corpus}

    A reproducer file is the {!E2e_model.Instance_io} rendering of the
    shrunk instance preceded by [#]-comment headers, one of which names
    the model class ([# class: eedf]).  File names are content-addressed
    ([<class>-<digest>.txt]), so re-finding the same minimal instance
    never duplicates corpus entries. *)

val corpus_entry : cls:Gen.model_class -> ?provenance:string -> E2e_model.Recurrence_shop.t -> string
(** The serialized file contents. *)

val corpus_file_name : cls:Gen.model_class -> E2e_model.Recurrence_shop.t -> string

val write_corpus :
  dir:string -> cls:Gen.model_class -> ?provenance:string -> E2e_model.Recurrence_shop.t -> string
(** Write the reproducer into [dir] (created if missing) and return its
    path. *)

val replay_file : string -> (Gen.model_class * Oracle.outcome, string) result
(** Parse one corpus file, recover its class from the [# class:] header,
    and re-run the differential comparison.  [Error] on parse failures or
    a missing/unknown class header. *)

val replay_dir : string -> (string * (Gen.model_class * Oracle.outcome, string) result) list
(** Every [.txt] file in [dir], sorted by name.  The empty list if [dir]
    does not exist. *)
