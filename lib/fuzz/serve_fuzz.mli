(** Differential fuzzing of the admission service.

    Each trial generates a random request log — fresh submissions,
    permuted resubmissions (canonical-cache exercisers), duplicate
    submissions, incremental adds, deliberately infeasible sets,
    queries and drops — and runs it through two interpreters:

    - the {b batched} engine ({!E2e_serve.Batcher.process_log}) with
      the canonical solver cache enabled and solves fanned out over
      [jobs] worker domains, and
    - the {b sequential reference} ({!E2e_serve.Admission.apply} folded
      over the log, cache off, one domain).

    Every reply must agree between the two runs: same verdict, shop,
    task count, certificate, makespan (schedules are compared through
    the one-line reply rendering, which excludes the permutation-
    dependent row order).  A disagreement is shrunk by greedily
    deleting requests from the log while the mismatch persists.

    Trial [t] draws from [Prng.of_path [| seed; code; t |]] with
    {!code} disjoint from the model-class codes of {!Gen}, and trials
    run sequentially (the batcher under test owns the worker pool), so
    campaign output is byte-identical at every [jobs] value. *)

type finding = {
  trial : int;
  index : int;  (** First request whose replies disagree (in the shrunk log). *)
  request : string;  (** That request, in the wire format. *)
  batched : string;  (** Its reply from the batched cached engine. *)
  reference : string;  (** Its reply from the sequential cache-free reference. *)
  log : string list;  (** The whole shrunk log, one request per line. *)
  shrink_steps : int;
}

type report = {
  seed : int;
  trials : int;
  agreed : int;
  findings : finding list;  (** In trial order. *)
}

val code : int
(** Stable {!E2e_prng.Prng.of_path} component for the [serve] class,
    disjoint from every {!Gen.code}. *)

val run : ?jobs:int -> ?max_shrink:int -> seed:int -> trials:int -> unit -> report
(** One campaign.  [jobs] (default 1) is the batched engine's worker
    count; [max_shrink] bounds accepted deletions per finding. *)

val pp_report : Format.formatter -> report -> unit
(** One summary line, then every finding with its shrunk request log —
    deterministic, so campaign output can be compared byte-for-byte
    across [-j] values. *)
