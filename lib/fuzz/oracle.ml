module Rat = E2e_rat.Rat
module Visit = E2e_model.Visit
module Flow_shop = E2e_model.Flow_shop
module Recurrence_shop = E2e_model.Recurrence_shop
module Schedule = E2e_schedule.Schedule
module Eedf = E2e_core.Eedf
module Algo_r = E2e_core.Algo_r
module Algo_a = E2e_core.Algo_a
module Algo_h = E2e_core.Algo_h
module H_portfolio = E2e_core.H_portfolio
module Solver = E2e_core.Solver
module Exhaustive = E2e_baselines.Exhaustive
module Branch_bound = E2e_baselines.Branch_bound
module Exhaustive_recurrence = E2e_baselines.Exhaustive_recurrence

type kind =
  | Invalid_schedule
  | Claimed_infeasible
  | Claimed_feasible
  | Precondition
  | Divergence
  | Crash of string

type outcome = Agree | Skip of string | Bug of { kind : kind; detail : string }

let is_bug = function Bug _ -> true | Agree | Skip _ -> false

let pp_kind ppf = function
  | Invalid_schedule -> Format.pp_print_string ppf "schedule-invalid"
  | Claimed_infeasible -> Format.pp_print_string ppf "claimed-infeasible-but-oracle-feasible"
  | Claimed_feasible -> Format.pp_print_string ppf "claimed-feasible-but-oracle-infeasible"
  | Precondition -> Format.pp_print_string ppf "precondition-violation"
  | Divergence -> Format.pp_print_string ppf "engine-divergence"
  | Crash e -> Format.fprintf ppf "crash (%s)" e

let pp_outcome ppf = function
  | Agree -> Format.pp_print_string ppf "agree"
  | Skip m -> Format.fprintf ppf "skip (%s)" m
  | Bug { kind; detail } -> Format.fprintf ppf "BUG %a: %s" pp_kind kind detail

let bug kind fmt = Format.kasprintf (fun detail -> Bug { kind; detail }) fmt

(* The independent checker's verdict on a returned schedule. *)
let invalid s =
  match Schedule.check s with
  | Ok () -> None
  | Error vs ->
      Some
        (Format.asprintf "%a"
           (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
              Schedule.pp_violation)
           vs)

(* Keeping the node budget well below the default makes 2000-trial
   campaigns cheap; exhaustion is a Skip, not a verdict. *)
let bb_budget = 60_000

let all_schedules_feasible fs =
  match Branch_bound.feasible ~budget:bb_budget fs with
  | Some b -> Ok b
  | None -> Error "branch-and-bound budget exhausted"

let to_flow_shop (shop : Recurrence_shop.t) =
  if not (Visit.is_traditional shop.visit) then None
  else Some (Flow_shop.make ~processors:shop.visit.Visit.processors shop.tasks)

(* Shared shape of the two optimal traditional-shop algorithms: a
   claimed-optimal solver against the all-schedules oracle. *)
let run_optimal ~solver_name ~schedule fs =
  match schedule fs with
  | `Ok s -> (
      match invalid s with
      | Some v -> bug Invalid_schedule "%s schedule rejected by checker: %s" solver_name v
      | None -> (
          match all_schedules_feasible fs with
          | Ok true | Error _ -> Agree
          | Ok false ->
              bug Claimed_feasible
                "%s returned a checker-clean schedule on an instance branch and bound proves \
                 infeasible"
                solver_name))
  | `Infeasible -> (
      match all_schedules_feasible fs with
      | Ok false -> Agree
      | Ok true ->
          bug Claimed_infeasible "%s claims infeasible; branch and bound found a schedule"
            solver_name
      | Error m -> Skip m)
  | `Precondition p -> bug Precondition "%s rejected a generated instance: %s" solver_name p

let run_eedf fs =
  run_optimal ~solver_name:"EEDF"
    ~schedule:(fun fs ->
      match Eedf.schedule fs with
      | Ok s -> `Ok s
      | Error `Infeasible -> `Infeasible
      | Error `Not_identical_length -> `Precondition "not identical-length")
    fs

let run_a fs =
  run_optimal ~solver_name:"Algorithm A"
    ~schedule:(fun fs ->
      match Algo_a.schedule fs with
      | Ok s -> `Ok s
      | Error `Infeasible -> `Infeasible
      | Error `Not_homogeneous -> `Precondition "not homogeneous")
    fs

let run_r (shop : Recurrence_shop.t) =
  let oracle () =
    match Exhaustive_recurrence.feasible shop with
    | b -> Ok b
    | exception Invalid_argument m -> Error m
  in
  match Algo_r.schedule shop with
  | Ok s -> (
      match invalid s with
      | Some v -> bug Invalid_schedule "Algorithm R schedule rejected by checker: %s" v
      | None -> (
          match oracle () with
          | Ok true | Error _ -> Agree
          | Ok false ->
              bug Claimed_feasible
                "Algorithm R returned a checker-clean schedule the exhaustive oracle proves \
                 infeasible"))
  | Error `Infeasible -> (
      match oracle () with
      | Ok true ->
          bug Claimed_infeasible "Algorithm R claims infeasible; exhaustive search found a \
                                  schedule"
      | Ok false -> Agree
      | Error m -> Skip m)
  | Error e -> bug Precondition "Algorithm R rejected a generated instance: %a" Algo_r.pp_error e

(* Algorithm H and friends.  H may fail on feasible instances (the paper
   names the two causes), so only positive claims are falsifiable. *)
let run_h fs =
  let permutation_oracle () =
    match Exhaustive.permutation_feasible fs with
    | b -> Ok b
    | exception Invalid_argument m -> Error m
  in
  let h_verdict =
    match Algo_h.schedule fs with
    | Ok s -> (
        match invalid s with
        | Some v -> bug Invalid_schedule "Algorithm H schedule rejected by checker: %s" v
        | None -> (
            (* A feasible compacted schedule is a permutation schedule, so
               the earliest-start schedule of its order must be feasible
               too — the permutation oracle has to find it. *)
            match permutation_oracle () with
            | Ok true | Error _ -> Agree
            | Ok false ->
                bug Claimed_feasible
                  "Algorithm H returned a feasible schedule but the exhaustive oracle finds no \
                   feasible permutation order"))
    | Error `Inflated_infeasible -> Agree
    | Error (`Compacted_infeasible s) ->
        (* H gave up because its own compacted schedule is infeasible; the
           attached witness must indeed violate a constraint. *)
        if Schedule.is_feasible s then
          bug Invalid_schedule
            "Algorithm H reported its compacted schedule infeasible, but the checker accepts it"
        else Agree
  in
  let portfolio_verdict () =
    match H_portfolio.schedule_opt fs with
    | None -> Agree
    | Some s -> (
        match invalid s with
        | Some v -> bug Invalid_schedule "portfolio schedule rejected by checker: %s" v
        | None -> Agree)
  in
  let solver_verdict () =
    match Solver.solve fs with
    | Solver.Feasible (s, _) -> (
        match invalid s with
        | Some v -> bug Invalid_schedule "solver front-end schedule rejected by checker: %s" v
        | None -> Agree)
    | Solver.Proved_infeasible _ -> (
        match all_schedules_feasible fs with
        | Ok true ->
            bug Claimed_infeasible
              "solver front end proved infeasible; branch and bound found a schedule"
        | Ok false | Error _ -> Agree)
    | Solver.Heuristic_failed -> Agree
  in
  match h_verdict with
  | Bug _ as b -> b
  | first -> (
      match portfolio_verdict () with
      | Bug _ as b -> b
      | _ -> ( match solver_verdict () with Bug _ as b -> b | _ -> first))

(* Engine-vs-engine differential: the indexed Single_machine against the
   retained scan-based reference, on the EEDF reduction of the instance.
   Every output — region list, optimal starts, plain-EDF ablation — must
   match for exact rational equality; there is no tolerance and no
   oracle budget, so any mismatch is a bug. *)
let run_eedf_fast fs =
  match Flow_shop.is_identical_length fs with
  | None -> bug Precondition "eedf-fast generator produced a non-identical-length shop"
  | Some tau ->
      let jobs = Eedf.single_machine_jobs fs ~tau in
      let ref_jobs =
        Array.map
          (fun (j : E2e_core.Single_machine.job) ->
            { Single_machine_ref.id = j.id; release = j.release; deadline = j.deadline })
          jobs
      in
      let pp_rats ppf rs =
        Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf " ")
          (fun ppf r -> Format.pp_print_string ppf (Rat.to_string r))
          ppf (Array.to_list rs)
      in
      let starts_equal a b =
        Array.length a = Array.length b && Array.for_all2 Rat.equal a b
      in
      let regions_verdict =
        match
          (E2e_core.Single_machine.forbidden_regions ~tau jobs,
           Single_machine_ref.forbidden_regions ~tau:tau ref_jobs)
        with
        | Error `Infeasible, Error `Infeasible -> Agree
        | Ok fast, Ok slow ->
            let same =
              List.length fast = List.length slow
              && List.for_all2
                   (fun (f : E2e_core.Single_machine.region) (s : Single_machine_ref.region) ->
                     Rat.equal f.left s.left && Rat.equal f.right s.right)
                   fast slow
            in
            if same then Agree
            else
              bug Divergence "forbidden regions differ: fast [%a] vs ref [%a]"
                (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
                   E2e_core.Single_machine.pp_region)
                fast
                (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
                   (fun ppf (r : Single_machine_ref.region) ->
                     Format.fprintf ppf "(%s, %s)" (Rat.to_string r.left)
                       (Rat.to_string r.right)))
                slow
        | Ok _, Error `Infeasible ->
            bug Divergence "fast engine built regions where the reference proves infeasible"
        | Error `Infeasible, Ok _ ->
            bug Divergence "fast engine claims infeasible during regions; reference succeeds"
      in
      let schedule_verdict () =
        match
          (E2e_core.Single_machine.schedule ~tau jobs,
           Single_machine_ref.schedule ~tau:tau ref_jobs)
        with
        | Error `Infeasible, Error `Infeasible -> Agree
        | Ok fast, Ok slow ->
            if starts_equal fast slow then Agree
            else bug Divergence "schedules differ: fast [%a] vs ref [%a]" pp_rats fast pp_rats slow
        | Ok _, Error `Infeasible -> bug Divergence "fast schedules an instance the reference rejects"
        | Error `Infeasible, Ok _ -> bug Divergence "fast rejects an instance the reference schedules"
      in
      let ablation_verdict () =
        match
          (E2e_core.Single_machine.edf_schedule_no_regions ~tau jobs,
           Single_machine_ref.edf_schedule_no_regions ~tau:tau ref_jobs)
        with
        | Error (`Deadline_missed i), Error (`Deadline_missed i') ->
            if i = i' then Agree
            else bug Divergence "plain EDF misses different first deadlines: fast %d vs ref %d" i i'
        | Ok fast, Ok slow ->
            if starts_equal fast slow then Agree
            else
              bug Divergence "plain-EDF schedules differ: fast [%a] vs ref [%a]" pp_rats fast
                pp_rats slow
        | Ok _, Error (`Deadline_missed i) ->
            bug Divergence "plain EDF: fast meets all deadlines, reference misses job %d" i
        | Error (`Deadline_missed i), Ok _ ->
            bug Divergence "plain EDF: fast misses job %d, reference meets all deadlines" i
      in
      (match regions_verdict with
      | Bug _ as b -> b
      | _ -> (
          match schedule_verdict () with Bug _ as b -> b | _ -> ablation_verdict ()))

(* Incremental-vs-scratch differential: replay a deterministic add/drop
   churn log over the instance's EEDF reduction and require the warm
   {!E2e_core.Single_machine.Inc} state to agree with a from-scratch
   solve after {e every} edit — regions, start times and feasibility
   verdicts, all under exact rational equality.  The edit positions are
   a fixed function of the log length, so a failing trial replays from
   its seed alone. *)
let rec insert_at i x l =
  match l with
  | l when i = 0 -> x :: l
  | [] -> [ x ]
  | y :: tl -> y :: insert_at (i - 1) x tl

let rec remove_at i = function
  | [] -> []
  | _ :: tl when i = 0 -> tl
  | y :: tl -> y :: remove_at (i - 1) tl

let run_eedf_inc fs =
  let module SM = E2e_core.Single_machine in
  match Flow_shop.is_identical_length fs with
  | None -> bug Precondition "eedf-inc generator produced a non-identical-length shop"
  | Some tau ->
      let all = Eedf.single_machine_jobs fs ~tau in
      let n = Array.length all in
      let pp_rats ppf rs =
        Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf " ")
          (fun ppf r -> Format.pp_print_string ppf (Rat.to_string r))
          ppf (Array.to_list rs)
      in
      let pp_regions ppf rs =
        Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
          SM.pp_region ppf rs
      in
      (* The incremental state re-ids jobs to positions, so the scratch
         mirror must too: EDF tie-breaks read the id. *)
      let reid mirror =
        Array.of_list (List.mapi (fun i (j : SM.job) -> { j with SM.id = i }) mirror)
      in
      let check ~step st mirror =
        let jobs = reid mirror in
        let regions_verdict =
          match (SM.Inc.regions st, SM.forbidden_regions ~tau jobs) with
          | Error `Infeasible, Error `Infeasible -> Agree
          | Ok inc, Ok scr ->
              let same =
                List.length inc = List.length scr
                && List.for_all2
                     (fun (a : SM.region) (b : SM.region) ->
                       Rat.equal a.left b.left && Rat.equal a.right b.right)
                     inc scr
              in
              if same then Agree
              else
                bug Divergence "%s: forbidden regions differ: inc [%a] vs scratch [%a]" step
                  pp_regions inc pp_regions scr
          | Ok _, Error `Infeasible ->
              bug Divergence "%s: incremental built regions where scratch proves infeasible" step
          | Error `Infeasible, Ok _ ->
              bug Divergence "%s: incremental claims infeasible; scratch builds regions" step
        in
        match regions_verdict with
        | Bug _ as b -> b
        | _ -> (
            match (SM.Inc.solve st, SM.schedule ~tau jobs) with
            | Error `Infeasible, Error `Infeasible -> Agree
            | Ok inc, Ok scr ->
                if Array.length inc = Array.length scr && Array.for_all2 Rat.equal inc scr then
                  Agree
                else
                  bug Divergence "%s: schedules differ: inc [%a] vs scratch [%a]" step pp_rats
                    inc pp_rats scr
            | Ok _, Error `Infeasible ->
                bug Divergence "%s: incremental schedules an instance scratch rejects" step
            | Error `Infeasible, Ok _ ->
                bug Divergence "%s: incremental rejects an instance scratch schedules" step)
      in
      let exception Found of outcome in
      let guard step st mirror =
        match check ~step st mirror with Agree -> () | o -> raise (Found o)
      in
      let base_n = Stdlib.max 1 ((n + 1) / 2) in
      let base = Array.sub all 0 base_n in
      (try
         let st = ref (SM.Inc.make ~tau base) in
         let mirror = ref (Array.to_list base) in
         guard "base" !st !mirror;
         (* Grow back to the full job set one insertion at a time. *)
         for k = base_n to n - 1 do
           let (j : SM.job) = all.(k) in
           let at = ((k * 13) + 5) mod (List.length !mirror + 1) in
           st := SM.Inc.add_task !st ~at ~release:j.release ~deadline:j.deadline;
           mirror := insert_at at j !mirror;
           guard (Printf.sprintf "add#%d@%d" k at) !st !mirror
         done;
         (* Shrink to a single job, hitting early, middle and late
            positions as the length changes parity. *)
         let step = ref 0 in
         while List.length !mirror > 1 do
           let len = List.length !mirror in
           let at = ((len * 31) + 7) mod len in
           st := SM.Inc.remove_task !st ~at;
           mirror := remove_at at !mirror;
           incr step;
           guard (Printf.sprintf "drop#%d@%d" !step at) !st !mirror
         done;
         (* Add after drop exercises checkpoint reuse on a state whose
            history mixes both edit kinds. *)
         List.iteri
           (fun i (j : SM.job) ->
             let at = ((i * 17) + 3) mod (List.length !mirror + 1) in
             st := SM.Inc.add_task !st ~at ~release:j.release ~deadline:j.deadline;
             mirror := insert_at at j !mirror;
             guard (Printf.sprintf "readd#%d@%d" i at) !st !mirror)
           [ all.(0); all.(n - 1) ];
         Agree
       with Found o -> o)

let run cls (shop : Recurrence_shop.t) =
  let traditional run_fs =
    match to_flow_shop shop with
    | Some fs -> run_fs fs
    | None -> Skip "visit sequence is not traditional"
  in
  match
    match cls with
    | Gen.Eedf -> traditional run_eedf
    | Gen.A -> traditional run_a
    | Gen.H -> traditional run_h
    | Gen.R -> run_r shop
    | Gen.Eedf_fast -> traditional run_eedf_fast
    | Gen.Eedf_inc -> traditional run_eedf_inc
  with
  | outcome -> outcome
  | exception exn -> Bug { kind = Crash (Printexc.to_string exn); detail = "solver raised" }
