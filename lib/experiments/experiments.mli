(** Regeneration of every table and figure of the paper's evaluation.

    Each function prints, on the given formatter, the rows or series the
    corresponding paper artifact reports (see DESIGN.md for the
    experiment index and EXPERIMENTS.md for paper-vs-measured numbers).

    All randomised experiments are seeded and deterministic.  Every
    Monte Carlo trial draws from its own PRNG stream
    ({!E2e_prng.Prng.of_path} over the sweep seed, the point's
    parameters and the trial index), and the [?jobs] argument (default
    [1]) fans the trials of each point over that many domains with
    {!E2e_exec.Pool} — the printed output is byte-identical for every
    [jobs] value. *)

type sweep = {
  seed : int;
  trials : int;  (** Instances per point. *)
  n_tasks : int;
  n_processors : int;
}

val default_fig9a : sweep
(** 4 tasks on 4 processors, 500 trials per point. *)

val default_fig9b : sweep
(** 6 tasks on 4 processors. *)

val default_fig10 : sweep
(** 10 tasks on 4 processors. *)

val success_rate :
  ?jobs:int -> sweep -> stdev:float -> slack:float -> E2e_stats.Stats.proportion_ci
(** Probability that Algorithm H finds a feasible schedule on
    feasible-by-construction instances (the quantity plotted in
    Figures 9 and 10), with its 90% confidence interval. *)

val table1 : Format.formatter -> unit
(** Table 1 + Figure 3: the Algorithm R worked example. *)

val table2 : Format.formatter -> unit
(** Table 2 + Figure 5: the Algorithm A worked example. *)

val table3 : Format.formatter -> unit
(** Table 3 + Figure 8: Algorithm H before/after compaction. *)

val fig9a : ?sweep:sweep -> ?jobs:int -> Format.formatter -> unit
(** Figure 9(a): success rate vs slack, stdev in {0.1, 0.2, 0.5}. *)

val fig9b : ?sweep:sweep -> ?jobs:int -> Format.formatter -> unit
(** Figure 9(b): same sweep with 6 tasks. *)

val fig10 : ?sweep:sweep -> ?jobs:int -> Format.formatter -> unit
(** Figure 10: 10 tasks, stdev 0.5, larger slacks. *)

val table4 : Format.formatter -> unit
(** Table 4: periodic flow shop schedulable by phase postponement,
    analysis cross-checked by simulation. *)

val table5 : Format.formatter -> unit
(** Table 5: the pair needing deadlines postponed ~10.6% past the
    period, plus the 0.83 -> 1/m utilization-cap observation. *)

val section6 : Format.formatter -> unit
(** Section 6: processor sharing between two flow shops. *)

val nonpermutation : Format.formatter -> unit
(** Witness for the Section 4 remark: an instance feasible only by
    non-permutation schedules, with the branch-and-bound witness and the
    failing permutation search side by side. *)

val fig9_extensions : ?sweep:sweep -> ?jobs:int -> Format.formatter -> unit
(** Extension figure: the Figure 9(b) slack sweep (stdev 0.5) with every
    scheduler in the repository overlaid — Algorithm H, the H portfolio,
    greedy list-EDF, preemptive EDF, local search, and exact permutation
    search as the ceiling. *)

val periodic_sweep : ?trials:int -> ?seed:int -> ?jobs:int -> Format.formatter -> unit
(** Extension figure: acceptance ratio of random periodic flow shops as
    per-processor utilization grows, under Equation (1), the EDF density
    criterion, and exact response-time analysis — the schedulability
    curves implied by Section 5's closing remark. *)

val ablation : ?sweep:sweep -> ?jobs:int -> Format.formatter -> unit
(** Design-choice ablations: forbidden regions on/off, compaction
    on/off, bottleneck choice, Algorithm H vs exhaustive permutation
    search and vs greedy list-EDF. *)

val all : ?jobs:int -> Format.formatter -> unit
(** Everything above, in paper order. *)
