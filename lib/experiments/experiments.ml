module Rat = E2e_rat.Rat
module Prng = E2e_prng.Prng
module Stats = E2e_stats.Stats
module Task = E2e_model.Task
module Flow_shop = E2e_model.Flow_shop
module Visit = E2e_model.Visit
module Recurrence_shop = E2e_model.Recurrence_shop
module Periodic_shop = E2e_model.Periodic_shop
module Schedule = E2e_schedule.Schedule
module Eedf = E2e_core.Eedf
module Algo_r = E2e_core.Algo_r
module Algo_a = E2e_core.Algo_a
module Algo_h = E2e_core.Algo_h
module Exhaustive = E2e_baselines.Exhaustive
module List_edf = E2e_baselines.List_edf
module Gen = E2e_workload.Feasible_gen
module Paper = E2e_workload.Paper_instances
module Rm_bounds = E2e_periodic.Rm_bounds
module Analysis = E2e_periodic.Analysis
module Pipeline_sim = E2e_sim.Pipeline_sim
module Partition = E2e_partition.Partition
module Obs = E2e_obs.Obs
module Pool = E2e_exec.Pool

type sweep = { seed : int; trials : int; n_tasks : int; n_processors : int }

let default_fig9a = { seed = 1992; trials = 500; n_tasks = 4; n_processors = 4 }
let default_fig9b = { seed = 1992; trials = 500; n_tasks = 6; n_processors = 4 }
let default_fig10 = { seed = 1992; trials = 500; n_tasks = 10; n_processors = 4 }

(* Every Monte Carlo point below is a batch of pure per-trial jobs: trial
   [k] of a point draws from its own PRNG stream, derived with
   [Prng.of_path] from the sweep seed, the point's parameters and [k].
   No generator is shared across trials, so results — and the printed
   output — are byte-identical whatever [jobs] count runs them and in
   whatever order the pool's domains pick them up. *)

let fkey x = int_of_float (Float.round (x *. 1000.))

let count_where f rows = Array.fold_left (fun acc r -> if f r then acc + 1 else acc) 0 rows

let success_rate ?(jobs = 1) sweep ~stdev ~slack =
  let params =
    {
      Gen.n_tasks = sweep.n_tasks;
      n_processors = sweep.n_processors;
      mean_tau = 1.0;
      stdev;
      slack_factor = slack;
    }
  in
  let trial k =
    let g = Prng.of_path [| sweep.seed; fkey stdev; fkey slack; k |] in
    let shop = Gen.generate g params in
    Obs.incr "experiments.instances";
    match Algo_h.schedule shop with
    | Ok _ ->
        Obs.incr "experiments.feasible_found";
        true
    | Error _ -> false
  in
  let successes = count_where Fun.id (Pool.init ~jobs sweep.trials trial) in
  Stats.wilson_interval ~successes ~trials:sweep.trials ~z:Stats.z_90

let hr ppf = Format.fprintf ppf "%s@." (String.make 72 '-')

(* ------------------------------------------------------------------ *)
(* Worked examples: Tables 1-3 / Figures 3, 5, 8.                      *)

let print_recurrent_instance ppf (shop : Recurrence_shop.t) =
  Format.fprintf ppf "%a@." Recurrence_shop.pp shop

let table1 ppf =
  Format.fprintf ppf "Table 1 / Figure 3: Algorithm R on a flow shop with recurrence@.";
  hr ppf;
  let shop = Paper.table1 () in
  Format.fprintf ppf "visit sequence %a" Visit.pp shop.Recurrence_shop.visit;
  (match Visit.single_loop shop.Recurrence_shop.visit with
  | Some { Visit.first_pos; span; reused } ->
      Format.fprintf ppf "  (loop: decision stage %d, span %d, %d reused processors)@."
        (first_pos + 1) span reused
  | None -> Format.fprintf ppf "@.");
  print_recurrent_instance ppf shop;
  match Algo_r.schedule shop with
  | Ok s ->
      (match Algo_r.decision_trace shop with
      | Ok trace ->
          Format.fprintf ppf "dispatches on the reused processor:@.";
          List.iter
            (fun { Algo_r.task; stage; start } ->
              Format.fprintf ppf "  T%d stage %d at t=%a@." (task + 1) (stage + 1) Rat.pp start)
            trace
      | Error _ -> ());
      Format.fprintf ppf "@.%a@.Gantt:@.%a@.feasible: %b@." Schedule.pp_table s
        (Schedule.pp_gantt ?unit_time:None) s (Schedule.is_feasible s)
  | Error e -> Format.fprintf ppf "FAILED: %a@." Algo_r.pp_error e

let table2 ppf =
  Format.fprintf ppf "@.Table 2 / Figure 5: Algorithm A on a homogeneous task set@.";
  hr ppf;
  let shop = Paper.table2 () in
  Format.fprintf ppf "%a@.bottleneck processor: P%d@.@." Flow_shop.pp shop
    (Flow_shop.bottleneck shop + 1);
  match Algo_a.schedule shop with
  | Ok s ->
      Format.fprintf ppf "%a@.Gantt:@.%a@.feasible: %b  (note the deliberate idle time upstream)@."
        Schedule.pp_table s (Schedule.pp_gantt ?unit_time:None) s (Schedule.is_feasible s)
  | Error _ -> Format.fprintf ppf "FAILED (instance should be feasible)@."

let table3 ppf =
  Format.fprintf ppf "@.Table 3 / Figure 8: Algorithm H before and after compaction@.";
  hr ppf;
  let shop = Paper.table3 () in
  Format.fprintf ppf "%a@.@." Flow_shop.pp shop;
  let report = Algo_h.run shop in
  Format.fprintf ppf "bottleneck (after inflation): P%d@." (report.Algo_h.bottleneck + 1);
  (match report.Algo_h.raw with
  | Some raw ->
      Format.fprintf ppf "@.(a) before compaction:@.%a@.violations:@." Schedule.pp_table raw;
      List.iter
        (fun v -> Format.fprintf ppf "  %a@." Schedule.pp_violation v)
        (Schedule.violations raw)
  | None -> Format.fprintf ppf "Algorithm A failed on the inflated set@.");
  match report.Algo_h.result with
  | Ok s ->
      Format.fprintf ppf "@.(b) after compaction:@.%a@.feasible: %b@." Schedule.pp_table s
        (Schedule.is_feasible s)
  | Error f -> Format.fprintf ppf "@.(b) %a@." Algo_h.pp_failure f

(* ------------------------------------------------------------------ *)
(* Figures 9 and 10: success rate of Algorithm H.                      *)

let print_series ppf ~title ~jobs sweep ~stdevs ~slacks =
  Format.fprintf ppf "@.%s@." title;
  hr ppf;
  Format.fprintf ppf
    "success rate of Algorithm H on feasible task sets (%d trials/point, 90%% CI)@."
    sweep.trials;
  Format.fprintf ppf "%8s" "slack";
  List.iter (fun sd -> Format.fprintf ppf "  %20s" (Printf.sprintf "stdev = %.1f" sd)) stdevs;
  Format.fprintf ppf "@.";
  List.iter
    (fun slack ->
      Format.fprintf ppf "%8.2f" slack;
      List.iter
        (fun stdev ->
          let ci = success_rate ~jobs sweep ~stdev ~slack in
          Format.fprintf ppf "  %20s"
            (Printf.sprintf "%.3f [%.3f,%.3f]" ci.Stats.estimate ci.Stats.lo ci.Stats.hi))
        stdevs;
      Format.fprintf ppf "@.")
    slacks

let fig9a ?(sweep = default_fig9a) ?(jobs = 1) ppf =
  print_series ppf
    ~title:
      (Printf.sprintf "Figure 9(a): %d tasks on %d processors" sweep.n_tasks sweep.n_processors)
    ~jobs sweep ~stdevs:[ 0.1; 0.2; 0.5 ]
    ~slacks:[ 0.4; 0.6; 0.8; 1.0; 1.2; 1.5 ]

let fig9b ?(sweep = default_fig9b) ?(jobs = 1) ppf =
  print_series ppf
    ~title:
      (Printf.sprintf "Figure 9(b): %d tasks on %d processors" sweep.n_tasks sweep.n_processors)
    ~jobs sweep ~stdevs:[ 0.1; 0.2; 0.5 ]
    ~slacks:[ 0.4; 0.6; 0.8; 1.0; 1.2; 1.5 ]

let fig10 ?(sweep = default_fig10) ?(jobs = 1) ppf =
  print_series ppf
    ~title:
      (Printf.sprintf "Figure 10: %d tasks on %d processors, larger slack" sweep.n_tasks
         sweep.n_processors)
    ~jobs sweep ~stdevs:[ 0.5 ] ~slacks:[ 2.0; 3.0; 4.0; 5.0; 6.0 ]

let fig9_extensions ?(sweep = { default_fig9b with trials = 300 }) ?(jobs = 1) ppf =
  Format.fprintf ppf "@.Extension figure: every scheduler on the Figure 9(b) sweep (stdev 0.5)@.";
  hr ppf;
  Format.fprintf ppf "%d tasks x %d processors, %d feasible instances per point@."
    sweep.n_tasks sweep.n_processors sweep.trials;
  let schedulers =
    [
      ("Algorithm H", fun shop -> Result.is_ok (Algo_h.schedule shop));
      ("H portfolio", fun shop -> Result.is_ok (E2e_core.H_portfolio.schedule shop));
      ("greedy list-EDF", fun shop -> List_edf.feasible (Recurrence_shop.of_traditional shop));
      ( "preemptive EDF",
        fun shop -> E2e_sim.Preemptive_flow_sim.feasible (Recurrence_shop.of_traditional shop) );
      ( "local search",
        fun shop -> Option.is_some (E2e_baselines.Local_search.schedule shop) );
      ( "exhaustive (ceiling)",
        fun shop -> Exhaustive.permutation_feasible shop );
    ]
  in
  Format.fprintf ppf "%8s" "slack";
  List.iter (fun (name, _) -> Format.fprintf ppf "  %20s" name) schedulers;
  Format.fprintf ppf "@.";
  List.iter
    (fun slack ->
      Format.fprintf ppf "%8.2f" slack;
      let params =
        {
          Gen.n_tasks = sweep.n_tasks;
          n_processors = sweep.n_processors;
          mean_tau = 1.0;
          stdev = 0.5;
          slack_factor = slack;
        }
      in
      (* One instance per trial, judged by every scheduler, so the
         columns compare on identical task sets. *)
      let trial k =
        let g = Prng.of_path [| sweep.seed; fkey slack; k |] in
        let shop = Gen.generate g params in
        Obs.incr "experiments.instances";
        let outcomes = List.map (fun (_, solves) -> solves shop) schedulers in
        List.iter (fun ok -> if ok then Obs.incr "experiments.feasible_found") outcomes;
        Array.of_list outcomes
      in
      let rows = Pool.init ~jobs sweep.trials trial in
      List.iteri
        (fun column _ ->
          let ok = count_where (fun row -> row.(column)) rows in
          Format.fprintf ppf "  %20s"
            (Printf.sprintf "%.3f" (float_of_int ok /. float_of_int sweep.trials)))
        schedulers;
      Format.fprintf ppf "@.")
    [ 0.4; 0.8; 1.2 ]

let periodic_sweep ?(trials = 300) ?(seed = 3) ?(jobs = 1) ppf =
  Format.fprintf ppf
    "@.Extension figure: periodic schedulability curves (2-processor flow shops, 4 jobs)@.";
  hr ppf;
  Format.fprintf ppf
    "fraction of random systems schedulable within the period, %d systems per point@." trials;
  Format.fprintf ppf "%8s  %14s  %14s  %14s@." "u/proc" "Equation 1" "EDF density" "exact RTA";
  let eq1 sys =
    match Analysis.analyse sys with Analysis.Schedulable _ -> true | _ -> false
  in
  let edf sys =
    let policies = Array.make sys.Periodic_shop.processors Analysis.Edf in
    match Analysis.analyse_policies ~policies sys with
    | Analysis.Schedulable _ -> true
    | _ -> false
  in
  let rta sys =
    match E2e_periodic.Response_time.analyse sys with
    | E2e_periodic.Response_time.Schedulable _ -> true
    | _ -> false
  in
  List.iter
    (fun u ->
      let trial k =
        let g = Prng.of_path [| seed; fkey u; k |] in
        let sys = Gen.periodic g ~n:4 ~m:2 ~utilization:u in
        Obs.incr "experiments.instances";
        let verdicts = [| eq1 sys; edf sys; rta sys |] in
        Array.iter (fun ok -> if ok then Obs.incr "experiments.feasible_found") verdicts;
        verdicts
      in
      let rows = Pool.init ~jobs trials trial in
      let frac column =
        float_of_int (count_where (fun row -> row.(column)) rows) /. float_of_int trials
      in
      Format.fprintf ppf "%8.2f  %14.3f  %14.3f  %14.3f@." u (frac 0) (frac 1) (frac 2))
    [ 0.2; 0.3; 0.4; 0.45; 0.5; 0.55; 0.6; 0.7 ]

(* ------------------------------------------------------------------ *)
(* Tables 4 and 5: periodic flow shops.                                *)

let print_periodic ppf sys =
  Format.fprintf ppf "%a@." Periodic_shop.pp sys;
  Array.iteri
    (fun j u -> Format.fprintf ppf "  u_%d = %a@." (j + 1) Rat.pp_decimal u)
    (Periodic_shop.utilizations sys)

let validate ppf sys deltas factor =
  let horizon = 20.0 *. Rat.to_float (Periodic_shop.hyperperiod sys) in
  let report =
    Pipeline_sim.simulate ~deadline_factor:factor ~horizon ~policy:(`Postponed_phases deltas) sys
  in
  Format.fprintf ppf
    "simulation (horizon %.0f): %d requests, %d precedence violations, %d deadline misses@."
    horizon report.Pipeline_sim.requests report.Pipeline_sim.precedence_violations
    report.Pipeline_sim.deadline_misses;
  Array.iteri
    (fun i resp ->
      Format.fprintf ppf "  J%d worst measured end-to-end %.3f  (analytic bound %.3f)@." (i + 1)
        resp
        (Analysis.response_bound sys deltas i))
    report.Pipeline_sim.end_to_end

let table4 ppf =
  Format.fprintf ppf "@.Table 4: periodic jobs schedulable by phase postponement@.";
  hr ppf;
  let sys = Paper.table4 () in
  print_periodic ppf sys;
  match Analysis.analyse sys with
  | Analysis.Schedulable { deltas; total } ->
      Format.fprintf ppf "delta_1 = %.3f, delta_2 = %.3f, sum = %.3f <= 1@." deltas.(0)
        deltas.(1) total;
      Array.iteri
        (fun i (job : Periodic_shop.job) ->
          let p = Rat.to_float job.Periodic_shop.period in
          Format.fprintf ppf
            "  J%d: phase on P2 postponed by delta_1 p = %.3f; completes within %.3f@." (i + 1)
            (deltas.(0) *. p)
            (total *. p))
        sys.Periodic_shop.jobs;
      validate ppf sys deltas 1.0;
      Format.fprintf ppf
        "(paper's surviving numbers: delta1 p = 3.3, 4.125, 6.6; J1 completes by 6.9)@.";
      (* Extension: exact response-time analysis is strictly tighter than
         Equation (1). *)
      (match E2e_periodic.Response_time.analyse sys with
      | E2e_periodic.Response_time.Schedulable { end_to_end; _ } ->
          Format.fprintf ppf "exact RTA end-to-end bounds:";
          Array.iter (fun r -> Format.fprintf ppf " %a" Rat.pp_decimal r) end_to_end;
          Format.fprintf ppf "  (Equation 1 gave 6.9, 8.625, 13.8)@."
      | v -> Format.fprintf ppf "RTA: %a@." E2e_periodic.Response_time.pp_verdict v)
  | v -> Format.fprintf ppf "unexpected verdict: %a@." Analysis.pp_verdict v

let table5 ppf =
  Format.fprintf ppf "@.Table 5: full pair needs deadlines postponed past the period@.";
  hr ppf;
  let sys = Paper.table5 () in
  print_periodic ppf sys;
  Format.fprintf ppf "single-processor Liu-Layland bound (n=2): u_max(1) = %.3f@."
    (Rm_bounds.liu_layland 2);
  Format.fprintf ppf
    "with end-of-period deadlines on an m-processor flow shop the per-processor cap is 1/m:@.";
  List.iter
    (fun m -> Format.fprintf ppf "  m = %d -> cap %.3f@." m (Analysis.per_processor_cap ~m))
    [ 1; 2; 4 ];
  match Analysis.analyse sys with
  | Analysis.Schedulable_postponed { deltas; total } ->
      Format.fprintf ppf
        "deltas = (%.3f, %.3f): sum %.3f > 1, so deadlines must be postponed ~%.1f%%@."
        deltas.(0) deltas.(1) total
        ((total -. 1.0) *. 100.0);
      validate ppf sys deltas total;
      Format.fprintf ppf "(paper: delta = 0.553 per processor, completion within 1.106 p_i)@.";
      (* Extension: per-processor EDF (density criterion) needs only
         delta = u = 0.55, slightly better than RM's 0.553. *)
      (match Analysis.analyse_policies ~policies:[| Analysis.Edf; Analysis.Edf |] sys with
      | Analysis.Schedulable_postponed { total = edf_total; _ } | Analysis.Schedulable { total = edf_total; _ } ->
          Format.fprintf ppf
            "with per-processor EDF instead of RM: postponement factor %.3f (vs %.3f)@."
            edf_total total
      | Analysis.Not_schedulable _ -> ());
      (* Extension: the exact busy-period analysis shows this pair in
         fact fits within the period — Equation (1)'s postponement is
         bound pessimism, not real lateness. *)
      (match E2e_periodic.Response_time.analyse sys with
      | E2e_periodic.Response_time.Schedulable { end_to_end; _ } ->
          Format.fprintf ppf "exact RTA: schedulable within the period (end-to-end";
          Array.iter (fun r -> Format.fprintf ppf " %a" Rat.pp_decimal r) end_to_end;
          Format.fprintf ppf " vs periods 2, 5)@."
      | v -> Format.fprintf ppf "exact RTA: %a@." E2e_periodic.Response_time.pp_verdict v)
  | v -> Format.fprintf ppf "unexpected verdict: %a@." Analysis.pp_verdict v

(* ------------------------------------------------------------------ *)
(* Section 6: processor sharing.                                       *)

let section6 ppf =
  Format.fprintf ppf "@.Section 6: utilization-proportional processor sharing@.";
  hr ppf;
  let a = Paper.table4 () in
  let b =
    Periodic_shop.of_params
      [|
        (Rat.of_int 8, [| Rat.of_decimal_string "0.8"; Rat.of_decimal_string "0.6" |]);
        (Rat.of_int 40, [| Rat.of_int 4; Rat.of_int 2 |]);
      |]
  in
  Format.fprintf ppf "flow shop A:@.";
  print_periodic ppf a;
  Format.fprintf ppf "flow shop B:@.";
  print_periodic ppf b;
  for j = 0 to 1 do
    let shares = Partition.periodic_shares [ a; b ] ~processor:j in
    Format.fprintf ppf "P%d shares: A %a, B %a@." (j + 1) Rat.pp_decimal shares.(0)
      Rat.pp_decimal shares.(1)
  done;
  match Partition.partition_periodic [ a; b ] with
  | [ a'; b' ] ->
      List.iter
        (fun (name, sys) ->
          Format.fprintf ppf "@.%s on its virtual processors:@." name;
          print_periodic ppf sys;
          Format.fprintf ppf "  verdict: %a@." Analysis.pp_verdict (Analysis.analyse sys))
        [ ("A", a'); ("B", b') ]
  | _ -> assert false

let nonpermutation ppf =
  Format.fprintf ppf "@.Non-permutation witness (Section 4 remark)@.";
  hr ppf;
  Format.fprintf ppf
    "\"In flow shops with more than two processors it is possible that the order of@.execution of subtasks may vary from processor to processor in all feasible@.schedules.\"  A seeded search over random instances found:@.@.";
  let shop = Paper.non_permutation_witness () in
  Format.fprintf ppf "%a@.@." Flow_shop.pp shop;
  Format.fprintf ppf "feasible permutation orders (exhaustive search): %d@."
    (E2e_baselines.Exhaustive.count_feasible_orders shop);
  match E2e_baselines.Branch_bound.solve shop with
  | E2e_baselines.Branch_bound.Feasible s ->
      Format.fprintf ppf "branch-and-bound witness (non-permutation, feasible: %b):@.%a@."
        (Schedule.is_feasible s) Schedule.pp_table s;
      Format.fprintf ppf
        "=> Algorithm H, which only searches permutation schedules, cannot solve this@.instance no matter how it orders the bottleneck (its other failure cause).@."
  | _ -> Format.fprintf ppf "unexpected: oracle did not confirm feasibility@."

(* ------------------------------------------------------------------ *)
(* Ablations.                                                          *)

let rate_of successes trials =
  Printf.sprintf "%.3f" (float_of_int successes /. float_of_int trials)

let ablation ?(sweep = { seed = 7; trials = 300; n_tasks = 6; n_processors = 4 }) ?(jobs = 1)
    ppf =
  Format.fprintf ppf "@.Ablations (%d trials each)@." sweep.trials;
  hr ppf;
  (* 1. Forbidden regions on/off, on random identical-length sets whose
     release times are not multiples of tau (the case where the paper
     needs the Garey et al. machinery).  EEDF is optimal, so its success
     rate is exactly the fraction of feasible instances; the gap to plain
     EDF is the value of the forbidden regions. *)
  let regions_trial k =
    let g = Prng.of_path [| sweep.seed; 1; k |] in
    let shop =
      Gen.identical_length g ~n:sweep.n_tasks ~m:sweep.n_processors ~tau:(Rat.make 3 2)
        ~window:(2 * sweep.n_tasks)
    in
    Obs.incr "experiments.instances";
    let with_regions = Result.is_ok (Eedf.schedule shop) in
    let without_regions =
      match Eedf.schedule_no_regions shop with
      | Ok s when Schedule.is_feasible s -> true
      | _ -> false
    in
    (with_regions, without_regions)
  in
  let rows = Pool.init ~jobs sweep.trials regions_trial in
  Format.fprintf ppf
    "EEDF on random identical-length sets:     with forbidden regions %s (= exact feasible fraction) | plain EDF %s@."
    (rate_of (count_where fst rows) sweep.trials)
    (rate_of (count_where snd rows) sweep.trials);
  (* 2. Compaction on/off and 3. bottleneck choice, on Figure-9 style
     sets.  Each trial judges one instance under every variant; columns
     index into the verdict array. *)
  let params =
    {
      Gen.n_tasks = sweep.n_tasks;
      n_processors = sweep.n_processors;
      mean_tau = 1.0;
      stdev = 0.5;
      slack_factor = 0.8;
    }
  in
  let variant_trial k =
    let g = Prng.of_path [| sweep.seed; 2; k |] in
    let shop = Gen.generate g params in
    Obs.incr "experiments.instances";
    let worst =
      let maxima = Flow_shop.max_proc_times shop in
      let best = ref 0 in
      for j = 1 to shop.Flow_shop.processors - 1 do
        if Rat.(maxima.(j) < maxima.(!best)) then best := j
      done;
      !best
    in
    [|
      Result.is_ok (Algo_h.run shop).Algo_h.result;
      Result.is_ok (Algo_h.run ~compact:false shop).Algo_h.result;
      Result.is_ok (Algo_h.run ~bottleneck:worst shop).Algo_h.result;
      Result.is_ok (E2e_core.H_portfolio.schedule shop);
      List_edf.feasible (Recurrence_shop.of_traditional shop);
      E2e_sim.Preemptive_flow_sim.feasible (Recurrence_shop.of_traditional shop);
      Option.is_some (E2e_baselines.Local_search.schedule shop);
    |]
  in
  let rows = Pool.init ~jobs sweep.trials variant_trial in
  let col i = rate_of (count_where (fun row -> row.(i)) rows) sweep.trials in
  Format.fprintf ppf
    "Algorithm H (stdev 0.5, slack 0.8):       full %s | no compaction %s | worst bottleneck %s | portfolio %s@."
    (col 0) (col 1) (col 2) (col 3);
  Format.fprintf ppf
    "other heuristics, same instances:         greedy list-EDF %s | preemptive EDF %s | local search %s@."
    (col 4) (col 5) (col 6);
  (* 4. H vs exhaustive permutation search: the two named causes of H's
     sub-optimality.  On feasible-by-construction instances (which always
     have a permutation witness) every H failure is a wrong bottleneck
     order, since a feasible permutation schedule provably exists. *)
  let n_small = min sweep.n_tasks 5 in
  let trials_small = min sweep.trials 200 in
  let exact_trial k =
    let g = Prng.of_path [| sweep.seed; 3; k |] in
    let shop =
      Gen.generate g
        {
          Gen.n_tasks = n_small;
          n_processors = 3;
          mean_tau = 1.0;
          stdev = 0.5;
          slack_factor = 0.8;
        }
    in
    (Result.is_ok (Algo_h.schedule shop), Exhaustive.permutation_feasible shop)
  in
  let rows = Pool.init ~jobs trials_small exact_trial in
  Format.fprintf ppf
    "H vs exhaustive on feasible sets (%dx3):   H %s | exhaustive permutation search %s (every H failure = wrong bottleneck order)@."
    n_small
    (rate_of (count_where fst rows) trials_small)
    (rate_of (count_where snd rows) trials_small)

let all ?(jobs = 1) ppf =
  table1 ppf;
  table2 ppf;
  table3 ppf;
  fig9a ~jobs ppf;
  fig9b ~jobs ppf;
  fig10 ~jobs ppf;
  table4 ppf;
  table5 ppf;
  section6 ppf;
  nonpermutation ppf;
  fig9_extensions ~jobs ppf;
  periodic_sweep ~jobs ppf;
  ablation ~jobs ppf
