(** Status checking: bounded shard probes and the liveness loop.

    A probe is one short-lived protocol session against a shard's
    serving port — connect (bounded by [timeout]), greeting, [ping],
    [pong] — exactly what a client would experience.  The checker
    thread probes every registered shard each [interval] and feeds
    outcomes to {!Registry.note_probe}, so a shard is marked dead
    after the registry's fail-threshold consecutive failures and
    revived by its first successful probe. *)

val connect :
  ?timeout:float ->
  ?rw_timeout:bool ->
  host:string ->
  port:int ->
  unit ->
  (Unix.file_descr, string) result
(** TCP connect with a bounded handshake ([timeout], default 1s; the
    blocking connect runs non-blocking under a [select] deadline).
    [rw_timeout] (default [false]) additionally arms
    [SO_RCVTIMEO]/[SO_SNDTIMEO] for bounded one-shot sessions; the
    dispatcher's persistent upstream connections leave it off so an
    idle socket never times out a read. *)

val rpc :
  ?timeout:float ->
  host:string ->
  port:int ->
  string list ->
  (string list, string) result
(** One bounded session: connect, consume the greeting (must start
    with ["e2e-"]), send each request line and read its reply line,
    send [quit], close.  Every read and write is bounded by [timeout]
    (default 1s); any timeout or short read fails the call.  Used by
    the prober ([ping]), the dispatcher's metrics aggregation and the
    shard-side registration hook. *)

val probe : ?timeout:float -> host:string -> port:int -> unit -> bool
(** [rpc ["ping"]], true iff the reply is a [pong]. *)

type checker

val start :
  ?interval:float ->
  ?timeout:float ->
  ?on_event:(string -> [ `Died | `Revived ] -> unit) ->
  Registry.t ->
  checker
(** Spawn the checker thread: probe every shard in the registry each
    [interval] (default 1s) seconds and record outcomes.  [on_event]
    observes state transitions (for logging). *)

val stop : checker -> unit
(** Stop and join the checker thread (prompt: the loop naps in short
    slices).  Idempotent. *)
