(** Shard registry: membership, consistent-hash routing and liveness.

    The dispatcher's map from shop names to shard addresses.  Shards
    sit on a consistent-hash ring ([vnodes] virtual positions each,
    FNV-1a); a shop routes to the first shard at or after its own hash
    position, walking forward past dead shards.  Consequences:

    - {b stickiness}: all requests for a shop land on the same shard
      while it lives — the shop's committed admission state lives
      wholly on that shard;
    - {b failover}: when a shard dies, its shops move to the next live
      shard in hash order (where they are admitted fresh) and {e no
      other shop moves};
    - {b determinism}: routing is a pure function of the membership +
      liveness state, never of request history.

    Liveness is two-sided: the status checker reports probe outcomes
    ({!note_probe}; [fail_threshold] consecutive failures mark a shard
    dead, one success revives it), and upstream connections report
    hard I/O errors ({!report_down}), which mark a shard dead
    immediately.  All operations are thread-safe. *)

type state = Live | Dead

type entry = private {
  id : string;  (** ["host:port"] — the registration key. *)
  host : string;
  port : int;
  mutable state : state;
  mutable fails : int;  (** Consecutive probe failures. *)
}

type t

val fnv1a : string -> int
(** The ring hash (FNV-1a with a murmur3-style finalizer, folded into
    the positive int range) — exposed for tests.  The finalizer
    matters: ring inputs share long prefixes and plain FNV-1a would
    cluster them on one arc. *)

val parse_id : string -> (string * int) option
(** Parse ["host:port"]; [None] on malformed input. *)

val id_of : host:string -> port:int -> string

val default_vnodes : int
(** 64 — balances shop spread (±10%-ish at 4 shards) against ring
    size. *)

val create : ?fail_threshold:int -> ?vnodes:int -> (string * int) list -> t
(** A registry over the given static [(host, port)] shards, all
    initially [Live].  Duplicates are collapsed.  [fail_threshold]
    (default 3) is the consecutive-probe-failure count that marks a
    shard dead.  @raise Invalid_argument on non-positive parameters. *)

val add : t -> host:string -> port:int -> [ `Added | `Already ]
(** Dynamic registration ([ctl/1 register]).  A re-registered shard
    keeps its entry ([`Already]); use {!note_probe} to revive it. *)

val remove : t -> string -> bool
(** Deregister by id; [false] when unknown. *)

val find_opt : t -> string -> entry option

val route : t -> string -> entry option
(** The live shard owning this shop, walking past dead shards ([None]
    when no shard is live).  Bumps the failover counter when the
    shop's home shard is dead. *)

val home : t -> string -> entry option
(** The shard that would own this shop if every shard were live —
    {!route} = {!home} in a fully-live cluster (exposed for tests and
    balance accounting). *)

val note_probe : t -> string -> ok:bool -> [ `Died | `Revived | `Unchanged | `Unknown ]
(** Record one status-checker probe outcome. *)

val report_down : t -> string -> bool
(** Mark a shard dead immediately (hard upstream I/O error); [true]
    when this call changed its state. *)

val snapshot : t -> (string * state * int) list
(** [(id, state, consecutive fails)] per shard, sorted by id. *)

val live : t -> entry list

type stats = {
  shards : int;
  live_shards : int;
  failovers : int;  (** Routes whose home shard was dead. *)
  deaths : int;
  revivals : int;
}

val stats : t -> stats
