(* Status checker: liveness probing for the shard registry.

   A probe is one short-lived protocol session — connect (bounded by
   [timeout]), read the greeting, send [ping], expect [pong ...] —
   against a shard's serving port, exactly what a client would
   experience.  The checker thread probes every registered shard each
   [interval] and feeds outcomes to {!Registry.note_probe}: after the
   registry's fail-threshold consecutive failures the shard is marked
   dead (its shops fail over), and the first successful probe revives
   it.  [rpc] is the same bounded session machinery running arbitrary
   request lines — the dispatcher's metrics aggregation and the
   shard-side registration hook reuse it. *)

module Wire = E2e_serve.Wire

(* [rw_timeout] arms SO_RCVTIMEO/SO_SNDTIMEO for bounded one-shot
   sessions; persistent upstream connections leave it off — an idle
   socket timing out a read is not a dead shard. *)
let connect_gen ~host ~port ~rw_timeout timeout =
  match E2e_serve.Server.resolve_host host with
  | exception Failure e -> Error e
  | inet -> (
      let addr = Unix.ADDR_INET (inet, port) in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      let fail msg =
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Error msg
      in
      Unix.set_nonblock fd;
      let pending =
        match Unix.connect fd addr with
        | () -> false
        | exception Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK | Unix.EAGAIN), _, _)
          ->
            true
        | exception Unix.Unix_error (e, _, _) ->
            ignore (fail "");
            raise (Unix.Unix_error (e, "connect", ""))
      in
      match
        if not pending then Ok ()
        else
          match Unix.select [] [ fd ] [] timeout with
          | _, [ _ ], _ -> (
              match Unix.getsockopt_error fd with
              | None -> Ok ()
              | Some e -> Error (Unix.error_message e))
          | _ -> Error "connect timeout"
      with
      | exception Unix.Unix_error (e, _, _) -> fail (Unix.error_message e)
      | Error msg -> fail msg
      | Ok () ->
          Unix.clear_nonblock fd;
          (* Bounded session: reads and writes past the deadline fail
             with EAGAIN, which the Wire reader surfaces as EOF. *)
          if rw_timeout then
            (try
               Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout;
               Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout
             with Unix.Unix_error _ -> ());
          Ok fd)

let connect ?(timeout = 1.0) ?(rw_timeout = false) ~host ~port () =
  connect_gen ~host ~port ~rw_timeout timeout

(* One bounded request/reply session: read the greeting, then one reply
   line per request line, then [quit].  Any timeout, short read or
   malformed greeting fails the whole call. *)
let rpc ?(timeout = 1.0) ~host ~port lines =
  match connect_gen ~host ~port ~rw_timeout:true timeout with
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | Error e -> Error e
  | Ok fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let r = Wire.make_reader fd in
          let read () =
            match Wire.read_line r with
            | `Line l -> Some l
            | `Eof | `Too_long | `Error _ -> None
          in
          match read () with
          | None -> Error "no greeting"
          | Some greeting when not (String.length greeting >= 4 && String.sub greeting 0 4 = "e2e-")
            ->
              Error (Printf.sprintf "unexpected greeting %S" greeting)
          | Some _ -> (
              match
                List.fold_left
                  (fun acc line ->
                    match acc with
                    | Error _ as e -> e
                    | Ok replies -> (
                        match Wire.write_all fd (line ^ "\n") with
                        | exception Unix.Unix_error (e, _, _) ->
                            Error (Unix.error_message e)
                        | () -> (
                            match read () with
                            | None -> Error "connection closed mid-session"
                            | Some reply -> Ok (reply :: replies))))
                  (Ok []) lines
              with
              | Error _ as e -> e
              | Ok replies ->
                  (try Wire.write_all fd "quit\n" with Unix.Unix_error _ -> ());
                  Ok (List.rev replies)))

let probe ?(timeout = 1.0) ~host ~port () =
  match rpc ~timeout ~host ~port [ "ping" ] with
  | Ok [ reply ] -> String.length reply >= 4 && String.sub reply 0 4 = "pong"
  | Ok _ | Error _ -> false

(* ------------------------------------------------------------------ *)

type checker = {
  mutable stop : bool;
  mu : Mutex.t;
  thread : Thread.t option ref;  (* set right after create *)
}

let stopped c =
  Mutex.lock c.mu;
  let s = c.stop in
  Mutex.unlock c.mu;
  s

(* The checker loop sleeps in short slices so [stop] takes effect
   promptly without platform condition-timedwait support. *)
let rec nap c remaining =
  if (not (stopped c)) && remaining > 0. then begin
    let slice = Float.min remaining 0.05 in
    Unix.sleepf slice;
    nap c (remaining -. slice)
  end

let start ?(interval = 1.0) ?(timeout = 1.0) ?on_event registry =
  let c = { stop = false; mu = Mutex.create (); thread = ref None } in
  let loop () =
    while not (stopped c) do
      List.iter
        (fun (id, _, _) ->
          if not (stopped c) then
            match Registry.parse_id id with
            | None -> ()
            | Some (host, port) -> (
                let ok = probe ~timeout ~host ~port () in
                match Registry.note_probe registry id ~ok with
                | (`Died | `Revived) as ev ->
                    Option.iter (fun f -> f id ev) on_event
                | `Unchanged | `Unknown -> ()))
        (Registry.snapshot registry);
      nap c interval
    done
  in
  c.thread := Some (Thread.create loop ());
  c

let stop c =
  Mutex.lock c.mu;
  c.stop <- true;
  Mutex.unlock c.mu;
  Option.iter Thread.join !(c.thread)
