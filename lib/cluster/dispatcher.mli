(** The cluster front end: one listening port, N shard upstreams.

    Clients speak the ordinary [e2e-serve/1] line protocol to the
    dispatcher.  Every admission request is routed by the
    deterministic hash of its shop name ({!Registry}) and forwarded
    {e raw} to the owning shard — validation, admission semantics and
    error texts are byte-identical to a direct shard connection.
    Answered locally: [hello], [ping] ([pong e2e-dispatch/1]), [quit],
    the dispatcher's own [stats], the aggregated [metrics], and the
    [ctl/1] control protocol:

    {v
    ctl/1 register <host:port>     # add (or revive) a shard
    ctl/1 deregister <host:port>   # remove a shard
    ctl/1 shards                   # ok shards id=live|dead,...
    v}

    Reply-order contract: per client connection, replies come back in
    request order regardless of which shards answer (the same
    {!E2e_serve.Wire} slot machinery as the single-shard server).
    Each shard upstream may be widened to [upstream_conns] pipelined
    connections ({e lanes}); a client connection keeps a sticky lane
    per shard, so its own requests stay FIFO per shard while distinct
    clients spread across lanes.  A request whose shard cannot be
    reached — no live shard, connect failure, or an upstream lane
    dying mid-flight — is answered [error shard-unavailable], never
    left hanging.  A hard upstream error drains {e every} lane of that
    shard and marks it dead immediately, so subsequent shop traffic
    fails over to the next live shard in hash order; sticky lane
    assignments are invalidated (clients re-balance round-robin over
    fresh lanes on reconnect) and the status checker ({!Health})
    revives the shard when it answers probes again. *)

val version : string
(** ["e2e-dispatch/1"]. *)

val greeting : string
(** ["e2e-dispatch/1 ready"]. *)

val ctl_version : string
(** ["ctl/1"]. *)

val unavailable_reply : string
(** ["error shard-unavailable"]. *)

val relabel : shard:string -> string -> string
(** Inject a [shard="id"] label into one exposition line
    ([name value] or [name{l="v"} value]) — how per-shard series stay
    distinguishable in the aggregated [metrics] reply (exposed for
    tests). *)

type config = {
  fail_threshold : int;  (** Consecutive probe failures before a shard is dead. *)
  probe_interval : float;  (** Seconds between status-checker rounds. *)
  probe_timeout : float;  (** Bound on probes, upstream connects, metrics RPCs. *)
  vnodes : int;  (** Ring positions per shard. *)
  upstream_conns : int;  (** Pipelined connections (lanes) per shard upstream. *)
}

val default_config : config
(** [{ fail_threshold = 3; probe_interval = 1.0; probe_timeout = 1.0;
      vnodes = Registry.default_vnodes; upstream_conns = 1 }]. *)

type t

val create : ?config:config -> (string * int) list -> t
(** A dispatcher over the given static [(host, port)] shards (dynamic
    shards join via [ctl/1 register]). *)

val registry : t -> Registry.t

type shard_stats = {
  shard_id : string;
  shard_routed : int;  (** Requests ever forwarded to this shard. *)
  shard_pending : int;
      (** Upstream queue depth right now: requests queued on this
          shard's lanes or in flight awaiting its reply. *)
}

type stats = {
  routed : int;  (** Requests forwarded to shards. *)
  unavailable : int;  (** [error shard-unavailable] replies. *)
  client_read_errors : int;  (** Hard read errors on client connections. *)
  upstream_read_errors : int;  (** Hard read errors on upstream lanes. *)
  per_shard : shard_stats list;  (** Sorted by shard id. *)
  registry_stats : Registry.stats;
}

val stats : t -> stats

type sticky
(** One client connection's lane memo: which upstream lane of each
    shard its requests ride.  Pinning a lane keeps a client's
    per-shard request flow FIFO at any [upstream_conns]; a shard
    teardown invalidates the memo so the next request re-picks a lane
    round-robin (re-balancing after reconnect). *)

val sticky : unit -> sticky
(** A fresh (empty) lane memo — one per client connection. *)

val dispatch : t -> sticky:sticky -> shop:string -> string -> (string -> unit) -> unit
(** [dispatch t ~sticky ~shop line fill] routes [line] to the live
    shard owning [shop], down the [sticky] memo's lane for that shard,
    and calls [fill] exactly once with the reply line (or
    [error shard-unavailable]).  Exposed for in-process tests; the
    TCP session uses it per request line. *)

val gather_metrics : t -> string
(** The aggregated [metrics] reply: the dispatcher's own [cluster_*]
    series, then every live shard's exposition relabeled with
    [shard="id"] ([cluster_shard_up] marks reachability). *)

val serve :
  ?host:string ->
  ?max_connections:int ->
  ?accept_pool:int ->
  ?window:int ->
  ?ready:(int -> unit) ->
  port:int ->
  t ->
  unit
(** Listen on [host:port] (default host 127.0.0.1; [port = 0] binds an
    ephemeral port, reported through [ready]) and serve clients with
    an [accept_pool] (default 4) of reader domains, each connection
    pipelining up to [window] (default 64) outstanding replies.  Also
    starts the status-checker thread for the lifetime of the listener.
    [max_connections] bounds total accepted connections, after which
    the dispatcher drains and returns.  Returns after {!shutdown}. *)

val shutdown : t -> unit
(** Stop serving: wake blocked accepts, reset client connections, tear
    down every upstream (pending requests get
    [error shard-unavailable]).  Registered shards are {e not} marked
    dead.  Idempotent; safe from any thread. *)
