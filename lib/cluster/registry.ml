(* Shard registry: the dispatcher's map from shop names to shard
   addresses.

   Shards sit on a consistent-hash ring ([vnodes] positions each, FNV-1a
   over "id#k"); a shop routes to the first shard at or after its own
   hash position, walking forward past dead shards — so all requests
   for a shop land on the same shard while it lives, and fail over to
   the next live shard in hash order when it dies, without moving any
   other shop.  Routing is a pure function of the membership + liveness
   state, never of request history.

   Liveness is two-sided: the status checker reports probe outcomes
   ([note_probe]; [fail_threshold] consecutive failures mark a shard
   dead, one success revives it), and the dispatcher's upstream
   connections report hard I/O errors ([report_down]) which mark a
   shard dead immediately — a broken pipe is not a timing blip. *)

type state = Live | Dead

type entry = {
  id : string;  (* "host:port" — the registration key *)
  host : string;
  port : int;
  mutable state : state;
  mutable fails : int;  (* consecutive probe failures *)
}

type t = {
  mu : Mutex.t;
  fail_threshold : int;
  vnodes : int;
  mutable ring : (int * entry) array;  (* sorted by (position, id) *)
  mutable entries : entry list;  (* sorted by id *)
  mutable failovers : int;  (* routes that skipped a dead home shard *)
  mutable deaths : int;
  mutable revivals : int;
}

(* FNV-1a with a murmur3-style finalizer, folded into OCaml's positive
   int range.  Plain FNV-1a has weak avalanche on the trailing bytes,
   and our inputs ("host:port#k") share long prefixes and differ only
   in final digits — without the finalizer every vnode of a shard
   lands on one contiguous arc of the ring and one shard absorbs
   nearly all shops.  Deterministic across runs and platforms (64-bit
   int assumed, as everywhere in this codebase). *)
let fnv_basis = Int64.to_int 0xcbf29ce484222325L (* truncated to 63 bits *)
let mix_m1 = Int64.to_int 0xff51afd7ed558ccdL
let mix_m2 = Int64.to_int 0xc4ceb9fe1a85ec53L

let mix h =
  let h = h lxor (h lsr 33) in
  let h = h * mix_m1 in
  let h = h lxor (h lsr 33) in
  let h = h * mix_m2 in
  let h = h lxor (h lsr 33) in
  h land max_int

let fnv1a s =
  let h = ref fnv_basis in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x100000001b3)
    s;
  mix !h

let parse_id id =
  match String.rindex_opt id ':' with
  | None -> None
  | Some i -> (
      let host = String.sub id 0 i in
      let port = String.sub id (i + 1) (String.length id - i - 1) in
      match int_of_string_opt port with
      | Some p when host <> "" && p > 0 && p < 65536 -> Some (host, p)
      | _ -> None)

let id_of ~host ~port = Printf.sprintf "%s:%d" host port

let default_vnodes = 64

let rebuild t =
  let ring =
    List.concat_map
      (fun e ->
        List.init t.vnodes (fun k -> (fnv1a (Printf.sprintf "%s#%d" e.id k), e)))
      t.entries
    |> Array.of_list
  in
  Array.sort
    (fun (p1, (e1 : entry)) (p2, e2) ->
      match compare p1 p2 with 0 -> compare e1.id e2.id | c -> c)
    ring;
  t.ring <- ring

let create ?(fail_threshold = 3) ?(vnodes = default_vnodes) shards =
  if fail_threshold < 1 then invalid_arg "Registry.create: fail_threshold < 1";
  if vnodes < 1 then invalid_arg "Registry.create: vnodes < 1";
  let entries =
    List.map
      (fun (host, port) ->
        { id = id_of ~host ~port; host; port; state = Live; fails = 0 })
      shards
    |> List.sort_uniq (fun a b -> compare a.id b.id)
  in
  let t =
    { mu = Mutex.create (); fail_threshold; vnodes; ring = [||]; entries;
      failovers = 0; deaths = 0; revivals = 0 }
  in
  rebuild t;
  t

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let add t ~host ~port =
  let id = id_of ~host ~port in
  locked t (fun () ->
      if List.exists (fun e -> e.id = id) t.entries then `Already
      else begin
        let e = { id; host; port; state = Live; fails = 0 } in
        t.entries <- List.sort (fun a b -> compare a.id b.id) (e :: t.entries);
        rebuild t;
        `Added
      end)

let remove t id =
  locked t (fun () ->
      if List.exists (fun e -> e.id = id) t.entries then begin
        t.entries <- List.filter (fun e -> e.id <> id) t.entries;
        rebuild t;
        true
      end
      else false)

let find_opt t id = locked t (fun () -> List.find_opt (fun e -> e.id = id) t.entries)

(* First ring position at or after [h] (binary search, wrapping). *)
let ring_start ring h =
  let n = Array.length ring in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let p, _ = ring.(mid) in
    if p < h then lo := mid + 1 else hi := mid
  done;
  if !lo = n then 0 else !lo

(* Walk the ring from the shop's position to the first live shard.
   Returns the shard and whether the shop's home shard was skipped
   because it is dead (a failover).  O(ring) worst case but each step
   is an array read. *)
let route_walk ring h =
  let n = Array.length ring in
  if n = 0 then None
  else begin
    let start = ring_start ring h in
    let home = snd ring.(start) in
    let rec go i =
      if i >= n then None
      else
        let _, e = ring.((start + i) mod n) in
        if e.state = Live then Some (e, home.state = Dead) else go (i + 1)
    in
    go 0
  end

let route t shop =
  locked t (fun () ->
      match route_walk t.ring (fnv1a shop) with
      | None -> None
      | Some (e, failed_over) ->
          if failed_over then t.failovers <- t.failovers + 1;
          Some e)

let home t shop =
  locked t (fun () ->
      let n = Array.length t.ring in
      if n = 0 then None else Some (snd t.ring.(ring_start t.ring (fnv1a shop))))

let mark_dead_locked t e =
  if e.state = Live then begin
    e.state <- Dead;
    t.deaths <- t.deaths + 1;
    true
  end
  else false

let mark_live_locked t e =
  e.fails <- 0;
  if e.state = Dead then begin
    e.state <- Live;
    t.revivals <- t.revivals + 1;
    true
  end
  else false

let note_probe t id ~ok =
  locked t (fun () ->
      match List.find_opt (fun e -> e.id = id) t.entries with
      | None -> `Unknown
      | Some e ->
          if ok then if mark_live_locked t e then `Revived else `Unchanged
          else begin
            e.fails <- e.fails + 1;
            if e.fails >= t.fail_threshold && mark_dead_locked t e then `Died
            else `Unchanged
          end)

let report_down t id =
  locked t (fun () ->
      match List.find_opt (fun e -> e.id = id) t.entries with
      | None -> false
      | Some e ->
          e.fails <- max e.fails t.fail_threshold;
          mark_dead_locked t e)

let snapshot t =
  locked t (fun () -> List.map (fun e -> (e.id, e.state, e.fails)) t.entries)

let live t = locked t (fun () -> List.filter (fun e -> e.state = Live) t.entries)

type stats = { shards : int; live_shards : int; failovers : int; deaths : int; revivals : int }

let stats t =
  locked t (fun () ->
      {
        shards = List.length t.entries;
        live_shards = List.length (List.filter (fun e -> e.state = Live) t.entries);
        failovers = t.failovers;
        deaths = t.deaths;
        revivals = t.revivals;
      })
