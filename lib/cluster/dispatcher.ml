(* The cluster front end: one listening port, N shard upstreams.

   Clients speak the ordinary [e2e-serve/1] line protocol to the
   dispatcher; every admission request is routed by the deterministic
   hash of its shop name ({!Registry}) and forwarded RAW to the owning
   shard, so validation, admission semantics and error texts are
   byte-identical to a direct shard connection.  Only session-level
   requests (hello/ping/quit), the dispatcher's own [stats]/[metrics]
   and the [ctl/1] control protocol are answered locally.

   Per-connection reply order is preserved under pipelining across
   shards by the same {!Wire} slot machinery the single-shard server
   uses: the client reader pushes one reply slot per request in read
   order, and each slot is filled when its shard's reply arrives (or
   immediately with [error shard-unavailable] when no live shard can
   take the request).

   Each shard gets up to [upstream_conns] persistent pipelined
   upstream connections ({e lanes}), shared by every client.  Each
   lane has a sender thread that coalesces queued request lines into
   single writes and moves their reply callbacks onto the lane's
   in-flight queue before the bytes leave, and a receiver thread that
   pops one callback per reply line — the shard answers each
   connection in request order, so the head of a lane's in-flight
   queue always owns that lane's head reply.  A client connection
   keeps a {e sticky} lane per shard (first use picks round-robin), so
   one client's requests for one shard flow down one lane in FIFO
   order — per-client-connection reply order is preserved at any lane
   count, while different clients spread across lanes.  A hard error
   on any lane fails every queued and in-flight request on {e all} of
   the shard's lanes with [error shard-unavailable] (never a hang),
   reports the shard dead to the registry (instant failover, no probe
   round-trips), and bumps the upstream's epoch so sticky lane picks
   re-balance when later requests lazily reconnect after the status
   checker revives the shard. *)

module Wire = E2e_serve.Wire
module Protocol = E2e_serve.Protocol

let version = "e2e-dispatch/1"
let greeting = version ^ " ready"
let ctl_version = "ctl/1"
let unavailable_reply = "error shard-unavailable"

(* ------------------------------------------------------------------ *)
(* Metrics relabeling: inject a [shard="id"] label into one exposition
   line so per-shard series stay distinguishable after aggregation. *)

let escape_label v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let relabel ~shard line =
  let lbl = Printf.sprintf "shard=\"%s\"" (escape_label shard) in
  match String.index_opt line ' ' with
  | None -> line (* not an exposition line; pass through untouched *)
  | Some sp -> (
      let name = String.sub line 0 sp in
      let rest = String.sub line sp (String.length line - sp) in
      match String.index_opt name '{' with
      | Some b when b < String.length name - 1 && name.[b + 1] <> '}' ->
          String.sub name 0 (b + 1) ^ lbl ^ ","
          ^ String.sub name (b + 1) (String.length name - b - 1)
          ^ rest
      | Some b ->
          (* empty label set "{}" *)
          String.sub name 0 (b + 1) ^ lbl ^ String.sub name (b + 1) (String.length name - b - 1)
          ^ rest
      | None -> name ^ "{" ^ lbl ^ "}" ^ rest)

(* ------------------------------------------------------------------ *)

type config = {
  fail_threshold : int;  (** Consecutive probe failures before a shard is dead. *)
  probe_interval : float;
  probe_timeout : float;
  vnodes : int;
  upstream_conns : int;  (** Pipelined upstream lanes per shard. *)
}

let default_config =
  { fail_threshold = 3; probe_interval = 1.0; probe_timeout = 1.0;
    vnodes = Registry.default_vnodes; upstream_conns = 1 }

(* One generation of one upstream lane's connection.  [sendq] holds
   (raw line, reply callback) pairs not yet written; [inflight] holds
   the callbacks of written requests awaiting replies, in wire order.
   Both live under the owning upstream's mutex. *)
type gen = {
  gfd : Unix.file_descr;
  glane : int;  (* which lane slot this generation occupies *)
  sendq : (string * (string -> unit)) Queue.t;
  inflight : (string -> unit) Queue.t;
  gkick : Condition.t;  (* sender wakeup: work queued or teardown *)
  mutable gdead : bool;
}

type upstream = {
  uid : string;
  uhost : string;
  uport : int;
  umu : Mutex.t;
  lanes : gen option array;  (* one slot per pipelined upstream lane *)
  mutable epoch : int;
      (* bumped when the shard's lanes are drained: sticky lane picks
         from an older epoch re-balance on their next request *)
  mutable rr : int;  (* round-robin cursor for fresh lane picks *)
}

type t = {
  registry : Registry.t;
  config : config;
  (* counters *)
  smu : Mutex.t;
  mutable routed : int;
  mutable unavailable : int;
  mutable client_read_errors : int;  (* hard read errors on client conns *)
  mutable upstream_read_errors : int;  (* hard read errors on upstream lanes *)
  per_shard : (string, int) Hashtbl.t;  (* shard id -> routed requests *)
  (* upstream table *)
  tmu : Mutex.t;
  upstreams : (string, upstream) Hashtbl.t;
  (* listener/connection lifecycle (shutdown support) *)
  dmu : Mutex.t;
  mutable stop : bool;
  mutable listener : Unix.file_descr option;
  mutable conns : Unix.file_descr list;
}

let create ?(config = default_config) shards =
  if config.upstream_conns < 1 then
    invalid_arg "Dispatcher.create: upstream_conns must be >= 1";
  {
    registry =
      Registry.create ~fail_threshold:config.fail_threshold ~vnodes:config.vnodes shards;
    config;
    smu = Mutex.create ();
    routed = 0;
    unavailable = 0;
    client_read_errors = 0;
    upstream_read_errors = 0;
    per_shard = Hashtbl.create 8;
    tmu = Mutex.create ();
    upstreams = Hashtbl.create 8;
    dmu = Mutex.create ();
    stop = false;
    listener = None;
    conns = [];
  }

let registry t = t.registry

(* ------------------------------------------------------------------ *)
(* Upstream connections. *)

let upstream_for t (e : Registry.entry) =
  Mutex.lock t.tmu;
  let u =
    match Hashtbl.find_opt t.upstreams e.Registry.id with
    | Some u -> u
    | None ->
        let u =
          { uid = e.Registry.id; uhost = e.Registry.host; uport = e.Registry.port;
            umu = Mutex.create ();
            lanes = Array.make (max 1 t.config.upstream_conns) None;
            epoch = 0; rr = 0 }
        in
        Hashtbl.replace t.upstreams e.Registry.id u;
        u
  in
  Mutex.unlock t.tmu;
  u

(* Mark one generation dead under [u.umu] and collect the callbacks it
   strands; the caller shuts the socket and fails them outside the
   lock.  [None] when the generation was already dead (its fd may
   already be closed — and possibly reused — so the caller must not
   touch it again). *)
let kill_gen_locked u g =
  if g.gdead then None
  else begin
    g.gdead <- true;
    (match u.lanes.(g.glane) with
    | Some g' when g' == g -> u.lanes.(g.glane) <- None
    | _ -> ());
    Condition.broadcast g.gkick;
    let acc = ref [] in
    Queue.iter (fun fill -> acc := fill :: !acc) g.inflight;
    Queue.iter (fun (_line, fill) -> acc := fill :: !acc) g.sendq;
    Queue.clear g.inflight;
    Queue.clear g.sendq;
    Some (List.rev !acc)
  end

let fail_fills t fills fds =
  List.iter
    (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    fds;
  match fills with
  | [] -> ()
  | fills ->
      Mutex.lock t.smu;
      t.unavailable <- t.unavailable + List.length fills;
      Mutex.unlock t.smu;
      List.iter (fun fill -> fill unavailable_reply) fills

(* Tear a connection generation down exactly once: mark it dead, shut
   the socket (waking a blocked receiver read), and fail every queued
   and in-flight request with a deterministic [error shard-unavailable]
   — a client never hangs on a dead shard.  [report] marks the shard
   dead in the registry (instant failover, no probe round-trips) and
   drains the shard's {e other} lanes too: their requests would only
   hang on the same dead shard, and the epoch bump makes sticky lane
   picks re-balance on reconnect.  [report:false] (dispatcher shutdown,
   deregistration) tears down only the given generation — callers that
   need every lane gone iterate the lane array. *)
let teardown t u g ~report =
  Mutex.lock u.umu;
  let fills = kill_gen_locked u g in
  let first = fills <> None in
  let others =
    if first && report then begin
      u.epoch <- u.epoch + 1;
      u.rr <- 0;
      Array.to_list u.lanes
      |> List.filter_map (fun go ->
             Option.bind go (fun g' ->
                 Option.map (fun fs -> (g', fs)) (kill_gen_locked u g')))
    end
    else []
  in
  Mutex.unlock u.umu;
  if first then begin
    if report then ignore (Registry.report_down t.registry u.uid);
    fail_fills t (Option.value ~default:[] fills) [ g.gfd ];
    List.iter (fun (g', fills') -> fail_fills t fills' [ g'.gfd ]) others
  end

(* Sender: drain the send queue into one coalesced write per wakeup.
   Callbacks move to [inflight] under the mutex BEFORE the write, so
   the receiver can never see a reply whose callback is not queued. *)
let sender_loop t u g =
  let buf = Buffer.create 512 in
  let rec loop () =
    Mutex.lock u.umu;
    while Queue.is_empty g.sendq && not g.gdead do
      Condition.wait g.gkick u.umu
    done;
    if g.gdead then Mutex.unlock u.umu
    else begin
      Buffer.clear buf;
      while not (Queue.is_empty g.sendq) do
        let line, fill = Queue.pop g.sendq in
        Buffer.add_string buf line;
        Buffer.add_char buf '\n';
        Queue.push fill g.inflight
      done;
      Mutex.unlock u.umu;
      match Wire.write_all g.gfd (Buffer.contents buf) with
      | () -> loop ()
      | exception Unix.Unix_error _ -> teardown t u g ~report:true
    end
  in
  loop ()

(* Receiver: consume the shard's greeting, then pop one in-flight
   callback per reply line.  Owns the fd close (exactly one close per
   generation).  Any read error, unexpected greeting or unsolicited
   reply tears the generation down. *)
let receiver_loop t u g =
  let r = Wire.make_reader g.gfd in
  (match Wire.read_line r with
  | `Line greeting when String.length greeting >= 4 && String.sub greeting 0 4 = "e2e-" ->
      let rec loop () =
        match Wire.read_line r with
        | `Line reply -> (
            Mutex.lock u.umu;
            let fill =
              if g.gdead || Queue.is_empty g.inflight then None
              else Some (Queue.pop g.inflight)
            in
            Mutex.unlock u.umu;
            match fill with
            | Some fill ->
                fill reply;
                loop ()
            | None -> ())
        | `Error _ ->
            (* A reset mid-stream, not the shard closing cleanly:
               account it so liveness debugging can tell the two
               apart. *)
            Mutex.lock t.smu;
            t.upstream_read_errors <- t.upstream_read_errors + 1;
            Mutex.unlock t.smu
        | `Eof | `Too_long -> ()
      in
      loop ()
  | `Error _ ->
      Mutex.lock t.smu;
      t.upstream_read_errors <- t.upstream_read_errors + 1;
      Mutex.unlock t.smu
  | `Line _ | `Eof | `Too_long -> ());
  teardown t u g ~report:true;
  try Unix.close g.gfd with Unix.Unix_error _ -> ()

(* Connect (bounded) and start one lane's sender/receiver.  Called
   with [u.umu] held; a connect failure reports the shard dead so the
   retry loop in [dispatch] immediately routes around it. *)
let ensure_lane_locked t u lane =
  match u.lanes.(lane) with
  | Some g when not g.gdead -> Ok g
  | _ -> (
      match
        Health.connect ~timeout:t.config.probe_timeout ~host:u.uhost ~port:u.uport ()
      with
      | Error e -> Error e
      | Ok fd ->
          (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
          let g =
            { gfd = fd; glane = lane; sendq = Queue.create (); inflight = Queue.create ();
              gkick = Condition.create (); gdead = false }
          in
          u.lanes.(lane) <- Some g;
          ignore (Thread.create (fun () -> sender_loop t u g) ());
          ignore (Thread.create (fun () -> receiver_loop t u g) ());
          Ok g)

(* [sticky] is the asking client connection's lane memo (shard id ->
   epoch, lane): the first request for a shard picks the next lane
   round-robin and pins it, so one client's requests for one shard
   flow down one lane in FIFO order — per-client reply order needs no
   cross-lane sequencing.  A teardown bumps the epoch, so a stale pin
   re-picks (re-balancing after reconnect). *)
type sticky = (string, int * int) Hashtbl.t

let sticky () : sticky = Hashtbl.create 8

let pick_lane_locked u sticky =
  let n = Array.length u.lanes in
  match Hashtbl.find_opt sticky u.uid with
  | Some (epoch, lane) when epoch = u.epoch && lane < n -> lane
  | _ ->
      let lane = u.rr mod n in
      u.rr <- u.rr + 1;
      Hashtbl.replace sticky u.uid (u.epoch, lane);
      lane

let try_enqueue t ~sticky (e : Registry.entry) line fill =
  let u = upstream_for t e in
  Mutex.lock u.umu;
  let lane = pick_lane_locked u sticky in
  match ensure_lane_locked t u lane with
  | Error _ ->
      Mutex.unlock u.umu;
      ignore (Registry.report_down t.registry u.uid);
      false
  | Ok g ->
      Queue.push (line, fill) g.sendq;
      Condition.signal g.gkick;
      Mutex.unlock u.umu;
      true

let fill_unavailable t fill =
  Mutex.lock t.smu;
  t.unavailable <- t.unavailable + 1;
  Mutex.unlock t.smu;
  fill unavailable_reply

(* Route by shop, forward, retry on connect failure.  Each failed
   attempt marks its shard dead, so the next [Registry.route] walks
   past it; [shards + 1] attempts bound the loop even when everything
   is dying under us. *)
let dispatch t ~sticky ~shop line fill =
  let attempts = (Registry.stats t.registry).Registry.shards + 1 in
  let rec go n =
    if n <= 0 then fill_unavailable t fill
    else
      match Registry.route t.registry shop with
      | None -> fill_unavailable t fill
      | Some e ->
          if try_enqueue t ~sticky e line fill then begin
            Mutex.lock t.smu;
            t.routed <- t.routed + 1;
            Hashtbl.replace t.per_shard e.Registry.id
              (1 + Option.value ~default:0 (Hashtbl.find_opt t.per_shard e.Registry.id));
            Mutex.unlock t.smu
          end
          else go (n - 1)
  in
  go attempts

(* ------------------------------------------------------------------ *)
(* Locally-answered requests. *)

(* Live (connected, not dead) upstream lanes per shard, sorted by id. *)
let live_lanes t =
  Mutex.lock t.tmu;
  let us = Hashtbl.fold (fun _ u acc -> u :: acc) t.upstreams [] in
  Mutex.unlock t.tmu;
  List.map
    (fun u ->
      Mutex.lock u.umu;
      let n =
        Array.fold_left
          (fun acc -> function Some g when not g.gdead -> acc + 1 | _ -> acc)
          0 u.lanes
      in
      Mutex.unlock u.umu;
      (u.uid, n))
    us
  |> List.sort compare

(* Upstream queue depth per shard: requests queued on a lane's send
   queue or in flight awaiting the shard's reply.  A request leaves
   when its reply (or the teardown drain) fills its callback, so a
   non-zero depth is proof the shard owes answers right now. *)
let pending_per_shard t =
  Mutex.lock t.tmu;
  let us = Hashtbl.fold (fun _ u acc -> u :: acc) t.upstreams [] in
  Mutex.unlock t.tmu;
  List.map
    (fun u ->
      Mutex.lock u.umu;
      let n =
        Array.fold_left
          (fun acc -> function
            | Some g when not g.gdead ->
                acc + Queue.length g.sendq + Queue.length g.inflight
            | _ -> acc)
          0 u.lanes
      in
      Mutex.unlock u.umu;
      (u.uid, n))
    us

let stats_line t =
  let r = Registry.stats t.registry in
  Mutex.lock t.smu;
  let routed = t.routed and unavailable = t.unavailable in
  let client_errs = t.client_read_errors and upstream_errs = t.upstream_read_errors in
  Mutex.unlock t.smu;
  Printf.sprintf
    "stats shards=%d live=%d routed=%d failovers=%d deaths=%d revivals=%d unavailable=%d \
     upstream_conns=%d read_errors=%d upstream_read_errors=%d"
    r.Registry.shards r.Registry.live_shards routed r.Registry.failovers r.Registry.deaths
    r.Registry.revivals unavailable t.config.upstream_conns client_errs upstream_errs

type shard_stats = { shard_id : string; shard_routed : int; shard_pending : int }

type stats = {
  routed : int;
  unavailable : int;
  client_read_errors : int;
  upstream_read_errors : int;
  per_shard : shard_stats list;  (** Sorted by shard id. *)
  registry_stats : Registry.stats;
}

let stats t =
  let registry_stats = Registry.stats t.registry in
  let pending = pending_per_shard t in
  Mutex.lock t.smu;
  let routed = t.routed and unavailable = t.unavailable in
  let client_read_errors = t.client_read_errors in
  let upstream_read_errors = t.upstream_read_errors in
  let routed_by_shard = Hashtbl.fold (fun id n acc -> (id, n) :: acc) t.per_shard [] in
  Mutex.unlock t.smu;
  let per_shard =
    List.sort_uniq compare (List.map fst routed_by_shard @ List.map fst pending)
    |> List.map (fun shard_id ->
           {
             shard_id;
             shard_routed = Option.value ~default:0 (List.assoc_opt shard_id routed_by_shard);
             shard_pending = Option.value ~default:0 (List.assoc_opt shard_id pending);
           })
  in
  { routed; unavailable; client_read_errors; upstream_read_errors; per_shard; registry_stats }

(* The aggregated exposition: the dispatcher's own cluster_* series,
   then every live shard's [metrics] reply relabeled with a
   [shard="id"] label (one bounded RPC per shard; an unreachable shard
   contributes only [cluster_shard_up 0]).  Runs synchronously on the
   asking client's reader thread, so its position in that connection's
   reply stream is trivially preserved. *)
let gather_metrics t =
  let out = ref [] in
  let add l = out := l :: !out in
  let r = Registry.stats t.registry in
  add (Printf.sprintf "cluster_shards %d" r.Registry.shards);
  add (Printf.sprintf "cluster_live_shards %d" r.Registry.live_shards);
  add (Printf.sprintf "cluster_failover_routes_total %d" r.Registry.failovers);
  add (Printf.sprintf "cluster_shard_deaths_total %d" r.Registry.deaths);
  add (Printf.sprintf "cluster_shard_revivals_total %d" r.Registry.revivals);
  let s = stats t in
  add (Printf.sprintf "cluster_routed_total %d" s.routed);
  add (Printf.sprintf "cluster_unavailable_replies_total %d" s.unavailable);
  add (Printf.sprintf "cluster_upstream_conns %d" t.config.upstream_conns);
  add (Printf.sprintf "cluster_client_read_errors_total %d" s.client_read_errors);
  add (Printf.sprintf "cluster_upstream_read_errors_total %d" s.upstream_read_errors);
  List.iter
    (fun { shard_id; shard_routed; _ } ->
      add
        (Printf.sprintf "cluster_shard_routed_total{shard=\"%s\"} %d"
           (escape_label shard_id) shard_routed))
    s.per_shard;
  List.iter
    (fun (id, n) ->
      add
        (Printf.sprintf "cluster_upstream_live_lanes{shard=\"%s\"} %d" (escape_label id) n))
    (live_lanes t);
  List.iter
    (fun (id, n) ->
      add
        (Printf.sprintf "cluster_upstream_pending{shard=\"%s\"} %d" (escape_label id) n))
    (List.sort compare (pending_per_shard t));
  List.iter
    (fun (id, state, _fails) ->
      let up n =
        Printf.sprintf "cluster_shard_up{shard=\"%s\"} %d" (escape_label id) n
      in
      match (state, Registry.parse_id id) with
      | Registry.Dead, _ | _, None -> add (up 0)
      | Registry.Live, Some (host, port) -> (
          match Health.rpc ~timeout:t.config.probe_timeout ~host ~port [ "metrics" ] with
          | Ok [ reply ]
            when String.length reply >= 8 && String.sub reply 0 8 = "metrics " ->
              add (up 1);
              String.split_on_char ';'
                (String.sub reply 8 (String.length reply - 8))
              |> List.iter (fun line -> if line <> "" then add (relabel ~shard:id line))
          | Ok _ | Error _ -> add (up 0)))
    (Registry.snapshot t.registry);
  "metrics " ^ String.concat ";" (List.rev !out)

(* Tear down every lane of one upstream without reporting the shard
   dead (it may be perfectly healthy — we are deregistering it or
   shutting down); pending requests get the deterministic unavailable
   error. *)
let teardown_all_lanes t u =
  Mutex.lock u.umu;
  let gens = Array.to_list u.lanes |> List.filter_map Fun.id in
  Mutex.unlock u.umu;
  List.iter (fun g -> teardown t u g ~report:false) gens

(* Tear down and forget a deregistered shard's upstream; pending
   requests get the deterministic unavailable error. *)
let drop_upstream t id =
  Mutex.lock t.tmu;
  let u = Hashtbl.find_opt t.upstreams id in
  Hashtbl.remove t.upstreams id;
  Mutex.unlock t.tmu;
  match u with None -> () | Some u -> teardown_all_lanes t u

let handle_ctl t rest =
  let cmd, arg = Protocol.cut_word rest in
  match cmd with
  | "register" -> (
      match Registry.parse_id arg with
      | None -> Printf.sprintf "error ctl bad shard address %S (want host:port)" arg
      | Some (host, port) ->
          let id = Registry.id_of ~host ~port in
          (match Registry.add t.registry ~host ~port with
          | `Added -> ()
          | `Already ->
              (* A re-registering shard is announcing liveness. *)
              ignore (Registry.note_probe t.registry id ~ok:true));
          Printf.sprintf "ok registered %s shards=%d" id
            (Registry.stats t.registry).Registry.shards)
  | "deregister" -> (
      match Registry.parse_id arg with
      | None -> Printf.sprintf "error ctl bad shard address %S (want host:port)" arg
      | Some (host, port) ->
          let id = Registry.id_of ~host ~port in
          if Registry.remove t.registry id then begin
            drop_upstream t id;
            Printf.sprintf "ok deregistered %s shards=%d" id
              (Registry.stats t.registry).Registry.shards
          end
          else Printf.sprintf "error unknown shard %s" id)
  | "shards" ->
      if arg <> "" then "error ctl shards takes no arguments"
      else
        let parts =
          List.map
            (fun (id, state, _) ->
              Printf.sprintf "%s=%s" id
                (match state with Registry.Live -> "live" | Registry.Dead -> "dead"))
            (Registry.snapshot t.registry)
        in
        "ok shards " ^ (match parts with [] -> "-" | parts -> String.concat "," parts)
  | "" -> "error ctl missing command (want register|deregister|shards)"
  | cmd -> Printf.sprintf "error ctl unknown command %S" cmd

(* ------------------------------------------------------------------ *)
(* The client-facing session. *)

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let pong = "pong " ^ version

(* One client connection's reader: answer session-level requests
   locally, forward everything else raw to the shop's shard.  Reply
   slots are pushed in read order, so the client's reply stream order
   matches its request order no matter which shards (or upstream
   lanes) answer.  [sticky] is this connection's lane memo — the
   connection affinity that keeps its per-shard request flow on one
   upstream lane. *)
let client_loop t (conn : Wire.conn) r =
  let sticky = sticky () in
  let rec loop () =
    match Wire.read_line r with
    | `Eof -> Wire.push_cell conn (End None)
    | `Error _ ->
        Mutex.lock t.smu;
        t.client_read_errors <- t.client_read_errors + 1;
        Mutex.unlock t.smu;
        Wire.push_cell conn (End None)
    | `Too_long -> Wire.push_cell conn (End (Some "error shop=- request line too long"))
    | `Line l ->
        let trimmed = String.trim l in
        if trimmed = "" || trimmed.[0] = '#' then loop ()
        else begin
          let keyword, rest = Protocol.cut_word l in
          match keyword with
          | "hello" -> Wire.push_line conn (Protocol.render_hello ~requested:rest); loop ()
          | "ping" when rest = "" -> Wire.push_line conn pong; loop ()
          | "quit" when rest = "" -> Wire.push_cell conn (End (Some "bye"))
          | "stats" when rest = "" -> Wire.push_line conn (stats_line t); loop ()
          | "metrics" when rest = "" -> Wire.push_line conn (gather_metrics t); loop ()
          | k when k = ctl_version -> Wire.push_line conn (handle_ctl t rest); loop ()
          | k when starts_with ~prefix:"ctl/" k ->
              Wire.push_line conn
                (Printf.sprintf "error unsupported control version %s (want %s)" k ctl_version);
              loop ()
          | _ ->
              (* Anything else — including malformed requests — is the
                 shard's to answer, so error texts match a direct
                 connection byte for byte. *)
              let shop, _ = Protocol.cut_word rest in
              let key = if shop = "" then trimmed else shop in
              Semaphore.Counting.acquire conn.Wire.window;
              let p = { Wire.line = None } in
              Wire.push_cell conn (Out p);
              dispatch t ~sticky ~shop:key l (fun reply -> Wire.fill conn p reply);
              loop ()
        end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Listener plumbing (mirrors Server.serve_tcp). *)

let conn_register t fd =
  Mutex.lock t.dmu;
  let accept = not t.stop in
  if accept then t.conns <- fd :: t.conns;
  Mutex.unlock t.dmu;
  accept

let conn_unregister t fd =
  Mutex.lock t.dmu;
  t.conns <- List.filter (fun fd' -> fd' != fd) t.conns;
  Mutex.unlock t.dmu

let stopped t =
  Mutex.lock t.dmu;
  let s = t.stop in
  Mutex.unlock t.dmu;
  s

let shutdown t =
  Mutex.lock t.dmu;
  t.stop <- true;
  let listener = t.listener in
  let conns = t.conns in
  t.listener <- None;
  Mutex.unlock t.dmu;
  let shut fd = try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> () in
  Option.iter shut listener;
  List.iter shut conns;
  let us = Mutex.lock t.tmu; let us = Hashtbl.fold (fun _ u acc -> u :: acc) t.upstreams [] in
    Mutex.unlock t.tmu; us
  in
  List.iter (fun u -> teardown_all_lanes t u) us

let handle_client t ~window fd =
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
      match Wire.write_all fd (greeting ^ "\n") with
      | exception Unix.Unix_error _ -> ()
      | () ->
          let conn = Wire.make_conn ~window fd in
          let writer = Wire.spawn_writer conn in
          Fun.protect
            ~finally:(fun () -> Thread.join writer)
            (fun () ->
              try client_loop t conn (Wire.make_reader fd)
              with _ -> Wire.push_cell conn (End None)))

let retriable = function
  | Unix.EINTR | Unix.ECONNABORTED | Unix.EAGAIN | Unix.EWOULDBLOCK -> true
  | _ -> false

let serve ?(host = "127.0.0.1") ?max_connections ?(accept_pool = 4) ?(window = 64)
    ?ready ~port t =
  let addr = Unix.ADDR_INET (E2e_serve.Server.resolve_host host, port) in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  let old_sigpipe =
    try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore) with Invalid_argument _ -> None
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      Option.iter
        (fun b -> try Sys.set_signal Sys.sigpipe b with Invalid_argument _ -> ())
        old_sigpipe)
    (fun () ->
      Unix.setsockopt sock Unix.SO_REUSEADDR true;
      Unix.bind sock addr;
      Unix.listen sock 64;
      Mutex.lock t.dmu;
      let already_stopped = t.stop in
      if not already_stopped then t.listener <- Some sock;
      Mutex.unlock t.dmu;
      if not already_stopped then begin
        (match ready with
        | None -> ()
        | Some f ->
            let bound_port =
              match Unix.getsockname sock with Unix.ADDR_INET (_, p) -> p | _ -> port
            in
            f bound_port);
        let checker =
          Health.start ~interval:t.config.probe_interval ~timeout:t.config.probe_timeout
            t.registry
        in
        let slots = Atomic.make 0 in
        let accept_domain () =
          let rec loop () =
            if stopped t then ()
            else
              let slot = Atomic.fetch_and_add slots 1 in
              let quota_ok =
                match max_connections with None -> true | Some n -> slot < n
              in
              if quota_ok then
                match Unix.accept sock with
                | fd, _ ->
                    if conn_register t fd then begin
                      (try handle_client t ~window fd with _ -> ());
                      conn_unregister t fd
                    end
                    else (try Unix.close fd with Unix.Unix_error _ -> ());
                    loop ()
                | exception Unix.Unix_error (e, _, _) when retriable e ->
                    Atomic.decr slots;
                    loop ()
                | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) -> ()
                | exception Unix.Unix_error (_, _, _) ->
                    Atomic.decr slots;
                    Unix.sleepf 0.01;
                    loop ()
          in
          loop ()
        in
        let accepters =
          Array.init (max 1 accept_pool) (fun _ -> Domain.spawn accept_domain)
        in
        Array.iter Domain.join accepters;
        Health.stop checker;
        (* Make sure upstream threads die with the listener (no-op when
           [shutdown] already ran). *)
        shutdown t
      end)
