(** Deterministic pseudo-random number generation.

    A self-contained SplitMix64 generator so that every simulation in the
    repository is reproducible from a seed, independent of the OCaml
    runtime's [Random] state.  SplitMix64 passes BigCrush and is the
    standard seeding generator for the xoshiro family. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from any integer seed. *)

val copy : t -> t
(** Independent snapshot of the current state. *)

val split : t -> t
(** A new generator statistically independent from the parent; the parent
    advances.  Useful to give sub-experiments their own streams. *)

val of_path : int array -> t
(** [of_path [| seed; point; trial |]] derives an independent stream from
    a hierarchical path of integers.  Equal paths yield identical
    streams; paths differing in any component yield statistically
    independent ones (each component passes through the SplitMix64
    finaliser).  This is the seeding discipline of the parallel
    experiment engine: one stream per Monte Carlo trial, so results do
    not depend on the order in which trials execute. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int g bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val float : t -> float -> float
(** [float g x] is uniform in [\[0, x)]. *)

val uniform : t -> float -> float -> float
(** [uniform g lo hi] is uniform in [\[lo, hi)]. *)

val bool : t -> bool

val normal : t -> mean:float -> stdev:float -> float
(** Gaussian variate (Box–Muller). *)

val truncated_normal : t -> mean:float -> stdev:float -> lo:float -> float
(** Gaussian variate resampled until it is [>= lo] (with a deterministic
    fallback to [lo] after 1000 rejections, which for our parameters is
    unreachable). *)

val exponential : t -> rate:float -> float

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val permutation : t -> int -> int array
(** [permutation g n] is a uniform random permutation of [0 .. n-1]. *)

val rat_uniform : t -> den:int -> E2e_rat.Rat.t -> E2e_rat.Rat.t -> E2e_rat.Rat.t
(** [rat_uniform g ~den lo hi] draws a rational uniform on the grid of
    multiples of [1/den] inside [\[lo, hi\]]. *)
