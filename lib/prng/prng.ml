module Rat = E2e_rat.Rat

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed) }
let copy t = { state = t.state }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let s = bits64 t in
  { state = mix s }

let of_path path =
  (* Fold each component through the SplitMix64 finaliser so that any two
     distinct paths land in statistically independent stream positions:
     s_{k+1} = mix (s_k * gamma + mix component_k). *)
  let state =
    Array.fold_left
      (fun s k -> mix (Int64.add (Int64.mul s golden_gamma) (mix (Int64.of_int k))))
      0x2545F4914F6CDD1DL path
  in
  { state }

let int t bound =
  assert (bound > 0);
  (* Rejection sampling over the top 62 bits to avoid modulo bias. *)
  let mask = Int64.shift_right_logical Int64.minus_one 2 in
  let rec draw () =
    let v = Int64.to_int (Int64.logand (bits64 t) mask) in
    let r = v mod bound in
    if v - r + (bound - 1) < 0 then draw () else r
  in
  draw ()

let float t x =
  (* 53 random bits into [0, 1). *)
  let bits = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bits /. 9007199254740992.0 *. x

let uniform t lo hi = lo +. float t (hi -. lo)
let bool t = Int64.logand (bits64 t) 1L = 1L

let normal t ~mean ~stdev =
  let rec nonzero () =
    let u = float t 1.0 in
    if u > 0.0 then u else nonzero ()
  in
  let u1 = nonzero () and u2 = float t 1.0 in
  let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
  mean +. (stdev *. z)

let truncated_normal t ~mean ~stdev ~lo =
  let rec draw n =
    if n = 0 then lo
    else
      let x = normal t ~mean ~stdev in
      if x >= lo then x else draw (n - 1)
  in
  draw 1000

let exponential t ~rate =
  let rec nonzero () =
    let u = float t 1.0 in
    if u > 0.0 then u else nonzero ()
  in
  -.log (nonzero ()) /. rate

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation t n =
  let a = Array.init n (fun i -> i) in
  shuffle t a;
  a

let rat_uniform t ~den lo hi =
  let lo_ticks = Rat.ceil (Rat.mul_int lo den) and hi_ticks = Rat.floor (Rat.mul_int hi den) in
  if hi_ticks < lo_ticks then lo
  else
    let k = lo_ticks + int t (hi_ticks - lo_ticks + 1) in
    Rat.make k den
