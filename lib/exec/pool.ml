let recommended_jobs () = Domain.recommended_domain_count ()

let default_jobs () =
  match Sys.getenv_opt "E2E_JOBS" with
  | None -> 1
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> min n (recommended_jobs ())
      | _ -> 1)

let resolve_jobs = function
  | None -> default_jobs ()
  | Some n ->
      if n < 1 then invalid_arg "Pool.resolve_jobs: jobs must be >= 1";
      n

(* One slot per job: the result, or the exception it raised.  Workers
   write disjoint slots; [Domain.join] publishes them to the caller. *)
type 'b slot = Empty | Value of 'b | Raised of exn * Printexc.raw_backtrace

let map ~jobs f items =
  if jobs < 1 then invalid_arg "Pool.map: jobs must be >= 1";
  let n = Array.length items in
  if jobs = 1 || n <= 1 then Array.map f items
  else begin
    let slots = Array.make n Empty in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (slots.(i) <-
             (match f items.(i) with
             | v -> Value v
             | exception e -> Raised (e, Printexc.get_raw_backtrace ())));
          loop ()
        end
      in
      loop ()
    in
    let domains = Array.init (min jobs n) (fun _ -> Domain.spawn worker) in
    Array.iter Domain.join domains;
    (* Lowest-index exception wins, whatever order the domains ran in. *)
    Array.iter
      (function Raised (e, bt) -> Printexc.raise_with_backtrace e bt | _ -> ())
      slots;
    Array.map (function Value v -> v | Empty | Raised _ -> assert false) slots
  end

let init ~jobs n f =
  if n < 0 then invalid_arg "Pool.init: negative length";
  map ~jobs f (Array.init n Fun.id)

(* ------------------------------------------------------------------ *)
(* Persistent shared pool.

   [map] pays a domain spawn+join per call — fine for experiment
   sweeps (a handful of calls), ruinous for a server stepping small
   batches (measured ~3.6ms per 4-domain spawn+join, dwarfing the
   solves themselves).  [run] keeps one process-wide set of worker
   domains parked on a condition variable and hands each call's work
   to them; the result contract (submission order, lowest-index
   exception, jobs=1 sequential) is identical to [map]'s.

   Workers are daemons: they are never joined, and a process exit with
   workers parked terminates normally.  Worker-side telemetry is safe
   because [E2e_obs.Obs] registers each domain's collector globally
   and merges at read time; the pool mutex orders the workers' writes
   before the caller's return. *)

let max_workers = 64

type shared = {
  mu : Mutex.t;
  work : Condition.t;  (* a batch was posted (epoch changed) *)
  done_ : Condition.t;  (* the last worker finished the current batch *)
  ready : Condition.t;  (* a freshly spawned worker parked *)
  mutable spawned : int;
  mutable registered : int;  (* workers that reached the park loop *)
  mutable body : (int -> unit) option;  (* rank-indexed batch body *)
  mutable epoch : int;
  mutable finished : int;  (* workers done with the current epoch *)
}

let shared =
  {
    mu = Mutex.create ();
    work = Condition.create ();
    done_ = Condition.create ();
    ready = Condition.create ();
    spawned = 0;
    registered = 0;
    body = None;
    epoch = 0;
    finished = 0;
  }

(* Set in every pool worker: a job that itself calls [run] must not
   wait on the workers it is occupying, so nested calls inline. *)
let in_worker = Domain.DLS.new_key (fun () -> ref false)

let worker rank () =
  Domain.DLS.get in_worker := true;
  let t = shared in
  Mutex.lock t.mu;
  t.registered <- t.registered + 1;
  Condition.broadcast t.ready;
  let last = ref t.epoch in
  while true do
    while t.epoch = !last do
      Condition.wait t.work t.mu
    done;
    last := t.epoch;
    let body = Option.get t.body in
    Mutex.unlock t.mu;
    (try body rank with _ -> () (* bodies trap their own exceptions *));
    Mutex.lock t.mu;
    t.finished <- t.finished + 1;
    if t.finished = t.registered then Condition.signal t.done_
  done

(* One batch at a time: callers queue here, not on [shared.mu]. *)
let owner = Mutex.create ()

let run ~jobs f items =
  if jobs < 1 then invalid_arg "Pool.run: jobs must be >= 1";
  let n = Array.length items in
  if jobs = 1 || n <= 1 || !(Domain.DLS.get in_worker) then Array.map f items
  else begin
    let t = shared in
    Mutex.lock owner;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock owner)
      (fun () ->
        Mutex.lock t.mu;
        let want = min jobs max_workers in
        while t.spawned < want do
          let rank = t.spawned in
          t.spawned <- t.spawned + 1;
          ignore (Domain.spawn (worker rank))
        done;
        (* Every worker must be parked with the pre-batch epoch before
           the batch is posted, or a late registrant could miss it and
           leave the batch undercounted. *)
        while t.registered < t.spawned do
          Condition.wait t.ready t.mu
        done;
        let slots = Array.make n Empty in
        let next = Atomic.make 0 in
        let body rank =
          if rank < jobs then begin
            let rec loop () =
              let i = Atomic.fetch_and_add next 1 in
              if i < n then begin
                (slots.(i) <-
                   (match f items.(i) with
                   | v -> Value v
                   | exception e -> Raised (e, Printexc.get_raw_backtrace ())));
                loop ()
              end
            in
            loop ()
          end
        in
        t.body <- Some body;
        t.epoch <- t.epoch + 1;
        t.finished <- 0;
        Condition.broadcast t.work;
        while t.finished < t.registered do
          Condition.wait t.done_ t.mu
        done;
        t.body <- None;
        Mutex.unlock t.mu;
        Array.iter
          (function Raised (e, bt) -> Printexc.raise_with_backtrace e bt | _ -> ())
          slots;
        Array.map (function Value v -> v | Empty | Raised _ -> assert false) slots)
  end
