let recommended_jobs () = Domain.recommended_domain_count ()

let default_jobs () =
  match Sys.getenv_opt "E2E_JOBS" with
  | None -> 1
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> min n (recommended_jobs ())
      | _ -> 1)

let resolve_jobs = function
  | None -> default_jobs ()
  | Some n ->
      if n < 1 then invalid_arg "Pool.resolve_jobs: jobs must be >= 1";
      n

(* One slot per job: the result, or the exception it raised.  Workers
   write disjoint slots; [Domain.join] publishes them to the caller. *)
type 'b slot = Empty | Value of 'b | Raised of exn * Printexc.raw_backtrace

let map ~jobs f items =
  if jobs < 1 then invalid_arg "Pool.map: jobs must be >= 1";
  let n = Array.length items in
  if jobs = 1 || n <= 1 then Array.map f items
  else begin
    let slots = Array.make n Empty in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (slots.(i) <-
             (match f items.(i) with
             | v -> Value v
             | exception e -> Raised (e, Printexc.get_raw_backtrace ())));
          loop ()
        end
      in
      loop ()
    in
    let domains = Array.init (min jobs n) (fun _ -> Domain.spawn worker) in
    Array.iter Domain.join domains;
    (* Lowest-index exception wins, whatever order the domains ran in. *)
    Array.iter
      (function Raised (e, bt) -> Printexc.raise_with_backtrace e bt | _ -> ())
      slots;
    Array.map (function Value v -> v | Empty | Raised _ -> assert false) slots
  end

let init ~jobs n f =
  if n < 0 then invalid_arg "Pool.init: negative length";
  map ~jobs f (Array.init n Fun.id)
