(** Fixed-size domain pool for deterministic fan-out of pure jobs.

    The experiment harness runs Monte Carlo campaigns: hundreds of
    independent trials per plotted point.  [Pool] spreads such jobs over
    a fixed number of OCaml 5 domains while keeping the results — and
    therefore every byte of experiment output — independent of how many
    domains ran them or in which order they were scheduled:

    - jobs are claimed from a shared atomic work index, so the pool is
      work-conserving regardless of per-job cost;
    - results are stored at each job's submission index, so [map] and
      [init] return them in submission order, exactly as a sequential
      [Array.map]/[Array.init] would;
    - every job must be a {e pure function of its input} (in particular
      it must not share a PRNG with other jobs — derive one per job with
      {!E2e_prng.Prng.of_path});
    - [jobs = 1] never spawns a domain: it is exactly the sequential
      loop, which makes `-j 1` a bit-for-bit reference for any `-j N`.

    Exceptions: every job runs to completion even if another job raised;
    after joining, the exception of the {e lowest submission index} is
    re-raised (with its backtrace).  This keeps failure behaviour
    deterministic across domain counts too.

    Telemetry: {!E2e_obs.Obs} counters, gauges and histograms are
    domain-safe (each domain accumulates into its own collector).
    [Domain.join] publishes the workers' collectors, so metrics read
    after a [map]/[init] returns equal the sequential totals. *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()]: the runtime's estimate of how
    many domains this machine runs well (usually the core count). *)

val default_jobs : unit -> int
(** Default worker count for CLIs: the [E2E_JOBS] environment variable
    when it parses as a positive integer, capped at
    {!recommended_jobs}; [1] when unset or invalid. *)

val resolve_jobs : int option -> int
(** [resolve_jobs (Some n)] is [n] (an explicit request is honoured even
    past {!recommended_jobs}, e.g. to check determinism with more
    domains than cores); [resolve_jobs None] is {!default_jobs}[ ()].
    @raise Invalid_argument if [n < 1]. *)

val map : jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~jobs f items] is [Array.map f items], with the calls spread
    over [min jobs (Array.length items)] domains.  Results are in
    submission order.  [jobs = 1] runs sequentially in the calling
    domain.
    @raise Invalid_argument if [jobs < 1]. *)

val init : jobs:int -> int -> (int -> 'b) -> 'b array
(** [init ~jobs n f] is [Array.init n f] over the pool — the shape of a
    Monte Carlo point: job [k] is trial [k].
    @raise Invalid_argument if [jobs < 1] or [n < 0]. *)

val run : jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map], but over a process-wide {e persistent} pool of parked worker
    domains instead of a fresh spawn+join per call — the right choice
    for callers that fan out small batches at high frequency (the serve
    batcher: one [map]-shaped call per batch, where a per-call domain
    spawn would cost more than the batch itself).

    Same contract as {!map}: results in submission order, lowest-index
    exception re-raised, [jobs = 1] (or a single item) runs sequentially
    in the calling domain and is the bit-for-bit reference.  The pool
    grows lazily to the largest [jobs] seen (capped internally); calls
    are serialised over the one shared pool.  A job that itself calls
    [run] inlines sequentially rather than deadlocking on the workers it
    occupies.  Worker domains are daemons: they park between calls and
    do not block process exit.
    @raise Invalid_argument if [jobs < 1]. *)
