module Rat = E2e_rat.Rat
module Task = E2e_model.Task
module Visit = E2e_model.Visit
module Recurrence_shop = E2e_model.Recurrence_shop

type rat = Rat.t
type t = { shop : Recurrence_shop.t; starts : rat array array }

let make shop starts =
  let n = Recurrence_shop.n_tasks shop and k = Visit.length shop.Recurrence_shop.visit in
  if Array.length starts <> n then invalid_arg "Schedule.make: wrong task count";
  Array.iter
    (fun row -> if Array.length row <> k then invalid_arg "Schedule.make: wrong stage count")
    starts;
  { shop; starts }

let of_flow_shop fs starts = make (Recurrence_shop.of_traditional fs) starts
let start t ~task ~stage = t.starts.(task).(stage)

let duration t ~task ~stage = t.shop.Recurrence_shop.tasks.(task).Task.proc_times.(stage)
let finish t ~task ~stage = Rat.add (start t ~task ~stage) (duration t ~task ~stage)

let stages t = Visit.length t.shop.Recurrence_shop.visit
let n_tasks t = Array.length t.starts

let completion t task = finish t ~task ~stage:(stages t - 1)

let makespan t =
  let best = ref Rat.zero in
  for i = 0 to n_tasks t - 1 do
    best := Rat.max !best (completion t i)
  done;
  !best

(* Entries on one processor, sorted by start time. *)
let processor_entries t p =
  let entries = ref [] in
  let seq = t.shop.Recurrence_shop.visit.Visit.sequence in
  for i = 0 to n_tasks t - 1 do
    for j = 0 to stages t - 1 do
      if seq.(j) = p then entries := (t.starts.(i).(j), i, j) :: !entries
    done
  done;
  List.sort (fun (s1, i1, j1) (s2, i2, j2) ->
      let c = Rat.compare s1 s2 in
      if c <> 0 then c else Stdlib.compare (i1, j1) (i2, j2))
    !entries

let is_permutation t =
  let m = t.shop.Recurrence_shop.visit.Visit.processors in
  let order_of p = List.map (fun (_, i, _) -> i) (processor_entries t p) in
  (* Global distinctness: a task may appear at most once per processor, not
     merely on non-adjacent positions (T1,T2,T1 is not a permutation order). *)
  let distinct_order order =
    let sorted = List.sort Stdlib.compare order in
    let rec no_dup = function
      | [] | [ _ ] -> true
      | a :: (b :: _ as rest) -> a <> b && no_dup rest
    in
    no_dup sorted
  in
  (* Only meaningful when every processor runs each task once. *)
  let orders = List.init m order_of in
  match orders with
  | [] -> true
  | first :: rest -> List.for_all distinct_order orders && List.for_all (( = ) first) rest

type violation =
  | Release_violated of { task : int; start : rat; release : rat }
  | Deadline_missed of { task : int; finish : rat; deadline : rat }
  | Precedence_violated of { task : int; stage : int; start : rat; prev_finish : rat }
  | Overlap of { processor : int; a : int * int; b : int * int }

let pp_violation ppf = function
  | Release_violated { task; start; release } ->
      Format.fprintf ppf "task %d starts at %a before release %a" task Rat.pp start Rat.pp release
  | Deadline_missed { task; finish; deadline } ->
      Format.fprintf ppf "task %d finishes at %a after deadline %a" task Rat.pp finish Rat.pp
        deadline
  | Precedence_violated { task; stage; start; prev_finish } ->
      Format.fprintf ppf "task %d stage %d starts at %a before stage %d ends at %a" task stage
        Rat.pp start (stage - 1) Rat.pp prev_finish
  | Overlap { processor; a = ta, sa; b = tb, sb } ->
      Format.fprintf ppf "processor %d: (task %d, stage %d) overlaps (task %d, stage %d)"
        processor ta sa tb sb

let violations t =
  let out = ref [] in
  let push v = out := v :: !out in
  let tasks = t.shop.Recurrence_shop.tasks in
  for i = 0 to n_tasks t - 1 do
    let task = tasks.(i) in
    if Rat.(t.starts.(i).(0) < task.Task.release) then
      push (Release_violated { task = i; start = t.starts.(i).(0); release = task.Task.release });
    let fin = completion t i in
    if Rat.(fin > task.Task.deadline) then
      push (Deadline_missed { task = i; finish = fin; deadline = task.Task.deadline });
    for j = 1 to stages t - 1 do
      let prev_finish = finish t ~task:i ~stage:(j - 1) in
      if Rat.(t.starts.(i).(j) < prev_finish) then
        push (Precedence_violated { task = i; stage = j; start = t.starts.(i).(j); prev_finish })
    done
  done;
  let m = t.shop.Recurrence_shop.visit.Visit.processors in
  for p = 0 to m - 1 do
    (* Scan start-sorted entries carrying the running maximum finish; a
       long entry hides later overlaps from a purely adjacent comparison
       (A = [0,10], B = [1,2], C = [3,4]: B-C are disjoint but both sit
       inside A). *)
    let rec scan (max_f, mi, mj) = function
      | (s2, i2, j2) :: rest ->
          if Rat.(s2 < max_f) then push (Overlap { processor = p; a = (mi, mj); b = (i2, j2) });
          let f2 = finish t ~task:i2 ~stage:j2 in
          let running = if Rat.(f2 > max_f) then (f2, i2, j2) else (max_f, mi, mj) in
          scan running rest
      | [] -> ()
    in
    match processor_entries t p with
    | [] -> ()
    | (_, i1, j1) :: rest -> scan (finish t ~task:i1 ~stage:j1, i1, j1) rest
  done;
  List.rev !out

let is_feasible t = violations t = []
let check t = match violations t with [] -> Ok () | vs -> Error vs

let forward_pass (shop : Recurrence_shop.t) ~order =
  let k = Visit.length shop.visit in
  let n = Array.length shop.tasks in
  if Array.length order <> n then invalid_arg "Schedule.forward_pass: bad order length";
  let starts = Array.make_matrix n k Rat.zero in
  (* Processors are free from before the earliest release, so negative
     release times are honoured too. *)
  let earliest =
    Array.fold_left (fun acc (t : Task.t) -> Rat.min acc t.Task.release) Rat.zero shop.tasks
  in
  let free = Array.make shop.visit.Visit.processors earliest in
  Array.iter
    (fun i ->
      let task = shop.tasks.(i) in
      let ready = ref task.Task.release in
      for j = 0 to k - 1 do
        let p = shop.visit.Visit.sequence.(j) in
        let s = Rat.max !ready free.(p) in
        starts.(i).(j) <- s;
        let f = Rat.add s task.Task.proc_times.(j) in
        ready := f;
        free.(p) <- f
      done)
    order;
  make shop starts

let left_shift t =
  let n = n_tasks t and k = stages t in
  let shop = t.shop in
  let starts = Array.make_matrix n k Rat.zero in
  (* Process all stage instances in the original global start order so that
     each processor keeps its execution order and each chain its sequence. *)
  let all =
    List.concat
      (List.init n (fun i -> List.init k (fun j -> (t.starts.(i).(j), i, j))))
  in
  let all =
    List.sort
      (fun (s1, i1, j1) (s2, i2, j2) ->
        let c = Rat.compare s1 s2 in
        if c <> 0 then c else Stdlib.compare (i1, j1) (i2, j2))
      all
  in
  let free = Array.make shop.Recurrence_shop.visit.Visit.processors Rat.zero in
  List.iter
    (fun (_, i, j) ->
      let task = shop.Recurrence_shop.tasks.(i) in
      let p = shop.Recurrence_shop.visit.Visit.sequence.(j) in
      let ready =
        if j = 0 then task.Task.release
        else Rat.add starts.(i).(j - 1) task.Task.proc_times.(j - 1)
      in
      let s = Rat.max ready free.(p) in
      starts.(i).(j) <- s;
      free.(p) <- Rat.add s task.Task.proc_times.(j))
    all;
  make shop starts

let pp_table ppf t =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf "%-5s %-5s %-5s %10s %10s %10s %10s@," "task" "stage" "proc" "start" "finish"
    "eff.rel" "eff.dl";
  for i = 0 to n_tasks t - 1 do
    let task = t.shop.Recurrence_shop.tasks.(i) in
    for j = 0 to stages t - 1 do
      let p = t.shop.Recurrence_shop.visit.Visit.sequence.(j) in
      Format.fprintf ppf "T%-4d %-5d P%-4d %10s %10s %10s %10s@," i j (p + 1)
        (Rat.to_string (start t ~task:i ~stage:j))
        (Rat.to_string (finish t ~task:i ~stage:j))
        (Rat.to_string (Task.effective_release task j))
        (Rat.to_string (Task.effective_deadline task j))
    done
  done;
  Format.fprintf ppf "@]"

let to_csv t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "task,stage,processor,start,finish\n";
  for i = 0 to n_tasks t - 1 do
    for j = 0 to stages t - 1 do
      Buffer.add_string buf
        (Printf.sprintf "%d,%d,%d,%s,%s\n" i j
           (t.shop.Recurrence_shop.visit.Visit.sequence.(j) + 1)
           (Rat.to_string (start t ~task:i ~stage:j))
           (Rat.to_string (finish t ~task:i ~stage:j)))
    done
  done;
  Buffer.contents buf

let pp_gantt ?(unit_time = Rat.one) ppf t =
  let m = t.shop.Recurrence_shop.visit.Visit.processors in
  (* Column 0 sits at the earliest start, not at 0: clamping negative
     starts into cell 0 would draw overlaps that do not exist.  For the
     common all-nonnegative case the origin stays 0, keeping the axis of
     every existing chart. *)
  let origin = ref Rat.zero in
  for i = 0 to n_tasks t - 1 do
    for j = 0 to stages t - 1 do
      origin := Rat.min !origin t.starts.(i).(j)
    done
  done;
  let origin = !origin in
  let horizon = Rat.sub (makespan t) origin in
  let cells = Rat.ceil (Rat.div horizon unit_time) in
  let cells = Stdlib.min cells 200 in
  Format.fprintf ppf "@[<v>";
  if not (Rat.is_zero origin) then Format.fprintf ppf "t = %a at column 0@," Rat.pp origin;
  for p = 0 to m - 1 do
    let row = Bytes.make cells '.' in
    List.iter
      (fun (s, i, j) ->
        let f = finish t ~task:i ~stage:j in
        let c0 = Rat.floor (Rat.div (Rat.sub s origin) unit_time) in
        let c1 = Rat.ceil (Rat.div (Rat.sub f origin) unit_time) in
        for c = Stdlib.max 0 c0 to Stdlib.min (cells - 1) (c1 - 1) do
          Bytes.set row c (Char.chr (Char.code '0' + (i + 1) mod 10))
        done)
      (processor_entries t p);
    Format.fprintf ppf "P%d |%s|@," (p + 1) (Bytes.to_string row)
  done;
  Format.fprintf ppf "@]"
