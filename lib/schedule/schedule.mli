(** Explicit nonpreemptive schedules and an independent feasibility
    checker.

    A schedule assigns a start time to every (task, stage) pair of a
    (possibly recurrent) flow shop.  The checker re-derives every
    constraint of the paper's model from scratch — release times,
    end-to-end deadlines, chain precedence, and mutual exclusion on every
    processor — so that the optimality claims of the scheduling
    algorithms are validated by code that shares nothing with them. *)

type rat = E2e_rat.Rat.t

type t = private {
  shop : E2e_model.Recurrence_shop.t;
  starts : rat array array;  (** [starts.(i).(j)]: start of stage [j] of task [i]. *)
}

val make : E2e_model.Recurrence_shop.t -> rat array array -> t
(** @raise Invalid_argument on a shape mismatch with the shop. *)

val of_flow_shop : E2e_model.Flow_shop.t -> rat array array -> t
(** Wraps a traditional flow shop. *)

val start : t -> task:int -> stage:int -> rat
val finish : t -> task:int -> stage:int -> rat
val completion : t -> int -> rat
(** Completion time of a task: finish of its last stage. *)

val makespan : t -> rat
(** Latest completion over all tasks. *)

val is_permutation : t -> bool
(** True when all processors execute the tasks in one common order —
    the schedule class Algorithm H searches (Section 4). *)

(** {1 Checking} *)

type violation =
  | Release_violated of { task : int; start : rat; release : rat }
      (** The first stage starts before the task's end-to-end release. *)
  | Deadline_missed of { task : int; finish : rat; deadline : rat }
  | Precedence_violated of { task : int; stage : int; start : rat; prev_finish : rat }
      (** A stage starts before the previous stage of the same task ends. *)
  | Overlap of { processor : int; a : int * int; b : int * int }
      (** Two stages (task, stage) execute simultaneously on one processor. *)

val pp_violation : Format.formatter -> violation -> unit

val violations : t -> violation list
(** All constraint violations; the empty list means the schedule is
    feasible in the sense of the paper. *)

val is_feasible : t -> bool

val check : t -> (unit, violation list) result

(** {1 Construction helpers} *)

val forward_pass : E2e_model.Recurrence_shop.t -> order:int array -> t
(** List schedule: visit tasks in [order]; each stage starts as early as
    possible, at the max of its effective availability (previous stage's
    finish, or the task release for stage 0) and the time its processor
    frees up.  Within [order], earlier tasks get the processor first.
    This is the earliest-start schedule for the given permutation, used
    by the exhaustive baseline, the workload generator, and tests. *)

val left_shift : t -> t
(** Compaction of an arbitrary schedule: keeping every processor's
    execution order, restart every stage as early as release, precedence
    and the processor's previous stage allow (the generalisation of the
    paper's Algorithm C to non-permutation schedules). *)

(** {1 Reporting} *)

val pp_table : Format.formatter -> t -> unit
(** One line per stage: task, stage, processor, start, finish,
    effective window. *)

val to_csv : t -> string
(** Machine-readable dump, one line per stage:
    [task,stage,processor,start,finish] with exact rational fields
    (["3/2"]).  For feeding external plotting or runtime tables. *)

val pp_gantt : ?unit_time:rat -> Format.formatter -> t -> unit
(** ASCII Gantt chart, one row per processor, one column per [unit_time]
    (default 1).  Stage occupying a cell prints the task id (mod 10);
    idle prints [.].  Starts that fall inside a cell round down, so the
    chart is exact when all times are multiples of [unit_time].  Column 0
    is time 0, unless some stage starts earlier, in which case the axis
    is offset to the earliest start (announced by a [t = ... at column 0]
    header line) so pre-zero entries are drawn instead of being clamped
    into the first cell. *)
