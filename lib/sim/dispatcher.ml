module Rat = E2e_rat.Rat
module Task = E2e_model.Task
module Visit = E2e_model.Visit
module Recurrence_shop = E2e_model.Recurrence_shop
module Schedule = E2e_schedule.Schedule
module Obs = E2e_obs.Obs

type rat = Rat.t
type discipline = Time_triggered | Work_conserving
type execution = { starts : rat array array; finishes : rat array array }

type outcome = {
  execution : execution;
  deadline_misses : (int * rat) list;
  structural_violations : int;
}

let validate_actual (s : Schedule.t) actual =
  let n = Array.length s.starts in
  if Array.length actual <> n then invalid_arg "Dispatcher: wrong task count";
  Array.iteri
    (fun i row ->
      if Array.length row <> Array.length s.starts.(i) then
        invalid_arg "Dispatcher: wrong stage count";
      Array.iter
        (fun d -> if Rat.(d <= Rat.zero) then invalid_arg "Dispatcher: nonpositive duration")
        row)
    actual

(* Every stage instance in global planned-start order; used both to keep
   each processor's planned order and to re-time work-conserving runs. *)
let planned_order (s : Schedule.t) =
  let n = Array.length s.starts and k = Array.length s.starts.(0) in
  List.concat (List.init n (fun i -> List.init k (fun j -> (s.starts.(i).(j), i, j))))
  |> List.sort (fun (a, i1, j1) (b, i2, j2) ->
         let c = Rat.compare a b in
         if c <> 0 then c else compare (i1, j1) (i2, j2))

let execute discipline (s : Schedule.t) actual =
  let shop = s.Schedule.shop in
  let n = Array.length s.starts and k = Array.length s.starts.(0) in
  let starts = Array.make_matrix n k Rat.zero in
  let finishes = Array.make_matrix n k Rat.zero in
  (match discipline with
  | Time_triggered ->
      for i = 0 to n - 1 do
        for j = 0 to k - 1 do
          starts.(i).(j) <- s.starts.(i).(j);
          finishes.(i).(j) <- Rat.add s.starts.(i).(j) actual.(i).(j)
        done
      done
  | Work_conserving ->
      let free = Array.make shop.Recurrence_shop.visit.Visit.processors Rat.zero in
      List.iter
        (fun (_, i, j) ->
          let task = shop.Recurrence_shop.tasks.(i) in
          let p = shop.Recurrence_shop.visit.Visit.sequence.(j) in
          let ready = if j = 0 then task.Task.release else finishes.(i).(j - 1) in
          let start = Rat.max ready free.(p) in
          starts.(i).(j) <- start;
          let finish = Rat.add start actual.(i).(j) in
          finishes.(i).(j) <- finish;
          free.(p) <- finish)
        (planned_order s));
  { starts; finishes }

let count_structural (s : Schedule.t) (e : execution) =
  let shop = s.Schedule.shop in
  let n = Array.length e.starts and k = Array.length e.starts.(0) in
  let count = ref 0 in
  for i = 0 to n - 1 do
    let task = shop.Recurrence_shop.tasks.(i) in
    if Rat.(e.starts.(i).(0) < task.Task.release) then incr count;
    for j = 1 to k - 1 do
      let prev = e.finishes.(i).(j - 1) in
      if Rat.(e.starts.(i).(j) < prev) then incr count
    done
  done;
  let m = shop.Recurrence_shop.visit.Visit.processors in
  for p = 0 to m - 1 do
    let entries = ref [] in
    for i = 0 to n - 1 do
      for j = 0 to k - 1 do
        if shop.Recurrence_shop.visit.Visit.sequence.(j) = p then
          entries := (e.starts.(i).(j), e.finishes.(i).(j)) :: !entries
      done
    done;
    let sorted = List.sort (fun (a, _) (b, _) -> Rat.compare a b) !entries in
    let rec scan = function
      | (_, f1) :: ((s2, _) :: _ as rest) ->
          if Rat.(s2 < f1) then incr count;
          scan rest
      | [] | [ _ ] -> ()
    in
    scan sorted
  done;
  !count

let run discipline (s : Schedule.t) ~actual =
  validate_actual s actual;
  Obs.span "dispatcher.run"
    ~fields:
      [
        ( "discipline",
          Obs.Str
            (match discipline with
            | Time_triggered -> "time_triggered"
            | Work_conserving -> "work_conserving") );
      ]
  @@ fun () ->
  Obs.incr "dispatcher.runs";
  let execution = execute discipline s actual in
  let shop = s.Schedule.shop in
  let n = Array.length execution.starts and k = Array.length execution.starts.(0) in
  if Obs.enabled () then
    for i = 0 to n - 1 do
      for j = 0 to k - 1 do
        Obs.event "dispatcher.execute"
          ~fields:
            [
              ("task", Obs.Int i); ("stage", Obs.Int j);
              ("processor", Obs.Int shop.Recurrence_shop.visit.Visit.sequence.(j));
              ("start", Obs.Float (Rat.to_float execution.starts.(i).(j)));
              ("finish", Obs.Float (Rat.to_float execution.finishes.(i).(j)));
            ]
      done
    done;
  let misses = ref [] in
  for i = n - 1 downto 0 do
    let completion = execution.finishes.(i).(k - 1) in
    if Rat.(completion > shop.Recurrence_shop.tasks.(i).Task.deadline) then begin
      if Obs.enabled () then begin
        Obs.incr "dispatcher.deadline_misses";
        Obs.event "dispatcher.deadline_miss"
          ~fields:
            [
              ("task", Obs.Int i);
              ("finish", Obs.Float (Rat.to_float completion));
              ( "deadline",
                Obs.Float (Rat.to_float shop.Recurrence_shop.tasks.(i).Task.deadline) );
            ]
      end;
      misses := (i, completion) :: !misses
    end
  done;
  let structural_violations = count_structural s execution in
  if structural_violations > 0 then
    Obs.incr ~by:structural_violations "dispatcher.structural_violations";
  { execution; deadline_misses = !misses; structural_violations }

let scale_durations (s : Schedule.t) ~factor =
  Array.map
    (fun (task : Task.t) -> Array.map (fun tau -> Rat.mul tau factor) task.Task.proc_times)
    s.Schedule.shop.Recurrence_shop.tasks

let sustainable_time_triggered s ~actual =
  let outcome = run Time_triggered s ~actual in
  outcome.deadline_misses = [] && outcome.structural_violations = 0
