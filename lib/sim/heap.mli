(** The simulators' event queue: an alias of {!E2e_ds.Heap} (kept under
    this name so simulator code and tests are unchanged). *)

include module type of struct
  include E2e_ds.Heap
end
