module Rat = E2e_rat.Rat
module Task = E2e_model.Task
module Visit = E2e_model.Visit
module Recurrence_shop = E2e_model.Recurrence_shop
module Obs = E2e_obs.Obs

type rat = Rat.t
type segment = { task : int; stage : int; from_ : rat; until : rat }

type result = {
  completions : rat array array;
  segments : segment list array;
  deadline_misses : int list;
}

type pending = {
  p_task : int;
  p_stage : int;
  deadline : rat;  (** Effective deadline: the preemptive-EDF priority. *)
  mutable remaining : rat;
}

let run (shop : Recurrence_shop.t) =
  Obs.span "preemptive_sim.run"
    ~fields:[ ("tasks", Obs.Int (Recurrence_shop.n_tasks shop)) ]
  @@ fun () ->
  let n = Recurrence_shop.n_tasks shop in
  let k = Visit.length shop.visit in
  let m = shop.visit.Visit.processors in
  let completions = Array.make_matrix n k Rat.zero in
  let segments = Array.make m [] in
  (* Ready-but-unfinished stages per processor. *)
  let ready : pending list array = Array.make m [] in
  (* Future stage-0 releases, sorted by time. *)
  let future =
    List.sort
      (fun (a, _) (b, _) -> Rat.compare a b)
      (List.init n (fun i -> (shop.tasks.(i).Task.release, i)))
  in
  let make_pending i j =
    {
      p_task = i;
      p_stage = j;
      deadline = Task.effective_deadline shop.tasks.(i) j;
      remaining = shop.tasks.(i).Task.proc_times.(j);
    }
  in
  let edf_min = function
    | [] -> None
    | l ->
        Some
          (List.fold_left
             (fun best x ->
               let c = Rat.compare x.deadline best.deadline in
               if c < 0 || (c = 0 && (x.p_task, x.p_stage) < (best.p_task, best.p_stage)) then x
               else best)
             (List.hd l) l)
  in
  let total = ref (n * k) in
  let rec loop t future =
    if !total = 0 then ()
    else begin
      (* Release everything due at or before t. *)
      let due, future = List.partition (fun (r, _) -> Rat.(r <= t)) future in
      List.iter
        (fun (_, i) ->
          let p = shop.visit.Visit.sequence.(0) in
          ready.(p) <- make_pending i 0 :: ready.(p))
        due;
      (* Each processor runs its EDF-min job; next event is the earliest
         completion or the next release. *)
      let running = Array.map edf_min ready in
      let next_completion =
        Array.fold_left
          (fun acc job ->
            match job with
            | None -> acc
            | Some j ->
                let finish = Rat.add t j.remaining in
                Some (match acc with None -> finish | Some a -> Rat.min a finish))
          None running
      in
      let next_release = match future with [] -> None | (r, _) :: _ -> Some r in
      match (next_completion, next_release) with
      | None, None ->
          (* Nothing running and nothing to release, but stages remain:
             impossible in a work-conserving simulation. *)
          assert (!total = 0)
      | None, Some r -> loop r future
      | Some finish, maybe_release ->
          let t' =
            match maybe_release with Some r when Rat.(r < finish) -> r | _ -> finish
          in
          let dt = Rat.sub t' t in
          (* Advance every running job and record its slice. *)
          Array.iteri
            (fun p job ->
              match job with
              | None -> ()
              | Some j ->
                  if Rat.(dt > Rat.zero) then begin
                    if Obs.enabled () then begin
                      Obs.incr "preemptive_sim.slices";
                      Obs.event "preemptive_sim.dispatch"
                        ~fields:
                          [
                            ("task", Obs.Int j.p_task);
                            ("stage", Obs.Int j.p_stage);
                            ("processor", Obs.Int p);
                            ("from", Obs.Float (Rat.to_float t));
                            ("until", Obs.Float (Rat.to_float t'));
                          ]
                    end;
                    segments.(p) <-
                      { task = j.p_task; stage = j.p_stage; from_ = t; until = t' }
                      :: segments.(p)
                  end;
                  j.remaining <- Rat.sub j.remaining dt)
            running;
          (* Handle completions at t'. *)
          Array.iteri
            (fun p job ->
              match job with
              | None -> ()
              | Some j ->
                  if Rat.is_zero j.remaining then begin
                    ready.(p) <- List.filter (fun x -> x != j) ready.(p);
                    completions.(j.p_task).(j.p_stage) <- t';
                    decr total;
                    if Obs.enabled () then begin
                      Obs.incr "preemptive_sim.completions";
                      Obs.event "preemptive_sim.complete"
                        ~fields:
                          [
                            ("task", Obs.Int j.p_task);
                            ("stage", Obs.Int j.p_stage);
                            ("processor", Obs.Int p);
                            ("t", Obs.Float (Rat.to_float t'));
                          ]
                    end;
                    if j.p_stage + 1 < k then begin
                      let q = shop.visit.Visit.sequence.(j.p_stage + 1) in
                      ready.(q) <- make_pending j.p_task (j.p_stage + 1) :: ready.(q)
                    end
                  end)
            running;
          loop t' future
    end
  in
  let start =
    match future with [] -> Rat.zero | (r, _) :: _ -> r
  in
  loop start future;
  let misses =
    List.filter
      (fun i ->
        let finish = completions.(i).(k - 1) in
        Rat.(finish > shop.tasks.(i).Task.deadline))
      (List.init n Fun.id)
  in
  if Obs.enabled () then
    List.iter
      (fun i ->
        Obs.incr "preemptive_sim.deadline_misses";
        Obs.event "preemptive_sim.deadline_miss"
          ~fields:
            [
              ("task", Obs.Int i);
              ("finish", Obs.Float (Rat.to_float completions.(i).(k - 1)));
              ("deadline", Obs.Float (Rat.to_float shop.tasks.(i).Task.deadline));
            ])
      misses;
  (* Coalesce adjacent slices of the same stage for readability. *)
  let coalesce slices =
    List.fold_left
      (fun acc s ->
        match acc with
        | prev :: rest
          when prev.task = s.task && prev.stage = s.stage && Rat.equal prev.until s.from_ ->
            { prev with until = s.until } :: rest
        | _ -> s :: acc)
      []
      (List.rev slices)
    |> List.rev
  in
  let segments = Array.map coalesce segments in
  (* A stage split over s > 1 coalesced slices was preempted s - 1 times. *)
  if Obs.enabled () then begin
    let slice_counts = Hashtbl.create 32 in
    Array.iter
      (List.iter (fun s ->
           let key = (s.task, s.stage) in
           Hashtbl.replace slice_counts key
             (1 + Option.value ~default:0 (Hashtbl.find_opt slice_counts key))))
      segments;
    let preemptions = Hashtbl.fold (fun _ c acc -> acc + (c - 1)) slice_counts 0 in
    if preemptions > 0 then Obs.incr ~by:preemptions "preemptive_sim.preemptions"
  end;
  { completions; segments; deadline_misses = misses }

let feasible shop = (run shop).deadline_misses = []
