(* The simulators' event queue is the shared binary min-heap from
   [e2e_ds]; re-exported here so simulator code and its tests keep
   saying [Heap] / [E2e_sim.Heap]. *)
include E2e_ds.Heap
