module Rat = E2e_rat.Rat
module Periodic_shop = E2e_model.Periodic_shop
module Obs = E2e_obs.Obs

type policy = [ `Postponed_phases of float array | `Direct_sync ]

type report = {
  end_to_end : float array;
  precedence_violations : int;
  deadline_misses : int;
  requests : int;
}

let eps = 1e-9

(* Completion time per (job, request) for one processor's simulation. *)
let completion_table n_jobs (result : Rm_sim.result) =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (c : Rm_sim.completion) -> Hashtbl.replace tbl (c.Rm_sim.task, c.Rm_sim.index) c.Rm_sim.finish)
    result.Rm_sim.completions;
  ignore n_jobs;
  tbl

(* The paper's scheme: every processor scheduled rate-monotonically and
   independently, subjob phases postponed by the cumulative deltas. *)
let simulate_postponed ~deadline_factor ~horizon (sys : Periodic_shop.t) deltas =
  let n = Periodic_shop.n_jobs sys in
  let m = sys.processors in
  if Array.length deltas <> m then invalid_arg "Pipeline_sim: wrong delta count";
  let phases = E2e_periodic.Analysis.phases sys deltas in
  let tables =
    Array.init m (fun j ->
        let specs =
          Array.mapi
            (fun i (job : Periodic_shop.job) ->
              (phases.(i).(j), Rat.to_float job.period, Rat.to_float job.proc_times.(j)))
            sys.jobs
        in
        completion_table n (Rm_sim.simulate ~horizon (Rm_sim.rm_priorities specs)))
  in
  let end_to_end = Array.make n 0.0 in
  let precedence_violations = ref 0 in
  let deadline_misses = ref 0 in
  let requests = ref 0 in
  for i = 0 to n - 1 do
    let job = sys.jobs.(i) in
    let p = Rat.to_float job.Periodic_shop.period in
    let b = Rat.to_float job.Periodic_shop.phase in
    let k = ref 0 in
    let continue_ = ref true in
    while !continue_ do
      let ready = b +. (float_of_int !k *. p) in
      let complete_chain =
        Array.for_all (fun tbl -> Hashtbl.mem tbl (i, !k)) tables
      in
      if (not complete_chain) || ready >= horizon then continue_ := false
      else begin
        incr requests;
        Obs.incr "pipeline_sim.requests";
        (* Precedence: the postponed release of stage j must not precede
           the completion of stage j-1. *)
        for j = 1 to m - 1 do
          let release_j = phases.(i).(j) +. (float_of_int !k *. p) in
          let prev_finish = Hashtbl.find tables.(j - 1) (i, !k) in
          if prev_finish > release_j +. eps then begin
            incr precedence_violations;
            if Obs.enabled () then begin
              Obs.incr "pipeline_sim.precedence_violations";
              Obs.event "pipeline_sim.precedence_violation"
                ~fields:
                  [
                    ("job", Obs.Int i); ("request", Obs.Int !k); ("stage", Obs.Int j);
                    ("release", Obs.Float release_j);
                    ("prev_finish", Obs.Float prev_finish);
                  ]
            end
          end
        done;
        let finish = Hashtbl.find tables.(m - 1) (i, !k) in
        let response = finish -. ready in
        if Obs.enabled () then Obs.observe "pipeline_sim.response" response;
        if response > end_to_end.(i) then end_to_end.(i) <- response;
        if response > (deadline_factor *. p) +. eps then begin
          incr deadline_misses;
          if Obs.enabled () then begin
            Obs.incr "pipeline_sim.deadline_misses";
            Obs.event "pipeline_sim.deadline_miss"
              ~fields:
                [
                  ("job", Obs.Int i); ("request", Obs.Int !k);
                  ("response", Obs.Float response);
                  ("deadline", Obs.Float (deadline_factor *. p));
                ]
          end
        end;
        incr k
      end
    done
  done;
  {
    end_to_end;
    precedence_violations = !precedence_violations;
    deadline_misses = !deadline_misses;
    requests = !requests;
  }

(* Greedy cross-processor synchronisation: stage j is released the moment
   stage j-1 completes; each processor is preemptive fixed-priority. *)
type sjob = {
  job : int;
  k : int;
  stage : int;
  ready : float;
  priority : int;
  mutable remaining : float;
}

let simulate_direct ~deadline_factor ~horizon (sys : Periodic_shop.t) =
  let n = Periodic_shop.n_jobs sys in
  let m = sys.processors in
  let period i = Rat.to_float sys.jobs.(i).Periodic_shop.period in
  let wcet i j = Rat.to_float sys.jobs.(i).Periodic_shop.proc_times.(j) in
  (* Rate-monotonic priorities by period, ties by id. *)
  let prio =
    let order = Array.init n Fun.id in
    Array.sort
      (fun a b -> if period a <> period b then compare (period a) (period b) else compare a b)
      order;
    let p = Array.make n 0 in
    Array.iteri (fun rank i -> p.(i) <- rank) order;
    p
  in
  let cmp a b =
    let c = compare a.priority b.priority in
    if c <> 0 then c
    else
      let c = compare a.ready b.ready in
      if c <> 0 then c else compare (a.job, a.k, a.stage) (b.job, b.k, b.stage)
  in
  let pending = Array.init m (fun _ -> Heap.create ~cmp) in
  let arrivals =
    List.concat
      (List.init n (fun i ->
           let b = Rat.to_float sys.jobs.(i).Periodic_shop.phase in
           let rec gen k acc =
             let ready = b +. (float_of_int k *. period i) in
             if ready >= horizon then List.rev acc
             else
               gen (k + 1)
                 ({ job = i; k; stage = 0; ready; priority = prio.(i); remaining = wcet i 0 }
                 :: acc)
           in
           gen 0 []))
    |> List.sort (fun a b -> compare a.ready b.ready)
  in
  let end_to_end = Array.make n 0.0 in
  let deadline_misses = ref 0 in
  let requests = ref 0 in
  let hard_stop = 4.0 *. horizon in
  let record_completion j finish =
    if j.stage = m - 1 then begin
      let ready0 = Rat.to_float sys.jobs.(j.job).Periodic_shop.phase
                   +. (float_of_int j.k *. period j.job) in
      let response = finish -. ready0 in
      incr requests;
      Obs.incr "pipeline_sim.requests";
      if Obs.enabled () then Obs.observe "pipeline_sim.response" response;
      if response > end_to_end.(j.job) then end_to_end.(j.job) <- response;
      if response > (deadline_factor *. period j.job) +. eps then begin
        incr deadline_misses;
        if Obs.enabled () then begin
          Obs.incr "pipeline_sim.deadline_misses";
          Obs.event "pipeline_sim.deadline_miss"
            ~fields:
              [
                ("job", Obs.Int j.job); ("request", Obs.Int j.k);
                ("response", Obs.Float response);
                ("deadline", Obs.Float (deadline_factor *. period j.job));
              ]
        end
      end
    end
  in
  let rec run t arrivals =
    (* Earliest event: stage-0 arrival or a completion on some processor. *)
    let next_arr = match arrivals with [] -> infinity | a :: _ -> a.ready in
    let next_completion = ref infinity and argmin = ref (-1) in
    for p = 0 to m - 1 do
      match Heap.peek pending.(p) with
      | Some top when t +. top.remaining < !next_completion ->
          next_completion := t +. top.remaining;
          argmin := p
      | _ -> ()
    done;
    if next_arr = infinity && !argmin = -1 then ()
    else if t >= hard_stop then ()
    else if next_arr <= !next_completion then begin
      (* Advance every processor's running job to the arrival instant. *)
      let dt = next_arr -. t in
      if dt > 0.0 then
        Array.iter
          (fun h -> match Heap.peek h with Some top -> top.remaining <- top.remaining -. dt | None -> ())
          pending;
      let now, later = List.partition (fun a -> a.ready <= next_arr) arrivals in
      List.iter (fun a -> Heap.push pending.(0) a) now;
      run next_arr later
    end
    else begin
      let p = !argmin in
      let dt = !next_completion -. t in
      Array.iteri
        (fun q h ->
          if q <> p then
            match Heap.peek h with Some top -> top.remaining <- top.remaining -. dt | None -> ())
        pending;
      let top = Option.get (Heap.pop pending.(p)) in
      let finish = !next_completion in
      record_completion top finish;
      if top.stage < m - 1 then begin
        let stage = top.stage + 1 in
        Heap.push
          pending.(stage)
          {
            job = top.job;
            k = top.k;
            stage;
            ready = finish;
            priority = top.priority;
            remaining = wcet top.job stage;
          }
      end;
      run finish arrivals
    end
  in
  let start = match arrivals with [] -> 0.0 | a :: _ -> a.ready in
  run start arrivals;
  { end_to_end; precedence_violations = 0; deadline_misses = !deadline_misses; requests = !requests }

let simulate ?(deadline_factor = 1.0) ~horizon ~policy sys =
  if horizon <= 0.0 then invalid_arg "Pipeline_sim.simulate: nonpositive horizon";
  Obs.span "pipeline_sim.simulate"
    ~fields:
      [
        ("jobs", Obs.Int (Periodic_shop.n_jobs sys));
        ("horizon", Obs.Float horizon);
        ( "policy",
          Obs.Str
            (match policy with
            | `Postponed_phases _ -> "postponed_phases"
            | `Direct_sync -> "direct_sync") );
      ]
    (fun () ->
      match policy with
      | `Postponed_phases deltas -> simulate_postponed ~deadline_factor ~horizon sys deltas
      | `Direct_sync -> simulate_direct ~deadline_factor ~horizon sys)
