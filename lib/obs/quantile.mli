(** Mergeable log-bucketed quantile sketch (HdrHistogram-style).

    Observations are counted in exponentially spaced buckets with [k]
    sub-buckets per power-of-two octave, where [k = ceil (1 / (2 alpha))].
    A reported quantile is the midpoint of the bucket holding the exact
    rank, so for any positive sample it is within {b relative error
    [alpha]} of the exact nearest-rank quantile (observations [<= 0]
    share one exact "zero" bucket).  Memory is proportional to the
    number of {e occupied} buckets, independent of the observation
    count, and two sketches with the same [alpha] merge losslessly —
    merged quantiles equal the quantiles of the concatenated sample's
    sketch.  This is the one audited percentile implementation shared by
    [Obs] histograms, the serve request tracer, [e2e-loadgen] and
    [e2e-trace].

    {b Determinism.}  Bucket assignment uses [Float.frexp] and bucket
    bounds use [Float.ldexp] — exact float arithmetic only, no libm
    [log] — so bucket contents and reported quantiles are bit-identical
    across platforms.  [make check] relies on this when comparing trace
    summaries against a committed golden file.

    A sketch is a mutable single-domain accumulator ([observe] takes no
    lock); cross-domain aggregation goes through {!merge} after a
    [Domain.join], exactly like the [Obs] per-domain metric stores. *)

type t

val create : ?alpha:float -> unit -> t
(** A fresh empty sketch with relative-error bound [alpha] (default
    [0.01], i.e. 50 sub-buckets per octave).
    @raise Invalid_argument unless [0 < alpha < 1]. *)

val alpha : t -> float

val observe : t -> float -> unit
(** Record one observation.  Values [<= 0], [nan] and non-finite values
    are counted in the exact zero bucket (durations are non-negative;
    [nan] also contributes [0] to {!sum}). *)

val count : t -> int
(** Total observations recorded. *)

val zeros : t -> int
(** Observations that landed in the zero bucket. *)

val sum : t -> float

val min_value : t -> float
(** Smallest observation, [0.] when empty. *)

val max_value : t -> float
(** Largest observation, [0.] when empty. *)

val quantile : t -> float -> float
(** [quantile t q] estimates the [q]-quantile using the nearest-rank
    rule [rank = ceil (q *. float (count - 1))] (so [q = 0.] is the
    minimum rank and [q = 1.] the maximum).  [0.] on an empty sketch.
    @raise Invalid_argument unless [0 <= q <= 1]. *)

val merge : t -> t -> t
(** [merge a b] is a {e fresh} sketch holding both sample sets; [a] and
    [b] are unchanged.  Exact on bucket counts (merge is associative and
    commutative up to float addition in {!sum}).
    @raise Invalid_argument if the sketches were created with different
    [alpha]. *)

val copy : t -> t

val buckets : t -> (float * float * int) list
(** Occupied positive buckets as [(lo, hi, count)] with [lo <= v < hi],
    sorted ascending.  The zero bucket is reported by {!zeros}.  For
    tests and exposition. *)
