type value = Bool of bool | Int of int | Float of float | Str of string

type field = string * value

type kind = Span_begin | Span_end of float | Instant | Counter of float

type event = {
  ts : float;
  name : string;
  kind : kind;
  depth : int;
  fields : field list;
}

let value_json = function
  | Bool b -> Json.Bool b
  | Int n -> Json.int n
  | Float f -> Json.Num f
  | Str s -> Json.Str s

let field_json fields = Json.Obj (List.map (fun (k, v) -> (k, value_json v)) fields)

(* ------------------------------------------------------------------ *)
(* Clock: any float source, clamped so trace timestamps never go        *)
(* backwards even if the wall clock is stepped underneath us.           *)

module Clock = struct
  let wall = Unix.gettimeofday
  let source = ref wall
  let last = ref neg_infinity

  let now () =
    let t = !source () in
    if t > !last then last := t;
    !last

  let set_source f =
    source := f;
    last := neg_infinity

  let use_wall_clock () = set_source wall
end

(* ------------------------------------------------------------------ *)
(* Sinks.                                                              *)

module Sink = struct
  type t = { emit : event -> unit; close : unit -> unit }

  let null = { emit = ignore; close = ignore }

  let memory () =
    let buffer = ref [] in
    ( { emit = (fun e -> buffer := e :: !buffer); close = ignore },
      fun () -> List.rev !buffer )

  let tee sinks =
    {
      emit = (fun e -> List.iter (fun s -> s.emit e) sinks);
      close = (fun () -> List.iter (fun s -> s.close ()) sinks);
    }

  let src = Logs.Src.create "e2e_sched.obs" ~doc:"e2e_sched telemetry"

  let pp_fields ppf = function
    | [] -> ()
    | fields ->
        List.iter
          (fun (k, v) ->
            Format.fprintf ppf " %s=%s" k
              (match v with
              | Bool b -> string_of_bool b
              | Int n -> string_of_int n
              | Float f -> Printf.sprintf "%g" f
              | Str s -> s))
          fields

  let logs ?(level = Logs.Debug) () =
    {
      emit =
        (fun e ->
          let pad = String.make e.depth ' ' in
          let line =
            match e.kind with
            | Span_begin ->
                Format.asprintf "[%.6f] %s> %s%a" e.ts pad e.name pp_fields e.fields
            | Span_end dur ->
                Format.asprintf "[%.6f] %s< %s (%.6fs)%a" e.ts pad e.name dur pp_fields
                  e.fields
            | Instant ->
                Format.asprintf "[%.6f] %s. %s%a" e.ts pad e.name pp_fields e.fields
            | Counter v ->
                Format.asprintf "[%.6f] %s# %s = %g%a" e.ts pad e.name v pp_fields
                  e.fields
          in
          Logs.msg ~src level (fun m -> m "%s" line));
      close = ignore;
    }

  let jsonl_record e =
    let kind, extra =
      match e.kind with
      | Span_begin -> ("span_begin", [])
      | Span_end dur -> ("span_end", [ ("dur", Json.Num dur) ])
      | Instant -> ("event", [])
      | Counter v -> ("counter", [ ("value", Json.Num v) ])
    in
    Json.Obj
      ([ ("ts", Json.Num e.ts); ("type", Json.Str kind); ("name", Json.Str e.name);
         ("depth", Json.int e.depth) ]
      @ extra
      @ (match e.fields with [] -> [] | fs -> [ ("fields", field_json fs) ]))

  let jsonl oc =
    {
      emit =
        (fun e ->
          output_string oc (Json.to_string (jsonl_record e));
          output_char oc '\n');
      close =
        (fun () ->
          flush oc;
          close_out oc);
    }

  (* Chrome trace_event array format.  Timestamps are microseconds; all
     events live on one pid/tid so nested spans stack in the UI. *)
  let chrome_record e =
    let us = e.ts *. 1e6 in
    let base = [ ("pid", Json.int 1); ("tid", Json.int 1); ("ts", Json.Num us) ] in
    match e.kind with
    | Span_begin ->
        Json.Obj
          (( ("name", Json.Str e.name) :: ("cat", Json.Str "e2e_sched")
           :: ("ph", Json.Str "B") :: base )
          @ [ ("args", field_json e.fields) ])
    | Span_end _ ->
        Json.Obj
          (( ("name", Json.Str e.name) :: ("cat", Json.Str "e2e_sched")
           :: ("ph", Json.Str "E") :: base )
          @ [ ("args", field_json e.fields) ])
    | Instant ->
        Json.Obj
          (( ("name", Json.Str e.name) :: ("cat", Json.Str "e2e_sched")
           :: ("ph", Json.Str "i") :: ("s", Json.Str "t") :: base )
          @ [ ("args", field_json e.fields) ])
    | Counter v ->
        Json.Obj
          (( ("name", Json.Str e.name) :: ("cat", Json.Str "e2e_sched")
           :: ("ph", Json.Str "C") :: base )
          @ [ ("args", Json.Obj [ ("value", Json.Num v) ]) ])

  let chrome oc =
    let first = ref true in
    output_char oc '[';
    {
      emit =
        (fun e ->
          if !first then first := false else output_string oc ",\n";
          output_string oc (Json.to_string (chrome_record e)));
      close =
        (fun () ->
          output_string oc "]\n";
          flush oc;
          close_out oc);
    }
end

(* ------------------------------------------------------------------ *)
(* Global state.  [on] mirrors (sink <> None || stats): the single      *)
(* bool the hot paths read.                                             *)

let sink : Sink.t option ref = ref None
let stats = ref false
let on = ref false
let t0 = ref 0.0
let depth = ref 0

let refresh () = on := !sink <> None || !stats

let enabled () = !on
let stats_enabled () = !stats

let uninstall () =
  (match !sink with Some s -> s.Sink.close () | None -> ());
  sink := None;
  depth := 0;
  refresh ()

let install s =
  uninstall ();
  sink := Some s;
  t0 := Clock.now ();
  refresh ()

let set_stats b =
  stats := b;
  refresh ()

let emit kind name fields =
  match !sink with
  | None -> ()
  | Some s ->
      s.Sink.emit
        { ts = Clock.now () -. !t0; name; kind; depth = !depth; fields }

let event ?(fields = []) name = if !on then emit Instant name fields

let span ?(fields = []) name f =
  if not !on then f ()
  else begin
    let start = Clock.now () in
    emit Span_begin name fields;
    incr depth;
    let finish () =
      decr depth;
      emit (Span_end (Clock.now () -. start)) name fields
    in
    match f () with
    | result ->
        finish ();
        result
    | exception exn ->
        finish ();
        raise exn
  end

(* ------------------------------------------------------------------ *)
(* Metrics.                                                            *)

type histogram = { count : int; sum : float; min : float; max : float }

let counter_tbl : (string, int ref) Hashtbl.t = Hashtbl.create 32
let gauge_tbl : (string, float ref) Hashtbl.t = Hashtbl.create 16
let hist_tbl : (string, histogram ref) Hashtbl.t = Hashtbl.create 16

let incr ?(by = 1) name =
  if !on then begin
    let cell =
      match Hashtbl.find_opt counter_tbl name with
      | Some cell -> cell
      | None ->
          let cell = ref 0 in
          Hashtbl.add counter_tbl name cell;
          cell
    in
    cell := !cell + by;
    emit (Counter (float_of_int !cell)) name []
  end

let gauge name v =
  if !on then begin
    (match Hashtbl.find_opt gauge_tbl name with
    | Some cell -> cell := v
    | None -> Hashtbl.add gauge_tbl name (ref v));
    emit (Counter v) name []
  end

let observe name v =
  if !on then begin
    (match Hashtbl.find_opt hist_tbl name with
    | Some cell ->
        let h = !cell in
        cell :=
          {
            count = h.count + 1;
            sum = h.sum +. v;
            min = Float.min h.min v;
            max = Float.max h.max v;
          }
    | None -> Hashtbl.add hist_tbl name (ref { count = 1; sum = v; min = v; max = v }))
  end

let counter_value name =
  match Hashtbl.find_opt counter_tbl name with Some c -> !c | None -> 0

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, !v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let counters () = sorted_bindings counter_tbl
let gauges () = sorted_bindings gauge_tbl
let histograms () = sorted_bindings hist_tbl

let reset_metrics () =
  Hashtbl.reset counter_tbl;
  Hashtbl.reset gauge_tbl;
  Hashtbl.reset hist_tbl

let metrics_json () =
  Json.Obj
    [
      ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.int v)) (counters ())));
      ("gauges", Json.Obj (List.map (fun (k, v) -> (k, Json.Num v)) (gauges ())));
      ( "histograms",
        Json.Obj
          (List.map
             (fun (k, h) ->
               ( k,
                 Json.Obj
                   [
                     ("count", Json.int h.count);
                     ("sum", Json.Num h.sum);
                     ("min", Json.Num h.min);
                     ("max", Json.Num h.max);
                   ] ))
             (histograms ())) );
    ]

let pp_metrics ppf () =
  let cs = counters () and gs = gauges () and hs = histograms () in
  if cs = [] && gs = [] && hs = [] then
    Format.fprintf ppf "no metrics recorded@."
  else begin
    List.iter (fun (k, v) -> Format.fprintf ppf "%-42s %12d@." k v) cs;
    List.iter (fun (k, v) -> Format.fprintf ppf "%-42s %12g@." k v) gs;
    List.iter
      (fun (k, h) ->
        Format.fprintf ppf "%-42s n=%d sum=%g min=%g max=%g@." k h.count h.sum h.min
          h.max)
      hs
  end
