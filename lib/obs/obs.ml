type value = Bool of bool | Int of int | Float of float | Str of string

type field = string * value

type kind = Span_begin | Span_end of float | Instant | Counter of float

type event = {
  ts : float;
  name : string;
  kind : kind;
  depth : int;
  fields : field list;
}

let value_json = function
  | Bool b -> Json.Bool b
  | Int n -> Json.int n
  | Float f -> Json.Num f
  | Str s -> Json.Str s

let field_json fields = Json.Obj (List.map (fun (k, v) -> (k, value_json v)) fields)

(* ------------------------------------------------------------------ *)
(* Clock: any float source, clamped so trace timestamps never go        *)
(* backwards even if the wall clock is stepped underneath us.           *)

module Clock = struct
  let wall = Unix.gettimeofday
  let source = ref wall

  (* The clamp is an atomic max so concurrent domains reading the clock
     cannot move it backwards for each other. *)
  let last = Atomic.make neg_infinity

  let now () =
    let t = !source () in
    let rec clamp () =
      let l = Atomic.get last in
      if t > l then if Atomic.compare_and_set last l t then t else clamp () else l
    in
    clamp ()

  let set_source f =
    source := f;
    Atomic.set last neg_infinity

  let use_wall_clock () = set_source wall
end

(* ------------------------------------------------------------------ *)
(* Sinks.                                                              *)

module Sink = struct
  type t = { emit : event -> unit; close : unit -> unit }

  let null = { emit = ignore; close = ignore }

  let memory () =
    let buffer = ref [] in
    ( { emit = (fun e -> buffer := e :: !buffer); close = ignore },
      fun () -> List.rev !buffer )

  let tee sinks =
    {
      emit = (fun e -> List.iter (fun s -> s.emit e) sinks);
      close = (fun () -> List.iter (fun s -> s.close ()) sinks);
    }

  let src = Logs.Src.create "e2e_sched.obs" ~doc:"e2e_sched telemetry"

  let pp_fields ppf = function
    | [] -> ()
    | fields ->
        List.iter
          (fun (k, v) ->
            Format.fprintf ppf " %s=%s" k
              (match v with
              | Bool b -> string_of_bool b
              | Int n -> string_of_int n
              | Float f -> Printf.sprintf "%g" f
              | Str s -> s))
          fields

  let logs ?(level = Logs.Debug) () =
    {
      emit =
        (fun e ->
          let pad = String.make e.depth ' ' in
          let line =
            match e.kind with
            | Span_begin ->
                Format.asprintf "[%.6f] %s> %s%a" e.ts pad e.name pp_fields e.fields
            | Span_end dur ->
                Format.asprintf "[%.6f] %s< %s (%.6fs)%a" e.ts pad e.name dur pp_fields
                  e.fields
            | Instant ->
                Format.asprintf "[%.6f] %s. %s%a" e.ts pad e.name pp_fields e.fields
            | Counter v ->
                Format.asprintf "[%.6f] %s# %s = %g%a" e.ts pad e.name v pp_fields
                  e.fields
          in
          Logs.msg ~src level (fun m -> m "%s" line));
      close = ignore;
    }

  let jsonl_record e =
    let kind, extra =
      match e.kind with
      | Span_begin -> ("span_begin", [])
      | Span_end dur -> ("span_end", [ ("dur", Json.Num dur) ])
      | Instant -> ("event", [])
      | Counter v -> ("counter", [ ("value", Json.Num v) ])
    in
    Json.Obj
      ([ ("ts", Json.Num e.ts); ("type", Json.Str kind); ("name", Json.Str e.name);
         ("depth", Json.int e.depth) ]
      @ extra
      @ (match e.fields with [] -> [] | fs -> [ ("fields", field_json fs) ]))

  let jsonl oc =
    {
      emit =
        (fun e ->
          output_string oc (Json.to_string (jsonl_record e));
          output_char oc '\n');
      close =
        (fun () ->
          flush oc;
          close_out oc);
    }

  (* Chrome trace_event array format.  Timestamps are microseconds; all
     events live on one pid/tid so nested spans stack in the UI. *)
  let chrome_record e =
    let us = e.ts *. 1e6 in
    let base = [ ("pid", Json.int 1); ("tid", Json.int 1); ("ts", Json.Num us) ] in
    match e.kind with
    | Span_begin ->
        Json.Obj
          (( ("name", Json.Str e.name) :: ("cat", Json.Str "e2e_sched")
           :: ("ph", Json.Str "B") :: base )
          @ [ ("args", field_json e.fields) ])
    | Span_end _ ->
        Json.Obj
          (( ("name", Json.Str e.name) :: ("cat", Json.Str "e2e_sched")
           :: ("ph", Json.Str "E") :: base )
          @ [ ("args", field_json e.fields) ])
    | Instant ->
        Json.Obj
          (( ("name", Json.Str e.name) :: ("cat", Json.Str "e2e_sched")
           :: ("ph", Json.Str "i") :: ("s", Json.Str "t") :: base )
          @ [ ("args", field_json e.fields) ])
    | Counter v ->
        Json.Obj
          (( ("name", Json.Str e.name) :: ("cat", Json.Str "e2e_sched")
           :: ("ph", Json.Str "C") :: base )
          @ [ ("args", Json.Obj [ ("value", Json.Num v) ]) ])

  let chrome oc =
    let first = ref true in
    output_char oc '[';
    {
      emit =
        (fun e ->
          if !first then first := false else output_string oc ",\n";
          output_string oc (Json.to_string (chrome_record e)));
      close =
        (fun () ->
          output_string oc "]\n";
          flush oc;
          close_out oc);
    }
end

(* ------------------------------------------------------------------ *)
(* Global state.  [on] mirrors (sink <> None || stats): the single      *)
(* bool the hot paths read.  Install/uninstall/set_stats are main-      *)
(* domain operations; the instrumentation calls themselves are domain-  *)
(* safe: sinks are fed under a mutex and span depth is domain-local.    *)

let sink : Sink.t option ref = ref None
let stats = ref false
let on = ref false
let t0 = ref 0.0
let sink_mu = Mutex.create ()
let depth_key = Domain.DLS.new_key (fun () -> ref 0)

let refresh () = on := !sink <> None || !stats

let enabled () = !on
let stats_enabled () = !stats

let uninstall () =
  Mutex.protect sink_mu (fun () ->
      (match !sink with Some s -> s.Sink.close () | None -> ());
      sink := None);
  Domain.DLS.get depth_key := 0;
  refresh ()

let install s =
  uninstall ();
  Mutex.protect sink_mu (fun () -> sink := Some s);
  t0 := Clock.now ();
  refresh ()

let set_stats b =
  stats := b;
  refresh ()

let emit kind name fields =
  match !sink with
  | None -> ()
  | Some _ ->
      let ts = Clock.now () -. !t0 and depth = !(Domain.DLS.get depth_key) in
      Mutex.protect sink_mu (fun () ->
          match !sink with
          | None -> ()
          | Some s -> s.Sink.emit { ts; name; kind; depth; fields })

let event ?(fields = []) name = if !on then emit Instant name fields

(* Guarded on the sink, not on [on]: spans only ever reach sinks, and a
   stats-only configuration must not read the clock from worker domains
   (under a hand-cranked deterministic clock every read advances shared
   state, so clock reads off the main domain would make traced runs
   depend on domain interleaving). *)
let span ?(fields = []) name f =
  if !sink = None then f ()
  else begin
    let depth = Domain.DLS.get depth_key in
    let start = Clock.now () in
    emit Span_begin name fields;
    incr depth;
    let finish () =
      decr depth;
      emit (Span_end (Clock.now () -. start)) name fields
    in
    match f () with
    | result ->
        finish ();
        result
    | exception exn ->
        finish ();
        raise exn
  end

(* ------------------------------------------------------------------ *)
(* Metrics.  Each domain accumulates into its own store, created        *)
(* lazily through domain-local storage, so the hot update path takes no *)
(* lock and never contends.  Readers ([counters], [metrics_json], ...)  *)
(* merge across stores; [Domain.join] publishes a worker's writes, so   *)
(* merged totals read after a pool join equal the sequential totals.    *)
(* Merging and [reset_metrics] assume no worker domain is concurrently  *)
(* updating — the experiment engine only reads metrics between points.  *)

type histogram = { count : int; sum : float; min : float; max : float }

type store = {
  counter_tbl : (string, int ref) Hashtbl.t;
  gauge_tbl : (string, (float * int) ref) Hashtbl.t;  (* value, update seq *)
  hist_tbl : (string, Quantile.t) Hashtbl.t;
}

let stores_mu = Mutex.create ()
let stores : store list ref = ref []

(* Orders gauge updates across domains so the merge keeps the latest. *)
let gauge_seq = Atomic.make 0

let new_store () =
  let s =
    {
      counter_tbl = Hashtbl.create 32;
      gauge_tbl = Hashtbl.create 16;
      hist_tbl = Hashtbl.create 16;
    }
  in
  Mutex.protect stores_mu (fun () -> stores := s :: !stores);
  s

let store_key = Domain.DLS.new_key new_store
let my_store () = Domain.DLS.get store_key
let all_stores () = Mutex.protect stores_mu (fun () -> !stores)

let incr ?(by = 1) name =
  if !on then begin
    let st = my_store () in
    let cell =
      match Hashtbl.find_opt st.counter_tbl name with
      | Some cell -> cell
      | None ->
          let cell = ref 0 in
          Hashtbl.add st.counter_tbl name cell;
          cell
    in
    cell := !cell + by;
    (* The emitted running value is this domain's own tally. *)
    emit (Counter (float_of_int !cell)) name []
  end

let gauge name v =
  if !on then begin
    let st = my_store () in
    let stamped = (v, Atomic.fetch_and_add gauge_seq 1) in
    (match Hashtbl.find_opt st.gauge_tbl name with
    | Some cell -> cell := stamped
    | None -> Hashtbl.add st.gauge_tbl name (ref stamped));
    emit (Counter v) name []
  end

let observe name v =
  if !on then begin
    let st = my_store () in
    let q =
      match Hashtbl.find_opt st.hist_tbl name with
      | Some q -> q
      | None ->
          let q = Quantile.create () in
          Hashtbl.add st.hist_tbl name q;
          q
    in
    Quantile.observe q v
  end

(* Merge one kind of table across every store into an alist sorted by
   name.  [combine] folds a store's cell into the accumulated value. *)
let merge_tables project combine =
  let acc = Hashtbl.create 32 in
  List.iter
    (fun st ->
      Hashtbl.iter
        (fun name cell ->
          let v = !cell in
          match Hashtbl.find_opt acc name with
          | Some prev -> Hashtbl.replace acc name (combine prev v)
          | None -> Hashtbl.replace acc name v)
        (project st))
    (all_stores ());
  Hashtbl.fold (fun k v l -> (k, v) :: l) acc []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let counters () = merge_tables (fun st -> st.counter_tbl) ( + )

let gauges () =
  merge_tables
    (fun st -> st.gauge_tbl)
    (fun (v1, s1) (v2, s2) -> if s2 > s1 then (v2, s2) else (v1, s1))
  |> List.map (fun (name, (v, _)) -> (name, v))

(* Histograms merge whole sketches (not refs), so they bypass
   [merge_tables]: each store's sketch is copied/merged into a fresh
   per-name aggregate, leaving the per-domain recorders untouched. *)
let sketches () =
  let acc = Hashtbl.create 32 in
  List.iter
    (fun st ->
      Hashtbl.iter
        (fun name q ->
          match Hashtbl.find_opt acc name with
          | Some prev -> Hashtbl.replace acc name (Quantile.merge prev q)
          | None -> Hashtbl.replace acc name (Quantile.copy q))
        st.hist_tbl)
    (all_stores ());
  Hashtbl.fold (fun k v l -> (k, v) :: l) acc []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let histograms () =
  List.map
    (fun (name, q) ->
      ( name,
        {
          count = Quantile.count q;
          sum = Quantile.sum q;
          min = Quantile.min_value q;
          max = Quantile.max_value q;
        } ))
    (sketches ())

let counter_value name =
  List.fold_left
    (fun acc st ->
      match Hashtbl.find_opt st.counter_tbl name with Some c -> acc + !c | None -> acc)
    0 (all_stores ())

let reset_metrics () =
  List.iter
    (fun st ->
      Hashtbl.reset st.counter_tbl;
      Hashtbl.reset st.gauge_tbl;
      Hashtbl.reset st.hist_tbl)
    (all_stores ())

let metrics_json () =
  Json.Obj
    [
      ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.int v)) (counters ())));
      ("gauges", Json.Obj (List.map (fun (k, v) -> (k, Json.Num v)) (gauges ())));
      ( "histograms",
        Json.Obj
          (List.map
             (fun (k, q) ->
               ( k,
                 Json.Obj
                   [
                     ("count", Json.int (Quantile.count q));
                     ("sum", Json.Num (Quantile.sum q));
                     ("min", Json.Num (Quantile.min_value q));
                     ("max", Json.Num (Quantile.max_value q));
                     ("p50", Json.Num (Quantile.quantile q 0.5));
                     ("p95", Json.Num (Quantile.quantile q 0.95));
                     ("p99", Json.Num (Quantile.quantile q 0.99));
                   ] ))
             (sketches ())) );
    ]

(* ------------------------------------------------------------------ *)
(* Prometheus-style text exposition.  Registry names may carry inline
   labels — ["serve.verdicts{shop=s1,verdict=admitted}"] — which render
   as quoted label pairs; dots and dashes in the bare name become
   underscores.  Lines are sorted, so the rendering is a deterministic
   function of the registry contents. *)

let mangle_base name = String.map (function '.' | '-' -> '_' | c -> c) name

(* Split "base{k=v,k2=v2}" into the base and its label pairs. *)
let split_labels name =
  match String.index_opt name '{' with
  | None -> (name, [])
  | Some i ->
      let base = String.sub name 0 i in
      let rest = String.sub name (i + 1) (String.length name - i - 1) in
      let rest =
        match String.rindex_opt rest '}' with
        | Some j -> String.sub rest 0 j
        | None -> rest
      in
      let labels =
        String.split_on_char ',' rest
        |> List.filter_map (fun kv ->
               if kv = "" then None
               else
                 match String.index_opt kv '=' with
                 | None -> Some (kv, "")
                 | Some e ->
                     Some
                       ( String.sub kv 0 e,
                         String.sub kv (e + 1) (String.length kv - e - 1) ))
      in
      (base, labels)

let escape_label_value v =
  let b = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let exposition_line ?(labels = []) name v =
  let base, inline = split_labels name in
  let labels = inline @ labels in
  let b = Buffer.create 64 in
  Buffer.add_string b (mangle_base base);
  (match labels with
  | [] -> ()
  | ls ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b (mangle_base k);
          Buffer.add_string b "=\"";
          Buffer.add_string b (escape_label_value v);
          Buffer.add_char b '"')
        ls;
      Buffer.add_char b '}');
  Buffer.add_char b ' ';
  Buffer.add_string b (Json.to_string (Json.Num v));
  Buffer.contents b

(* Append a suffix to the base name, before any label block. *)
let with_suffix name suffix =
  match String.index_opt name '{' with
  | None -> name ^ suffix
  | Some i ->
      String.sub name 0 i ^ suffix ^ String.sub name i (String.length name - i)

let exposition_quantiles = [ (0.5, "0.5"); (0.95, "0.95"); (0.99, "0.99") ]

let exposition_lines () =
  let lines = ref [] in
  let push l = lines := l :: !lines in
  List.iter
    (fun (name, v) ->
      push (exposition_line (with_suffix name "_total") (float_of_int v)))
    (counters ());
  List.iter (fun (name, v) -> push (exposition_line name v)) (gauges ());
  List.iter
    (fun (name, q) ->
      List.iter
        (fun (ql, tag) ->
          push (exposition_line ~labels:[ ("quantile", tag) ] name (Quantile.quantile q ql)))
        exposition_quantiles;
      push (exposition_line (with_suffix name "_count") (float_of_int (Quantile.count q)));
      push (exposition_line (with_suffix name "_sum") (Quantile.sum q));
      push (exposition_line (with_suffix name "_min") (Quantile.min_value q));
      push (exposition_line (with_suffix name "_max") (Quantile.max_value q)))
    (sketches ());
  List.sort compare !lines

let exposition () =
  String.concat "" (List.map (fun l -> l ^ "\n") (exposition_lines ()))

let pp_metrics ppf () =
  let cs = counters () and gs = gauges () and hs = histograms () in
  if cs = [] && gs = [] && hs = [] then
    Format.fprintf ppf "no metrics recorded@."
  else begin
    List.iter (fun (k, v) -> Format.fprintf ppf "%-42s %12d@." k v) cs;
    List.iter (fun (k, v) -> Format.fprintf ppf "%-42s %12g@." k v) gs;
    List.iter
      (fun (k, h) ->
        Format.fprintf ppf "%-42s n=%d sum=%g min=%g max=%g@." k h.count h.sum h.min
          h.max)
      hs
  end
