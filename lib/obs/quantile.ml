(* Mergeable log-bucketed quantile sketch.

   Positive observations land in exponentially spaced buckets with [k]
   sub-buckets per octave (power of two), indexed by the pair taken from
   [Float.frexp].  Using frexp/ldexp keeps every bucket boundary an
   exact float expression — no libm [log]/[exp] — so bucket assignment,
   and therefore every reported quantile, is bit-identical across
   platforms and compilers.  That property is what lets `make check`
   byte-compare trace summaries against a committed golden file. *)

type t = {
  k : int;  (* sub-buckets per octave *)
  alpha : float;  (* documented relative-error bound, 1/(2k) <= alpha *)
  mutable zeros : int;  (* observations <= 0 *)
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
  buckets : (int, int ref) Hashtbl.t;  (* bucket index -> count *)
}

let create ?(alpha = 0.01) () =
  if not (alpha > 0. && alpha < 1.) then
    invalid_arg "Quantile.create: alpha must be in (0, 1)";
  let k = max 1 (int_of_float (Float.ceil (1. /. (2. *. alpha)))) in
  {
    k;
    alpha;
    zeros = 0;
    count = 0;
    sum = 0.;
    min_v = infinity;
    max_v = neg_infinity;
    buckets = Hashtbl.create 64;
  }

let alpha t = t.alpha
let count t = t.count
let zeros t = t.zeros
let sum t = t.sum
let min_value t = if t.count = 0 then 0. else t.min_v
let max_value t = if t.count = 0 then 0. else t.max_v

(* v > 0 required.  v = m * 2^e with m in [0.5, 1): the octave is e-1
   (values in [2^(e-1), 2^e)) and the sub-bucket is floor((2m - 1) * k),
   clamped against the open upper bound. *)
let index t v =
  let m, e = Float.frexp v in
  let s = int_of_float ((m *. 2. -. 1.) *. float_of_int t.k) in
  let s = if s >= t.k then t.k - 1 else if s < 0 then 0 else s in
  ((e - 1) * t.k) + s

(* Inverse of [index]: the bucket's [lo, hi) bounds, exact floats. *)
let bounds t i =
  let e = if i >= 0 then i / t.k else ((i + 1) / t.k) - 1 in
  let s = i - (e * t.k) in
  let lo = Float.ldexp (1. +. (float_of_int s /. float_of_int t.k)) e in
  let hi = Float.ldexp (1. +. (float_of_int (s + 1) /. float_of_int t.k)) e in
  (lo, hi)

let estimate t i =
  let lo, hi = bounds t i in
  (lo +. hi) /. 2.

let observe t v =
  let v = if Float.is_nan v then 0. else v in
  t.count <- t.count + 1;
  t.sum <- t.sum +. v;
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v;
  if v <= 0. || not (Float.is_finite v) then t.zeros <- t.zeros + 1
  else
    let i = index t v in
    match Hashtbl.find_opt t.buckets i with
    | Some cell -> incr cell
    | None -> Hashtbl.add t.buckets i (ref 1)

let sorted_buckets t =
  Hashtbl.fold (fun i cell acc -> (i, !cell) :: acc) t.buckets []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let buckets t =
  List.map
    (fun (i, n) ->
      let lo, hi = bounds t i in
      (lo, hi, n))
    (sorted_buckets t)

(* Nearest-rank with rank = ceil(q * (n - 1)): on a sorted array this is
   element [rank], never off the end, and q = 0 / q = 1 return the exact
   min / max rank.  The sketch answers with the midpoint of the bucket
   holding that rank, within relative error alpha of the exact value. *)
let quantile t q =
  if not (q >= 0. && q <= 1.) then invalid_arg "Quantile.quantile: q must be in [0, 1]";
  if t.count = 0 then 0.
  else begin
    let rank = int_of_float (Float.ceil (q *. float_of_int (t.count - 1))) in
    let rank = if rank < 0 then 0 else if rank > t.count - 1 then t.count - 1 else rank in
    if rank < t.zeros then 0.
    else begin
      let cum = ref t.zeros in
      let result = ref t.max_v in
      (try
         List.iter
           (fun (i, n) ->
             cum := !cum + n;
             if rank < !cum then begin
               result := estimate t i;
               raise Exit
             end)
           (sorted_buckets t)
       with Exit -> ());
      !result
    end
  end

let copy t =
  {
    t with
    buckets =
      (let h = Hashtbl.create (Hashtbl.length t.buckets) in
       Hashtbl.iter (fun i cell -> Hashtbl.add h i (ref !cell)) t.buckets;
       h);
  }

let merge a b =
  if a.k <> b.k then invalid_arg "Quantile.merge: incompatible sketches (different alpha)";
  let m = copy a in
  m.zeros <- m.zeros + b.zeros;
  m.count <- m.count + b.count;
  m.sum <- m.sum +. b.sum;
  if b.min_v < m.min_v then m.min_v <- b.min_v;
  if b.max_v > m.max_v then m.max_v <- b.max_v;
  Hashtbl.iter
    (fun i cell ->
      match Hashtbl.find_opt m.buckets i with
      | Some c -> c := !c + !cell
      | None -> Hashtbl.add m.buckets i (ref !cell))
    b.buckets;
  m
