type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let int n = Num (float_of_int n)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Encoding.                                                           *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let number_to_string f =
  if Float.is_nan f || Float.abs f = infinity then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else
    (* Shortest representation that round-trips a float. *)
    let s = Printf.sprintf "%.15g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec encode buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f -> Buffer.add_string buf (number_to_string f)
  | Str s -> escape buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          encode buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (key, value) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf key;
          Buffer.add_char buf ':';
          encode buf value)
        fields;
      Buffer.add_char buf '}'

let to_string json =
  let buf = Buffer.create 256 in
  encode buf json;
  Buffer.contents buf

let pp ppf json = Format.pp_print_string ppf (to_string json)

(* ------------------------------------------------------------------ *)
(* Parsing: plain recursive descent over the input string.             *)

exception Fail of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      value
    end
    else fail (Printf.sprintf "expected '%s'" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'; advance ()
               | '\\' -> Buffer.add_char buf '\\'; advance ()
               | '/' -> Buffer.add_char buf '/'; advance ()
               | 'n' -> Buffer.add_char buf '\n'; advance ()
               | 'r' -> Buffer.add_char buf '\r'; advance ()
               | 't' -> Buffer.add_char buf '\t'; advance ()
               | 'b' -> Buffer.add_char buf '\b'; advance ()
               | 'f' -> Buffer.add_char buf '\012'; advance ()
               | 'u' ->
                   advance ();
                   if !pos + 4 > n then fail "truncated \\u escape";
                   let hex = String.sub s !pos 4 in
                   let code =
                     try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
                   in
                   pos := !pos + 4;
                   let u =
                     if Uchar.is_valid code then Uchar.of_int code else Uchar.rep
                   in
                   Buffer.add_utf_8_uchar buf u
               | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
            go ()
        | c -> Buffer.add_char buf c; advance (); go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let digits () =
      while !pos < n && (match s.[!pos] with '0' .. '9' -> true | _ -> false) do
        advance ()
      done
    in
    if peek () = Some '-' then advance ();
    digits ();
    if peek () = Some '.' then begin advance (); digits () end;
    (match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    if !pos = start then fail "expected a number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin advance (); Obj [] end
        else begin
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let value = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ((key, value) :: acc)
            | Some '}' -> advance (); List.rev ((key, value) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin advance (); List [] end
        else begin
          let rec items acc =
            let value = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); items (value :: acc)
            | Some ']' -> advance (); List.rev (value :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (items [])
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail (at, msg) -> Error (Printf.sprintf "%s at offset %d" msg at)
