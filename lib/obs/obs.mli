(** Tracing, counters and structured event telemetry for the scheduling
    stack.

    Every solver, simulator and experiment in this repository can emit
    {e spans} (timed, nestable phases), {e metrics} (named counters,
    gauges and histograms) and {e structured events} (a name plus typed
    fields).  By default nothing is recorded: no sink is installed, the
    metric registry is off, and every instrumentation call reduces to one
    mutable-bool read — instrumentation never changes what a solver
    computes (the test suite asserts bit-identical schedules with
    telemetry on and off).

    Telemetry becomes visible by installing a {!Sink.t}:
    - {!Sink.jsonl} — one self-describing JSON object per line, for
      machine consumption;
    - {!Sink.chrome} — the Chrome [trace_event] array format, loadable in
      Perfetto / [chrome://tracing], rendering a solver run or pipeline
      simulation as a timeline;
    - {!Sink.logs} — human-readable lines through the [Logs] library;
    - {!Sink.memory} — an in-process buffer for tests;
    - {!Sink.tee} — fan out to several of the above.

    Metrics are enabled independently with {!set_stats} (the CLIs'
    [--stats] and [--metrics] flags) and read back with {!counters},
    {!metrics_json} or {!pp_metrics}.

    In hot loops, guard the construction of fields on {!enabled}:
    {[ if Obs.enabled () then Obs.event "edf.dispatch" ~fields:[ ... ] ]}
    so the disabled path allocates nothing.

    {b Domain safety.}  Instrumentation calls may run concurrently from
    several domains (the parallel experiment engine, {!E2e_exec.Pool}).
    Counters, gauges and histograms accumulate into per-domain
    collectors with no locking on the update path; the read-back
    functions ({!counters}, {!counter_value}, {!metrics_json}, ...)
    merge across collectors, and because [Domain.join] publishes a
    worker's writes, totals read after a pool join equal the sequential
    totals.  The sink path is serialised by a mutex and span-nesting
    depth is domain-local.  {!install}, {!uninstall}, {!set_stats},
    {!reset_metrics} and the metric readers are management operations:
    call them when no worker domain is concurrently instrumenting
    (between experiment points), not from inside a parallel job. *)

type value = Bool of bool | Int of int | Float of float | Str of string

type field = string * value

type kind =
  | Span_begin
  | Span_end of float  (** Wall-clock duration of the span, in seconds. *)
  | Instant
  | Counter of float  (** Value of the metric {e after} the update. *)

type event = {
  ts : float;  (** Seconds since the sink was installed (monotonic). *)
  name : string;
  kind : kind;
  depth : int;  (** Span-nesting depth when the event was emitted. *)
  fields : field list;
}

val field_json : field list -> Json.t
(** The fields as a JSON object (exposed for sinks and tests). *)

(** {1 Sinks} *)

module Sink : sig
  type t = { emit : event -> unit; close : unit -> unit }

  val null : t
  (** Accepts and discards everything. *)

  val memory : unit -> t * (unit -> event list)
  (** An in-process buffer and a function returning the events emitted so
      far, oldest first.  For tests. *)

  val tee : t list -> t
  (** Forward every event to each sink, close them all on close. *)

  val logs : ?level:Logs.level -> unit -> t
  (** Human-readable telemetry through {!Logs} (source
      ["e2e_sched.obs"], default level [Debug]).  Output appears once the
      application installs a [Logs] reporter. *)

  val jsonl : out_channel -> t
  (** One JSON object per event per line:
      [{"ts":s,"type":"span_begin"|"span_end"|"event"|"counter",
        "name":n,"depth":d,...}] with ["dur"] on span ends, ["value"] on
      counters and ["fields"] when any were attached.  [close] flushes
      and closes the channel. *)

  val chrome : out_channel -> t
  (** Chrome [trace_event] JSON (an array of phase [B]/[E]/[i]/[C]
      records with microsecond timestamps), understood by Perfetto and
      [chrome://tracing].  [close] terminates the array, flushes and
      closes the channel. *)
end

val install : Sink.t -> unit
(** Install [sink] (replacing any previous one, which is closed) and
    restart the trace clock at 0. *)

val uninstall : unit -> unit
(** Close and remove the current sink, if any. *)

val enabled : unit -> bool
(** True when a sink is installed or metrics are on — the one-word test
    call sites use to skip building fields. *)

val set_stats : bool -> unit
(** Turn the metric registry on or off.  Turning it on does not clear
    previously accumulated values; use {!reset_metrics}. *)

val stats_enabled : unit -> bool

(** {1 Spans and events} *)

val span : ?fields:field list -> string -> (unit -> 'a) -> 'a
(** [span name f] runs [f ()] inside a timed span: a [Span_begin] event
    before, a [Span_end] (with the elapsed wall-clock duration) after,
    even when [f] raises.  Nesting is tracked in {!event.depth}.  When
    no sink is installed this is exactly [f ()] — in particular a
    stats-only configuration ({!set_stats}[ true], no sink) never reads
    the clock from spans, so worker-domain solves stay clock-free and
    deterministic traces are a pure function of the main domain's
    instrumentation order. *)

val event : ?fields:field list -> string -> unit
(** Emit an [Instant] structured event to the sink, if one is installed. *)

(** {1 Metrics} *)

val incr : ?by:int -> string -> unit
(** Bump a named counter (default [by:1]).  Counters also reach the
    sink as [Counter] events, so Chrome traces grow counter tracks.
    Under several domains each domain bumps its own collector (the
    emitted running value is the domain's own tally); {!counters} and
    {!counter_value} return the merged total. *)

val gauge : string -> float -> unit
(** Set a named gauge to its latest value. *)

val observe : string -> float -> unit
(** Add an observation to a named histogram.  Histograms are backed by
    the mergeable {!Quantile} sketch (default relative-error bound), so
    besides the count/sum/min/max summary they answer p50/p95/p99
    through {!sketches}, {!metrics_json} and {!exposition}. *)

type histogram = { count : int; sum : float; min : float; max : float }

val counter_value : string -> int
(** Current value of a counter, 0 if never bumped. *)

val counters : unit -> (string * int) list
(** All counters, sorted by name. *)

val gauges : unit -> (string * float) list

val histograms : unit -> (string * histogram) list
(** Count/sum/min/max summaries of every histogram, merged across
    domains, sorted by name. *)

val sketches : unit -> (string * Quantile.t) list
(** The full quantile sketches behind {!histograms}, merged across the
    per-domain recorders into fresh sketches (the recorders are not
    disturbed), sorted by name. *)

val reset_metrics : unit -> unit
(** Zero every counter, gauge and histogram. *)

val metrics_json : unit -> Json.t
(** [{"counters":{...},"gauges":{...},"histograms":{name:
    {"count":..,"sum":..,"min":..,"max":..,"p50":..,"p95":..,
    "p99":..}}}] — the payload of the experiment drivers' [--metrics]
    files. *)

val pp_metrics : Format.formatter -> unit -> unit
(** Human-readable metric dump (the CLIs' [--stats] output).  Prints a
    placeholder line when nothing was recorded. *)

(** {1 Text exposition}

    A Prometheus-style rendering of the registry: one
    [name[{label="v",...}] value] line per sample, sorted, so the output
    is a deterministic function of the registry contents.  Metric names
    may carry inline labels — [observe "lat{shop=s1}" v] renders as
    [lat{shop="s1"} ...] — and [.]/[-] in bare names become [_].
    Counters gain a [_total] suffix; each histogram renders three
    [{quantile="0.5"|"0.95"|"0.99"}] sample lines plus [_count], [_sum],
    [_min] and [_max].  Values print through {!Json} number formatting
    (integers without a decimal point). *)

val exposition_line : ?labels:(string * string) list -> string -> float -> string
(** One exposition line (no trailing newline).  [labels] are appended
    after any labels inlined in [name]. *)

val exposition_lines : unit -> string list
(** Every registry sample as exposition lines, sorted. *)

val exposition : unit -> string
(** {!exposition_lines} joined with (and terminated by) newlines; [""]
    when the registry is empty. *)

(** {1 Clock} *)

module Clock : sig
  val now : unit -> float
  (** Current time in seconds, from the installed source, clamped to be
      non-decreasing across calls. *)

  val set_source : (unit -> float) -> unit
  (** Replace the time source (tests install a hand-cranked clock). *)

  val use_wall_clock : unit -> unit
  (** Restore the default source ([Unix.gettimeofday]). *)
end
