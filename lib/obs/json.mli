(** Minimal self-contained JSON tree, encoder and parser.

    The telemetry sinks ({!Obs.Sink.jsonl}, {!Obs.Sink.chrome}) must emit
    machine-readable output without pulling a JSON dependency into the
    build, and the tests and the [jsonl-check] tool must be able to parse
    back every line they emitted.  This module implements exactly the
    JSON subset needed for that round trip: the full value grammar of
    RFC 8259 with numbers read as OCaml floats. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val int : int -> t
(** [int n] is [Num (float_of_int n)]. *)

val member : string -> t -> t option
(** [member key (Obj _)] looks up [key]; [None] on missing key or on a
    non-object. *)

val to_string : t -> string
(** Compact one-line encoding.  Integral floats print without a decimal
    point, so counter values round-trip as JSON integers. *)

val pp : Format.formatter -> t -> unit

val of_string : string -> (t, string) result
(** Parse one JSON value (surrounding whitespace allowed); [Error msg]
    carries a character offset. *)
