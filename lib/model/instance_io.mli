(** Plain-text task-set format, for the command-line front end.

    Syntax (one directive per line, [#] starts a comment):

    {v
    # distributed control system
    visit 1 2 3 2 4          # optional; identity sequence if absent
    task <release> <deadline> <tau_1> ... <tau_k>
    task ...
    v}

    Numbers are decimals ([2.75]) or fractions ([11/4]), parsed exactly.
    The [visit] directive uses the paper's 1-based processor numbers.
    Every [task] line must list one processing time per visit position. *)

val parse : string -> (Recurrence_shop.t, string) result
(** Parse the contents of a file.  The error string carries a line
    number. *)

val parse_file : string -> (Recurrence_shop.t, string) result
(** Read and parse a file by name (errors include I/O failures). *)

val to_string : Recurrence_shop.t -> string
(** Render in the same format ([parse (to_string s)] round-trips). *)

val task_line : Task.t -> string
(** One [task ...] line (with trailing newline), exactly as {!to_string}
    renders it.  Task ids do not appear in the rendering, so the line is
    a pure function of the task's (release, deadline, processing times) —
    the property the serve-layer cache relies on to reuse rendered lines
    across relabellings and committed-set merges. *)
