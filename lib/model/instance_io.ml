module Rat = E2e_rat.Rat

let strip_comment line =
  match String.index_opt line '#' with None -> line | Some i -> String.sub line 0 i

let words line =
  String.split_on_char ' ' (String.trim line)
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun w -> w <> "")

let parse text =
  let lines = String.split_on_char '\n' text in
  let visit = ref None in
  let tasks = ref [] in
  let error = ref None in
  let fail lineno msg = if !error = None then error := Some (Printf.sprintf "line %d: %s" lineno msg) in
  List.iteri
    (fun idx line ->
      let lineno = idx + 1 in
      match words (strip_comment line) with
      | [] -> ()
      | "visit" :: rest -> (
          if !visit <> None then fail lineno "duplicate visit directive"
          else
            match List.map int_of_string_opt rest with
            | ints when List.for_all Option.is_some ints && ints <> [] -> (
                let seq = Array.of_list (List.map Option.get ints) in
                match Visit.of_one_based seq with
                | v -> visit := Some v
                | exception Invalid_argument m -> fail lineno m)
            | _ -> fail lineno "visit expects 1-based processor numbers")
      | "task" :: rest -> (
          match rest with
          | release :: deadline :: taus when taus <> [] -> (
              try
                let release = Rat.of_decimal_string release in
                let deadline = Rat.of_decimal_string deadline in
                let proc_times = Array.of_list (List.map Rat.of_decimal_string taus) in
                tasks := (lineno, release, deadline, proc_times) :: !tasks
              with Invalid_argument m -> fail lineno m)
          | _ -> fail lineno "task expects: release deadline tau_1 ... tau_k")
      | word :: _ -> fail lineno (Printf.sprintf "unknown directive %S" word))
    lines;
  match !error with
  | Some e -> Error e
  | None -> (
      let tasks = List.rev !tasks in
      match tasks with
      | [] -> Error "no task lines"
      | (_, _, _, taus0) :: _ -> (
          let k = Array.length taus0 in
          let visit =
            match !visit with Some v -> v | None -> Visit.traditional k
          in
          if Visit.length visit <> k then
            Error
              (Printf.sprintf "visit length %d does not match %d processing times"
                 (Visit.length visit) k)
          else
            let bad =
              List.find_opt (fun (_, _, _, taus) -> Array.length taus <> k) tasks
            in
            match bad with
            | Some (lineno, _, _, _) -> Error (Printf.sprintf "line %d: wrong subtask count" lineno)
            | None -> (
                try
                  let arr =
                    Array.of_list
                      (List.mapi
                         (fun id (_, release, deadline, proc_times) ->
                           Task.make ~id ~release ~deadline ~proc_times)
                         tasks)
                  in
                  Ok (Recurrence_shop.make ~visit arr)
                with Invalid_argument m -> Error m)))

let parse_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse text
  | exception Sys_error m -> Error m

let task_line (task : Task.t) =
  let buf = Buffer.create 32 in
  Buffer.add_string buf
    (Printf.sprintf "task %s %s" (Rat.to_string task.release) (Rat.to_string task.deadline));
  Array.iter (fun tau -> Buffer.add_string buf (" " ^ Rat.to_string tau)) task.proc_times;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let to_string (shop : Recurrence_shop.t) =
  let buf = Buffer.create 256 in
  if not (Visit.is_traditional shop.visit) then begin
    Buffer.add_string buf "visit";
    Array.iter
      (fun p -> Buffer.add_string buf (Printf.sprintf " %d" (p + 1)))
      shop.visit.Visit.sequence;
    Buffer.add_char buf '\n'
  end;
  Array.iter (fun task -> Buffer.add_string buf (task_line task)) shop.tasks;
  Buffer.contents buf
