bin/e2e_sched_cli.mli:
