bin/e2e_sched_cli.ml: Arg Array Cmd Cmdliner E2e_baselines E2e_core E2e_model E2e_rat E2e_schedule Format Printf Term
