bin/experiments.ml: Arg Cmd Cmdliner E2e_experiments Format Term
