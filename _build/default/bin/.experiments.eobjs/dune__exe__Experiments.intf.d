bin/experiments.mli:
