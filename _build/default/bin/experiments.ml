(* Command-line driver regenerating the paper's tables and figures.

   e2e-experiments all           # everything, in paper order
   e2e-experiments fig9a --trials 2000
   e2e-experiments table3        # the Figure-8 before/after example *)

open Cmdliner
module E = E2e_experiments.Experiments

let ppf = Format.std_formatter

let trials =
  let doc = "Random instances per plotted point." in
  Arg.(value & opt (some int) None & info [ "trials" ] ~docv:"N" ~doc)

let seed =
  let doc = "PRNG seed for the randomized experiments." in
  Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"SEED" ~doc)

let override sweep trials seed =
  let sweep = match trials with Some t -> { sweep with E.trials = t } | None -> sweep in
  match seed with Some s -> { sweep with E.seed = s } | None -> sweep

let fixed name doc f =
  let term = Term.(const (fun () -> f ppf) $ const ()) in
  Cmd.v (Cmd.info name ~doc) term

let swept name doc default f =
  let run trials seed = f ~sweep:(override default trials seed) ppf in
  Cmd.v (Cmd.info name ~doc) Term.(const run $ trials $ seed)

let all_cmd =
  let doc = "Regenerate every table and figure (DESIGN.md experiment index)." in
  Cmd.v (Cmd.info "all" ~doc) Term.(const (fun () -> E.all ppf) $ const ())

let () =
  let info =
    Cmd.info "e2e-experiments" ~version:"1.0.0"
      ~doc:
        "Reproduction harness for Bettati & Liu, 'End-to-End Scheduling to Meet Deadlines in \
         Distributed Systems' (ICDCS 1992)"
  in
  let cmds =
    [
      fixed "table1" "Table 1 / Figure 3: Algorithm R worked example." E.table1;
      fixed "table2" "Table 2 / Figure 5: Algorithm A worked example." E.table2;
      fixed "table3" "Table 3 / Figure 8: Algorithm H before/after compaction." E.table3;
      swept "fig9a" "Figure 9(a): success rate, 4 tasks x 4 processors." E.default_fig9a
        (fun ~sweep ppf -> E.fig9a ~sweep ppf);
      swept "fig9b" "Figure 9(b): success rate, 6 tasks x 4 processors." E.default_fig9b
        (fun ~sweep ppf -> E.fig9b ~sweep ppf);
      swept "fig10" "Figure 10: success rate, 10 tasks x 4 processors." E.default_fig10
        (fun ~sweep ppf -> E.fig10 ~sweep ppf);
      fixed "table4" "Table 4: periodic phase postponement." E.table4;
      fixed "table5" "Table 5: postponed deadlines." E.table5;
      fixed "section6" "Section 6: processor sharing." E.section6;
      fixed "nonpermutation" "Witness: feasible only by a non-permutation schedule."
        E.nonpermutation;
      swept "fig9x" "Extension: every scheduler on the Figure 9(b) sweep."
        { E.default_fig9b with E.trials = 300 }
        (fun ~sweep ppf -> E.fig9_extensions ~sweep ppf);
      fixed "periodic-sweep" "Extension: periodic schedulability curves." (fun ppf ->
          E.periodic_sweep ppf);
      swept "ablation" "Design-choice ablations."
        { E.seed = 7; trials = 300; n_tasks = 6; n_processors = 4 }
        (fun ~sweep ppf -> E.ablation ~sweep ppf);
      all_cmd;
    ]
  in
  exit (Cmd.eval (Cmd.group info cmds))
