lib/experiments/experiments.ml: Array E2e_baselines E2e_core E2e_model E2e_partition E2e_periodic E2e_prng E2e_rat E2e_schedule E2e_sim E2e_stats E2e_workload Format List Option Printf Result String
