lib/experiments/experiments.mli: E2e_stats Format
