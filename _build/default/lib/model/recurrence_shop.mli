(** Flow shops with recurrence: a visit sequence plus a task set whose
    subtask count equals the sequence length.  The traditional flow shop
    is the special case with the identity visit sequence. *)

type rat = E2e_rat.Rat.t

type t = private {
  visit : Visit.t;
  tasks : Task.t array;  (** Every task has [Visit.length visit] subtasks. *)
}

val make : visit:Visit.t -> Task.t array -> t
(** @raise Invalid_argument if a task's stage count differs from the
    visit-sequence length or ids are not positional. *)

val of_traditional : Flow_shop.t -> t

val identical_unit : t -> rat option
(** When all subtask processing times of all tasks are one value [tau]
    (the precondition of Algorithm R), returns it. *)

val identical_releases : t -> rat option
(** When all tasks share one release time (the other precondition of
    Algorithm R), returns it. *)

val n_tasks : t -> int
val processor_of_stage : t -> int -> int
(** The processor on which stage [j] executes. *)

val pp : Format.formatter -> t -> unit
