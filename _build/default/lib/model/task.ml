module Rat = E2e_rat.Rat

type rat = Rat.t
type t = { id : int; release : rat; deadline : rat; proc_times : rat array }

let make ~id ~release ~deadline ~proc_times =
  if Array.length proc_times = 0 then invalid_arg "Task.make: no subtasks";
  Array.iter
    (fun tau -> if Rat.(tau <= zero) then invalid_arg "Task.make: nonpositive processing time")
    proc_times;
  if Rat.(deadline < release) then invalid_arg "Task.make: deadline before release";
  { id; release; deadline; proc_times }

let stages t = Array.length t.proc_times
let total_time t = Rat.sum_array t.proc_times
let slack t = Rat.(t.deadline - t.release - total_time t)

let effective_release t j =
  assert (j >= 0 && j < stages t);
  let before = ref t.release in
  for k = 0 to j - 1 do
    before := Rat.add !before t.proc_times.(k)
  done;
  !before

let effective_deadline t j =
  assert (j >= 0 && j < stages t);
  let after = ref t.deadline in
  for k = j + 1 to stages t - 1 do
    after := Rat.sub !after t.proc_times.(k)
  done;
  !after

let is_feasible_alone t = Rat.(slack t >= zero)

let pp ppf t =
  Format.fprintf ppf "T%d [r=%a d=%a tau=(%a)]" t.id Rat.pp t.release Rat.pp t.deadline
    (Format.pp_print_array ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ") Rat.pp)
    t.proc_times
