(** Visit sequences and visit graphs (flow shops with recurrence).

    In the flow-shop-with-recurrence model each task has [k > m]
    subtasks, and the processors they run on are given by a visit
    sequence [V = (v_0, ..., v_{k-1})] — [v_j] is the (0-based) processor
    of subtask [j].  A processor appearing more than once is {e reused}.
    The visit sequence is drawn as a {e visit graph} whose labelled edges
    follow the sequence; a {e loop} is a recurrence pattern in which a
    block of processors is visited a second time, [q] positions after the
    first visit, closing a cycle of [q] nodes in the graph (Section 2 and
    Figure 1 of the paper). *)

type t = private {
  sequence : int array;  (** [sequence.(j)] is the processor of subtask [j]. *)
  processors : int;  (** Number of distinct processors [m]. *)
}

val make : int array -> t
(** Builds a visit sequence.  Processor numbers must cover
    [0 .. m-1] with no gaps.
    @raise Invalid_argument otherwise. *)

val of_one_based : int array -> t
(** Convenience for transcribing the paper's examples, e.g.
    [of_one_based [|1;2;3;4;2;3;5|]] is Figure 1's sequence. *)

val length : t -> int
(** Number of subtask positions [k]. *)

val traditional : int -> t
(** [traditional m] is the identity sequence [(0, 1, ..., m-1)]: the
    traditional flow shop as the special case of recurrence. *)

val is_traditional : t -> bool

val reused_processors : t -> int list
(** Processors visited more than once, in increasing order. *)

type loop = {
  first_pos : int;  (** The paper's [l]: position of the first subtask on the first reused processor of the loop. *)
  span : int;  (** The paper's [q]: the second visit happens [span] positions later; also the cycle length in the visit graph. *)
  reused : int;  (** Number of reused processors in the loop (the length of the repeated block). *)
}

val single_loop : t -> loop option
(** Detects the paper's {e simple recurrence pattern}: a visit sequence
    whose reused processors each appear exactly twice, as one contiguous
    block repeated [span] positions later, forming a single loop in the
    visit graph.  Returns [None] for traditional sequences and for
    sequences with more complex recurrence. *)

type edge = { src : int; dst : int; label : int }
(** Directed edge of the visit graph, labelled by its position [a] in the
    sequence (edge from [v_a] to [v_{a+1}]). *)

val graph_edges : t -> edge list
(** All edges of the visit graph, in label order. *)

val pp : Format.formatter -> t -> unit
(** Prints one-based, like the paper: [(1, 2, 3, 4, 2, 3, 5)]. *)

val to_dot : t -> string
(** Graphviz rendering of the visit graph, edges labelled by position —
    the picture of the paper's Figure 1 ([dot -Tsvg] ready). *)
