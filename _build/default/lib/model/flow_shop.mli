(** Traditional flow shops (Section 2 of the paper).

    A flow shop has [m] processors [P_0 .. P_{m-1}] and [n] tasks, each
    consisting of [m] subtasks executed in processor order: subtask [j]
    of every task runs on processor [j].  Processors model computers,
    devices and communication links alike. *)

type rat = E2e_rat.Rat.t

type t = private {
  processors : int;  (** Number of processors [m]. *)
  tasks : Task.t array;  (** The task set; [tasks.(i).id = i]. *)
}

val make : processors:int -> Task.t array -> t
(** Validates that every task has exactly [processors] subtasks and that
    ids equal positions.
    @raise Invalid_argument otherwise. *)

val of_params : (rat * rat * rat array) array -> t
(** [of_params [| (r, d, taus); ... |]] builds the shop, assigning ids in
    order.  All tasks must have the same number of subtasks. *)

val n_tasks : t -> int

val classify : t -> [ `Identical_length of rat | `Homogeneous of rat array | `Arbitrary ]
(** The paper's special cases.  [`Identical_length tau]: all subtask
    times equal [tau] (tractable, Section 3).  [`Homogeneous taus]: times
    constant per processor, [taus.(j)] on processor [j] (tractable,
    Section 4, Algorithm A).  [`Arbitrary] otherwise (NP-hard; Algorithm
    H applies). *)

val is_identical_length : t -> rat option
val is_homogeneous : t -> rat array option

val bottleneck : t -> int
(** For a homogeneous shop, the processor with the largest per-processor
    processing time (ties broken towards the lowest index), the paper's
    [P_b].  For an arbitrary shop, the processor with the largest maximum
    subtask time. *)

val max_proc_times : t -> rat array
(** [tau_max,j] for every processor: the longest subtask time on it
    (Step 2 of Algorithm H). *)

val inflate : t -> t
(** Step 3 of Algorithm H: the homogeneous shop in which every subtask on
    processor [j] is padded to [tau_max,j].  Release times and deadlines
    are unchanged. *)

val utilization : t -> int -> rat
(** [utilization shop j] for a traditional flow shop, per Section 6: the
    sum over tasks of processing time on [j] divided by the window
    [d_i - r_i]. *)

val pp : Format.formatter -> t -> unit
