type t = { sequence : int array; processors : int }

let make sequence =
  let k = Array.length sequence in
  if k = 0 then invalid_arg "Visit.make: empty sequence";
  let m = 1 + Array.fold_left max 0 sequence in
  let seen = Array.make m false in
  Array.iter
    (fun p ->
      if p < 0 then invalid_arg "Visit.make: negative processor";
      seen.(p) <- true)
    sequence;
  if not (Array.for_all Fun.id seen) then invalid_arg "Visit.make: processor numbering has gaps";
  { sequence; processors = m }

let of_one_based seq = make (Array.map (fun p -> p - 1) seq)
let length t = Array.length t.sequence
let traditional m = make (Array.init m Fun.id)
let is_traditional t = length t = t.processors && Array.for_all Fun.id (Array.mapi ( = ) t.sequence)

let visit_positions t =
  let positions = Array.make t.processors [] in
  Array.iteri (fun j p -> positions.(p) <- j :: positions.(p)) t.sequence;
  Array.map List.rev positions

let reused_processors t =
  let positions = visit_positions t in
  let reused = ref [] in
  for p = t.processors - 1 downto 0 do
    if List.length positions.(p) > 1 then reused := p :: !reused
  done;
  !reused

type loop = { first_pos : int; span : int; reused : int }

(* A single loop: the reused processors form one contiguous block
   [l .. l+r-1] that is repeated verbatim at [l+q .. l+q+r-1], each
   reused processor appearing exactly twice.  The cycle this closes in
   the visit graph has q nodes (the processors at positions l .. l+q-1). *)
let single_loop t =
  let positions = visit_positions t in
  let reused = reused_processors t in
  match reused with
  | [] -> None
  | _ -> (
      let pairs =
        List.map
          (fun p -> match positions.(p) with [ f; s ] -> Some (f, s) | _ -> None)
          reused
      in
      if List.exists Option.is_none pairs then None
      else
        let pairs = List.map Option.get pairs in
        let spans = List.map (fun (f, s) -> s - f) pairs in
        match spans with
        | [] -> None
        | q :: rest when List.for_all (( = ) q) rest ->
            let firsts = List.sort compare (List.map fst pairs) in
            let r = List.length firsts in
            let l = List.hd firsts in
            let contiguous = List.for_all2 (fun f i -> f = l + i) firsts (List.init r Fun.id) in
            let block_repeats =
              l + q + r <= length t
              && Array.for_all Fun.id
                   (Array.init r (fun i -> t.sequence.(l + i) = t.sequence.(l + q + i)))
            in
            if contiguous && block_repeats && q >= r then Some { first_pos = l; span = q; reused = r }
            else None
        | _ -> None)

type edge = { src : int; dst : int; label : int }

let graph_edges t =
  List.init
    (length t - 1)
    (fun a -> { src = t.sequence.(a); dst = t.sequence.(a + 1); label = a })

let to_dot t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "digraph visit {\n  rankdir=LR;\n";
  for p = 0 to t.processors - 1 do
    Buffer.add_string buf (Printf.sprintf "  P%d [shape=circle];\n" (p + 1))
  done;
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "  P%d -> P%d [label=\"%d\"];\n" (e.src + 1) (e.dst + 1) (e.label + 1)))
    (graph_edges t);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let pp ppf t =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_array
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf p -> Format.pp_print_int ppf (p + 1)))
    t.sequence
