module Rat = E2e_rat.Rat

type rat = Rat.t
type t = { processors : int; tasks : Task.t array }

let make ~processors tasks =
  if processors <= 0 then invalid_arg "Flow_shop.make: no processors";
  Array.iteri
    (fun i (task : Task.t) ->
      if task.id <> i then invalid_arg "Flow_shop.make: task id must equal its index";
      if Task.stages task <> processors then
        invalid_arg "Flow_shop.make: task stage count differs from processor count")
    tasks;
  { processors; tasks }

let of_params params =
  if Array.length params = 0 then invalid_arg "Flow_shop.of_params: empty task set";
  let _, _, taus0 = params.(0) in
  let processors = Array.length taus0 in
  let tasks =
    Array.mapi
      (fun id (release, deadline, proc_times) -> Task.make ~id ~release ~deadline ~proc_times)
      params
  in
  make ~processors tasks

let n_tasks t = Array.length t.tasks

let is_homogeneous t =
  if n_tasks t = 0 then None
  else
    let taus = Array.copy t.tasks.(0).Task.proc_times in
    let homogeneous =
      Array.for_all
        (fun (task : Task.t) ->
          Array.for_all2 (fun a b -> Rat.equal a b) task.proc_times taus)
        t.tasks
    in
    if homogeneous then Some taus else None

let is_identical_length t =
  match is_homogeneous t with
  | None -> None
  | Some taus ->
      let tau = taus.(0) in
      if Array.for_all (fun x -> Rat.equal x tau) taus then Some tau else None

let classify t =
  match is_homogeneous t with
  | None -> `Arbitrary
  | Some taus -> (
      match is_identical_length t with
      | Some tau -> `Identical_length tau
      | None -> `Homogeneous taus)

let max_proc_times t =
  Array.init t.processors (fun j ->
      Array.fold_left
        (fun acc (task : Task.t) -> Rat.max acc task.proc_times.(j))
        Rat.zero t.tasks)

let bottleneck t =
  let maxima = max_proc_times t in
  let best = ref 0 in
  for j = 1 to t.processors - 1 do
    if Rat.(maxima.(j) > maxima.(!best)) then best := j
  done;
  !best

let inflate t =
  let maxima = max_proc_times t in
  let tasks =
    Array.map
      (fun (task : Task.t) ->
        Task.make ~id:task.id ~release:task.release ~deadline:task.deadline
          ~proc_times:(Array.copy maxima))
      t.tasks
  in
  { t with tasks }

let utilization t j =
  Array.fold_left
    (fun acc (task : Task.t) ->
      let window = Rat.(task.deadline - task.release) in
      if Rat.is_zero window then acc else Rat.(acc + (task.proc_times.(j) / window)))
    Rat.zero t.tasks

let pp ppf t =
  Format.fprintf ppf "@[<v>flow shop: %d processors, %d tasks@,%a@]" t.processors (n_tasks t)
    (Format.pp_print_array ~pp_sep:Format.pp_print_cut Task.pp)
    t.tasks
