module Rat = E2e_rat.Rat

type rat = Rat.t
type job = { id : int; phase : rat; period : rat; proc_times : rat array }
type t = { processors : int; jobs : job array }

let job ~id ?(phase = Rat.zero) ~period ~proc_times () =
  if Rat.(period <= zero) then invalid_arg "Periodic_shop.job: nonpositive period";
  Array.iter
    (fun tau ->
      if Rat.(tau <= zero) then invalid_arg "Periodic_shop.job: nonpositive processing time";
      if Rat.(tau > period) then invalid_arg "Periodic_shop.job: processing time exceeds period")
    proc_times;
  { id; phase; period; proc_times }

let make ~processors jobs =
  if processors <= 0 then invalid_arg "Periodic_shop.make: no processors";
  Array.iteri
    (fun i j ->
      if j.id <> i then invalid_arg "Periodic_shop.make: job id must equal its index";
      if Array.length j.proc_times <> processors then
        invalid_arg "Periodic_shop.make: job stage count differs from processor count")
    jobs;
  { processors; jobs }

let of_params params =
  if Array.length params = 0 then invalid_arg "Periodic_shop.of_params: empty job set";
  let _, taus0 = params.(0) in
  let processors = Array.length taus0 in
  let jobs = Array.mapi (fun id (period, proc_times) -> job ~id ~period ~proc_times ()) params in
  make ~processors jobs

let n_jobs t = Array.length t.jobs

let utilization t j =
  Array.fold_left (fun acc jb -> Rat.(acc + (jb.proc_times.(j) / jb.period))) Rat.zero t.jobs

let utilizations t = Array.init t.processors (utilization t)
let total_processing jb = Rat.sum_array jb.proc_times

let rec gcd_int a b = if b = 0 then a else gcd_int b (a mod b)
let lcm_int a b = a / gcd_int a b * b

let hyperperiod t =
  (* lcm of rationals n_i/d_i is lcm(n_i) / gcd(d_i). *)
  Array.fold_left
    (fun acc jb ->
      let n = lcm_int (Rat.num acc) (Rat.num jb.period)
      and d = gcd_int (Rat.den acc) (Rat.den jb.period) in
      Rat.make n d)
    (Rat.make (Rat.num t.jobs.(0).period) (Rat.den t.jobs.(0).period))
    t.jobs

let with_phases t phases =
  List.concat
    (List.init (n_jobs t) (fun i ->
         List.init t.processors (fun j -> (i, j, phases.(i).(j)))))

let pp ppf t =
  let pp_job ppf jb =
    Format.fprintf ppf "J%d [b=%a p=%a tau=(%a)]" jb.id Rat.pp jb.phase Rat.pp jb.period
      (Format.pp_print_array ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ") Rat.pp)
      jb.proc_times
  in
  Format.fprintf ppf "@[<v>periodic flow shop: %d processors, %d jobs@,%a@]" t.processors
    (n_jobs t)
    (Format.pp_print_array ~pp_sep:Format.pp_print_cut pp_job)
    t.jobs
