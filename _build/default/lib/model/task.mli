(** Tasks with end-to-end timing constraints.

    A task [T_i] is a chain of subtasks executed in turn on the
    processors of a flow shop.  Its timing constraints are end-to-end: a
    release time [r_i] before which the first subtask may not start and a
    deadline [d_i] by which the last subtask must complete (Section 2 of
    the paper).  Subtask indices are 0-based throughout the library;
    subtask [j] of the paper's [T_i(j+1)]. *)

type rat = E2e_rat.Rat.t

type t = {
  id : int;  (** Position of the task in its task set; also its name. *)
  release : rat;  (** End-to-end release time [r_i]. *)
  deadline : rat;  (** End-to-end deadline [d_i]. *)
  proc_times : rat array;
      (** [proc_times.(j)] is the processing time of the j-th subtask, in
          visit order.  For a traditional m-processor flow shop this has
          length m; for a flow shop with recurrence it has the length of
          the visit sequence. *)
}

val make : id:int -> release:rat -> deadline:rat -> proc_times:rat array -> t
(** Validates that all processing times are positive and that
    [release <= deadline].
    @raise Invalid_argument otherwise. *)

val stages : t -> int
(** Number of subtasks. *)

val total_time : t -> rat
(** Total processing time [tau_i], the sum of all subtask times. *)

val slack : t -> rat
(** [d_i - r_i - tau_i]: the paper's slack time of a task. *)

val effective_release : t -> int -> rat
(** [effective_release t j] is [r_ij = r_i + sum_{k < j} tau_ik], the
    earliest instant subtask [j] can start. *)

val effective_deadline : t -> int -> rat
(** [effective_deadline t j] is [d_ij = d_i - sum_{k > j} tau_ik], the
    latest instant subtask [j] may complete so the task can still meet
    [d_i]. *)

val is_feasible_alone : t -> bool
(** Whether the task could meet its deadline on an idle system,
    i.e. [slack >= 0]. *)

val pp : Format.formatter -> t -> unit
