module Rat = E2e_rat.Rat

type rat = Rat.t
type t = { visit : Visit.t; tasks : Task.t array }

let make ~visit tasks =
  let k = Visit.length visit in
  Array.iteri
    (fun i (task : Task.t) ->
      if task.id <> i then invalid_arg "Recurrence_shop.make: task id must equal its index";
      if Task.stages task <> k then
        invalid_arg "Recurrence_shop.make: task stage count differs from visit length")
    tasks;
  { visit; tasks }

let of_traditional (shop : Flow_shop.t) =
  make ~visit:(Visit.traditional shop.processors) shop.tasks

let identical_unit t =
  if Array.length t.tasks = 0 then None
  else
    let tau = t.tasks.(0).Task.proc_times.(0) in
    let all_equal =
      Array.for_all
        (fun (task : Task.t) -> Array.for_all (Rat.equal tau) task.proc_times)
        t.tasks
    in
    if all_equal then Some tau else None

let identical_releases t =
  if Array.length t.tasks = 0 then None
  else
    let r = t.tasks.(0).Task.release in
    if Array.for_all (fun (task : Task.t) -> Rat.equal r task.release) t.tasks then Some r
    else None

let n_tasks t = Array.length t.tasks
let processor_of_stage t j = t.visit.Visit.sequence.(j)

let pp ppf t =
  Format.fprintf ppf "@[<v>recurrence shop: visit %a, %d tasks@,%a@]" Visit.pp t.visit (n_tasks t)
    (Format.pp_print_array ~pp_sep:Format.pp_print_cut Task.pp)
    t.tasks
