(** Periodic flow shops (Section 5 of the paper).

    A periodic job [J_i] is an infinite sequence of identical tasks: the
    k-th request becomes ready at [phase + (k-1) * period] and, in the
    basic model, must complete by the ready time of the next request.
    On an m-processor flow shop each job divides logically into m
    {e subjobs} [J_ij]; subjob [j] runs on processor [j] with processing
    time [proc_times.(j)] each period. *)

type rat = E2e_rat.Rat.t

type job = private {
  id : int;
  phase : rat;  (** [b_i]: ready time of the first request. *)
  period : rat;  (** [p_i > 0]. *)
  proc_times : rat array;  (** Per-processor processing times [tau_ij]. *)
}

type t = private {
  processors : int;
  jobs : job array;
}

val job : id:int -> ?phase:rat -> period:rat -> proc_times:rat array -> unit -> job
(** @raise Invalid_argument on nonpositive period or processing times, or
    if some [tau_ij > period]. *)

val make : processors:int -> job array -> t
(** @raise Invalid_argument on stage-count or id mismatches. *)

val of_params : (rat * rat array) array -> t
(** [(period, proc_times)] per job, phases 0, ids positional. *)

val n_jobs : t -> int

val utilization : t -> int -> rat
(** [utilization sys j] is [u_j = sum_i tau_ij / p_i], the total
    utilization factor of the subjobs on processor [j]. *)

val utilizations : t -> rat array

val total_processing : job -> rat
(** Sum of the job's per-processor processing times. *)

val hyperperiod : t -> rat
(** Least common multiple of the periods (exact, via rationals): the
    horizon after which the schedule repeats when phases are multiples of
    periods. *)

val with_phases : t -> rat array array -> (int * int * rat) list
(** Flattens a phase table [phases.(i).(j)] (per job, per processor) into
    [(job, processor, phase)] triples for reporting. *)

val pp : Format.formatter -> t -> unit
