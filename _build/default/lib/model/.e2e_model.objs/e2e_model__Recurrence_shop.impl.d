lib/model/recurrence_shop.ml: Array E2e_rat Flow_shop Format Task Visit
