lib/model/periodic_shop.ml: Array E2e_rat Format List
