lib/model/task.mli: E2e_rat Format
