lib/model/instance_io.ml: Array Buffer E2e_rat In_channel List Option Printf Recurrence_shop String Task Visit
