lib/model/instance_io.mli: Recurrence_shop
