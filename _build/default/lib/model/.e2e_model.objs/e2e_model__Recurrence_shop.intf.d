lib/model/recurrence_shop.mli: E2e_rat Flow_shop Format Task Visit
