lib/model/visit.ml: Array Buffer Format Fun List Option Printf
