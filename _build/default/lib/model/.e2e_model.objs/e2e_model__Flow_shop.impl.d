lib/model/flow_shop.ml: Array E2e_rat Format Task
