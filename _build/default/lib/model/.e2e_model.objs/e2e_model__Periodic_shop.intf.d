lib/model/periodic_shop.mli: E2e_rat Format
