lib/model/flow_shop.mli: E2e_rat Format Task
