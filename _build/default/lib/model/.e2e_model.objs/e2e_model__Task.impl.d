lib/model/task.ml: Array E2e_rat Format
