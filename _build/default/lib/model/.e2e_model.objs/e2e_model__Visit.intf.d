lib/model/visit.mli: Format
