lib/schedule/schedule.ml: Array Buffer Bytes Char E2e_model E2e_rat Format List Printf Stdlib
