(** Small statistics toolkit for the simulation experiments.

    The paper reports success rates with 90 % confidence intervals
    (Figures 9 and 10); this module provides the estimators used to
    regenerate those series. *)

val mean : float array -> float
(** Arithmetic mean. 0 on the empty array. *)

val variance : float array -> float
(** Unbiased sample variance (denominator [n-1]); 0 when [n < 2]. *)

val stdev : float array -> float

val z_90 : float
(** Two-sided standard-normal quantile for 90 % confidence (1.6449). *)

val z_95 : float
(** Two-sided standard-normal quantile for 95 % confidence (1.9600). *)

type proportion_ci = { estimate : float; lo : float; hi : float }
(** A binomial proportion with a confidence interval clamped to [0, 1]. *)

val wilson_interval : successes:int -> trials:int -> z:float -> proportion_ci
(** Wilson score interval — well-behaved near 0 and 1, where the paper's
    success rates live.  [trials] must be positive. *)

val normal_interval : successes:int -> trials:int -> z:float -> proportion_ci
(** Classic Wald interval, provided for comparison with the paper's
    plotted error bars. *)

val mean_interval : float array -> z:float -> float * float * float
(** [(mean, lo, hi)] using the normal approximation with the sample
    standard error. *)

val pp_ci : Format.formatter -> proportion_ci -> unit
(** Prints ["0.83 [0.76, 0.89]"]. *)
