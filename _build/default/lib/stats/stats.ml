let mean a =
  let n = Array.length a in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 a /. float_of_int n

let variance a =
  let n = Array.length a in
  if n < 2 then 0.0
  else
    let m = mean a in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 a in
    ss /. float_of_int (n - 1)

let stdev a = sqrt (variance a)
let z_90 = 1.6449
let z_95 = 1.9600

type proportion_ci = { estimate : float; lo : float; hi : float }

let clamp01 x = Float.min 1.0 (Float.max 0.0 x)

let wilson_interval ~successes ~trials ~z =
  assert (trials > 0);
  let n = float_of_int trials and k = float_of_int successes in
  let p = k /. n in
  let z2 = z *. z in
  let denom = 1.0 +. (z2 /. n) in
  let centre = (p +. (z2 /. (2.0 *. n))) /. denom in
  let half = z *. sqrt ((p *. (1.0 -. p) /. n) +. (z2 /. (4.0 *. n *. n))) /. denom in
  { estimate = p; lo = clamp01 (centre -. half); hi = clamp01 (centre +. half) }

let normal_interval ~successes ~trials ~z =
  assert (trials > 0);
  let n = float_of_int trials and k = float_of_int successes in
  let p = k /. n in
  let half = z *. sqrt (p *. (1.0 -. p) /. n) in
  { estimate = p; lo = clamp01 (p -. half); hi = clamp01 (p +. half) }

let mean_interval a ~z =
  let m = mean a in
  let n = Array.length a in
  if n < 2 then (m, m, m)
  else
    let se = stdev a /. sqrt (float_of_int n) in
    (m, m -. (z *. se), m +. (z *. se))

let pp_ci ppf { estimate; lo; hi } = Format.fprintf ppf "%.3f [%.3f, %.3f]" estimate lo hi
