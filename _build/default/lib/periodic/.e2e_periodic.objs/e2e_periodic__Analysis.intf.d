lib/periodic/analysis.mli: E2e_model Format
