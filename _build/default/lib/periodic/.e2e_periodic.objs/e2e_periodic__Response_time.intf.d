lib/periodic/response_time.mli: E2e_model E2e_rat Format
