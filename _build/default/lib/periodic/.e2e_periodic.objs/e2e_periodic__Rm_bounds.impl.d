lib/periodic/rm_bounds.ml:
