lib/periodic/rm_bounds.mli:
