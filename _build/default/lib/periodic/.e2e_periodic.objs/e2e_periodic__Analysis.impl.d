lib/periodic/analysis.ml: Array E2e_model E2e_rat Format Rm_bounds
