lib/periodic/response_time.ml: Array E2e_model E2e_rat Format Fun
