(** End-to-end schedulability analysis for periodic flow shops
    (Section 5 of the paper).

    The subjobs on each processor are scheduled rate-monotonically and
    {e independently}; precedence between a job's consecutive stages is
    replaced by {e phase postponement}: if every subtask on [P_j] is
    guaranteed to finish within [delta_j * p_i] of its ready time
    (Equation 1 applied to the utilization [u_j]), the subjob on
    [P_(j+1)] is released [delta_j * p_i] later, and so on.  The job set
    is schedulable with deadlines at the end of the period whenever
    [sum_j delta_j <= 1]; if the sum exceeds 1 the jobs are still
    schedulable with every deadline postponed to [sum_j delta_j * p_i]
    after the ready time. *)

type verdict =
  | Schedulable of { deltas : float array; total : float }
      (** [total = sum deltas <= 1]: every job meets the end of its
          period. *)
  | Schedulable_postponed of { deltas : float array; total : float }
      (** Every processor admits a [delta_j <= 1], but [total > 1]: jobs
          complete within [total * p_i] — deadlines must be postponed by
          a factor [total]. *)
  | Not_schedulable of { processor : int; utilization : float }
      (** Utilization on [processor] exceeds the Liu–Layland bound; the
          rate-monotonic guarantee fails there. *)

val analyse : E2e_model.Periodic_shop.t -> verdict
(** Rate-monotonic on every processor (the paper's default). *)

type policy = Rm | Edf
(** Per-processor scheduling discipline.  [Rm] uses Equation (1); [Edf]
    (preemptive earliest-deadline-first with relative deadlines
    [delta p_i]) uses the density criterion — a job set with utilization
    [u <= delta <= 1] meets all its [delta p_i] deadlines, so the minimal
    delta is simply [u].  The paper's closing remark of Section 5 allows
    exactly this: any per-processor algorithm with a known
    schedulability criterion. *)

val min_delta_for : policy -> n:int -> u:float -> float option

val analyse_policies :
  policies:policy array -> E2e_model.Periodic_shop.t -> verdict
(** Mixed-discipline analysis, one policy per processor. *)

val schedulable_with_deadline_factor :
  ?policies:policy array -> deadline_factor:float -> E2e_model.Periodic_shop.t -> bool
(** The paper's "small modification": tasks whose deadline is
    [deadline_factor * p_i] after the ready time (up to [m * p_i]) are
    schedulable whenever the deltas exist and sum to at most the factor.
    [deadline_factor] must be positive; values above [m] add nothing
    since [sum delta_j <= m] always. *)

val deltas : E2e_model.Periodic_shop.t -> (float array, int * float) result
(** Per-processor minimal [delta_j], or the offending [(processor, u_j)]. *)

val phases : E2e_model.Periodic_shop.t -> float array -> float array array
(** [phases sys deltas] gives [b_ij = b_i + (sum_{k<j} delta_k) * p_i]:
    the postponed phase of job [i]'s subjob on processor [j]. *)

val response_bound : E2e_model.Periodic_shop.t -> float array -> int -> float
(** [response_bound sys deltas i]: every request of job [i] completes
    within this many time units of its ready time
    ([sum_j delta_j * p_i]). *)

val per_processor_cap : m:int -> float
(** The observation closing Section 5: with deadlines at the end of the
    period, the per-processor utilization that can be guaranteed drops to
    [1/m] on an [m]-processor flow shop (each [delta_j <= 1/m] forces the
    linear branch of Equation 1). *)

val pp_verdict : Format.formatter -> verdict -> unit
