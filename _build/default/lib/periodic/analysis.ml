module Rat = E2e_rat.Rat
module Periodic_shop = E2e_model.Periodic_shop

type verdict =
  | Schedulable of { deltas : float array; total : float }
  | Schedulable_postponed of { deltas : float array; total : float }
  | Not_schedulable of { processor : int; utilization : float }

type policy = Rm | Edf

let min_delta_for policy ~n ~u =
  match policy with
  | Rm -> Rm_bounds.min_delta ~n ~u
  | Edf ->
      (* Density criterion for preemptive EDF with relative deadlines
         delta * p_i: schedulable iff sum tau_ij / (delta p_i) <= 1,
         i.e. delta >= u; only deltas up to 1 keep the criterion valid. *)
      if u <= 0.0 then Some 0.0 else if u <= 1.0 then Some u else None

let deltas_with ~policy_of (sys : Periodic_shop.t) =
  let n = Periodic_shop.n_jobs sys in
  let out = Array.make sys.processors 0.0 in
  let failure = ref None in
  for j = 0 to sys.processors - 1 do
    if !failure = None then begin
      let u = Rat.to_float (Periodic_shop.utilization sys j) in
      match min_delta_for (policy_of j) ~n ~u with
      | Some d -> out.(j) <- d
      | None -> failure := Some (j, u)
    end
  done;
  match !failure with None -> Ok out | Some offending -> Error offending

let deltas sys = deltas_with ~policy_of:(fun _ -> Rm) sys

let verdict_of = function
  | Error (processor, utilization) -> Not_schedulable { processor; utilization }
  | Ok ds ->
      let total = Array.fold_left ( +. ) 0.0 ds in
      if total <= 1.0 then Schedulable { deltas = ds; total }
      else Schedulable_postponed { deltas = ds; total }

let analyse sys = verdict_of (deltas sys)

let analyse_policies ~policies sys =
  if Array.length policies <> sys.Periodic_shop.processors then
    invalid_arg "Analysis.analyse_policies: one policy per processor";
  verdict_of (deltas_with ~policy_of:(fun j -> policies.(j)) sys)

let schedulable_with_deadline_factor ?policies ~deadline_factor sys =
  if deadline_factor <= 0.0 then
    invalid_arg "Analysis.schedulable_with_deadline_factor: nonpositive factor";
  let verdict =
    match policies with None -> analyse sys | Some policies -> analyse_policies ~policies sys
  in
  match verdict with
  | Schedulable { total; _ } | Schedulable_postponed { total; _ } -> total <= deadline_factor
  | Not_schedulable _ -> false

let phases (sys : Periodic_shop.t) ds =
  Array.map
    (fun (job : Periodic_shop.job) ->
      let p = Rat.to_float job.period and b = Rat.to_float job.phase in
      let acc = ref 0.0 in
      Array.init sys.processors (fun j ->
          let phase = b +. (!acc *. p) in
          acc := !acc +. ds.(j);
          phase))
    sys.jobs

let response_bound (sys : Periodic_shop.t) ds i =
  let total = Array.fold_left ( +. ) 0.0 ds in
  total *. Rat.to_float sys.jobs.(i).Periodic_shop.period

let per_processor_cap ~m =
  if m <= 0 then invalid_arg "Analysis.per_processor_cap";
  1.0 /. float_of_int m

let pp_verdict ppf = function
  | Schedulable { total; _ } ->
      Format.fprintf ppf "schedulable within the period (sum of deltas = %.3f)" total
  | Schedulable_postponed { total; _ } ->
      Format.fprintf ppf
        "schedulable only with deadlines postponed to %.3f of the period" total
  | Not_schedulable { processor; utilization } ->
      Format.fprintf ppf
        "not schedulable: utilization %.3f on processor %d exceeds the rate-monotonic bound"
        utilization (processor + 1)
