module Rat = E2e_rat.Rat
module Periodic_shop = E2e_model.Periodic_shop

type rat = Rat.t

(* RM priority order: shorter period first, ties by id — consistent with
   the simulator's Rm_sim.rm_priorities. *)
let priority_order (sys : Periodic_shop.t) =
  let n = Periodic_shop.n_jobs sys in
  let order = Array.init n Fun.id in
  Array.sort
    (fun a b ->
      let pa = sys.jobs.(a).Periodic_shop.period and pb = sys.jobs.(b).Periodic_shop.period in
      let c = Rat.compare pa pb in
      if c <> 0 then c else compare a b)
    order;
  order

(* Full Lehoczky (1990) multi-instance analysis: the response bound of a
   job whose fixpoint exceeds its period must consider every instance in
   the level-i busy period, because carry-in from earlier instances
   delays later ones.  When the fixpoint stays within the period this
   degenerates to the classic single-instance Joseph-Pandya iteration. *)
let per_processor (sys : Periodic_shop.t) ~processor =
  let order = priority_order sys in
  let n = Periodic_shop.n_jobs sys in
  let bounds = Array.make n Rat.zero in
  let exception Unbounded of int in
  try
    Array.iteri
      (fun rank i ->
        let job = sys.jobs.(i) in
        let c_i = job.Periodic_shop.proc_times.(processor) in
        let p_i = job.Periodic_shop.period in
        (* Divergence cap: far beyond any deadline-postponement factor we
           would accept.  Utilization >= 1 makes iterations pass it. *)
        let cap = Rat.mul_int p_i 64 in
        let interference r =
          let acc = ref Rat.zero in
          for h = 0 to rank - 1 do
            let k = order.(h) in
            let jobs_of_k = Rat.ceil (Rat.div r sys.jobs.(k).Periodic_shop.period) in
            acc :=
              Rat.add !acc (Rat.mul_int sys.jobs.(k).Periodic_shop.proc_times.(processor) jobs_of_k)
          done;
          !acc
        in
        let rec fixpoint base r =
          if Rat.(r > cap) then raise (Unbounded i)
          else
            let r' = Rat.add base (interference r) in
            if Rat.equal r' r then r else fixpoint base r'
        in
        (* Level-i busy period: demand includes job i itself. *)
        let rec busy l =
          if Rat.(l > cap) then raise (Unbounded i)
          else
            let own = Rat.mul_int c_i (Rat.ceil (Rat.div l p_i)) in
            let l' = Rat.add own (interference l) in
            if Rat.equal l' l then l else busy l'
        in
        let l = busy c_i in
        let instances = Rat.ceil (Rat.div l p_i) in
        let worst = ref Rat.zero in
        for q = 0 to instances - 1 do
          (* Finish of the (q+1)-th instance released at q p_i. *)
          let base = Rat.mul_int c_i (q + 1) in
          let f = fixpoint base base in
          let response = Rat.sub f (Rat.mul_int p_i q) in
          worst := Rat.max !worst response
        done;
        bounds.(i) <- !worst)
      order;
    Ok bounds
  with Unbounded i -> Error (`Unbounded i)

let all sys =
  let n = Periodic_shop.n_jobs sys in
  let out = Array.make_matrix n sys.processors Rat.zero in
  let rec go j =
    if j >= sys.processors then Ok out
    else
      match per_processor sys ~processor:j with
      | Error (`Unbounded i) -> Error (`Unbounded (i, j))
      | Ok column ->
          Array.iteri (fun i r -> out.(i).(j) <- r) column;
          go (j + 1)
  in
  go 0

type verdict =
  | Schedulable of { bounds : rat array array; end_to_end : rat array }
  | Needs_postponement of { bounds : rat array array; end_to_end : rat array; factor : rat }
  | Unbounded of { job : int; processor : int }

let analyse sys =
  match all sys with
  | Error (`Unbounded (job, processor)) -> Unbounded { job; processor }
  | Ok bounds ->
      let end_to_end = Array.map Rat.sum_array bounds in
      let factor =
        Array.fold_left Rat.max Rat.zero
          (Array.mapi
             (fun i e2e -> Rat.div e2e sys.Periodic_shop.jobs.(i).Periodic_shop.period)
             end_to_end)
      in
      if Rat.(factor <= Rat.one) then Schedulable { bounds; end_to_end }
      else Needs_postponement { bounds; end_to_end; factor }

let phases (sys : Periodic_shop.t) bounds =
  Array.mapi
    (fun i (job : Periodic_shop.job) ->
      let acc = ref job.Periodic_shop.phase in
      Array.init sys.processors (fun j ->
          let phase = !acc in
          acc := Rat.add !acc bounds.(i).(j);
          phase))
    sys.jobs

let pp_verdict ppf = function
  | Schedulable { end_to_end; _ } ->
      Format.fprintf ppf "schedulable within the period (worst end-to-end:";
      Array.iter (fun r -> Format.fprintf ppf " %a" Rat.pp_decimal r) end_to_end;
      Format.fprintf ppf ")"
  | Needs_postponement { factor; _ } ->
      Format.fprintf ppf "schedulable with deadlines postponed to %a of the period"
        Rat.pp_decimal factor
  | Unbounded { job; processor } ->
      Format.fprintf ppf "response time of job %d on processor %d diverges" job processor
