(** Rate-monotonic schedulability bounds.

    Equation (1) of the paper, due to Lehoczky, Sha, Strosnider and
    Tokuda: a set of [n] periodic jobs whose total utilization is at most
    [u_max n delta] is guaranteed, under preemptive rate-monotonic
    scheduling, to complete every request within [delta * p_i] of its
    ready time:

    {v
      u_max(delta) = n ((2 delta)^(1/n) - 1) + (1 - delta)   1/2 <= delta <= 1
      u_max(delta) = delta                                    0 <= delta <= 1/2
    v}

    [delta = 1] recovers the classical Liu–Layland bound
    [n (2^(1/n) - 1)].  These bounds are transcendental, so this module
    works in floating point — unlike the deterministic flow-shop
    algorithms, which are exact. *)

val liu_layland : int -> float
(** [liu_layland n = n (2^(1/n) - 1)]; tends to [ln 2] from above. *)

val u_max : n:int -> delta:float -> float
(** Equation (1).
    @raise Invalid_argument if [delta] is outside [\[0, 1\]] or [n <= 0]. *)

val min_delta : n:int -> u:float -> float option
(** The smallest [delta] in [\[0, 1\]] with [u <= u_max n delta]:
    [Some u] when [u <= 1/2] (the linear branch), otherwise a numerical
    inversion of the increasing upper branch; [None] when [u] exceeds the
    Liu–Layland bound [u_max n 1] (rate-monotonic cannot guarantee it). *)
