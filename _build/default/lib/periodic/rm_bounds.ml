let liu_layland n =
  if n <= 0 then invalid_arg "Rm_bounds.liu_layland";
  float_of_int n *. ((2.0 ** (1.0 /. float_of_int n)) -. 1.0)

let u_max ~n ~delta =
  if n <= 0 then invalid_arg "Rm_bounds.u_max: n <= 0";
  if delta < 0.0 || delta > 1.0 then invalid_arg "Rm_bounds.u_max: delta outside [0, 1]";
  if delta <= 0.5 then delta
  else
    let nf = float_of_int n in
    (nf *. (((2.0 *. delta) ** (1.0 /. nf)) -. 1.0)) +. (1.0 -. delta)

(* The upper branch is strictly increasing on [1/2, 1] (its derivative
   2 (2 delta)^(1/n - 1) - 1 is at least 2^(1/n) - 1 > 0), so a bisection
   inverts it. *)
let min_delta ~n ~u =
  if n <= 0 then invalid_arg "Rm_bounds.min_delta: n <= 0";
  if u <= 0.0 then Some 0.0
  else if u <= 0.5 then Some u
  else if u > u_max ~n ~delta:1.0 then None
  else begin
    let lo = ref 0.5 and hi = ref 1.0 in
    for _ = 1 to 60 do
      let mid = 0.5 *. (!lo +. !hi) in
      if u_max ~n ~delta:mid >= u then hi := mid else lo := mid
    done;
    Some !hi
  end
