(** Exact rate-monotonic response-time analysis.

    A tighter alternative to the utilization bound of Equation (1): the
    classical fixed-point iteration
    [R_i = C_i + sum_{j in hp(i)} ceil(R_i / T_j) C_j]
    computes the exact worst-case (critical-instant) response time of
    each subjob under preemptive rate-monotonic scheduling on its
    processor.  Postponing the phase of job [i]'s next stage by [R_ij]
    (instead of the paper's uniform [delta_j p_i]) preserves all
    precedence constraints while admitting strictly more job sets — the
    paper's Section 5 closing remark that "this method can be used when
    the subjobs are scheduled using other algorithms ... so long as
    schedulability criteria of the algorithms are known" instantiated
    with the exact criterion.

    All arithmetic is exact (rational). *)

type rat = E2e_rat.Rat.t

val per_processor :
  E2e_model.Periodic_shop.t -> processor:int -> (rat array, [ `Unbounded of int ]) result
(** Worst-case response time of each job's subjob on the processor, under
    RM priorities (shorter period first, ties by id).  When a job's
    fixpoint exceeds its period the full Lehoczky (1990) analysis kicks
    in: every instance inside the level-i busy period is examined, so the
    bound stays exact even in the postponed-deadline regime of Table 5.
    [`Unbounded i] only when job [i]'s busy period diverges (level-i
    utilization at or above 1). *)

val all :
  E2e_model.Periodic_shop.t -> (rat array array, [ `Unbounded of int * int ]) result
(** [bounds.(i).(j)]: response bound of job [i] on processor [j];
    [`Unbounded (i, j)] names the offending job and processor. *)

type verdict =
  | Schedulable of { bounds : rat array array; end_to_end : rat array }
      (** Every job's summed response [<=] its period. *)
  | Needs_postponement of {
      bounds : rat array array;
      end_to_end : rat array;
      factor : rat;  (** Max over jobs of end-to-end / period ([> 1]). *)
    }
  | Unbounded of { job : int; processor : int }

val analyse : E2e_model.Periodic_shop.t -> verdict

val phases : E2e_model.Periodic_shop.t -> rat array array -> rat array array
(** Per-job phase postponement: [b_ij = b_i + sum_{k < j} bounds.(i).(k)]. *)

val pp_verdict : Format.formatter -> verdict -> unit
