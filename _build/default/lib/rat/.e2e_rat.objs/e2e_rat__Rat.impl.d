lib/rat/rat.ml: Array Float Format List Printf Stdlib String
