(** Exhaustive feasibility for tiny flow shops with recurrence.

    The oracle behind Algorithm R's optimality tests.  Restricted to the
    preconditions of Algorithm R — identical unit processing times and a
    common release time — where an exchange argument lets every schedule
    be normalised to the grid [release + k * tau]: the search walks the
    slots in time order and, at each slot, tries every assignment of
    eligible pending stages (or deliberate idling) to processors.
    Memoised on the residual state; exponential, so guarded to small
    instances. *)

val feasible : E2e_model.Recurrence_shop.t -> bool
(** Whether any nonpreemptive schedule meets all deadlines.
    @raise Invalid_argument when the shop violates the preconditions, has
    more than 4 tasks, more than 7 stages, or a deadline more than 24
    slots after the release. *)
