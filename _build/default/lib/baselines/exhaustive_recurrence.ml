module Rat = E2e_rat.Rat
module Task = E2e_model.Task
module Visit = E2e_model.Visit
module Recurrence_shop = E2e_model.Recurrence_shop

(* Residual search state at a slot boundary: for each task, the next
   stage to run and the earliest slot it may start (relative encoding is
   handled by searching in absolute slots — deadlines bound the range so
   memo keys stay small). *)

let feasible (shop : Recurrence_shop.t) =
  let tau =
    match Recurrence_shop.identical_unit shop with
    | Some tau -> tau
    | None -> invalid_arg "Exhaustive_recurrence: needs identical unit processing times"
  in
  let release =
    match Recurrence_shop.identical_releases shop with
    | Some r -> r
    | None -> invalid_arg "Exhaustive_recurrence: needs identical release times"
  in
  let n = Recurrence_shop.n_tasks shop in
  let k = Visit.length shop.visit in
  let m = shop.visit.Visit.processors in
  if n > 4 then invalid_arg "Exhaustive_recurrence: more than 4 tasks";
  if k > 7 then invalid_arg "Exhaustive_recurrence: more than 7 stages";
  (* Deadlines in slots after the common release; a task is feasible only
     if it can run its remaining stages back-to-back before its slot
     deadline, so fractional parts round down. *)
  let deadline_slots =
    Array.map
      (fun (t : Task.t) -> Rat.floor (Rat.div (Rat.sub t.deadline release) tau))
      shop.tasks
  in
  let horizon = Array.fold_left max 0 deadline_slots in
  if horizon > 24 then invalid_arg "Exhaustive_recurrence: deadline horizon above 24 slots";
  if Array.exists (fun d -> d < k) deadline_slots then false
  else begin
    let seen = Hashtbl.create 4096 in
    (* next.(i): next stage of task i (k = done); ready.(i): earliest
       slot it may start. *)
    let rec search slot next ready =
      if Array.for_all (fun j -> j = k) next then true
      else if slot >= horizon then false
      else begin
        let key = (slot, Array.to_list next, Array.to_list ready) in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.add seen key ();
          (* Prune: every unfinished task must still fit back-to-back. *)
          let fits =
            Array.for_all Fun.id
              (Array.init n (fun i ->
                   next.(i) = k
                   || max slot ready.(i) + (k - next.(i)) <= deadline_slots.(i)))
          in
          fits
          &&
          (* Candidates per processor at this slot. *)
          let candidates p =
            let tasks = ref [ -1 ] in
            for i = n - 1 downto 0 do
              if
                next.(i) < k
                && shop.visit.Visit.sequence.(next.(i)) = p
                && ready.(i) <= slot
              then tasks := i :: !tasks
            done;
            !tasks
          in
          (* Enumerate the assignment product across processors; -1 means
             the processor idles this slot. *)
          let rec assign p next ready =
            if p = m then search (slot + 1) next ready
            else
              List.exists
                (fun choice ->
                  if choice < 0 then assign (p + 1) next ready
                  else begin
                    let next' = Array.copy next and ready' = Array.copy ready in
                    next'.(choice) <- next.(choice) + 1;
                    ready'.(choice) <- slot + 1;
                    assign (p + 1) next' ready'
                  end)
                (candidates p)
          in
          assign 0 next ready
        end
      end
    in
    search 0 (Array.make n 0) (Array.make n 0)
  end
