module Rat = E2e_rat.Rat
module Task = E2e_model.Task
module Flow_shop = E2e_model.Flow_shop
module Recurrence_shop = E2e_model.Recurrence_shop
module Schedule = E2e_schedule.Schedule

type verdict = Feasible of Schedule.t | Infeasible | Unknown

exception Found of Rat.t array array
exception Out_of_budget

(* Relaxed earliest start times: chain edges for everyone, machine edges
   only along the sequenced prefixes.  The graph is a DAG; a round-robin
   relaxation converges in at most #nodes passes (tiny here). *)
let relaxed_times (shop : Flow_shop.t) prefixes =
  let n = Flow_shop.n_tasks shop and m = shop.processors in
  let est = Array.make_matrix n m Rat.zero in
  for i = 0 to n - 1 do
    for j = 0 to m - 1 do
      est.(i).(j) <- Task.effective_release shop.tasks.(i) j
    done
  done;
  let changed = ref true in
  while !changed do
    changed := false;
    let bump i j v =
      if Rat.(v > est.(i).(j)) then begin
        est.(i).(j) <- v;
        changed := true
      end
    in
    for i = 0 to n - 1 do
      for j = 1 to m - 1 do
        bump i j (Rat.add est.(i).(j - 1) shop.tasks.(i).Task.proc_times.(j - 1))
      done
    done;
    for j = 0 to m - 1 do
      let rec along = function
        | a :: (b :: _ as rest) ->
            bump b j (Rat.add est.(a).(j) shop.tasks.(a).Task.proc_times.(j));
            along rest
        | [] | [ _ ] -> ()
      in
      along prefixes.(j)
    done
  done;
  est

let completion_bounds (shop : Flow_shop.t) est =
  Array.mapi
    (fun i (task : Task.t) -> Rat.add est.(i).(shop.processors - 1) task.proc_times.(shop.processors - 1))
    shop.tasks

let solve ?(budget = 200_000) (shop : Flow_shop.t) =
  let n = Flow_shop.n_tasks shop and m = shop.processors in
  if n > 8 then invalid_arg "Branch_bound.solve: more than 8 tasks";
  if m > 6 then invalid_arg "Branch_bound.solve: more than 6 processors";
  match E2e_core.Infeasibility.check shop with
  | Some _ -> Infeasible
  | None ->
      let nodes = ref 0 in
      (* prefixes.(j): sequenced tasks on processor j, in order (kept as a
         reversed list for O(1) append, re-reversed when relaxing). *)
      let rec branch prefixes sequenced =
        incr nodes;
        if !nodes > budget then raise Out_of_budget;
        let ordered = Array.map List.rev prefixes in
        let est = relaxed_times shop ordered in
        let completions = completion_bounds shop est in
        let feasible_bound =
          Array.for_all Fun.id
            (Array.mapi
               (fun i c -> Rat.(c <= shop.tasks.(i).Task.deadline))
               completions)
        in
        if feasible_bound then begin
          (* First processor whose order is incomplete. *)
          let p = ref 0 in
          while !p < m && List.length prefixes.(!p) = n do
            incr p
          done;
          if !p = m then raise (Found est)
          else
            let on_p = prefixes.(!p) in
            for i = 0 to n - 1 do
              if not (List.mem i on_p) then begin
                let prefixes' = Array.copy prefixes in
                prefixes'.(!p) <- i :: on_p;
                branch prefixes' (sequenced + 1)
              end
            done
        end
      in
      (try
         branch (Array.make m []) 0;
         Infeasible
       with
      | Found est ->
          let sched = Schedule.of_flow_shop shop est in
          assert (Schedule.is_feasible sched);
          Feasible sched
      | Out_of_budget -> Unknown)

let feasible ?budget shop =
  match solve ?budget shop with
  | Feasible _ -> Some true
  | Infeasible -> Some false
  | Unknown -> None
