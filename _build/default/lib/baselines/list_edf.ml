(* Kept under its baseline name; the implementation lives in the core
   library because the solver uses it as a fallback dispatcher. *)
include E2e_core.Greedy_edf
