(** Alias of {!E2e_core.Greedy_edf}, listed among the baselines because
    that is the role it plays in the benches and ablations. *)

val schedule : E2e_model.Recurrence_shop.t -> E2e_schedule.Schedule.t
val feasible : E2e_model.Recurrence_shop.t -> bool
