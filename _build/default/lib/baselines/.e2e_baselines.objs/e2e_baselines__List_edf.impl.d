lib/baselines/list_edf.ml: E2e_core
