lib/baselines/johnson.ml: Array E2e_model E2e_rat E2e_schedule List
