lib/baselines/exhaustive.mli: E2e_model E2e_schedule
