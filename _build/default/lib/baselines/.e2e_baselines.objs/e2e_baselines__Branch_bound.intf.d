lib/baselines/branch_bound.mli: E2e_model E2e_schedule
