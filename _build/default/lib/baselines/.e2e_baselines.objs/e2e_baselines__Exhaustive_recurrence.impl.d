lib/baselines/exhaustive_recurrence.ml: Array E2e_model E2e_rat Fun Hashtbl List
