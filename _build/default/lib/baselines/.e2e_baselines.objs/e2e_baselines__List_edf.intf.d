lib/baselines/list_edf.mli: E2e_model E2e_schedule
