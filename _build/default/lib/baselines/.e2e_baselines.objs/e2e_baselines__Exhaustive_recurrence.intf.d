lib/baselines/exhaustive_recurrence.mli: E2e_model
