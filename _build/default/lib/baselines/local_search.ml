module Rat = E2e_rat.Rat
module Task = E2e_model.Task
module Flow_shop = E2e_model.Flow_shop
module Recurrence_shop = E2e_model.Recurrence_shop
module Schedule = E2e_schedule.Schedule
module Prng = E2e_prng.Prng

let tardiness (s : Schedule.t) =
  let tasks = s.Schedule.shop.Recurrence_shop.tasks in
  let acc = ref Rat.zero in
  Array.iteri
    (fun i (task : Task.t) ->
      let late = Rat.sub (Schedule.completion s i) task.deadline in
      if Rat.(late > Rat.zero) then acc := Rat.add !acc late)
    tasks;
  !acc

let evaluate rshop order =
  let s = Schedule.forward_pass rshop ~order in
  (s, tardiness s)

(* First-improvement hill climbing over pairwise swaps. *)
let climb rshop order =
  let order = Array.copy order in
  let n = Array.length order in
  let s, score = evaluate rshop order in
  let best_s = ref s and best = ref score in
  let improved = ref true in
  while !improved && Rat.(!best > Rat.zero) do
    improved := false;
    let i = ref 0 in
    while (not !improved) && !i < n - 1 do
      let j = ref (!i + 1) in
      while (not !improved) && !j < n do
        let swap () =
          let tmp = order.(!i) in
          order.(!i) <- order.(!j);
          order.(!j) <- tmp
        in
        swap ();
        let s', score' = evaluate rshop order in
        if Rat.(score' < !best) then begin
          best := score';
          best_s := s';
          improved := true
        end
        else swap ();
        incr j
      done;
      incr i
    done
  done;
  (!best_s, !best)

let edf_order (shop : Flow_shop.t) =
  let n = Flow_shop.n_tasks shop in
  let order = Array.init n Fun.id in
  Array.sort
    (fun a b -> Rat.compare shop.tasks.(a).Task.deadline shop.tasks.(b).Task.deadline)
    order;
  order

let schedule ?(restarts = 8) ?(seed = 0) (shop : Flow_shop.t) =
  let rshop = Recurrence_shop.of_traditional shop in
  let g = Prng.create seed in
  let n = Flow_shop.n_tasks shop in
  let rec attempt k =
    if k >= restarts then None
    else
      let start = if k = 0 then edf_order shop else Prng.permutation g n in
      let s, score = climb rshop start in
      if Rat.is_zero score && Schedule.is_feasible s then Some s else attempt (k + 1)
  in
  attempt 0
