(** Exact flow-shop feasibility by branch and bound.

    Unlike {!Exhaustive}, which only searches {e permutation} schedules,
    this solver decides feasibility over {e all} nonpreemptive schedules:
    it enumerates the execution order of the subtasks on every processor
    separately.  For fixed per-processor orders the earliest-start timing
    (longest path through the chain- and order-edges) minimises every
    completion time, so feasibility reduces to the existence of an order
    profile whose earliest-start timing meets all deadlines.  The paper
    notes that on three or more processors all feasible schedules may be
    non-permutation — this oracle is the tool that exhibits such
    instances.

    Branching appends one remaining subtask at a time to the first
    incomplete processor's order; subtrees are cut when the relaxed
    earliest-start times (machine constraints only for already-sequenced
    subtasks) already push some task past its deadline, or when an
    {!Infeasibility} window certificate fires. *)

type verdict =
  | Feasible of E2e_schedule.Schedule.t  (** A witness schedule (checker-clean). *)
  | Infeasible  (** Search exhausted: no schedule exists. *)
  | Unknown  (** Node budget exhausted first. *)

val solve : ?budget:int -> E2e_model.Flow_shop.t -> verdict
(** [budget] caps the number of search nodes (default 200_000).
    @raise Invalid_argument beyond 8 tasks or 6 processors. *)

val feasible : ?budget:int -> E2e_model.Flow_shop.t -> bool option
(** [Some true | Some false] when decided, [None] on budget exhaustion. *)
