(** Johnson's rule for the two-processor flow shop.

    The classical O(n log n) algorithm (Johnson 1954, cited by the paper
    as the tractable frontier of flow-shop scheduling) minimises the
    makespan of a two-processor flow shop: schedule first, in increasing
    order of [tau_i1], the tasks with [tau_i1 <= tau_i2]; then, in
    decreasing order of [tau_i2], the rest.  It ignores release times and
    deadlines — it is the completion-time baseline the paper contrasts
    its deadline-driven algorithms against. *)

val order : E2e_model.Flow_shop.t -> int array
(** Johnson's optimal order.
    @raise Invalid_argument unless the shop has exactly two processors. *)

val schedule : E2e_model.Flow_shop.t -> E2e_schedule.Schedule.t
(** Earliest-start schedule in Johnson's order (release times are still
    honoured; with all-zero releases this attains the optimal makespan). *)

val makespan : E2e_model.Flow_shop.t -> E2e_rat.Rat.t
(** Makespan of {!schedule}. *)
