(** Exhaustive baselines for small instances.

    For a fixed task order, the earliest-start permutation schedule
    minimises every completion time, so searching all [n!] orders decides
    feasibility within the permutation-schedule class exactly.  The paper
    notes that Algorithm H fails either because no feasible permutation
    schedule exists or because it picks a bad bottleneck order — this
    oracle separates the two causes. *)

val permutation_schedule : E2e_model.Flow_shop.t -> E2e_schedule.Schedule.t option
(** First feasible permutation schedule found, or [None] if no
    permutation order is feasible.  Cost O(n! * n m); guarded to
    [n <= 10].
    @raise Invalid_argument beyond the guard. *)

val permutation_feasible : E2e_model.Flow_shop.t -> bool

val count_feasible_orders : E2e_model.Flow_shop.t -> int
(** Number of task orders whose earliest-start schedule is feasible
    (for diagnostics and tests). *)
