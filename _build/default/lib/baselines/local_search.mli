(** Local search over permutation schedules.

    A modern point of comparison for Algorithm H: hill-climb over task
    orders, evaluating each by the earliest-start forward pass and
    scoring by total tardiness (sum over tasks of lateness beyond the
    deadline, plus release violations).  Pairwise swaps, first-improvement,
    random restarts.  Finds a feasible permutation schedule whenever one
    is "downhill reachable"; still a heuristic — {!Exhaustive} and
    {!Branch_bound} stay the ground truth. *)

val tardiness : E2e_schedule.Schedule.t -> E2e_rat.Rat.t
(** The objective: [sum_i max(0, completion_i - d_i)]. *)

val schedule :
  ?restarts:int ->
  ?seed:int ->
  E2e_model.Flow_shop.t ->
  E2e_schedule.Schedule.t option
(** [restarts] random initial orders (default 8; the first start is the
    EDF order, so a single "restart" is deterministic); [seed] drives the
    restart permutations (default 0).  Returns the first feasible
    schedule found, or [None] if every restart ends in an infeasible
    local optimum. *)
