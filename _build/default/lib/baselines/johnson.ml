module Rat = E2e_rat.Rat
module Task = E2e_model.Task
module Flow_shop = E2e_model.Flow_shop
module Recurrence_shop = E2e_model.Recurrence_shop
module Schedule = E2e_schedule.Schedule

let order (shop : Flow_shop.t) =
  if shop.processors <> 2 then invalid_arg "Johnson.order: needs exactly 2 processors";
  let a i = shop.tasks.(i).Task.proc_times.(0) and b i = shop.tasks.(i).Task.proc_times.(1) in
  let n = Flow_shop.n_tasks shop in
  let first = ref [] and second = ref [] in
  for i = n - 1 downto 0 do
    if Rat.(a i <= b i) then first := i :: !first else second := i :: !second
  done;
  let first = List.sort (fun i j -> Rat.compare (a i) (a j)) !first in
  let second = List.sort (fun i j -> Rat.compare (b j) (b i)) !second in
  Array.of_list (first @ second)

let schedule shop =
  Schedule.forward_pass (Recurrence_shop.of_traditional shop) ~order:(order shop)

let makespan shop = Schedule.makespan (schedule shop)
