module Rat = E2e_rat.Rat
module Task = E2e_model.Task
module Flow_shop = E2e_model.Flow_shop
module Recurrence_shop = E2e_model.Recurrence_shop
module Schedule = E2e_schedule.Schedule

let guard shop =
  let n = Flow_shop.n_tasks shop in
  if n > 10 then invalid_arg "Exhaustive: more than 10 tasks";
  n

(* Schedule one task greedily on top of the per-processor free times;
   returns the new free times and whether the task met its deadline. *)
let place (task : Task.t) free =
  let m = Array.length free in
  let free = Array.copy free in
  let ready = ref task.release in
  for j = 0 to m - 1 do
    let s = Rat.max !ready free.(j) in
    let f = Rat.add s task.proc_times.(j) in
    ready := f;
    free.(j) <- f
  done;
  (free, Rat.(!ready <= task.deadline))

(* Enumerate permutations with early pruning: appending tasks never
   reduces any start time, so a prefix that already misses a deadline
   cannot be completed feasibly. *)
let search shop ~on_feasible =
  let n = guard shop in
  let m = shop.Flow_shop.processors in
  let used = Array.make n false in
  let prefix = Array.make n 0 in
  let rec go depth free =
    if depth = n then on_feasible (Array.copy prefix)
    else
      for i = 0 to n - 1 do
        if not used.(i) then begin
          let free', ok = place shop.Flow_shop.tasks.(i) free in
          if ok then begin
            used.(i) <- true;
            prefix.(depth) <- i;
            go (depth + 1) free';
            used.(i) <- false
          end
        end
      done
  in
  (* Processors are free from before the earliest release; release times
     bound the actual starts.  Matches Schedule.forward_pass. *)
  let earliest =
    Array.fold_left (fun acc (t : Task.t) -> Rat.min acc t.release) Rat.zero shop.Flow_shop.tasks
  in
  go 0 (Array.make m earliest)

exception Found of int array

let permutation_schedule shop =
  match search shop ~on_feasible:(fun order -> raise (Found order)) with
  | () -> None
  | exception Found order ->
      Some (Schedule.forward_pass (Recurrence_shop.of_traditional shop) ~order)

let permutation_feasible shop = Option.is_some (permutation_schedule shop)

let count_feasible_orders shop =
  let count = ref 0 in
  search shop ~on_feasible:(fun _ -> incr count);
  !count
