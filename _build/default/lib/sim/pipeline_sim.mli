(** Simulation of a whole periodic flow shop.

    Each processor runs its subjobs under preemptive rate-monotonic
    scheduling, independently, as prescribed by Section 5.  Two release
    policies are supported:

    - [`Postponed_phases deltas] — subjob releases are fixed offline at
      [b_ij = b_i + (sum_{k<j} delta_k) p_i] (the paper's scheme).  The
      simulator then {e verifies} that every subtask's predecessor has
      really finished by its release (the analytical guarantee) and
      reports any violation.
    - [`Direct_sync] — a stage is released the instant its predecessor
      completes (greedy synchronisation, for comparison). *)

type policy = [ `Postponed_phases of float array | `Direct_sync ]

type report = {
  end_to_end : float array;
      (** Per job: the worst response from a request's ready time on the
          first processor to its completion on the last. *)
  precedence_violations : int;
      (** Releases that fired before the predecessor stage had finished
          (only possible under [`Postponed_phases] when the deltas are
          not actually safe). *)
  deadline_misses : int;
      (** Requests finishing later than [deadline_factor * p_i] after
          their ready time. *)
  requests : int;  (** End-to-end requests measured. *)
}

val simulate :
  ?deadline_factor:float ->
  horizon:float ->
  policy:policy ->
  E2e_model.Periodic_shop.t ->
  report
(** [deadline_factor] defaults to 1 (deadline = end of period).  The
    horizon is in absolute time; requests whose chain does not fully
    complete in the simulation are not counted. *)
