type task = { id : int; phase : float; period : float; wcet : float; priority : int }

let rm_priorities specs =
  let order = Array.init (Array.length specs) Fun.id in
  Array.sort
    (fun a b ->
      let _, pa, _ = specs.(a) and _, pb, _ = specs.(b) in
      if pa <> pb then compare pa pb else compare a b)
    order;
  let priority_of = Array.make (Array.length specs) 0 in
  Array.iteri (fun rank idx -> priority_of.(idx) <- rank) order;
  Array.mapi
    (fun id (phase, period, wcet) -> { id; phase; period; wcet; priority = priority_of.(id) })
    specs

type completion = { task : int; index : int; ready : float; finish : float }

let response c = c.finish -. c.ready

type result = {
  completions : completion list;
  max_response : float array;
  unfinished : int;
}

type job = { spec : task; k : int; ready_at : float; rank : float; mutable remaining : float }

(* Core event loop, parameterised by a per-request rank (lower runs
   first): static priorities give rate-monotonic and friends, the
   request's absolute deadline gives EDF. *)
let simulate_ranked ~horizon ~rank tasks =
  if horizon <= 0.0 then invalid_arg "Rm_sim.simulate: nonpositive horizon";
  Array.iter
    (fun t -> if t.period <= 0.0 || t.wcet <= 0.0 then invalid_arg "Rm_sim.simulate: bad task")
    tasks;
  (* All arrivals within the horizon, in time order. *)
  let arrivals =
    Array.to_list tasks
    |> List.concat_map (fun t ->
           let rec gen k acc =
             let ready_at = t.phase +. (float_of_int k *. t.period) in
             if ready_at >= horizon then List.rev acc
             else
               gen (k + 1)
                 ({ spec = t; k; ready_at; rank = rank t ~ready:ready_at; remaining = t.wcet }
                 :: acc)
           in
           gen 0 [])
    |> List.sort (fun a b -> compare a.ready_at b.ready_at)
  in
  let pending =
    Heap.create ~cmp:(fun a b ->
        let c = compare a.rank b.rank in
        if c <> 0 then c
        else
          let c = compare (a.spec.priority, a.ready_at) (b.spec.priority, b.ready_at) in
          if c <> 0 then c else compare (a.spec.id, a.k) (b.spec.id, b.k))
  in
  let completions = ref [] in
  let max_response = Array.make (Array.length tasks) 0.0 in
  let hard_stop = 4.0 *. horizon in
  let rec run t arrivals =
    match (Heap.peek pending, arrivals) with
    | None, [] -> ()
    | None, a :: _ ->
        let t = a.ready_at in
        let now, later = List.partition (fun x -> x.ready_at <= t) arrivals in
        List.iter (Heap.push pending) now;
        run t later
    | Some top, _ when t >= hard_stop ->
        ignore top (* overload: leave the rest as unfinished *)
    | Some top, arrivals ->
        let next_arr = match arrivals with [] -> infinity | a :: _ -> a.ready_at in
        let finish_at = t +. top.remaining in
        if finish_at <= next_arr then begin
          ignore (Heap.pop pending);
          let c = { task = top.spec.id; index = top.k; ready = top.ready_at; finish = finish_at } in
          completions := c :: !completions;
          if response c > max_response.(top.spec.id) then
            max_response.(top.spec.id) <- response c;
          run finish_at arrivals
        end
        else begin
          top.remaining <- top.remaining -. (next_arr -. t);
          let now, later = List.partition (fun x -> x.ready_at <= next_arr) arrivals in
          List.iter (Heap.push pending) now;
          run next_arr later
        end
  in
  let start = match arrivals with [] -> 0.0 | a :: _ -> a.ready_at in
  run start arrivals;
  { completions = List.rev !completions; max_response; unfinished = Heap.length pending }

let simulate ~horizon tasks =
  simulate_ranked ~horizon ~rank:(fun t ~ready:_ -> float_of_int t.priority) tasks

let simulate_edf ~horizon ~relative_deadlines tasks =
  if Array.length relative_deadlines <> Array.length tasks then
    invalid_arg "Rm_sim.simulate_edf: one relative deadline per task";
  simulate_ranked ~horizon
    ~rank:(fun t ~ready -> ready +. relative_deadlines.(t.id))
    tasks
