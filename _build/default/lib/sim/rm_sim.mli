(** Preemptive fixed-priority simulation of one processor.

    Simulates a set of periodic tasks under preemptive static-priority
    scheduling (rate-monotonic when priorities follow periods) and
    reports the response time of every request in a horizon.  Used to
    {e validate} the analytical guarantees of Equation (1): the measured
    response of every request must stay below [delta * p_i]. *)

type task = {
  id : int;
  phase : float;  (** Ready time of the first request. *)
  period : float;
  wcet : float;  (** Execution demand of each request. *)
  priority : int;  (** Smaller = more urgent.  For rate-monotonic, rank by period. *)
}

val rm_priorities : (float * float * float) array -> task array
(** [rm_priorities [| (phase, period, wcet); ... |]] builds tasks with
    rate-monotonic priorities (shorter period = higher priority, ties by
    position) and ids equal to positions. *)

type completion = {
  task : int;
  index : int;  (** 0-based request number [k]. *)
  ready : float;
  finish : float;
}

val response : completion -> float
(** [finish - ready]. *)

type result = {
  completions : completion list;  (** In completion order. *)
  max_response : float array;  (** Per task id; 0 when no request completed. *)
  unfinished : int;  (** Requests released but still running at the horizon. *)
}

val simulate : horizon:float -> task array -> result
(** Releases every request with ready time [< horizon] and runs until all
    of them complete (time may exceed the horizon only to let released
    work drain; [unfinished] counts jobs cut at 4x horizon, a safety
    valve against overload). *)

val simulate_edf : horizon:float -> relative_deadlines:float array -> task array -> result
(** Same event loop under preemptive earliest-deadline-first: request
    [k] of task [i] has absolute deadline
    [ready + relative_deadlines.(i)].  The [priority] field only breaks
    exact deadline ties. *)
