(** Runtime execution of a computed flow-shop schedule.

    The paper's algorithms plan with worst-case processing times; at run
    time subtasks usually finish early.  This module replays a schedule
    against {e actual} durations under the two classic dispatching
    disciplines and reports what really happened — the tool for checking
    that a deployment strategy is {e sustainable} (early completions
    never cause new deadline misses).

    - [Time_triggered]: every subtask starts exactly at its planned start
      time (idling if its work arrived early).  Sustainable by
      construction when actual durations never exceed the planned ones.
    - [Work_conserving]: every processor keeps its planned execution
      order but starts each subtask as soon as its predecessor stage has
      finished, the processor is free and the task is released. *)

type rat = E2e_rat.Rat.t

type discipline = Time_triggered | Work_conserving

type execution = {
  starts : rat array array;
  finishes : rat array array;  (** With the {e actual} durations. *)
}

type outcome = {
  execution : execution;
  deadline_misses : (int * rat) list;  (** (task, completion) pairs past the deadline. *)
  structural_violations : int;
      (** Release, precedence or mutual-exclusion violations in the
          executed timeline.  Zero under [Work_conserving]; under
          [Time_triggered] nonzero only when actual durations overrun the
          plan. *)
}

val run :
  discipline ->
  E2e_schedule.Schedule.t ->
  actual:rat array array ->
  outcome
(** Execute the schedule with [actual.(i).(j)] as the true duration of
    task [i]'s stage [j].
    @raise Invalid_argument on a shape mismatch or nonpositive duration.
    Under [Time_triggered], actual durations longer than planned can make
    a successor stage start before its input is ready; such cases are
    reported through [structural_violations] rather than raising. *)

val scale_durations : E2e_schedule.Schedule.t -> factor:rat -> rat array array
(** Convenience: every planned duration multiplied by [factor] (< 1 for
    early completion, > 1 for overruns). *)

val sustainable_time_triggered :
  E2e_schedule.Schedule.t -> actual:rat array array -> bool
(** True when time-triggered execution with the given durations meets
    every deadline — guaranteed whenever the schedule was feasible and
    [actual <= planned] pointwise. *)
