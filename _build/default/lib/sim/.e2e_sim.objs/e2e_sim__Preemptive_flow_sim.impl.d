lib/sim/preemptive_flow_sim.ml: Array E2e_model E2e_rat Fun List
