lib/sim/rm_sim.mli:
