lib/sim/rm_sim.ml: Array Fun Heap List
