lib/sim/dispatcher.mli: E2e_rat E2e_schedule
