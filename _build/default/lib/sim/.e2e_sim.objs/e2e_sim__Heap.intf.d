lib/sim/heap.mli:
