lib/sim/pipeline_sim.ml: Array E2e_model E2e_periodic E2e_rat Fun Hashtbl Heap List Option Rm_sim
