lib/sim/preemptive_flow_sim.mli: E2e_model E2e_rat
