lib/sim/pipeline_sim.mli: E2e_model
