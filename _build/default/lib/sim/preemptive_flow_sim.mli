(** Online preemptive dispatching of a flow shop.

    The paper notes that the flow-shop deadline problem stays NP-hard
    even when preemption is allowed; this simulator provides the natural
    preemptive online policy as an empirical comparison point: every
    processor runs, preemptively, the ready subtask with the earliest
    {e effective deadline}; a subtask becomes ready when its predecessor
    stage completes (stage 0 at the task's release time).  Works for
    recurrent visit sequences too.

    Time is exact (rational): the event loop advances to the next release
    or completion, so preemptions happen only at such instants. *)

type rat = E2e_rat.Rat.t

type segment = { task : int; stage : int; from_ : rat; until : rat }
(** One contiguous execution slice on a processor. *)

type result = {
  completions : rat array array;  (** [completions.(i).(j)]: finish of stage j. *)
  segments : segment list array;  (** Per processor, in time order. *)
  deadline_misses : int list;  (** Tasks finishing after their deadline. *)
}

val run : E2e_model.Recurrence_shop.t -> result

val feasible : E2e_model.Recurrence_shop.t -> bool
(** No deadline misses under the preemptive-EDF policy. *)
