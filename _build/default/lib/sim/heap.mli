(** Polymorphic binary min-heap, the event queue of the simulators. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** Empty heap ordered by [cmp] (minimum first). *)

val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Minimum element, without removing it. *)

val pop : 'a t -> 'a option
(** Removes and returns the minimum element. *)

val of_list : cmp:('a -> 'a -> int) -> 'a list -> 'a t

val drain : 'a t -> 'a list
(** Pops everything; the result is sorted by [cmp]. *)
