lib/prng/prng.ml: Array E2e_rat Float Int64
