lib/prng/prng.mli: E2e_rat
