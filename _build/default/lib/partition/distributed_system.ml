module Rat = E2e_rat.Rat
module Task = E2e_model.Task
module Visit = E2e_model.Visit
module Recurrence_shop = E2e_model.Recurrence_shop
module Schedule = E2e_schedule.Schedule
module Solver = E2e_core.Solver

type rat = Rat.t

type task_class = {
  name : string;
  visit : int array;
  tasks : (rat * rat * rat array) array;
}

type class_report = {
  class_name : string;
  fractions : rat array;
  shop : Recurrence_shop.t;
  verdict : Solver.recurrent_verdict;
}

type t = { processors : int; reports : class_report list; all_feasible : bool }

(* Utilization of one class on one physical processor: processing time
   over the task's end-to-end window, summed over the stages that visit
   the processor (Section 6's definition extended to recurrence). *)
let class_demand (cls : task_class) p =
  Array.fold_left
    (fun acc (release, deadline, taus) ->
      let window = Rat.sub deadline release in
      if Rat.is_zero window then acc
      else
        let on_p = ref Rat.zero in
        Array.iteri (fun j tau -> if cls.visit.(j) = p then on_p := Rat.add !on_p tau) taus;
        Rat.add acc (Rat.div !on_p window))
    Rat.zero cls.tasks

let validate ~processors classes =
  if classes = [] then invalid_arg "Distributed_system.analyse: no classes";
  List.iter
    (fun cls ->
      if Array.length cls.tasks = 0 then
        invalid_arg (Printf.sprintf "Distributed_system.analyse: class %S has no tasks" cls.name);
      Array.iter
        (fun p ->
          if p < 0 || p >= processors then
            invalid_arg
              (Printf.sprintf "Distributed_system.analyse: class %S visits processor %d" cls.name
                 p))
        cls.visit;
      Array.iter
        (fun (_, _, taus) ->
          if Array.length taus <> Array.length cls.visit then
            invalid_arg
              (Printf.sprintf "Distributed_system.analyse: class %S stage-count mismatch" cls.name))
        cls.tasks)
    classes

let analyse ~processors classes =
  validate ~processors classes;
  (* Per physical processor, each class's share: demand / total demand
     (full speed where the class is alone or unopposed). *)
  let demands =
    List.map (fun cls -> Array.init processors (fun p -> class_demand cls p)) classes
  in
  let totals =
    Array.init processors (fun p ->
        List.fold_left (fun acc d -> Rat.add acc d.(p)) Rat.zero demands)
  in
  let reports =
    List.map2
      (fun cls demand ->
        let fractions =
          Array.init processors (fun p ->
              if Rat.is_zero demand.(p) || Rat.equal totals.(p) demand.(p) then Rat.one
              else Rat.div demand.(p) totals.(p))
        in
        (* Class-local visit sequence, processors renumbered in order of
           first visit: a loop-free class becomes a traditional flow shop
           (identity sequence) regardless of which physical processors it
           crosses. *)
        let mapping = Hashtbl.create 8 in
        Array.iter
          (fun p ->
            if not (Hashtbl.mem mapping p) then Hashtbl.add mapping p (Hashtbl.length mapping))
          cls.visit;
        let visit = Visit.make (Array.map (Hashtbl.find mapping) cls.visit) in
        let tasks =
          Array.mapi
            (fun id (release, deadline, taus) ->
              let stretched =
                Array.mapi (fun j tau -> Rat.div tau fractions.(cls.visit.(j))) taus
              in
              Task.make ~id ~release ~deadline ~proc_times:stretched)
            cls.tasks
        in
        let shop = Recurrence_shop.make ~visit tasks in
        let verdict = Solver.solve_recurrent_or_fallback shop in
        { class_name = cls.name; fractions; shop; verdict })
      classes demands
  in
  let all_feasible =
    List.for_all
      (fun r -> match r.verdict with Solver.Recurrent_feasible _ -> true | _ -> false)
      reports
  in
  { processors; reports; all_feasible }

let pp ppf t =
  Format.fprintf ppf "@[<v>distributed system: %d physical processors, %d classes@,@,"
    t.processors (List.length t.reports);
  List.iter
    (fun r ->
      Format.fprintf ppf "class %S@," r.class_name;
      Array.iteri
        (fun p f ->
          if not (Rat.equal f Rat.one) then
            Format.fprintf ppf "  share of P%d: %a@," (p + 1) Rat.pp_decimal f)
        r.fractions;
      (match r.verdict with
      | Solver.Recurrent_feasible (s, how) ->
          let how =
            match how with
            | `Algorithm_r -> "Algorithm R (optimal)"
            | `Greedy_edf -> "greedy EDF (checked heuristic)"
            | `Traditional -> "classified solver"
          in
          Format.fprintf ppf "  feasible via %s; makespan %a@," how Rat.pp (Schedule.makespan s)
      | Solver.Recurrent_proved_infeasible -> Format.fprintf ppf "  PROVED INFEASIBLE@,"
      | Solver.Recurrent_undecided -> Format.fprintf ppf "  undecided (heuristic failed)@,");
      Format.fprintf ppf "@,")
    t.reports;
  Format.fprintf ppf "all classes feasible: %b@]" t.all_feasible
