lib/partition/distributed_system.mli: E2e_core E2e_model E2e_rat Format
