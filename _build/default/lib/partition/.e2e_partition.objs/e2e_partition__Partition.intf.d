lib/partition/partition.mli: E2e_model E2e_rat
