lib/partition/partition.ml: Array E2e_model E2e_rat List
