(** Whole-system workflow for multi-class distributed systems.

    The paper's Section 1 strategy, end to end: a distributed system
    contains many task classes; tasks in each class cross the (shared)
    physical processors in their own order, so each class is a flow shop
    — possibly with recurrence.  Resources are partitioned statically:
    every physical processor shared by several classes is split into
    virtual processors with utilization-proportional speed fractions
    (Section 6); each class is then scheduled {e independently} on its
    virtual processors by the strongest applicable algorithm
    (EEDF / R / A / H, via {!E2e_core.Solver}).

    This module wires those steps together and reports, per class, the
    speed fractions it received, the stretched task set, and the solver
    verdict. *)

type rat = E2e_rat.Rat.t

type task_class = {
  name : string;
  visit : int array;
      (** Physical-processor index of each stage (0-based, may repeat —
          recurrence). *)
  tasks : (rat * rat * rat array) array;
      (** (release, deadline, per-stage processing times at full
          processor speed). *)
}

type class_report = {
  class_name : string;
  fractions : rat array;
      (** Speed fraction of each physical processor granted to this
          class (1 where the class is the only user). *)
  shop : E2e_model.Recurrence_shop.t;  (** The stretched task set. *)
  verdict : E2e_core.Solver.recurrent_verdict;
}

type t = {
  processors : int;
  reports : class_report list;
  all_feasible : bool;
}

val analyse : processors:int -> task_class list -> t
(** Partition and schedule every class.
    @raise Invalid_argument on empty classes, bad processor indices, or a
    class that never uses any processor. *)

val pp : Format.formatter -> t -> unit
(** Human-readable summary: fractions, per-class verdicts, schedules. *)
