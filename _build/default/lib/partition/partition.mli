(** Processor sharing between flow shops (Section 6 of the paper).

    A distributed system typically contains many flow shops; when several
    share a physical processor, its time is split round-robin into
    {e virtual processors}, one per flow shop, and each flow shop is
    scheduled on its virtual processors independently.  A virtual
    processor of speed fraction [f] stretches every processing time on it
    by [1/f].  Section 6 proposes allocating fractions proportionally to
    utilization: a task set with utilization [u] on a processor whose
    total demand is [U] receives [u/U], i.e. its processing times grow by
    [U/u]. *)

type rat = E2e_rat.Rat.t

val scale_flow_shop : E2e_model.Flow_shop.t -> fractions:rat array -> E2e_model.Flow_shop.t
(** Stretch every subtask on processor [j] by [1 / fractions.(j)].
    Release times and deadlines are unchanged (they are end-to-end
    requirements of the application, not of the platform).
    @raise Invalid_argument if a fraction is outside (0, 1]. *)

val scale_periodic : E2e_model.Periodic_shop.t -> fractions:rat array -> E2e_model.Periodic_shop.t
(** Same for periodic job systems (periods and phases unchanged).
    @raise Invalid_argument also when some stretched processing time
    exceeds its period — the share is simply too small. *)

val proportional_shares : demands:rat array -> rat array
(** [proportional_shares ~demands] splits one processor among task sets
    with the given utilizations: share i = u_i / U where U = sum u_j.
    @raise Invalid_argument on nonpositive demand. *)

val periodic_shares :
  E2e_model.Periodic_shop.t list -> processor:int -> rat array
(** Utilization-proportional shares of [processor] among the given
    periodic flow shops (Section 6's recommendation). *)

val flow_shop_shares : E2e_model.Flow_shop.t list -> processor:int -> rat array
(** Same for traditional flow shops, with utilization defined as
    processing time over the [d_i - r_i] window (Section 6). *)

val partition_periodic :
  E2e_model.Periodic_shop.t list -> E2e_model.Periodic_shop.t list
(** Full Section 6 pipeline for N periodic flow shops sharing {e every}
    processor: compute per-processor proportional shares and return the
    job systems rescaled onto their virtual processors. *)

val partition_flow_shops : E2e_model.Flow_shop.t list -> E2e_model.Flow_shop.t list
(** Same for traditional flow shops. *)
