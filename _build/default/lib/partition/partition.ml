module Rat = E2e_rat.Rat
module Task = E2e_model.Task
module Flow_shop = E2e_model.Flow_shop
module Periodic_shop = E2e_model.Periodic_shop

type rat = Rat.t

let check_fraction f =
  if Rat.(f <= zero) || Rat.(f > one) then
    invalid_arg "Partition: fraction outside (0, 1]"

let scale_flow_shop (shop : Flow_shop.t) ~fractions =
  if Array.length fractions <> shop.processors then
    invalid_arg "Partition.scale_flow_shop: wrong fraction count";
  Array.iter check_fraction fractions;
  let tasks =
    Array.map
      (fun (task : Task.t) ->
        let proc_times = Array.mapi (fun j tau -> Rat.div tau fractions.(j)) task.proc_times in
        Task.make ~id:task.id ~release:task.release ~deadline:task.deadline ~proc_times)
      shop.tasks
  in
  Flow_shop.make ~processors:shop.processors tasks

let scale_periodic (sys : Periodic_shop.t) ~fractions =
  if Array.length fractions <> sys.processors then
    invalid_arg "Partition.scale_periodic: wrong fraction count";
  Array.iter check_fraction fractions;
  let jobs =
    Array.map
      (fun (job : Periodic_shop.job) ->
        let proc_times = Array.mapi (fun j tau -> Rat.div tau fractions.(j)) job.proc_times in
        (* Periodic_shop.job re-validates tau <= period. *)
        Periodic_shop.job ~id:job.id ~phase:job.phase ~period:job.period ~proc_times ())
      sys.jobs
  in
  Periodic_shop.make ~processors:sys.processors jobs

let proportional_shares ~demands =
  Array.iter
    (fun u -> if Rat.(u <= zero) then invalid_arg "Partition.proportional_shares: demand <= 0")
    demands;
  let total = Rat.sum_array demands in
  Array.map (fun u -> Rat.div u total) demands

let periodic_shares systems ~processor =
  let demands =
    Array.of_list (List.map (fun sys -> Periodic_shop.utilization sys processor) systems)
  in
  proportional_shares ~demands

let flow_shop_shares shops ~processor =
  let demands = Array.of_list (List.map (fun shop -> Flow_shop.utilization shop processor) shops) in
  proportional_shares ~demands

let partition_with ~processors ~shares ~scale systems =
  match systems with
  | [] -> []
  | _ ->
      let m = processors in
      (* fractions.(s).(j): share of processor j given to system s. *)
      let per_processor = Array.init m (fun j -> shares ~processor:j) in
      List.mapi
        (fun s sys ->
          let fractions = Array.init m (fun j -> per_processor.(j).(s)) in
          scale sys ~fractions)
        systems

let partition_periodic systems =
  match systems with
  | [] -> []
  | first :: rest ->
      let m = first.Periodic_shop.processors in
      if List.exists (fun s -> s.Periodic_shop.processors <> m) rest then
        invalid_arg "Partition.partition_periodic: processor counts differ";
      partition_with ~processors:m ~shares:(periodic_shares systems) ~scale:scale_periodic systems

let partition_flow_shops shops =
  match shops with
  | [] -> []
  | first :: rest ->
      let m = first.Flow_shop.processors in
      if List.exists (fun s -> s.Flow_shop.processors <> m) rest then
        invalid_arg "Partition.partition_flow_shops: processor counts differ";
      partition_with ~processors:m ~shares:(flow_shop_shares shops) ~scale:scale_flow_shop shops
