module Rat = E2e_rat.Rat
module Task = E2e_model.Task
module Visit = E2e_model.Visit
module Recurrence_shop = E2e_model.Recurrence_shop
module Schedule = E2e_schedule.Schedule

let order_on_processor (s : Schedule.t) p =
  let visit = s.shop.Recurrence_shop.visit in
  let stage =
    let found = ref (-1) in
    Array.iteri (fun j q -> if q = p && !found < 0 then found := j) visit.Visit.sequence;
    if !found < 0 then invalid_arg "Algo_c.order_on_processor: processor not in visit sequence";
    !found
  in
  let n = Array.length s.starts in
  let order = Array.init n Fun.id in
  Array.sort (fun a b -> Rat.compare s.starts.(a).(stage) s.starts.(b).(stage)) order;
  order

let compact ?(keep_first_start = true) (s : Schedule.t) =
  let shop = s.Schedule.shop in
  if not (Visit.is_traditional shop.Recurrence_shop.visit) then
    invalid_arg "Algo_c.compact: recurrent visit sequences are not permutation schedules";
  let m = Visit.length shop.Recurrence_shop.visit in
  let tasks = shop.Recurrence_shop.tasks in
  let n = Array.length tasks in
  let order = order_on_processor s 0 in
  let starts = Array.make_matrix n m Rat.zero in
  (* Figure 7, transcribed with 0-based indices; [order.(i)] is the
     paper's task T_{i+1}. *)
  let first = order.(0) in
  let t11 = if keep_first_start then Rat.max s.starts.(first).(0) tasks.(first).Task.release
            else tasks.(first).Task.release in
  starts.(first).(0) <- t11;
  for j = 1 to m - 1 do
    starts.(first).(j) <- Rat.add starts.(first).(j - 1) tasks.(first).Task.proc_times.(j - 1)
  done;
  for i = 1 to n - 1 do
    let cur = order.(i) and prev = order.(i - 1) in
    let release = ref tasks.(cur).Task.release in
    for j = 0 to m - 1 do
      let prev_free = Rat.add starts.(prev).(j) tasks.(prev).Task.proc_times.(j) in
      let eff_release = Rat.max !release (Task.effective_release tasks.(cur) j) in
      starts.(cur).(j) <- Rat.max prev_free eff_release;
      release := Rat.add starts.(cur).(j) tasks.(cur).Task.proc_times.(j)
    done
  done;
  Schedule.make shop starts
