(** Algorithm A: optimal scheduling of homogeneous task sets
    (Section 4, Figure 4 of the paper).

    In a homogeneous task set the processing time is constant per
    processor ([tau_j] on [P_j]) but differs between processors.  The
    processor with the largest [tau_j] is the {e bottleneck} [P_b]; its
    subtasks form an equal-length single-machine instance with effective
    release times [r_ib] and effective deadlines [d_ib], solved optimally
    by EEDF with forbidden regions.  The bottleneck schedule is then
    propagated: downstream stages chain immediately after their
    predecessors; upstream stages are laid back-to-back ending exactly
    when the bottleneck stage starts.  Because [tau_b] dominates every
    other stage time, neither direction can collide, so the flow shop is
    feasible exactly when the bottleneck instance is. *)

val schedule :
  ?bottleneck:int ->
  E2e_model.Flow_shop.t ->
  (E2e_schedule.Schedule.t, [ `Infeasible | `Not_homogeneous ]) result
(** Optimal for homogeneous sets; [`Infeasible] means no feasible
    schedule exists.  [?bottleneck] overrides Step 1's choice (used by
    the bottleneck-choice ablation); correctness of the optimality claim
    requires it to be a processor with maximal [tau_j]. *)

val bottleneck_jobs :
  E2e_model.Flow_shop.t -> bottleneck:int -> Single_machine.job array
(** The reduced single-machine instance on [P_b] (exposed for tests). *)

val propagate_from_bottleneck :
  E2e_model.Flow_shop.t -> bottleneck:int -> E2e_rat.Rat.t array -> E2e_schedule.Schedule.t
(** Step 3 of Figure 4 applied to given bottleneck start times.  Exposed
    because Algorithm H re-uses it on the inflated task set. *)
