module Rat = E2e_rat.Rat
module Task = E2e_model.Task
module Flow_shop = E2e_model.Flow_shop

type rat = Rat.t

type certificate =
  | Negative_slack of { task : int }
  | Overloaded_window of {
      processor : int;
      window_start : rat;
      window_end : rat;
      demand : rat;
    }

let pp_certificate ppf = function
  | Negative_slack { task } ->
      Format.fprintf ppf "task %d has negative slack: it cannot finish even alone" task
  | Overloaded_window { processor; window_start; window_end; demand } ->
      Format.fprintf ppf
        "processor %d must execute %a time units inside [%a, %a] (length %a)" processor Rat.pp
        demand Rat.pp window_start Rat.pp window_end Rat.pp
        (Rat.sub window_end window_start)

let processor_demand (shop : Flow_shop.t) ~processor ~window_start ~window_end =
  Array.fold_left
    (fun acc (task : Task.t) ->
      let r = Task.effective_release task processor
      and d = Task.effective_deadline task processor in
      if Rat.(r >= window_start) && Rat.(d <= window_end) then
        Rat.add acc task.proc_times.(processor)
      else acc)
    Rat.zero shop.tasks

let check (shop : Flow_shop.t) =
  let negative_slack =
    Array.find_opt (fun (task : Task.t) -> Rat.(Task.slack task < Rat.zero)) shop.tasks
  in
  match negative_slack with
  | Some task -> Some (Negative_slack { task = task.Task.id })
  | None ->
      (* Only windows bounded by an effective release on the left and an
         effective deadline on the right can be critical. *)
      let found = ref None in
      let m = shop.processors in
      let j = ref 0 in
      while !found = None && !j < m do
        let releases =
          Array.to_list (Array.map (fun t -> Task.effective_release t !j) shop.tasks)
          |> List.sort_uniq Rat.compare
        in
        let deadlines =
          Array.to_list (Array.map (fun t -> Task.effective_deadline t !j) shop.tasks)
          |> List.sort_uniq Rat.compare
        in
        List.iter
          (fun ws ->
            List.iter
              (fun we ->
                if !found = None && Rat.(ws < we) then begin
                  let demand =
                    processor_demand shop ~processor:!j ~window_start:ws ~window_end:we
                  in
                  if Rat.(demand > Rat.sub we ws) then
                    found :=
                      Some
                        (Overloaded_window
                           { processor = !j; window_start = ws; window_end = we; demand })
                end)
              deadlines)
          releases;
        incr j
      done;
      !found

let is_provably_infeasible shop = Option.is_some (check shop)
