lib/core/infeasibility.mli: E2e_model E2e_rat Format
