lib/core/h_portfolio.ml: Algo_h Array E2e_model E2e_rat E2e_schedule Format Fun List
