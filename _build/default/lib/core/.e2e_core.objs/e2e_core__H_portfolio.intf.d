lib/core/h_portfolio.mli: E2e_model E2e_schedule Format
