lib/core/solver.ml: Algo_a Algo_h Algo_r E2e_model E2e_schedule Eedf Format Greedy_edf
