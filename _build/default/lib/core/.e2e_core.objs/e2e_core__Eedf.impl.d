lib/core/eedf.ml: Array E2e_model E2e_rat E2e_schedule Single_machine
