lib/core/greedy_edf.mli: E2e_model E2e_schedule
