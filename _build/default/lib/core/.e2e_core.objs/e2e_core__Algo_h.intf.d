lib/core/algo_h.mli: E2e_model E2e_schedule Format
