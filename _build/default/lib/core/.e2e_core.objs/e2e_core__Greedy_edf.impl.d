lib/core/greedy_edf.ml: Array E2e_model E2e_rat E2e_schedule
