lib/core/algo_c.mli: E2e_schedule
