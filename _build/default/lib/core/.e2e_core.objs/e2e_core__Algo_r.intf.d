lib/core/algo_r.mli: E2e_model E2e_rat E2e_schedule Format
