lib/core/infeasibility.ml: Array E2e_model E2e_rat Format List Option
