lib/core/solver.mli: Algo_r E2e_model E2e_schedule Format
