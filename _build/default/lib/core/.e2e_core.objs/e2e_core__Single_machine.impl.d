lib/core/single_machine.ml: Array E2e_rat Format Fun List
