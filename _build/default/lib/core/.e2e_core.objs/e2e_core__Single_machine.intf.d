lib/core/single_machine.mli: E2e_rat Format
