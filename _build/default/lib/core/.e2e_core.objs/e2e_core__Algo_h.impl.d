lib/core/algo_h.ml: Algo_a Algo_c Array E2e_model E2e_rat E2e_schedule Format Single_machine
