module Rat = E2e_rat.Rat
module Flow_shop = E2e_model.Flow_shop
module Schedule = E2e_schedule.Schedule

type failure = [ `Inflated_infeasible | `Compacted_infeasible of Schedule.t ]

let pp_failure ppf = function
  | `Inflated_infeasible ->
      Format.pp_print_string ppf "Algorithm A found the inflated task set unschedulable"
  | `Compacted_infeasible _ ->
      Format.pp_print_string ppf "compacted schedule still violates a constraint"

type report = {
  inflated : Flow_shop.t;
  bottleneck : int;
  raw : Schedule.t option;
  result : (Schedule.t, failure) result;
}

let run ?(compact = true) ?bottleneck (shop : Flow_shop.t) =
  (* Steps 2-3: inflate every subtask on P_j to tau_max,j.  Note that the
     effective release times and deadlines fed to Algorithm A come from
     Step 1, i.e. from the ORIGINAL processing times — the inflated
     windows are not recomputed.  This is why the schedule of Figure 8(a)
     can violate release times: the rigid upstream propagation uses the
     longer inflated durations against the original windows. *)
  let inflated = Flow_shop.inflate shop in
  let maxima = Flow_shop.max_proc_times shop in
  let b = match bottleneck with Some b -> b | None -> Flow_shop.bottleneck inflated in
  (* Step 4: Algorithm A's Step 2 on the bottleneck — an equal-length
     (tau_max,b) single-machine instance over the original effective
     windows. *)
  match Single_machine.schedule ~tau:maxima.(b) (Algo_a.bottleneck_jobs shop ~bottleneck:b) with
  | Error `Infeasible ->
      { inflated; bottleneck = b; raw = None; result = Error `Inflated_infeasible }
  | Ok starts_b ->
      (* Algorithm A's Step 3 with the inflated durations; the inflated
         schedule is then reread with the original processing times (each
         inflated subtask = busy segment first, idle padding after). *)
      let inflated_schedule = Algo_a.propagate_from_bottleneck inflated ~bottleneck:b starts_b in
      let raw = Schedule.make (E2e_model.Recurrence_shop.of_traditional shop)
                  inflated_schedule.Schedule.starts in
      (* Step 5: Algorithm C. *)
      let final = if compact then Algo_c.compact raw else raw in
      let result =
        if Schedule.is_feasible final then Ok final else Error (`Compacted_infeasible final)
      in
      { inflated; bottleneck = b; raw = Some raw; result }

let schedule shop = (run shop).result
