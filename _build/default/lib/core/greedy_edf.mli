(** Greedy priority-driven dispatching by earliest effective deadline.

    The natural online heuristic for arbitrary (possibly recurrent) flow
    shops: every processor, whenever free, dispatches the ready subtask
    with the earliest effective deadline, never idling on purpose.  It
    uses no forbidden regions, no inflation and no compaction, so it is
    the baseline against which EEDF's and Algorithm H's machinery is
    measured in the ablation benches. *)

val schedule : E2e_model.Recurrence_shop.t -> E2e_schedule.Schedule.t
(** The schedule produced by the greedy dispatcher (always well defined;
    feasibility must be checked by the caller). *)

val feasible : E2e_model.Recurrence_shop.t -> bool
(** Whether the greedy schedule meets every constraint. *)
