(** Algorithm R: optimal scheduling of identical-length task sets on flow
    shops with recurrence (Section 3, Figure 2 of the paper).

    Preconditions (as in the paper's optimality theorem): every subtask
    of every task has the same processing time [tau]; all tasks share one
    release time; the visit sequence contains a single loop.  The
    scheduling decision is made on the first processor of the loop,
    [P_vl], which executes two subtasks of every task (stages [l] and
    [l + q]).  Both visits are scheduled there by EEDF, with the twist
    that scheduling a first visit at [t] {e postpones} the release of the
    task's second visit to [t + q tau] — the loop takes [q] stages to
    come back.  The rest of the schedule is propagated rigidly around the
    decisions on [P_vl] (Step 2 of Figure 2). *)

type error =
  [ `Not_identical_unit  (** Subtask times differ. *)
  | `Not_identical_release  (** Tasks have different release times. *)
  | `No_single_loop  (** The visit sequence has no, or a complex, recurrence. *)
  | `Infeasible  (** No feasible schedule exists (R is optimal). *) ]

val pp_error : Format.formatter -> error -> unit

val schedule : E2e_model.Recurrence_shop.t -> (E2e_schedule.Schedule.t, error) result

type decision = { task : int; stage : int; start : E2e_rat.Rat.t }
(** One dispatch on the loop's decision processor, in dispatch order. *)

val decision_trace : E2e_model.Recurrence_shop.t -> (decision list, error) result
(** The Step-1 schedule on [P_vl] alone (exposed for tests and the
    worked Table 1 / Figure 3 reproduction). *)
