module Rat = E2e_rat.Rat
module Task = E2e_model.Task
module Visit = E2e_model.Visit
module Recurrence_shop = E2e_model.Recurrence_shop
module Schedule = E2e_schedule.Schedule

(* Discrete-event greedy dispatch.  Each task exposes one pending stage at
   a time (its next one); a processor that can dispatch earliest (over
   max(processor free, earliest pending ready)) does so, choosing among
   the subtasks ready at that instant by earliest effective deadline. *)
let schedule (shop : Recurrence_shop.t) =
  let n = Recurrence_shop.n_tasks shop in
  let k = Visit.length shop.visit in
  let m = shop.visit.Visit.processors in
  let starts = Array.make_matrix n k Rat.zero in
  let next_stage = Array.make n 0 in
  let ready_time = Array.map (fun (t : Task.t) -> t.release) shop.tasks in
  let free = Array.make m Rat.zero in
  let remaining = ref (n * k) in
  while !remaining > 0 do
    (* Earliest dispatch instant per processor. *)
    let best : (Rat.t * int) option ref = ref None in
    for p = 0 to m - 1 do
      let earliest_ready = ref None in
      for i = 0 to n - 1 do
        if next_stage.(i) < k && shop.visit.Visit.sequence.(next_stage.(i)) = p then
          earliest_ready :=
            Some
              (match !earliest_ready with
              | None -> ready_time.(i)
              | Some t -> Rat.min t ready_time.(i))
      done;
      match !earliest_ready with
      | None -> ()
      | Some r ->
          let t = Rat.max free.(p) r in
          let better = match !best with None -> true | Some (t', _) -> Rat.(t < t') in
          if better then best := Some (t, p)
    done;
    match !best with
    | None -> assert false
    | Some (t, p) ->
        (* Ready subtasks on p at t; earliest effective deadline wins. *)
        let chosen = ref None in
        for i = 0 to n - 1 do
          if
            next_stage.(i) < k
            && shop.visit.Visit.sequence.(next_stage.(i)) = p
            && Rat.(ready_time.(i) <= t)
          then begin
            let dl = Task.effective_deadline shop.tasks.(i) next_stage.(i) in
            let better =
              match !chosen with
              | None -> true
              | Some (dl', i') ->
                  let c = Rat.compare dl dl' in
                  if c <> 0 then c < 0 else i < i'
            in
            if better then chosen := Some (dl, i)
          end
        done;
        (match !chosen with
        | None -> assert false
        | Some (_, i) ->
            let j = next_stage.(i) in
            starts.(i).(j) <- t;
            let finish = Rat.add t shop.tasks.(i).Task.proc_times.(j) in
            free.(p) <- finish;
            next_stage.(i) <- j + 1;
            ready_time.(i) <- finish;
            decr remaining)
  done;
  Schedule.make shop starts

let feasible shop = Schedule.is_feasible (schedule shop)
