(** Algorithm C: compaction of permutation schedules
    (Section 4, Figure 7 of the paper).

    Given a permutation schedule of the original task set (typically the
    one Algorithm A produced for the {e inflated} task set, reread with
    the original processing times), Algorithm C re-times every subtask as
    early as its effective release, its predecessor stage, and the
    previous task on its processor allow, preserving the execution order.
    This removes the idle segments that inflation inserted and repairs
    release-time violations introduced by Algorithm A's rigid upstream
    propagation. *)

val compact :
  ?keep_first_start:bool -> E2e_schedule.Schedule.t -> E2e_schedule.Schedule.t
(** [compact s] follows Figure 7 literally: with [keep_first_start]
    (default [true], as in the paper) the first task's first-stage start
    is [max] of its current start and its release, rather than being
    pulled all the way back to the release.  The task order is taken from
    the schedule's first processor.

    @raise Invalid_argument if [s] is not a permutation schedule over a
    traditional flow shop. *)

val order_on_processor : E2e_schedule.Schedule.t -> int -> int array
(** Task indices in order of their start time on the given processor. *)
