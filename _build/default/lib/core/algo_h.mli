(** Algorithm H: the paper's heuristic for arbitrary task sets
    (Section 4, Figure 6).

    An arbitrary task set is turned into a homogeneous one by {e
    inflating} every subtask on processor [P_j] to the longest subtask
    time [tau_max,j] found there (each inflated subtask = busy segment
    followed by idle padding).  Algorithm A schedules the inflated set
    optimally; Algorithm C then compacts the resulting permutation
    schedule with the original processing times.  Complexity
    O(n log n + n m).

    H is {e not} optimal, for the two reasons the paper names: inflation
    adds workload (so A may fail or pick a bad order on the bottleneck),
    and only permutation schedules are explored. *)

type failure =
  [ `Inflated_infeasible
    (** Algorithm A found the inflated set unschedulable. *)
  | `Compacted_infeasible of E2e_schedule.Schedule.t
    (** The compacted schedule still violates a constraint; the witness
        schedule is attached. *) ]

val pp_failure : Format.formatter -> failure -> unit

type report = {
  inflated : E2e_model.Flow_shop.t;  (** Step 3's homogeneous task set. *)
  bottleneck : int;  (** Step 1 of Algorithm A's choice. *)
  raw : E2e_schedule.Schedule.t option;
      (** A's inflated-set schedule reread with the original processing
          times — the "before compaction" schedule of Figure 8(a).
          [None] when A already failed. *)
  result : (E2e_schedule.Schedule.t, failure) result;
}

val run :
  ?compact:bool -> ?bottleneck:int -> E2e_model.Flow_shop.t -> report
(** Full pipeline with intermediates.  [?compact:false] skips Step 5 (the
    compaction ablation); [?bottleneck] overrides A's bottleneck choice
    (the bottleneck ablation). *)

val schedule :
  E2e_model.Flow_shop.t -> (E2e_schedule.Schedule.t, failure) result
(** Just the answer.  [Ok s] is always feasible (checker-verified); an
    error does {e not} prove infeasibility — H is a heuristic. *)
