module Rat = E2e_rat.Rat
module Task = E2e_model.Task
module Flow_shop = E2e_model.Flow_shop
module Schedule = E2e_schedule.Schedule

let bottleneck_jobs (shop : Flow_shop.t) ~bottleneck =
  Array.map
    (fun (task : Task.t) ->
      {
        Single_machine.id = task.id;
        release = Task.effective_release task bottleneck;
        deadline = Task.effective_deadline task bottleneck;
      })
    shop.tasks

let propagate_from_bottleneck (shop : Flow_shop.t) ~bottleneck starts_b =
  let m = shop.processors in
  let starts =
    Array.mapi
      (fun i (task : Task.t) ->
        let row = Array.make m Rat.zero in
        row.(bottleneck) <- starts_b.(i);
        (* Downstream: each stage starts the instant its predecessor ends. *)
        for j = bottleneck + 1 to m - 1 do
          row.(j) <- Rat.add row.(j - 1) task.Task.proc_times.(j - 1)
        done;
        (* Upstream: stages laid back-to-back, ending exactly at the
           bottleneck start (Step 3 of Figure 4). *)
        for j = bottleneck - 1 downto 0 do
          row.(j) <- Rat.sub row.(j + 1) task.Task.proc_times.(j)
        done;
        row)
      shop.tasks
  in
  Schedule.of_flow_shop shop starts

let schedule ?bottleneck (shop : Flow_shop.t) =
  match Flow_shop.is_homogeneous shop with
  | None -> Error `Not_homogeneous
  | Some taus ->
      let b = match bottleneck with Some b -> b | None -> Flow_shop.bottleneck shop in
      let tau_b = taus.(b) in
      (match Single_machine.schedule ~tau:tau_b (bottleneck_jobs shop ~bottleneck:b) with
      | Error `Infeasible -> Error `Infeasible
      | Ok starts_b -> Ok (propagate_from_bottleneck shop ~bottleneck:b starts_b))
