module Rat = E2e_rat.Rat
module Task = E2e_model.Task
module Flow_shop = E2e_model.Flow_shop
module Schedule = E2e_schedule.Schedule

type rat = Rat.t

let single_machine_jobs (shop : Flow_shop.t) ~tau =
  let m = shop.processors in
  Array.map
    (fun (task : Task.t) ->
      {
        Single_machine.id = task.id;
        release = task.release;
        (* Effective deadline of the first subtask: the task must still
           fit its remaining m-1 stages after P_1. *)
        deadline = Rat.sub task.deadline (Rat.mul_int tau (m - 1));
      })
    shop.tasks

let propagate (shop : Flow_shop.t) ~tau starts_p1 =
  let m = shop.processors in
  let starts =
    Array.mapi
      (fun i _ -> Array.init m (fun j -> Rat.(starts_p1.(i) + mul_int tau j)))
      shop.tasks
  in
  Schedule.of_flow_shop shop starts

let with_identical_length shop f =
  match Flow_shop.is_identical_length shop with
  | None -> Error `Not_identical_length
  | Some tau -> f tau

let schedule shop =
  with_identical_length shop (fun tau ->
      match Single_machine.schedule ~tau (single_machine_jobs shop ~tau) with
      | Error `Infeasible -> Error `Infeasible
      | Ok starts -> Ok (propagate shop ~tau starts))

let schedule_no_regions shop =
  with_identical_length shop (fun tau ->
      match Single_machine.edf_schedule_no_regions ~tau (single_machine_jobs shop ~tau) with
      | Error (`Deadline_missed i) -> Error (`Deadline_missed i)
      | Ok starts -> Ok (propagate shop ~tau starts))
