(** Fast necessary conditions for flow-shop feasibility.

    The general flow-shop problem is NP-hard, and Algorithm H's failure
    proves nothing.  This module provides polynomial certificates of
    {e infeasibility}: when it returns a certificate, {e no} schedule —
    permutation or not, with or without inserted idle time — can meet all
    deadlines, because some single processor is overloaded inside a time
    window.  The test is the classical preemptive single-machine demand
    criterion applied to every processor with the effective windows
    [r_ij, d_ij]: if the subtasks that must execute entirely inside a
    window carry more work than its length, the instance is infeasible.
    (For one processor with preemption the criterion is also sufficient;
    across a flow shop it is only necessary.) *)

type rat = E2e_rat.Rat.t

type certificate =
  | Negative_slack of { task : int }
      (** The task cannot meet its deadline even alone ([d - r < tau]). *)
  | Overloaded_window of {
      processor : int;
      window_start : rat;
      window_end : rat;
      demand : rat;  (** Work that must fit entirely inside the window. *)
    }
      (** [demand > window_end - window_start] on this processor. *)

val pp_certificate : Format.formatter -> certificate -> unit

val check : E2e_model.Flow_shop.t -> certificate option
(** First certificate found, or [None] when the tests are inconclusive
    (the instance may still be infeasible).  O(m n^2) after sorting. *)

val is_provably_infeasible : E2e_model.Flow_shop.t -> bool

val processor_demand :
  E2e_model.Flow_shop.t -> processor:int -> window_start:rat -> window_end:rat -> rat
(** Total processing time of the subtasks on [processor] whose effective
    window lies inside [\[window_start, window_end\]] (exposed for
    tests). *)
