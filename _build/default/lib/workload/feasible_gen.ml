module Rat = E2e_rat.Rat
module Prng = E2e_prng.Prng
module Task = E2e_model.Task
module Flow_shop = E2e_model.Flow_shop
module Recurrence_shop = E2e_model.Recurrence_shop
module Periodic_shop = E2e_model.Periodic_shop
module Schedule = E2e_schedule.Schedule

type params = {
  n_tasks : int;
  n_processors : int;
  mean_tau : float;
  stdev : float;
  slack_factor : float;
}

(* Processing times live on a 1/100 grid so all derived quantities stay
   exact rationals with small denominators. *)
let grid = 100

let rat_of_sample x = Rat.make (int_of_float (Float.round (x *. float_of_int grid))) grid

let draw_tau g p =
  let stdev = p.stdev *. p.mean_tau in
  let lo = 0.05 *. p.mean_tau in
  let x = Prng.truncated_normal g ~mean:p.mean_tau ~stdev ~lo in
  Rat.max (Rat.make 1 grid) (rat_of_sample x)

let generate_with_witness g p =
  if p.n_tasks <= 0 || p.n_processors <= 0 then invalid_arg "Feasible_gen.generate";
  let taus = Array.init p.n_tasks (fun _ -> Array.init p.n_processors (fun _ -> draw_tau g p)) in
  (* Witness: earliest-start schedule of a random order with open windows. *)
  let far = Rat.of_int 1_000_000 in
  let provisional =
    Flow_shop.make ~processors:p.n_processors
      (Array.init p.n_tasks (fun i ->
           Task.make ~id:i ~release:Rat.zero ~deadline:far ~proc_times:taus.(i)))
  in
  let order = Prng.permutation g p.n_tasks in
  let witness = Schedule.forward_pass (Recurrence_shop.of_traditional provisional) ~order in
  let slack = Rat.of_float ~max_den:1000 p.slack_factor in
  let windows =
    Array.init p.n_tasks (fun i ->
        let start = Schedule.start witness ~task:i ~stage:0 in
        let finish = Schedule.completion witness i in
        let span = Rat.sub finish start in
        let tau_total = Rat.sum_array taus.(i) in
        let window = Rat.max (Rat.mul tau_total (Rat.add Rat.one slack)) span in
        let u = Prng.rat_uniform g ~den:grid Rat.zero Rat.one in
        let release = Rat.sub start (Rat.mul u (Rat.sub window span)) in
        (release, Rat.add release window))
  in
  (* Shift so the earliest release is 0, as in the paper's examples. *)
  let shift =
    Array.fold_left (fun acc (r, _) -> Rat.min acc r) Rat.zero windows
  in
  let shift = Rat.neg shift in
  let tasks =
    Array.init p.n_tasks (fun i ->
        let r, d = windows.(i) in
        Task.make ~id:i ~release:(Rat.add r shift) ~deadline:(Rat.add d shift)
          ~proc_times:taus.(i))
  in
  let shop = Flow_shop.make ~processors:p.n_processors tasks in
  let shifted_starts =
    Array.map (Array.map (fun s -> Rat.add s shift)) witness.Schedule.starts
  in
  let witness = Schedule.of_flow_shop shop shifted_starts in
  (shop, witness)

let generate g p = fst (generate_with_witness g p)

let identical_length g ~n ~m ~tau ~window =
  let tasks =
    Array.init n (fun i ->
        let release = Prng.rat_uniform g ~den:4 Rat.zero (Rat.of_int window) in
        let min_window = Rat.mul_int tau m in
        let extra = Prng.rat_uniform g ~den:4 Rat.zero (Rat.of_int window) in
        Task.make ~id:i ~release
          ~deadline:Rat.(release + min_window + extra)
          ~proc_times:(Array.make m tau))
  in
  Flow_shop.make ~processors:m tasks

let homogeneous g ~n ~m ~max_tau ~window =
  let taus =
    Array.init m (fun _ -> Prng.rat_uniform g ~den:2 (Rat.make 1 2) (Rat.of_int max_tau))
  in
  let total = Rat.sum_array taus in
  let tasks =
    Array.init n (fun i ->
        let release = Prng.rat_uniform g ~den:4 Rat.zero (Rat.of_int window) in
        let extra = Prng.rat_uniform g ~den:4 Rat.zero (Rat.of_int window) in
        Task.make ~id:i ~release
          ~deadline:Rat.(release + total + extra)
          ~proc_times:(Array.copy taus))
  in
  Flow_shop.make ~processors:m tasks

let single_loop_visit g ~max_stages =
  if max_stages < 3 then invalid_arg "Feasible_gen.single_loop_visit: needs >= 3 stages";
  (* Structure: prefix (a) | block (r) | middle (q - r) | block again | suffix.
     Stage count = a + q + r + s with q >= r >= 1. *)
  let rec draw () =
    let a = Prng.int g 3 in
    let r = 1 + Prng.int g 2 in
    let middle = Prng.int g 3 in
    let s = Prng.int g 3 in
    (* Avoid the degenerate [p; p] immediate self-repeat. *)
    if a + r + middle + r + s > max_stages || (r = 1 && middle = 0) then draw ()
    else (a, r, middle, s)
  in
  let a, r, middle, s = draw () in
  let seq =
    Array.concat
      [
        Array.init a Fun.id;
        Array.init r (fun i -> a + i);
        Array.init middle (fun i -> a + r + i);
        Array.init r (fun i -> a + i);
        Array.init s (fun i -> a + r + middle + i);
      ]
  in
  let visit = E2e_model.Visit.make seq in
  assert (E2e_model.Visit.single_loop visit <> None);
  visit

let periodic g ~n ~m ~utilization =
  if utilization <= 0.0 then invalid_arg "Feasible_gen.periodic: nonpositive utilization";
  let log_lo = log 8.0 and log_hi = log 200.0 in
  let periods =
    Array.init n (fun _ ->
        let p = exp (Prng.uniform g log_lo log_hi) in
        Rat.max (Rat.of_int 8) (Rat.make (int_of_float (Float.round (p *. 4.0))) 4))
  in
  let jobs = Array.init n (fun i -> (periods.(i), Array.make m Rat.zero)) in
  (* Split the target utilization column-wise with fresh weights per
     processor so processors differ. *)
  for j = 0 to m - 1 do
    let weights = Array.init n (fun _ -> 0.2 +. Prng.float g 1.0) in
    let wsum = Array.fold_left ( +. ) 0.0 weights in
    for i = 0 to n - 1 do
      let u_ij = utilization *. weights.(i) /. wsum in
      let tau = u_ij *. Rat.to_float periods.(i) in
      let tau = Rat.max (Rat.make 1 grid) (rat_of_sample tau) in
      let _, proc_times = jobs.(i) in
      proc_times.(j) <- Rat.min tau periods.(i)
    done
  done;
  Periodic_shop.of_params jobs

let arbitrary g ~n ~m ~max_tau ~window =
  let tasks =
    Array.init n (fun i ->
        let proc_times =
          Array.init m (fun _ -> Prng.rat_uniform g ~den:4 (Rat.make 1 4) (Rat.of_int max_tau))
        in
        let total = Rat.sum_array proc_times in
        let release = Prng.rat_uniform g ~den:4 Rat.zero (Rat.of_int window) in
        let extra = Prng.rat_uniform g ~den:4 Rat.zero (Rat.of_int window) in
        Task.make ~id:i ~release ~deadline:Rat.(release + total + extra) ~proc_times)
  in
  Flow_shop.make ~processors:m tasks
