lib/workload/feasible_gen.ml: Array E2e_model E2e_prng E2e_rat E2e_schedule Float Fun
