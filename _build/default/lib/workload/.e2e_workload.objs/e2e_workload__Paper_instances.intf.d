lib/workload/paper_instances.mli: E2e_model
