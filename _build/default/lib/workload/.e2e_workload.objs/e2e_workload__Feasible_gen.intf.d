lib/workload/feasible_gen.mli: E2e_model E2e_prng E2e_rat E2e_schedule
