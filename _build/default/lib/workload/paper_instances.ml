module Rat = E2e_rat.Rat
module Prng = E2e_prng.Prng
module Task = E2e_model.Task
module Flow_shop = E2e_model.Flow_shop
module Visit = E2e_model.Visit
module Recurrence_shop = E2e_model.Recurrence_shop
module Periodic_shop = E2e_model.Periodic_shop
module Schedule = E2e_schedule.Schedule

let r = Rat.of_int
let dec = Rat.of_decimal_string

let table1 () =
  let visit = Visit.of_one_based [| 1; 2; 3; 4; 2; 3; 5 |] in
  let k = Visit.length visit in
  let deadlines = [| 10; 12; 14; 16 |] in
  let tasks =
    Array.mapi
      (fun id d ->
        Task.make ~id ~release:Rat.zero ~deadline:(r d) ~proc_times:(Array.make k Rat.one))
      deadlines
  in
  Recurrence_shop.make ~visit tasks

let table2 () =
  let taus = [| r 2; r 3; r 4; r 2 |] in
  let params =
    [|
      (r 0, r 17); (r 1, r 21); (r 3, r 25); (r 6, r 29);
    |]
  in
  Flow_shop.make ~processors:4
    (Array.mapi
       (fun id (release, deadline) ->
         Task.make ~id ~release ~deadline ~proc_times:(Array.copy taus))
       params)

(* Figure 8's situation: before compaction the schedule produced from the
   inflated task set misses a deadline and violates a release time; after
   compaction it is feasible.  We search deterministically for the first
   generated instance exhibiting exactly that, so the "table" is stable
   across runs. *)
let table3 =
  let memo = ref None in
  fun () ->
    match !memo with
    | Some shop -> shop
    | None ->
        let params =
          {
            Feasible_gen.n_tasks = 5;
            n_processors = 4;
            mean_tau = 1.0;
            stdev = 0.5;
            slack_factor = 0.8;
          }
        in
        let rec search seed =
          if seed > 100_000 then failwith "Paper_instances.table3: search exhausted"
          else
            let g = Prng.create seed in
            let shop = Feasible_gen.generate g params in
            let report = E2e_core.Algo_h.run shop in
            match (report.E2e_core.Algo_h.raw, report.E2e_core.Algo_h.result) with
            | Some raw, Ok _ ->
                let vs = Schedule.violations raw in
                let misses_deadline =
                  List.exists (function Schedule.Deadline_missed _ -> true | _ -> false) vs
                in
                let violates_release =
                  List.exists (function Schedule.Release_violated _ -> true | _ -> false) vs
                in
                if misses_deadline && violates_release then shop else search (seed + 1)
            | _ -> search (seed + 1)
        in
        let shop = search 1 in
        memo := Some shop;
        shop

(* Feasible, but only by a non-permutation schedule: found by comparing
   the exact branch-and-bound oracle against the permutation-only
   exhaustive search over a deterministic seed sequence. *)
let non_permutation_witness =
  let memo = ref None in
  fun () ->
    match !memo with
    | Some shop -> shop
    | None ->
        let rec search seed =
          if seed > 100_000 then failwith "Paper_instances.non_permutation_witness: exhausted"
          else
            let g = Prng.create seed in
            let shop = Feasible_gen.arbitrary g ~n:4 ~m:3 ~max_tau:3 ~window:3 in
            if not (E2e_baselines.Exhaustive.permutation_feasible shop) then
              match E2e_baselines.Branch_bound.solve ~budget:200_000 shop with
              | E2e_baselines.Branch_bound.Feasible _ -> shop
              | _ -> search (seed + 1)
            else search (seed + 1)
        in
        let shop = search 1 in
        memo := Some shop;
        shop

let table4 () =
  Periodic_shop.of_params
    [|
      (r 10, [| dec "1.1"; dec "1.6" |]);
      (Rat.make 25 2, [| dec "1.5"; dec "1.25" |]);
      (r 20, [| dec "2.0"; dec "2.0" |]);
    |]

let table5 () =
  Periodic_shop.of_params
    [|
      (r 2, [| dec "0.5"; dec "0.5" |]);
      (r 5, [| dec "1.5"; dec "1.5" |]);
    |]
