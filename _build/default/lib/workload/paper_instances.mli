(** The worked examples of the paper's tables.

    The OCR of the paper text lost most numeric cells of the tables, so
    the instances below are reconstructions constrained by every number
    that did survive (see DESIGN.md, "Substitutions").  Tables 1-3
    exercise exactly the features the paper's figures illustrate;
    Tables 4-5 reproduce the surviving derived quantities
    (delta_1 = 0.33, delta_1 p_1 = 3.3, ..., delta = 0.553, 1.106 p_i). *)

val table1 : unit -> E2e_model.Recurrence_shop.t
(** Four unit-length tasks, common release 0, deadlines (10, 12, 14, 16),
    visit sequence (1, 2, 3, 4, 2, 3, 5) — Figure 1's visit graph, for
    Algorithm R (Figure 3). *)

val table2 : unit -> E2e_model.Flow_shop.t
(** Homogeneous task set on 4 processors with per-processor times
    (2, 3, 4, 2) — bottleneck P3 — for Algorithm A (Figure 5). *)

val table3 : unit -> E2e_model.Flow_shop.t
(** Five tasks with arbitrary processing times on 4 processors such that
    Algorithm H's uncompacted schedule violates a deadline and a release
    time while the compacted schedule is feasible — the situation of
    Figure 8.  Found by a deterministic seeded search (memoised). *)

val table4 : unit -> E2e_model.Periodic_shop.t
(** Three periodic jobs on a 2-processor flow shop, periods
    (10, 25/2, 20), utilizations u1 = 0.33, u2 = 0.36: schedulable by
    phase postponement with deadlines at the end of the period. *)

val non_permutation_witness : unit -> E2e_model.Flow_shop.t
(** An instance that is feasible but admits {e no} feasible permutation
    schedule — witnessing the paper's Section 4 remark that "in flow
    shops with more than two processors it is possible that the order of
    execution of subtasks may vary from processor to processor in all
    feasible schedules", and hence one of the two reasons Algorithm H is
    not optimal.  Found by a deterministic seeded search (memoised). *)

val table5 : unit -> E2e_model.Periodic_shop.t
(** Two periodic jobs (periods 2 and 5, a Liu-Layland-style pair) with
    u1 = u2 = 0.55 on a 2-processor flow shop: not schedulable by the end
    of the period, schedulable when deadlines are postponed ~10.6%
    (delta = 0.553 per processor). *)
