(* Capacity planning: how many messages fit before deadlines break?

   A switch fabric is modelled as a 3-hop flow shop.  We admit messages
   one by one and, for each admission level, ask three oracles of
   increasing strength:

   - the O(m n^2) infeasibility certificates (a "no" here is a proof);
   - Algorithm H and its portfolio (a "yes" here comes with a schedule);
   - exact branch and bound (the ground truth for the gray zone).

   This is the admission-control workflow the paper's algorithms support:
   fast certificates for rejection, fast heuristics for admission, and an
   exact fallback for the rare undecided instance.

   Run with: dune exec examples/capacity_planning.exe *)

module Rat = E2e_rat.Rat
module Flow_shop = E2e_model.Flow_shop
module Schedule = E2e_schedule.Schedule
module Infeasibility = E2e_core.Infeasibility
module Algo_h = E2e_core.Algo_h
module H_portfolio = E2e_core.H_portfolio
module Branch_bound = E2e_baselines.Branch_bound

let rat = Rat.of_decimal_string

(* Message i: arrives at i * 1.5 ms, must be delivered within 9 ms, and
   needs (1, 2, 1.5) ms on the three hops. *)
let message i =
  let arrival = Rat.mul_int (rat "1.5") i in
  (arrival, Rat.add arrival (rat "9"), [| rat "1"; rat "2"; rat "1.5" |])

let shop_with n = Flow_shop.of_params (Array.init n message)

let () =
  Format.printf "%-10s %-22s %-12s %-12s %-14s@." "messages" "certificate" "Algorithm H"
    "portfolio" "exact";
  Format.printf "%s@." (String.make 74 '-');
  let continue_ = ref true in
  let n = ref 1 in
  while !continue_ && !n <= 14 do
    let shop = shop_with !n in
    let cert =
      match Infeasibility.check shop with
      | Some _ -> "infeasible (proof)"
      | None -> "inconclusive"
    in
    let h = match Algo_h.schedule shop with Ok _ -> "feasible" | Error _ -> "failed" in
    let portfolio =
      match H_portfolio.schedule shop with
      | Ok (_, strategy) -> Format.asprintf "%a" H_portfolio.pp_strategy strategy
      | Error `All_failed -> "failed"
    in
    let exact =
      if !n > 8 then "skipped (guard)"
      else
        match Branch_bound.solve shop with
        | Branch_bound.Feasible _ -> "feasible"
        | Branch_bound.Infeasible -> "infeasible"
        | Branch_bound.Unknown -> "budget out"
    in
    Format.printf "%-10d %-22s %-12s %-12s %-14s@." !n cert h
      (if String.length portfolio > 11 then "feasible" else portfolio)
      exact;
    (match Infeasibility.check shop with
    | Some c ->
        Format.printf "  proof: %a@." Infeasibility.pp_certificate c;
        continue_ := false
    | _ -> ());
    incr n
  done;
  (* Show the last admitted configuration's schedule. *)
  let last_good =
    let rec find n = if n = 0 then None
      else match H_portfolio.schedule_opt (shop_with n) with
        | Some s -> Some (n, s)
        | None -> find (n - 1)
    in
    find 14
  in
  match last_good with
  | Some (n, s) ->
      Format.printf "@.Schedule for the largest admitted load (%d messages):@.%a@." n
        (Schedule.pp_gantt ?unit_time:None) s
  | None -> Format.printf "@.nothing admissible?!@."
