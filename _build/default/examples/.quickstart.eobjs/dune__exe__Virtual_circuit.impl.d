examples/virtual_circuit.ml: Array E2e_core E2e_model E2e_rat E2e_schedule Format
