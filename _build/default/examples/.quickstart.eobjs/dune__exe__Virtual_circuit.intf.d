examples/virtual_circuit.mli:
