examples/multi_class_system.ml: Array E2e_core E2e_partition E2e_rat E2e_schedule Format List
