examples/quickstart.mli:
