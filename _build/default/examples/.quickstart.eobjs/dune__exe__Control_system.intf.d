examples/control_system.mli:
