examples/multi_class_system.mli:
