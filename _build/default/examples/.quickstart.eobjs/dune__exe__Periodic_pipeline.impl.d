examples/periodic_pipeline.ml: Array E2e_model E2e_partition E2e_periodic E2e_rat E2e_sim Format
