examples/periodic_pipeline.mli:
