(* A periodic sensing/actuation pipeline (Section 5 machinery).

   Three periodic jobs flow through a two-processor shop (e.g. a signal
   processor followed by an actuator bus).  The analysis computes, per
   processor, the delta of Equation (1), postpones the subjob phases, and
   decides end-to-end schedulability; the discrete-event simulator then
   validates the verdict.  Finally, two such pipelines share the same
   physical processors and are partitioned per Section 6.

   Run with: dune exec examples/periodic_pipeline.exe *)

module Rat = E2e_rat.Rat
module Periodic_shop = E2e_model.Periodic_shop
module Analysis = E2e_periodic.Analysis
module Pipeline_sim = E2e_sim.Pipeline_sim
module Partition = E2e_partition.Partition

let rat = Rat.of_decimal_string

let analyse_and_validate name sys =
  Format.printf "=== %s ===@.%a@." name Periodic_shop.pp sys;
  Array.iteri
    (fun j u -> Format.printf "utilization on P%d: %a@." (j + 1) Rat.pp_decimal u)
    (Periodic_shop.utilizations sys);
  let verdict = Analysis.analyse sys in
  Format.printf "analysis: %a@." Analysis.pp_verdict verdict;
  match verdict with
  | Analysis.Schedulable { deltas; _ } | Analysis.Schedulable_postponed { deltas; _ } ->
      let factor =
        match verdict with
        | Analysis.Schedulable _ -> 1.0
        | Analysis.Schedulable_postponed { total; _ } -> total
        | Analysis.Not_schedulable _ -> assert false
      in
      Array.iteri (fun j d -> Format.printf "delta on P%d: %.3f@." (j + 1) d) deltas;
      let phases = Analysis.phases sys deltas in
      Array.iteri
        (fun i row ->
          Format.printf "J%d subjob phases:" (i + 1);
          Array.iter (fun b -> Format.printf " %.3f" b) row;
          Format.printf "@.")
        phases;
      let horizon = 20.0 *. Rat.to_float (Periodic_shop.hyperperiod sys) in
      let report =
        Pipeline_sim.simulate ~deadline_factor:factor ~horizon
          ~policy:(`Postponed_phases deltas) sys
      in
      Format.printf
        "simulation over %.0f time units: %d requests, %d precedence violations, %d deadline misses@."
        horizon report.Pipeline_sim.requests report.Pipeline_sim.precedence_violations
        report.Pipeline_sim.deadline_misses;
      Array.iteri
        (fun i resp ->
          Format.printf "J%d worst end-to-end response %.3f (bound %.3f)@." (i + 1) resp
            (Analysis.response_bound sys deltas i))
        report.Pipeline_sim.end_to_end;
      Format.printf "@."
  | Analysis.Not_schedulable _ -> Format.printf "@."

let () =
  (* The reconstructed Table 4 pipeline. *)
  let pipeline_a =
    Periodic_shop.of_params
      [|
        (rat "10", [| rat "1.1"; rat "1.6" |]);
        (rat "12.5", [| rat "1.5"; rat "1.25" |]);
        (rat "20", [| rat "2.0"; rat "2.0" |]);
      |]
  in
  analyse_and_validate "Sensor pipeline A (Table 4)" pipeline_a;

  (* A second pipeline with different rates on the same two processors. *)
  let pipeline_b =
    Periodic_shop.of_params
      [| (rat "8", [| rat "0.8"; rat "0.6" |]); (rat "40", [| rat "4"; rat "2" |]) |]
  in
  analyse_and_validate "Sensor pipeline B" pipeline_b;

  (* Section 6: both pipelines share the physical processors; split each
     processor in proportion to utilization, stretch the processing
     times, and re-analyse each pipeline on its virtual processors. *)
  Format.printf "=== Sharing the processors (Section 6 partitioning) ===@.";
  for j = 0 to 1 do
    let shares = Partition.periodic_shares [ pipeline_a; pipeline_b ] ~processor:j in
    Format.printf "shares of P%d: A gets %a, B gets %a@." (j + 1) Rat.pp_decimal shares.(0)
      Rat.pp_decimal shares.(1)
  done;
  match Partition.partition_periodic [ pipeline_a; pipeline_b ] with
  | [ a'; b' ] ->
      analyse_and_validate "Pipeline A on its virtual processors" a';
      analyse_and_validate "Pipeline B on its virtual processors" b'
  | _ -> assert false
