(* Real-time messages over an n-hop virtual circuit (Kandlur, Shin &
   Ferrari's setting, used as the paper's running example).

   Each message is a task; forwarding it across hop j is the subtask on
   processor P_j (links are processors).  With the same bandwidth on
   every link the task set is identical-length and EEDF is optimal; with
   per-link bandwidths it is homogeneous and Algorithm A is optimal.

   Run with: dune exec examples/virtual_circuit.exe *)

module Rat = E2e_rat.Rat
module Flow_shop = E2e_model.Flow_shop
module Schedule = E2e_schedule.Schedule
module Eedf = E2e_core.Eedf
module Algo_a = E2e_core.Algo_a

let rat = Rat.of_decimal_string

let () =
  (* Scenario 1: four equal-size messages over a 4-hop circuit with
     uniform link bandwidth; transmitting one message over one hop takes
     tau = 2 time units.  Release times are the arrival instants at the
     first switch; deadlines are the end-to-end latency budgets. *)
  let uniform =
    Flow_shop.of_params
      [|
        (rat "0", rat "16", Array.make 4 (rat "2"));
        (rat "0.5", rat "18", Array.make 4 (rat "2"));
        (rat "3", rat "22", Array.make 4 (rat "2"));
        (rat "4", rat "26", Array.make 4 (rat "2"));
      |]
  in
  Format.printf "=== Uniform bandwidth: EEDF with forbidden regions ===@.";
  (match Eedf.schedule uniform with
  | Ok s ->
      Format.printf "%a@.makespan %a, feasible %b@.@." Schedule.pp_table s Rat.pp
        (Schedule.makespan s) (Schedule.is_feasible s)
  | Error `Infeasible -> Format.printf "infeasible (EEDF is optimal)@.@."
  | Error `Not_identical_length -> assert false);

  (* Scenario 2: the last hop is a slow wide-area link (half bandwidth),
     the second an overprovisioned backbone: per-hop times (2, 1, 2, 4).
     The bottleneck is the slow link; Algorithm A drives it. *)
  let tiered =
    Flow_shop.of_params
      [|
        (rat "0", rat "24", [| rat "2"; rat "1"; rat "2"; rat "4" |]);
        (rat "0.5", rat "28", [| rat "2"; rat "1"; rat "2"; rat "4" |]);
        (rat "3", rat "32", [| rat "2"; rat "1"; rat "2"; rat "4" |]);
        (rat "4", rat "38", [| rat "2"; rat "1"; rat "2"; rat "4" |]);
      |]
  in
  Format.printf "=== Tiered bandwidth: Algorithm A ===@.";
  Format.printf "bottleneck hop: P%d@." (Flow_shop.bottleneck tiered + 1);
  match Algo_a.schedule tiered with
  | Ok s ->
      Format.printf "%a@.Gantt:@.%a@.makespan %a, feasible %b@." Schedule.pp_table s
        (Schedule.pp_gantt ?unit_time:None) s Rat.pp (Schedule.makespan s)
        (Schedule.is_feasible s);
      (* The messages traverse the bottleneck back-to-back in deadline
         order; upstream hops idle deliberately so each message arrives
         exactly when the slow link frees up. *)
      Format.printf
        "@.Note the inserted idle time upstream of the bottleneck — the schedule is not@.priority-driven, which is exactly why greedy dispatching is not optimal here.@."
  | Error `Infeasible -> Format.printf "infeasible (Algorithm A is optimal)@."
  | Error `Not_homogeneous -> assert false
