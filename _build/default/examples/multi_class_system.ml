(* A multi-class distributed system, the paper's Section 1 + Section 6
   strategy end to end.

   Physical resources: an input computer (P1), a shared bus (P2), a
   computation server (P3) and an output computer (P4).  Two task
   classes cross them in different orders:

   - "control": tracker/controller loops reading sensors on P1, crossing
     the bus to the server, and crossing the bus again to the actuators
     on P4 — a flow shop with recurrence (the bus loop of Section 2).
   - "telemetry": batch reports computed on the server, shipped over the
     bus to the output computer — a traditional 3-stage flow shop.

   The bus, server and output computer are shared, so they are split
   into virtual processors in proportion to each class's utilization;
   each class is then scheduled independently by the strongest
   applicable algorithm.

   Run with: dune exec examples/multi_class_system.exe *)

module Rat = E2e_rat.Rat
module Ds = E2e_partition.Distributed_system

let rat = Rat.of_decimal_string

let control =
  {
    Ds.name = "control";
    (* P1, bus, server, bus again, P4. *)
    visit = [| 0; 1; 2; 1; 3 |];
    tasks =
      Array.init 3 (fun i ->
          (rat "0", Rat.of_int (14 + (3 * i)), Array.make 5 (rat "1")));
  }

let telemetry =
  {
    Ds.name = "telemetry";
    (* Server -> bus -> output computer. *)
    visit = [| 2; 1; 3 |];
    tasks =
      [|
        (rat "0", rat "30", [| rat "2"; rat "1"; rat "1" |]);
        (rat "4", rat "40", [| rat "2"; rat "1"; rat "1" |]);
      |];
  }

let () =
  let system = Ds.analyse ~processors:4 [ control; telemetry ] in
  Format.printf "%a@.@." Ds.pp system;
  (* Show the control class's schedule in detail. *)
  List.iter
    (fun (r : Ds.class_report) ->
      match r.Ds.verdict with
      | E2e_core.Solver.Recurrent_feasible (s, _) ->
          Format.printf "schedule of class %S (on its virtual processors):@.%a@.@."
            r.Ds.class_name
            (E2e_schedule.Schedule.pp_gantt ?unit_time:None)
            s
      | _ -> ())
    system.Ds.reports
