(* Quickstart: define a flow-shop task set, ask the solver for a feasible
   end-to-end schedule, and inspect it.

   Run with: dune exec examples/quickstart.exe *)

module Rat = E2e_rat.Rat
module Flow_shop = E2e_model.Flow_shop
module Schedule = E2e_schedule.Schedule
module Solver = E2e_core.Solver

let rat = Rat.of_decimal_string

let () =
  (* Three tasks crossing three processors (say: a CPU, a network link,
     and a disk), each with an end-to-end release time and deadline.
     Processing times differ per task, so this is the NP-hard general
     case and the solver will use Algorithm H. *)
  let shop =
    Flow_shop.of_params
      [|
        (* release, deadline, processing times on P1, P2, P3 *)
        (rat "0", rat "12", [| rat "2"; rat "1"; rat "2" |]);
        (rat "1", rat "14", [| rat "1"; rat "3"; rat "1" |]);
        (rat "2", rat "16", [| rat "2"; rat "2"; rat "2" |]);
      |]
  in
  Format.printf "Task set:@.%a@.@." Flow_shop.pp shop;
  match Solver.solve shop with
  | Solver.Feasible (schedule, algorithm) ->
      let name =
        match algorithm with
        | `Eedf -> "EEDF (optimal for identical-length sets)"
        | `Algorithm_a -> "Algorithm A (optimal for homogeneous sets)"
        | `Algorithm_h -> "Algorithm H (heuristic for arbitrary sets)"
      in
      Format.printf "Scheduled by %s@.@." name;
      Format.printf "%a@." Schedule.pp_table schedule;
      Format.printf "@.Gantt (1 column = 1 time unit):@.%a@."
        (Schedule.pp_gantt ?unit_time:None) schedule;
      Format.printf "@.makespan = %a, all deadlines met: %b@." Rat.pp
        (Schedule.makespan schedule)
        (Schedule.is_feasible schedule)
  | Solver.Proved_infeasible _ -> Format.printf "No feasible schedule exists.@."
  | Solver.Heuristic_failed ->
      Format.printf "Algorithm H failed; feasibility is undecided (NP-hard case).@."
