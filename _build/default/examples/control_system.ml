(* The distributed control system of the paper's introduction.

   An input computer reads and preprocesses sensor data, ships it over a
   bus to a computation server that runs the control law, and ships the
   commands over the same bus to an output computer.  Because the bus is
   shared (there are no dedicated input/output links), each
   tracker-and-controller task visits it twice: the system is a flow shop
   with recurrence, visit sequence (1, 2, 3, 2, 4), and the bus closes a
   loop in the visit graph.  Algorithm R schedules it optimally.

   Run with: dune exec examples/control_system.exe *)

module Rat = E2e_rat.Rat
module Task = E2e_model.Task
module Visit = E2e_model.Visit
module Recurrence_shop = E2e_model.Recurrence_shop
module Schedule = E2e_schedule.Schedule
module Algo_r = E2e_core.Algo_r

let () =
  (* P1 input computer, P2 bus, P3 computation server, P4 output
     computer.  Every stage of every tracker takes one 10 ms frame
     (tau = 1); deadlines come from each control loop's response-time
     requirement. *)
  let visit = Visit.of_one_based [| 1; 2; 3; 2; 4 |] in
  let deadlines = [| 8; 9; 11; 14 |] in
  let tasks =
    Array.mapi
      (fun id d ->
        Task.make ~id ~release:Rat.zero ~deadline:(Rat.of_int d)
          ~proc_times:(Array.make (Visit.length visit) Rat.one))
      deadlines
  in
  let shop = Recurrence_shop.make ~visit tasks in
  Format.printf "Visit sequence %a (P2 is the shared bus)@." Visit.pp visit;
  (match Visit.single_loop visit with
  | Some { Visit.first_pos; span; reused } ->
      Format.printf "Loop detected: first visit at stage %d, second %d stages later (%d reused)@.@."
        (first_pos + 1) span reused
  | None -> Format.printf "no loop?!@.");
  match Algo_r.schedule shop with
  | Ok schedule ->
      Format.printf "Algorithm R schedule:@.%a@." Schedule.pp_table schedule;
      Format.printf "@.Gantt:@.%a@." (Schedule.pp_gantt ?unit_time:None) schedule;
      Format.printf "@.Dispatch order on the bus (stage, start):@.";
      (match Algo_r.decision_trace shop with
      | Ok trace ->
          List.iter
            (fun { Algo_r.task; stage; start } ->
              Format.printf "  T%d stage %d at t=%a@." (task + 1) (stage + 1) Rat.pp start)
            trace
      | Error e -> Format.printf "  %a@." Algo_r.pp_error e);
      Format.printf "@.All %d trackers meet their response deadlines: %b@."
        (Array.length deadlines) (Schedule.is_feasible schedule)
  | Error `Infeasible ->
      Format.printf "No feasible schedule exists for these deadlines (R is optimal).@."
  | Error e -> Format.printf "Algorithm R inapplicable: %a@." Algo_r.pp_error e
