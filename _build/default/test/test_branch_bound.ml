module Rat = E2e_rat.Rat
module Flow_shop = E2e_model.Flow_shop
module Schedule = E2e_schedule.Schedule
module Branch_bound = E2e_baselines.Branch_bound
module Exhaustive = E2e_baselines.Exhaustive
module Algo_h = E2e_core.Algo_h
module Prng = E2e_prng.Prng
module Gen = E2e_workload.Feasible_gen
open Helpers

let test_feasible_witness () =
  let g = Prng.create 41 in
  for _ = 1 to 40 do
    let shop =
      Gen.generate g
        { Gen.n_tasks = 4; n_processors = 3; mean_tau = 1.0; stdev = 0.4; slack_factor = 0.6 }
    in
    match Branch_bound.solve shop with
    | Branch_bound.Feasible s -> assert_feasible "bb witness" s
    | Branch_bound.Infeasible -> Alcotest.fail "generator guarantees feasibility"
    | Branch_bound.Unknown -> Alcotest.fail "tiny instance exhausted the budget"
  done

let test_infeasible () =
  let shop =
    Flow_shop.of_params
      [| (r 0, r 2, [| r 1; r 1 |]); (r 0, r 2, [| r 1; r 1 |]) |]
  in
  Alcotest.(check bool) "decided infeasible" true
    (Branch_bound.feasible shop = Some false)

let test_budget () =
  let g = Prng.create 43 in
  let shop =
    Gen.generate g
      { Gen.n_tasks = 6; n_processors = 4; mean_tau = 1.0; stdev = 0.5; slack_factor = 0.5 }
  in
  match Branch_bound.solve ~budget:3 shop with
  | Branch_bound.Unknown -> ()
  | Branch_bound.Feasible _ -> () (* found within 3 nodes: also fine *)
  | Branch_bound.Infeasible -> Alcotest.fail "cannot prove infeasibility in 3 nodes"

let test_guards () =
  let g = Prng.create 47 in
  let shop =
    Gen.generate g
      { Gen.n_tasks = 9; n_processors = 2; mean_tau = 1.0; stdev = 0.1; slack_factor = 1.0 }
  in
  Alcotest.(check bool) "size guard" true
    (match Branch_bound.solve shop with exception Invalid_argument _ -> true | _ -> false)

(* Agreement with the permutation oracle in both directions it can
   speak to: permutation-feasible implies BB-feasible; BB-infeasible
   implies permutation-infeasible. *)
let prop_agrees_with_permutation_oracle =
  to_alcotest
    (QCheck.Test.make ~name:"branch&bound vs permutation oracle" ~count:150
       (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 1_000_000))
       (fun seed ->
         let g = Prng.create seed in
         let shop = Gen.arbitrary g ~n:4 ~m:3 ~max_tau:3 ~window:4 in
         match Branch_bound.solve ~budget:100_000 shop with
         | Branch_bound.Unknown -> true
         | Branch_bound.Feasible s ->
             Schedule.is_feasible s
             (* BB may succeed where permutation search fails, never the
                converse. *)
         | Branch_bound.Infeasible -> not (Exhaustive.permutation_feasible shop)))

(* H is sound with respect to the exact oracle: if H finds a schedule the
   instance is truly feasible. *)
let prop_h_sound =
  to_alcotest
    (QCheck.Test.make ~name:"Algorithm H sound vs branch&bound" ~count:100
       (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 1_000_000))
       (fun seed ->
         let g = Prng.create seed in
         let shop = Gen.arbitrary g ~n:4 ~m:3 ~max_tau:3 ~window:5 in
         match Algo_h.schedule shop with
         | Error _ -> true
         | Ok _ -> Branch_bound.feasible ~budget:100_000 shop <> Some false))

let suite =
  [
    Alcotest.test_case "feasible instances get witnesses" `Quick test_feasible_witness;
    Alcotest.test_case "proves infeasibility" `Quick test_infeasible;
    Alcotest.test_case "budget exhaustion" `Quick test_budget;
    Alcotest.test_case "size guards" `Quick test_guards;
    prop_agrees_with_permutation_oracle;
    prop_h_sound;
  ]
