module Rat = E2e_rat.Rat
module Flow_shop = E2e_model.Flow_shop
module Recurrence_shop = E2e_model.Recurrence_shop
module Schedule = E2e_schedule.Schedule
module Local_search = E2e_baselines.Local_search
module Exhaustive = E2e_baselines.Exhaustive
module Algo_h = E2e_core.Algo_h
module Prng = E2e_prng.Prng
module Gen = E2e_workload.Feasible_gen
open Helpers

let test_tardiness () =
  let shop =
    Flow_shop.of_params [| (r 0, r 3, [| r 2; r 2 |]); (r 0, r 20, [| r 2; r 2 |]) |]
  in
  let s = Schedule.forward_pass (Recurrence_shop.of_traditional shop) ~order:[| 0; 1 |] in
  (* T0 completes at 4, deadline 3: tardiness 1.  T1 on time. *)
  check_rat "tardiness 1" Rat.one (Local_search.tardiness s);
  let ok = Schedule.forward_pass (Recurrence_shop.of_traditional shop) ~order:[| 1; 0 |] in
  ignore ok;
  ()

let test_solves_feasible_sets () =
  let g = Prng.create 83 in
  let solved = ref 0 in
  let trials = 100 in
  for _ = 1 to trials do
    let shop =
      Gen.generate g
        { Gen.n_tasks = 6; n_processors = 4; mean_tau = 1.0; stdev = 0.5; slack_factor = 0.8 }
    in
    match Local_search.schedule shop with
    | Some s ->
        assert_feasible "local search result" s;
        incr solved
    | None -> ()
  done;
  (* On these instances a permutation witness always exists; local search
     should find the vast majority. *)
  Alcotest.(check bool) (Printf.sprintf "solves %d/100" !solved) true (!solved >= 90)

let test_beats_plain_h () =
  let g = Prng.create 89 in
  let ls = ref 0 and h = ref 0 in
  for _ = 1 to 100 do
    let shop =
      Gen.generate g
        { Gen.n_tasks = 6; n_processors = 4; mean_tau = 1.0; stdev = 0.5; slack_factor = 0.8 }
    in
    (match Local_search.schedule shop with Some _ -> incr ls | None -> ());
    match Algo_h.schedule shop with Ok _ -> incr h | Error _ -> ()
  done;
  Alcotest.(check bool) (Printf.sprintf "local search %d vs H %d" !ls !h) true (!ls >= !h)

let test_sound_on_infeasible () =
  let shop =
    Flow_shop.of_params [| (r 0, r 2, [| r 1; r 1 |]); (r 0, r 2, [| r 1; r 1 |]) |]
  in
  Alcotest.(check bool) "returns None" true (Local_search.schedule shop = None)

let test_deterministic () =
  let g = Prng.create 97 in
  let shop =
    Gen.generate g
      { Gen.n_tasks = 5; n_processors = 3; mean_tau = 1.0; stdev = 0.5; slack_factor = 0.6 }
  in
  let a = Local_search.schedule ~seed:5 shop and b = Local_search.schedule ~seed:5 shop in
  Alcotest.(check bool) "same seed, same outcome" true
    (match (a, b) with
    | Some x, Some y -> x.Schedule.starts = y.Schedule.starts
    | None, None -> true
    | _ -> false)

let test_never_misses_when_exhaustive_tiny () =
  (* With enough restarts on 4-task instances, local search matches the
     exhaustive oracle almost always; here we only require soundness and
     cross-check positives. *)
  let g = Prng.create 101 in
  for _ = 1 to 50 do
    let shop = Gen.arbitrary g ~n:4 ~m:3 ~max_tau:3 ~window:4 in
    match Local_search.schedule ~restarts:16 shop with
    | Some s ->
        assert_feasible "ls" s;
        Alcotest.(check bool) "exhaustive agrees" true (Exhaustive.permutation_feasible shop)
    | None -> ()
  done

let suite =
  [
    Alcotest.test_case "tardiness objective" `Quick test_tardiness;
    Alcotest.test_case "solves feasible sets" `Quick test_solves_feasible_sets;
    Alcotest.test_case "dominates plain H" `Quick test_beats_plain_h;
    Alcotest.test_case "sound on infeasible" `Quick test_sound_on_infeasible;
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "agrees with exhaustive (positives)" `Quick
      test_never_misses_when_exhaustive_tiny;
  ]
