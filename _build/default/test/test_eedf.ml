module Rat = E2e_rat.Rat
module Flow_shop = E2e_model.Flow_shop
module Schedule = E2e_schedule.Schedule
module Sm = E2e_core.Single_machine
module Eedf = E2e_core.Eedf
module Prng = E2e_prng.Prng
module Gen = E2e_workload.Feasible_gen
open Helpers

let identical_shop params =
  Flow_shop.of_params (Array.of_list params)

let test_simple_pipeline () =
  (* Three unit tasks, three processors, deadlines comfortable. *)
  let shop =
    identical_shop
      [
        (r 0, r 5, [| r 1; r 1; r 1 |]);
        (r 0, r 6, [| r 1; r 1; r 1 |]);
        (r 0, r 7, [| r 1; r 1; r 1 |]);
      ]
  in
  match Eedf.schedule shop with
  | Ok s ->
      assert_feasible "eedf pipeline" s;
      (* Deadline order: T0 first; stages chain with step tau. *)
      check_rat "T0 P1" (r 0) (Schedule.start s ~task:0 ~stage:0);
      check_rat "T0 P2" (r 1) (Schedule.start s ~task:0 ~stage:1);
      check_rat "T1 P1" (r 1) (Schedule.start s ~task:1 ~stage:0)
  | Error _ -> Alcotest.fail "feasible pipeline rejected"

let test_rejects_non_identical () =
  let shop = identical_shop [ (r 0, r 9, [| r 1; r 2 |]) ] in
  match Eedf.schedule shop with
  | Error `Not_identical_length -> ()
  | _ -> Alcotest.fail "must reject non-identical-length sets"

let test_infeasible () =
  (* Two tasks, both must finish by 2; only one can. *)
  let shop =
    identical_shop [ (r 0, r 2, [| r 1; r 1 |]); (r 0, r 2, [| r 1; r 1 |]) ]
  in
  match Eedf.schedule shop with
  | Error `Infeasible -> ()
  | _ -> Alcotest.fail "should prove infeasibility"

let test_flow_shop_trap () =
  (* The single-machine trap lifted to a 2-processor flow shop: plain EDF
     on P1 fails, forbidden regions succeed.  tau = 2, m = 2. *)
  let shop =
    identical_shop [ (r 0, r 14, [| r 2; r 2 |]); (r 1, r 5, [| r 2; r 2 |]) ]
  in
  (match Eedf.schedule_no_regions shop with
  | Error (`Deadline_missed _) -> ()
  | Ok s -> Alcotest.failf "plain EDF unexpectedly feasible: %a" Schedule.pp_table s
  | Error `Not_identical_length -> Alcotest.fail "classification");
  match Eedf.schedule shop with
  | Ok s -> assert_feasible "regions fix the trap" s
  | Error _ -> Alcotest.fail "EEDF must schedule the trap"

let test_reduction_shape () =
  let shop =
    identical_shop [ (r 1, r 10, [| r 2; r 2; r 2 |]) ]
  in
  let jobs = Eedf.single_machine_jobs shop ~tau:(r 2) in
  check_rat "release kept" (r 1) jobs.(0).Sm.release;
  check_rat "deadline shifted by (m-1) tau" (r 6) jobs.(0).Sm.deadline

(* Optimality: identical-length flow-shop feasibility is equivalent to
   single-machine feasibility of the reduced instance, which brute force
   decides exactly. *)
let prop_optimality =
  QCheck.Test.make ~name:"EEDF flow shop optimal vs brute force" ~count:300
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let g = Prng.create seed in
      let n = 2 + Prng.int g 4 in
      let m = 2 + Prng.int g 3 in
      let tau = Rat.make (1 + Prng.int g 4) 2 in
      let shop = Gen.identical_length g ~n ~m ~tau ~window:6 in
      let exact = Sm.brute_force_feasible ~tau (Eedf.single_machine_jobs shop ~tau) in
      match Eedf.schedule shop with
      | Ok s -> exact && Schedule.is_feasible s
      | Error `Infeasible -> not exact
      | Error `Not_identical_length -> false)

let prop_produces_permutation =
  QCheck.Test.make ~name:"EEDF schedules are permutation schedules" ~count:200
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let g = Prng.create seed in
      let n = 2 + Prng.int g 4 in
      let m = 2 + Prng.int g 3 in
      let shop = Gen.identical_length g ~n ~m ~tau:Rat.one ~window:8 in
      match Eedf.schedule shop with
      | Ok s -> Schedule.is_permutation s
      | Error _ -> true)

let suite =
  [
    Alcotest.test_case "simple pipeline" `Quick test_simple_pipeline;
    Alcotest.test_case "rejects non-identical" `Quick test_rejects_non_identical;
    Alcotest.test_case "proves infeasibility" `Quick test_infeasible;
    Alcotest.test_case "flow-shop trap" `Quick test_flow_shop_trap;
    Alcotest.test_case "reduction shape" `Quick test_reduction_shape;
    to_alcotest prop_optimality;
    to_alcotest prop_produces_permutation;
  ]
