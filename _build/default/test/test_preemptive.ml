module Rat = E2e_rat.Rat
module Task = E2e_model.Task
module Flow_shop = E2e_model.Flow_shop
module Visit = E2e_model.Visit
module Recurrence_shop = E2e_model.Recurrence_shop
module Schedule = E2e_schedule.Schedule
module Preemptive = E2e_sim.Preemptive_flow_sim
module Solver = E2e_core.Solver
module Prng = E2e_prng.Prng
module Gen = E2e_workload.Feasible_gen
open Helpers

let of_flow shop = Recurrence_shop.of_traditional shop

let test_single_task_chain () =
  let shop = Flow_shop.of_params [| (r 1, r 10, [| r 2; r 3 |]) |] in
  let result = Preemptive.run (of_flow shop) in
  check_rat "stage 0 completes" (r 3) result.Preemptive.completions.(0).(0);
  check_rat "stage 1 chains" (r 6) result.Preemptive.completions.(0).(1);
  Alcotest.(check (list int)) "no misses" [] result.Preemptive.deadline_misses

let test_preemption_happens () =
  (* A loose task starts on P1; a tight one released mid-flight preempts
     it (nonpreemptive dispatching would miss). *)
  let shop =
    Flow_shop.of_params
      [| (r 0, r 40, [| r 10; r 1 |]); (r 1, r 5, [| r 2; r 1 |]) |]
  in
  let result = Preemptive.run (of_flow shop) in
  Alcotest.(check (list int)) "tight task saved by preemption" []
    result.Preemptive.deadline_misses;
  check_rat "tight task stage 0 done at 3" (r 3) result.Preemptive.completions.(1).(0);
  (* The preempted task's P1 work appears as two segments. *)
  let p1_segments_task0 =
    List.filter (fun s -> s.Preemptive.task = 0 && s.Preemptive.stage = 0)
      result.Preemptive.segments.(0)
  in
  Alcotest.(check int) "task 0 split in two slices" 2 (List.length p1_segments_task0)

let test_segments_cover_work () =
  (* Total slice length per (task, stage) equals the processing time. *)
  let g = Prng.create 61 in
  for _ = 1 to 50 do
    let shop =
      Gen.generate g
        { Gen.n_tasks = 4; n_processors = 3; mean_tau = 1.0; stdev = 0.4; slack_factor = 0.5 }
    in
    let rshop = of_flow shop in
    let result = Preemptive.run rshop in
    Array.iteri
      (fun _ slices ->
        List.iter
          (fun s ->
            Alcotest.(check bool) "slice is forward" true Rat.(s.Preemptive.until > s.Preemptive.from_))
          slices)
      result.Preemptive.segments;
    let work = Hashtbl.create 16 in
    Array.iter
      (List.iter (fun s ->
           let key = (s.Preemptive.task, s.Preemptive.stage) in
           let prev = Option.value ~default:Rat.zero (Hashtbl.find_opt work key) in
           Hashtbl.replace work key (Rat.add prev (Rat.sub s.Preemptive.until s.Preemptive.from_))))
      result.Preemptive.segments;
    Array.iteri
      (fun i (task : Task.t) ->
        Array.iteri
          (fun j tau ->
            check_rat
              (Printf.sprintf "work(%d,%d)" i j)
              tau
              (Option.value ~default:Rat.zero (Hashtbl.find_opt work (i, j))))
          task.proc_times)
      shop.Flow_shop.tasks
  done

let test_preemptive_on_feasible_sets () =
  (* On the Figure-9 style feasible instances the preemptive dispatcher
     is a strong heuristic; just require it to be well-defined and record
     a sane rate. *)
  let g = Prng.create 67 in
  let ok = ref 0 in
  let trials = 100 in
  for _ = 1 to trials do
    let shop =
      Gen.generate g
        { Gen.n_tasks = 5; n_processors = 3; mean_tau = 1.0; stdev = 0.5; slack_factor = 1.0 }
    in
    if Preemptive.feasible (of_flow shop) then incr ok
  done;
  Alcotest.(check bool) (Printf.sprintf "preemptive EDF solves %d/100" !ok) true (!ok > 50)

let test_respects_precedence () =
  let g = Prng.create 73 in
  for _ = 1 to 30 do
    let shop =
      Gen.generate g
        { Gen.n_tasks = 4; n_processors = 3; mean_tau = 1.0; stdev = 0.3; slack_factor = 0.5 }
    in
    let result = Preemptive.run (of_flow shop) in
    Array.iteri
      (fun i row ->
        for j = 1 to Array.length row - 1 do
          let prev = row.(j - 1) in
          (* Next stage never finishes before its predecessor plus its
             own processing time. *)
          let tau = shop.Flow_shop.tasks.(i).Task.proc_times.(j) in
          Alcotest.(check bool) "chain order" true Rat.(row.(j) >= Rat.add prev tau)
        done)
      result.Preemptive.completions
  done

let test_solver_fallback_complex_recurrence () =
  (* A triple visit to P1 is not a simple loop: Algorithm R refuses, the
     fallback greedy dispatcher still solves it when deadlines allow. *)
  let visit = Visit.of_one_based [| 1; 2; 1; 2; 1 |] in
  let tasks =
    Array.init 2 (fun id ->
        Task.make ~id ~release:Rat.zero ~deadline:(r 20)
          ~proc_times:(Array.make 5 Rat.one))
  in
  let shop = Recurrence_shop.make ~visit tasks in
  (match Solver.solve_recurrent shop with
  | Error `No_single_loop -> ()
  | _ -> Alcotest.fail "R must refuse the complex pattern");
  match Solver.solve_recurrent_or_fallback shop with
  | Solver.Recurrent_feasible (s, `Greedy_edf) -> assert_feasible "fallback schedule" s
  | Solver.Recurrent_feasible (_, _) -> Alcotest.fail "expected the greedy fallback"
  | Solver.Recurrent_proved_infeasible | Solver.Recurrent_undecided ->
      Alcotest.fail "generous deadlines are solvable greedily"

let test_solver_fallback_traditional () =
  let shop =
    Flow_shop.of_params [| (r 0, r 9, [| r 1; r 1 |]); (r 0, r 9, [| r 1; r 1 |]) |]
  in
  match Solver.solve_recurrent_or_fallback (of_flow shop) with
  | Solver.Recurrent_feasible (_, `Traditional) -> ()
  | _ -> Alcotest.fail "traditional shops route through the classifier"

let test_csv_export () =
  let shop = Flow_shop.of_params [| (r 0, r 10, [| Rat.make 3 2; r 2 |]) |] in
  match E2e_core.Solver.solve shop with
  | Solver.Feasible (s, _) ->
      let csv = Schedule.to_csv s in
      Alcotest.(check bool) "header" true
        (Helpers.contains csv "task,stage,processor,start,finish");
      Alcotest.(check bool) "rational field" true (Helpers.contains csv "3/2");
      Alcotest.(check int) "one line per stage + header" 3
        (List.length (String.split_on_char '\n' (String.trim csv)))
  | _ -> Alcotest.fail "feasible"

let suite =
  [
    Alcotest.test_case "single chain" `Quick test_single_task_chain;
    Alcotest.test_case "preemption happens" `Quick test_preemption_happens;
    Alcotest.test_case "segments cover the work" `Quick test_segments_cover_work;
    Alcotest.test_case "solves most feasible sets" `Quick test_preemptive_on_feasible_sets;
    Alcotest.test_case "respects precedence" `Quick test_respects_precedence;
    Alcotest.test_case "solver fallback (complex recurrence)" `Quick
      test_solver_fallback_complex_recurrence;
    Alcotest.test_case "solver fallback (traditional)" `Quick test_solver_fallback_traditional;
    Alcotest.test_case "CSV export" `Quick test_csv_export;
  ]
