module Rat = E2e_rat.Rat
module Flow_shop = E2e_model.Flow_shop
module Recurrence_shop = E2e_model.Recurrence_shop
module Schedule = E2e_schedule.Schedule
module Algo_c = E2e_core.Algo_c
module Algo_h = E2e_core.Algo_h
module Prng = E2e_prng.Prng
module Gen = E2e_workload.Feasible_gen
module Paper = E2e_workload.Paper_instances
open Helpers

let test_homogeneous_passthrough () =
  (* On an already homogeneous set, inflation is the identity, so H
     should succeed whenever A does. *)
  let shop = Paper.table2 () in
  match Algo_h.schedule shop with
  | Ok s -> assert_feasible "H on homogeneous" s
  | Error f -> Alcotest.failf "H failed: %a" Algo_h.pp_failure f

let test_table3_figure8 () =
  (* The Figure 8 situation: before compaction the schedule misses a
     deadline and violates a release; after compaction it is feasible. *)
  let shop = Paper.table3 () in
  let report = Algo_h.run shop in
  (match report.Algo_h.raw with
  | None -> Alcotest.fail "A succeeded on the inflated set by construction"
  | Some raw ->
      let vs = Schedule.violations raw in
      Alcotest.(check bool) "uncompacted misses a deadline" true
        (List.exists (function Schedule.Deadline_missed _ -> true | _ -> false) vs);
      Alcotest.(check bool) "uncompacted violates a release" true
        (List.exists (function Schedule.Release_violated _ -> true | _ -> false) vs));
  match report.Algo_h.result with
  | Ok s -> assert_feasible "compacted schedule" s
  | Error f -> Alcotest.failf "compaction should fix table 3: %a" Algo_h.pp_failure f

let test_compaction_only_helps () =
  (* If H succeeds without compaction it must also succeed with it. *)
  let g = Prng.create 99 in
  for _ = 1 to 100 do
    let shop =
      Gen.generate g
        { Gen.n_tasks = 4; n_processors = 3; mean_tau = 1.0; stdev = 0.3; slack_factor = 1.0 }
    in
    let without = Algo_h.run ~compact:false shop in
    let with_ = Algo_h.run ~compact:true shop in
    match (without.Algo_h.result, with_.Algo_h.result) with
    | Ok _, Error _ -> Alcotest.fail "compaction made a feasible schedule infeasible"
    | _ -> ()
  done

let test_compaction_agrees_with_forward_pass () =
  (* Algorithm C is exactly the earliest-start forward pass in the
     schedule's permutation order (with the first start kept). *)
  let g = Prng.create 7 in
  for _ = 1 to 100 do
    let shop =
      Gen.generate g
        { Gen.n_tasks = 5; n_processors = 3; mean_tau = 1.0; stdev = 0.4; slack_factor = 1.0 }
    in
    let report = Algo_h.run shop in
    match report.Algo_h.raw with
    | None -> ()
    | Some raw ->
        let compacted = Algo_c.compact ~keep_first_start:false raw in
        let order = Algo_c.order_on_processor raw 0 in
        let fp = Schedule.forward_pass (Recurrence_shop.of_traditional shop) ~order in
        if compacted.Schedule.starts <> fp.Schedule.starts then
          Alcotest.failf "compact <> forward pass:@ %a@ vs@ %a" Schedule.pp_table compacted
            Schedule.pp_table fp
  done

let test_result_always_feasible_or_error () =
  (* Whatever H returns as Ok has passed the independent checker. *)
  let g = Prng.create 13 in
  for _ = 1 to 200 do
    let shop =
      Gen.generate g
        { Gen.n_tasks = 6; n_processors = 4; mean_tau = 1.0; stdev = 0.5; slack_factor = 0.6 }
    in
    match Algo_h.schedule shop with
    | Ok s -> assert_feasible "H output" s
    | Error _ -> ()
  done

let test_success_improves_with_slack () =
  (* The headline trend of Figure 9: more slack, higher success rate. *)
  let rate slack =
    let g = Prng.create 2024 in
    let trials = 150 in
    let successes = ref 0 in
    for _ = 1 to trials do
      let shop =
        Gen.generate g
          { Gen.n_tasks = 6; n_processors = 4; mean_tau = 1.0; stdev = 0.5; slack_factor = slack }
      in
      match Algo_h.schedule shop with Ok _ -> incr successes | Error _ -> ()
    done;
    float_of_int !successes /. float_of_int trials
  in
  let tight = rate 0.2 and loose = rate 3.0 in
  Alcotest.(check bool)
    (Printf.sprintf "success(slack 3.0)=%.2f > success(slack 0.2)=%.2f" loose tight)
    true (loose > tight)

let test_success_improves_with_lower_stdev () =
  (* The other Figure 9 trend: more homogeneous task sets are easier. *)
  let rate stdev =
    let g = Prng.create 5_000 in
    let trials = 150 in
    let successes = ref 0 in
    for _ = 1 to trials do
      let shop =
        Gen.generate g
          { Gen.n_tasks = 6; n_processors = 4; mean_tau = 1.0; stdev; slack_factor = 0.6 }
      in
      match Algo_h.schedule shop with Ok _ -> incr successes | Error _ -> ()
    done;
    float_of_int !successes /. float_of_int trials
  in
  let smooth = rate 0.1 and rough = rate 0.5 in
  Alcotest.(check bool)
    (Printf.sprintf "success(stdev 0.1)=%.2f >= success(stdev 0.5)=%.2f" smooth rough)
    true (smooth >= rough)

let test_keep_first_start_literal () =
  (* Figure 7 keeps the first task's start rather than pulling it back to
     its release. *)
  let shop =
    Flow_shop.of_params [| (r 0, r 30, [| r 2; r 2 |]); (r 1, r 30, [| r 2; r 2 |]) |]
  in
  let delayed = Schedule.of_flow_shop shop [| [| r 5; r 7 |]; [| r 7; r 9 |] |] in
  let literal = Algo_c.compact ~keep_first_start:true delayed in
  check_rat "first start kept" (r 5) (Schedule.start literal ~task:0 ~stage:0);
  let eager = Algo_c.compact ~keep_first_start:false delayed in
  check_rat "eager start pulled to release" (r 0) (Schedule.start eager ~task:0 ~stage:0)

let suite =
  [
    Alcotest.test_case "homogeneous passthrough" `Quick test_homogeneous_passthrough;
    Alcotest.test_case "table 3 / figure 8" `Quick test_table3_figure8;
    Alcotest.test_case "compaction only helps" `Quick test_compaction_only_helps;
    Alcotest.test_case "compaction = forward pass" `Quick test_compaction_agrees_with_forward_pass;
    Alcotest.test_case "Ok results are checker-clean" `Quick test_result_always_feasible_or_error;
    Alcotest.test_case "success grows with slack" `Slow test_success_improves_with_slack;
    Alcotest.test_case "success grows as stdev shrinks" `Slow test_success_improves_with_lower_stdev;
    Alcotest.test_case "keep-first-start literal" `Quick test_keep_first_start_literal;
  ]
