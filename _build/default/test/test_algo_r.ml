module Rat = E2e_rat.Rat
module Task = E2e_model.Task
module Visit = E2e_model.Visit
module Recurrence_shop = E2e_model.Recurrence_shop
module Schedule = E2e_schedule.Schedule
module Algo_r = E2e_core.Algo_r
module Paper = E2e_workload.Paper_instances
open Helpers

let unit_shop ~visit deadlines =
  let k = Visit.length visit in
  let tasks =
    Array.mapi
      (fun id d ->
        Task.make ~id ~release:Rat.zero ~deadline:(r d) ~proc_times:(Array.make k Rat.one))
      (Array.of_list deadlines)
  in
  Recurrence_shop.make ~visit tasks

let test_table1_schedule () =
  let shop = Paper.table1 () in
  match Algo_r.schedule shop with
  | Ok s -> assert_feasible "table 1 schedule" s
  | Error e -> Alcotest.failf "table 1 failed: %a" Algo_r.pp_error e

let test_table1_decisions () =
  (* The decision processor P2 serves two visits of each of the 4 tasks;
     with identical releases the first dispatches follow deadline order. *)
  let shop = Paper.table1 () in
  match Algo_r.decision_trace shop with
  | Error e -> Alcotest.failf "trace failed: %a" Algo_r.pp_error e
  | Ok trace ->
      Alcotest.(check int) "8 dispatches on the loop processor" 8 (List.length trace);
      (match trace with
      | first :: _ ->
          Alcotest.(check int) "earliest-deadline task first" 0 first.Algo_r.task;
          check_rat "first dispatch when stage 1 is ready" Rat.one first.Algo_r.start
      | [] -> Alcotest.fail "empty trace");
      (* Dispatches on one processor never overlap (tau = 1 apart). *)
      let rec gaps = function
        | a :: (b :: _ as rest) ->
            Alcotest.(check bool) "serialized" true Rat.(b.Algo_r.start >= Rat.add a.Algo_r.start Rat.one);
            gaps rest
        | _ -> ()
      in
      gaps trace

let test_second_visit_separation () =
  (* The second visit can never start before (q-1) tau after the first
     visit completes, i.e. q tau after it starts. *)
  let shop = Paper.table1 () in
  let loop = Option.get (Visit.single_loop shop.Recurrence_shop.visit) in
  match Algo_r.schedule shop with
  | Error e -> Alcotest.failf "failed: %a" Algo_r.pp_error e
  | Ok s ->
      let l = loop.Visit.first_pos and q = loop.Visit.span in
      for i = 0 to Recurrence_shop.n_tasks shop - 1 do
        let t1 = Schedule.start s ~task:i ~stage:l in
        let t2 = Schedule.start s ~task:i ~stage:(l + q) in
        Alcotest.(check bool) "loop separation" true Rat.(t2 >= Rat.add t1 (r q))
      done

let test_precondition_errors () =
  let visit = Visit.of_one_based [| 1; 2; 3; 2 |] in
  (* Differing processing times. *)
  let t0 = Task.make ~id:0 ~release:Rat.zero ~deadline:(r 20) ~proc_times:[| r 1; r 2; r 1; r 1 |] in
  let t1 = Task.make ~id:1 ~release:Rat.zero ~deadline:(r 20) ~proc_times:[| r 1; r 1; r 1; r 1 |] in
  (match Algo_r.schedule (Recurrence_shop.make ~visit [| t0; t1 |]) with
  | Error `Not_identical_unit -> ()
  | _ -> Alcotest.fail "expected Not_identical_unit");
  (* Differing releases. *)
  let t0 = Task.make ~id:0 ~release:Rat.one ~deadline:(r 20) ~proc_times:(Array.make 4 Rat.one) in
  let t1 = Task.make ~id:1 ~release:Rat.zero ~deadline:(r 20) ~proc_times:(Array.make 4 Rat.one) in
  (match Algo_r.schedule (Recurrence_shop.make ~visit [| t0; t1 |]) with
  | Error `Not_identical_release -> ()
  | _ -> Alcotest.fail "expected Not_identical_release");
  (* No loop. *)
  let visit = Visit.traditional 3 in
  let t0 = Task.make ~id:0 ~release:Rat.zero ~deadline:(r 20) ~proc_times:(Array.make 3 Rat.one) in
  match Algo_r.schedule (Recurrence_shop.make ~visit [| t0 |]) with
  | Error `No_single_loop -> ()
  | _ -> Alcotest.fail "expected No_single_loop"

let test_infeasible_deadlines () =
  (* Two tasks on a loop shop; deadlines too tight for the serialized
     decision processor. *)
  let visit = Visit.of_one_based [| 1; 2; 1 |] in
  let shop = unit_shop ~visit [ 3; 3 ] in
  match Algo_r.schedule shop with
  | Error `Infeasible -> ()
  | Ok s -> Alcotest.failf "unexpectedly feasible:@ %a" Schedule.pp_table s
  | Error e -> Alcotest.failf "wrong error: %a" Algo_r.pp_error e

let test_minimal_loop () =
  (* Visit (1,2,1): P1 reused, l=0, q=2.  One task: completion = 3. *)
  let visit = Visit.of_one_based [| 1; 2; 1 |] in
  let shop = unit_shop ~visit [ 3 ] in
  match Algo_r.schedule shop with
  | Ok s ->
      assert_feasible "minimal loop" s;
      check_rat "completion exactly 3" (r 3) (Schedule.completion s 0)
  | Error e -> Alcotest.failf "failed: %a" Algo_r.pp_error e

let test_two_tasks_interleave () =
  (* Visit (1,2,1) with two tasks: the loop processor handles 4 unit
     subtasks; optimal completion pattern interleaves the visits. *)
  let visit = Visit.of_one_based [| 1; 2; 1 |] in
  let shop = unit_shop ~visit [ 4; 5 ] in
  match Algo_r.schedule shop with
  | Ok s ->
      assert_feasible "interleaved" s;
      Alcotest.(check bool) "T0 by 4" true Rat.(Schedule.completion s 0 <= r 4);
      Alcotest.(check bool) "T1 by 5" true Rat.(Schedule.completion s 1 <= r 5)
  | Error e -> Alcotest.failf "failed: %a" Algo_r.pp_error e

let test_feasible_always_checker_clean () =
  (* Sweep deadline tightness; any Ok result must pass the checker. *)
  let visit = Visit.of_one_based [| 1; 2; 3; 2; 4 |] in
  for d0 = 5 to 12 do
    let shop = unit_shop ~visit [ d0; d0 + 2; d0 + 4 ] in
    match Algo_r.schedule shop with
    | Ok s -> assert_feasible "sweep" s
    | Error `Infeasible -> ()
    | Error e -> Alcotest.failf "precondition error: %a" Algo_r.pp_error e
  done

let suite =
  [
    Alcotest.test_case "table 1 schedule" `Quick test_table1_schedule;
    Alcotest.test_case "table 1 decision trace" `Quick test_table1_decisions;
    Alcotest.test_case "second-visit separation" `Quick test_second_visit_separation;
    Alcotest.test_case "precondition errors" `Quick test_precondition_errors;
    Alcotest.test_case "infeasible deadlines" `Quick test_infeasible_deadlines;
    Alcotest.test_case "minimal loop" `Quick test_minimal_loop;
    Alcotest.test_case "two tasks interleave" `Quick test_two_tasks_interleave;
    Alcotest.test_case "deadline sweep stays checker-clean" `Quick test_feasible_always_checker_clean;
  ]
