module Rat = E2e_rat.Rat
module Periodic_shop = E2e_model.Periodic_shop
module Heap = E2e_sim.Heap
module Rm_sim = E2e_sim.Rm_sim
module Pipeline_sim = E2e_sim.Pipeline_sim
module Analysis = E2e_periodic.Analysis
module Rm_bounds = E2e_periodic.Rm_bounds
module Prng = E2e_prng.Prng
module Paper = E2e_workload.Paper_instances
open Helpers

let feq ?(tol = 1e-9) msg expected actual = Alcotest.(check (float tol)) msg expected actual

let test_heap_sorts () =
  let h = Heap.of_list ~cmp:compare [ 5; 1; 4; 1; 3; 9; 2 ] in
  Alcotest.(check (list int)) "drain sorted" [ 1; 1; 2; 3; 4; 5; 9 ] (Heap.drain h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains in sorted order" ~count:300
    QCheck.(list int)
    (fun l -> Heap.drain (Heap.of_list ~cmp:compare l) = List.sort compare l)

let test_heap_interleaved () =
  let h = Heap.create ~cmp:compare in
  Heap.push h 3;
  Heap.push h 1;
  Alcotest.(check (option int)) "peek min" (Some 1) (Heap.peek h);
  Alcotest.(check (option int)) "pop min" (Some 1) (Heap.pop h);
  Heap.push h 0;
  Alcotest.(check (option int)) "new min" (Some 0) (Heap.pop h);
  Alcotest.(check (option int)) "remaining" (Some 3) (Heap.pop h);
  Alcotest.(check (option int)) "empty" None (Heap.pop h);
  Alcotest.(check bool) "is_empty" true (Heap.is_empty h)

(* Liu & Layland's p = (2, 5) pair.  With tau = (1, 2), U = 0.9 exceeds
   the n=2 bound (0.828) yet is schedulable: J2's critical-instant
   response is 4.  With tau = (1, 2.5), U = 1.0, J2 finishes at 5.5 and
   misses the end of its period — the narrative example of the paper's
   Table 5 discussion ("J1 has to be interrupted to let J2 execute"). *)
let test_rm_ll_pair () =
  let ok = Rm_sim.simulate ~horizon:10.0 (Rm_sim.rm_priorities [| (0.0, 2.0, 1.0); (0.0, 5.0, 2.0) |]) in
  Alcotest.(check int) "nothing unfinished" 0 ok.Rm_sim.unfinished;
  feq "J1 response is its wcet" 1.0 ok.Rm_sim.max_response.(0);
  feq "J2 critical-instant response 4" 4.0 ok.Rm_sim.max_response.(1);
  let miss = Rm_sim.simulate ~horizon:10.0 (Rm_sim.rm_priorities [| (0.0, 2.0, 1.0); (0.0, 5.0, 2.5) |]) in
  feq "full-utilization J2 finishes at 5.5" 5.5 miss.Rm_sim.max_response.(1)

let test_rm_overload_misses () =
  (* Same pair with J2 inflated: J2 can no longer fit in its period. *)
  let tasks = Rm_sim.rm_priorities [| (0.0, 2.0, 1.0); (0.0, 5.0, 2.6) |] in
  let result = Rm_sim.simulate ~horizon:10.0 tasks in
  Alcotest.(check bool) "J2 response exceeds its period" true
    (result.Rm_sim.max_response.(1) > 5.0)

let test_rm_preemption () =
  (* Low-priority job started first gets preempted by a later arrival of
     a high-priority one. *)
  let tasks = Rm_sim.rm_priorities [| (1.0, 4.0, 1.0); (0.0, 20.0, 3.0) |] in
  let result = Rm_sim.simulate ~horizon:20.0 tasks in
  let low = List.find (fun c -> c.Rm_sim.task = 1 && c.Rm_sim.index = 0) result.Rm_sim.completions in
  (* Runs [0,1), preempted [1,2), resumes [2,4): finishes at 4. *)
  feq "preempted completion" 4.0 low.Rm_sim.finish

let test_rm_phases_respected () =
  let tasks = Rm_sim.rm_priorities [| (3.0, 5.0, 1.0) |] in
  let result = Rm_sim.simulate ~horizon:10.0 tasks in
  match result.Rm_sim.completions with
  | [ c0; c1 ] ->
      feq "first request at phase" 3.0 c0.Rm_sim.ready;
      feq "first finish" 4.0 c0.Rm_sim.finish;
      feq "second request" 8.0 c1.Rm_sim.ready
  | l -> Alcotest.failf "expected 2 completions, got %d" (List.length l)

(* The analytical guarantee validated by simulation: every request
   completes within delta * p_i of its ready time. *)
let test_rm_bound_validated () =
  let g = Prng.create 321 in
  for _ = 1 to 30 do
    let n = 2 + Prng.int g 3 in
    (* Draw utilization-controlled task sets below the bound. *)
    let periods = Array.init n (fun _ -> 2.0 +. Prng.float g 20.0) in
    let target_u = 0.3 +. Prng.float g 0.3 in
    let weights = Array.init n (fun _ -> 0.2 +. Prng.float g 1.0) in
    let wsum = Array.fold_left ( +. ) 0.0 weights in
    let specs =
      Array.init n (fun i ->
          let u_i = target_u *. weights.(i) /. wsum in
          (0.0, periods.(i), Float.max 1e-3 (u_i *. periods.(i))))
    in
    let u = Array.fold_left (fun acc (_, p, c) -> acc +. (c /. p)) 0.0 specs in
    match Rm_bounds.min_delta ~n ~u with
    | None -> ()
    | Some delta ->
        let horizon = 50.0 *. Array.fold_left Float.max 0.0 periods in
        let result = Rm_sim.simulate ~horizon (Rm_sim.rm_priorities specs) in
        List.iter
          (fun (c : Rm_sim.completion) ->
            let _, p, _ = specs.(c.Rm_sim.task) in
            if Rm_sim.response c > (delta *. p) +. 1e-6 then
              Alcotest.failf "response %.4f exceeds delta*p = %.4f (u=%.3f, delta=%.3f)"
                (Rm_sim.response c) (delta *. p) u delta)
          result.Rm_sim.completions
  done

let test_pipeline_table4 () =
  (* Table 4 is schedulable within the period; the postponed-phase
     simulation must confirm: no precedence violation, no deadline miss. *)
  let sys = Paper.table4 () in
  match Analysis.analyse sys with
  | Analysis.Schedulable { deltas; _ } ->
      let horizon = 10.0 *. Rat.to_float (Periodic_shop.hyperperiod sys) in
      let report = Pipeline_sim.simulate ~horizon ~policy:(`Postponed_phases deltas) sys in
      Alcotest.(check bool) "measured some requests" true (report.Pipeline_sim.requests > 10);
      Alcotest.(check int) "no precedence violations" 0 report.Pipeline_sim.precedence_violations;
      Alcotest.(check int) "no deadline misses" 0 report.Pipeline_sim.deadline_misses;
      (* And the measured end-to-end response is within the analytic bound. *)
      Array.iteri
        (fun i resp ->
          let bound = Analysis.response_bound sys deltas i in
          Alcotest.(check bool) "measured <= bound" true (resp <= bound +. 1e-6))
        report.Pipeline_sim.end_to_end
  | v -> Alcotest.failf "expected schedulable: %a" Analysis.pp_verdict v

let test_pipeline_table5_postponed_deadlines () =
  (* Table 5 needs deadlines postponed to 1.106 p_i; with that factor the
     simulation is clean, with factor 1.0 it must report misses under the
     same postponed phases. *)
  let sys = Paper.table5 () in
  match Analysis.analyse sys with
  | Analysis.Schedulable_postponed { deltas; total } ->
      let horizon = 20.0 *. Rat.to_float (Periodic_shop.hyperperiod sys) in
      let ok =
        Pipeline_sim.simulate ~deadline_factor:total ~horizon
          ~policy:(`Postponed_phases deltas) sys
      in
      Alcotest.(check int) "no misses at factor 1.106" 0 ok.Pipeline_sim.deadline_misses;
      Alcotest.(check int) "no precedence violations" 0 ok.Pipeline_sim.precedence_violations
  | v -> Alcotest.failf "expected postponed-schedulable: %a" Analysis.pp_verdict v

let test_pipeline_direct_sync () =
  (* Direct synchronisation on table 4: greedy releases finish no later
     than the postponed-phase bound allows, so everything meets the
     period deadline too. *)
  let sys = Paper.table4 () in
  let horizon = 10.0 *. Rat.to_float (Periodic_shop.hyperperiod sys) in
  let report = Pipeline_sim.simulate ~horizon ~policy:`Direct_sync sys in
  Alcotest.(check bool) "requests measured" true (report.Pipeline_sim.requests > 10);
  Alcotest.(check int) "no deadline misses" 0 report.Pipeline_sim.deadline_misses

let test_pipeline_direct_vs_postponed () =
  (* Greedy synchronisation can only improve the worst end-to-end
     response relative to the analytic bound. *)
  let sys = Paper.table4 () in
  match Analysis.analyse sys with
  | Analysis.Schedulable { deltas; _ } ->
      let horizon = 10.0 *. Rat.to_float (Periodic_shop.hyperperiod sys) in
      let direct = Pipeline_sim.simulate ~horizon ~policy:`Direct_sync sys in
      Array.iteri
        (fun i resp ->
          Alcotest.(check bool) "direct within analytic bound" true
            (resp <= Analysis.response_bound sys deltas i +. 1e-6))
        direct.Pipeline_sim.end_to_end
  | v -> Alcotest.failf "expected schedulable: %a" Analysis.pp_verdict v

let suite =
  [
    Alcotest.test_case "heap sorts" `Quick test_heap_sorts;
    to_alcotest prop_heap_sorts;
    Alcotest.test_case "heap interleaved ops" `Quick test_heap_interleaved;
    Alcotest.test_case "RM: Liu-Layland pair" `Quick test_rm_ll_pair;
    Alcotest.test_case "RM: overload misses" `Quick test_rm_overload_misses;
    Alcotest.test_case "RM: preemption" `Quick test_rm_preemption;
    Alcotest.test_case "RM: phases respected" `Quick test_rm_phases_respected;
    Alcotest.test_case "RM: Equation 1 validated" `Slow test_rm_bound_validated;
    Alcotest.test_case "pipeline: table 4 clean" `Quick test_pipeline_table4;
    Alcotest.test_case "pipeline: table 5 postponed deadlines" `Quick
      test_pipeline_table5_postponed_deadlines;
    Alcotest.test_case "pipeline: direct sync" `Quick test_pipeline_direct_sync;
    Alcotest.test_case "pipeline: direct within bound" `Quick test_pipeline_direct_vs_postponed;
  ]
