(* Shared test utilities. *)

module Rat = E2e_rat.Rat

let rat : Rat.t Alcotest.testable = Alcotest.testable Rat.pp Rat.equal
let check_rat msg expected actual = Alcotest.check rat msg expected actual
let q s = Rat.of_decimal_string s
let r = Rat.of_int

(* QCheck arbitrary for small rationals on a 1/den grid in [lo, hi]. *)
let rat_gen ?(den = 4) ~lo ~hi () =
  QCheck.Gen.map (fun k -> Rat.make k den) (QCheck.Gen.int_range (lo * den) (hi * den))

let to_alcotest = QCheck_alcotest.to_alcotest

(* Substring test for pretty-printer smoke tests. *)
let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub haystack i nn = needle || at (i + 1)) in
  nn = 0 || at 0

(* A schedule must be feasible; on failure print the violations. *)
let assert_feasible msg s =
  match E2e_schedule.Schedule.check s with
  | Ok () -> ()
  | Error vs ->
      Alcotest.failf "%s: infeasible schedule:@ %a" msg
        (Format.pp_print_list E2e_schedule.Schedule.pp_violation)
        vs
