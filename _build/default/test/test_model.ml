module Rat = E2e_rat.Rat
module Task = E2e_model.Task
module Flow_shop = E2e_model.Flow_shop
module Visit = E2e_model.Visit
module Recurrence_shop = E2e_model.Recurrence_shop
module Periodic_shop = E2e_model.Periodic_shop
open Helpers

let sample_task () =
  Task.make ~id:0 ~release:(r 2) ~deadline:(r 20) ~proc_times:[| r 1; r 3; r 2 |]

let test_task_basics () =
  let t = sample_task () in
  Alcotest.(check int) "stages" 3 (Task.stages t);
  check_rat "total" (r 6) (Task.total_time t);
  check_rat "slack" (r 12) (Task.slack t)

let test_effective_times () =
  let t = sample_task () in
  (* r_ij = r_i + sum earlier; d_ij = d_i - sum later. *)
  check_rat "eff release stage 0" (r 2) (Task.effective_release t 0);
  check_rat "eff release stage 1" (r 3) (Task.effective_release t 1);
  check_rat "eff release stage 2" (r 6) (Task.effective_release t 2);
  check_rat "eff deadline stage 2" (r 20) (Task.effective_deadline t 2);
  check_rat "eff deadline stage 1" (r 18) (Task.effective_deadline t 1);
  check_rat "eff deadline stage 0" (r 15) (Task.effective_deadline t 0)

let test_task_validation () =
  let expect_invalid f = Alcotest.(check bool) "rejects" true
    (match f () with exception Invalid_argument _ -> true | _ -> false)
  in
  expect_invalid (fun () ->
      Task.make ~id:0 ~release:Rat.zero ~deadline:Rat.one ~proc_times:[||]);
  expect_invalid (fun () ->
      Task.make ~id:0 ~release:Rat.zero ~deadline:Rat.one ~proc_times:[| Rat.zero |]);
  expect_invalid (fun () ->
      Task.make ~id:0 ~release:(r 5) ~deadline:(r 4) ~proc_times:[| Rat.one |])

let test_classify () =
  let identical =
    Flow_shop.of_params
      [| (r 0, r 10, [| r 2; r 2 |]); (r 0, r 12, [| r 2; r 2 |]) |]
  in
  let homogeneous =
    Flow_shop.of_params
      [| (r 0, r 10, [| r 2; r 3 |]); (r 0, r 12, [| r 2; r 3 |]) |]
  in
  let arbitrary =
    Flow_shop.of_params
      [| (r 0, r 10, [| r 2; r 3 |]); (r 0, r 12, [| r 1; r 3 |]) |]
  in
  (match Flow_shop.classify identical with
  | `Identical_length tau -> check_rat "tau" (r 2) tau
  | _ -> Alcotest.fail "expected identical-length");
  (match Flow_shop.classify homogeneous with
  | `Homogeneous taus -> check_rat "tau2" (r 3) taus.(1)
  | _ -> Alcotest.fail "expected homogeneous");
  match Flow_shop.classify arbitrary with
  | `Arbitrary -> ()
  | _ -> Alcotest.fail "expected arbitrary"

let test_bottleneck_and_inflate () =
  let shop =
    Flow_shop.of_params
      [| (r 0, r 30, [| r 2; r 5; r 1 |]); (r 0, r 30, [| r 4; r 3; r 1 |]) |]
  in
  Alcotest.(check int) "bottleneck is P2 (max tau 5)" 1 (Flow_shop.bottleneck shop);
  let maxima = Flow_shop.max_proc_times shop in
  check_rat "max on P1" (r 4) maxima.(0);
  check_rat "max on P2" (r 5) maxima.(1);
  let inflated = Flow_shop.inflate shop in
  (match Flow_shop.classify inflated with
  | `Homogeneous taus ->
      check_rat "inflated P1" (r 4) taus.(0);
      check_rat "inflated P3" (r 1) taus.(2)
  | _ -> Alcotest.fail "inflation must give a homogeneous set");
  (* Inflation keeps windows. *)
  check_rat "release kept" (r 0) inflated.Flow_shop.tasks.(0).Task.release;
  check_rat "deadline kept" (r 30) inflated.Flow_shop.tasks.(0).Task.deadline

let test_utilization () =
  let shop =
    Flow_shop.of_params [| (r 0, r 10, [| r 2; r 3 |]); (r 0, r 20, [| r 2; r 3 |]) |]
  in
  (* 2/10 + 2/20 and 3/10 + 3/20. *)
  check_rat "u on P1" (Rat.make 3 10) (Flow_shop.utilization shop 0);
  check_rat "u on P2" (Rat.make 9 20) (Flow_shop.utilization shop 1)

let test_visit_basics () =
  let v = Visit.of_one_based [| 1; 2; 3; 4; 2; 3; 5 |] in
  Alcotest.(check int) "k" 7 (Visit.length v);
  Alcotest.(check int) "m" 5 v.Visit.processors;
  Alcotest.(check (list int)) "reused" [ 1; 2 ] (Visit.reused_processors v);
  Alcotest.(check bool) "not traditional" false (Visit.is_traditional v);
  Alcotest.(check bool) "traditional" true (Visit.is_traditional (Visit.traditional 4))

let test_visit_single_loop () =
  let v = Visit.of_one_based [| 1; 2; 3; 4; 2; 3; 5 |] in
  match Visit.single_loop v with
  | Some { first_pos; span; reused } ->
      Alcotest.(check int) "l" 1 first_pos;
      Alcotest.(check int) "q" 3 span;
      Alcotest.(check int) "reused" 2 reused
  | None -> Alcotest.fail "expected a single loop"

let test_visit_no_loop () =
  Alcotest.(check bool) "traditional has no loop" true
    (Visit.single_loop (Visit.traditional 3) = None);
  (* Processor visited three times: not a simple pattern. *)
  let v3 = Visit.of_one_based [| 1; 2; 1; 2; 1 |] in
  Alcotest.(check bool) "triple visit rejected" true (Visit.single_loop v3 = None);
  (* Two separate loops: spans differ. *)
  let v2 = Visit.of_one_based [| 1; 2; 1; 3; 2 |] in
  Alcotest.(check bool) "uneven spans rejected" true (Visit.single_loop v2 = None)

let test_visit_graph () =
  let v = Visit.of_one_based [| 1; 2; 3 |] in
  let edges = Visit.graph_edges v in
  Alcotest.(check int) "two edges" 2 (List.length edges);
  let e = List.hd edges in
  Alcotest.(check int) "src" 0 e.Visit.src;
  Alcotest.(check int) "dst" 1 e.Visit.dst;
  Alcotest.(check int) "label" 0 e.Visit.label

let test_visit_validation () =
  Alcotest.(check bool) "gap rejected" true
    (match Visit.make [| 0; 2 |] with exception Invalid_argument _ -> true | _ -> false);
  Alcotest.(check bool) "empty rejected" true
    (match Visit.make [||] with exception Invalid_argument _ -> true | _ -> false)

let test_recurrence_shop () =
  let visit = Visit.of_one_based [| 1; 2; 1 |] in
  let tasks =
    Array.init 2 (fun id ->
        Task.make ~id ~release:Rat.zero ~deadline:(r 12) ~proc_times:(Array.make 3 Rat.one))
  in
  let shop = Recurrence_shop.make ~visit tasks in
  check_rat "identical unit" Rat.one (Option.get (Recurrence_shop.identical_unit shop));
  check_rat "identical release" Rat.zero (Option.get (Recurrence_shop.identical_releases shop));
  Alcotest.(check int) "stage 2 on P1" 0 (Recurrence_shop.processor_of_stage shop 2)

let test_periodic_shop () =
  let sys =
    Periodic_shop.of_params
      [| (r 4, [| r 1; r 2 |]); (r 8, [| r 2; r 2 |]) |]
  in
  check_rat "u1 = 1/4 + 2/8" (Rat.make 1 2) (Periodic_shop.utilization sys 0);
  check_rat "u2 = 2/4 + 2/8" (Rat.make 3 4) (Periodic_shop.utilization sys 1);
  check_rat "hyperperiod" (r 8) (Periodic_shop.hyperperiod sys);
  check_rat "total processing" (r 3) (Periodic_shop.total_processing sys.Periodic_shop.jobs.(0))

let test_periodic_validation () =
  Alcotest.(check bool) "tau > period rejected" true
    (match Periodic_shop.of_params [| (r 2, [| r 3 |]) |] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_periodic_fractional_hyperperiod () =
  let sys = Periodic_shop.of_params [| (Rat.make 25 2, [| r 1 |]); (r 10, [| r 1 |]) |] in
  (* lcm(25/2, 10) = 50. *)
  check_rat "hyperperiod of 12.5 and 10" (r 50) (Periodic_shop.hyperperiod sys)

let suite =
  [
    Alcotest.test_case "task basics" `Quick test_task_basics;
    Alcotest.test_case "effective times" `Quick test_effective_times;
    Alcotest.test_case "task validation" `Quick test_task_validation;
    Alcotest.test_case "classification" `Quick test_classify;
    Alcotest.test_case "bottleneck & inflation" `Quick test_bottleneck_and_inflate;
    Alcotest.test_case "utilization" `Quick test_utilization;
    Alcotest.test_case "visit basics" `Quick test_visit_basics;
    Alcotest.test_case "single loop detection" `Quick test_visit_single_loop;
    Alcotest.test_case "no/complex loop" `Quick test_visit_no_loop;
    Alcotest.test_case "visit graph" `Quick test_visit_graph;
    Alcotest.test_case "visit validation" `Quick test_visit_validation;
    Alcotest.test_case "recurrence shop" `Quick test_recurrence_shop;
    Alcotest.test_case "periodic shop" `Quick test_periodic_shop;
    Alcotest.test_case "periodic validation" `Quick test_periodic_validation;
    Alcotest.test_case "fractional hyperperiod" `Quick test_periodic_fractional_hyperperiod;
  ]
