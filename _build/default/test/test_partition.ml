module Rat = E2e_rat.Rat
module Task = E2e_model.Task
module Flow_shop = E2e_model.Flow_shop
module Periodic_shop = E2e_model.Periodic_shop
module Partition = E2e_partition.Partition
module Analysis = E2e_periodic.Analysis
open Helpers

let test_proportional_shares () =
  let shares = Partition.proportional_shares ~demands:[| Rat.make 1 4; Rat.make 1 2 |] in
  check_rat "first share 1/3" (Rat.make 1 3) shares.(0);
  check_rat "second share 2/3" (Rat.make 2 3) shares.(1);
  check_rat "shares sum to 1" Rat.one (Rat.sum_array shares)

let test_proportional_guard () =
  Alcotest.(check bool) "zero demand rejected" true
    (match Partition.proportional_shares ~demands:[| Rat.zero |] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_scale_flow_shop () =
  let shop = Flow_shop.of_params [| (r 0, r 20, [| r 1; r 2 |]) |] in
  let scaled = Partition.scale_flow_shop shop ~fractions:[| Rat.make 1 2; Rat.one |] in
  check_rat "P1 time doubled" (r 2) scaled.Flow_shop.tasks.(0).Task.proc_times.(0);
  check_rat "P2 time unchanged" (r 2) scaled.Flow_shop.tasks.(0).Task.proc_times.(1);
  check_rat "window unchanged" (r 20) scaled.Flow_shop.tasks.(0).Task.deadline

let test_scale_fraction_guard () =
  let shop = Flow_shop.of_params [| (r 0, r 20, [| r 1 |]) |] in
  Alcotest.(check bool) "fraction > 1 rejected" true
    (match Partition.scale_flow_shop shop ~fractions:[| r 2 |] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "fraction 0 rejected" true
    (match Partition.scale_flow_shop shop ~fractions:[| Rat.zero |] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_scale_periodic_overflow () =
  (* Stretched past its period: the share is too small. *)
  let sys = Periodic_shop.of_params [| (r 4, [| r 3 |]) |] in
  Alcotest.(check bool) "tau > period rejected" true
    (match Partition.scale_periodic sys ~fractions:[| Rat.make 1 2 |] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let two_systems () =
  (* Two periodic flow shops sharing both processors of a 2-processor
     platform; combined utilization stays below 1 per processor. *)
  let a = Periodic_shop.of_params [| (r 10, [| r 1; r 1 |]); (r 20, [| r 2; r 2 |]) |] in
  let b = Periodic_shop.of_params [| (r 8, [| r 1; r 1 |]) |] in
  (a, b)

let test_partition_periodic_scales_by_share () =
  let a, b = two_systems () in
  (* u_A = 1/10 + 2/20 = 1/5; u_B = 1/8 on both processors. *)
  let shares = Partition.periodic_shares [ a; b ] ~processor:0 in
  check_rat "A's share" (Rat.make 8 13) shares.(0);
  check_rat "B's share" (Rat.make 5 13) shares.(1);
  match Partition.partition_periodic [ a; b ] with
  | [ a'; b' ] ->
      (* Processing times grow by U/u. *)
      check_rat "A stretched by 13/8" (Rat.make 13 8)
        a'.Periodic_shop.jobs.(0).Periodic_shop.proc_times.(0);
      check_rat "B stretched by 13/5" (Rat.make 13 5)
        b'.Periodic_shop.jobs.(0).Periodic_shop.proc_times.(0)
  | _ -> Alcotest.fail "two systems in, two out"

let test_partition_preserves_schedulability_headroom () =
  (* After utilization-proportional partitioning, each virtual processor
     carries utilization equal to the physical processor's total — so if
     the combined load was analysable before, each partition sees the
     same utilization number. *)
  let a, b = two_systems () in
  let total_before = Rat.add (Periodic_shop.utilization a 0) (Periodic_shop.utilization b 0) in
  match Partition.partition_periodic [ a; b ] with
  | [ a'; b' ] ->
      check_rat "A' utilization = combined" total_before (Periodic_shop.utilization a' 0);
      check_rat "B' utilization = combined" total_before (Periodic_shop.utilization b' 0)
  | _ -> Alcotest.fail "two systems"

let test_partitioned_systems_analysable () =
  let a, b = two_systems () in
  match Partition.partition_periodic [ a; b ] with
  | [ a'; b' ] ->
      let ok sys =
        match Analysis.analyse sys with
        | Analysis.Schedulable _ | Analysis.Schedulable_postponed _ -> true
        | Analysis.Not_schedulable _ -> false
      in
      Alcotest.(check bool) "A' analysable" true (ok a');
      Alcotest.(check bool) "B' analysable" true (ok b')
  | _ -> Alcotest.fail "two systems"

let test_partition_flow_shops () =
  let s1 = Flow_shop.of_params [| (r 0, r 10, [| r 2; r 1 |]) |] in
  let s2 = Flow_shop.of_params [| (r 0, r 10, [| r 2; r 3 |]) |] in
  match Partition.partition_flow_shops [ s1; s2 ] with
  | [ s1'; s2' ] ->
      (* Demands on P1 are equal (2/10 each): each gets half, times double. *)
      check_rat "s1 P1 doubled" (r 4) s1'.Flow_shop.tasks.(0).Task.proc_times.(0);
      check_rat "s2 P1 doubled" (r 4) s2'.Flow_shop.tasks.(0).Task.proc_times.(0);
      (* On P2 demands are 1/10 vs 3/10: shares 1/4 and 3/4. *)
      check_rat "s1 P2 x4" (r 4) s1'.Flow_shop.tasks.(0).Task.proc_times.(1);
      check_rat "s2 P2 x4/3" (r 4) s2'.Flow_shop.tasks.(0).Task.proc_times.(1)
  | _ -> Alcotest.fail "two shops"

let test_partition_mismatched_processors () =
  let s1 = Flow_shop.of_params [| (r 0, r 10, [| r 1 |]) |] in
  let s2 = Flow_shop.of_params [| (r 0, r 10, [| r 1; r 1 |]) |] in
  Alcotest.(check bool) "mismatch rejected" true
    (match Partition.partition_flow_shops [ s1; s2 ] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let suite =
  [
    Alcotest.test_case "proportional shares" `Quick test_proportional_shares;
    Alcotest.test_case "share guard" `Quick test_proportional_guard;
    Alcotest.test_case "scale flow shop" `Quick test_scale_flow_shop;
    Alcotest.test_case "fraction guards" `Quick test_scale_fraction_guard;
    Alcotest.test_case "periodic overflow guard" `Quick test_scale_periodic_overflow;
    Alcotest.test_case "periodic partition shares" `Quick test_partition_periodic_scales_by_share;
    Alcotest.test_case "utilization preserved" `Quick test_partition_preserves_schedulability_headroom;
    Alcotest.test_case "partitions analysable" `Quick test_partitioned_systems_analysable;
    Alcotest.test_case "flow-shop partition" `Quick test_partition_flow_shops;
    Alcotest.test_case "processor mismatch" `Quick test_partition_mismatched_processors;
  ]
