module Stats = E2e_stats.Stats

let feq msg expected actual =
  Alcotest.(check (float 1e-9)) msg expected actual

let test_mean () =
  feq "mean" 2.5 (Stats.mean [| 1.0; 2.0; 3.0; 4.0 |]);
  feq "mean empty" 0.0 (Stats.mean [||])

let test_variance () =
  (* Sum of squares 10 over n-1 = 4. *)
  feq "variance" 2.5 (Stats.variance [| 1.0; 2.0; 3.0; 4.0; 5.0 |]);
  feq "variance singleton" 0.0 (Stats.variance [| 3.0 |]);
  feq "stdev" (sqrt 2.5) (Stats.stdev [| 1.0; 2.0; 3.0; 4.0; 5.0 |])

let test_wilson () =
  let ci = Stats.wilson_interval ~successes:8 ~trials:10 ~z:Stats.z_90 in
  feq "estimate" 0.8 ci.Stats.estimate;
  Alcotest.(check bool) "lo < estimate < hi" true (ci.lo < 0.8 && 0.8 < ci.hi);
  Alcotest.(check bool) "bounded" true (ci.lo >= 0.0 && ci.hi <= 1.0)

let test_wilson_extremes () =
  let ci0 = Stats.wilson_interval ~successes:0 ~trials:20 ~z:Stats.z_90 in
  Alcotest.(check bool) "zero successes: lo = 0" true (ci0.Stats.lo = 0.0);
  Alcotest.(check bool) "zero successes: hi > 0" true (ci0.Stats.hi > 0.0);
  let ci1 = Stats.wilson_interval ~successes:20 ~trials:20 ~z:Stats.z_90 in
  Alcotest.(check bool) "all successes: hi = 1" true (ci1.Stats.hi = 1.0);
  Alcotest.(check bool) "all successes: lo < 1" true (ci1.Stats.lo < 1.0)

let test_normal_interval () =
  let ci = Stats.normal_interval ~successes:50 ~trials:100 ~z:Stats.z_95 in
  feq "estimate" 0.5 ci.Stats.estimate;
  feq "half width" (1.96 *. sqrt (0.25 /. 100.0)) ((ci.Stats.hi -. ci.Stats.lo) /. 2.0)

let test_wider_with_confidence () =
  let w z =
    let ci = Stats.wilson_interval ~successes:30 ~trials:60 ~z in
    ci.Stats.hi -. ci.Stats.lo
  in
  Alcotest.(check bool) "95% interval wider than 90%" true (w Stats.z_95 > w Stats.z_90)

let test_mean_interval () =
  let m, lo, hi = Stats.mean_interval [| 1.0; 2.0; 3.0 |] ~z:Stats.z_90 in
  feq "mean" 2.0 m;
  Alcotest.(check bool) "brackets mean" true (lo < m && m < hi)

let test_narrows_with_trials () =
  let w trials =
    let ci = Stats.wilson_interval ~successes:(trials / 2) ~trials ~z:Stats.z_90 in
    ci.Stats.hi -. ci.Stats.lo
  in
  Alcotest.(check bool) "more trials narrow the interval" true (w 1000 < w 10)

let suite =
  [
    Alcotest.test_case "mean" `Quick test_mean;
    Alcotest.test_case "variance/stdev" `Quick test_variance;
    Alcotest.test_case "wilson interval" `Quick test_wilson;
    Alcotest.test_case "wilson extremes" `Quick test_wilson_extremes;
    Alcotest.test_case "normal interval" `Quick test_normal_interval;
    Alcotest.test_case "confidence widens" `Quick test_wider_with_confidence;
    Alcotest.test_case "mean interval" `Quick test_mean_interval;
    Alcotest.test_case "trials narrow" `Quick test_narrows_with_trials;
  ]
