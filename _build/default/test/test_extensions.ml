(* Tests for the extension modules: infeasibility certificates, the
   Algorithm-H portfolio, exact response-time analysis, EDF per-processor
   scheduling, the runtime dispatcher, and the recurrence oracle. *)

module Rat = E2e_rat.Rat
module Task = E2e_model.Task
module Flow_shop = E2e_model.Flow_shop
module Visit = E2e_model.Visit
module Recurrence_shop = E2e_model.Recurrence_shop
module Periodic_shop = E2e_model.Periodic_shop
module Schedule = E2e_schedule.Schedule
module Infeasibility = E2e_core.Infeasibility
module H_portfolio = E2e_core.H_portfolio
module Algo_h = E2e_core.Algo_h
module Algo_r = E2e_core.Algo_r
module Response_time = E2e_periodic.Response_time
module Analysis = E2e_periodic.Analysis
module Rm_sim = E2e_sim.Rm_sim
module Dispatcher = E2e_sim.Dispatcher
module Exhaustive = E2e_baselines.Exhaustive
module Exhaustive_recurrence = E2e_baselines.Exhaustive_recurrence
module Prng = E2e_prng.Prng
module Gen = E2e_workload.Feasible_gen
module Paper = E2e_workload.Paper_instances
open Helpers

(* --------------------------- Infeasibility --------------------------- *)

let test_cert_negative_slack () =
  let shop = Flow_shop.of_params [| (r 0, r 3, [| r 2; r 2 |]) |] in
  match Infeasibility.check shop with
  | Some (Infeasibility.Negative_slack { task = 0 }) -> ()
  | _ -> Alcotest.fail "expected negative-slack certificate"

let test_cert_overload () =
  (* Two 4-unit bottleneck stages forced into the 5-unit window [1, 6] on
     P2 (the P1 and P3 windows are wide enough on their own). *)
  let shop =
    Flow_shop.of_params
      [| (r 0, r 7, [| r 1; r 4; r 1 |]); (r 0, r 7, [| r 1; r 4; r 1 |]) |]
  in
  (match Infeasibility.check shop with
  | Some (Infeasibility.Overloaded_window { processor = 1; demand; _ }) ->
      check_rat "demand 8" (r 8) demand
  | Some c -> Alcotest.failf "wrong certificate: %a" Infeasibility.pp_certificate c
  | None -> Alcotest.fail "expected overload certificate");
  Alcotest.(check bool) "provably infeasible" true (Infeasibility.is_provably_infeasible shop)

let test_cert_none_on_feasible () =
  let g = Prng.create 11 in
  for _ = 1 to 200 do
    let shop =
      Gen.generate g
        { Gen.n_tasks = 5; n_processors = 3; mean_tau = 1.0; stdev = 0.4; slack_factor = 0.5 }
    in
    match Infeasibility.check shop with
    | None -> ()
    | Some c ->
        Alcotest.failf "certificate on a feasible instance: %a" Infeasibility.pp_certificate c
  done

let prop_certificate_sound =
  (* Whenever a certificate exists, exhaustive search confirms that no
     permutation schedule is feasible (and since the certificate argument
     covers all schedules, this is the checkable projection). *)
  to_alcotest
    (QCheck.Test.make ~name:"infeasibility certificates are sound" ~count:200
       (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 1_000_000))
       (fun seed ->
         let g = Prng.create seed in
         let shop = Gen.arbitrary g ~n:4 ~m:3 ~max_tau:3 ~window:3 in
         match Infeasibility.check shop with
         | Some _ -> not (Exhaustive.permutation_feasible shop)
         | None -> true))

let test_processor_demand () =
  let shop =
    Flow_shop.of_params
      [| (r 0, r 10, [| r 2; r 3 |]); (r 1, r 20, [| r 2; r 3 |]) |]
  in
  (* On P2 (j=1): task 0 window [2, 10]; task 1 window [3, 20]. *)
  check_rat "only task 0 inside [0,10]" (r 3)
    (Infeasibility.processor_demand shop ~processor:1 ~window_start:(r 0) ~window_end:(r 10));
  check_rat "both inside [0,20]" (r 6)
    (Infeasibility.processor_demand shop ~processor:1 ~window_start:(r 0) ~window_end:(r 20))

(* --------------------------- H portfolio ----------------------------- *)

let test_portfolio_contains_all_bottlenecks () =
  let shop = Paper.table3 () in
  let bottlenecks =
    List.filter_map
      (function H_portfolio.H_with_bottleneck b -> Some b | _ -> None)
      (H_portfolio.strategies shop)
  in
  Alcotest.(check (list int)) "all processors tried" [ 0; 1; 2; 3 ]
    (List.sort compare bottlenecks)

let test_portfolio_beats_h () =
  let g = Prng.create 21 in
  let h_ok = ref 0 and portfolio_ok = ref 0 in
  let trials = 200 in
  for _ = 1 to trials do
    let shop =
      Gen.generate g
        { Gen.n_tasks = 6; n_processors = 4; mean_tau = 1.0; stdev = 0.5; slack_factor = 0.8 }
    in
    (match Algo_h.schedule shop with Ok _ -> incr h_ok | Error _ -> ());
    match H_portfolio.schedule shop with
    | Ok (s, _) -> incr portfolio_ok; assert_feasible "portfolio result" s
    | Error `All_failed -> ()
  done;
  Alcotest.(check bool)
    (Printf.sprintf "portfolio %d/%d >= H %d/%d" !portfolio_ok trials !h_ok trials)
    true
    (!portfolio_ok >= !h_ok)

let test_portfolio_first_strategy_is_paper_h () =
  let shop = Paper.table2 () in
  match H_portfolio.strategies shop with
  | H_portfolio.H_with_bottleneck b :: _ ->
      Alcotest.(check int) "paper's bottleneck first" (Flow_shop.bottleneck shop) b
  | _ -> Alcotest.fail "portfolio must start with the paper's choice"

(* ------------------------ Response-time analysis --------------------- *)

let test_rta_single_processor_textbook () =
  (* Classic: C = (1, 2, 3), T = (4, 8, 16) on one processor.
     R1 = 1; R2 = 2 + ceil(R2/4)*1 -> 3;
     R3 = 3 + ceil(R3/4)*1 + ceil(R3/8)*2 -> 7 (busy period [0,7]). *)
  let sys =
    Periodic_shop.of_params
      [| (r 4, [| r 1 |]); (r 8, [| r 2 |]); (r 16, [| r 3 |]) |]
  in
  match Response_time.per_processor sys ~processor:0 with
  | Error (`Unbounded _) -> Alcotest.fail "bounded"
  | Ok bounds ->
      check_rat "R1" (r 1) bounds.(0);
      check_rat "R2" (r 3) bounds.(1);
      check_rat "R3" (r 7) bounds.(2)

let test_rta_unbounded () =
  let sys = Periodic_shop.of_params [| (r 2, [| r 1 |]); (r 4, [| r 3 |]) |] in
  match Response_time.per_processor sys ~processor:0 with
  | Error (`Unbounded 1) -> ()
  | Error (`Unbounded i) -> Alcotest.failf "wrong job diverged: %d" i
  | Ok _ -> Alcotest.fail "utilization 1.25 must diverge"

let test_rta_matches_simulation_critical_instant () =
  (* With all phases zero the simulated worst response equals the RTA
     bound exactly (critical instant). *)
  let sys =
    Periodic_shop.of_params
      [| (r 4, [| r 1 |]); (r 6, [| r 2 |]); (r 24, [| r 3 |]) |]
  in
  match Response_time.per_processor sys ~processor:0 with
  | Error _ -> Alcotest.fail "bounded"
  | Ok bounds ->
      let specs =
        Array.map
          (fun (j : Periodic_shop.job) ->
            (0.0, Rat.to_float j.Periodic_shop.period, Rat.to_float j.Periodic_shop.proc_times.(0)))
          sys.Periodic_shop.jobs
      in
      let result = Rm_sim.simulate ~horizon:120.0 (Rm_sim.rm_priorities specs) in
      Array.iteri
        (fun i bound ->
          Alcotest.(check (float 1e-9))
            (Printf.sprintf "J%d critical instant" i)
            (Rat.to_float bound) result.Rm_sim.max_response.(i))
        bounds

let test_rta_tighter_than_u_max () =
  (* RTA is exact, so it never exceeds the Equation-1 guarantee. *)
  let sys = Paper.table4 () in
  match (Analysis.analyse sys, Response_time.all sys) with
  | Analysis.Schedulable { deltas; _ }, Ok bounds ->
      Array.iteri
        (fun i row ->
          Array.iteri
            (fun j rta ->
              let eq1 = deltas.(j) *. Rat.to_float sys.Periodic_shop.jobs.(i).Periodic_shop.period in
              Alcotest.(check bool)
                (Printf.sprintf "RTA(%d,%d) <= delta_j p_i" i j)
                true
                (Rat.to_float rta <= eq1 +. 1e-9))
            row)
        bounds
  | _ -> Alcotest.fail "table 4 analysable both ways"

let test_rta_verdict_table4 () =
  let sys = Paper.table4 () in
  match Response_time.analyse sys with
  | Response_time.Schedulable { end_to_end; _ } ->
      (* Exact analysis must beat Equation (1)'s 6.9 bound for J1. *)
      Alcotest.(check bool) "J1 tighter than 6.9" true Rat.(end_to_end.(0) < Rat.of_float 6.9)
  | v -> Alcotest.failf "expected schedulable: %a" Response_time.pp_verdict v

let test_rta_phases_monotone () =
  let sys = Paper.table4 () in
  match Response_time.all sys with
  | Error _ -> Alcotest.fail "bounded"
  | Ok bounds ->
      let phases = Response_time.phases sys bounds in
      Array.iteri
        (fun i row ->
          Alcotest.(check bool) "first phase is the job phase" true
            (Rat.equal row.(0) sys.Periodic_shop.jobs.(i).Periodic_shop.phase);
          for j = 1 to Array.length row - 1 do
            let prev = row.(j - 1) in
            Alcotest.(check bool) "nondecreasing" true Rat.(row.(j) >= prev)
          done)
        phases

(* ------------------------------ EDF ---------------------------------- *)

let test_edf_min_delta () =
  Alcotest.(check (option (float 1e-9))) "delta = u" (Some 0.7)
    (Analysis.min_delta_for Analysis.Edf ~n:5 ~u:0.7);
  Alcotest.(check (option (float 1e-9))) "u > 1 impossible" None
    (Analysis.min_delta_for Analysis.Edf ~n:5 ~u:1.1)

let test_edf_beats_rm_analysis () =
  (* u = (0.7, 0.28): RM needs postponement, EDF fits in the period. *)
  let sys =
    Periodic_shop.of_params
      [|
        (r 10, [| r 5; r 2 |]);
        (r 20, [| r 4; Rat.make 8 5 |]);
      |]
  in
  check_rat "u1 = 0.7" (Rat.make 7 10) (Periodic_shop.utilization sys 0);
  check_rat "u2 = 0.28" (Rat.make 7 25) (Periodic_shop.utilization sys 1);
  (match Analysis.analyse sys with
  | Analysis.Schedulable_postponed _ -> ()
  | v -> Alcotest.failf "RM should need postponement: %a" Analysis.pp_verdict v);
  match Analysis.analyse_policies ~policies:[| Analysis.Edf; Analysis.Edf |] sys with
  | Analysis.Schedulable { total; _ } ->
      Alcotest.(check (float 1e-9)) "sum of deltas = 0.98" 0.98 total
  | v -> Alcotest.failf "EDF should fit in the period: %a" Analysis.pp_verdict v

let test_edf_simulation_meets_density_deadlines () =
  (* Density criterion validated by the EDF simulator: with relative
     deadlines delta p_i and u <= delta, no request misses. *)
  let specs = [| (0.0, 8.0, 2.0); (0.0, 12.0, 3.0); (0.0, 20.0, 4.0) |] in
  let u = Array.fold_left (fun acc (_, p, c) -> acc +. (c /. p)) 0.0 specs in
  let delta = u +. 0.05 in
  let tasks = Rm_sim.rm_priorities specs in
  let relative_deadlines = Array.map (fun (_, p, _) -> delta *. p) specs in
  let result = Rm_sim.simulate_edf ~horizon:480.0 ~relative_deadlines tasks in
  Alcotest.(check int) "drained" 0 result.Rm_sim.unfinished;
  List.iter
    (fun (c : Rm_sim.completion) ->
      let d = relative_deadlines.(c.Rm_sim.task) in
      if Rm_sim.response c > d +. 1e-9 then
        Alcotest.failf "EDF response %.3f exceeds %.3f" (Rm_sim.response c) d)
    result.Rm_sim.completions

let test_edf_schedules_what_rm_cannot () =
  (* tau = (1, 2.5), p = (2, 5): full utilization; RM misses (tested in
     test_sim), EDF meets every end-of-period deadline. *)
  let tasks = Rm_sim.rm_priorities [| (0.0, 2.0, 1.0); (0.0, 5.0, 2.5) |] in
  let result = Rm_sim.simulate_edf ~horizon:40.0 ~relative_deadlines:[| 2.0; 5.0 |] tasks in
  Alcotest.(check bool) "J1 within period" true (result.Rm_sim.max_response.(0) <= 2.0 +. 1e-9);
  Alcotest.(check bool) "J2 within period" true (result.Rm_sim.max_response.(1) <= 5.0 +. 1e-9)

(* ---------------------------- Dispatcher ------------------------------ *)

let feasible_schedule () =
  let shop = Paper.table2 () in
  match E2e_core.Algo_a.schedule shop with Ok s -> s | Error _ -> Alcotest.fail "feasible"

let test_dispatch_exact_durations () =
  let s = feasible_schedule () in
  let actual = Dispatcher.scale_durations s ~factor:Rat.one in
  let tt = Dispatcher.run Dispatcher.Time_triggered s ~actual in
  Alcotest.(check int) "TT no misses" 0 (List.length tt.Dispatcher.deadline_misses);
  Alcotest.(check int) "TT structurally clean" 0 tt.Dispatcher.structural_violations;
  let wc = Dispatcher.run Dispatcher.Work_conserving s ~actual in
  Alcotest.(check int) "WC no misses" 0 (List.length wc.Dispatcher.deadline_misses);
  Alcotest.(check int) "WC structurally clean" 0 wc.Dispatcher.structural_violations

let test_dispatch_sustainable_early_completion () =
  let s = feasible_schedule () in
  let actual = Dispatcher.scale_durations s ~factor:(Rat.make 1 2) in
  Alcotest.(check bool) "time-triggered sustainable" true
    (Dispatcher.sustainable_time_triggered s ~actual);
  let wc = Dispatcher.run Dispatcher.Work_conserving s ~actual in
  Alcotest.(check int) "WC no misses either" 0 (List.length wc.Dispatcher.deadline_misses);
  Alcotest.(check int) "WC clean" 0 wc.Dispatcher.structural_violations

let test_dispatch_overrun_detected () =
  let s = feasible_schedule () in
  let actual = Dispatcher.scale_durations s ~factor:(Rat.make 3 2) in
  let tt = Dispatcher.run Dispatcher.Time_triggered s ~actual in
  Alcotest.(check bool) "overrun breaks the static timetable" true
    (tt.Dispatcher.structural_violations > 0 || tt.Dispatcher.deadline_misses <> [])

let test_dispatch_work_conserving_never_structural () =
  let g = Prng.create 33 in
  for _ = 1 to 50 do
    let shop =
      Gen.generate g
        { Gen.n_tasks = 4; n_processors = 3; mean_tau = 1.0; stdev = 0.3; slack_factor = 1.0 }
    in
    match Algo_h.schedule shop with
    | Error _ -> ()
    | Ok s ->
        let actual = Dispatcher.scale_durations s ~factor:(Rat.make 13 10) in
        let wc = Dispatcher.run Dispatcher.Work_conserving s ~actual in
        Alcotest.(check int) "work-conserving is structurally valid under overrun" 0
          wc.Dispatcher.structural_violations
  done

let prop_work_conserving_dominates_plan =
  (* With actual <= planned durations, work-conserving completion times
     never exceed the planned ones. *)
  to_alcotest
    (QCheck.Test.make ~name:"work-conserving never later than the plan" ~count:150
       (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 1_000_000))
       (fun seed ->
         let g = Prng.create seed in
         let shop =
           Gen.generate g
             { Gen.n_tasks = 4; n_processors = 3; mean_tau = 1.0; stdev = 0.3; slack_factor = 1.0 }
         in
         match Algo_h.schedule shop with
         | Error _ -> true
         | Ok s ->
             let actual = Dispatcher.scale_durations s ~factor:(Rat.make 4 5) in
             let wc = Dispatcher.run Dispatcher.Work_conserving s ~actual in
             let ok = ref true in
             Array.iteri
               (fun i row ->
                 Array.iteri
                   (fun j f ->
                     let planned = Schedule.finish s ~task:i ~stage:j in
                     if Rat.(f > planned) then ok := false)
                   row)
               wc.Dispatcher.execution.Dispatcher.finishes;
             !ok))

(* ----------------------- Recurrence oracle --------------------------- *)

let unit_recurrence ~visit deadlines =
  let k = Visit.length visit in
  Recurrence_shop.make ~visit
    (Array.mapi
       (fun id d ->
         Task.make ~id ~release:Rat.zero ~deadline:(r d) ~proc_times:(Array.make k Rat.one))
       (Array.of_list deadlines))

let test_oracle_basic () =
  let visit = Visit.of_one_based [| 1; 2; 1 |] in
  Alcotest.(check bool) "single task d=3 feasible" true
    (Exhaustive_recurrence.feasible (unit_recurrence ~visit [ 3 ]));
  Alcotest.(check bool) "single task d=2 infeasible" false
    (Exhaustive_recurrence.feasible (unit_recurrence ~visit [ 2 ]));
  Alcotest.(check bool) "two tasks d=(3,3) infeasible" false
    (Exhaustive_recurrence.feasible (unit_recurrence ~visit [ 3; 3 ]));
  Alcotest.(check bool) "two tasks d=(4,5) feasible" true
    (Exhaustive_recurrence.feasible (unit_recurrence ~visit [ 4; 5 ]))

let prop_algo_r_optimal =
  (* The headline optimality property: Algorithm R succeeds exactly when
     the exhaustive oracle finds any feasible schedule, over random
     single-loop visit sequences. *)
  to_alcotest
    (QCheck.Test.make ~name:"Algorithm R optimal vs exhaustive oracle" ~count:250
       (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 1_000_000))
       (fun seed ->
         let g = Prng.create seed in
         let visit = Gen.single_loop_visit g ~max_stages:7 in
         let k = Visit.length visit in
         let n = 1 + Prng.int g 3 in
         let deadlines = List.init n (fun _ -> k + Prng.int g (k + 4)) in
         let shop = unit_recurrence ~visit deadlines in
         let exact = Exhaustive_recurrence.feasible shop in
         match Algo_r.schedule shop with
         | Ok s -> exact && Schedule.is_feasible s
         | Error `Infeasible -> not exact
         | Error _ -> false))

let test_visit_dot () =
  let dot = Visit.to_dot (Visit.of_one_based [| 1; 2; 3; 2; 4 |]) in
  Alcotest.(check bool) "digraph" true (Helpers.contains dot "digraph visit");
  Alcotest.(check bool) "bus reuse edge" true (Helpers.contains dot "P3 -> P2");
  Alcotest.(check bool) "labels" true (Helpers.contains dot "label=\"1\"")

let suite =
  [
    Alcotest.test_case "certificate: negative slack" `Quick test_cert_negative_slack;
    Alcotest.test_case "certificate: overload" `Quick test_cert_overload;
    Alcotest.test_case "no certificate on feasible sets" `Quick test_cert_none_on_feasible;
    prop_certificate_sound;
    Alcotest.test_case "processor demand" `Quick test_processor_demand;
    Alcotest.test_case "portfolio tries all bottlenecks" `Quick
      test_portfolio_contains_all_bottlenecks;
    Alcotest.test_case "portfolio dominates H" `Slow test_portfolio_beats_h;
    Alcotest.test_case "portfolio starts with paper H" `Quick
      test_portfolio_first_strategy_is_paper_h;
    Alcotest.test_case "RTA textbook instance" `Quick test_rta_single_processor_textbook;
    Alcotest.test_case "RTA divergence" `Quick test_rta_unbounded;
    Alcotest.test_case "RTA = simulated critical instant" `Quick
      test_rta_matches_simulation_critical_instant;
    Alcotest.test_case "RTA tighter than Equation 1" `Quick test_rta_tighter_than_u_max;
    Alcotest.test_case "RTA verdict on table 4" `Quick test_rta_verdict_table4;
    Alcotest.test_case "RTA phases monotone" `Quick test_rta_phases_monotone;
    Alcotest.test_case "EDF min delta" `Quick test_edf_min_delta;
    Alcotest.test_case "EDF analysis beats RM" `Quick test_edf_beats_rm_analysis;
    Alcotest.test_case "EDF simulation meets density deadlines" `Quick
      test_edf_simulation_meets_density_deadlines;
    Alcotest.test_case "EDF schedules the full-utilization pair" `Quick
      test_edf_schedules_what_rm_cannot;
    Alcotest.test_case "dispatch: exact durations" `Quick test_dispatch_exact_durations;
    Alcotest.test_case "dispatch: early completion sustainable" `Quick
      test_dispatch_sustainable_early_completion;
    Alcotest.test_case "dispatch: overrun detected" `Quick test_dispatch_overrun_detected;
    Alcotest.test_case "dispatch: WC structurally valid" `Quick
      test_dispatch_work_conserving_never_structural;
    prop_work_conserving_dominates_plan;
    Alcotest.test_case "recurrence oracle basics" `Quick test_oracle_basic;
    prop_algo_r_optimal;
    Alcotest.test_case "visit graph DOT export" `Quick test_visit_dot;
  ]
