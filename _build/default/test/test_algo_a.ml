module Rat = E2e_rat.Rat
module Task = E2e_model.Task
module Flow_shop = E2e_model.Flow_shop
module Schedule = E2e_schedule.Schedule
module Sm = E2e_core.Single_machine
module Algo_a = E2e_core.Algo_a
module Prng = E2e_prng.Prng
module Gen = E2e_workload.Feasible_gen
module Paper = E2e_workload.Paper_instances
open Helpers

let test_table2 () =
  let shop = Paper.table2 () in
  Alcotest.(check int) "bottleneck is P3" 2 (Flow_shop.bottleneck shop);
  match Algo_a.schedule shop with
  | Ok s ->
      assert_feasible "table 2" s;
      Alcotest.(check bool) "permutation schedule" true (Schedule.is_permutation s)
  | Error _ -> Alcotest.fail "table 2 is feasible"

let test_rejects_arbitrary () =
  let shop =
    Flow_shop.of_params [| (r 0, r 9, [| r 1; r 2 |]); (r 0, r 9, [| r 2; r 2 |]) |]
  in
  match Algo_a.schedule shop with
  | Error `Not_homogeneous -> ()
  | _ -> Alcotest.fail "must reject non-homogeneous sets"

let test_upstream_layback () =
  (* Bottleneck in the middle: upstream stages end exactly at the
     bottleneck start (Step 3), downstream chain immediately. *)
  let shop =
    Flow_shop.of_params [| (r 0, r 20, [| r 1; r 4; r 2 |]) |]
  in
  match Algo_a.schedule shop with
  | Error _ -> Alcotest.fail "single task fits"
  | Ok s ->
      let t_b = Schedule.start s ~task:0 ~stage:1 in
      check_rat "upstream ends at bottleneck start" t_b (Schedule.finish s ~task:0 ~stage:0);
      check_rat "downstream starts at bottleneck end" (Rat.add t_b (r 4))
        (Schedule.start s ~task:0 ~stage:2)

let test_infeasible () =
  (* Bottleneck window can hold only one of the two tasks. *)
  let shop =
    Flow_shop.of_params
      [| (r 0, r 6, [| r 1; r 4; r 1 |]); (r 0, r 6, [| r 1; r 4; r 1 |]) |]
  in
  match Algo_a.schedule shop with
  | Error `Infeasible -> ()
  | _ -> Alcotest.fail "should prove infeasibility"

let test_bottleneck_override () =
  let shop = Paper.table2 () in
  (* Forcing a non-bottleneck processor loses the optimality guarantee;
     the call must still terminate cleanly with a schedule or a failure. *)
  match Algo_a.schedule ~bottleneck:0 shop with
  | Ok _ | Error `Infeasible -> ()
  | Error `Not_homogeneous -> Alcotest.fail "homogeneous"

(* Optimality: flow-shop feasibility for homogeneous sets is equivalent
   to single-machine feasibility on the bottleneck (both directions
   proved in the paper); brute force decides the latter exactly. *)
let prop_optimality =
  QCheck.Test.make ~name:"Algorithm A optimal vs bottleneck brute force" ~count:300
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let g = Prng.create seed in
      let n = 2 + Prng.int g 4 in
      let m = 2 + Prng.int g 3 in
      let shop = Gen.homogeneous g ~n ~m ~max_tau:3 ~window:8 in
      let b = Flow_shop.bottleneck shop in
      let taus = Option.get (Flow_shop.is_homogeneous shop) in
      let exact =
        Sm.brute_force_feasible ~tau:taus.(b) (Algo_a.bottleneck_jobs shop ~bottleneck:b)
      in
      match Algo_a.schedule shop with
      | Ok s -> exact && Schedule.is_feasible s
      | Error `Infeasible -> not exact
      | Error `Not_homogeneous -> false)

let prop_schedule_checker_clean =
  QCheck.Test.make ~name:"Algorithm A schedules pass the checker" ~count:300
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let g = Prng.create seed in
      let n = 2 + Prng.int g 5 in
      let m = 2 + Prng.int g 4 in
      let shop = Gen.homogeneous g ~n ~m ~max_tau:3 ~window:10 in
      match Algo_a.schedule shop with
      | Ok s -> Schedule.is_feasible s
      | Error _ -> true)

let suite =
  [
    Alcotest.test_case "table 2" `Quick test_table2;
    Alcotest.test_case "rejects arbitrary sets" `Quick test_rejects_arbitrary;
    Alcotest.test_case "upstream layback shape" `Quick test_upstream_layback;
    Alcotest.test_case "proves infeasibility" `Quick test_infeasible;
    Alcotest.test_case "bottleneck override" `Quick test_bottleneck_override;
    to_alcotest prop_optimality;
    to_alcotest prop_schedule_checker_clean;
  ]
