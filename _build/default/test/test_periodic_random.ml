(* Randomised cross-validation of the periodic machinery: the utilization
   bound (Equation 1), the exact response-time analysis and the
   discrete-event simulator must agree on thousands of random job
   systems. *)

module Rat = E2e_rat.Rat
module Periodic_shop = E2e_model.Periodic_shop
module Analysis = E2e_periodic.Analysis
module Response_time = E2e_periodic.Response_time
module Rm_sim = E2e_sim.Rm_sim
module Pipeline_sim = E2e_sim.Pipeline_sim
module Prng = E2e_prng.Prng
module Gen = E2e_workload.Feasible_gen
open Helpers

let random_sys g =
  let n = 2 + Prng.int g 3 in
  let m = 1 + Prng.int g 3 in
  let utilization = 0.1 +. Prng.float g 0.5 in
  Gen.periodic g ~n ~m ~utilization

let test_generator_hits_target () =
  let g = Prng.create 71 in
  for _ = 1 to 100 do
    let target = 0.2 +. Prng.float g 0.5 in
    let sys = Gen.periodic g ~n:4 ~m:3 ~utilization:target in
    Array.iter
      (fun u ->
        let u = Rat.to_float u in
        Alcotest.(check bool)
          (Printf.sprintf "u=%.3f near target %.3f" u target)
          true
          (Float.abs (u -. target) < 0.05))
      (Periodic_shop.utilizations sys)
  done

let prop_rta_below_eq1 =
  (* Exact RTA never exceeds the Equation-1 guarantee wherever both
     apply. *)
  to_alcotest
    (QCheck.Test.make ~name:"RTA <= Equation-1 bound on random systems" ~count:200
       (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 1_000_000))
       (fun seed ->
         let g = Prng.create seed in
         let sys = random_sys g in
         match (Analysis.deltas sys, Response_time.all sys) with
         | Ok deltas, Ok bounds ->
             let ok = ref true in
             Array.iteri
               (fun i row ->
                 let p = Rat.to_float sys.Periodic_shop.jobs.(i).Periodic_shop.period in
                 Array.iteri
                   (fun j rta ->
                     if Rat.to_float rta > (deltas.(j) *. p) +. 1e-9 then ok := false)
                   row)
               bounds;
             !ok
         | _ -> true))

let prop_rta_validated_by_simulation =
  (* Synchronous (all-phases-zero) per-processor simulation never shows a
     response above the RTA bound, and attains it for some request. *)
  to_alcotest
    (QCheck.Test.make ~name:"simulated responses within RTA bounds" ~count:100
       (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 1_000_000))
       (fun seed ->
         let g = Prng.create seed in
         let sys = random_sys g in
         match Response_time.all sys with
         | Error _ -> true
         | Ok bounds ->
             let ok = ref true in
             for j = 0 to sys.Periodic_shop.processors - 1 do
               let specs =
                 Array.map
                   (fun (jb : Periodic_shop.job) ->
                     ( 0.0,
                       Rat.to_float jb.Periodic_shop.period,
                       Rat.to_float jb.Periodic_shop.proc_times.(j) ))
                   sys.Periodic_shop.jobs
               in
               let horizon =
                 4.0 *. Array.fold_left (fun acc (_, p, _) -> Float.max acc p) 0.0 specs
               in
               let result = Rm_sim.simulate ~horizon (Rm_sim.rm_priorities specs) in
               Array.iteri
                 (fun i measured ->
                   if measured > Rat.to_float bounds.(i).(j) +. 1e-6 then ok := false)
                 result.Rm_sim.max_response
             done;
             !ok))

let prop_schedulable_systems_simulate_clean =
  (* Whenever the Equation-1 analysis says Schedulable, the postponed-
     phase pipeline simulation shows no precedence violation and no
     deadline miss. *)
  to_alcotest
    (QCheck.Test.make ~name:"Equation-1 verdicts validated by pipeline simulation" ~count:60
       (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 1_000_000))
       (fun seed ->
         let g = Prng.create seed in
         let sys = random_sys g in
         match Analysis.analyse sys with
         | Analysis.Schedulable { deltas; _ } ->
             let horizon =
               Float.min 5000.0 (4.0 *. Rat.to_float (Periodic_shop.hyperperiod sys))
             in
             let report =
               Pipeline_sim.simulate ~horizon ~policy:(`Postponed_phases deltas) sys
             in
             report.Pipeline_sim.precedence_violations = 0
             && report.Pipeline_sim.deadline_misses = 0
         | _ -> true))

let prop_rta_phases_simulate_clean =
  (* Same validation for the tighter RTA-based phase postponement. *)
  to_alcotest
    (QCheck.Test.make ~name:"RTA phase postponement validated by simulation" ~count:60
       (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 1_000_000))
       (fun seed ->
         let g = Prng.create seed in
         let sys = random_sys g in
         match Response_time.analyse sys with
         | Response_time.Schedulable { bounds; end_to_end } ->
             (* Simulate each processor independently at the RTA phases
                and check precedence + end-to-end bounds. *)
             let phases = Response_time.phases sys bounds in
             let m = sys.Periodic_shop.processors in
             let horizon =
               Float.min 5000.0 (4.0 *. Rat.to_float (Periodic_shop.hyperperiod sys))
             in
             let tables =
               Array.init m (fun j ->
                   let specs =
                     Array.mapi
                       (fun i (jb : Periodic_shop.job) ->
                         ( Rat.to_float phases.(i).(j),
                           Rat.to_float jb.Periodic_shop.period,
                           Rat.to_float jb.Periodic_shop.proc_times.(j) ))
                       sys.Periodic_shop.jobs
                   in
                   Rm_sim.simulate ~horizon (Rm_sim.rm_priorities specs))
             in
             let ok = ref true in
             Array.iteri
               (fun i (jb : Periodic_shop.job) ->
                 let p = Rat.to_float jb.Periodic_shop.period in
                 List.iter
                   (fun (c : Rm_sim.completion) ->
                     if c.Rm_sim.task = i then begin
                       (* Response on the last processor bounded by the
                          per-stage RTA bound. *)
                       if Rm_sim.response c > Rat.to_float bounds.(i).(m - 1) +. 1e-6 then
                         ok := false;
                       let ready0 =
                         Rat.to_float jb.Periodic_shop.phase +. (float_of_int c.Rm_sim.index *. p)
                       in
                       if c.Rm_sim.finish -. ready0 > Rat.to_float end_to_end.(i) +. 1e-6 then
                         ok := false
                     end)
                   tables.(m - 1).Rm_sim.completions)
               sys.Periodic_shop.jobs;
             !ok
         | _ -> true))

let test_busy_period_carry_in () =
  (* C = (1, 2.3), T = (2, 5): u = 0.96.  J2's first instance responds in
     5.3 (> period!), the second in 4.6; Lehoczky's analysis must return
     the max, 5.3, and the synchronous simulation must attain it. *)
  let sys =
    Periodic_shop.of_params
      [|
        (Rat.of_int 2, [| Rat.of_int 1 |]);
        (Rat.of_int 5, [| Rat.of_decimal_string "2.3" |]);
      |]
  in
  (match Response_time.per_processor sys ~processor:0 with
  | Error _ -> Alcotest.fail "bounded (u < 1)"
  | Ok bounds ->
      check_rat "R1" Rat.one bounds.(0);
      check_rat "R2 = 5.3 over two instances" (Rat.make 53 10) bounds.(1));
  let tasks = Rm_sim.rm_priorities [| (0.0, 2.0, 1.0); (0.0, 5.0, 2.3) |] in
  let result = Rm_sim.simulate ~horizon:40.0 tasks in
  Alcotest.(check (float 1e-9)) "simulation attains 5.3" 5.3 result.Rm_sim.max_response.(1)

let test_busy_period_full_and_over_utilization () =
  (* At u = 1 exactly the level-2 busy period closes at the hyperperiod:
     the bound is finite (5.5, matching the simulated miss depth of the
     Table 5 narrative pair).  Above u = 1 it truly diverges. *)
  let at_full =
    Periodic_shop.of_params
      [|
        (Rat.of_int 2, [| Rat.of_int 1 |]);
        (Rat.of_int 5, [| Rat.of_decimal_string "2.5" |]);
      |]
  in
  (match Response_time.per_processor at_full ~processor:0 with
  | Ok bounds -> check_rat "R2 = 5.5 at u = 1" (Rat.make 11 2) bounds.(1)
  | Error _ -> Alcotest.fail "u = 1 still closes at the hyperperiod");
  let over =
    Periodic_shop.of_params
      [|
        (Rat.of_int 2, [| Rat.of_int 1 |]);
        (Rat.of_int 5, [| Rat.of_decimal_string "2.6" |]);
      |]
  in
  match Response_time.per_processor over ~processor:0 with
  | Error (`Unbounded 1) -> ()
  | _ -> Alcotest.fail "u > 1 diverges"

let test_rta_table5_within_period () =
  (* The exact analysis shows the reconstructed Table 5 pair actually
     fits within the period (R = (1, 4) per stage chain: 1+1=2 <= 2 and
     2+2=4 <= 5) — Equation (1) needed a 10.6% postponement.  Bound
     pessimism is precisely what the paper's utilization-based route
     trades for closed form. *)
  let sys = E2e_workload.Paper_instances.table5 () in
  match Response_time.analyse sys with
  | Response_time.Schedulable { end_to_end; _ } ->
      check_rat "J1 end-to-end 1" Rat.one end_to_end.(0);
      check_rat "J2 end-to-end 4" (Rat.of_int 4) end_to_end.(1)
  | v -> Alcotest.failf "expected schedulable: %a" Response_time.pp_verdict v

let test_non_permutation_witness () =
  let shop = E2e_workload.Paper_instances.non_permutation_witness () in
  Alcotest.(check int) "no permutation order works" 0
    (E2e_baselines.Exhaustive.count_feasible_orders shop);
  (match E2e_baselines.Branch_bound.solve shop with
  | E2e_baselines.Branch_bound.Feasible s -> assert_feasible "bb witness" s
  | _ -> Alcotest.fail "oracle must confirm feasibility");
  match E2e_core.Algo_h.schedule shop with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "H searches permutations only; it cannot solve this instance"

let suite =
  [
    Alcotest.test_case "periodic generator hits target" `Quick test_generator_hits_target;
    prop_rta_below_eq1;
    prop_rta_validated_by_simulation;
    prop_schedulable_systems_simulate_clean;
    prop_rta_phases_simulate_clean;
    Alcotest.test_case "busy-period carry-in" `Quick test_busy_period_carry_in;
    Alcotest.test_case "busy period at u = 1 and beyond" `Quick
      test_busy_period_full_and_over_utilization;
    Alcotest.test_case "RTA: table 5 fits the period" `Quick test_rta_table5_within_period;
    Alcotest.test_case "non-permutation witness" `Quick test_non_permutation_witness;
  ]
