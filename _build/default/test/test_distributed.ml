module Rat = E2e_rat.Rat
module Visit = E2e_model.Visit
module Recurrence_shop = E2e_model.Recurrence_shop
module Solver = E2e_core.Solver
module Ds = E2e_partition.Distributed_system
open Helpers

let unit_class ?(deadline_base = 20) name visit n =
  {
    Ds.name;
    visit;
    tasks =
      Array.init n (fun i ->
          (Rat.zero, r (deadline_base + (2 * i)), Array.make (Array.length visit) Rat.one));
  }

let test_single_class_full_speed () =
  (* Alone in the system, a class keeps full-speed processors. *)
  let system = Ds.analyse ~processors:3 [ unit_class "only" [| 0; 1; 2 |] 2 ] in
  match system.Ds.reports with
  | [ report ] ->
      Array.iter (fun f -> check_rat "fraction 1" Rat.one f) report.Ds.fractions;
      Alcotest.(check bool) "feasible" true system.Ds.all_feasible
  | _ -> Alcotest.fail "one report"

let test_shares_sum_to_one () =
  let a = unit_class "a" [| 0; 1 |] 2 and b = unit_class "b" [| 1; 0 |] 2 in
  let system = Ds.analyse ~processors:2 [ a; b ] in
  match system.Ds.reports with
  | [ ra; rb ] ->
      for p = 0 to 1 do
        check_rat "shares partition the processor" Rat.one
          (Rat.add ra.Ds.fractions.(p) rb.Ds.fractions.(p))
      done
  | _ -> Alcotest.fail "two reports"

let test_unused_processor_untouched () =
  let a = unit_class "a" [| 0; 1 |] 1 and b = unit_class "b" [| 1; 2 |] 1 in
  let system = Ds.analyse ~processors:3 [ a; b ] in
  match system.Ds.reports with
  | [ ra; rb ] ->
      check_rat "a has all of P1" Rat.one ra.Ds.fractions.(0);
      check_rat "b has all of P3" Rat.one rb.Ds.fractions.(2);
      Alcotest.(check bool) "P2 split" true
        Rat.(ra.Ds.fractions.(1) < Rat.one && rb.Ds.fractions.(1) < Rat.one)
  | _ -> Alcotest.fail "two reports"

let test_loop_free_class_becomes_traditional () =
  (* A class crossing physical processors (2, 1, 3) still classifies as a
     traditional flow shop after local renumbering. *)
  let a = unit_class "a" [| 2; 1; 0 |] 2 in
  let system = Ds.analyse ~processors:3 [ a ] in
  match system.Ds.reports with
  | [ report ] ->
      Alcotest.(check bool) "traditional local visit" true
        (Visit.is_traditional report.Ds.shop.Recurrence_shop.visit);
      (match report.Ds.verdict with
      | Solver.Recurrent_feasible (_, `Traditional) -> ()
      | _ -> Alcotest.fail "expected the classified solver path")
  | _ -> Alcotest.fail "one report"

let test_recurrent_class_keeps_loop () =
  let a = unit_class "a" [| 0; 1; 2; 1; 3 |] 2 in
  let system = Ds.analyse ~processors:4 [ a ] in
  match system.Ds.reports with
  | [ report ] -> (
      Alcotest.(check bool) "loop survives renumbering" true
        (Visit.single_loop report.Ds.shop.Recurrence_shop.visit <> None);
      match report.Ds.verdict with
      | Solver.Recurrent_feasible (_, `Algorithm_r) -> ()
      | _ -> Alcotest.fail "a dedicated recurrent class goes to Algorithm R")
  | _ -> Alcotest.fail "one report"

let test_stretching_applied () =
  (* Two identical classes halve each other's speed: stretched processing
     times double. *)
  let a = unit_class "a" [| 0 |] 1 and b = unit_class "b" [| 0 |] 1 in
  let system = Ds.analyse ~processors:1 [ a; b ] in
  List.iter
    (fun (report : Ds.class_report) ->
      check_rat "tau doubled" (r 2)
        report.Ds.shop.Recurrence_shop.tasks.(0).E2e_model.Task.proc_times.(0))
    system.Ds.reports

let test_infeasible_class_detected () =
  (* Sharing makes the deadline impossible: each class needs 2 time units
     on the shared processor before t = 3. *)
  let tight name = { Ds.name; visit = [| 0 |]; tasks = [| (Rat.zero, r 3, [| r 2 |]) |] } in
  let system = Ds.analyse ~processors:1 [ tight "a"; tight "b" ] in
  Alcotest.(check bool) "not all feasible" false system.Ds.all_feasible

let test_validation () =
  Alcotest.(check bool) "bad processor index" true
    (match Ds.analyse ~processors:2 [ unit_class "a" [| 0; 5 |] 1 ] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "no classes" true
    (match Ds.analyse ~processors:2 [] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "no tasks" true
    (match Ds.analyse ~processors:2 [ { Ds.name = "x"; visit = [| 0 |]; tasks = [||] } ] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_pp_smoke () =
  let system = Ds.analyse ~processors:2 [ unit_class "a" [| 0; 1 |] 2 ] in
  let out = Format.asprintf "%a" Ds.pp system in
  Alcotest.(check bool) "mentions the class" true (Helpers.contains out "\"a\"")

let suite =
  [
    Alcotest.test_case "single class, full speed" `Quick test_single_class_full_speed;
    Alcotest.test_case "shares sum to one" `Quick test_shares_sum_to_one;
    Alcotest.test_case "unused processors untouched" `Quick test_unused_processor_untouched;
    Alcotest.test_case "loop-free class is traditional" `Quick
      test_loop_free_class_becomes_traditional;
    Alcotest.test_case "recurrent class keeps its loop" `Quick test_recurrent_class_keeps_loop;
    Alcotest.test_case "stretching applied" `Quick test_stretching_applied;
    Alcotest.test_case "infeasible class detected" `Quick test_infeasible_class_detected;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "pretty printer" `Quick test_pp_smoke;
  ]
