module Rat = E2e_rat.Rat
module Task = E2e_model.Task
module Flow_shop = E2e_model.Flow_shop
module Schedule = E2e_schedule.Schedule
module Prng = E2e_prng.Prng
module Gen = E2e_workload.Feasible_gen
module Paper = E2e_workload.Paper_instances
open Helpers

let params ?(n = 5) ?(m = 4) ?(stdev = 0.3) ?(slack = 1.0) () =
  { Gen.n_tasks = n; n_processors = m; mean_tau = 1.0; stdev; slack_factor = slack }

let test_witness_feasible () =
  let g = Prng.create 1 in
  for _ = 1 to 200 do
    let shop, witness = Gen.generate_with_witness g (params ()) in
    ignore shop;
    assert_feasible "witness schedule" witness
  done

let test_shapes () =
  let g = Prng.create 2 in
  let shop = Gen.generate g (params ~n:7 ~m:3 ()) in
  Alcotest.(check int) "tasks" 7 (Flow_shop.n_tasks shop);
  Alcotest.(check int) "processors" 3 shop.Flow_shop.processors

let test_releases_nonnegative () =
  let g = Prng.create 3 in
  for _ = 1 to 100 do
    let shop = Gen.generate g (params ~slack:2.0 ()) in
    Array.iter
      (fun (t : Task.t) ->
        Alcotest.(check bool) "release >= 0" true Rat.(t.release >= Rat.zero))
      shop.Flow_shop.tasks
  done

let test_nominal_slack () =
  (* When the witness span does not exceed the window, the nominal slack
     is exactly slack_factor * tau_i; it is never below. *)
  let g = Prng.create 4 in
  let slack_factor = Rat.of_float ~max_den:1000 1.5 in
  for _ = 1 to 100 do
    let shop = Gen.generate g (params ~slack:1.5 ()) in
    Array.iter
      (fun (t : Task.t) ->
        let nominal = Rat.mul slack_factor (Task.total_time t) in
        Alcotest.(check bool) "slack >= nominal" true Rat.(Task.slack t >= nominal))
      shop.Flow_shop.tasks
  done

let test_determinism () =
  let shop1 = Gen.generate (Prng.create 42) (params ()) in
  let shop2 = Gen.generate (Prng.create 42) (params ()) in
  Alcotest.(check bool) "same seed, same instance" true
    (Array.for_all2
       (fun (a : Task.t) (b : Task.t) ->
         Rat.equal a.release b.release && Rat.equal a.deadline b.deadline
         && Array.for_all2 Rat.equal a.proc_times b.proc_times)
       shop1.Flow_shop.tasks shop2.Flow_shop.tasks)

let test_stdev_effect () =
  (* Larger stdev must produce more dispersed processing times. *)
  let spread stdev =
    let g = Prng.create 77 in
    let samples = ref [] in
    for _ = 1 to 40 do
      let shop = Gen.generate g (params ~stdev ()) in
      Array.iter
        (fun (t : Task.t) ->
          Array.iter (fun tau -> samples := Rat.to_float tau :: !samples) t.proc_times)
        shop.Flow_shop.tasks
    done;
    E2e_stats.Stats.stdev (Array.of_list !samples)
  in
  Alcotest.(check bool) "stdev 0.5 spreads more than 0.1" true (spread 0.5 > spread 0.1)

let test_identical_generator () =
  let g = Prng.create 5 in
  let shop = Gen.identical_length g ~n:4 ~m:3 ~tau:(Rat.make 3 2) ~window:5 in
  match Flow_shop.classify shop with
  | `Identical_length tau -> check_rat "tau" (Rat.make 3 2) tau
  | _ -> Alcotest.fail "not identical length"

let test_homogeneous_generator () =
  let g = Prng.create 6 in
  let shop = Gen.homogeneous g ~n:4 ~m:3 ~max_tau:3 ~window:5 in
  match Flow_shop.classify shop with
  | `Homogeneous _ | `Identical_length _ -> ()
  | `Arbitrary -> Alcotest.fail "not homogeneous"

let test_paper_table1 () =
  let shop = Paper.table1 () in
  Alcotest.(check int) "4 tasks" 4 (E2e_model.Recurrence_shop.n_tasks shop);
  Alcotest.(check int) "7 stages" 7 (E2e_model.Visit.length shop.E2e_model.Recurrence_shop.visit)

let test_paper_table2 () =
  let shop = Paper.table2 () in
  match Flow_shop.classify shop with
  | `Homogeneous taus ->
      check_rat "bottleneck time 4" (r 4) taus.(2)
  | _ -> Alcotest.fail "table 2 must be homogeneous"

let test_paper_table3_stable () =
  let a = Paper.table3 () and b = Paper.table3 () in
  Alcotest.(check bool) "memoised/deterministic" true (a == b || a = b)

let test_paper_table4_utilizations () =
  let sys = Paper.table4 () in
  check_rat "u1 = 0.33" (q "0.33") (E2e_model.Periodic_shop.utilization sys 0);
  check_rat "u2 = 0.36" (q "0.36") (E2e_model.Periodic_shop.utilization sys 1)

let test_paper_table5_utilizations () =
  let sys = Paper.table5 () in
  check_rat "u1 = 0.55" (q "0.55") (E2e_model.Periodic_shop.utilization sys 0);
  check_rat "u2 = 0.55" (q "0.55") (E2e_model.Periodic_shop.utilization sys 1)

let test_single_loop_visit_generator () =
  let g = Prng.create 111 in
  for _ = 1 to 300 do
    let visit = Gen.single_loop_visit g ~max_stages:7 in
    Alcotest.(check bool) "stage cap" true (E2e_model.Visit.length visit <= 7);
    match E2e_model.Visit.single_loop visit with
    | Some { E2e_model.Visit.span; reused; _ } ->
        Alcotest.(check bool) "well-formed loop" true (span >= reused && reused >= 1)
    | None -> Alcotest.fail "generator must produce a single loop"
  done

let test_non_permutation_witness_memoised () =
  let a = Paper.non_permutation_witness () in
  let b = Paper.non_permutation_witness () in
  Alcotest.(check bool) "memoised" true (a == b)

let suite =
  [
    Alcotest.test_case "single-loop visit generator" `Quick test_single_loop_visit_generator;
    Alcotest.test_case "non-permutation witness memoised" `Quick
      test_non_permutation_witness_memoised;
    Alcotest.test_case "witness always feasible" `Quick test_witness_feasible;
    Alcotest.test_case "shapes" `Quick test_shapes;
    Alcotest.test_case "releases nonnegative" `Quick test_releases_nonnegative;
    Alcotest.test_case "nominal slack respected" `Quick test_nominal_slack;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "stdev effect" `Quick test_stdev_effect;
    Alcotest.test_case "identical generator" `Quick test_identical_generator;
    Alcotest.test_case "homogeneous generator" `Quick test_homogeneous_generator;
    Alcotest.test_case "paper table 1" `Quick test_paper_table1;
    Alcotest.test_case "paper table 2" `Quick test_paper_table2;
    Alcotest.test_case "paper table 3 stable" `Quick test_paper_table3_stable;
    Alcotest.test_case "paper table 4 utilizations" `Quick test_paper_table4_utilizations;
    Alcotest.test_case "paper table 5 utilizations" `Quick test_paper_table5_utilizations;
  ]
