module E = E2e_experiments.Experiments
module Stats = E2e_stats.Stats

(* The experiment harness is exercised with tiny sweeps: the full-size
   runs live in bin/experiments.ml; here we check determinism, trends and
   that every printer produces output without raising. *)

let small = { E.seed = 5; trials = 60; n_tasks = 4; n_processors = 3 }

let test_success_rate_deterministic () =
  let a = E.success_rate small ~stdev:0.3 ~slack:0.8 in
  let b = E.success_rate small ~stdev:0.3 ~slack:0.8 in
  Alcotest.(check (float 0.0)) "same seed same estimate" a.Stats.estimate b.Stats.estimate

let test_success_rate_trend () =
  let tight = E.success_rate small ~stdev:0.5 ~slack:0.2 in
  let loose = E.success_rate small ~stdev:0.5 ~slack:4.0 in
  Alcotest.(check bool)
    (Printf.sprintf "loose %.2f >= tight %.2f" loose.Stats.estimate tight.Stats.estimate)
    true
    (loose.Stats.estimate >= tight.Stats.estimate)

let test_success_rate_bounds () =
  let ci = E.success_rate small ~stdev:0.2 ~slack:1.0 in
  Alcotest.(check bool) "ci ordered" true
    (0.0 <= ci.Stats.lo && ci.Stats.lo <= ci.Stats.estimate && ci.Stats.estimate <= ci.Stats.hi
   && ci.Stats.hi <= 1.0)

let render f =
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  f ppf;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let test_printers_smoke () =
  let outputs =
    [
      ("table1", render E.table1);
      ("table2", render E.table2);
      ("table3", render E.table3);
      ("table4", render E.table4);
      ("table5", render E.table5);
      ("section6", render E.section6);
      ("fig9a", render (E.fig9a ~sweep:{ small with E.trials = 20 }));
      ("fig10", render (E.fig10 ~sweep:{ small with E.trials = 20 }));
      ("ablation", render (E.ablation ~sweep:{ small with E.trials = 20 }));
    ]
  in
  List.iter
    (fun (name, out) ->
      Alcotest.(check bool) (name ^ " nonempty") true (String.length out > 100))
    outputs

let test_table_contents () =
  Alcotest.(check bool) "table1 mentions the loop" true
    (Helpers.contains (render E.table1) "loop");
  Alcotest.(check bool) "table2 names the bottleneck" true
    (Helpers.contains (render E.table2) "bottleneck");
  Alcotest.(check bool) "table3 shows violations before compaction" true
    (Helpers.contains (render E.table3) "violations");
  Alcotest.(check bool) "table4 is schedulable" true
    (Helpers.contains (render E.table4) "0 deadline misses");
  Alcotest.(check bool) "table5 postpones deadlines" true
    (Helpers.contains (render E.table5) "postponed")

let suite =
  [
    Alcotest.test_case "success rate deterministic" `Quick test_success_rate_deterministic;
    Alcotest.test_case "success rate trend" `Quick test_success_rate_trend;
    Alcotest.test_case "CI bounds" `Quick test_success_rate_bounds;
    Alcotest.test_case "printers smoke" `Slow test_printers_smoke;
    Alcotest.test_case "table contents" `Slow test_table_contents;
  ]
