module Prng = E2e_prng.Prng
module Rat = E2e_rat.Rat
open Helpers

let test_determinism () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Prng.create 1 and b = Prng.create 2 in
  Alcotest.(check bool) "different seeds differ" true (Prng.bits64 a <> Prng.bits64 b)

let test_copy_independence () =
  let a = Prng.create 7 in
  ignore (Prng.bits64 a);
  let b = Prng.copy a in
  Alcotest.(check int64) "copy continues identically" (Prng.bits64 a) (Prng.bits64 b)

let test_split () =
  let a = Prng.create 7 in
  let b = Prng.split a in
  Alcotest.(check bool) "split stream differs from parent" true
    (Prng.bits64 a <> Prng.bits64 b)

let test_int_range () =
  let g = Prng.create 3 in
  for _ = 1 to 1000 do
    let x = Prng.int g 17 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 17)
  done

let test_int_coverage () =
  let g = Prng.create 5 in
  let seen = Array.make 6 false in
  for _ = 1 to 500 do
    seen.(Prng.int g 6) <- true
  done;
  Alcotest.(check bool) "all values hit" true (Array.for_all Fun.id seen)

let test_float_range () =
  let g = Prng.create 11 in
  for _ = 1 to 1000 do
    let x = Prng.float g 2.5 in
    Alcotest.(check bool) "in [0, 2.5)" true (x >= 0.0 && x < 2.5)
  done

let test_normal_moments () =
  let g = Prng.create 13 in
  let n = 20_000 in
  let samples = Array.init n (fun _ -> Prng.normal g ~mean:3.0 ~stdev:0.5) in
  let mean = E2e_stats.Stats.mean samples in
  let stdev = E2e_stats.Stats.stdev samples in
  Alcotest.(check bool) "mean close to 3" true (Float.abs (mean -. 3.0) < 0.02);
  Alcotest.(check bool) "stdev close to 0.5" true (Float.abs (stdev -. 0.5) < 0.02)

let test_truncated_normal () =
  let g = Prng.create 17 in
  for _ = 1 to 2000 do
    let x = Prng.truncated_normal g ~mean:1.0 ~stdev:0.5 ~lo:0.05 in
    Alcotest.(check bool) "above lo" true (x >= 0.05)
  done

let test_exponential_mean () =
  let g = Prng.create 19 in
  let n = 20_000 in
  let samples = Array.init n (fun _ -> Prng.exponential g ~rate:2.0) in
  let mean = E2e_stats.Stats.mean samples in
  Alcotest.(check bool) "mean close to 1/2" true (Float.abs (mean -. 0.5) < 0.02)

let test_permutation () =
  let g = Prng.create 23 in
  for _ = 1 to 50 do
    let p = Prng.permutation g 10 in
    let sorted = Array.copy p in
    Array.sort compare sorted;
    Alcotest.(check (array int)) "is a permutation" (Array.init 10 Fun.id) sorted
  done

let test_rat_uniform () =
  let g = Prng.create 29 in
  let lo = Rat.make 1 2 and hi = Rat.of_int 3 in
  for _ = 1 to 500 do
    let x = Prng.rat_uniform g ~den:4 lo hi in
    Alcotest.(check bool) "in range" true Rat.(x >= lo && x <= hi);
    Alcotest.(check bool) "on grid" true (Rat.is_multiple_of x (Rat.make 1 4))
  done

let test_rat_uniform_degenerate () =
  let g = Prng.create 31 in
  (* Interval too narrow for the grid: falls back to lo. *)
  let lo = Rat.make 1 3 and hi = Rat.make 5 12 in
  let x = Prng.rat_uniform g ~den:2 lo hi in
  check_rat "degenerate falls back to lo" lo x

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "copy independence" `Quick test_copy_independence;
    Alcotest.test_case "split" `Quick test_split;
    Alcotest.test_case "int range" `Quick test_int_range;
    Alcotest.test_case "int coverage" `Quick test_int_coverage;
    Alcotest.test_case "float range" `Quick test_float_range;
    Alcotest.test_case "normal moments" `Quick test_normal_moments;
    Alcotest.test_case "truncated normal" `Quick test_truncated_normal;
    Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
    Alcotest.test_case "permutation" `Quick test_permutation;
    Alcotest.test_case "rat_uniform" `Quick test_rat_uniform;
    Alcotest.test_case "rat_uniform degenerate" `Quick test_rat_uniform_degenerate;
  ]
