(* Coverage for the smaller API surfaces: printers, edge branches and
   convenience helpers not exercised elsewhere. *)

module Rat = E2e_rat.Rat
module Task = E2e_model.Task
module Flow_shop = E2e_model.Flow_shop
module Visit = E2e_model.Visit
module Recurrence_shop = E2e_model.Recurrence_shop
module Schedule = E2e_schedule.Schedule
module Stats = E2e_stats.Stats
module Solver = E2e_core.Solver
module H_portfolio = E2e_core.H_portfolio
open Helpers

let test_rat_pp_decimal_fallback () =
  (* 1/3 has no finite decimal form: falls back to 4 decimal places. *)
  Alcotest.(check string) "1/3" "0.3333" (Format.asprintf "%a" Rat.pp_decimal (Rat.make 1 3));
  Alcotest.(check string) "negative exact" "-0.5"
    (Format.asprintf "%a" Rat.pp_decimal (Rat.make (-1) 2));
  Alcotest.(check string) "abs" "3/2" (Rat.to_string (Rat.abs (Rat.make (-3) 2)))

let test_rat_misc () =
  check_rat "neg" (Rat.make (-1) 2) (Rat.neg (Rat.make 1 2));
  check_rat "minus_one" (Rat.of_int (-1)) Rat.minus_one;
  Alcotest.(check int) "num" 3 (Rat.num (Rat.make 3 4));
  Alcotest.(check int) "den" 4 (Rat.den (Rat.make 3 4));
  Alcotest.(check bool) "<> on equal" false Rat.(Rat.one <> Rat.make 2 2);
  Alcotest.(check bool) "is_integer" true (Rat.is_integer (Rat.make 8 4))

let test_stats_pp () =
  let ci = Stats.wilson_interval ~successes:5 ~trials:10 ~z:Stats.z_90 in
  Alcotest.(check bool) "pp_ci prints brackets" true
    (Helpers.contains (Format.asprintf "%a" Stats.pp_ci ci) "[")

let test_task_helpers () =
  let t = Task.make ~id:0 ~release:(r 0) ~deadline:(r 3) ~proc_times:[| r 1; r 1 |] in
  Alcotest.(check bool) "feasible alone" true (Task.is_feasible_alone t);
  let tight = Task.make ~id:0 ~release:(r 0) ~deadline:(r 1) ~proc_times:[| r 1; r 1 |] in
  Alcotest.(check bool) "infeasible alone" false (Task.is_feasible_alone tight);
  Alcotest.(check bool) "task pp" true
    (Helpers.contains (Format.asprintf "%a" Task.pp t) "T0")

let test_flow_shop_pp_and_guards () =
  let shop = Flow_shop.of_params [| (r 0, r 9, [| r 1; r 1 |]) |] in
  Alcotest.(check bool) "pp mentions processors" true
    (Helpers.contains (Format.asprintf "%a" Flow_shop.pp shop) "2 processors");
  Alcotest.(check bool) "empty of_params rejected" true
    (match Flow_shop.of_params [||] with exception Invalid_argument _ -> true | _ -> false);
  Alcotest.(check bool) "mismatched ids rejected" true
    (match
       Flow_shop.make ~processors:1
         [| Task.make ~id:5 ~release:(r 0) ~deadline:(r 2) ~proc_times:[| r 1 |] |]
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_visit_dot_labels () =
  let dot = Visit.to_dot (Visit.of_one_based [| 1; 2; 1 |]) in
  Alcotest.(check bool) "back edge P2->P1" true (Helpers.contains dot "P2 -> P1");
  Alcotest.(check bool) "label 2" true (Helpers.contains dot "label=\"2\"")

let test_gantt_unit_time () =
  let shop = Flow_shop.of_params [| (r 0, r 9, [| Rat.make 1 2; Rat.make 1 2 |]) |] in
  let s = Schedule.forward_pass (Recurrence_shop.of_traditional shop) ~order:[| 0 |] in
  let fine = Format.asprintf "%a" (Schedule.pp_gantt ~unit_time:(Rat.make 1 2)) s in
  Alcotest.(check bool) "half-unit columns show the stages" true
    (Helpers.contains fine "P1 |1")

let test_solver_pp_verdicts () =
  let render v = Format.asprintf "%a" Solver.pp_verdict v in
  let shop = Flow_shop.of_params [| (r 0, r 9, [| r 1; r 1 |]) |] in
  (match Solver.solve shop with
  | Solver.Feasible (_, `Eedf) as v ->
      Alcotest.(check bool) "mentions EEDF" true (Helpers.contains (render v) "EEDF")
  | _ -> Alcotest.fail "single identical task is EEDF-feasible");
  let impossible =
    Flow_shop.of_params [| (r 0, r 2, [| r 1; r 1 |]); (r 0, r 2, [| r 1; r 1 |]) |]
  in
  match Solver.solve impossible with
  | Solver.Proved_infeasible _ as v ->
      Alcotest.(check bool) "mentions infeasible" true (Helpers.contains (render v) "infeasible")
  | _ -> Alcotest.fail "expected proof of infeasibility"

let test_portfolio_pp () =
  let strategies =
    [
      H_portfolio.H_with_bottleneck 2;
      H_portfolio.Order_earliest_deadline;
      H_portfolio.Order_least_slack;
      H_portfolio.Order_earliest_release;
    ]
  in
  List.iter
    (fun s ->
      Alcotest.(check bool) "nonempty" true
        (String.length (Format.asprintf "%a" H_portfolio.pp_strategy s) > 5))
    strategies

let test_heap_edges () =
  let h = E2e_sim.Heap.create ~cmp:compare in
  Alcotest.(check int) "empty length" 0 (E2e_sim.Heap.length h);
  Alcotest.(check (option int)) "peek empty" None (E2e_sim.Heap.peek h);
  E2e_sim.Heap.push h 42;
  Alcotest.(check int) "length 1" 1 (E2e_sim.Heap.length h)

let test_schedule_is_permutation_negative () =
  (* Orders differ between processors: not a permutation schedule. *)
  let shop =
    Flow_shop.of_params
      [| (r 0, r 50, [| r 1; r 1 |]); (r 0, r 50, [| r 1; r 1 |]) |]
  in
  let s = Schedule.of_flow_shop shop [| [| r 0; r 10 |]; [| r 1; r 2 |] |] in
  Alcotest.(check bool) "detected" false (Schedule.is_permutation s)

let test_johnson_schedule_feasibility_passthrough () =
  (* Johnson ignores windows, but the returned schedule is still
     checkable; with generous deadlines it is feasible. *)
  let shop =
    Flow_shop.of_params
      [| (r 0, r 100, [| r 3; r 2 |]); (r 0, r 100, [| r 1; r 4 |]) |]
  in
  assert_feasible "johnson schedule" (E2e_baselines.Johnson.schedule shop)

let suite =
  [
    Alcotest.test_case "rat pp_decimal fallback" `Quick test_rat_pp_decimal_fallback;
    Alcotest.test_case "rat misc" `Quick test_rat_misc;
    Alcotest.test_case "stats pp" `Quick test_stats_pp;
    Alcotest.test_case "task helpers" `Quick test_task_helpers;
    Alcotest.test_case "flow shop pp & guards" `Quick test_flow_shop_pp_and_guards;
    Alcotest.test_case "visit dot labels" `Quick test_visit_dot_labels;
    Alcotest.test_case "gantt unit_time" `Quick test_gantt_unit_time;
    Alcotest.test_case "solver verdict printers" `Quick test_solver_pp_verdicts;
    Alcotest.test_case "portfolio strategy printers" `Quick test_portfolio_pp;
    Alcotest.test_case "heap edges" `Quick test_heap_edges;
    Alcotest.test_case "non-permutation detection" `Quick test_schedule_is_permutation_negative;
    Alcotest.test_case "johnson schedule checkable" `Quick
      test_johnson_schedule_feasibility_passthrough;
  ]
