module Rat = E2e_rat.Rat
module Flow_shop = E2e_model.Flow_shop
module Recurrence_shop = E2e_model.Recurrence_shop
module Schedule = E2e_schedule.Schedule
module Exhaustive = E2e_baselines.Exhaustive
module Johnson = E2e_baselines.Johnson
module List_edf = E2e_baselines.List_edf
module Solver = E2e_core.Solver
module Prng = E2e_prng.Prng
module Gen = E2e_workload.Feasible_gen
open Helpers

let test_exhaustive_finds_feasible () =
  let g = Prng.create 31 in
  for _ = 1 to 50 do
    let shop =
      Gen.generate g
        { Gen.n_tasks = 4; n_processors = 3; mean_tau = 1.0; stdev = 0.4; slack_factor = 1.0 }
    in
    (* Instances are feasible by construction with a permutation witness. *)
    match Exhaustive.permutation_schedule shop with
    | Some s -> assert_feasible "exhaustive witness" s
    | None -> Alcotest.fail "generator promises a permutation witness"
  done

let test_exhaustive_infeasible () =
  let shop =
    Flow_shop.of_params
      [| (r 0, r 2, [| r 1; r 1 |]); (r 0, r 2, [| r 1; r 1 |]) |]
  in
  Alcotest.(check bool) "no order works" false (Exhaustive.permutation_feasible shop);
  Alcotest.(check int) "zero feasible orders" 0 (Exhaustive.count_feasible_orders shop)

let test_exhaustive_counts () =
  (* Two independent tasks with roomy deadlines: both orders feasible. *)
  let shop =
    Flow_shop.of_params
      [| (r 0, r 20, [| r 1; r 1 |]); (r 0, r 20, [| r 1; r 1 |]) |]
  in
  Alcotest.(check int) "both orders feasible" 2 (Exhaustive.count_feasible_orders shop)

let test_exhaustive_guard () =
  let g = Prng.create 3 in
  let shop =
    Gen.generate g
      { Gen.n_tasks = 11; n_processors = 2; mean_tau = 1.0; stdev = 0.1; slack_factor = 1.0 }
  in
  Alcotest.(check bool) "guard trips" true
    (match Exhaustive.permutation_feasible shop with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_johnson_textbook () =
  (* Classic instance: times (a, b) = (3,2) (1,4) (5,4) (2,3).
     Johnson order: tasks with a<=b by a: T1(1), T3(2); then a>b by b
     desc: T2(4)... T0 has a=3>b=2 -> second group sorted by b desc:
     T2 (b=4), T0 (b=2).  Order = [1;3;2;0]. *)
  let far = r 100 in
  let shop =
    Flow_shop.of_params
      [|
        (r 0, far, [| r 3; r 2 |]);
        (r 0, far, [| r 1; r 4 |]);
        (r 0, far, [| r 5; r 4 |]);
        (r 0, far, [| r 2; r 3 |]);
      |]
  in
  Alcotest.(check (array int)) "Johnson order" [| 1; 3; 2; 0 |] (Johnson.order shop);
  (* Lower bound min(a) + sum(b) = 1 + 13 = 14 is attained. *)
  check_rat "optimal makespan" (r 14) (Johnson.makespan shop)

let test_johnson_optimal_small () =
  (* Cross-check Johnson's makespan against all permutations. *)
  let g = Prng.create 17 in
  for _ = 1 to 50 do
    let shop =
      Gen.arbitrary g ~n:5 ~m:2 ~max_tau:3 ~window:0
    in
    (* Neutralise deadlines: makespan comparison only. *)
    let far = r 1000 in
    let shop =
      Flow_shop.of_params
        (Array.map
           (fun (t : E2e_model.Task.t) -> (Rat.zero, far, t.proc_times))
           shop.Flow_shop.tasks)
    in
    let johnson = Johnson.makespan shop in
    let best = ref None in
    let rec perms acc rest =
      match rest with
      | [] ->
          let order = Array.of_list (List.rev acc) in
          let s = Schedule.forward_pass (Recurrence_shop.of_traditional shop) ~order in
          let mk = Schedule.makespan s in
          best := Some (match !best with None -> mk | Some b -> Rat.min b mk)
      | _ ->
          List.iter
            (fun x -> perms (x :: acc) (List.filter (fun y -> y <> x) rest))
            rest
    in
    perms [] [ 0; 1; 2; 3; 4 ];
    check_rat "Johnson attains the optimum" (Option.get !best) johnson
  done

let test_johnson_guard () =
  let shop = Flow_shop.of_params [| (r 0, r 9, [| r 1; r 1; r 1 |]) |] in
  Alcotest.(check bool) "3 processors rejected" true
    (match Johnson.order shop with exception Invalid_argument _ -> true | _ -> false)

let test_list_edf_reasonable () =
  (* On generously slack instances the greedy dispatcher succeeds. *)
  let g = Prng.create 23 in
  let ok = ref 0 in
  for _ = 1 to 50 do
    let shop =
      Gen.generate g
        { Gen.n_tasks = 4; n_processors = 3; mean_tau = 1.0; stdev = 0.2; slack_factor = 4.0 }
    in
    if List_edf.feasible (Recurrence_shop.of_traditional shop) then incr ok
  done;
  Alcotest.(check bool) (Printf.sprintf "list-EDF solves most slack instances (%d/50)" !ok)
    true (!ok > 35)

let test_list_edf_schedule_valid_shape () =
  (* Even when infeasible, the greedy schedule respects precedence and
     mutual exclusion (only windows may be violated). *)
  let g = Prng.create 29 in
  for _ = 1 to 100 do
    let shop =
      Gen.generate g
        { Gen.n_tasks = 5; n_processors = 3; mean_tau = 1.0; stdev = 0.5; slack_factor = 0.3 }
    in
    let s = List_edf.schedule (Recurrence_shop.of_traditional shop) in
    let hard =
      List.filter
        (function
          | Schedule.Precedence_violated _ | Schedule.Overlap _ | Schedule.Release_violated _ ->
              true
          | Schedule.Deadline_missed _ -> false)
        (Schedule.violations s)
    in
    Alcotest.(check int) "no structural violations" 0 (List.length hard)
  done

let test_solver_dispatch () =
  let identical =
    Flow_shop.of_params [| (r 0, r 9, [| r 1; r 1 |]); (r 0, r 9, [| r 1; r 1 |]) |]
  in
  (match Solver.solve identical with
  | Solver.Feasible (_, `Eedf) -> ()
  | v -> Alcotest.failf "expected EEDF: %a" Solver.pp_verdict v);
  let homogeneous =
    Flow_shop.of_params [| (r 0, r 19, [| r 1; r 2 |]); (r 0, r 19, [| r 1; r 2 |]) |]
  in
  (match Solver.solve homogeneous with
  | Solver.Feasible (_, `Algorithm_a) -> ()
  | v -> Alcotest.failf "expected A: %a" Solver.pp_verdict v);
  let arbitrary =
    Flow_shop.of_params [| (r 0, r 19, [| r 1; r 2 |]); (r 0, r 19, [| r 2; r 1 |]) |]
  in
  match Solver.solve arbitrary with
  | Solver.Feasible (s, `Algorithm_h) -> assert_feasible "H result" s
  | v -> Alcotest.failf "expected H: %a" Solver.pp_verdict v

let suite =
  [
    Alcotest.test_case "exhaustive finds witnesses" `Quick test_exhaustive_finds_feasible;
    Alcotest.test_case "exhaustive proves infeasibility" `Quick test_exhaustive_infeasible;
    Alcotest.test_case "exhaustive counts orders" `Quick test_exhaustive_counts;
    Alcotest.test_case "exhaustive size guard" `Quick test_exhaustive_guard;
    Alcotest.test_case "Johnson textbook instance" `Quick test_johnson_textbook;
    Alcotest.test_case "Johnson optimal on small sets" `Slow test_johnson_optimal_small;
    Alcotest.test_case "Johnson guard" `Quick test_johnson_guard;
    Alcotest.test_case "list-EDF on slack instances" `Quick test_list_edf_reasonable;
    Alcotest.test_case "list-EDF structural validity" `Quick test_list_edf_schedule_valid_shape;
    Alcotest.test_case "solver dispatch" `Quick test_solver_dispatch;
  ]
