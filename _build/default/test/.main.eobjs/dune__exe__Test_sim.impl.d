test/test_sim.ml: Alcotest Array E2e_model E2e_periodic E2e_prng E2e_rat E2e_sim E2e_workload Float Helpers List QCheck
