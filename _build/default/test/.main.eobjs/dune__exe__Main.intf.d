test/main.mli:
