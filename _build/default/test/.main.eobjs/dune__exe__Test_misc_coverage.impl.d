test/test_misc_coverage.ml: Alcotest E2e_baselines E2e_core E2e_model E2e_rat E2e_schedule E2e_sim E2e_stats Format Helpers List String
