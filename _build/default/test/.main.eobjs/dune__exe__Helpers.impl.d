test/helpers.ml: Alcotest E2e_rat E2e_schedule Format QCheck QCheck_alcotest String
