test/test_model.ml: Alcotest Array E2e_model E2e_rat Helpers List Option
