test/test_prng.ml: Alcotest Array E2e_prng E2e_rat E2e_stats Float Fun Helpers
