test/test_instance_io.ml: Alcotest Array E2e_model E2e_rat Filename Helpers Out_channel Sys
