test/test_rat.ml: Alcotest E2e_rat Format Helpers QCheck
