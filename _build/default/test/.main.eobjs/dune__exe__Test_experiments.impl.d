test/test_experiments.ml: Alcotest Buffer E2e_experiments E2e_stats Format Helpers List Printf String
