test/test_partition.ml: Alcotest Array E2e_model E2e_partition E2e_periodic E2e_rat Helpers
