test/test_distributed.ml: Alcotest Array E2e_core E2e_model E2e_partition E2e_rat Format Helpers List
