test/test_algo_a.ml: Alcotest Array E2e_core E2e_model E2e_prng E2e_rat E2e_schedule E2e_workload Helpers Option QCheck
