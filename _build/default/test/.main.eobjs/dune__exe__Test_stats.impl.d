test/test_stats.ml: Alcotest E2e_stats
