test/test_algo_r.ml: Alcotest Array E2e_core E2e_model E2e_rat E2e_schedule E2e_workload Helpers List Option
