test/test_periodic.ml: Alcotest Array E2e_model E2e_periodic E2e_rat E2e_workload Float Option Printf
