test/test_single_machine.ml: Alcotest Array E2e_core E2e_prng E2e_rat Helpers List QCheck
