module Rat = E2e_rat.Rat
module Periodic_shop = E2e_model.Periodic_shop
module Rm_bounds = E2e_periodic.Rm_bounds
module Analysis = E2e_periodic.Analysis
module Paper = E2e_workload.Paper_instances

let feq ?(tol = 1e-6) msg expected actual = Alcotest.(check (float tol)) msg expected actual

let test_liu_layland () =
  feq "n=1" 1.0 (Rm_bounds.liu_layland 1);
  feq "n=2" (2.0 *. (sqrt 2.0 -. 1.0)) (Rm_bounds.liu_layland 2);
  Alcotest.(check bool) "decreases to ln 2" true
    (Rm_bounds.liu_layland 50 > log 2.0 && Rm_bounds.liu_layland 50 < Rm_bounds.liu_layland 2)

let test_u_max_branches () =
  (* Linear branch below 1/2; curve above; continuous at both ends. *)
  feq "delta 0.3" 0.3 (Rm_bounds.u_max ~n:3 ~delta:0.3);
  feq "continuity at 1/2" 0.5 (Rm_bounds.u_max ~n:3 ~delta:0.5);
  feq "delta 1 = Liu-Layland" (Rm_bounds.liu_layland 3) (Rm_bounds.u_max ~n:3 ~delta:1.0);
  Alcotest.(check bool) "monotone" true
    (Rm_bounds.u_max ~n:3 ~delta:0.8 > Rm_bounds.u_max ~n:3 ~delta:0.6)

let test_u_max_guards () =
  Alcotest.(check bool) "delta > 1 rejected" true
    (match Rm_bounds.u_max ~n:2 ~delta:1.5 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "n = 0 rejected" true
    (match Rm_bounds.u_max ~n:0 ~delta:0.5 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_min_delta () =
  (* Linear branch: delta = u. *)
  feq "u=0.33" 0.33 (Option.get (Rm_bounds.min_delta ~n:3 ~u:0.33));
  feq "u=0.36" 0.36 (Option.get (Rm_bounds.min_delta ~n:3 ~u:0.36));
  (* Upper branch: the paper's Table 5 value, u = 0.55, n = 2 -> 0.553. *)
  let d = Option.get (Rm_bounds.min_delta ~n:2 ~u:0.55) in
  Alcotest.(check bool) (Printf.sprintf "delta = %.4f close to 0.553" d) true
    (Float.abs (d -. 0.553) < 0.002);
  (* Inversion really inverts. *)
  feq ~tol:1e-6 "u_max(min_delta u) = u" 0.55 (Rm_bounds.u_max ~n:2 ~delta:d);
  (* Beyond Liu-Layland: no guarantee. *)
  Alcotest.(check bool) "u=0.9, n=2 unguaranteed" true (Rm_bounds.min_delta ~n:2 ~u:0.9 = None)

let test_table4_analysis () =
  (* Reconstructed Table 4: u1 = 0.33, u2 = 0.36 -> delta = (0.33, 0.36),
     total 0.69 <= 1: schedulable within the period.  The derived numbers
     the OCR preserved: delta1 p1 = 3.3, delta1 p2 = 4.125, delta1 p3 =
     6.6, J1 completes within 6.9. *)
  let sys = Paper.table4 () in
  match Analysis.analyse sys with
  | Analysis.Schedulable { deltas; total } ->
      feq "delta1" 0.33 deltas.(0);
      feq "delta2" 0.36 deltas.(1);
      feq "total" 0.69 total;
      feq "delta1 * p1 = 3.3" 3.3 (deltas.(0) *. 10.0);
      feq "delta1 * p2 = 4.125" 4.125 (deltas.(0) *. 12.5);
      feq "delta1 * p3 = 6.6" 6.6 (deltas.(0) *. 20.0);
      feq "J1 end-to-end bound 6.9" 6.9 (Analysis.response_bound sys deltas 0)
  | v -> Alcotest.failf "expected schedulable: %a" Analysis.pp_verdict v

let test_table4_phases () =
  let sys = Paper.table4 () in
  match Analysis.analyse sys with
  | Analysis.Schedulable { deltas; _ } ->
      let phases = Analysis.phases sys deltas in
      feq "J1 on P1 at its phase" 0.0 phases.(0).(0);
      feq "J1 on P2 postponed by 3.3" 3.3 phases.(0).(1);
      feq "J2 on P2 postponed by 4.125" 4.125 phases.(1).(1);
      feq "J3 on P2 postponed by 6.6" 6.6 phases.(2).(1)
  | v -> Alcotest.failf "expected schedulable: %a" Analysis.pp_verdict v

let test_table5_analysis () =
  (* u = 0.55 per processor: each delta = 0.553, total 1.106 > 1 ->
     schedulable only with deadlines postponed ~10.6% past the period. *)
  let sys = Paper.table5 () in
  match Analysis.analyse sys with
  | Analysis.Schedulable_postponed { deltas; total } ->
      Alcotest.(check bool) "delta1 ~ 0.553" true (Float.abs (deltas.(0) -. 0.553) < 0.002);
      Alcotest.(check bool) "total ~ 1.106" true (Float.abs (total -. 1.106) < 0.004)
  | v -> Alcotest.failf "expected postponed-schedulable: %a" Analysis.pp_verdict v

let test_not_schedulable () =
  (* Utilization 0.9 on one processor with 2 jobs exceeds 0.828. *)
  let sys =
    Periodic_shop.of_params
      [|
        (Rat.of_int 2, [| Rat.of_decimal_string "0.9" |]);
        (Rat.of_int 5, [| Rat.of_decimal_string "2.25" |]);
      |]
  in
  match Analysis.analyse sys with
  | Analysis.Not_schedulable { processor = 0; utilization } -> feq "u" 0.9 utilization
  | v -> Alcotest.failf "expected not-schedulable: %a" Analysis.pp_verdict v

let test_per_processor_cap () =
  feq "cap 1/2 on 2 processors" 0.5 (Analysis.per_processor_cap ~m:2);
  feq "cap 1/4 on 4 processors" 0.25 (Analysis.per_processor_cap ~m:4)

let test_phases_monotone () =
  let sys = Paper.table4 () in
  match Analysis.deltas sys with
  | Error _ -> Alcotest.fail "schedulable"
  | Ok ds ->
      let phases = Analysis.phases sys ds in
      Array.iter
        (fun row ->
          for j = 1 to Array.length row - 1 do
            Alcotest.(check bool) "phases nondecreasing along the chain" true
              (row.(j) >= row.(j - 1))
          done)
        phases

let test_deadline_factor () =
  (* Table 5 needs factor ~1.105: rejected at 1.0, accepted at 1.2, and
     accepted at the end-of-mth-period limit. *)
  let sys = Paper.table5 () in
  Alcotest.(check bool) "factor 1.0 rejected" false
    (Analysis.schedulable_with_deadline_factor ~deadline_factor:1.0 sys);
  Alcotest.(check bool) "factor 1.2 accepted" true
    (Analysis.schedulable_with_deadline_factor ~deadline_factor:1.2 sys);
  Alcotest.(check bool) "factor m accepted" true
    (Analysis.schedulable_with_deadline_factor ~deadline_factor:2.0 sys);
  Alcotest.(check bool) "guard" true
    (match Analysis.schedulable_with_deadline_factor ~deadline_factor:0.0 sys with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_deadline_factor_with_policies () =
  let sys = Paper.table5 () in
  (* EDF needs only 1.10. *)
  Alcotest.(check bool) "EDF at 1.10" true
    (Analysis.schedulable_with_deadline_factor
       ~policies:[| Analysis.Edf; Analysis.Edf |]
       ~deadline_factor:1.101 sys)

let suite =
  [
    Alcotest.test_case "deadline factor" `Quick test_deadline_factor;
    Alcotest.test_case "deadline factor with policies" `Quick test_deadline_factor_with_policies;
    Alcotest.test_case "Liu-Layland bound" `Quick test_liu_layland;
    Alcotest.test_case "u_max branches" `Quick test_u_max_branches;
    Alcotest.test_case "u_max guards" `Quick test_u_max_guards;
    Alcotest.test_case "min_delta" `Quick test_min_delta;
    Alcotest.test_case "table 4 analysis" `Quick test_table4_analysis;
    Alcotest.test_case "table 4 phases" `Quick test_table4_phases;
    Alcotest.test_case "table 5 analysis" `Quick test_table5_analysis;
    Alcotest.test_case "not schedulable" `Quick test_not_schedulable;
    Alcotest.test_case "per-processor cap" `Quick test_per_processor_cap;
    Alcotest.test_case "phases monotone" `Quick test_phases_monotone;
  ]
