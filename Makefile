METRICS := /tmp/e2e_sched_metrics.jsonl
PAR_METRICS := /tmp/e2e_sched_metrics_par.jsonl
PAR_A := /tmp/e2e_sched_fig9a_j1.txt
PAR_B := /tmp/e2e_sched_fig9a_j4.txt
FUZZ_A := /tmp/e2e_sched_fuzz_j1.txt
FUZZ_B := /tmp/e2e_sched_fuzz_j4.txt
SERVE_A := /tmp/e2e_sched_serve_j1.txt
SERVE_B := /tmp/e2e_sched_serve_j4.txt
CONC_A := /tmp/e2e_sched_conc_j1
CONC_B := /tmp/e2e_sched_conc_j4
CONC_D := /tmp/e2e_sched_conc_d4
CONC_CONNS := 4
CLUS_A := /tmp/e2e_sched_clus_j1
CLUS_B := /tmp/e2e_sched_clus_j4
CLUS_C := /tmp/e2e_sched_clus_k2
CLUS_CONNS := 4
CORE_SMOKE := /tmp/e2e_sched_bench_core_small.json
TRACE_A := /tmp/e2e_sched_trace_j1.jsonl
TRACE_B := /tmp/e2e_sched_trace_j4.jsonl
TRACE_SUM := /tmp/e2e_sched_trace_summary.txt
TRACE_LG := /tmp/e2e_sched_trace_loadgen.json
JOBS ?= 4
# full = sizes 10..5000 with 7 trimmed trials; small = the CI smoke
# configuration (sizes 10 and 100 only).
BENCH_TRIALS ?= full

.PHONY: all build test bench bench-par bench-serve bench-core bench-cluster \
  fuzz-smoke fuzz-inc serve-smoke serve-conc-smoke cluster-smoke trace-smoke \
  check clean

all: build

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Sequential-vs-parallel wall-clock on the fig9/fig10 Monte Carlo
# sweeps, written to BENCH_parallel.json (speedup > 1 needs real cores).
bench-par:
	dune exec bench/main.exe -- --parallel BENCH_parallel.json --jobs $(JOBS)

# Fixed-seed load-generator run against the in-process admission
# service: requests/sec, latency percentiles, the solver cache hit
# rate, a full-transport saturation sweep (connections x batch over
# the concurrent TCP server), and a drainer-stripe scaling sweep (the
# seed-then-resubmit workload over a working set ~3x one stripe's
# solver cache: striping the queue by shop multiplies aggregate cache
# capacity, so 4 drainers hold the working set while 1 thrashes),
# written to BENCH_serve.json.
bench-serve:
	dune exec bin/loadgen.exe -- --requests 8000 --seed 42 -j $(JOBS) \
	  --cache-sweep 128,512,4096 \
	  --sat-connections 1,2,4,8 --sat-batch 16,64 \
	  --drainer-sweep 1,2,4 --connections 4 --pipeline 8 \
	  --cluster-shops 96 --cache 128 \
	  --out BENCH_serve.json

# Tracked hot-path micro-benchmarks: the indexed single-machine engine
# against the retained scan-based reference (the speedup ratio is part
# of the output), Algorithms A and H, and the admission request path,
# written to BENCH_core.json.
bench-core:
	dune exec bench/core_bench.exe -- --trials $(BENCH_TRIALS) \
	  --out BENCH_core.json

# Shard-count scaling sweep over the cluster transport: 1, 2 and 4
# in-process shards behind the dispatcher on the seed-then-resubmit
# workload (permuted resubmissions over a working set ~3x one shard's
# solver cache), written to tracked BENCH_cluster.json.  The headline
# number is the 1 -> 4 shard aggregate-throughput ratio: sticky routing
# gives each shard only its own shops, so four shards hold the whole
# working set in cache while one shard thrashes and re-solves.
# The upstream sweep rides along: a 1-shard cluster on a cache-resident
# workload at 1, 2 and 4 pipelined upstream connections per shard,
# recorded in the same file (lanes relieve head-of-line blocking on the
# dispatcher<->shard hop, not shard compute, so no ratio is asserted).
bench-cluster:
	dune exec bin/loadgen.exe -- --cluster-sweep 1,2,4 --connections 4 \
	  --pipeline 8 --requests 8000 --cluster-shops 96 --cache 128 --seed 42 \
	  --upstream-sweep 1,2,4 \
	  --out BENCH_cluster.json
	dune exec bin/jsonl_check.exe -- --bench-cluster BENCH_cluster.json

# Replay the full-grammar request fixture through the stdio transport on
# 1 and 4 domains: the reply logs must be byte-identical and contain
# admitted verdicts.
serve-smoke:
	rm -f $(SERVE_A) $(SERVE_B)
	dune exec bin/serve.exe -- --stdio -j 1 \
	  < test/serve_smoke_requests.txt > $(SERVE_A)
	dune exec bin/serve.exe -- --stdio -j 4 \
	  < test/serve_smoke_requests.txt > $(SERVE_B)
	cmp $(SERVE_A) $(SERVE_B)
	grep -q '^pong ' $(SERVE_A)
	grep -q '^admitted ' $(SERVE_A)
	grep -q '^rejected ' $(SERVE_A)
	grep -q '^metrics ' $(SERVE_A)

# The concurrent transport determinism smoke: $(CONC_CONNS) pipelined
# client domains against an embedded multi-domain TCP server on 1 and 4
# worker domains, then again with the queue striped over 4 drainer
# domains.  Every connection's reply log must be byte-identical across
# domain counts AND stripe counts (disjoint per-connection shop
# namespaces) and contain admitted verdicts.
serve-conc-smoke:
	rm -f $(CONC_A).conn* $(CONC_B).conn* $(CONC_D).conn*
	dune exec bin/loadgen.exe -- --self-serve --connections $(CONC_CONNS) \
	  --pipeline 16 --requests 800 --seed 42 -j 1 \
	  --reply-log $(CONC_A) > /dev/null
	dune exec bin/loadgen.exe -- --self-serve --connections $(CONC_CONNS) \
	  --pipeline 16 --requests 800 --seed 42 -j 4 \
	  --reply-log $(CONC_B) > /dev/null
	dune exec bin/loadgen.exe -- --self-serve --connections $(CONC_CONNS) \
	  --pipeline 16 --requests 800 --seed 42 -j 1 --drainers 4 \
	  --reply-log $(CONC_D) > /dev/null
	for i in $$(seq 0 $$(( $(CONC_CONNS) - 1 ))); do \
	  cmp $(CONC_A).conn$$i $(CONC_B).conn$$i || exit 1; \
	  cmp $(CONC_A).conn$$i $(CONC_D).conn$$i || exit 1; \
	  grep -q '^admitted ' $(CONC_A).conn$$i || exit 1; \
	done

# The cluster transport smoke: 2 in-process shards behind the
# dispatcher, $(CLUS_CONNS) pipelined clients.  Every connection's
# reply log must be byte-identical across shard worker-domain counts
# AND across upstream lane counts (sticky routing keeps each shop's
# history on one shard, sticky lanes keep each client's shard traffic
# on one upstream connection, and the dispatcher preserves
# per-connection reply order across shards), then the failover check —
# single-lane and widened — kills a shard mid-burst and asserts every
# request is answered, traffic re-routes to the survivor, and the
# restarted shard is re-admitted by the status checker.
cluster-smoke:
	rm -f $(CLUS_A).conn* $(CLUS_B).conn* $(CLUS_C).conn*
	dune exec bin/loadgen.exe -- --spawn-shards 2 --connections $(CLUS_CONNS) \
	  --pipeline 16 --requests 800 --seed 42 -j 1 \
	  --reply-log $(CLUS_A) > /dev/null
	dune exec bin/loadgen.exe -- --spawn-shards 2 --connections $(CLUS_CONNS) \
	  --pipeline 16 --requests 800 --seed 42 -j 4 \
	  --reply-log $(CLUS_B) > /dev/null
	dune exec bin/loadgen.exe -- --spawn-shards 2 --connections $(CLUS_CONNS) \
	  --pipeline 16 --requests 800 --seed 42 -j 1 --upstream-conns 2 \
	  --reply-log $(CLUS_C) > /dev/null
	for i in $$(seq 0 $$(( $(CLUS_CONNS) - 1 ))); do \
	  cmp $(CLUS_A).conn$$i $(CLUS_B).conn$$i || exit 1; \
	  cmp $(CLUS_A).conn$$i $(CLUS_C).conn$$i || exit 1; \
	  grep -q '^admitted ' $(CLUS_A).conn$$i || exit 1; \
	done
	dune exec bin/loadgen.exe -- --failover-check --seed 42
	dune exec bin/loadgen.exe -- --failover-check --seed 42 --upstream-conns 2

# Fixed-seed traced load-generator run under the deterministic clock on
# 1 and 4 domains: the request-trace JSONL must be byte-identical across
# domain counts, pass schema validation (stage order, non-negative
# durations, stage sums tiling end-to-end), and its e2e-trace analysis
# must match the committed golden summary byte-for-byte.
trace-smoke:
	rm -f $(TRACE_A) $(TRACE_B) $(TRACE_SUM)
	dune exec bin/loadgen.exe -- --requests 200 --seed 42 -j 1 \
	  --det-clock --trace $(TRACE_A) --out $(TRACE_LG) > /dev/null
	dune exec bin/loadgen.exe -- --requests 200 --seed 42 -j 4 \
	  --det-clock --trace $(TRACE_B) --out $(TRACE_LG) > /dev/null
	cmp $(TRACE_A) $(TRACE_B)
	dune exec bin/jsonl_check.exe -- --trace $(TRACE_A)
	dune exec bin/trace.exe -- analyze $(TRACE_A) > $(TRACE_SUM)
	cmp $(TRACE_SUM) test/golden/trace_summary.txt

# Short differential-fuzzing campaign over every model class (including
# eedf-fast, which pits the indexed single-machine engine against the
# retained scan-based reference on larger instances, and eedf-inc,
# which replays add/drop churn logs through the warm incremental state
# and re-solves from scratch after every edit): each solver
# against its oracle and the independent checker, on a fixed seed, run
# on 1 and 4 domains — any disagreement or any scheduling
# nondeterminism (output not byte-identical) fails the target.  Full
# campaigns: dune exec bin/fuzz.exe -- --trials 2000.
fuzz-smoke:
	rm -f $(FUZZ_A) $(FUZZ_B)
	dune exec bin/fuzz.exe -- --class all --trials 300 --seed 42 -j 1 > $(FUZZ_A)
	dune exec bin/fuzz.exe -- --class all --trials 300 --seed 42 -j 4 > $(FUZZ_B)
	cmp $(FUZZ_A) $(FUZZ_B)

# Deep campaign on the incremental-vs-scratch differential alone: every
# trial replays a deterministic add/drop churn log over one instance,
# comparing regions, schedules and feasibility verdicts after every
# edit (the warm state must agree with from-scratch exactly).
fuzz-inc:
	dune exec bin/fuzz.exe -- --class eedf-inc --trials 2000 --seed 7 -j 4

# Build, run the test suite, then smoke-test the telemetry pipeline
# (regenerate one paper artifact with --metrics and validate the file as
# JSONL), the parallel engine (the same sweep on 1 and 4 domains must
# be byte-identical, and metrics collected under -j 4 must still be
# well-formed JSONL), the differential fuzzer and the admission service
# (stdio transport, -j 1 vs -j 4 byte-compare).
check:
	dune build
	dune runtest
	rm -f $(METRICS) $(PAR_METRICS) $(PAR_A) $(PAR_B)
	dune exec bin/experiments.exe -- table1 --metrics $(METRICS)
	dune exec bin/jsonl_check.exe $(METRICS)
	dune exec bin/experiments.exe -- fig9a --trials 120 -j 1 > $(PAR_A)
	dune exec bin/experiments.exe -- fig9a --trials 120 -j 4 > $(PAR_B)
	cmp $(PAR_A) $(PAR_B)
	dune exec bin/experiments.exe -- fig9a --trials 120 -j 4 --metrics $(PAR_METRICS) > /dev/null
	dune exec bin/jsonl_check.exe $(PAR_METRICS)
	$(MAKE) fuzz-smoke
	$(MAKE) fuzz-inc
	$(MAKE) serve-smoke
	$(MAKE) serve-conc-smoke
	$(MAKE) cluster-smoke
	$(MAKE) trace-smoke
	dune exec bench/core_bench.exe -- --trials small --out $(CORE_SMOKE)
	dune exec bin/jsonl_check.exe $(CORE_SMOKE)
	dune exec bin/jsonl_check.exe -- --bench-cluster BENCH_cluster.json

clean:
	dune clean
	rm -f $(METRICS) $(PAR_METRICS) $(PAR_A) $(PAR_B) $(FUZZ_A) $(FUZZ_B) \
	  $(SERVE_A) $(SERVE_B) $(CONC_A).conn* $(CONC_B).conn* $(CONC_D).conn* \
	  $(CORE_SMOKE) $(CLUS_A).conn* $(CLUS_B).conn* $(CLUS_C).conn* \
	  $(TRACE_A) $(TRACE_B) $(TRACE_SUM) \
	  $(TRACE_LG) BENCH_parallel.json BENCH_core.json
