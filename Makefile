METRICS := /tmp/e2e_sched_metrics.jsonl

.PHONY: all build test bench check clean

all: build

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Build, run the test suite, then smoke-test the telemetry pipeline:
# regenerate one paper artifact with --metrics and validate that the
# resulting file is non-empty, well-formed JSONL.
check:
	dune build
	dune runtest
	rm -f $(METRICS)
	dune exec bin/experiments.exe -- table1 --metrics $(METRICS)
	dune exec bin/jsonl_check.exe $(METRICS)

clean:
	dune clean
	rm -f $(METRICS)
