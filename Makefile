METRICS := /tmp/e2e_sched_metrics.jsonl
PAR_METRICS := /tmp/e2e_sched_metrics_par.jsonl
PAR_A := /tmp/e2e_sched_fig9a_j1.txt
PAR_B := /tmp/e2e_sched_fig9a_j4.txt
FUZZ_A := /tmp/e2e_sched_fuzz_j1.txt
FUZZ_B := /tmp/e2e_sched_fuzz_j4.txt
JOBS ?= 4

.PHONY: all build test bench bench-par fuzz-smoke check clean

all: build

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Sequential-vs-parallel wall-clock on the fig9/fig10 Monte Carlo
# sweeps, written to BENCH_parallel.json (speedup > 1 needs real cores).
bench-par:
	dune exec bench/main.exe -- --parallel BENCH_parallel.json --jobs $(JOBS)

# Short differential-fuzzing campaign over every model class: each
# solver against its exhaustive oracle and the independent checker, on a
# fixed seed, run on 1 and 4 domains — any disagreement or any
# scheduling nondeterminism (output not byte-identical) fails the
# target.  Full campaigns: dune exec bin/fuzz.exe -- --trials 2000.
fuzz-smoke:
	rm -f $(FUZZ_A) $(FUZZ_B)
	dune exec bin/fuzz.exe -- --class all --trials 300 --seed 42 -j 1 > $(FUZZ_A)
	dune exec bin/fuzz.exe -- --class all --trials 300 --seed 42 -j 4 > $(FUZZ_B)
	cmp $(FUZZ_A) $(FUZZ_B)

# Build, run the test suite, then smoke-test the telemetry pipeline
# (regenerate one paper artifact with --metrics and validate the file as
# JSONL) and the parallel engine (the same sweep on 1 and 4 domains must
# be byte-identical, and metrics collected under -j 4 must still be
# well-formed JSONL).
check:
	dune build
	dune runtest
	rm -f $(METRICS) $(PAR_METRICS) $(PAR_A) $(PAR_B)
	dune exec bin/experiments.exe -- table1 --metrics $(METRICS)
	dune exec bin/jsonl_check.exe $(METRICS)
	dune exec bin/experiments.exe -- fig9a --trials 120 -j 1 > $(PAR_A)
	dune exec bin/experiments.exe -- fig9a --trials 120 -j 4 > $(PAR_B)
	cmp $(PAR_A) $(PAR_B)
	dune exec bin/experiments.exe -- fig9a --trials 120 -j 4 --metrics $(PAR_METRICS) > /dev/null
	dune exec bin/jsonl_check.exe $(PAR_METRICS)
	$(MAKE) fuzz-smoke

clean:
	dune clean
	rm -f $(METRICS) $(PAR_METRICS) $(PAR_A) $(PAR_B) $(FUZZ_A) $(FUZZ_B) \
	  BENCH_parallel.json
