(* Hot-path micro-benchmarks with a tracked baseline: the indexed
   single-machine engine (heap EDF + interval-set regions) against the
   retained scan-based reference, plus the solvers that ride on it and
   the admission service's request path.

   Run with: dune exec bench/core_bench.exe -- --out BENCH_core.json
   Pass `--trials small` for the CI smoke configuration (sizes 10 and
   100, fewer repetitions).

   Protocol: fixed Prng seeds, pre-generated instance pools, [warmup]
   untimed runs, then [trials] timed runs whose extremes are dropped
   (trimmed mean).  The reference engine is O(n^3) in its region pass,
   so it is only timed up to n = 1000 — the cap is recorded in the
   output, not silently applied. *)

module Rat = E2e_rat.Rat
module Prng = E2e_prng.Prng
module Task = E2e_model.Task
module Flow_shop = E2e_model.Flow_shop
module Recurrence_shop = E2e_model.Recurrence_shop
module Eedf = E2e_core.Eedf
module Algo_a = E2e_core.Algo_a
module Algo_h = E2e_core.Algo_h
module Gen = E2e_workload.Feasible_gen
module Admission = E2e_serve.Admission
module Batcher = E2e_serve.Batcher
module Cache = E2e_serve.Cache
module SM = E2e_core.Single_machine
module Ref = E2e_fuzz.Single_machine_ref
module Obs = E2e_obs.Obs
module Quantile = E2e_obs.Quantile

let pool ~seed ~count f =
  let g = Prng.create seed in
  let instances = Array.init count (fun _ -> f g) in
  let i = ref 0 in
  fun () ->
    let x = instances.(!i mod count) in
    incr i;
    x

(* One timed trial = [reps] calls; reported time is per call. *)
let time_trial f reps =
  let t0 = Unix.gettimeofday () in
  for _ = 1 to reps do
    ignore (Sys.opaque_identity (f ()))
  done;
  (Unix.gettimeofday () -. t0) /. float_of_int reps

let trimmed_mean ~warmup ~trials ~reps f =
  for _ = 1 to warmup do
    ignore (Sys.opaque_identity (f ()))
  done;
  let ts = Array.init trials (fun _ -> time_trial f reps) in
  Array.sort Float.compare ts;
  let lo, hi = if trials >= 4 then (1, trials - 2) else (0, trials - 1) in
  let sum = ref 0. in
  for i = lo to hi do
    sum := !sum +. ts.(i)
  done;
  !sum /. float_of_int (hi - lo + 1)

(* [stages] is empty for most rows; serve_admission rows carry a
   per-stage latency decomposition (name, p50/p95/p99 in seconds). *)
type row = {
  family : string;
  n : int;
  mean_s : float;
  trials : int;
  reps : int;
  stages : (string * float * float * float) list;
}

(* {1 Workloads} *)

let identical_pool n =
  pool ~seed:(1000 + n) ~count:8 (fun g ->
      Gen.identical_length g ~n ~m:4 ~tau:Rat.one ~window:(2 * n))

let eedf_case next () = Eedf.schedule (next ())

(* The reference engine runs on the same reduced single-machine instance
   the production EEDF solves internally. *)
let eedf_ref_case next =
  let jobs shop = Eedf.single_machine_jobs shop ~tau:Rat.one in
  fun () ->
    let shop = next () in
    let js =
      Array.map
        (fun (j : E2e_core.Single_machine.job) ->
          { Ref.id = j.id; release = j.release; deadline = j.deadline })
        (jobs shop)
    in
    Ref.schedule ~tau:Rat.one js

let algo_a_case n =
  let next =
    pool ~seed:(2000 + n) ~count:8 (fun g -> Gen.homogeneous g ~n ~m:4 ~max_tau:3 ~window:(2 * n))
  in
  fun () -> Algo_a.schedule (next ())

let algo_h_case n =
  let next =
    pool ~seed:(3000 + n) ~count:8 (fun g ->
        Gen.generate g
          { Gen.n_tasks = n; n_processors = 4; mean_tau = 1.0; stdev = 0.5; slack_factor = 1.0 })
  in
  fun () -> Algo_h.schedule (next ())

(* Admission request path: n requests (submits, permuted resubmits after
   a drop, adds, queries) through the sequential engine with the
   canonical cache and the structural keyer — the configuration the
   batcher uses per batch member. *)
let serve_log n =
  let instance g =
    Recurrence_shop.of_traditional
      (Gen.generate g
         { Gen.n_tasks = 2 + Prng.int g 4; n_processors = 2 + Prng.int g 2; mean_tau = 1.0;
           stdev = 0.5; slack_factor = 1.5 })
  in
  let g = Prng.create (4000 + n) in
  List.init n (fun i ->
        let shop = "s" ^ string_of_int (Prng.int g 8) in
        match Prng.int g 10 with
        | 0 | 1 | 2 | 3 -> Admission.Submit { shop; instance = instance g }
        | 4 | 5 -> (
            Admission.Add
              {
                shop;
                tasks =
                  List.init (1 + Prng.int g 2) (fun _ ->
                      let r = Prng.rat_uniform g ~den:4 Rat.zero (Rat.of_int 4) in
                      ( r,
                        Rat.add r (Rat.of_int (8 + Prng.int g 8)),
                        Array.make 2 Rat.one )) })
      | 6 -> Admission.Query { shop }
      | 7 -> Admission.Drop { shop }
      | _ -> Admission.Submit { shop = "s" ^ string_of_int (i mod 8); instance = instance g })

let serve_case n =
  let log = serve_log n in
  fun () ->
    let cache = Cache.create ~capacity:4096 in
    let keyer = Cache.Keyer.create () in
    List.fold_left
      (fun t req -> fst (Admission.apply ~cache ~keyer t req))
      Admission.empty log

(* {1 Incremental churn workloads}

   A resident identical-length shop solved once into a warm
   {!SM.Inc} state; the timed body is a single-task edit plus re-solve.
   States are persistent, so every call starts from the same resident
   handle — no drift across trials.  The churn model is the serve
   pattern the delta path targets: fresh tasks arrive with releases near
   the committed horizon and cancellations hit recent arrivals, so the
   checkpoint prefix below the edit's release is mostly reusable. *)
let inc_setup n =
  let g = Prng.create (5000 + n) in
  let fs = Gen.identical_length g ~n ~m:4 ~tau:Rat.one ~window:(2 * n) in
  let st = SM.Inc.make ~tau:Rat.one (Eedf.single_machine_jobs fs ~tau:Rat.one) in
  let jobs = SM.Inc.jobs st in
  let lo = Rat.of_int (2 * n * 3 / 4) and hi = Rat.of_int (2 * n) in
  let deltas =
    Array.init 16 (fun _ ->
        let r = Prng.rat_uniform g ~den:4 lo hi in
        (Prng.int g (n + 1), r, Rat.add r (Rat.of_int (4 + Prng.int g 8))))
  in
  (* Drop positions among the latest-release quarter of the resident
     jobs (recent arrivals). *)
  let by_release = Array.mapi (fun i (j : SM.job) -> (j.release, i)) jobs in
  Array.sort compare by_release;
  let tail = Stdlib.max 1 (n / 4) in
  let drops =
    Array.init 16 (fun _ -> snd by_release.(n - 1 - Prng.int g tail))
  in
  (st, jobs, deltas, drops)

let inc_add_case (st, _, deltas, _) =
  let i = ref 0 in
  fun () ->
    let at, r, d = deltas.(!i mod 16) in
    incr i;
    SM.Inc.solve (SM.Inc.add_task st ~at ~release:r ~deadline:d)

let inc_drop_case (st, _, _, drops) =
  let i = ref 0 in
  fun () ->
    let at = drops.(!i mod 16) in
    incr i;
    SM.Inc.solve (SM.Inc.remove_task st ~at)

(* The cost the warm path avoids: a from-scratch solve of the same
   one-task-edited job set through the indexed engine. *)
let inc_scratch_case (_, jobs, deltas, _) =
  let n = Array.length jobs in
  let i = ref 0 in
  fun () ->
    let at, r, d = deltas.(!i mod 16) in
    incr i;
    let edited =
      Array.init (n + 1) (fun k ->
          if k < at then { jobs.(k) with SM.id = k }
          else if k = at then { SM.id = k; release = r; deadline = d }
          else { jobs.(k - 1) with SM.id = k })
    in
    SM.schedule ~tau:Rat.one edited

(* End-to-end admission cost of one [Add] on a resident shop: the warm
   engine holds the committed solve's [Machine] handle (the O(delta)
   path), the cold engine holds the same committed shop with the handle
   stripped, so the identical request takes the full-solve path. *)
let serve_inc_setup n =
  let g = Prng.create (6000 + n) in
  let fs = Gen.identical_length g ~n ~m:2 ~tau:Rat.one ~window:(2 * n) in
  let submit =
    Admission.Submit { shop = "resident"; instance = Recurrence_shop.of_traditional fs }
  in
  let warm = fst (Admission.apply Admission.empty submit) in
  if Admission.warm_resident warm = 0 then
    failwith "serve_inc_setup: resident submit left no warm handle";
  let cold =
    match Admission.prepare Admission.empty submit with
    | Error _ -> failwith "serve_inc_setup: resident submit rejected"
    | Ok p ->
        let decision, _ = Admission.decide_prepared p in
        Admission.commit ~prepared:p ~state:None Admission.empty submit (Some decision)
  in
  let lo = Rat.of_int (2 * n * 3 / 4) and hi = Rat.of_int (2 * n) in
  let adds =
    Array.init 16 (fun _ ->
        let r = Prng.rat_uniform g ~den:4 lo hi in
        Admission.Add
          {
            shop = "resident";
            tasks = [ (r, Rat.add r (Rat.of_int (4 + Prng.int g 8)), Array.make 2 Rat.one) ];
          })
  in
  (warm, cold, adds)

let serve_inc_case engine adds =
  let i = ref 0 in
  fun () ->
    let req = adds.(!i mod 16) in
    incr i;
    Admission.apply engine req

(* Per-stage latency decomposition for the serve rows: replay the same
   request log through the batched pipeline with telemetry on and read
   the stage sketches.  Wall-clock and untimed-loop, so the numbers are
   indicative; the tracked regression signal stays [mean_us]. *)
let serve_stage_latencies n =
  let log = serve_log n in
  Obs.set_stats true;
  Obs.reset_metrics ();
  let config = { Batcher.default_config with Batcher.cache_capacity = 4096 } in
  ignore (Batcher.process_log (Batcher.create ~config ()) log);
  let stages =
    List.filter_map
      (fun (name, q) ->
        let prefix = "serve.stage." in
        let stage =
          if String.starts_with ~prefix name then
            Some (String.sub name (String.length prefix)
                    (String.length name - String.length prefix))
          else if name = "serve.e2e" then Some "e2e"
          else None
        in
        Option.map
          (fun s ->
            ( s,
              Quantile.quantile q 0.50,
              Quantile.quantile q 0.95,
              Quantile.quantile q 0.99 ))
          stage)
      (Obs.sketches ())
  in
  Obs.set_stats false;
  Obs.reset_metrics ();
  stages

(* {1 Harness} *)

let reps_for ~n ~base = Stdlib.max 1 (base / n)

let run_all ~small =
  let sizes = if small then [ 10; 100 ] else [ 10; 100; 1000; 5000 ] in
  let ref_cap = 1000 in
  let def_warmup = if small then 1 else 2 in
  let def_trials = if small then 3 else 7 in
  let rep_base = if small then 200 else 1000 in
  let case ?(warmup = def_warmup) ?(trials = def_trials) ?(stages = []) family n f =
    let reps = reps_for ~n ~base:rep_base in
    let mean_s = trimmed_mean ~warmup ~trials ~reps f in
    Printf.eprintf "%-12s n=%-5d %12.1f us/call\n%!" family n (mean_s *. 1e6);
    { family; n; mean_s; trials; reps; stages }
  in
  let rows = ref [] in
  let push r = rows := r :: !rows in
  List.iter
    (fun n ->
      let next = identical_pool n in
      push (case "eedf" n (eedf_case next));
      if n <= ref_cap then begin
        let next = identical_pool n in
        (* The cubic reference takes tens of seconds per call at
           n = 1000; a single warmup and three trials keep the full run
           bounded while the variance stays well under the 5x margin of
           interest. *)
        let warmup, trials = if n > 100 then (1, 3) else (def_warmup, def_trials) in
        push (case ~warmup ~trials "eedf_ref" n (eedf_ref_case next))
      end;
      push (case "algo_a" n (algo_a_case n));
      push (case "algo_h" n (algo_h_case n));
      push (case ~stages:(serve_stage_latencies n) "serve_admission" n (serve_case n));
      (* Incremental churn: the scratch row repeats a full solve per
         call, so the largest size runs with trimmed repetitions. *)
      let inc = inc_setup n in
      let warmup, trials = if n > 1000 then (1, 3) else (def_warmup, def_trials) in
      push (case ~warmup ~trials "inc_add" n (inc_add_case inc));
      push (case ~warmup ~trials "inc_drop" n (inc_drop_case inc));
      push (case ~warmup ~trials "inc_scratch" n (inc_scratch_case inc));
      let warm, cold, adds = serve_inc_setup n in
      push (case ~warmup ~trials "serve_admission_incremental" n (serve_inc_case warm adds));
      push (case ~warmup ~trials "serve_admission_scratch" n (serve_inc_case cold adds)))
    sizes;
  (List.rev !rows, sizes, ref_cap)

let speedups rows =
  List.filter_map
    (fun { family; n; mean_s; _ } ->
      if family <> "eedf_ref" then None
      else
        List.find_map
          (fun r ->
            if r.family = "eedf" && r.n = n && r.mean_s > 0. then
              Some (n, mean_s /. r.mean_s)
            else None)
          rows)
    rows

(* Warm single-task edits against the from-scratch solve of the same
   edited set; the reported ratio is the weaker of the add and drop
   speedups. *)
let inc_speedups rows =
  let mean family n =
    List.find_map
      (fun r -> if r.family = family && r.n = n then Some r.mean_s else None)
      rows
  in
  List.filter_map
    (fun { family; n; mean_s; _ } ->
      if family <> "inc_scratch" || mean_s <= 0. then None
      else
        match (mean "inc_add" n, mean "inc_drop" n) with
        | Some a, Some d when a > 0. && d > 0. ->
            Some (n, mean_s /. Float.max a d)
        | _ -> None)
    rows

let json_of rows sizes ref_cap ~small =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "{\"mode\":\"%s\",\"sizes\":[%s],\"eedf_ref_max_n\":%d,\"rows\":["
       (if small then "small" else "full")
       (String.concat "," (List.map string_of_int sizes))
       ref_cap);
  List.iteri
    (fun i { family; n; mean_s; trials; reps; stages } ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "{\"family\":\"%s\",\"n\":%d,\"mean_us\":%.3f,\"trials\":%d,\"reps\":%d"
           family n (mean_s *. 1e6) trials reps);
      if stages <> [] then begin
        Buffer.add_string buf ",\"stage_us\":{";
        List.iteri
          (fun j (stage, p50, p95, p99) ->
            if j > 0 then Buffer.add_char buf ',';
            Buffer.add_string buf
              (Printf.sprintf "\"%s\":{\"p50\":%.3f,\"p95\":%.3f,\"p99\":%.3f}" stage
                 (p50 *. 1e6) (p95 *. 1e6) (p99 *. 1e6)))
          stages;
        Buffer.add_char buf '}'
      end;
      Buffer.add_char buf '}')
    rows;
  Buffer.add_string buf "],\"speedup_eedf_vs_ref\":[";
  List.iteri
    (fun i (n, ratio) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "{\"n\":%d,\"ratio\":%.2f}" n ratio))
    (speedups rows);
  Buffer.add_string buf "],\"speedup_inc_vs_scratch\":[";
  List.iteri
    (fun i (n, ratio) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "{\"n\":%d,\"ratio\":%.2f}" n ratio))
    (inc_speedups rows);
  Buffer.add_string buf "]}";
  Buffer.contents buf

let () =
  let out = ref "BENCH_core.json" in
  let small = ref false in
  let rec parse = function
    | [] -> ()
    | "--out" :: path :: rest ->
        out := path;
        parse rest
    | "--trials" :: ("small" | "Small") :: rest ->
        small := true;
        parse rest
    | "--trials" :: ("full" | "Full") :: rest ->
        small := false;
        parse rest
    | arg :: _ ->
        Printf.eprintf "usage: core_bench [--out FILE] [--trials full|small] (got %S)\n" arg;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let rows, sizes, ref_cap = run_all ~small:!small in
  let json = json_of rows sizes ref_cap ~small:!small in
  Out_channel.with_open_text !out (fun oc ->
      Out_channel.output_string oc json;
      Out_channel.output_char oc '\n');
  List.iter
    (fun (n, ratio) -> Printf.printf "EEDF speedup vs reference at n=%d: %.1fx\n" n ratio)
    (speedups rows);
  List.iter
    (fun (n, ratio) ->
      Printf.printf "incremental speedup vs scratch at n=%d: %.1fx\n" n ratio)
    (inc_speedups rows);
  Printf.printf "wrote %s\n" !out
