(* Bechamel micro-benchmarks: one Test.make per reproduced table/figure
   workload, plus scaling and ablation benches.

   Run with: dune exec bench/main.exe
   Pass `--metrics FILE` to also append one JSONL record per bench.
   Pass `--jobs N` to also time the fig9/fig10 Monte Carlo sweeps
   sequentially and on N domains and print the speedups.
   Pass `--parallel FILE` to write those sweep timings as JSON to FILE
   (skipping the bechamel micro-benches). *)

open Bechamel
open Toolkit
module Rat = E2e_rat.Rat
module Prng = E2e_prng.Prng
module Flow_shop = E2e_model.Flow_shop
module Recurrence_shop = E2e_model.Recurrence_shop
module Periodic_shop = E2e_model.Periodic_shop
module Eedf = E2e_core.Eedf
module Algo_r = E2e_core.Algo_r
module Algo_a = E2e_core.Algo_a
module Algo_h = E2e_core.Algo_h
module List_edf = E2e_baselines.List_edf
module Johnson = E2e_baselines.Johnson
module Gen = E2e_workload.Feasible_gen
module Paper = E2e_workload.Paper_instances
module Analysis = E2e_periodic.Analysis
module Pipeline_sim = E2e_sim.Pipeline_sim

(* Pre-generated instance pools so the benches time the algorithms, not
   the generator.  Each call cycles through its pool. *)
let pool ~seed ~count f =
  let g = Prng.create seed in
  let instances = Array.init count (fun _ -> f g) in
  let i = ref 0 in
  fun () ->
    let x = instances.(!i mod count) in
    incr i;
    x

let fig_pool ~seed ~n ~m ~stdev ~slack =
  pool ~seed ~count:64 (fun g ->
      Gen.generate g
        { Gen.n_tasks = n; n_processors = m; mean_tau = 1.0; stdev; slack_factor = slack })

(* One bench per paper artifact. *)

let bench_table1 =
  let shop = Paper.table1 () in
  Test.make ~name:"table1: Algorithm R (4 tasks, loop)"
    (Staged.stage (fun () -> Algo_r.schedule shop))

let bench_table2 =
  let shop = Paper.table2 () in
  Test.make ~name:"table2: Algorithm A (4x4 homogeneous)"
    (Staged.stage (fun () -> Algo_a.schedule shop))

let bench_table3 =
  let shop = Paper.table3 () in
  Test.make ~name:"table3: Algorithm H + compaction (5x4)"
    (Staged.stage (fun () -> Algo_h.schedule shop))

let bench_fig9a =
  let next = fig_pool ~seed:101 ~n:4 ~m:4 ~stdev:0.5 ~slack:0.8 in
  Test.make ~name:"fig9a point: Algorithm H (4x4)"
    (Staged.stage (fun () -> Algo_h.schedule (next ())))

let bench_fig9b =
  let next = fig_pool ~seed:102 ~n:6 ~m:4 ~stdev:0.5 ~slack:0.8 in
  Test.make ~name:"fig9b point: Algorithm H (6x4)"
    (Staged.stage (fun () -> Algo_h.schedule (next ())))

let bench_fig10 =
  let next = fig_pool ~seed:103 ~n:10 ~m:4 ~stdev:0.5 ~slack:4.0 in
  Test.make ~name:"fig10 point: Algorithm H (10x4)"
    (Staged.stage (fun () -> Algo_h.schedule (next ())))

let bench_table4 =
  let sys = Paper.table4 () in
  Test.make ~name:"table4: periodic analysis (3 jobs, 2 procs)"
    (Staged.stage (fun () -> Analysis.analyse sys))

let bench_table4_sim =
  let sys = Paper.table4 () in
  let deltas =
    match Analysis.analyse sys with
    | Analysis.Schedulable { deltas; _ } | Analysis.Schedulable_postponed { deltas; _ } -> deltas
    | Analysis.Not_schedulable _ -> assert false
  in
  Test.make ~name:"table4: pipeline simulation (1 hyperperiod)"
    (Staged.stage (fun () ->
         Pipeline_sim.simulate
           ~horizon:(Rat.to_float (Periodic_shop.hyperperiod sys))
           ~policy:(`Postponed_phases deltas) sys))

let bench_table5 =
  let sys = Paper.table5 () in
  Test.make ~name:"table5: periodic analysis (2 jobs, 2 procs)"
    (Staged.stage (fun () -> Analysis.analyse sys))

(* Scaling benches: the O(n^2)-region EEDF machinery under growing n. *)

let bench_eedf_scaling n =
  let next =
    pool ~seed:(200 + n) ~count:16 (fun g ->
        Gen.identical_length g ~n ~m:4 ~tau:Rat.one ~window:(2 * n))
  in
  Test.make ~name:(Printf.sprintf "EEDF identical-length n=%d" n)
    (Staged.stage (fun () -> Eedf.schedule (next ())))

let bench_algo_a_scaling n =
  let next =
    pool ~seed:(300 + n) ~count:16 (fun g -> Gen.homogeneous g ~n ~m:4 ~max_tau:3 ~window:(2 * n))
  in
  Test.make ~name:(Printf.sprintf "Algorithm A homogeneous n=%d" n)
    (Staged.stage (fun () -> Algo_a.schedule (next ())))

let bench_algo_h_scaling n =
  let next = fig_pool ~seed:(400 + n) ~n ~m:4 ~stdev:0.5 ~slack:1.0 in
  Test.make ~name:(Printf.sprintf "Algorithm H arbitrary n=%d" n)
    (Staged.stage (fun () -> Algo_h.schedule (next ())))

(* Ablation benches. *)

let bench_h_no_compaction =
  let next = fig_pool ~seed:500 ~n:6 ~m:4 ~stdev:0.5 ~slack:0.8 in
  Test.make ~name:"ablation: H without compaction (6x4)"
    (Staged.stage (fun () -> (Algo_h.run ~compact:false (next ())).Algo_h.result))

let bench_list_edf =
  let next = fig_pool ~seed:501 ~n:6 ~m:4 ~stdev:0.5 ~slack:0.8 in
  Test.make ~name:"ablation: greedy list-EDF (6x4)"
    (Staged.stage (fun () -> List_edf.schedule (Recurrence_shop.of_traditional (next ()))))

let bench_johnson =
  let next =
    pool ~seed:502 ~count:64 (fun g ->
        let far = Rat.of_int 1_000_000 in
        let shop = Gen.arbitrary g ~n:20 ~m:2 ~max_tau:3 ~window:0 in
        Flow_shop.of_params
          (Array.map
             (fun (t : E2e_model.Task.t) -> (Rat.zero, far, t.proc_times))
             shop.Flow_shop.tasks))
  in
  Test.make ~name:"baseline: Johnson's rule (20x2)"
    (Staged.stage (fun () -> Johnson.makespan (next ())))

(* Extension benches. *)

let bench_portfolio =
  let next = fig_pool ~seed:503 ~n:6 ~m:4 ~stdev:0.5 ~slack:0.8 in
  Test.make ~name:"extension: H portfolio (6x4)"
    (Staged.stage (fun () -> E2e_core.H_portfolio.schedule (next ())))

let bench_infeasibility =
  let next = fig_pool ~seed:504 ~n:10 ~m:4 ~stdev:0.5 ~slack:0.5 in
  Test.make ~name:"extension: infeasibility certificates (10x4)"
    (Staged.stage (fun () -> E2e_core.Infeasibility.check (next ())))

let bench_branch_bound =
  let next = fig_pool ~seed:505 ~n:4 ~m:3 ~stdev:0.4 ~slack:0.6 in
  Test.make ~name:"baseline: branch&bound exact (4x3)"
    (Staged.stage (fun () -> E2e_baselines.Branch_bound.solve ~budget:50_000 (next ())))

let bench_rta =
  let g = Prng.create 506 in
  let systems = Array.init 32 (fun _ -> Gen.periodic g ~n:5 ~m:3 ~utilization:0.4) in
  let i = ref 0 in
  Test.make ~name:"extension: exact RTA (5 jobs, 3 procs)"
    (Staged.stage (fun () ->
         incr i;
         E2e_periodic.Response_time.analyse systems.(!i mod 32)))

let bench_preemptive =
  let next = fig_pool ~seed:507 ~n:6 ~m:4 ~stdev:0.5 ~slack:0.8 in
  Test.make ~name:"extension: preemptive EDF dispatch (6x4)"
    (Staged.stage (fun () ->
         E2e_sim.Preemptive_flow_sim.run (Recurrence_shop.of_traditional (next ()))))

let bench_local_search =
  let next = fig_pool ~seed:508 ~n:6 ~m:4 ~stdev:0.5 ~slack:0.8 in
  Test.make ~name:"baseline: local search (6x4)"
    (Staged.stage (fun () -> E2e_baselines.Local_search.schedule (next ())))

let bench_dispatcher =
  let shop = Paper.table2 () in
  let s = match Algo_a.schedule shop with Ok s -> s | Error _ -> assert false in
  let actual = E2e_sim.Dispatcher.scale_durations s ~factor:(Rat.make 4 5) in
  Test.make ~name:"extension: work-conserving dispatch replay"
    (Staged.stage (fun () -> E2e_sim.Dispatcher.run E2e_sim.Dispatcher.Work_conserving s ~actual))

let tests =
  Test.make_grouped ~name:"e2e_sched"
    [
      bench_table1;
      bench_table2;
      bench_table3;
      bench_fig9a;
      bench_fig9b;
      bench_fig10;
      bench_table4;
      bench_table4_sim;
      bench_table5;
      bench_eedf_scaling 10;
      bench_eedf_scaling 50;
      bench_eedf_scaling 100;
      bench_algo_a_scaling 10;
      bench_algo_a_scaling 50;
      bench_algo_a_scaling 100;
      bench_algo_h_scaling 10;
      bench_algo_h_scaling 25;
      bench_algo_h_scaling 50;
      bench_h_no_compaction;
      bench_list_edf;
      bench_johnson;
      bench_portfolio;
      bench_infeasibility;
      bench_branch_bound;
      bench_rta;
      bench_preemptive;
      bench_local_search;
      bench_dispatcher;
    ]

(* Minimal argv parsing: `--metrics FILE`, `--jobs N`, `--parallel FILE`. *)
let argv_value key =
  let rec find = function
    | k :: v :: _ when String.equal k key -> Some v
    | _ :: rest -> find rest
    | [] -> None
  in
  find (Array.to_list Sys.argv)

let metrics_file () = argv_value "--metrics"
let parallel_file () = argv_value "--parallel"

let jobs_arg () =
  match argv_value "--jobs" with
  | None -> None
  | Some v -> (
      match int_of_string_opt v with
      | Some n when n >= 1 -> Some n
      | _ -> failwith (Printf.sprintf "bench: --jobs expects a positive integer, got %S" v))

(* Wall-clock timing of the full Monte Carlo sweeps, sequential vs on
   [jobs] domains.  The sweeps render to a null formatter so the timing
   covers generation + scheduling + aggregation, not terminal I/O; trial
   counts are reduced so the whole section stays in the seconds range.
   Output is byte-identical either way (per-trial PRNG streams), so the
   pair is a pure like-for-like speedup measurement. *)
let null_ppf = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ())

let sweep_benches : (string * (jobs:int -> unit)) list =
  let module E = E2e_experiments.Experiments in
  [
    ( "fig9a",
      fun ~jobs -> E.fig9a ~sweep:{ E.default_fig9a with E.trials = 150 } ~jobs null_ppf );
    ( "fig9b",
      fun ~jobs -> E.fig9b ~sweep:{ E.default_fig9b with E.trials = 150 } ~jobs null_ppf );
    ( "fig10",
      fun ~jobs -> E.fig10 ~sweep:{ E.default_fig10 with E.trials = 100 } ~jobs null_ppf );
  ]

let time f =
  let t0 = Unix.gettimeofday () in
  f ();
  Unix.gettimeofday () -. t0

let run_sweep_benches ~jobs =
  List.map
    (fun (name, run) ->
      let seq_s = time (fun () -> run ~jobs:1) in
      let par_s = time (fun () -> run ~jobs) in
      (name, seq_s, par_s))
    sweep_benches

let print_sweep_rows ~jobs rows =
  Format.printf "@.%-45s %9s %9s %9s@."
    (Printf.sprintf "sweep (sequential vs %d domains)" jobs)
    "seq" "par" "speedup";
  Format.printf "%s@." (String.make 76 '-');
  List.iter
    (fun (name, seq_s, par_s) ->
      Format.printf "%-45s %8.2fs %8.2fs %8.2fx@." name seq_s par_s (seq_s /. par_s))
    rows

let write_parallel_json path ~jobs rows =
  let module Json = E2e_obs.Json in
  let record =
    Json.Obj
      [
        ("jobs", Json.Num (float_of_int jobs));
        ( "sweeps",
          Json.Obj
            (List.map
               (fun (name, seq_s, par_s) ->
                 ( name,
                   Json.Obj
                     [
                       ("seq_s", Json.Num seq_s);
                       ("par_s", Json.Num par_s);
                       ("speedup", Json.Num (seq_s /. par_s));
                     ] ))
               rows) );
      ]
  in
  let oc = open_out path in
  output_string oc (Json.to_string record);
  output_char oc '\n';
  close_out oc

let append_metrics path rows =
  let module Json = E2e_obs.Json in
  let oc = open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path in
  List.iter
    (fun (name, ns) ->
      output_string oc
        (Json.to_string (Json.Obj [ ("bench", Json.Str name); ("ns_per_run", Json.Num ns) ]));
      output_char oc '\n')
    rows;
  close_out oc

let run_micro_benches () =
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns = match Analyze.OLS.estimates ols with Some (x :: _) -> x | _ -> nan in
        (name, ns) :: acc)
      results []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  Format.printf "%-45s %15s@." "benchmark" "time/run";
  Format.printf "%s@." (String.make 62 '-');
  List.iter
    (fun (name, ns) ->
      let pretty =
        if Float.is_nan ns then "n/a"
        else if ns > 1e9 then Printf.sprintf "%8.2f  s" (ns /. 1e9)
        else if ns > 1e6 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
        else if ns > 1e3 then Printf.sprintf "%8.2f us" (ns /. 1e3)
        else Printf.sprintf "%8.0f ns" ns
      in
      Format.printf "%-45s %15s@." name pretty)
    rows;
  match metrics_file () with None -> () | Some path -> append_metrics path rows

let () =
  match parallel_file () with
  | Some path ->
      (* Parallel-speedup mode: sweep timings only, written as JSON. *)
      let jobs =
        match jobs_arg () with Some n -> n | None -> E2e_exec.Pool.recommended_jobs ()
      in
      let rows = run_sweep_benches ~jobs in
      print_sweep_rows ~jobs rows;
      write_parallel_json path ~jobs rows;
      Format.printf "wrote %s@." path
  | None -> (
      run_micro_benches ();
      (* With `--jobs N` the micro-bench table is followed by the
         sequential-vs-parallel sweep comparison. *)
      match jobs_arg () with
      | Some jobs when jobs > 1 -> print_sweep_rows ~jobs (run_sweep_benches ~jobs)
      | _ -> ())
