(* e2e-trace: offline analysis of the serve request-trace JSONL stream.

   e2e-trace analyze trace.jsonl            # per-stage + e2e percentiles
   e2e-trace analyze trace.jsonl --top 10   # widen the slowest-request table
   e2e-trace chrome trace.jsonl --out t.json --from-id 10 --to-id 40

   The input is what `e2e-loadgen --trace` / `e2e-serve --trace` write:
   one record per pipeline stage per request plus a closing "done"
   record (schema in Rtrace).  Every record is validated (stage order,
   non-negative durations, stage sums tiling the end-to-end latency)
   before anything is reported; the analyze output is a deterministic
   function of the trace bytes, so `make check` diffs it against a
   committed golden summary. *)

open Cmdliner
module Json = E2e_obs.Json
module Quantile = E2e_obs.Quantile
module Rtrace = E2e_serve.Rtrace
module Schema = Rtrace.Schema

let n_stages = Rtrace.n_stages

type request = {
  id : int;
  op : string;
  shop : string;
  verdict : string;
  e2e : float;
  stage_durs : float array;
}

(* Read, parse and validate the whole trace; exits with a message on the
   first malformed record. *)
let load path =
  let ic = open_in path in
  let v = Schema.validator () in
  let records = ref [] in
  let line_no = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr line_no;
       if String.trim line <> "" then begin
         match Json.of_string line with
         | Error msg ->
             Printf.eprintf "%s:%d: invalid JSON: %s\n" path !line_no msg;
             exit 1
         | Ok j -> (
             match Schema.of_json j with
             | Error msg ->
                 Printf.eprintf "%s:%d: %s\n" path !line_no msg;
                 exit 1
             | Ok None -> ()
             | Ok (Some r) -> (
                 match Schema.feed v r with
                 | Error msg ->
                     Printf.eprintf "%s:%d: %s\n" path !line_no msg;
                     exit 1
                 | Ok () -> records := r :: !records))
       end
     done
   with End_of_file -> ());
  close_in ic;
  (match Schema.check_closed v with
  | Ok () -> ()
  | Error msg ->
      Printf.eprintf "%s: %s\n" path msg;
      exit 1);
  if Schema.completed v = 0 then begin
    Printf.eprintf "%s: no request-trace records\n" path;
    exit 1
  end;
  List.rev !records

(* Group the validated records into one entry per request, in first-
   appearance (i.e. submission) order. *)
let requests_of records =
  let tbl = Hashtbl.create 256 in
  let order = ref [] in
  List.iter
    (fun (r : Schema.record) ->
      let entry =
        match Hashtbl.find_opt tbl r.id with
        | Some e -> e
        | None ->
            let e =
              {
                id = r.id;
                op = r.op;
                shop = r.shop;
                verdict = "";
                e2e = 0.;
                stage_durs = Array.make n_stages 0.;
              }
            in
            Hashtbl.add tbl r.id e;
            order := r.id :: !order;
            e
      in
      if r.seq < n_stages then entry.stage_durs.(r.seq) <- r.dur
      else begin
        let entry =
          { entry with e2e = r.dur; verdict = Option.value ~default:"" r.verdict }
        in
        Hashtbl.replace tbl r.id entry
      end)
    records;
  List.rev_map (fun id -> Hashtbl.find tbl id) !order |> List.rev

let ms x = x *. 1000.

let analyze path top =
  let records = load path in
  let requests = requests_of records in
  let n = List.length requests in
  (* Stage and end-to-end sketches plus exact totals. *)
  let sketches = Array.init n_stages (fun _ -> Quantile.create ()) in
  let e2e = Quantile.create () in
  let count_by f =
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun r ->
        let k = f r in
        Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
      requests;
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare
  in
  List.iter
    (fun r ->
      Array.iteri (fun i d -> Quantile.observe sketches.(i) d) r.stage_durs;
      Quantile.observe e2e r.e2e)
    requests;
  let counts l = String.concat " " (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) l) in
  Printf.printf "trace         %d requests (%s)\n" n (counts (count_by (fun r -> r.op)));
  Printf.printf "verdicts      %s\n" (counts (count_by (fun r -> r.verdict)));
  Printf.printf "%-14s %7s %10s %10s %10s %10s %12s\n" "stage" "count" "p50ms" "p95ms"
    "p99ms" "maxms" "totalms";
  Array.iteri
    (fun i q ->
      Printf.printf "%-14s %7d %10.3f %10.3f %10.3f %10.3f %12.3f\n" Rtrace.stages.(i)
        (Quantile.count q)
        (ms (Quantile.quantile q 0.50))
        (ms (Quantile.quantile q 0.95))
        (ms (Quantile.quantile q 0.99))
        (ms (Quantile.max_value q))
        (ms (Quantile.sum q)))
    sketches;
  Printf.printf "%-14s %7d %10.3f %10.3f %10.3f %10.3f %12.3f\n" "end-to-end"
    (Quantile.count e2e)
    (ms (Quantile.quantile e2e 0.50))
    (ms (Quantile.quantile e2e 0.95))
    (ms (Quantile.quantile e2e 0.99))
    (ms (Quantile.max_value e2e))
    (ms (Quantile.sum e2e));
  Printf.printf "consistency   stage durations tile end-to-end latency for all %d requests\n"
    n;
  (* Slowest requests, stage-decomposed.  Ties break on request id so
     the listing is deterministic. *)
  let slowest =
    List.sort
      (fun a b -> match compare b.e2e a.e2e with 0 -> compare a.id b.id | c -> c)
      requests
  in
  let top = min top n in
  Printf.printf "slowest %d requests\n" top;
  Printf.printf "%5s %-7s %-8s %-9s %9s  %s\n" "id" "op" "shop" "verdict" "e2ems"
    "stages(ms)";
  List.iteri
    (fun i r ->
      if i < top then
        Printf.printf "%5d %-7s %-8s %-9s %9.3f  %s\n" r.id r.op r.shop r.verdict
          (ms r.e2e)
          (String.concat " "
             (Array.to_list
                (Array.mapi
                   (fun j d -> Printf.sprintf "%s=%.3f" Rtrace.stages.(j) (ms d))
                   r.stage_durs))))
    slowest

(* Chrome trace_event export: one complete ("X") event per stage per
   request in the selected id window, one track (tid) per request. *)
let chrome path out from_id to_id =
  let records = load path in
  let keep (r : Schema.record) = r.id >= from_id && r.id <= to_id in
  let events =
    List.filter_map
      (fun (r : Schema.record) ->
        if (not (keep r)) || r.seq >= n_stages then None
        else
          Some
            (Json.Obj
               [
                 ("name", Json.Str r.stage);
                 ("cat", Json.Str "serve");
                 ("ph", Json.Str "X");
                 ("pid", Json.int 1);
                 ("tid", Json.int r.id);
                 ("ts", Json.Num ((r.t -. r.dur) *. 1e6));
                 ("dur", Json.Num (r.dur *. 1e6));
                 ( "args",
                   Json.Obj [ ("op", Json.Str r.op); ("shop", Json.Str r.shop) ] );
               ])
        )
      records
  in
  if events = [] then begin
    Printf.eprintf "%s: no stage records with id in [%d, %d]\n" path from_id to_id;
    exit 1
  end;
  Out_channel.with_open_text out (fun oc ->
      output_string oc "[";
      List.iteri
        (fun i e ->
          if i > 0 then output_string oc ",\n";
          output_string oc (Json.to_string e))
        events;
      output_string oc "]\n");
  Printf.printf "wrote %s (%d events)\n" out (List.length events)

let file_arg =
  let doc = "JSONL request-trace file (from e2e-loadgen/e2e-serve --trace)." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)

let top_arg =
  let doc = "How many of the slowest requests to decompose." in
  Arg.(value & opt int 5 & info [ "top" ] ~docv:"K" ~doc)

let out_arg =
  let doc = "Output file for the Chrome trace_event JSON." in
  Arg.(required & opt (some string) None & info [ "out" ] ~docv:"FILE" ~doc)

let from_arg =
  let doc = "First request id of the export window." in
  Arg.(value & opt int 1 & info [ "from-id" ] ~docv:"N" ~doc)

let to_arg =
  let doc = "Last request id of the export window." in
  Arg.(value & opt int max_int & info [ "to-id" ] ~docv:"N" ~doc)

let analyze_cmd =
  let doc = "Per-stage and end-to-end latency percentiles, plus the slowest requests" in
  Cmd.v (Cmd.info "analyze" ~doc) Term.(const analyze $ file_arg $ top_arg)

let chrome_cmd =
  let doc =
    "Export a request-id window as Chrome trace_event JSON (one track per request), \
     loadable in Perfetto / chrome://tracing"
  in
  Cmd.v (Cmd.info "chrome" ~doc)
    Term.(const chrome $ file_arg $ out_arg $ from_arg $ to_arg)

let () =
  let doc = "Analyse end-to-end request traces of the e2e-serve pipeline" in
  let info = Cmd.info "e2e-trace" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ analyze_cmd; chrome_cmd ]))
