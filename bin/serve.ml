(* Admission-control scheduling service front end.

   e2e-serve --stdio < requests.txt          # pipelined replay transport
   e2e-serve --tcp 7070 -j 4 --cache 1024    # concurrent TCP server

   One request per line in, one reply per request out (see the Protocol
   module / README "Serving" for the grammar).  The engine layers are
   deterministic: the same request stream produces a byte-identical
   reply stream at any -j value; over TCP the guarantee is
   per-connection (connections on disjoint shop namespaces). *)

open Cmdliner
module Batcher = E2e_serve.Batcher
module Server = E2e_serve.Server
module Admission = E2e_serve.Admission
module Pool = E2e_exec.Pool
module Obs = E2e_obs.Obs
module Json = E2e_obs.Json

let stdio_arg =
  let doc = "Serve one session over stdin/stdout (the default transport)." in
  Arg.(value & flag & info [ "stdio" ] ~doc)

let tcp_arg =
  let doc = "Serve TCP connections on $(docv) (default transport: stdin/stdout)." in
  Arg.(value & opt (some int) None & info [ "tcp" ] ~docv:"PORT" ~doc)

let host_arg =
  let doc = "Address or hostname to bind the TCP listener to." in
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"ADDR" ~doc)

let max_conns_arg =
  let doc = "Stop the TCP accept pool after $(docv) total connections (for scripted runs)." in
  Arg.(value & opt (some int) None & info [ "max-connections" ] ~docv:"N" ~doc)

let accept_pool_arg =
  let doc = "Reader domains in the TCP accept pool — the number of simultaneous connections." in
  Arg.(value & opt int 4 & info [ "accept-pool" ] ~docv:"N" ~doc)

let window_arg =
  let doc = "Pipelined replies buffered per TCP connection before the reader blocks." in
  Arg.(value & opt int 64 & info [ "window" ] ~docv:"N" ~doc)

let drainers_arg =
  let doc =
    "Drainer stripes for the TCP transport: the queue is sharded by shop (same shop, same \
     stripe) and one drainer domain steps each stripe's batcher.  Per-connection reply \
     streams are byte-identical at every value.  Requires --tcp."
  in
  Arg.(value & opt int 1 & info [ "drainers"; "stripes" ] ~docv:"N" ~doc)

let queue_arg =
  let doc = "Pending-request queue bound; submissions past it are answered $(b,overloaded)." in
  Arg.(value & opt int Batcher.default_config.Batcher.queue_capacity
       & info [ "queue" ] ~docv:"N" ~doc)

let batch_arg =
  let doc = "Maximum requests per batch (and the stdio pipelining depth)." in
  Arg.(value & opt int Batcher.default_config.Batcher.batch & info [ "batch" ] ~docv:"N" ~doc)

let cache_arg =
  let doc = "Canonical solver-cache capacity in entries; $(b,0) disables the cache." in
  Arg.(value & opt int Batcher.default_config.Batcher.cache_capacity
       & info [ "cache"; "cache-capacity" ] ~docv:"N" ~doc)

let budget_arg =
  let doc =
    "Per-request deterministic solve budget: portfolio strategies attempted after Algorithm \
     H fails.  Unbounded when omitted."
  in
  Arg.(value & opt (some int) None & info [ "budget" ] ~docv:"N" ~doc)

let jobs_arg =
  let doc =
    "Worker domains each batch's solves fan out over.  Defaults to $(b,E2E_JOBS) (capped at \
     the runtime's recommended domain count) or 1.  Replies are byte-identical for every \
     value."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let no_schedules_arg =
  let doc = "Omit the $(b,schedule=) field from admitted replies." in
  Arg.(value & flag & info [ "no-schedules" ] ~doc)

let stats_arg =
  let doc = "Print telemetry counters to stderr on exit." in
  Arg.(value & flag & info [ "stats" ] ~doc)

let metrics_arg =
  let doc = "Write one JSON object with every telemetry counter/gauge/histogram to $(docv)." in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let register_arg =
  let doc =
    "Register this shard with an e2e-dispatch front end at $(docv) (host:port) once the \
     TCP listener is ready, via the $(b,ctl/1) control protocol, and deregister on clean \
     exit.  Requires --tcp."
  in
  Arg.(value & opt (some string) None & info [ "register" ] ~docv:"ADDR" ~doc)

let advertise_arg =
  let doc =
    "Address to register as (what the dispatcher should connect back to).  Defaults to \
     the bound host:port — override when the shard is reached through a different \
     address than it binds."
  in
  Arg.(value & opt (some string) None & info [ "advertise" ] ~docv:"ADDR" ~doc)

let trace_arg =
  let doc =
    "Write one JSONL request-trace record per pipeline stage per request to $(docv) \
     (analyse with e2e-trace).  Replies are unaffected: the reply stream is byte-identical \
     with tracing on or off."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

(* Shard-side registration: one ctl/1 round-trip against the dispatcher
   when the listener comes up, another on clean exit.  Best-effort — a
   shard that cannot reach its dispatcher still serves direct clients,
   and the dispatcher's status checker would discover a vanished shard
   anyway. *)
let ctl_rpc ~register line =
  match E2e_cluster.Registry.parse_id register with
  | None ->
      Printf.eprintf "e2e-serve: bad --register address %S (want host:port)\n%!" register
  | Some (host, port) -> (
      match E2e_cluster.Health.rpc ~host ~port [ line ] with
      | Ok [ reply ] -> Printf.eprintf "e2e-serve: %s -> %s\n%!" line reply
      | Ok _ -> ()
      | Error e -> Printf.eprintf "e2e-serve: %s failed: %s\n%!" line e)

let run stdio tcp host max_conns accept_pool window drainers queue batch cache budget jobs
    no_schedules stats metrics trace register advertise =
  if stdio && tcp <> None then begin
    prerr_endline "e2e-serve: --stdio and --tcp are mutually exclusive";
    exit 2
  end;
  if register <> None && tcp = None then begin
    prerr_endline "e2e-serve: --register requires --tcp";
    exit 2
  end;
  if drainers < 1 then begin
    prerr_endline "e2e-serve: --drainers must be >= 1";
    exit 2
  end;
  if drainers > 1 && tcp = None then begin
    prerr_endline "e2e-serve: --drainers requires --tcp";
    exit 2
  end;
  let jobs = Pool.resolve_jobs jobs in
  if stats || metrics <> None then begin
    Obs.set_stats true;
    Obs.reset_metrics ()
  end;
  let budget =
    match budget with None -> Admission.Unbounded | Some k -> Admission.Strategies k
  in
  let config =
    { Batcher.queue_capacity = queue; batch; budget; jobs; cache_capacity = cache }
  in
  let schedules = not no_schedules in
  let trace_oc =
    match trace with
    | None -> None
    | Some path ->
        let oc = Out_channel.open_text path in
        E2e_serve.Rtrace.set_writer
          (Some
             (fun line ->
               Out_channel.output_string oc line;
               Out_channel.output_char oc '\n'));
        Some oc
  in
  (match tcp with
  | None -> Server.serve_stdio ~schedules (Batcher.create ~config ())
  | Some port ->
      let advertised = ref None in
      let ready p =
        Printf.eprintf "e2e-serve: listening on %s:%d\n%!" host p;
        match register with
        | None -> ()
        | Some r ->
            let addr =
              match advertise with
              | Some a -> a
              | None -> E2e_cluster.Registry.id_of ~host ~port:p
            in
            advertised := Some addr;
            ctl_rpc ~register:r (Printf.sprintf "ctl/1 register %s" addr)
      in
      Server.serve_tcp ~schedules ~host ?max_connections:max_conns ~accept_pool ~window
        ~ready ~port
        (E2e_serve.Stripes.create ~config ~stripes:drainers ());
      match (register, !advertised) with
      | Some r, Some addr -> ctl_rpc ~register:r (Printf.sprintf "ctl/1 deregister %s" addr)
      | _ -> ());
  (match trace_oc with
  | None -> ()
  | Some oc ->
      E2e_serve.Rtrace.set_writer None;
      Out_channel.close oc);
  (match metrics with
  | None -> ()
  | Some path ->
      Out_channel.with_open_text path (fun oc ->
          output_string oc (Json.to_string (Obs.metrics_json ()));
          output_char oc '\n'));
  if stats then Format.eprintf "%a@." Obs.pp_metrics ()

let () =
  let doc = "Online admission-control scheduling service over flow-shop workloads" in
  let info = Cmd.info "e2e-serve" ~version:"1.0.0" ~doc in
  let term =
    Term.(
      const run $ stdio_arg $ tcp_arg $ host_arg $ max_conns_arg $ accept_pool_arg
      $ window_arg $ drainers_arg $ queue_arg $ batch_arg $ cache_arg
      $ budget_arg $ jobs_arg $ no_schedules_arg $ stats_arg $ metrics_arg $ trace_arg
      $ register_arg $ advertise_arg)
  in
  exit (Cmd.eval (Cmd.v info term))
