(* Load generator for the admission service.

   e2e-loadgen --requests 2000 --seed 42 -j 4 --out BENCH_serve.json
   e2e-loadgen --connect 127.0.0.1:7070 --requests 500 --connections 4
   e2e-loadgen --self-serve --connections 8 --pipeline 16 --requests 2000

   Replays a Prng-seeded request stream — submits of fresh task sets,
   permuted resubmissions (canonical-cache exercisers), incremental
   adds, queries and drops — against an in-process Batcher (default;
   measures the engine itself), over TCP against a running e2e-serve
   (--connect), or against an in-process concurrent TCP server on an
   ephemeral port (--self-serve; measures the whole transport).  TCP
   modes replay over --connections parallel client domains, each
   closed-loop with up to --pipeline requests in flight (open-loop
   with exponential arrivals when --rate is set), on disjoint
   per-connection shop namespaces so every connection's reply log is
   deterministic.  Reports throughput, latency percentiles and the
   cache hit rate, optionally as a JSON file (`make bench-serve`
   writes BENCH_serve.json, including a connections x batch
   saturation sweep). *)

open Cmdliner
module Rat = E2e_rat.Rat
module Prng = E2e_prng.Prng
module Task = E2e_model.Task
module Recurrence_shop = E2e_model.Recurrence_shop
module Feasible_gen = E2e_workload.Feasible_gen
module Admission = E2e_serve.Admission
module Batcher = E2e_serve.Batcher
module Cache = E2e_serve.Cache
module Protocol = E2e_serve.Protocol
module Rtrace = E2e_serve.Rtrace
module Server = E2e_serve.Server
module Pool = E2e_exec.Pool
module Obs = E2e_obs.Obs
module Json = E2e_obs.Json
module Quantile = E2e_obs.Quantile

(* ------------------------------------------------------------------ *)
(* Request-stream generation: a pure function of the seed.            *)

let gen_instance g =
  let n = 3 + Prng.int g 4 and m = 3 + Prng.int g 2 in
  Recurrence_shop.of_traditional
    (Feasible_gen.generate g
       { Feasible_gen.n_tasks = n; n_processors = m; mean_tau = 1.0; stdev = 0.5;
         slack_factor = 1.0 +. Prng.float g 1.0 })

(* Same instance, tasks relabelled: a canonical-cache hit that is not a
   textual repeat. *)
let permute g (shop : Recurrence_shop.t) =
  let order = Prng.permutation g (Recurrence_shop.n_tasks shop) in
  let tasks =
    Array.mapi
      (fun p orig ->
        let t = shop.Recurrence_shop.tasks.(orig) in
        Task.make ~id:p ~release:t.release ~deadline:t.deadline ~proc_times:t.proc_times)
      order
  in
  Recurrence_shop.make ~visit:shop.visit tasks

(* [cid] derives an independent per-connection stream on a disjoint
   shop namespace ([c<cid>-s<k>] instead of [s<k>]): an admission
   decision reads only its own shop's committed set, so each
   connection's replies are a pure function of its own stream — the
   invariant behind the concurrent transport's per-connection
   determinism checks.  Without [cid] the stream is byte-identical to
   what this generator always produced. *)
let gen_stream ?cid ~seed ~requests () =
  let g, prefix =
    match cid with
    | None -> (Prng.create seed, "s")
    | Some c -> (Prng.of_path [| seed; 0x10ad; c |], Printf.sprintf "c%d-s" c)
  in
  let submitted = ref [] (* (shop, instance), most recent first *) in
  let fresh = ref 0 in
  let fresh_shop () =
    incr fresh;
    Printf.sprintf "%s%d" prefix !fresh
  in
  let pick_shop g =
    match !submitted with
    | [] -> None
    | l -> Some (List.nth l (Prng.int g (List.length l)))
  in
  List.init requests (fun _ ->
      let p = Prng.float g 1.0 in
      if p < 0.40 || !submitted = [] then begin
        let shop = fresh_shop () and instance = gen_instance g in
        submitted := (shop, instance) :: !submitted;
        Admission.Submit { shop; instance }
      end
      else if p < 0.55 then begin
        (* Resubmit a permutation of an earlier set under a new name. *)
        let _, earlier = Option.get (pick_shop g) in
        let shop = fresh_shop () and instance = permute g earlier in
        submitted := (shop, instance) :: !submitted;
        Admission.Submit { shop; instance }
      end
      else if p < 0.65 then begin
        (* Exact resubmission under a new name: the common "same client,
           new session" pattern the structural keyer short-circuits. *)
        let _, earlier = Option.get (pick_shop g) in
        let shop = fresh_shop () in
        submitted := (shop, earlier) :: !submitted;
        Admission.Submit { shop; instance = earlier }
      end
      else if p < 0.83 then begin
        let shop, committed = Option.get (pick_shop g) in
        let k = Array.length committed.Recurrence_shop.tasks.(0).Task.proc_times in
        let count = 1 + Prng.int g 2 in
        let tasks =
          List.init count (fun _ ->
              let taus =
                Array.init k (fun _ -> Prng.rat_uniform g ~den:100 (Rat.make 1 2) (Rat.of_int 2))
              in
              let total = Rat.sum_array taus in
              let release = Prng.rat_uniform g ~den:100 Rat.zero (Rat.of_int 4) in
              let window = Rat.mul_int total (2 + Prng.int g 3) in
              (release, Rat.add release window, taus))
        in
        Admission.Add { shop; tasks }
      end
      else if p < 0.95 then
        let shop = match pick_shop g with Some (s, _) -> s | None -> "none" in
        Admission.Query { shop }
      else begin
        let shop = match pick_shop g with Some (s, _) -> s | None -> "none" in
        submitted := List.filter (fun (s, _) -> s <> shop) !submitted;
        Admission.Drop { shop }
      end)

(* ------------------------------------------------------------------ *)
(* Measurement                                                        *)

type tally = {
  mutable admitted : int;
  mutable rejected : int;
  mutable undecided : int;
  mutable info : int;
  mutable dropped : int;
  mutable errors : int;
  mutable overloaded : int;
}

let tally_reply t = function
  | Admission.Decided { decision = Admission.Admitted _; _ } -> t.admitted <- t.admitted + 1
  | Admission.Decided { decision = Admission.Rejected _; _ } -> t.rejected <- t.rejected + 1
  | Admission.Decided { decision = Admission.Undecided _; _ } ->
      t.undecided <- t.undecided + 1
  | Admission.Queried _ -> t.info <- t.info + 1
  | Admission.Dropped _ -> t.dropped <- t.dropped + 1
  | Admission.Request_error _ -> t.errors <- t.errors + 1

(* In-process replay: open-loop pacing (when [rate] > 0) against the
   batcher; per-request latency = reply time - arrival time, both read
   from [Obs.Clock] so a deterministic source makes the whole
   measurement (and any trace) reproducible. *)
let run_inproc ~stream ~config ~rate =
  let batcher = Batcher.create ~config () in
  let n = List.length stream in
  let t_arrival = Array.make n 0. in
  let latency = Quantile.create () in
  let tally =
    { admitted = 0; rejected = 0; undecided = 0; info = 0; dropped = 0; errors = 0;
      overloaded = 0 }
  in
  let pending_idx = Queue.create () in
  let record_replies replies =
    List.iter
      (fun (_, tr, reply) ->
        (* The loadgen "renders" nothing, so finish right away — this
           closes the render stage and streams the trace records. *)
        Rtrace.finish tr;
        let i = Queue.pop pending_idx in
        Quantile.observe latency (Obs.Clock.now () -. t_arrival.(i));
        tally_reply tally reply)
      replies
  in
  let t0 = Obs.Clock.now () in
  let next_arrival = ref t0 in
  let pace_g = Prng.create 0x9e3779b9 in
  List.iteri
    (fun i req ->
      if rate > 0. then begin
        (* Open loop: arrivals at exponential spacing, independent of
           service progress. *)
        next_arrival := !next_arrival +. Prng.exponential pace_g ~rate;
        let now = Unix.gettimeofday () in
        if !next_arrival > now then Unix.sleepf (!next_arrival -. now)
      end;
      t_arrival.(i) <- Obs.Clock.now ();
      (match Batcher.submit batcher req with
      | `Queued -> Queue.push i pending_idx
      | `Overloaded -> tally.overloaded <- tally.overloaded + 1);
      if Batcher.pending batcher >= config.Batcher.batch then
        record_replies (Batcher.step batcher))
    stream;
  let rec drain () =
    match Batcher.step batcher with [] -> () | replies -> record_replies replies; drain ()
  in
  drain ();
  let duration = Obs.Clock.now () -. t0 in
  ( duration,
    latency,
    tally,
    Batcher.cache_stats batcher,
    Some (Batcher.keyer_stats batcher) )

let new_tally () =
  { admitted = 0; rejected = 0; undecided = 0; info = 0; dropped = 0; errors = 0;
    overloaded = 0 }

let tally_line t line =
  match String.split_on_char ' ' line with
  | "admitted" :: _ -> t.admitted <- t.admitted + 1
  | "rejected" :: _ -> t.rejected <- t.rejected + 1
  | "undecided" :: _ -> t.undecided <- t.undecided + 1
  | "info" :: _ -> t.info <- t.info + 1
  | "dropped" :: _ -> t.dropped <- t.dropped + 1
  | "overloaded" :: _ -> t.overloaded <- t.overloaded + 1
  | _ -> t.errors <- t.errors + 1

(* One TCP client: windowed pipelined replay of [stream].  Closed loop
   when [rate] = 0 — at most [pipeline] requests in flight; open loop
   otherwise — exponential inter-arrivals at [rate], still capped at
   [pipeline] in flight so an overloaded server backpressures the
   client instead of growing an unbounded flight set.  Returns the
   latency sketch, the verdict tally and every line received, in
   order: the per-connection reply log the determinism smokes
   byte-compare. *)
let run_client ~host ~port ~stream ~pipeline ~rate ~pace_seed =
  let pipeline = max 1 pipeline in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Server.resolve_host host, port));
  (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
  let ic = Unix.in_channel_of_descr fd and oc = Unix.out_channel_of_descr fd in
  let log = ref [] in
  let recv () =
    let line = input_line ic in
    log := line :: !log;
    line
  in
  ignore (recv ()) (* greeting *);
  let reqs = Array.of_list (List.map Protocol.render_request stream) in
  let n = Array.length reqs in
  let latency = Quantile.create () in
  let tally = new_tally () in
  let t_send = Array.make (max n 1) 0. in
  let pace_g = Prng.create pace_seed in
  let next_arrival = ref (Unix.gettimeofday ()) in
  let sent = ref 0 and recvd = ref 0 in
  while !recvd < n do
    while !sent < n && !sent - !recvd < pipeline do
      if rate > 0. then begin
        next_arrival := !next_arrival +. Prng.exponential pace_g ~rate;
        let now = Unix.gettimeofday () in
        if !next_arrival > now then begin
          flush oc;
          Unix.sleepf (!next_arrival -. now)
        end
      end;
      t_send.(!sent) <- Unix.gettimeofday ();
      output_string oc reqs.(!sent);
      output_char oc '\n';
      incr sent
    done;
    flush oc;
    let line = recv () in
    Quantile.observe latency (Unix.gettimeofday () -. t_send.(!recvd));
    tally_line tally line;
    incr recvd
  done;
  output_string oc "quit\n";
  flush oc;
  (try ignore (recv ()) (* bye *) with End_of_file | Sys_error _ -> ());
  (try Unix.close fd with Unix.Unix_error _ -> ());
  (latency, tally, List.rev !log)

(* Per-connection streams: [requests] split as evenly as possible over
   [connections].  A single connection replays the classic unprefixed
   stream; multiple connections get disjoint per-cid namespaces. *)
let client_streams ~connections ~seed ~requests =
  if connections <= 1 then [ gen_stream ~seed ~requests () ]
  else
    List.init connections (fun c ->
        let per = (requests / connections) + (if c < requests mod connections then 1 else 0) in
        gen_stream ~cid:c ~seed ~requests:per ())

let write_reply_logs reply_log results =
  match reply_log with
  | None -> ()
  | Some prefix ->
      List.iteri
        (fun i (_, _, log) ->
          Out_channel.with_open_text
            (Printf.sprintf "%s.conn%d" prefix i)
            (fun oc -> List.iter (fun line -> output_string oc (line ^ "\n")) log))
        results

let merge_client_results results =
  let latency =
    match results with
    | [] -> Quantile.create ()
    | (q, _, _) :: rest -> List.fold_left (fun acc (q, _, _) -> Quantile.merge acc q) q rest
  in
  let tally = new_tally () in
  List.iter
    (fun (_, (t : tally), _) ->
      tally.admitted <- tally.admitted + t.admitted;
      tally.rejected <- tally.rejected + t.rejected;
      tally.undecided <- tally.undecided + t.undecided;
      tally.info <- tally.info + t.info;
      tally.dropped <- tally.dropped + t.dropped;
      tally.errors <- tally.errors + t.errors;
      tally.overloaded <- tally.overloaded + t.overloaded)
    results;
  (latency, tally)

let run_clients ~host ~port ~streams ~pipeline ~rate =
  let nconn = List.length streams in
  let rate = if rate > 0. then rate /. float_of_int nconn else 0. in
  let t0 = Unix.gettimeofday () in
  let domains =
    List.mapi
      (fun i stream ->
        Domain.spawn (fun () ->
            run_client ~host ~port ~stream ~pipeline ~rate ~pace_seed:(0x9e3779b9 + i)))
      streams
  in
  let results = List.map Domain.join domains in
  let duration = Unix.gettimeofday () -. t0 in
  (duration, results)

(* TCP replay against a running server. *)
let run_tcp ~streams ~addr ~pipeline ~rate ~reply_log =
  let host, port =
    match String.split_on_char ':' addr with
    | [ h; p ] -> (h, int_of_string p)
    | _ -> failwith "--connect expects HOST:PORT"
  in
  let duration, results = run_clients ~host ~port ~streams ~pipeline ~rate in
  write_reply_logs reply_log results;
  let latency, tally = merge_client_results results in
  (duration, latency, tally, None, None)

(* Full-transport replay: an in-process concurrent TCP server on an
   ephemeral port, the clients over real sockets against it.  This is
   the configuration the saturation sweep measures. *)
let run_self ~streams ~config ~accept_pool ~window ~drainers ~pipeline ~rate ~reply_log =
  let stripes = E2e_serve.Stripes.create ~config ~stripes:drainers () in
  let nconn = List.length streams in
  let mu = Mutex.create () in
  let cv = Condition.create () in
  let port = ref None in
  let server =
    Domain.spawn (fun () ->
        Server.serve_tcp ~max_connections:nconn ~accept_pool ~window
          ~ready:(fun p ->
            Mutex.lock mu;
            port := Some p;
            Condition.signal cv;
            Mutex.unlock mu)
          ~port:0 stripes)
  in
  Mutex.lock mu;
  while !port = None do
    Condition.wait cv mu
  done;
  let port = Option.get !port in
  Mutex.unlock mu;
  let duration, results = run_clients ~host:"127.0.0.1" ~port ~streams ~pipeline ~rate in
  Domain.join server;
  write_reply_logs reply_log results;
  let latency, tally = merge_client_results results in
  ( duration,
    latency,
    tally,
    E2e_serve.Stripes.cache_stats stripes,
    Some (E2e_serve.Stripes.keyer_stats stripes) )

(* Saturation sweep: one self-serve measurement per (connections,
   batch) point, recorded in BENCH_serve.json as the transport's
   throughput surface.  The drainer sweep reuses the same point shape
   with [sat_drainers] varying and a seed-then-resubmit workload. *)
type sat_point = {
  sat_connections : int;
  sat_batch : int;
  sat_drainers : int;
  sat_workload : string;  (* "mixed" | "seed-then-resubmit" *)
  sat_cache : int;  (* per-stripe solver-cache capacity *)
  sat_shops : int;  (* shops per connection (0: the mixed workload) *)
  sat_completed : int;
  sat_duration : float;
  sat_rps : float;
  sat_p50_ms : float;
  sat_p99_ms : float;
}

let sat_measure ~streams ~config ~window ~drainers ~pipeline ~workload ~shops =
  let connections = List.length streams in
  let accept_pool = min connections 8 in
  let duration, latency, _, _, _ =
    run_self ~streams ~config ~accept_pool ~window ~drainers ~pipeline ~rate:0.
      ~reply_log:None
  in
  let completed = Quantile.count latency in
  {
    sat_connections = connections;
    sat_batch = config.Batcher.batch;
    sat_drainers = drainers;
    sat_workload = workload;
    sat_cache = config.Batcher.cache_capacity;
    sat_shops = shops;
    sat_completed = completed;
    sat_duration = duration;
    sat_rps = (if duration > 0. then float_of_int completed /. duration else 0.);
    sat_p50_ms = Quantile.quantile latency 0.50 *. 1000.;
    sat_p99_ms = Quantile.quantile latency 0.99 *. 1000.;
  }

let run_sat_sweep ~seed ~requests ~config ~pipeline ~window points =
  List.map
    (fun (connections, batch) ->
      let streams = client_streams ~connections ~seed ~requests in
      let config = { config with Batcher.batch } in
      sat_measure ~streams ~config ~window ~drainers:1 ~pipeline ~workload:"mixed"
        ~shops:0)
    points

(* ------------------------------------------------------------------ *)
(* Cluster modes: an in-process shard fleet behind an in-process
   dispatcher (--spawn-shards), replay against an external dispatcher
   (--cluster), shard-count scaling sweeps (--cluster-sweep, the
   source of BENCH_cluster.json), and the kill-one-shard failover
   check `make cluster-smoke` runs (--failover-check). *)

module Dispatcher = E2e_cluster.Dispatcher
module Registry = E2e_cluster.Registry
module Health = E2e_cluster.Health
module Wire = E2e_serve.Wire

(* A one-shot mailbox for the ready-port handshake with a spawned
   server domain. *)
let wait_slot () =
  let mu = Mutex.create () and cv = Condition.create () in
  let slot = ref None in
  let set p =
    Mutex.lock mu;
    slot := Some p;
    Condition.signal cv;
    Mutex.unlock mu
  in
  let get () =
    Mutex.lock mu;
    while !slot = None do
      Condition.wait cv mu
    done;
    let p = Option.get !slot in
    Mutex.unlock mu;
    p
  in
  (set, get)

type shard = {
  sh_port : int;
  sh_control : Server.control;
  sh_domain : unit Domain.t;
}

(* One in-process shard: its own batcher (own admission state, own
   solver cache) behind a real TCP listener on an ephemeral port, with
   a control handle so a test can kill it like a process.  Schedules
   are off — cluster runs measure the service, not reply rendering. *)
let spawn_shard ~config ~accept_pool ~window ?(port = 0) () =
  let control = Server.control () in
  let set, get = wait_slot () in
  let stripes = E2e_serve.Stripes.create ~config () in
  let domain =
    Domain.spawn (fun () ->
        Server.serve_tcp ~schedules:false ~accept_pool ~window ~ready:set ~control ~port
          stripes)
  in
  { sh_port = get (); sh_control = control; sh_domain = domain }

type cluster = {
  cl_shards : shard list;
  cl_t : Dispatcher.t;
  cl_domain : unit Domain.t;
  cl_port : int;
}

let spawn_cluster ~nshards ~config ~window ~probe_interval ~client_slots
    ?(upstream_conns = 1) () =
  (* A shard accept domain owns its connection for the connection's
     lifetime, and every dispatcher lane is a persistent connection: the
     pool must fit all lanes plus a probe and a metrics RPC at once, or
     the overflow lane (and the status checker) starve in the backlog. *)
  let shards =
    List.init nshards (fun _ ->
        spawn_shard ~config ~accept_pool:(max 3 (upstream_conns + 2)) ~window ())
  in
  let dconfig = { Dispatcher.default_config with probe_interval; upstream_conns } in
  let t =
    Dispatcher.create ~config:dconfig
      (List.map (fun s -> ("127.0.0.1", s.sh_port)) shards)
  in
  let set, get = wait_slot () in
  let ddomain =
    Domain.spawn (fun () ->
        Dispatcher.serve ~accept_pool:client_slots ~window ~ready:set ~port:0 t)
  in
  { cl_shards = shards; cl_t = t; cl_domain = ddomain; cl_port = get () }

let stop_cluster c =
  Dispatcher.shutdown c.cl_t;
  Domain.join c.cl_domain;
  List.iter (fun s -> Server.shutdown s.sh_control) c.cl_shards;
  List.iter (fun s -> Domain.join s.sh_domain) c.cl_shards

(* What the cluster run reports beyond throughput: routing balance and
   failover counters, from the in-process dispatcher handle or a
   remote dispatcher's stats/metrics replies. *)
type cluster_info = {
  ci_shards : int;
  ci_live : int;
  ci_routed : int;
  ci_failovers : int;
  ci_unavailable : int;
  ci_balance : (string * int) list;  (* shard id -> requests routed *)
}

let cluster_info_of_stats (st : Dispatcher.stats) =
  {
    ci_shards = st.registry_stats.Registry.shards;
    ci_live = st.registry_stats.Registry.live_shards;
    ci_routed = st.routed;
    ci_failovers = st.registry_stats.Registry.failovers;
    ci_unavailable = st.unavailable;
    ci_balance =
      List.map (fun s -> (s.Dispatcher.shard_id, s.Dispatcher.shard_routed)) st.per_shard;
  }

(* Remote dispatcher: one stats line (k=v tokens) and the aggregated
   metrics exposition (cluster_shard_routed_total{shard="id"} N). *)
let fetch_cluster_remote ~host ~port =
  match Health.rpc ~host ~port [ "stats"; "metrics" ] with
  | Error _ | Ok ([] | [ _ ] | _ :: _ :: _ :: _) -> None
  | Ok [ stats_line; metrics_line ] ->
      let kv = Hashtbl.create 8 in
      List.iter
        (fun tok ->
          match String.index_opt tok '=' with
          | None -> ()
          | Some i -> (
              let k = String.sub tok 0 i
              and v = String.sub tok (i + 1) (String.length tok - i - 1) in
              match int_of_string_opt v with
              | Some n -> Hashtbl.replace kv k n
              | None -> ()))
        (String.split_on_char ' ' stats_line);
      let get k = Option.value ~default:0 (Hashtbl.find_opt kv k) in
      let balance =
        String.split_on_char ';' metrics_line
        |> List.filter_map (fun line ->
               let prefix = "cluster_shard_routed_total{shard=\"" in
               let pl = String.length prefix in
               if String.length line > pl && String.sub line 0 pl = prefix then
                 match String.index_from_opt line pl '"' with
                 | None -> None
                 | Some q -> (
                     let id = String.sub line pl (q - pl) in
                     match String.rindex_opt line ' ' with
                     | None -> None
                     | Some sp ->
                         Option.map
                           (fun n -> (id, n))
                           (int_of_string_opt
                              (String.sub line (sp + 1) (String.length line - sp - 1))))
               else None)
      in
      Some
        {
          ci_shards = get "shards";
          ci_live = get "live";
          ci_routed = get "routed";
          ci_failovers = get "failovers";
          ci_unavailable = get "unavailable";
          ci_balance = balance;
        }

let print_cluster_info ci =
  Format.printf "cluster       shards=%d live=%d routed=%d failovers=%d unavailable=%d@."
    ci.ci_shards ci.ci_live ci.ci_routed ci.ci_failovers ci.ci_unavailable;
  List.iter
    (fun (id, n) -> Format.printf "shard         %-22s routed=%d@." id n)
    ci.ci_balance

let cluster_json ci =
  Json.Obj
    [
      ("shards", Json.int ci.ci_shards);
      ("live", Json.int ci.ci_live);
      ("routed", Json.int ci.ci_routed);
      ("failovers", Json.int ci.ci_failovers);
      ("unavailable", Json.int ci.ci_unavailable);
      ("balance", Json.Obj (List.map (fun (id, n) -> (id, Json.int n)) ci.ci_balance));
    ]

(* The scaling-sweep workload: [shops] seeding submits establish this
   connection's shops, then the stream resubmits random shops with
   freshly permuted instances (same canonical form, disjoint
   per-connection namespaces).  A permuted resubmission is answered
   from the shard's canonical solver cache when the shop's entry is
   resident and pays a full solve when it was evicted — so the scaling
   lever is aggregate cache capacity: routing is sticky, each shard's
   LRU holds exactly its own shops, and a working set a few times one
   shard's [--cache] thrashes a single shard while enough shards hold
   it entirely.  That is the honest sharding win available on any core
   count; CPU fan-out is not (the bench host may be a single core).
   Instances are a little bigger than gen_stream's so the solve :
   cache-hit cost ratio is what the bench exercises. *)
let gen_cluster_instance g =
  let n = 12 + Prng.int g 5 and m = 3 + Prng.int g 2 in
  Recurrence_shop.of_traditional
    (Feasible_gen.generate g
       { Feasible_gen.n_tasks = n; n_processors = m; mean_tau = 1.0; stdev = 0.5;
         slack_factor = 1.05 +. Prng.float g 0.3 })

let gen_cluster_stream ~cid ~seed ~shops ~requests () =
  let g = Prng.of_path [| seed; 0xc1; cid |] in
  let shop k = Printf.sprintf "c%d-s%d" cid k in
  let shops = max 1 (min shops requests) in
  let instances = Array.init shops (fun _ -> gen_cluster_instance g) in
  (* Resubmission is a drop + submit pair (a committed shop rejects a
     second bare submit); the fresh submit is the cache probe. *)
  let rec steady n =
    if n <= 0 then []
    else
      let k = Prng.int g shops in
      Admission.Drop { shop = shop k }
      :: Admission.Submit { shop = shop k; instance = permute g instances.(k) }
      :: steady (n - 2)
  in
  List.init shops (fun k -> Admission.Submit { shop = shop k; instance = instances.(k) })
  @ steady (requests - shops)

(* Drainer-stripe sweep: the single-process analogue of the shard
   sweep.  Same seed-then-resubmit workload, one embedded server per
   stripe count: queue and solver cache are per stripe, so [d] stripes
   hold d x cache_capacity canonical entries in aggregate — a working
   set a few times one stripe's cache thrashes at --drainers 1 and
   goes cache-resident at 4.  (On a multi-core host the per-stripe
   drainer domains also overlap solves; the aggregate-cache effect is
   the one that survives a single-core box.) *)
let run_drainer_sweep ~counts ~config ~connections ~pipeline ~shops ~requests ~seed
    ~window =
  let streams =
    List.init connections (fun c ->
        let per =
          (requests / connections) + (if c < requests mod connections then 1 else 0)
        in
        gen_cluster_stream ~cid:c ~seed ~shops ~requests:per ())
  in
  let points =
    List.map
      (fun drainers ->
        let p =
          sat_measure ~streams ~config ~window ~drainers ~pipeline
            ~workload:"seed-then-resubmit" ~shops
        in
        Format.printf
          "drainers=%-2d %7.0f req/s  p50=%.3fms p99=%.3fms (%d in %.3fs)@." drainers
          p.sat_rps p.sat_p50_ms p.sat_p99_ms p.sat_completed p.sat_duration;
        p)
      counts
  in
  let rps_of n =
    List.find_map (fun p -> if p.sat_drainers = n then Some p.sat_rps else None) points
  in
  (match
     (rps_of (List.fold_left min max_int counts), rps_of (List.fold_left max 0 counts))
   with
  | Some b, Some t when b > 0. ->
      Format.printf "drainer scaling %d -> %d stripes: %.2fx@."
        (List.fold_left min max_int counts)
        (List.fold_left max 0 counts)
        (t /. b)
  | _ -> ());
  points

type cluster_point = {
  cp_shards : int;
  cp_completed : int;
  cp_duration : float;
  cp_rps : float;
  cp_p50_ms : float;
  cp_p99_ms : float;
  cp_info : cluster_info;
}

let run_cluster_point ~nshards ~config ~connections ~pipeline ~shops ~requests ~seed
    ~window ?(upstream_conns = 1) () =
  let cluster =
    spawn_cluster ~nshards ~config ~window ~probe_interval:0.5
      ~client_slots:(connections + 2) ~upstream_conns ()
  in
  let streams =
    List.init connections (fun c ->
        let per =
          (requests / connections) + (if c < requests mod connections then 1 else 0)
        in
        gen_cluster_stream ~cid:c ~seed ~shops ~requests:per ())
  in
  let duration, results =
    run_clients ~host:"127.0.0.1" ~port:cluster.cl_port ~streams ~pipeline ~rate:0.
  in
  let latency, _tally = merge_client_results results in
  let info = cluster_info_of_stats (Dispatcher.stats cluster.cl_t) in
  stop_cluster cluster;
  let completed = Quantile.count latency in
  {
    cp_shards = nshards;
    cp_completed = completed;
    cp_duration = duration;
    cp_rps = (if duration > 0. then float_of_int completed /. duration else 0.);
    cp_p50_ms = Quantile.quantile latency 0.50 *. 1000.;
    cp_p99_ms = Quantile.quantile latency 0.99 *. 1000.;
    cp_info = info;
  }

(* Upstream-lane sweep: one shard, a cache-resident (hit-heavy)
   workload so the shard answers fast, and a fresh cluster per lane
   count — what widening the dispatcher->shard pipe is worth when the
   shard itself is not the bottleneck.  Recorded honestly: on a host
   where one upstream connection already saturates the path, the curve
   is flat. *)
let run_upstream_sweep ~counts ~config ~connections ~pipeline ~requests ~seed ~window =
  (* Shops per connection sized to keep the whole working set resident
     in the single shard's cache: every resubmission is a cache hit. *)
  let shops =
    max 1 (config.Batcher.cache_capacity / (2 * max 1 connections))
  in
  let points =
    List.map
      (fun upstream_conns ->
        let p =
          run_cluster_point ~nshards:1 ~config ~connections ~pipeline ~shops ~requests
            ~seed ~window ~upstream_conns ()
        in
        Format.printf
          "upstream conns=%-2d %7.0f req/s  p50=%.3fms p99=%.3fms (%d in %.3fs)@."
          upstream_conns p.cp_rps p.cp_p50_ms p.cp_p99_ms p.cp_completed p.cp_duration;
        (upstream_conns, p))
      counts
  in
  (points, shops)

let run_cluster_sweep ~counts ~upstream ~config ~connections ~pipeline ~shops ~requests
    ~seed ~window ~jobs ~out =
  let points =
    List.map
      (fun nshards ->
        let p =
          run_cluster_point ~nshards ~config ~connections ~pipeline ~shops ~requests ~seed
            ~window ()
        in
        Format.printf
          "cluster shards=%-2d %7.0f req/s  p50=%.3fms p99=%.3fms (%d in %.3fs, \
           failovers=%d unavailable=%d)@."
          p.cp_shards p.cp_rps p.cp_p50_ms p.cp_p99_ms p.cp_completed p.cp_duration
          p.cp_info.ci_failovers p.cp_info.ci_unavailable;
        p)
      counts
  in
  let upstream_points, upstream_shops =
    match upstream with
    | [] -> ([], 0)
    | counts -> run_upstream_sweep ~counts ~config ~connections ~pipeline ~requests ~seed ~window
  in
  let rps_of n =
    List.find_map (fun p -> if p.cp_shards = n then Some p.cp_rps else None) points
  in
  let base = rps_of (List.fold_left min max_int counts) in
  let top = rps_of (List.fold_left max 0 counts) in
  let ratio =
    match (base, top) with
    | Some b, Some t when b > 0. -> Some (t /. b)
    | _ -> None
  in
  (match ratio with
  | Some r ->
      Format.printf "cluster scaling %d -> %d shards: %.2fx@."
        (List.fold_left min max_int counts)
        (List.fold_left max 0 counts)
        r
  | None -> ());
  match out with
  | None -> ()
  | Some path ->
      let record =
        Json.Obj
          [
            ( "workload",
              Json.Obj
                [
                  ("type", Json.Str "seed-then-resubmit");
                  ("requests", Json.int requests);
                  ("connections", Json.int connections);
                  ("pipeline", Json.int pipeline);
                  ("shops_per_connection", Json.int shops);
                  ("seed", Json.int seed);
                  ("cache_capacity", Json.int config.Batcher.cache_capacity);
                  ("batch", Json.int config.Batcher.batch);
                  ("jobs", Json.int jobs);
                ] );
            ( "points",
              Json.List
                (List.map
                   (fun p ->
                     Json.Obj
                       [
                         ("shards", Json.int p.cp_shards);
                         ("completed", Json.int p.cp_completed);
                         ("duration_s", Json.Num p.cp_duration);
                         ("requests_per_sec", Json.Num p.cp_rps);
                         ("latency_p50_ms", Json.Num p.cp_p50_ms);
                         ("latency_p99_ms", Json.Num p.cp_p99_ms);
                         ("failovers", Json.int p.cp_info.ci_failovers);
                         ("unavailable", Json.int p.cp_info.ci_unavailable);
                         ( "balance",
                           Json.Obj
                             (List.map
                                (fun (id, n) -> (id, Json.int n))
                                p.cp_info.ci_balance) );
                       ])
                   points) );
            ( "scaling",
              match ratio with
              | None -> Json.Null
              | Some r ->
                  Json.Obj
                    [
                      ("shards_min", Json.int (List.fold_left min max_int counts));
                      ("shards_max", Json.int (List.fold_left max 0 counts));
                      ("rps_ratio", Json.Num r);
                    ] );
            ( "upstream_sweep",
              Json.List
                (List.map
                   (fun (k, p) ->
                     Json.Obj
                       [
                         ("upstream_conns", Json.int k);
                         ("shards", Json.int p.cp_shards);
                         ("connections", Json.int connections);
                         ("shops_per_connection", Json.int upstream_shops);
                         ("completed", Json.int p.cp_completed);
                         ("duration_s", Json.Num p.cp_duration);
                         ("requests_per_sec", Json.Num p.cp_rps);
                         ("latency_p50_ms", Json.Num p.cp_p50_ms);
                         ("latency_p99_ms", Json.Num p.cp_p99_ms);
                       ])
                   upstream_points) );
          ]
      in
      Out_channel.with_open_text path (fun oc ->
          output_string oc (Json.to_string record);
          output_char oc '\n');
      Format.printf "wrote %s@." path

(* ------------------------------------------------------------------ *)
(* Failover check: 2 shards + dispatcher, kill one mid-burst, assert
   every in-flight request still gets a reply (the deterministic
   [error shard-unavailable], never a hang), traffic recovers on the
   surviving shard, and a shard returning on the same address is
   re-admitted and routed to again.                                   *)

let failover_check ~config ~window ~seed ~upstream_conns =
  let cluster =
    spawn_cluster ~nshards:2 ~config ~window ~probe_interval:0.2 ~client_slots:3
      ~upstream_conns ()
  in
  let fail_reasons = ref [] in
  let extra_shard = ref None in
  let fail fmt = Printf.ksprintf (fun s -> fail_reasons := s :: !fail_reasons) fmt in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Server.resolve_host "127.0.0.1", cluster.cl_port));
  (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
  (* A reply that takes >10s is a hang — the exact bug this check
     exists to catch — so bound every read. *)
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.0 with Unix.Unix_error _ -> ());
  let r = Wire.make_reader fd in
  let g = Prng.create seed in
  let fresh = ref 0 in
  let submit_line () =
    incr fresh;
    Protocol.render_request
      (Admission.Submit { shop = Printf.sprintf "f%d" !fresh; instance = gen_instance g })
  in
  let send lines = Wire.write_all fd (String.concat "" (List.map (fun l -> l ^ "\n") lines)) in
  let read_replies k =
    List.init k (fun _ ->
        match Wire.read_line r with
        | `Line l -> l
        | `Eof | `Too_long | `Error _ -> "error: connection lost or timed out")
  in
  let unavailable replies =
    List.length (List.filter (fun l -> l = Dispatcher.unavailable_reply) replies)
  in
  let lost replies =
    List.length (List.filter (fun l -> l = "error: connection lost or timed out") replies)
  in
  (match Wire.read_line r with
  | `Line _ -> () (* greeting *)
  | `Eof | `Too_long | `Error _ -> fail "no greeting from dispatcher");
  (* Phase 1: both shards up — a burst of submits, none unavailable. *)
  let burst1 = List.init 16 (fun _ -> submit_line ()) in
  send burst1;
  let replies1 = read_replies 16 in
  if lost replies1 > 0 then fail "phase1: lost %d replies" (lost replies1);
  if unavailable replies1 > 0 then
    fail "phase1: %d shard-unavailable with all shards live" (unavailable replies1);
  (* Phase 2: kill shard 0 with a burst in flight, then keep sending.
     Every request must be answered; the ones caught on the dead shard
     get the deterministic unavailable error.  "In flight" must be
     OBSERVED, not assumed: on one core the scheduler can run the
     whole dispatch-solve-reply chain inside any sleep, after which
     the kill strands nothing, the ring fails over cleanly and the
     check has witnessed no drain.  So arm the kill on the
     dispatcher's own queue-depth stat — a non-zero [shard_pending]
     for the doomed shard is proof it owes replies right now — and if
     a burst was fully answered before the poll saw it, drain the
     replies and try a fresh burst. *)
  let doomed = List.hd cluster.cl_shards in
  let doomed_id = Registry.id_of ~host:"127.0.0.1" ~port:doomed.sh_port in
  let pending_on_doomed () =
    List.fold_left
      (fun acc s ->
        if s.Dispatcher.shard_id = doomed_id then s.Dispatcher.shard_pending else acc)
      0
      (Dispatcher.stats cluster.cl_t).Dispatcher.per_shard
  in
  (* Queue-depth alone is not enough to arm on: [shard_pending] also
     counts requests whose replies already sit unread in the
     dispatcher's kernel buffer, and those are delivered ahead of the
     EOF — the kill would strand nothing.  The airtight witness is
     WORK the shard has not finished computing when the kill lands: a
     burst of 40 medium submits, every one pinned to the doomed shard
     (shop names are burned until the ring homes them there), is tens
     of milliseconds of solving spread over several batches — the
     kill below arrives within a poll tick of the first request being
     routed, so later batches have no reply bytes anywhere and their
     lane drains them as [error shard-unavailable].  Medium instances
     keep each batch bounded to milliseconds: the killed drainer
     finishes at most its current batch, so joining the dead shard's
     domain stays fast (one huge instance instead would pin the join
     on an unbounded solve). *)
  let doomed_submit () =
    let rec pick () =
      incr fresh;
      let shop = Printf.sprintf "f%d" !fresh in
      match Registry.home (Dispatcher.registry cluster.cl_t) shop with
      | Some e when e.Registry.id = doomed_id -> shop
      | _ -> pick ()
    in
    let shop = pick () in
    Protocol.render_request
      (Admission.Submit
         {
           shop;
           instance =
             Recurrence_shop.of_traditional
               (Feasible_gen.generate g
                  { Feasible_gen.n_tasks = 60; n_processors = 3; mean_tau = 1.0;
                    stdev = 0.3; slack_factor = 2.0 });
         })
  in
  let burst = List.init 40 (fun _ -> doomed_submit ()) in
  send burst;
  (* Kill as soon as a good chunk of the burst is visibly pending on
     the doomed shard.  The depth jumps to ~40 when the burst routes
     and drains at batch pace, so it sits above the threshold for
     hundreds of milliseconds — and a depth of 8 leaves plenty of
     genuinely unsolved requests even if a few replies are already in
     flight when the kill lands. *)
  let arm_deadline = Unix.gettimeofday () +. 5.0 in
  while pending_on_doomed () < 8 && Unix.gettimeofday () < arm_deadline do
    Unix.sleepf 0.0002
  done;
  if pending_on_doomed () < 8 then
    fail "phase2: burst never seen pending on the doomed shard";
  Server.shutdown doomed.sh_control;
  let post_kill = List.init 24 (fun _ -> submit_line ()) in
  send post_kill;
  let replies2 = read_replies (40 + 24) in
  let unavailable2 = unavailable replies2 in
  if lost replies2 > 0 then
    fail "phase2: %d requests never answered after shard kill (hang)" (lost replies2);
  if unavailable2 = 0 then
    fail "phase2: expected at least one shard-unavailable reply after killing a shard";
  (* Phase 3: recovery — fresh shops must admit cleanly on the
     survivor within a bounded number of rounds. *)
  let recovery_rounds = ref (-1) in
  (let round = ref 0 in
   while !recovery_rounds < 0 && !round < 50 do
     incr round;
     let burst = List.init 4 (fun _ -> submit_line ()) in
     send burst;
     let replies = read_replies 4 in
     if lost replies > 0 then begin
       fail "phase3: lost replies during recovery";
       recovery_rounds := !round
     end
     else if unavailable replies = 0 then recovery_rounds := !round
     else Unix.sleepf 0.05
   done;
   if !recovery_rounds < 0 then fail "phase3: no clean round within 50 rounds");
  (* Phase 4: re-admission — restart a shard on the same address, wait
     for the status checker to revive it, and check new shops route to
     it again. *)
  let dead_port = (List.hd cluster.cl_shards).sh_port in
  let dead_id = Registry.id_of ~host:"127.0.0.1" ~port:dead_port in
  Domain.join (List.hd cluster.cl_shards).sh_domain;
  let reborn = spawn_shard ~config ~accept_pool:3 ~window ~port:dead_port () in
  extra_shard := Some reborn;
  let deadline = Unix.gettimeofday () +. 15.0 in
  let live () =
    List.exists
      (fun (id, state, _) -> id = dead_id && state = Registry.Live)
      (Registry.snapshot (Dispatcher.registry cluster.cl_t))
  in
  while (not (live ())) && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.05
  done;
  if not (live ()) then fail "phase4: killed shard not revived within 15s of restarting"
  else begin
    let routed_to id =
      let st = Dispatcher.stats cluster.cl_t in
      List.fold_left
        (fun acc s -> if s.Dispatcher.shard_id = id then s.Dispatcher.shard_routed else acc)
        0 st.per_shard
    in
    let before = routed_to dead_id in
    let burst = List.init 24 (fun _ -> submit_line ()) in
    send burst;
    let replies = read_replies 24 in
    if lost replies > 0 then fail "phase4: lost replies after revival";
    if unavailable replies > 0 then
      fail "phase4: %d shard-unavailable after revival" (unavailable replies);
    if routed_to dead_id <= before then
      fail "phase4: no traffic routed to the revived shard"
  end;
  (try Wire.write_all fd "quit\n" with Unix.Unix_error _ -> ());
  (try Unix.close fd with Unix.Unix_error _ -> ());
  (match !extra_shard with
  | Some s ->
      Server.shutdown s.sh_control;
      Domain.join s.sh_domain
  | None -> ());
  (* The killed shard's domain is already joined; stop_cluster joins
     the rest and shuts the dispatcher down. *)
  Dispatcher.shutdown cluster.cl_t;
  Domain.join cluster.cl_domain;
  List.iter
    (fun s -> Server.shutdown s.sh_control)
    (List.tl cluster.cl_shards);
  List.iter (fun s -> Domain.join s.sh_domain) (List.tl cluster.cl_shards);
  match List.rev !fail_reasons with
  | [] ->
      Format.printf
        "failover-check: ok (unavailable=%d recovery_rounds=%d re-admitted=%s)@."
        unavailable2 !recovery_rounds dead_id;
      true
  | reasons ->
      List.iter (fun r -> Format.printf "failover-check: FAIL %s@." r) reasons;
      false

(* ------------------------------------------------------------------ *)
(* Soak mode: run closed-loop TCP clients for a wall-clock duration,
   printing windowed latency snapshots as the run progresses.  Each
   client replays freshly generated chunks on new shop namespaces
   every cycle, so committed state and cache contents keep churning
   like a long-lived deployment. *)

type soak_snapshot = {
  sn_t : float;  (* seconds since soak start *)
  sn_count : int;
  sn_rps : float;
  sn_p50_ms : float;
  sn_p99_ms : float;
}

type soak_state = {
  so_mu : Mutex.t;
  mutable so_window : Quantile.t;
  so_total : Quantile.t;
  so_tally : tally;
}

let run_soak ~host ~port ~connections ~pipeline ~seed ~duration ~snapshot_every =
  let st =
    { so_mu = Mutex.create (); so_window = Quantile.create ();
      so_total = Quantile.create (); so_tally = new_tally () }
  in
  let observe lat line =
    Mutex.lock st.so_mu;
    Quantile.observe st.so_window lat;
    Quantile.observe st.so_total lat;
    tally_line st.so_tally line;
    Mutex.unlock st.so_mu
  in
  let t0 = Unix.gettimeofday () in
  let deadline = t0 +. duration in
  let client cid =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_INET (Server.resolve_host host, port));
    (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
    let r = Wire.make_reader fd in
    let recv () =
      match Wire.read_line r with
      | `Line l -> Some l
      | `Eof | `Too_long | `Error _ -> None
    in
    (match recv () with Some _ -> () | None -> failwith "no greeting");
    let cycle = ref 0 in
    let stop = ref false in
    while not !stop do
      (* A fresh chunk per cycle: cid*offset keeps every cycle's shop
         namespace disjoint from every other client's and cycle's. *)
      let stream =
        gen_stream ~cid:((cid * 1_000_003) + !cycle) ~seed ~requests:256 ()
      in
      incr cycle;
      let reqs = Array.of_list (List.map Protocol.render_request stream) in
      let n = Array.length reqs in
      let t_send = Array.make n 0. in
      let sent = ref 0 and recvd = ref 0 in
      let target () = if !stop then !sent else n in
      while !recvd < target () do
        while (not !stop) && !sent < n && !sent - !recvd < pipeline do
          if Unix.gettimeofday () >= deadline then stop := true
          else begin
            t_send.(!sent) <- Unix.gettimeofday ();
            Wire.write_all fd (reqs.(!sent) ^ "\n");
            incr sent
          end
        done;
        if !recvd < target () then
          match recv () with
          | None -> stop := true
          | Some line ->
              observe (Unix.gettimeofday () -. t_send.(!recvd)) line;
              incr recvd
      done;
      if Unix.gettimeofday () >= deadline then stop := true
    done;
    (try Wire.write_all fd "quit\n" with Unix.Unix_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ())
  in
  let domains = List.init connections (fun c -> Domain.spawn (fun () -> client c)) in
  let snapshots = ref [] in
  let take_snapshot () =
    Mutex.lock st.so_mu;
    let q = st.so_window in
    st.so_window <- Quantile.create ();
    Mutex.unlock st.so_mu;
    let now = Unix.gettimeofday () in
    let count = Quantile.count q in
    let sn =
      {
        sn_t = now -. t0;
        sn_count = count;
        sn_rps = (if snapshot_every > 0. then float_of_int count /. snapshot_every else 0.);
        sn_p50_ms = Quantile.quantile q 0.50 *. 1000.;
        sn_p99_ms = Quantile.quantile q 0.99 *. 1000.;
      }
    in
    snapshots := sn :: !snapshots;
    Format.printf "soak +%6.1fs  %6d replies (%6.0f/s)  p50=%.3fms p99=%.3fms@." sn.sn_t
      sn.sn_count sn.sn_rps sn.sn_p50_ms sn.sn_p99_ms;
    Format.print_flush ()
  in
  while Unix.gettimeofday () < deadline do
    let remaining = deadline -. Unix.gettimeofday () in
    Unix.sleepf (Float.min snapshot_every remaining);
    take_snapshot ()
  done;
  List.iter Domain.join domains;
  let t_end = Unix.gettimeofday () in
  (t_end -. t0, st.so_total, st.so_tally, List.rev !snapshots)

let soak_snapshot_json sn =
  Json.Obj
    [
      ("t_s", Json.Num sn.sn_t);
      ("count", Json.int sn.sn_count);
      ("requests_per_sec", Json.Num sn.sn_rps);
      ("latency_p50_ms", Json.Num sn.sn_p50_ms);
      ("latency_p99_ms", Json.Num sn.sn_p99_ms);
    ]

(* ------------------------------------------------------------------ *)
(* Reporting                                                          *)

let report ?(extra = []) ~out ~requests ~jobs ~config ~transport ~connections ~duration
    ~latency ~tally ~cache_stats ~keyer_stats ~stages ~sweep ~sat () =
  let ms x = x *. 1000. in
  let p q = ms (Quantile.quantile latency q) in
  let completed = Quantile.count latency in
  let rps = if duration > 0. then float_of_int completed /. duration else 0. in
  let hit_rate hits misses =
    let total = hits + misses in
    if total = 0 then 0. else float_of_int hits /. float_of_int total
  in
  Format.printf "requests      %d (%d completed, %d overloaded)@." requests completed
    tally.overloaded;
  Format.printf "duration      %.3fs  (%.0f requests/s)@." duration rps;
  Format.printf "latency (ms)  p50=%.3f p95=%.3f p99=%.3f max=%.3f@." (p 0.50) (p 0.95)
    (p 0.99)
    (ms (Quantile.max_value latency));
  List.iter
    (fun (stage, q) ->
      Format.printf "stage %-13s p50=%.3f p95=%.3f p99=%.3f max=%.3f@."
        (stage ^ " (ms)")
        (ms (Quantile.quantile q 0.50))
        (ms (Quantile.quantile q 0.95))
        (ms (Quantile.quantile q 0.99))
        (ms (Quantile.max_value q)))
    stages;
  Format.printf "verdicts      admitted=%d rejected=%d undecided=%d info=%d dropped=%d \
                 errors=%d@."
    tally.admitted tally.rejected tally.undecided tally.info tally.dropped tally.errors;
  (match cache_stats with
  | None -> Format.printf "cache         off or remote@."
  | Some { Cache.hits; misses; evictions; size } ->
      Format.printf "cache         hits=%d misses=%d evictions=%d size=%d hit_rate=%.3f@."
        hits misses evictions size (hit_rate hits misses));
  (match keyer_stats with
  | None -> ()
  | Some { Cache.Keyer.reused; rendered } ->
      Format.printf "keyer         reused=%d rendered=%d@." reused rendered);
  List.iter
    (fun (capacity, { Cache.hits; misses; evictions; _ }) ->
      Format.printf "sweep cap=%-6d hits=%d misses=%d evictions=%d hit_rate=%.3f@." capacity
        hits misses evictions (hit_rate hits misses))
    sweep;
  List.iter
    (fun s ->
      Format.printf
        "sat   conns=%-3d batch=%-4d drainers=%-2d %6.0f req/s  p50=%.3fms p99=%.3fms \
         (%d in %.3fs)@."
        s.sat_connections s.sat_batch s.sat_drainers s.sat_rps s.sat_p50_ms s.sat_p99_ms
        s.sat_completed s.sat_duration)
    sat;
  match out with
  | None -> ()
  | Some path ->
      let cache_json =
        match cache_stats with
        | None -> Json.Null
        | Some { Cache.hits; misses; evictions; size } ->
            Json.Obj
              [
                ("hits", Json.Num (float_of_int hits));
                ("misses", Json.Num (float_of_int misses));
                ("evictions", Json.Num (float_of_int evictions));
                ("size", Json.Num (float_of_int size));
                ("hit_rate", Json.Num (hit_rate hits misses));
              ]
      in
      let record =
        Json.Obj
          ([
            ("requests", Json.Num (float_of_int requests));
            ("completed", Json.Num (float_of_int completed));
            ("overloaded", Json.Num (float_of_int tally.overloaded));
            ("duration_s", Json.Num duration);
            ("requests_per_sec", Json.Num rps);
            ( "latency_ms",
              Json.Obj
                [
                  ("p50", Json.Num (p 0.50));
                  ("p95", Json.Num (p 0.95));
                  ("p99", Json.Num (p 0.99));
                  ("max", Json.Num (ms (Quantile.max_value latency)));
                ] );
            ( "stage_latency_ms",
              Json.Obj
                (List.map
                   (fun (stage, q) ->
                     ( stage,
                       Json.Obj
                         [
                           ("p50", Json.Num (ms (Quantile.quantile q 0.50)));
                           ("p95", Json.Num (ms (Quantile.quantile q 0.95)));
                           ("p99", Json.Num (ms (Quantile.quantile q 0.99)));
                           ("max", Json.Num (ms (Quantile.max_value q)));
                           ("count", Json.int (Quantile.count q));
                         ] ))
                   stages) );
            ( "verdicts",
              Json.Obj
                [
                  ("admitted", Json.Num (float_of_int tally.admitted));
                  ("rejected", Json.Num (float_of_int tally.rejected));
                  ("undecided", Json.Num (float_of_int tally.undecided));
                  ("info", Json.Num (float_of_int tally.info));
                  ("dropped", Json.Num (float_of_int tally.dropped));
                  ("errors", Json.Num (float_of_int tally.errors));
                ] );
            ("cache", cache_json);
            ( "keyer",
              match keyer_stats with
              | None -> Json.Null
              | Some { Cache.Keyer.reused; rendered } ->
                  Json.Obj
                    [
                      ("reused", Json.Num (float_of_int reused));
                      ("rendered", Json.Num (float_of_int rendered));
                    ] );
            ( "cache_sweep",
              Json.List
                (List.map
                   (fun (capacity, { Cache.hits; misses; evictions; _ }) ->
                     Json.Obj
                       [
                         ("capacity", Json.Num (float_of_int capacity));
                         ("hits", Json.Num (float_of_int hits));
                         ("misses", Json.Num (float_of_int misses));
                         ("evictions", Json.Num (float_of_int evictions));
                         ("hit_rate", Json.Num (hit_rate hits misses));
                       ])
                   sweep) );
            ( "saturation_sweep",
              Json.List
                (List.map
                   (fun s ->
                     Json.Obj
                       [
                         ("connections", Json.Num (float_of_int s.sat_connections));
                         ("batch", Json.Num (float_of_int s.sat_batch));
                         ("drainers", Json.int s.sat_drainers);
                         ("workload", Json.Str s.sat_workload);
                         ("cache_capacity", Json.int s.sat_cache);
                         ("shops_per_connection", Json.int s.sat_shops);
                         ("completed", Json.Num (float_of_int s.sat_completed));
                         ("duration_s", Json.Num s.sat_duration);
                         ("requests_per_sec", Json.Num s.sat_rps);
                         ("latency_p50_ms", Json.Num s.sat_p50_ms);
                         ("latency_p99_ms", Json.Num s.sat_p99_ms);
                       ])
                   sat) );
            ( "config",
              Json.Obj
                [
                  ("transport", Json.Str transport);
                  ("connections", Json.Num (float_of_int connections));
                  ("jobs", Json.Num (float_of_int jobs));
                  ("batch", Json.Num (float_of_int config.Batcher.batch));
                  ("queue", Json.Num (float_of_int config.Batcher.queue_capacity));
                  ("cache_capacity", Json.Num (float_of_int config.Batcher.cache_capacity));
                ] );
          ]
          @ extra)
      in
      Out_channel.with_open_text path (fun oc ->
          output_string oc (Json.to_string record);
          output_char oc '\n');
      Format.printf "wrote %s@." path

(* ------------------------------------------------------------------ *)

let requests_arg =
  let doc = "Number of requests in the stream." in
  Arg.(value & opt int 1000 & info [ "requests" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Stream seed: the request sequence is a pure function of it." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let rate_arg =
  let doc =
    "Open-loop arrival rate in requests/second (exponential inter-arrivals); 0 replays as \
     fast as possible."
  in
  Arg.(value & opt float 0. & info [ "rate" ] ~docv:"R" ~doc)

let jobs_arg =
  let doc = "Worker domains for the in-process engine's batch solves." in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let batch_arg =
  let doc = "Batch size of the in-process engine." in
  Arg.(value & opt int Batcher.default_config.Batcher.batch & info [ "batch" ] ~docv:"N" ~doc)

let queue_arg =
  let doc = "Queue bound of the in-process engine." in
  Arg.(value & opt int Batcher.default_config.Batcher.queue_capacity
       & info [ "queue" ] ~docv:"N" ~doc)

let cache_arg =
  let doc = "Solver-cache capacity of the in-process engine (0 = off)." in
  Arg.(value & opt int Batcher.default_config.Batcher.cache_capacity
       & info [ "cache"; "cache-capacity" ] ~docv:"N" ~doc)

let sweep_arg =
  let doc =
    "Replay the same stream once per capacity in the comma-separated list and record each \
     run's cache statistics alongside the main run (in-process only)."
  in
  Arg.(value & opt (some (list int)) None & info [ "cache-sweep" ] ~docv:"N,N,..." ~doc)

let connect_arg =
  let doc = "Replay over TCP against a running e2e-serve at $(docv) instead of in-process." in
  Arg.(value & opt (some string) None & info [ "connect" ] ~docv:"HOST:PORT" ~doc)

let self_serve_arg =
  let doc =
    "Start the concurrent TCP server in-process on an ephemeral port and replay against it \
     over real sockets: the whole-transport measurement (engine config flags apply to the \
     embedded server)."
  in
  Arg.(value & flag & info [ "self-serve" ] ~doc)

let connections_arg =
  let doc =
    "Parallel client connections for the TCP modes; each replays an independent stream on a \
     disjoint shop namespace (a single connection replays the classic stream)."
  in
  Arg.(value & opt int 1 & info [ "connections" ] ~docv:"C" ~doc)

let pipeline_arg =
  let doc = "Requests each client keeps in flight (the closed-loop pipelining window)." in
  Arg.(value & opt int 8 & info [ "pipeline" ] ~docv:"W" ~doc)

let accept_pool_arg =
  let doc = "Reader domains of the embedded --self-serve server." in
  Arg.(value & opt int 4 & info [ "accept-pool" ] ~docv:"N" ~doc)

let window_arg =
  let doc = "Per-connection reply window of the embedded --self-serve server." in
  Arg.(value & opt int 64 & info [ "window" ] ~docv:"N" ~doc)

let drainers_arg =
  let doc =
    "Drainer stripes of the embedded --self-serve server (the queue is sharded by shop; \
     one drainer domain per stripe).  Per-connection reply logs are byte-identical at \
     every value."
  in
  Arg.(value & opt int 1 & info [ "drainers" ] ~docv:"N" ~doc)

let drainer_sweep_arg =
  let doc =
    "Drainer-stripe scaling sweep: one embedded-server run of the seed-then-resubmit \
     workload (--cluster-shops shops per connection, --cache per-stripe capacity) per \
     stripe count in the comma-separated list, recorded alongside saturation_sweep in the \
     JSON report."
  in
  Arg.(value & opt (some (list int)) None & info [ "drainer-sweep" ] ~docv:"D,D,..." ~doc)

let upstream_sweep_arg =
  let doc =
    "Upstream-lane scaling sweep (cluster bench): a fresh 1-shard cluster per lane count \
     in the comma-separated list on a cache-resident workload, recorded as upstream_sweep \
     in the cluster JSON report.  Combine with --cluster-sweep to write both curves."
  in
  Arg.(value & opt (some (list int)) None & info [ "upstream-sweep" ] ~docv:"K,K,..." ~doc)

let upstream_conns_arg =
  let doc = "Pipelined upstream connections per shard of the in-process dispatcher modes." in
  Arg.(value & opt int 1 & info [ "upstream-conns" ] ~docv:"K" ~doc)

let reply_log_arg =
  let doc =
    "Write each connection's received lines to $(docv).conn<k> (TCP modes) — the \
     per-connection determinism artifacts `make check` byte-compares across -j values."
  in
  Arg.(value & opt (some string) None & info [ "reply-log" ] ~docv:"PREFIX" ~doc)

let sat_conns_arg =
  let doc =
    "Saturation sweep: measure --self-serve throughput at each connection count in the \
     comma-separated list (crossed with --sat-batch), recorded as saturation_sweep in the \
     JSON report."
  in
  Arg.(value & opt (some (list int)) None & info [ "sat-connections" ] ~docv:"C,C,..." ~doc)

let sat_batch_arg =
  let doc = "Batch sizes the saturation sweep crosses with --sat-connections." in
  Arg.(value & opt (some (list int)) None & info [ "sat-batch" ] ~docv:"B,B,..." ~doc)

let out_arg =
  let doc = "Write the run summary as one JSON object to $(docv)." in
  Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE" ~doc)

let trace_arg =
  let doc =
    "Write one JSONL request-trace record per pipeline stage per request to $(docv) \
     (analyse with e2e-trace; in-process replay only)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let det_clock_arg =
  let doc =
    "Replace the wall clock with a deterministic counter (one tick of 1/1024 s per \
     reading): timings stop measuring real time but the trace, the latency report and the \
     stage percentiles become exact functions of the request stream — byte-identical at \
     every -j.  Implies --rate 0 semantics for timing."
  in
  Arg.(value & flag & info [ "det-clock" ] ~doc)

let cluster_arg =
  let doc =
    "Replay over TCP against a running e2e-dispatch front end at $(docv); after the run, \
     query it for routing balance and failover counters (the cluster report)."
  in
  Arg.(value & opt (some string) None & info [ "cluster" ] ~docv:"HOST:PORT" ~doc)

let spawn_shards_arg =
  let doc =
    "Start $(docv) in-process shards (each a full TCP e2e-serve) behind an in-process \
     dispatcher on ephemeral ports and replay against the dispatcher: the whole-cluster \
     measurement (engine config flags apply to every shard)."
  in
  Arg.(value & opt (some int) None & info [ "spawn-shards" ] ~docv:"N" ~doc)

let cluster_sweep_arg =
  let doc =
    "Shard-count scaling sweep: spin up a fresh cluster per count in the comma-separated \
     list, replay the seed-then-query workload, and record throughput, balance and \
     failover counters per point (`make bench-cluster` writes BENCH_cluster.json this \
     way)."
  in
  Arg.(value & opt (some (list int)) None & info [ "cluster-sweep" ] ~docv:"N,N,..." ~doc)

let cluster_shops_arg =
  let doc = "Shops each connection submits before the query phase of the cluster sweep." in
  Arg.(value & opt int 8 & info [ "cluster-shops" ] ~docv:"K" ~doc)

let duration_arg =
  let doc =
    "Soak mode: run the TCP replay closed-loop for $(docv) seconds of wall-clock time \
     (freshly generated request chunks per connection) instead of a fixed request count, \
     printing windowed latency snapshots as it runs."
  in
  Arg.(value & opt float 0. & info [ "duration" ] ~docv:"SECS" ~doc)

let snapshot_arg =
  let doc = "Seconds between soak-mode latency snapshots." in
  Arg.(value & opt float 1.0 & info [ "snapshot" ] ~docv:"SECS" ~doc)

let failover_arg =
  let doc =
    "Run the cluster failover check: 2 in-process shards behind a dispatcher, kill one \
     mid-burst, assert every request is answered (deterministic shard-unavailable errors, \
     no hangs), traffic recovers on the survivor, and a restarted shard is re-admitted.  \
     Exits non-zero on failure."
  in
  Arg.(value & flag & info [ "failover-check" ] ~doc)

let parse_addr flag addr =
  match Registry.parse_id addr with
  | Some (h, p) -> (h, p)
  | None ->
      Printf.eprintf "e2e-loadgen: %s expects HOST:PORT (got %S)\n%!" flag addr;
      exit 2

(* Stage sketches accumulated by Rtrace.finish during the main run, in
   pipeline order, with the end-to-end sketch last.  Captured before the
   sweep replays so their observations don't pollute the report. *)
let capture_stages () =
  let sk = Obs.sketches () in
  let find name = List.assoc_opt name sk in
  List.filter_map
    (fun stage -> Option.map (fun q -> (stage, q)) (find ("serve.stage." ^ stage)))
    (Array.to_list Rtrace.stages)
  @ (match find "serve.e2e" with Some q -> [ ("e2e", q) ] | None -> [])

let run requests seed rate jobs batch queue cache sweep connect self_serve connections
    pipeline accept_pool window drainers drainer_sweep upstream_sweep upstream_conns
    reply_log sat_conns sat_batch out trace det_clock cluster spawn_shards cluster_sweep
    cluster_shops duration snapshot failover =
  let jobs = Pool.resolve_jobs jobs in
  let config =
    { Batcher.queue_capacity = queue; batch; budget = Admission.Unbounded; jobs;
      cache_capacity = cache }
  in
  let n_targets =
    List.length
      (List.filter Fun.id
         [ connect <> None; self_serve; cluster <> None; spawn_shards <> None ])
  in
  if n_targets > 1 then begin
    prerr_endline
      "e2e-loadgen: --connect, --self-serve, --cluster and --spawn-shards are mutually \
       exclusive";
    exit 2
  end;
  if drainers < 1 then begin
    prerr_endline "e2e-loadgen: --drainers must be >= 1";
    exit 2
  end;
  if upstream_conns < 1 then begin
    prerr_endline "e2e-loadgen: --upstream-conns must be >= 1";
    exit 2
  end;
  if (failover || cluster_sweep <> None || upstream_sweep <> None) && n_targets > 0 then begin
    prerr_endline
      "e2e-loadgen: --failover-check, --cluster-sweep and --upstream-sweep spawn their \
       own clusters";
    exit 2
  end;
  if failover then
    exit (if failover_check ~config ~window ~seed ~upstream_conns then 0 else 1);
  (match (cluster_sweep, upstream_sweep) with
  | None, None -> ()
  | counts, upstream ->
      run_cluster_sweep
        ~counts:(Option.value ~default:[] counts)
        ~upstream:(Option.value ~default:[] upstream)
        ~config ~connections ~pipeline ~shops:cluster_shops ~requests ~seed ~window ~jobs
        ~out;
      exit 0);
  let tcp_mode = n_targets > 0 in
  if reply_log <> None && not tcp_mode then begin
    prerr_endline "e2e-loadgen: --reply-log requires a TCP mode";
    exit 2
  end;
  let transport =
    if self_serve then "self-tcp"
    else if spawn_shards <> None then "cluster-self"
    else if cluster <> None then "cluster"
    else if connect <> None then "tcp"
    else "inproc"
  in
  if duration > 0. then begin
    if not tcp_mode then begin
      prerr_endline "e2e-loadgen: --duration (soak mode) requires a TCP mode";
      exit 2
    end;
    let host, port, finish =
      match (spawn_shards, cluster, connect) with
      | Some n, _, _ ->
          let cl =
            spawn_cluster ~nshards:(max 1 n) ~config ~window ~probe_interval:0.5
              ~client_slots:(connections + 2) ~upstream_conns ()
          in
          ( "127.0.0.1",
            cl.cl_port,
            fun () ->
              let info = cluster_info_of_stats (Dispatcher.stats cl.cl_t) in
              stop_cluster cl;
              Some info )
      | None, Some addr, _ ->
          let host, port = parse_addr "--cluster" addr in
          (host, port, fun () -> fetch_cluster_remote ~host ~port)
      | None, None, Some addr ->
          let host, port = parse_addr "--connect" addr in
          (host, port, fun () -> None)
      | None, None, None ->
          let stripes = E2e_serve.Stripes.create ~config ~stripes:drainers () in
          let set, get = wait_slot () in
          let d =
            Domain.spawn (fun () ->
                Server.serve_tcp ~max_connections:connections ~accept_pool ~window
                  ~ready:set ~port:0 stripes)
          in
          ( "127.0.0.1",
            get (),
            fun () ->
              Domain.join d;
              None )
    in
    let soak_duration, latency, tally, snapshots =
      run_soak ~host ~port ~connections ~pipeline ~seed ~duration ~snapshot_every:snapshot
    in
    let info = finish () in
    Option.iter print_cluster_info info;
    let extra =
      [ ("soak_snapshots", Json.List (List.map soak_snapshot_json snapshots)) ]
      @ (match info with None -> [] | Some ci -> [ ("cluster", cluster_json ci) ])
    in
    report ~extra ~out ~requests:(Quantile.count latency) ~jobs ~config ~transport
      ~connections ~duration:soak_duration ~latency ~tally ~cache_stats:None
      ~keyer_stats:None ~stages:[] ~sweep:[] ~sat:[] ();
    exit 0
  end;
  if det_clock then begin
    (* Dyadic step: every reading is an exact float, so durations and
       their sums are exact and the trace is byte-reproducible. *)
    let k = ref 0 in
    Obs.Clock.set_source (fun () ->
        incr k;
        float_of_int !k *. (1. /. 1024.))
  end;
  (* Telemetry passes: a traced or deterministic-clock run is
     instrumented throughout (the stage histograms are its point); a
     plain benchmark run measures with the registry off — the
     transport's real configuration — and, when a JSON report is
     requested, replays once more instrumented to attribute stage
     costs. *)
  let instrumented = (trace <> None || det_clock) && not tcp_mode in
  if instrumented then begin
    Obs.set_stats true;
    Obs.reset_metrics ()
  end;
  let trace_oc =
    match (trace, tcp_mode) with
    | Some path, false ->
        let oc = Out_channel.open_text path in
        Rtrace.set_writer
          (Some
             (fun line ->
               Out_channel.output_string oc line;
               Out_channel.output_char oc '\n'));
        Some (path, oc)
    | Some _, true ->
        prerr_endline
          "e2e-loadgen: --trace requires the in-process engine (no --connect/--self-serve)";
        exit 2
    | None, _ -> None
  in
  let cluster_finish = ref (fun () -> None) in
  let duration, latency, tally, cache_stats, keyer_stats =
    if self_serve then
      run_self
        ~streams:(client_streams ~connections ~seed ~requests)
        ~config ~accept_pool ~window ~drainers ~pipeline ~rate ~reply_log
    else
      match (spawn_shards, cluster, connect) with
      | Some n, _, _ ->
          let cl =
            spawn_cluster ~nshards:(max 1 n) ~config ~window ~probe_interval:0.5
              ~client_slots:(connections + 2) ~upstream_conns ()
          in
          (cluster_finish :=
             fun () ->
               let info = cluster_info_of_stats (Dispatcher.stats cl.cl_t) in
               stop_cluster cl;
               Some info);
          let streams = client_streams ~connections ~seed ~requests in
          let duration, results =
            run_clients ~host:"127.0.0.1" ~port:cl.cl_port ~streams ~pipeline ~rate
          in
          write_reply_logs reply_log results;
          let latency, tally = merge_client_results results in
          (duration, latency, tally, None, None)
      | None, Some addr, _ ->
          let host, port = parse_addr "--cluster" addr in
          (cluster_finish := fun () -> fetch_cluster_remote ~host ~port);
          run_tcp
            ~streams:(client_streams ~connections ~seed ~requests)
            ~addr ~pipeline ~rate ~reply_log
      | None, None, Some addr ->
          run_tcp
            ~streams:(client_streams ~connections ~seed ~requests)
            ~addr ~pipeline ~rate ~reply_log
      | None, None, None ->
          run_inproc ~stream:(gen_stream ~seed ~requests ()) ~config ~rate
  in
  (match trace_oc with
  | None -> ()
  | Some (path, oc) ->
      Rtrace.set_writer None;
      Out_channel.close oc;
      Format.printf "wrote %s@." path);
  let stages =
    if instrumented then capture_stages ()
    else if out <> None && not tcp_mode then begin
      (* Second, instrumented pass purely for the stage attribution in
         the JSON report; the headline duration stays the
         uninstrumented run's. *)
      Obs.set_stats true;
      Obs.reset_metrics ();
      ignore (run_inproc ~stream:(gen_stream ~seed ~requests ()) ~config ~rate:0.);
      capture_stages ()
    end
    else []
  in
  let sweep =
    match (sweep, tcp_mode) with
    | None, _ | _, true -> []
    | Some capacities, false ->
        let stream = gen_stream ~seed ~requests () in
        List.filter_map
          (fun capacity ->
            let config = { config with Batcher.cache_capacity = capacity } in
            let _, _, _, stats, _ = run_inproc ~stream ~config ~rate:0. in
            Option.map (fun s -> (capacity, s)) stats)
          capacities
  in
  let sat =
    match sat_conns with
    | None -> []
    | Some conns ->
        if tcp_mode then begin
          prerr_endline "e2e-loadgen: the saturation sweep runs its own embedded servers";
          exit 2
        end;
        (* The sweep measures the transport at its native configuration:
           registry off, like the headline pass. *)
        Obs.set_stats false;
        let batches = match sat_batch with None -> [ config.Batcher.batch ] | Some l -> l in
        let points = List.concat_map (fun c -> List.map (fun b -> (c, b)) batches) conns in
        run_sat_sweep ~seed ~requests ~config ~pipeline ~window points
  in
  let sat =
    sat
    @
    match drainer_sweep with
    | None -> []
    | Some counts ->
        if tcp_mode then begin
          prerr_endline "e2e-loadgen: the drainer sweep runs its own embedded servers";
          exit 2
        end;
        Obs.set_stats false;
        run_drainer_sweep ~counts ~config ~connections ~pipeline ~shops:cluster_shops
          ~requests ~seed ~window
  in
  let connections = if tcp_mode then connections else 1 in
  let info = !cluster_finish () in
  Option.iter print_cluster_info info;
  let extra = match info with None -> [] | Some ci -> [ ("cluster", cluster_json ci) ] in
  report ~extra ~out ~requests ~jobs ~config ~transport ~connections ~duration ~latency
    ~tally ~cache_stats ~keyer_stats ~stages ~sweep ~sat ()

let () =
  let doc = "Load generator for the e2e-serve admission service" in
  let info = Cmd.info "e2e-loadgen" ~version:"1.0.0" ~doc in
  let term =
    Term.(
      const run $ requests_arg $ seed_arg $ rate_arg $ jobs_arg $ batch_arg $ queue_arg
      $ cache_arg $ sweep_arg $ connect_arg $ self_serve_arg $ connections_arg
      $ pipeline_arg $ accept_pool_arg $ window_arg $ drainers_arg $ drainer_sweep_arg
      $ upstream_sweep_arg $ upstream_conns_arg $ reply_log_arg $ sat_conns_arg
      $ sat_batch_arg $ out_arg $ trace_arg $ det_clock_arg $ cluster_arg
      $ spawn_shards_arg $ cluster_sweep_arg $ cluster_shops_arg $ duration_arg
      $ snapshot_arg $ failover_arg)
  in
  exit (Cmd.eval (Cmd.v info term))
